module Schema = Lockdoc_db.Schema
module Store = Lockdoc_db.Store
module Pool = Lockdoc_util.Pool
module Obs = Lockdoc_obs.Obs

let c_groups = Obs.counter "violations.groups"
let c_found = Obs.counter "violations.found"

type violation = {
  v_type : string;
  v_member : string;
  v_kind : Rule.access;
  v_rule : Rule.t;
  v_held : Lockdesc.t list;
  v_events : int;
  v_loc : Lockdoc_trace.Srcloc.t;
  v_stack : string list;
}

let find ?(jobs = 1) dataset mined =
  let store = Dataset.store dataset in
  Obs.add c_groups (List.length mined);
  if jobs > 1 then Store.seal store;
  let out =
    Pool.concat_map ~jobs
    (fun (m : Derivator.mined) ->
      if
        Rule.equal m.Derivator.m_winner Rule.no_lock
        || m.Derivator.m_support.Hypothesis.sr >= 1.
      then []
      else
        Dataset.by_member dataset m.Derivator.m_type
          ~member:m.Derivator.m_member ~kind:m.Derivator.m_kind
        |> List.filter_map (fun (o : Dataset.obs) ->
               if Rule.complies ~rule:m.Derivator.m_winner ~held:o.Dataset.o_locks
               then None
               else
                 let first_access =
                   Store.access store (List.hd o.Dataset.o_accesses)
                 in
                 Some
                   {
                     v_type = m.Derivator.m_type;
                     v_member = m.Derivator.m_member;
                     v_kind = m.Derivator.m_kind;
                     v_rule = m.Derivator.m_winner;
                     v_held = o.Dataset.o_locks;
                     v_events = List.length o.Dataset.o_accesses;
                     v_loc = first_access.Schema.ac_loc;
                     v_stack = Store.stack store first_access.Schema.ac_stack;
                   }))
      mined
  in
  Obs.add c_found (List.length out);
  out

type summary = {
  vs_type : string;
  vs_events : int;
  vs_members : int;
  vs_contexts : int;
}

let contexts violations =
  List.map (fun v -> (v.v_loc, v.v_stack)) violations
  |> List.sort_uniq compare

let summarise violations ty =
  let rows = List.filter (fun v -> v.v_type = ty) violations in
  {
    vs_type = ty;
    vs_events = List.fold_left (fun acc v -> acc + v.v_events) 0 rows;
    vs_members =
      List.length (List.sort_uniq compare (List.map (fun v -> v.v_member) rows));
    vs_contexts = List.length (contexts rows);
  }
