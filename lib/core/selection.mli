(** Winning-hypothesis selection (paper Sec. 4.3).

    All hypotheses at or above the acceptance threshold [tac] are assumed
    to be related; the naïve "highest support wins" strategy would let a
    too-weak rule (or "no lock", which trivially has sr = 1) dominate the
    true one. LockDoc therefore picks the hypothesis with the {e lowest}
    relative support within the accepted group; ties go to the hypothesis
    with {e more} locks. "No lock" is always in the group, so a winner
    always exists. *)

type strategy =
  | Lockdoc  (** lowest sr ≥ tac, tie → more locks (the paper's choice) *)
  | Naive  (** highest sr among rules with at least one lock, if it clears
               tac; otherwise "no lock" — the strawman of Sec. 4.3 *)

val select :
  ?strategy:strategy -> tac:float -> Hypothesis.scored list ->
  Hypothesis.scored
(** Pick the winner among scored hypotheses. The list must contain the
    "no lock" rule (as {!Hypothesis.enumerate} guarantees). *)
