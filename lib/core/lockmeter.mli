(** A miniature Lockmeter: per-lock-class usage statistics, the second
    runtime-analysis baseline the paper discusses (Sec. 3.2, Bryant &
    Hawkes' Lockmeter).

    Where LockDoc asks "which locks protect this member?" and lockdep
    asks "are locks ordered consistently?", Lockmeter profiles {e how}
    locks are used: acquisition counts, reader/writer split, hold spans
    (measured in trace events, our stand-in for cycles), and how many
    distinct instances share a class. This is the bottleneck-hunting view
    of the same trace. *)

type stat = {
  s_class : Lockdep.lock_class;
  s_acquisitions : int;
  s_reader_acquisitions : int;
  s_instances : int;  (** distinct lock objects in this class *)
  s_total_hold : int;  (** summed hold spans, in trace events *)
  s_max_hold : int;
  s_accesses_under : int;  (** member accesses made while held *)
}

val mean_hold : stat -> float

val analyse : Lockdoc_trace.Trace.t -> Lockdoc_db.Store.t -> stat list
(** Walk the raw trace once for hold spans (acquire → release, per lock
    instance) and combine with the store's transaction data for the
    access counts. Sorted by descending acquisition count. *)

val render : ?top:int -> stat list -> string
(** Lockmeter-style table of the [top] (default 15) busiest classes. *)
