(** The locking-rule checker (paper Sec. 5.5 / 7.3): validate the
    officially documented rules against the observed behaviour.

    A documented rule is [correct] when every observation follows it
    (sr = 1), [ambivalent] when only some do (0 < sr < 1), [incorrect]
    when none does (sr = 0), and [unobserved] when the benchmark never
    exercised the member. *)

type verdict = Correct | Ambivalent | Incorrect | Unobserved

type checked = {
  c_type : string;  (** base data type ("inode"), subclasses merged *)
  c_member : string;
  c_kind : Rule.access;
  c_rule : Rule.t;  (** the documented rule under trial *)
  c_support : Hypothesis.support;
  c_verdict : verdict;
}

val verdict_to_string : verdict -> string

val check_rule :
  Dataset.t -> ty:string -> member:string -> kind:Rule.access -> Rule.t ->
  checked
(** Judge one documented rule against all observations of the base type
    (subclasses merged, as source comments do not distinguish them). *)

type spec = {
  sp_type : string;
  sp_member : string;
  sp_kind : Rule.access;
  sp_rule : Rule.t;
}
(** One documented rule to put on trial. *)

val check_many : ?jobs:int -> Dataset.t -> spec list -> checked list
(** {!check_rule} over a whole documented-rule corpus, input order
    preserved. [jobs] (default 1) distributes the per-rule scans over
    that many domains; results are bit-identical to the sequential path
    ([jobs > 1] seals the store — see {!Lockdoc_db.Store.seal}). *)

type summary = {
  s_type : string;
  s_rules : int;  (** documented rules (#R) *)
  s_unobserved : int;  (** (#No) *)
  s_observed : int;  (** (#Ob) *)
  s_correct : int;
  s_ambivalent : int;
  s_incorrect : int;
}

val summarise : checked list -> string -> summary
(** Aggregate the checked rules of one data type (paper Tab. 4 row). *)
