module Schema = Lockdoc_db.Schema
module Store = Lockdoc_db.Store
module Srcloc = Lockdoc_trace.Srcloc

type lock_class = Static of string | Member of string * string

let class_to_string = function
  | Static name -> name
  | Member (ty, member) -> Printf.sprintf "%s.%s" ty member

type edge = {
  e_from : lock_class;
  e_to : lock_class;
  e_count : int;
  e_example : Srcloc.t;
}

type report = {
  classes : lock_class list;
  edges : edge list;
  cycles : lock_class list list;
  self_nesting : edge list;
}

let class_of store (lock : Schema.lock) =
  match lock.Schema.lk_parent with
  | None -> Static lock.Schema.lk_name
  | Some (al_id, member) ->
      let al = Store.allocation store al_id in
      let dt = Store.data_type store al.Schema.al_type in
      Member (dt.Schema.dt_name, member)

(* {2 Cycle canonicalisation}

   The DFS can reach one cyclic lock-order through several anchors and
   walk orders, and a rotation (or, for the report's purposes, the
   reversed traversal of the same class set) describes the same
   deadlock scenario. Canonical form: rotate so the lexicographically
   smallest class leads; the dedup key additionally takes the smaller
   of the forward and reversed-rotated name sequences, so each
   scenario is kept exactly once. *)

let canonicalise cycle =
  match cycle with
  | [] | [ _ ] -> cycle
  | _ ->
      let arr = Array.of_list cycle in
      let n = Array.length arr in
      let key i = class_to_string arr.(i) in
      let best = ref 0 in
      for i = 1 to n - 1 do
        if key i < key !best then best := i
      done;
      List.init n (fun j -> arr.((!best + j) mod n))

let cycle_key cycle =
  let names c = List.map class_to_string (canonicalise c) in
  min (names cycle) (names (List.rev cycle))

module Cycle_key_set = Set.Make (struct
  type t = string list

  let compare = compare
end)

let analyse store =
  let edges : (lock_class * lock_class, int * Srcloc.t) Hashtbl.t =
    Hashtbl.create 128
  in
  let classes : (lock_class, unit) Hashtbl.t = Hashtbl.create 64 in
  (* Every transaction's ordered held list contributes consecutive-pair
     edges: each lock depends on everything acquired before it. Using the
     final acquisition (the txn rows record every configuration, so every
     prefix appears as its own txn) avoids double counting. *)
  let n = Store.n_txns store in
  for i = 0 to n - 1 do
    let txn = Store.txn store i in
    match List.rev txn.Schema.tx_locks with
    | [] -> ()
    | last :: before_rev ->
        let last_class = class_of store (Store.lock store last.Schema.h_lock) in
        Hashtbl.replace classes last_class ();
        List.iter
          (fun held ->
            let from_class =
              class_of store (Store.lock store held.Schema.h_lock)
            in
            Hashtbl.replace classes from_class ();
            let key = (from_class, last_class) in
            let count, example =
              Option.value
                ~default:(0, last.Schema.h_loc)
                (Hashtbl.find_opt edges key)
            in
            Hashtbl.replace edges key (count + 1, example))
          before_rev
  done;
  let all_edges =
    Hashtbl.fold
      (fun (e_from, e_to) (e_count, e_example) acc ->
        { e_from; e_to; e_count; e_example } :: acc)
      edges []
    |> List.sort (fun a b ->
           compare
             (class_to_string a.e_from, class_to_string a.e_to)
             (class_to_string b.e_from, class_to_string b.e_to))
  in
  let self_nesting, order_edges =
    List.partition (fun e -> e.e_from = e.e_to) all_edges
  in
  (* Cycle search over distinct classes (the graph is small: tens of
     classes). A cycle is reported once, anchored at its smallest node. *)
  let successors c =
    List.filter_map
      (fun e -> if e.e_from = c then Some e.e_to else None)
      order_edges
  in
  let all_classes =
    Hashtbl.fold (fun c () acc -> c :: acc) classes []
    |> List.sort (fun a b -> compare (class_to_string a) (class_to_string b))
  in
  let cycles = ref [] in
  let seen = ref Cycle_key_set.empty in
  let rec dfs anchor path node =
    List.iter
      (fun next ->
        if next = anchor then begin
          let cycle = canonicalise (List.rev (node :: path)) in
          let key = cycle_key cycle in
          if not (Cycle_key_set.mem key !seen) then begin
            seen := Cycle_key_set.add key !seen;
            cycles := cycle :: !cycles
          end
        end
        else if
          (not (List.mem next path))
          && next <> node
          && compare (class_to_string next) (class_to_string anchor) > 0
          (* only walk through nodes larger than the anchor, so each
             cycle is discovered exactly once *)
        then dfs anchor (node :: path) next)
      (successors node)
  in
  List.iter (fun c -> dfs c [] c) all_classes;
  let sorted_cycles =
    List.sort
      (fun a b ->
        compare (List.map class_to_string a) (List.map class_to_string b))
      !cycles
  in
  {
    classes = all_classes;
    edges = order_edges;
    cycles = sorted_cycles;
    self_nesting;
  }

let render report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "lockdep: %d lock classes, %d ordered pairs\n"
       (List.length report.classes)
       (List.length report.edges));
  if report.cycles = [] then
    Buffer.add_string buf "no lock-order cycles detected\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "%d potential deadlock cycle(s):\n"
         (List.length report.cycles));
    List.iter
      (fun cycle ->
        let names = List.map class_to_string cycle in
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s\n" (String.concat " -> " names)
             (List.hd names));
        (* Show one witness edge per direction of the cycle. *)
        let rec witness = function
          | a :: (b :: _ as rest) ->
              (match
                 List.find_opt (fun e -> e.e_from = a && e.e_to = b) report.edges
               with
              | Some e ->
                  Buffer.add_string buf
                    (Printf.sprintf "    %s taken under %s at %s (%d times)\n"
                       (class_to_string b) (class_to_string a)
                       (Srcloc.to_string e.e_example) e.e_count)
              | None -> ());
              witness rest
          | [ last ] -> (
              match
                List.find_opt
                  (fun e -> e.e_from = last && e.e_to = List.hd cycle)
                  report.edges
              with
              | Some e ->
                  Buffer.add_string buf
                    (Printf.sprintf "    %s taken under %s at %s (%d times)\n"
                       (class_to_string (List.hd cycle))
                       (class_to_string last)
                       (Srcloc.to_string e.e_example) e.e_count)
              | None -> ())
          | [] -> ()
        in
        witness cycle)
      report.cycles
  end;
  if report.self_nesting <> [] then begin
    Buffer.add_string buf "same-class nesting (needs nesting annotations):\n";
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "  %s within itself at %s (%d times)\n"
             (class_to_string e.e_from)
             (Srcloc.to_string e.e_example) e.e_count))
      report.self_nesting
  end;
  Buffer.contents buf
