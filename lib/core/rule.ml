type t = Lockdesc.t list

let c_deduped = Lockdoc_obs.Obs.counter "rule.deduped"

type access = R | W

let no_lock = []

let to_string = function
  | [] -> "nolock"
  | locks -> String.concat " -> " (List.map Lockdesc.to_string locks)

let parse s =
  match String.trim s with
  | "nolock" | "" -> []
  | s ->
      (* Split on "->"; descriptors never contain '>'. *)
      String.split_on_char '>' s
      |> List.map (fun part ->
             let part = String.trim part in
             let part =
               if String.length part > 0 && part.[String.length part - 1] = '-'
               then String.sub part 0 (String.length part - 1)
               else part
             in
             String.trim part)
      |> List.filter (fun part -> part <> "")
      |> List.map Lockdesc.of_string

let equal a b = List.equal Lockdesc.equal a b

let compare a b = List.compare Lockdesc.compare a b

let access_to_string = function R -> "r" | W -> "w"

let complies ~rule ~held =
  let rec go rule held =
    match (rule, held) with
    | [], _ -> true
    | _, [] -> false
    | r :: rrest, h :: hrest ->
        if Lockdesc.equal r h then go rrest hrest else go rule hrest
  in
  go rule held

(* Keep the first occurrence of each lock (re-acquisitions of recursive
   locks appear twice in a held list). *)
let dedup locks =
  let rec go seen = function
    | [] -> []
    | l :: rest ->
        if List.exists (Lockdesc.equal l) seen then go seen rest
        else l :: go (l :: seen) rest
  in
  go [] locks

module Rule_set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

(* Order-preserving structural dedup. Keying on [compare] rather than
   [to_string] matters: the rendering is ambiguous — [Global "ES(x)"]
   and [Es "x"] both print "ES(x)" — so distinct rules must not be
   collapsed by their notation. *)
let dedup_rules rules =
  let seen = ref Rule_set.empty in
  let out =
    List.filter
      (fun rule ->
        if Rule_set.mem rule !seen then false
        else begin
          seen := Rule_set.add rule !seen;
          true
        end)
      rules
  in
  Lockdoc_obs.Obs.add c_deduped (List.length rules - List.length out);
  out

let subsequences locks =
  let locks = dedup locks in
  List.fold_right
    (fun lock acc -> List.map (fun sub -> lock :: sub) acc @ acc)
    locks [ [] ]

let permuted_subsets locks =
  let locks = dedup locks in
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: rest ->
        (x :: y :: rest)
        :: List.map (fun l -> y :: l) (insert_everywhere x rest)
  in
  let rec permutations = function
    | [] -> [ [] ]
    | x :: rest ->
        List.concat_map (insert_everywhere x) (permutations rest)
  in
  subsequences locks
  |> List.concat_map permutations
  |> List.sort_uniq compare
