(** Locking rules: an ordered sequence of lock descriptors that must be
    held — and must have been acquired in this relative order — for an
    access (paper Sec. 5.4).

    The empty sequence is the "no lock needed" rule. Extra unrelated
    locks held around an access do not violate a rule: compliance is
    subsequence containment, not equality. *)

type t = Lockdesc.t list

type access = R | W

val no_lock : t

val to_string : t -> string
(** ["nolock"] or descriptors joined with [" -> "]. *)

val parse : string -> t
(** Inverse of {!to_string}; also the format used by the documented-rule
    corpus. Raises [Failure]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val access_to_string : access -> string
(** ["r"] / ["w"]. *)

val dedup_rules : t list -> t list
(** Order-preserving structural deduplication (by {!compare}, not by
    {!to_string} — the rendering is ambiguous, e.g. [Global "ES(x)"] and
    [Es "x"] print identically but are different rules). *)

val complies : rule:t -> held:Lockdesc.t list -> bool
(** [complies ~rule ~held]: every lock of [rule] appears in [held], in
    the same relative order ([rule] is a subsequence of [held]). *)

val subsequences : Lockdesc.t list -> t list
(** All ordered subsets of a held-lock list (duplicates removed first),
    including the empty rule — the hypothesis space contributed by one
    observed lock combination (paper Sec. 5.4). *)

val permuted_subsets : Lockdesc.t list -> t list
(** All subsets of a lock set in {e every} order, as in the naïve
    enumeration of paper Sec. 4.3 (Tab. 2). Exponential — callers cap the
    set size. *)
