(** Machine-readable export of mined rules and violations.

    The documentation generator emits human-oriented source comments
    (Fig. 8); this module emits the same information as JSON so editor
    tooling, CI checks, or the paper's hypothetical "locking linter" can
    consume it. The encoder is self-contained (no JSON dependency) and
    escapes strings per RFC 8259. *)

type json =
  | S of string
  | I of int
  | F of float
  | L of json list
  | O of (string * json) list
      (** A minimal JSON document; [F] renders with 6 decimals, [O]
          preserves field order. *)

val to_string : json -> string
(** Serialise (RFC 8259 string escaping, no insignificant whitespace). *)

val mined_to_json : Derivator.mined list -> string
(** JSON array; one object per (type, member, direction) with the winning
    rule, support, and every scored hypothesis. *)

val mined_rule_to_json : Derivator.mined -> string
(** One element of {!mined_to_json}'s array, standalone. The encoder
    joins array elements with bare commas, so concatenating these with
    ["," ] inside ["[" ... "]"] reproduces {!mined_to_json} byte for
    byte — the serve push path relies on this to compute rule deltas
    per object while keeping its ["rules"] field oracle-identical. *)

val violations_to_json : Violation.violation list -> string
(** JSON array; one object per violating observation with the expected
    rule, held locks, location, and stack. *)

val checked_to_json : Checker.checked list -> string
(** JSON array of documentation-check results. *)

val lockdep_to_json : Lockdep.report -> string
(** JSON object with the classes, acquisition-order edges, canonical
    cycles, and self-nesting edges of a lockdep report. *)

val lockmeter_to_json : Lockmeter.stat list -> string
(** JSON array; one object per lock class with the usage counters of
    {!Lockmeter.stat}. *)
