(** Machine-readable export of mined rules and violations.

    The documentation generator emits human-oriented source comments
    (Fig. 8); this module emits the same information as JSON so editor
    tooling, CI checks, or the paper's hypothetical "locking linter" can
    consume it. The encoder is self-contained (no JSON dependency) and
    escapes strings per RFC 8259. *)

val mined_to_json : Derivator.mined list -> string
(** JSON array; one object per (type, member, direction) with the winning
    rule, support, and every scored hypothesis. *)

val violations_to_json : Violation.violation list -> string
(** JSON array; one object per violating observation with the expected
    rule, held locks, location, and stack. *)

val checked_to_json : Checker.checked list -> string
(** JSON array of documentation-check results. *)
