let buf_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

type json =
  | S of string
  | I of int
  | F of float
  | L of json list
  | O of (string * json) list

let rec encode buf = function
  | S s -> buf_add_json_string buf s
  | I i -> Buffer.add_string buf (string_of_int i)
  | F f -> Buffer.add_string buf (Printf.sprintf "%.6f" f)
  | L items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          encode buf item)
        items;
      Buffer.add_char buf ']'
  | O fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          buf_add_json_string buf key;
          Buffer.add_char buf ':';
          encode buf value)
        fields;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 1024 in
  encode buf json;
  Buffer.contents buf

let rule_json rule = S (Rule.to_string rule)

let support_json (s : Hypothesis.support) =
  O [ ("sa", I s.Hypothesis.sa); ("sr", F s.Hypothesis.sr) ]

let mined_json (m : Derivator.mined) =
  O
    [
      ("type", S m.Derivator.m_type);
      ("member", S m.Derivator.m_member);
      ("access", S (Rule.access_to_string m.Derivator.m_kind));
      ("observations", I m.Derivator.m_total);
      ("rule", rule_json m.Derivator.m_winner);
      ("support", support_json m.Derivator.m_support);
      ( "hypotheses",
        L
          (List.map
             (fun (h : Hypothesis.scored) ->
               O
                 [
                   ("rule", rule_json h.Hypothesis.rule);
                   ("support", support_json h.Hypothesis.support);
                 ])
             m.Derivator.m_hypotheses) );
    ]

let mined_rule_to_json m = to_string (mined_json m)
let mined_to_json mined = to_string (L (List.map mined_json mined))

let violations_to_json violations =
  to_string
    (L
       (List.map
          (fun (v : Violation.violation) ->
            O
              [
                ("type", S v.Violation.v_type);
                ("member", S v.Violation.v_member);
                ("access", S (Rule.access_to_string v.Violation.v_kind));
                ("rule", rule_json v.Violation.v_rule);
                ( "held",
                  L (List.map (fun d -> S (Lockdesc.to_string d)) v.Violation.v_held)
                );
                ("events", I v.Violation.v_events);
                ("location", S (Lockdoc_trace.Srcloc.to_string v.Violation.v_loc));
                ("stack", L (List.map (fun f -> S f) v.Violation.v_stack));
              ])
          violations))

let checked_to_json checked =
  to_string
    (L
       (List.map
          (fun (c : Checker.checked) ->
            O
              [
                ("type", S c.Checker.c_type);
                ("member", S c.Checker.c_member);
                ("access", S (Rule.access_to_string c.Checker.c_kind));
                ("rule", rule_json c.Checker.c_rule);
                ("support", support_json c.Checker.c_support);
                ("verdict", S (Checker.verdict_to_string c.Checker.c_verdict));
              ])
          checked))

let lockdep_to_json (r : Lockdep.report) =
  let cls c = S (Lockdep.class_to_string c) in
  let edge (e : Lockdep.edge) =
    O
      [
        ("from", cls e.Lockdep.e_from);
        ("to", cls e.Lockdep.e_to);
        ("count", I e.Lockdep.e_count);
        ("example", S (Lockdoc_trace.Srcloc.to_string e.Lockdep.e_example));
      ]
  in
  to_string
    (O
       [
         ("classes", L (List.map cls r.Lockdep.classes));
         ("edges", L (List.map edge r.Lockdep.edges));
         ( "cycles",
           L (List.map (fun c -> L (List.map cls c)) r.Lockdep.cycles) );
         ("self_nesting", L (List.map edge r.Lockdep.self_nesting));
       ])

let lockmeter_to_json stats =
  to_string
    (L
       (List.map
          (fun (s : Lockmeter.stat) ->
            O
              [
                ("class", S (Lockdep.class_to_string s.Lockmeter.s_class));
                ("acquisitions", I s.Lockmeter.s_acquisitions);
                ("reader_acquisitions", I s.Lockmeter.s_reader_acquisitions);
                ("instances", I s.Lockmeter.s_instances);
                ("total_hold", I s.Lockmeter.s_total_hold);
                ("max_hold", I s.Lockmeter.s_max_hold);
                ("mean_hold", F (Lockmeter.mean_hold s));
                ("accesses_under", I s.Lockmeter.s_accesses_under);
              ])
          stats))
