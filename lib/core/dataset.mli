(** Observations: the folded access matrix LockDoc derives rules from.

    One observation is "member [m] of one object instance was accessed
    (r/w) within one transaction, with this ordered held-lock list"
    (paper Sec. 4.2):

    - accesses of the same member in the same transaction fold into one
      observation (the {e Folded} column of Tab. 1);
    - an observation containing both reads and writes counts as a write
      ({e WoR}, write-over-read);
    - lock-free accesses (no transaction) are singleton observations with
      an empty lock list;
    - held locks are classified positionally ({!Lockdesc}) relative to
      the accessed instance. *)

type obs = {
  o_member : string;
  o_kind : Rule.access;
  o_locks : Lockdesc.t list;  (** acquisition order, deduplicated later *)
  o_accesses : int list;  (** underlying access-row ids (trace order) *)
}

type t
(** Observations grouped by type key ("inode:ext4", "dentry", …). *)

val of_store : ?wor:bool -> ?side_sensitive:bool -> Lockdoc_db.Store.t -> t
(** [wor] (default true) applies write-over-read folding; pass [false]
    for the ablation where mixed observations keep their first access
    kind. [side_sensitive] (default false) distinguishes reader-side
    acquisitions of rwlocks/rwsems/RCU by decorating the descriptor with
    "[r]" — an extension beyond the paper's model. *)

val of_groups : Lockdoc_db.Store.t -> (string * obs list) list -> t
(** Wrap externally maintained observation groups (type key →
    observations in first-access order) over a store. Used by the
    online derivator to expose its incrementally maintained state as a
    dataset snapshot for the violation finder. *)

val locks_of_txn :
  ?side_sensitive:bool ->
  Lockdoc_db.Store.t ->
  accessed_alloc:int ->
  int ->
  Lockdesc.t list
(** The classified held-lock list of one transaction relative to an
    accessed allocation — exactly what {!of_store} records in
    [o_locks]. Depends only on immutable store rows, so computing it
    at access time (online) and at dataset-build time (batch) gives
    the same answer. *)

val store : t -> Lockdoc_db.Store.t

val type_keys : t -> string list

val observations : t -> string -> obs list
(** All observations for a type key, in first-access order. *)

val members_observed : t -> string -> (string * Rule.access) list
(** Distinct (member, access kind) pairs with at least one observation. *)

val by_member : t -> string -> member:string -> kind:Rule.access -> obs list

val merged_base_type : t -> string -> obs list
(** Observations for a base type across all its subclasses (["inode"]
    collects every ["inode:*"] key) — the view the documentation checker
    uses, since source comments do not distinguish subclasses. *)
