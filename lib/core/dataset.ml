module Schema = Lockdoc_db.Schema
module Store = Lockdoc_db.Store
module Event = Lockdoc_trace.Event

type obs = {
  o_member : string;
  o_kind : Rule.access;
  o_locks : Lockdesc.t list;
  o_accesses : int list;
}

type t = { store : Store.t; groups : (string, obs list) Hashtbl.t }

let store t = t.store

(* Reader-side acquisitions are marked by decorating the descriptor name
   with "[r]" when side sensitivity is on — an extension over the paper's
   model, which treats reader and writer acquisitions of rwlocks/rwsems
   as the same lock (Sec. 2.2 lists the variants; Sec. 8 leaves richer
   models to future work). *)
let decorate_shared desc =
  match desc with
  | Lockdesc.Global name -> Lockdesc.Global (name ^ "[r]")
  | Lockdesc.Es member -> Lockdesc.Es (member ^ "[r]")
  | Lockdesc.Eo (member, ty) -> Lockdesc.Eo (member ^ "[r]", ty)

let locks_of_txn ?(side_sensitive = false) store ~accessed_alloc txn_id =
  let txn = Store.txn store txn_id in
  List.map
    (fun held ->
      let desc =
        Lockdesc.classify ~store ~accessed_alloc
          (Store.lock store held.Schema.h_lock)
      in
      if side_sensitive && held.Schema.h_side = Event.Shared then
        decorate_shared desc
      else desc)
    txn.Schema.tx_locks

let observations_of_accesses ?(wor = true) ?side_sensitive store accesses =
  (* Fold per (allocation, member, transaction). Lock-free accesses are
     singletons keyed by their own access id. *)
  let table : (int * string * int, Rule.access * int list) Hashtbl.t =
    Hashtbl.create 256
  in
  let order = ref [] in
  List.iter
    (fun (a : Schema.access) ->
      let key =
        match a.Schema.ac_txn with
        | Some txn -> (a.Schema.ac_alloc, a.Schema.ac_member, txn)
        | None -> (a.Schema.ac_alloc, a.Schema.ac_member, -1 - a.Schema.ac_id)
      in
      let kind =
        match a.Schema.ac_kind with Event.Read -> Rule.R | Event.Write -> Rule.W
      in
      match Hashtbl.find_opt table key with
      | None ->
          Hashtbl.replace table key (kind, [ a.Schema.ac_id ]);
          order := key :: !order
      | Some (prev_kind, ids) ->
          (* Write-over-read: one write makes the observation a write.
             With [wor] off (ablation) the first access kind sticks. *)
          let kind =
            if wor then
              if prev_kind = Rule.W || kind = Rule.W then Rule.W else Rule.R
            else prev_kind
          in
          Hashtbl.replace table key (kind, a.Schema.ac_id :: ids))
    accesses;
  List.rev_map
    (fun ((alloc, member, txn) as key) ->
      let kind, ids = Hashtbl.find table key in
      let locks =
        if txn >= 0 then locks_of_txn ?side_sensitive store ~accessed_alloc:alloc txn
        else []
      in
      { o_member = member; o_kind = kind; o_locks = locks; o_accesses = List.rev ids })
    !order

let of_groups store assoc =
  let groups = Hashtbl.create 32 in
  List.iter (fun (key, obs) -> Hashtbl.replace groups key obs) assoc;
  { store; groups }

let of_store ?wor ?side_sensitive store =
  let groups = Hashtbl.create 32 in
  List.iter
    (fun key ->
      let accesses = Store.accesses_of_type store key in
      Hashtbl.replace groups key
        (observations_of_accesses ?wor ?side_sensitive store accesses))
    (Store.type_keys store);
  { store; groups }

let type_keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.groups [] |> List.sort String.compare

let observations t key = Option.value ~default:[] (Hashtbl.find_opt t.groups key)

let members_observed t key =
  observations t key
  |> List.map (fun o -> (o.o_member, o.o_kind))
  |> List.sort_uniq compare

let by_member t key ~member ~kind =
  List.filter
    (fun o -> o.o_member = member && o.o_kind = kind)
    (observations t key)

let merged_base_type t base =
  let prefix = base ^ ":" in
  let matches key =
    key = base
    || String.length key > String.length prefix
       && String.sub key 0 (String.length prefix) = prefix
  in
  type_keys t
  |> List.filter matches
  |> List.concat_map (observations t)
