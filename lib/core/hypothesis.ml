type support = { sa : int; sr : float }

type scored = { rule : Rule.t; support : support }

let support_of rule observations =
  let total = List.length observations in
  let sa =
    List.fold_left
      (fun acc (o : Dataset.obs) ->
        if Rule.complies ~rule ~held:o.Dataset.o_locks then acc + 1 else acc)
      0 observations
  in
  { sa; sr = (if total = 0 then 0. else float_of_int sa /. float_of_int total) }

let sort_scored scored =
  List.sort
    (fun a b ->
      match Int.compare b.support.sa a.support.sa with
      | 0 -> (
          match Int.compare (List.length b.rule) (List.length a.rule) with
          | 0 -> Rule.compare a.rule b.rule
          | c -> c)
      | c -> c)
    scored

let score_all rules observations =
  List.map (fun rule -> { rule; support = support_of rule observations }) rules
  |> sort_scored

let enumerate observations =
  let candidate_rules =
    List.concat_map
      (fun (o : Dataset.obs) -> Rule.subsequences o.Dataset.o_locks)
      observations
    |> Rule.dedup_rules
  in
  (* [Rule.subsequences] of any combination includes []; on an empty
     observation list still offer the no-lock rule. *)
  let candidate_rules =
    if candidate_rules = [] then [ Rule.no_lock ] else candidate_rules
  in
  score_all candidate_rules observations

let enumerate_exhaustive ?(max_locks = 4) observations =
  let union =
    List.concat_map (fun (o : Dataset.obs) -> o.Dataset.o_locks) observations
    |> List.sort_uniq Lockdesc.compare
  in
  if List.length union > max_locks then enumerate observations
  else score_all (Rule.permuted_subsets union) observations
