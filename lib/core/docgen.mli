(** The documentation generator (paper Sec. 5.5 / Fig. 8): render mined
    locking rules as a source-comment block that could replace the
    hand-written documentation in, e.g., fs/inode.c. *)

val generate : ?kind:Rule.access -> title:string -> Derivator.mined list -> string
(** [generate ~title mined] groups members by their winning rule and
    emits a C-comment block: a "No locks needed for:" section followed by
    one "<rule> protects:" section per distinct rule. With [?kind], only
    rules for that access kind are rendered (Fig. 8 shows write rules). *)

val member_line :
  Derivator.mined -> string
(** One-line summary "member r/w rule (sa, sr%)" used by the CLI. *)
