(** Object-interrelation report — the paper's future-work direction
    (Sec. 8): "acquire lock L in the list head before accessing a member
    of a list element".

    Every mined embedded-other (EO) rule is evidence of such an
    interrelation: members of one type are protected by a lock living in
    an instance of another type. This module aggregates the EO winners
    into a protection graph between data types, which is exactly the
    structure needed to phrase rules like "the buffer_head's state lock
    protects its journal_head's fields". *)

type relation = {
  r_protected_type : string;  (** base type whose members are protected *)
  r_lock_owner : string;  (** type the lock is embedded in *)
  r_lock_member : string;  (** the lock *)
  r_members : (string * Rule.access) list;  (** protected members *)
}

val analyse : Derivator.mined list -> relation list
(** Group the EO components of all winning rules. Subclass-qualified
    types are collapsed to their base type; rules whose winner is
    "no lock" or purely ES/global contribute nothing. Sorted by
    (protected type, owner, lock). *)

val render : relation list -> string
(** One block per relation: "T.member_lock protects in U: m1 (w), …". *)
