module Pool = Lockdoc_util.Pool
module Obs = Lockdoc_obs.Obs

let c_specs = Obs.counter "check.specs"

type verdict = Correct | Ambivalent | Incorrect | Unobserved

type checked = {
  c_type : string;
  c_member : string;
  c_kind : Rule.access;
  c_rule : Rule.t;
  c_support : Hypothesis.support;
  c_verdict : verdict;
}

let verdict_to_string = function
  | Correct -> "correct"
  | Ambivalent -> "ambivalent"
  | Incorrect -> "incorrect"
  | Unobserved -> "unobserved"

let check_rule dataset ~ty ~member ~kind rule =
  let observations =
    Dataset.merged_base_type dataset ty
    |> List.filter (fun (o : Dataset.obs) ->
           o.Dataset.o_member = member && o.Dataset.o_kind = kind)
  in
  let support = Hypothesis.support_of rule observations in
  let verdict =
    if observations = [] then Unobserved
    else if support.Hypothesis.sr >= 1. then Correct
    else if support.Hypothesis.sa = 0 then Incorrect
    else Ambivalent
  in
  { c_type = ty; c_member = member; c_kind = kind; c_rule = rule;
    c_support = support; c_verdict = verdict }

type spec = {
  sp_type : string;
  sp_member : string;
  sp_kind : Rule.access;
  sp_rule : Rule.t;
}

let check_many ?(jobs = 1) dataset specs =
  Obs.add c_specs (List.length specs);
  if jobs > 1 then Lockdoc_db.Store.seal (Dataset.store dataset);
  Pool.map ~jobs
    (fun s ->
      check_rule dataset ~ty:s.sp_type ~member:s.sp_member ~kind:s.sp_kind
        s.sp_rule)
    specs

type summary = {
  s_type : string;
  s_rules : int;
  s_unobserved : int;
  s_observed : int;
  s_correct : int;
  s_ambivalent : int;
  s_incorrect : int;
}

let summarise checked ty =
  let rows = List.filter (fun c -> c.c_type = ty) checked in
  let count verdict =
    List.length (List.filter (fun c -> c.c_verdict = verdict) rows)
  in
  let unobserved = count Unobserved in
  {
    s_type = ty;
    s_rules = List.length rows;
    s_unobserved = unobserved;
    s_observed = List.length rows - unobserved;
    s_correct = count Correct;
    s_ambivalent = count Ambivalent;
    s_incorrect = count Incorrect;
  }
