module Pool = Lockdoc_util.Pool
module Store = Lockdoc_db.Store
module Obs = Lockdoc_obs.Obs

let c_groups = Obs.counter "derive.groups"
let c_hypotheses = Obs.counter "derive.hypotheses"
let c_observations = Obs.counter "derive.observations"

type mined = {
  m_type : string;
  m_member : string;
  m_kind : Rule.access;
  m_total : int;
  m_winner : Rule.t;
  m_support : Hypothesis.support;
  m_hypotheses : Hypothesis.scored list;
}

let default_tac = 0.9

(* Workers only read the dataset (and through it the store). Seal the
   store before fanning out so any later mutation attempt fails loudly
   instead of racing — see DESIGN.md 5d. *)
let seal_for ~jobs dataset =
  if jobs > 1 then Store.seal (Dataset.store dataset)

let derive_observations ?strategy ?(tac = default_tac) ~ty ~member ~kind
    observations =
  let hypotheses = Hypothesis.enumerate observations in
  Obs.incr c_groups;
  Obs.add c_hypotheses (List.length hypotheses);
  Obs.add c_observations (List.length observations);
  let winner = Selection.select ?strategy ~tac hypotheses in
  {
    m_type = ty;
    m_member = member;
    m_kind = kind;
    m_total = List.length observations;
    m_winner = winner.Hypothesis.rule;
    m_support = winner.Hypothesis.support;
    m_hypotheses = hypotheses;
  }

let derive_member ?strategy ?tac dataset key ~member ~kind =
  let observations = Dataset.by_member dataset key ~member ~kind in
  derive_observations ?strategy ?tac ~ty:key ~member ~kind observations

let derive_merged ?strategy ?tac ?(jobs = 1) dataset base =
  seal_for ~jobs dataset;
  let observations = Dataset.merged_base_type dataset base in
  let keys =
    List.map (fun (o : Dataset.obs) -> (o.Dataset.o_member, o.Dataset.o_kind)) observations
    |> List.sort_uniq compare
  in
  Pool.map ~jobs
    (fun (member, kind) ->
      let obs =
        List.filter
          (fun (o : Dataset.obs) ->
            o.Dataset.o_member = member && o.Dataset.o_kind = kind)
          observations
      in
      derive_observations ?strategy ?tac ~ty:base ~member ~kind obs)
    keys

let derive_type ?strategy ?tac ?(jobs = 1) dataset key =
  seal_for ~jobs dataset;
  Dataset.members_observed dataset key
  |> Pool.map ~jobs (fun (member, kind) ->
         derive_member ?strategy ?tac dataset key ~member ~kind)

(* The derivation groups of the whole dataset, in canonical order: type
   keys ascending, then (member, kind) ascending within each key. This
   is both the sharding unit and the merge order of the parallel path,
   which is what makes [derive_all ~jobs:n] bit-identical to the
   sequential left-to-right map for every [n]. *)
let groups dataset =
  Dataset.type_keys dataset
  |> List.concat_map (fun key ->
         Dataset.members_observed dataset key
         |> List.map (fun (member, kind) -> (key, member, kind)))

let derive_all ?strategy ?tac ?(jobs = 1) dataset =
  seal_for ~jobs dataset;
  Pool.map ~jobs
    (fun (key, member, kind) ->
      derive_member ?strategy ?tac dataset key ~member ~kind)
    (groups dataset)

let needs_no_lock mined = Rule.equal mined.m_winner Rule.no_lock
