type relation = {
  r_protected_type : string;
  r_lock_owner : string;
  r_lock_member : string;
  r_members : (string * Rule.access) list;
}

let base_of key =
  match String.index_opt key ':' with
  | None -> key
  | Some i -> String.sub key 0 i

let analyse mined =
  let table : (string * string * string, (string * Rule.access) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (m : Derivator.mined) ->
      List.iter
        (fun desc ->
          match desc with
          | Lockdesc.Eo (lock_member, owner) ->
              let key = (base_of m.Derivator.m_type, owner, lock_member) in
              let cell =
                match Hashtbl.find_opt table key with
                | Some cell -> cell
                | None ->
                    let cell = ref [] in
                    Hashtbl.replace table key cell;
                    cell
              in
              let entry = (m.Derivator.m_member, m.Derivator.m_kind) in
              if not (List.mem entry !cell) then cell := entry :: !cell
          | Lockdesc.Global _ | Lockdesc.Es _ -> ())
        m.Derivator.m_winner)
    mined;
  Hashtbl.fold
    (fun (r_protected_type, r_lock_owner, r_lock_member) cell acc ->
      {
        r_protected_type;
        r_lock_owner;
        r_lock_member;
        r_members = List.sort compare !cell;
      }
      :: acc)
    table []
  |> List.sort (fun a b ->
         compare
           (a.r_protected_type, a.r_lock_owner, a.r_lock_member)
           (b.r_protected_type, b.r_lock_owner, b.r_lock_member))

let render relations =
  if relations = [] then "no cross-object protection relations mined\n"
  else
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      "cross-object protection relations (mined EO rules):\n";
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "  %s.%s protects in %s:\n" r.r_lock_owner
             r.r_lock_member r.r_protected_type);
        List.iter
          (fun (member, kind) ->
            Buffer.add_string buf
              (Printf.sprintf "    %s (%s)\n" member (Rule.access_to_string kind)))
          r.r_members)
      relations;
    Buffer.contents buf
