(** The locking-rule derivator (paper phase ❷): per (type key, member,
    access kind), enumerate hypotheses, score them, and pick the winner. *)

type mined = {
  m_type : string;  (** type key, e.g. ["inode:ext4"] *)
  m_member : string;
  m_kind : Rule.access;
  m_total : int;  (** observations of this member/kind *)
  m_winner : Rule.t;
  m_support : Hypothesis.support;  (** support of the winner *)
  m_hypotheses : Hypothesis.scored list;  (** all scored hypotheses *)
}

val default_tac : float
(** 0.9 — the acceptance threshold of paper Sec. 7.4. *)

val groups : Dataset.t -> (string * string * Rule.access) list
(** The derivation groups of a dataset in canonical order: type keys
    ascending, then (member, kind) ascending within each key. This is
    the sharding unit and merge order of {!derive_all}; the online
    derivator iterates it in the same order so its frozen output lines
    up byte-for-byte. *)

val derive_observations :
  ?strategy:Selection.strategy ->
  ?tac:float ->
  ty:string ->
  member:string ->
  kind:Rule.access ->
  Dataset.obs list ->
  mined
(** Derive from an explicit observation list (used for merged base-type
    views). *)

val derive_merged :
  ?strategy:Selection.strategy -> ?tac:float -> ?jobs:int -> Dataset.t ->
  string -> mined list
(** Derive rules for a base type with all subclasses merged — the view
    the generated fs/inode.c documentation of paper Fig. 8 takes. *)

val derive_member :
  ?strategy:Selection.strategy ->
  ?tac:float ->
  Dataset.t ->
  string ->
  member:string ->
  kind:Rule.access ->
  mined
(** Derive one member's rule. [tac] defaults to 0.9 (paper Sec. 7.4,
    adopted from Engler et al.). *)

val derive_type :
  ?strategy:Selection.strategy -> ?tac:float -> ?jobs:int -> Dataset.t ->
  string -> mined list
(** All observed members of a type key, reads and writes separately. *)

val derive_all :
  ?strategy:Selection.strategy -> ?tac:float -> ?jobs:int -> Dataset.t ->
  mined list
(** Mine every (type key, member, access kind) group of the dataset.

    [jobs] (default 1) fans the per-group work out over that many
    domains via {!Lockdoc_util.Pool}; groups are sharded by key and
    merged in canonical key order, so the result is bit-identical to
    the sequential path for every domain count. [jobs > 1] seals the
    underlying store ({!Lockdoc_db.Store.seal}): workers share it
    read-only. *)

val needs_no_lock : mined -> bool
(** The winner is the "no lock" rule (the #Nl columns of paper Tab. 6). *)
