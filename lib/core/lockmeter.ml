module Event = Lockdoc_trace.Event
module Trace = Lockdoc_trace.Trace
module Schema = Lockdoc_db.Schema
module Store = Lockdoc_db.Store

type stat = {
  s_class : Lockdep.lock_class;
  s_acquisitions : int;
  s_reader_acquisitions : int;
  s_instances : int;
  s_total_hold : int;
  s_max_hold : int;
  s_accesses_under : int;
}

let mean_hold s =
  if s.s_acquisitions = 0 then 0.
  else float_of_int s.s_total_hold /. float_of_int s.s_acquisitions

type acc = {
  mutable acquisitions : int;
  mutable reader_acquisitions : int;
  instances : (int, unit) Hashtbl.t;
  mutable total_hold : int;
  mutable max_hold : int;
  mutable accesses_under : int;
}

let fresh () =
  {
    acquisitions = 0;
    reader_acquisitions = 0;
    instances = Hashtbl.create 8;
    total_hold = 0;
    max_hold = 0;
    accesses_under = 0;
  }

let analyse trace store =
  let stats : (Lockdep.lock_class, acc) Hashtbl.t = Hashtbl.create 64 in
  let acc_of cls =
    match Hashtbl.find_opt stats cls with
    | Some a -> a
    | None ->
        let a = fresh () in
        Hashtbl.replace stats cls a;
        a
  in
  (* Lock classes come from the store's lock table (it knows parentage);
     resolve a raw pointer to its class via the most recent lock row. *)
  let class_by_ptr : (int, Lockdep.lock_class) Hashtbl.t = Hashtbl.create 128 in
  Store.iter_locks store (fun lk ->
      let cls =
        match lk.Schema.lk_parent with
        | None -> Lockdep.Static lk.Schema.lk_name
        | Some (al_id, member) ->
            let al = Store.allocation store al_id in
            let dt = Store.data_type store al.Schema.al_type in
            Lockdep.Member (dt.Schema.dt_name, member)
      in
      Hashtbl.replace class_by_ptr lk.Schema.lk_ptr cls);
  (* Hold spans: per lock pointer, remember the acquisition event index
     (a stack, for reentrant locks like RCU). *)
  let open_acquires : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun idx ev ->
      match ev with
      | Event.Lock_acquire { lock_ptr; side; _ } -> (
          match Hashtbl.find_opt class_by_ptr lock_ptr with
          | None -> ()
          | Some cls ->
              let a = acc_of cls in
              a.acquisitions <- a.acquisitions + 1;
              if side = Event.Shared then
                a.reader_acquisitions <- a.reader_acquisitions + 1;
              Hashtbl.replace a.instances lock_ptr ();
              let stack =
                match Hashtbl.find_opt open_acquires lock_ptr with
                | Some s -> s
                | None ->
                    let s = ref [] in
                    Hashtbl.replace open_acquires lock_ptr s;
                    s
              in
              stack := idx :: !stack)
      | Event.Lock_release { lock_ptr; _ } -> (
          match Hashtbl.find_opt open_acquires lock_ptr with
          | Some ({ contents = start :: rest } as stack) ->
              stack := rest;
              (match Hashtbl.find_opt class_by_ptr lock_ptr with
              | Some cls ->
                  let a = acc_of cls in
                  let span = idx - start in
                  a.total_hold <- a.total_hold + span;
                  if span > a.max_hold then a.max_hold <- span
              | None -> ())
          | Some { contents = [] } | None -> ())
      | Event.Alloc _ | Event.Free _ | Event.Mem_access _ | Event.Fun_enter _
      | Event.Fun_exit _ | Event.Ctx_switch _ -> ())
    trace.Trace.events;
  (* Accesses made while a class was held, from the store's txns. *)
  Store.iter_accesses store (fun a ->
      match a.Schema.ac_txn with
      | None -> ()
      | Some txn_id ->
          let txn = Store.txn store txn_id in
          List.iter
            (fun h ->
              let lk = Store.lock store h.Schema.h_lock in
              match Hashtbl.find_opt class_by_ptr lk.Schema.lk_ptr with
              | Some cls ->
                  let acc = acc_of cls in
                  acc.accesses_under <- acc.accesses_under + 1
              | None -> ())
            txn.Schema.tx_locks);
  Hashtbl.fold
    (fun cls a rows ->
      {
        s_class = cls;
        s_acquisitions = a.acquisitions;
        s_reader_acquisitions = a.reader_acquisitions;
        s_instances = Hashtbl.length a.instances;
        s_total_hold = a.total_hold;
        s_max_hold = a.max_hold;
        s_accesses_under = a.accesses_under;
      }
      :: rows)
    stats []
  |> List.sort (fun a b -> Int.compare b.s_acquisitions a.s_acquisitions)

let render ?(top = 15) stats =
  let table =
    Lockdoc_util.Tablefmt.create
      ~header:
        [ "Lock class"; "Acq"; "Reader"; "Inst"; "Mean hold"; "Max hold";
          "Accesses" ]
  in
  Lockdoc_util.Tablefmt.set_align table
    Lockdoc_util.Tablefmt.[ Left; Right; Right; Right; Right; Right; Right ];
  List.iteri
    (fun i s ->
      if i < top then
        Lockdoc_util.Tablefmt.add_row table
          [
            Lockdep.class_to_string s.s_class;
            string_of_int s.s_acquisitions;
            string_of_int s.s_reader_acquisitions;
            string_of_int s.s_instances;
            Printf.sprintf "%.1f" (mean_hold s);
            string_of_int s.s_max_hold;
            string_of_int s.s_accesses_under;
          ])
    stats;
  Printf.sprintf "lockmeter: %d lock classes, top %d by acquisitions\n%s"
    (List.length stats)
    (min top (List.length stats))
    (Lockdoc_util.Tablefmt.render table)
