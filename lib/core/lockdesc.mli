(** Lock descriptors: how a held lock relates to the accessed object.

    LockDoc abstracts lock {e instances} into three positional classes
    (paper Sec. 7.3, Tab. 5/8, Fig. 8):

    - a statically allocated global lock ("inode_hash_lock");
    - [ES] — a lock embedded in the {e same} object instance the access
      goes to ("ES(i_lock in inode)");
    - [EO] — a lock embedded in some {e other} object, of possibly the
      same or a different type ("EO(wb.list_lock in backing_dev_info)").

    Two transactions protecting different inodes by their own [i_lock]
    thereby support the same rule. *)

type t =
  | Global of string
  | Es of string  (** member name of the lock in the accessed object *)
  | Eo of string * string  (** lock member name, owning data type *)

val to_string : t -> string
(** Paper notation: ["inode_hash_lock"], ["ES(i_lock)"],
    ["EO(wb.list_lock in backing_dev_info)"]. *)

val of_string : string -> t
(** Accepts the {!to_string} forms plus an explicit ["G(name)"] for
    globals. Raises [Failure] on malformed input. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val classify :
  store:Lockdoc_db.Store.t ->
  accessed_alloc:int ->
  Lockdoc_db.Schema.lock ->
  t
(** Positional classification of a held lock relative to the accessed
    allocation. *)
