(** The rule-violation finder (paper Sec. 5.5 / 7.5): assuming the mined
    rules are correct, locate the accesses that break them and hand the
    developer everything needed to investigate — member, expected locks,
    locks actually held, source location and stack trace. *)

type violation = {
  v_type : string;  (** type key *)
  v_member : string;
  v_kind : Rule.access;
  v_rule : Rule.t;  (** the violated (mined) rule *)
  v_held : Lockdesc.t list;  (** locks actually held *)
  v_events : int;  (** folded accesses in this observation *)
  v_loc : Lockdoc_trace.Srcloc.t;  (** site of the first offending access *)
  v_stack : string list;  (** innermost frame first *)
}

val find : ?jobs:int -> Dataset.t -> Derivator.mined list -> violation list
(** Scan every mined rule with sr < 1 for non-complying observations.
    Rules whose winner is "no lock" cannot be violated. [jobs]
    (default 1) shards the scan by mined rule over that many domains;
    the violation list is bit-identical to the sequential scan
    ([jobs > 1] seals the store — see {!Lockdoc_db.Store.seal}). *)

type summary = {
  vs_type : string;
  vs_events : int;  (** rule-violating memory-access events *)
  vs_members : int;  (** distinct members involved *)
  vs_contexts : int;  (** distinct (location, stack) contexts *)
}

val summarise : violation list -> string -> summary
(** Per-type aggregate (paper Tab. 7). *)

val contexts : violation list -> (Lockdoc_trace.Srcloc.t * string list) list
(** Distinct contexts over a violation list. *)
