type t = Global of string | Es of string | Eo of string * string

let to_string = function
  | Global name -> name
  | Es member -> Printf.sprintf "ES(%s)" member
  | Eo (member, ty) -> Printf.sprintf "EO(%s in %s)" member ty

let strip_parens prefix s =
  let plen = String.length prefix + 1 in
  if
    String.length s > plen
    && String.sub s 0 (plen - 1) = prefix
    && s.[plen - 1] = '('
    && s.[String.length s - 1] = ')'
  then Some (String.sub s plen (String.length s - plen - 1))
  else None

let of_string s =
  let s = String.trim s in
  match strip_parens "ES" s with
  | Some member -> Es member
  | None -> (
      match strip_parens "EO" s with
      | Some inner -> (
          match String.index_opt inner ' ' with
          | Some _ -> (
              (* "member in type" *)
              match String.split_on_char ' ' inner with
              | [ member; "in"; ty ] -> Eo (member, ty)
              | _ -> failwith ("Lockdesc.of_string: bad EO spec " ^ s))
          | None -> failwith ("Lockdesc.of_string: bad EO spec " ^ s))
      | None -> (
          match strip_parens "G" s with
          | Some name -> Global name
          | None ->
              if s = "" then failwith "Lockdesc.of_string: empty descriptor"
              else Global s))

let compare a b =
  match (a, b) with
  | Global x, Global y -> String.compare x y
  | Global _, _ -> -1
  | _, Global _ -> 1
  | Es x, Es y -> String.compare x y
  | Es _, _ -> -1
  | _, Es _ -> 1
  | Eo (m1, t1), Eo (m2, t2) -> (
      match String.compare t1 t2 with 0 -> String.compare m1 m2 | c -> c)

let equal a b = compare a b = 0

let classify ~store ~accessed_alloc (lock : Lockdoc_db.Schema.lock) =
  match lock.Lockdoc_db.Schema.lk_parent with
  | None -> Global lock.Lockdoc_db.Schema.lk_name
  | Some (al_id, member) ->
      if al_id = accessed_alloc then Es member
      else
        let al = Lockdoc_db.Store.allocation store al_id in
        let dt = Lockdoc_db.Store.data_type store al.Lockdoc_db.Schema.al_type in
        Eo (member, dt.Lockdoc_db.Schema.dt_name)
