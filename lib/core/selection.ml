type strategy = Lockdoc | Naive

let nolock_scored scored =
  match
    List.find_opt (fun s -> Rule.equal s.Hypothesis.rule Rule.no_lock) scored
  with
  | Some s -> s
  | None -> invalid_arg "Selection.select: no-lock hypothesis missing"

let select ?(strategy = Lockdoc) ~tac scored =
  let accepted =
    List.filter (fun s -> s.Hypothesis.support.Hypothesis.sr >= tac) scored
  in
  match strategy with
  | Lockdoc ->
      (* Lowest sr in the accepted group; ties prefer more locks, then a
         deterministic notation order. *)
      let better a b =
        let sra = a.Hypothesis.support.Hypothesis.sr
        and srb = b.Hypothesis.support.Hypothesis.sr in
        if sra < srb then true
        else if sra > srb then false
        else
          let la = List.length a.Hypothesis.rule
          and lb = List.length b.Hypothesis.rule in
          if la > lb then true
          else if la < lb then false
          else Rule.compare a.Hypothesis.rule b.Hypothesis.rule < 0
      in
      List.fold_left
        (fun best s -> if better s best then s else best)
        (nolock_scored scored) accepted
  | Naive ->
      let with_locks =
        List.filter (fun s -> s.Hypothesis.rule <> Rule.no_lock) accepted
      in
      let best_locked =
        List.fold_left
          (fun best s ->
            match best with
            | None -> Some s
            | Some b ->
                if
                  s.Hypothesis.support.Hypothesis.sr
                  > b.Hypothesis.support.Hypothesis.sr
                then Some s
                else best)
          None with_locks
      in
      (match best_locked with
      | Some s -> s
      | None -> nolock_scored scored)
