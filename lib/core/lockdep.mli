(** A miniature lockdep: the in-situ lock-order validator the paper
    contrasts LockDoc with (Sec. 3.2).

    Like the kernel's lockdep, locks are grouped into {e classes} — one
    class per static lock, one per (data type, member) for embedded locks
    — and an acquisition-order graph is built from the trace: an edge
    A → B is recorded whenever B is acquired while A is held. Cycles in
    this graph are potential deadlocks; same-class (self) edges indicate
    nested locking that would need lockdep's nesting annotations.

    This is the complementary baseline analysis: lockdep validates lock
    {e ordering} per class, LockDoc mines which locks protect which
    {e members}. Neither subsumes the other. *)

type lock_class =
  | Static of string  (** a global lock, by variable name *)
  | Member of string * string  (** (data type, member) of embedded locks *)

val class_to_string : lock_class -> string

type edge = {
  e_from : lock_class;
  e_to : lock_class;
  e_count : int;  (** acquisitions observed in this order *)
  e_example : Lockdoc_trace.Srcloc.t;  (** one site acquiring [e_to] *)
}

type report = {
  classes : lock_class list;
  edges : edge list;
  cycles : lock_class list list;
      (** each cycle as the class sequence a → b → … → a (last element
          omitted); potential ABBA deadlocks *)
  self_nesting : edge list;
      (** same-class nesting (two instances of one class held together) *)
}

val class_of : Lockdoc_db.Store.t -> Lockdoc_db.Schema.lock -> lock_class
(** Classing rule shared with the other in-situ analyses: static locks by
    name, embedded locks by (data type, member). *)

val canonicalise : lock_class list -> lock_class list
(** Rotate a cycle so its lexicographically smallest class leads. The
    report's cycles are canonical: each cyclic lock-order appears exactly
    once (rotations and the reversed traversal of the same scenario are
    deduplicated), sorted by class names. *)

val analyse : Lockdoc_db.Store.t -> report
(** Build the acquisition-order graph over every transaction of the store
    and search it for cycles. *)

val render : report -> string
(** Human-readable report, lockdep-splat style. *)
