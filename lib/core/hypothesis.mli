(** Locking-rule hypotheses and their support (paper Sec. 4.3 / 5.4).

    For one (member, access kind) the hypothesis space is every ordered
    subset of every observed lock combination — this enumerates exactly
    the hypotheses with absolute support ≥ 1 without iterating over all
    lock combinations in the system (Sec. 5.4). Support of a hypothesis:

    - absolute [sa] — number of observations complying with it;
    - relative [sr] — [sa] divided by the number of observations of the
      member. *)

type support = { sa : int; sr : float }

type scored = { rule : Rule.t; support : support }

val support_of : Rule.t -> Dataset.obs list -> support
(** Score one rule against the observations of a member. *)

val sort_scored : scored list -> scored list
(** The canonical hypothesis order: descending [sa], then more locks
    first, then {!Rule.compare} — a total order for distinct rules, so
    any permutation of the same scored set sorts to the same list. The
    online derivator relies on this to reconstruct, from incremental
    counters, a hypothesis list byte-identical to {!enumerate}. *)

val enumerate : Dataset.obs list -> scored list
(** Observed-combination enumeration (Sec. 5.4): ordered subsets of each
    observed combination, deduplicated, scored; always contains the
    "no lock" rule. Sorted by descending [sa], then more locks first. *)

val enumerate_exhaustive : ?max_locks:int -> Dataset.obs list -> scored list
(** The naïve Sec. 4.3 enumeration: all subsets of the union of observed
    locks in every possible order (so hypotheses with [sa = 0] appear,
    as in the paper's Tab. 2). [max_locks] (default 4) caps the union
    size; beyond it, falls back to {!enumerate}. *)
