let wrap_members members =
  (* Break the member list into comment lines of at most ~64 chars. *)
  let rec lines acc current = function
    | [] -> List.rev (if current = "" then acc else current :: acc)
    | m :: rest ->
        let candidate = if current = "" then m else current ^ ", " ^ m in
        if String.length candidate > 64 then lines (current :: acc) m rest
        else lines acc candidate rest
  in
  lines [] "" members

let generate ?kind ~title mined =
  let mined =
    match kind with
    | None -> mined
    | Some k -> List.filter (fun m -> m.Derivator.m_kind = k) mined
  in
  let groups : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let group_order = ref [] in
  List.iter
    (fun (m : Derivator.mined) ->
      let rule_str = Rule.to_string m.Derivator.m_winner in
      let cell =
        match Hashtbl.find_opt groups rule_str with
        | Some cell -> cell
        | None ->
            let cell = ref [] in
            Hashtbl.replace groups rule_str cell;
            group_order := rule_str :: !group_order;
            cell
      in
      cell := m.Derivator.m_member :: !cell)
    mined;
  let buf = Buffer.create 512 in
  Buffer.add_string buf "/*\n";
  Buffer.add_string buf (Printf.sprintf " * %s locking rules:\n *\n" title);
  let emit_group header members =
    Buffer.add_string buf (Printf.sprintf " * %s\n" header);
    List.iter
      (fun line -> Buffer.add_string buf (Printf.sprintf " *   %s\n" line))
      (wrap_members (List.sort String.compare members))
  in
  let ordered = List.rev !group_order in
  (* "No locks needed" first, as in the paper's Fig. 8. *)
  (match Hashtbl.find_opt groups "nolock" with
  | Some cell -> emit_group "No locks needed for:" (List.rev !cell)
  | None -> ());
  List.iter
    (fun rule_str ->
      if rule_str <> "nolock" then
        let cell = Hashtbl.find groups rule_str in
        emit_group (Printf.sprintf "%s protects:" rule_str) (List.rev !cell))
    ordered;
  Buffer.add_string buf " */";
  Buffer.contents buf

let member_line (m : Derivator.mined) =
  Printf.sprintf "%-28s %s  %-40s sa=%d sr=%.2f%%" m.Derivator.m_member
    (Rule.access_to_string m.Derivator.m_kind)
    (Rule.to_string m.Derivator.m_winner)
    m.Derivator.m_support.Hypothesis.sa
    (100. *. m.Derivator.m_support.Hypothesis.sr)
