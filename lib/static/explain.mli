(** Differential meta-check: dynamic ⊆ static.

    Every function scope in an execution trace is re-assembled into a
    word of IR letters (lock operations, member accesses, calls) and
    checked for membership in the language of the function's registered
    {!Lockdoc_ksim.Skeleton}. A trace event no IR path can explain means
    the static model has drifted from the simulated kernel — the same
    soundness obligation a real-kernel deployment would discharge against
    compiler-extracted CFGs.

    Top-level events outside any function frame (e.g. the hardirq /
    softirq pseudo-lock envelope the runtime wraps around handlers) are
    outside the IR's scope and are skipped. Accesses to memory that is
    not a monitored allocation and releases of never-acquired lock
    pointers are counted but are not failures. *)

type failure = {
  fl_fn : string;
  fl_word : string;  (** the rendered letter word that was rejected *)
}

type result = {
  ex_frames : int;  (** function scopes checked *)
  ex_ok : int;
  ex_failures : failure list;  (** first rejected word per function *)
  ex_missing : string list;  (** executed functions with no skeleton *)
  ex_unresolved_access : int;  (** accesses outside monitored allocations *)
  ex_unresolved_release : int;  (** releases of unknown lock pointers *)
}

val check : Lockdoc_trace.Trace.t -> result

val is_clean : result -> bool
(** No rejected words and no missing skeletons. *)
