(** Interprocedural fixpoint analyses over the declarative kernel IR
    ({!Lockdoc_ksim.Skeleton}).

    Three whole-program analyses share one engine:

    - {b must-held locksets} — for every static member-access site, the
      ordered list of locks provably held on {e every} IR path reaching
      it, with call-path witnesses back to a workload root. The lint
      layer checks these sites against the dynamically mined rules.
    - {b may-held locksets / lock order} — the union over paths, which
      yields the static acquisition-order graph and its ABBA cycles,
      cross-checked against the dynamic {!Lockdoc_core.Lockdep} report.
    - {b context lints} — sleep-in-atomic (a blocking acquire or
      [Blocks] point reachable with a spin-family lock held) and
      irq-unsafety (a lock class also taken in irq context acquired in
      process context without interrupts masked).

    The engine is a deterministic Jacobi fixpoint: per round, every
    function body is summarised independently ({!Lockdoc_util.Pool}
    fans the walks out over domains, order-preserving), then entry
    locksets are recombined sequentially in sorted function order — the
    result is bit-identical for every [jobs] count.

    Functions with [Wild] bodies (constructors, destructors, atomic
    helpers) are excluded throughout, mirroring the dynamic importer's
    function blacklist. *)

module Event = Lockdoc_trace.Event
module Lockdep = Lockdoc_core.Lockdep

(** A lock after variable resolution inside one function's namespace:
    a global, or a member lock of an object variable (caller-opaque
    variables are ["^"]-prefixed by the bind plumbing). *)
type slock = Sg of string | Sm of { ty : string; var : string; member : string }

val slock_to_string : slock -> string

(** One held lock: resolved identity plus the acquire kind/side. *)
type held = { h_lock : slock; h_kind : Event.lock_kind; h_side : Event.lock_side }

val held_to_string : held -> string

val class_of_slock : slock -> Lockdep.lock_class
(** Lock classing shared with the dynamic analyses: globals by name,
    member locks by (type, member). *)

(** A static member-access site. *)
type site = {
  st_fn : string;
  st_subsystem : string;
  st_ty : string;
  st_var : string;
  st_member : string;
  st_kind : Event.access_kind;
  st_must : held list;  (** acquisition order; provable on every path *)
  st_may : held list;  (** union over paths *)
}

(** A static lock-acquisition site ([Irq_off]/[Bh_off] count as pseudo
    acquisitions, mirroring the runtime's mask pseudo-locks). *)
type acq = {
  aq_fn : string;
  aq_subsystem : string;
  aq_class : Lockdep.lock_class;
  aq_kind : Event.lock_kind;
  aq_side : Event.lock_side;
  aq_must : held list;  (** held before this acquisition *)
  aq_may : held list;
}

(** An edge of the static acquisition-order graph: [sd_to] acquired
    somewhere while [sd_from] may be held. *)
type sedge = {
  sd_from : Lockdep.lock_class;
  sd_to : Lockdep.lock_class;
  sd_count : int;  (** distinct static acquisition sites *)
  sd_fns : string list;  (** acquiring functions, sorted *)
}

type irq_finding = {
  iq_class : Lockdep.lock_class;
  iq_fn : string;  (** process-context acquirer with irqs unmasked *)
  iq_irq_fn : string;  (** an irq-context function taking the class *)
  iq_witness : string list;  (** call path root -> ... -> [iq_fn] *)
}

type sleep_finding = {
  sl_fn : string;
  sl_what : string;  (** the blocking point, e.g. ["mutex j_barrier"] *)
  sl_held : held list;  (** the atomic-context locks held around it *)
  sl_must : bool;  (** true: provable on every path; false: some path *)
}

type t = {
  functions : int;  (** analysed (non-Wild) functions *)
  wild_functions : int;
  ir_nodes : int;  (** total IR size over every registered skeleton *)
  roots : string list;
  effect_rounds : int;  (** lock-effect summary fixpoint rounds *)
  entry_rounds : int;  (** entry-lockset fixpoint rounds *)
  sites : site list;  (** every access site, function-sorted *)
  acquires : acq list;
  edges : sedge list;  (** distinct-class order edges, sorted *)
  self_edges : sedge list;  (** same-class nesting *)
  cycles : Lockdep.lock_class list list;  (** canonical, sorted *)
  irq_unsafe : irq_finding list;
  sleeps : sleep_finding list;
  entries : (string * held list) list;  (** must-entry lockset per fn *)
  witnesses : (string * string list) list;
      (** fn -> shortest call path from a root (BFS, name-ordered) *)
}

val analyse : ?jobs:int -> unit -> t
(** Run all analyses over the current {!Lockdoc_ksim.Skeleton} registry.
    [jobs] (default 1) parallelises the per-function walks; the result
    is bit-identical for any value. *)

val witness : t -> string -> string list
(** Call path for a function; [[fn]] if it was never reached. *)
