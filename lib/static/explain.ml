module Event = Lockdoc_trace.Event
module Trace = Lockdoc_trace.Trace
module Layout = Lockdoc_trace.Layout
module Skeleton = Lockdoc_ksim.Skeleton

type failure = { fl_fn : string; fl_word : string }

type result = {
  ex_frames : int;
  ex_ok : int;
  ex_failures : failure list;
  ex_missing : string list;
  ex_unresolved_access : int;
  ex_unresolved_release : int;
}

type frame = { fname : string; mutable letters : Skeleton.letter list (* reversed *) }

module Imap = Map.Make (Int)

let base_type name =
  match String.index_opt name ':' with
  | Some i -> String.sub name 0 i
  | None -> name

(* [dentry_free] may be deferred through call_rcu, in which case its
   scope replays inside whatever function next drains the queue — a
   scheduling artefact, not a control-flow edge, so the call letter is
   dropped before matching. *)
let deferred = function Skeleton.L_call "dentry_free" -> false | _ -> true

let render letters =
  String.concat " " (List.map Skeleton.letter_to_string letters)

let check (trace : Trace.t) =
  let layout_by_name = Hashtbl.create 16 in
  List.iter
    (fun (l : Layout.t) -> Hashtbl.replace layout_by_name l.Layout.ty_name l)
    trace.Trace.layouts;
  let allocs = ref Imap.empty in
  let lock_ids : (int, string * Event.lock_kind) Hashtbl.t = Hashtbl.create 64 in
  let stacks : (int, frame list ref) Hashtbl.t = Hashtbl.create 8 in
  let flow = ref 0 in
  let stack () =
    match Hashtbl.find_opt stacks !flow with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks !flow s;
        s
  in
  let push_letter l =
    match !(stack ()) with
    | top :: _ -> top.letters <- l :: top.letters
    | [] -> () (* top-level: outside the IR's scope *)
  in
  let frames = ref 0 in
  let ok = ref 0 in
  let failures = ref [] in
  let failed_fns = Hashtbl.create 8 in
  let missing = Hashtbl.create 8 in
  let unresolved_access = ref 0 in
  let unresolved_release = ref 0 in
  Array.iter
    (fun (ev : Event.t) ->
      match ev with
      | Event.Ctx_switch { pid; _ } -> flow := pid
      | Event.Alloc { ptr; size; data_type; _ } -> (
          match Hashtbl.find_opt layout_by_name (base_type data_type) with
          | Some l -> allocs := Imap.add ptr (size, l) !allocs
          | None -> ())
      | Event.Free { ptr } -> allocs := Imap.remove ptr !allocs
      | Event.Lock_acquire { lock_ptr; kind; side; name; _ } ->
          Hashtbl.replace lock_ids lock_ptr (name, kind);
          push_letter (Skeleton.L_acquire { name; kind; side })
      | Event.Lock_release { lock_ptr; _ } -> (
          match Hashtbl.find_opt lock_ids lock_ptr with
          | Some (name, kind) -> push_letter (Skeleton.L_release { name; kind })
          | None -> incr unresolved_release)
      | Event.Mem_access { ptr; kind; _ } -> (
          match Imap.find_last_opt (fun b -> b <= ptr) !allocs with
          | Some (base, (size, layout)) when ptr < base + size -> (
              match Layout.member_at layout (ptr - base) with
              | Some m ->
                  push_letter
                    (Skeleton.L_access
                       {
                         ty = layout.Layout.ty_name;
                         member = m.Layout.m_name;
                         kind;
                       })
              | None -> incr unresolved_access)
          | _ -> incr unresolved_access)
      | Event.Fun_enter { fn; _ } ->
          push_letter (Skeleton.L_call fn);
          let s = stack () in
          s := { fname = fn; letters = [] } :: !s
      | Event.Fun_exit { fn = _ } -> (
          let s = stack () in
          match !s with
          | [] -> ()
          | top :: rest ->
              s := rest;
              incr frames;
              let word = List.filter deferred (List.rev top.letters) in
              (match Skeleton.find top.fname with
              | None -> Hashtbl.replace missing top.fname ()
              | Some f ->
                  if Skeleton.accepts f word then incr ok
                  else if not (Hashtbl.mem failed_fns top.fname) then begin
                    Hashtbl.replace failed_fns top.fname ();
                    failures :=
                      { fl_fn = top.fname; fl_word = render word } :: !failures
                  end)))
    trace.Trace.events;
  {
    ex_frames = !frames;
    ex_ok = !ok;
    ex_failures = List.rev !failures;
    ex_missing = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) missing []);
    ex_unresolved_access = !unresolved_access;
    ex_unresolved_release = !unresolved_release;
  }

let is_clean r = r.ex_failures = [] && r.ex_missing = []
