(** The static lock-discipline lint: cross-validation of the IR analyses
    ({!Summary}) against a dynamic trace of the same kernel.

    One {!run} performs the full pipeline of the paper's Sec. 7 with the
    roles reversed: the trace is imported and rules are mined exactly as
    [lockdoc derive] does, then every {e static} member-access site is
    checked against the mined rule for its (type, member, kind) — a site
    whose must-held lockset cannot satisfy the rule on {e any} execution
    is a provable violation, reported with a call-path witness. On top
    of that:

    - writes with no protective lock on every path ("unprotected
      writes") — the bucket the seeded ground-truth races must land in;
    - the static acquisition-order graph is diffed against the dynamic
      {!Lockdoc_core.Lockdep} report (dynamic edges and cycles the IR
      cannot produce indicate model drift);
    - coverage gaps: statically reachable (type, member, kind) triples
      never observed dynamically — untested lock-discipline surface;
    - the context lints (sleep-in-atomic, irq-unsafe classes) from
      {!Summary} pass through into the report.

    The dynamic side for the order diff is re-imported with
    [Import.Separate] irq accounting: with inheritance enabled an irq
    handler observes the interrupted flow's locks, creating cross-flow
    edges no single static path can witness. *)

module Event = Lockdoc_trace.Event
module Rule = Lockdoc_core.Rule
module Lockdesc = Lockdoc_core.Lockdesc
module Import = Lockdoc_db.Import
module Report = Lockdoc_core.Report

type violation = {
  v_site : Summary.site;
  v_rule : Rule.t;  (** the mined winner the site cannot satisfy *)
  v_held : Lockdesc.t list;  (** the site's must-held set, classified *)
  v_support : float;  (** relative support of the violated rule *)
  v_witness : string list;
}

type unprotected = {
  u_site : Summary.site;
  u_rule : Rule.t option;  (** mined winner for the member, if any *)
  u_witness : string list;
}

type gap = {
  g_ty : string;
  g_member : string;
  g_kind : Event.access_kind;
  g_subsystem : string;
  g_fns : string list;  (** static accessors, sorted *)
}

(** Static-vs-dynamic acquisition-order diff, restricted to lock classes
    the IR models. *)
type order_check = {
  oc_confirmed : int;  (** dynamic edges present in the static graph *)
  oc_dynamic_only : (string * string) list;  (** model drift if nonempty *)
  oc_static_only : int;  (** statically possible, never exercised *)
  oc_cycles_covered : int;  (** dynamic cycles fully edge-covered *)
  oc_cycles_uncovered : string list list;
}

type t = {
  workload : string;
  jobs : int;
  summary : Summary.t;
  import_stats : Import.stats;
  mined_rules : int;  (** (type, member, kind) rules mined from the trace *)
  violations : violation list;
  unprotected : unprotected list;
  gaps : gap list;
  order : order_check;
}

val run : ?jobs:int -> workload:string -> Lockdoc_trace.Trace.t -> t
(** Full pipeline over one trace. [jobs] parallelises both the mining
    and the static fixpoints; output is bit-identical for any value. *)

val render : t -> string
(** Plain-text report (tables + findings). *)

val to_json : t -> Report.json
