module Event = Lockdoc_trace.Event
module Layout = Lockdoc_trace.Layout
module Trace = Lockdoc_trace.Trace
module Import = Lockdoc_db.Import
module Filter = Lockdoc_db.Filter
module Rule = Lockdoc_core.Rule
module Lockdesc = Lockdoc_core.Lockdesc
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Lockdep = Lockdoc_core.Lockdep
module Report = Lockdoc_core.Report
module Tablefmt = Lockdoc_util.Tablefmt
module Structs = Lockdoc_ksim.Structs
module Skeleton = Lockdoc_ksim.Skeleton

(* Referencing Run forces the whole ksim library — and with it every
   skeleton registration initialiser — to be linked. *)
let () = ignore Lockdoc_ksim.Run.workload_names

type violation = {
  v_site : Summary.site;
  v_rule : Rule.t;
  v_held : Lockdesc.t list;
  v_support : float;
  v_witness : string list;
}

type unprotected = {
  u_site : Summary.site;
  u_rule : Rule.t option;
  u_witness : string list;
}

type gap = {
  g_ty : string;
  g_member : string;
  g_kind : Event.access_kind;
  g_subsystem : string;
  g_fns : string list;
}

type order_check = {
  oc_confirmed : int;
  oc_dynamic_only : (string * string) list;
  oc_static_only : int;
  oc_cycles_covered : int;
  oc_cycles_uncovered : string list list;
}

type t = {
  workload : string;
  jobs : int;
  summary : Summary.t;
  import_stats : Import.stats;
  mined_rules : int;
  violations : violation list;
  unprotected : unprotected list;
  gaps : gap list;
  order : order_check;
}

let base_type name =
  match String.index_opt name ':' with
  | Some i -> String.sub name 0 i
  | None -> name

let access_of_rule = function Rule.R -> Event.Read | Rule.W -> Event.Write

let kind_str = function Event.Read -> "r" | Event.Write -> "w"

(* A static held lock, classified relative to the accessed object the
   way {!Lockdesc.classify} classifies a dynamic one: the site's own
   variable yields an embedded-same lock, everything else an
   embedded-other or global. *)
let desc_of_held ~ty ~var (h : Summary.held) =
  match h.Summary.h_lock with
  | Summary.Sg n -> Lockdesc.Global n
  | Summary.Sm { ty = lty; var = lvar; member } ->
      if lvar = var && lty = ty then Lockdesc.Es member
      else Lockdesc.Eo (member, lty)

let protective (h : Summary.held) =
  match h.Summary.h_kind with
  | Event.Pseudo -> false
  | Event.Rcu -> h.Summary.h_side = Event.Exclusive
  | _ -> true

(* Data members only, minus the importer's member blacklist — the same
   site universe the dynamic pipeline keeps. *)
let kept_site (s : Summary.site) =
  (not
     (Filter.member_blacklisted Filter.default ~ty:s.Summary.st_ty
        ~member:s.Summary.st_member))
  &&
  match
    List.find_opt
      (fun (l : Layout.t) -> l.Layout.ty_name = s.Summary.st_ty)
      Structs.all
  with
  | None -> false
  | Some l -> (
      match Layout.find_member l s.Summary.st_member with
      | m -> m.Layout.m_kind = Layout.Data
      | exception Not_found -> false)

let run ?(jobs = 1) ~workload trace =
  (* Dynamic side 1: the paper's pipeline — import (irq inheritance on)
     and mine rules per merged base type. *)
  let store, stats = Import.run trace in
  let dataset = Dataset.of_store store in
  let bases =
    List.sort_uniq compare (List.map base_type (Dataset.type_keys dataset))
  in
  let mined =
    List.concat_map
      (fun base ->
        List.map
          (fun (m : Derivator.mined) ->
            ((base, m.Derivator.m_member, access_of_rule m.Derivator.m_kind), m))
          (Derivator.derive_merged ~jobs dataset base))
      bases
  in
  let find_mined ty member kind = List.assoc_opt (ty, member, kind) mined in
  (* Dynamic side 2: lock order with irq flows accounted separately —
     inheritance creates cross-flow edges no static path can produce. *)
  let store_sep, _ = Import.run ~irq_mode:Import.Separate trace in
  let dyn_order = Lockdep.analyse store_sep in
  (* Static side. *)
  let summary = Summary.analyse ~jobs () in
  let sites = List.filter kept_site summary.Summary.sites in
  let violations =
    List.filter_map
      (fun (s : Summary.site) ->
        match find_mined s.Summary.st_ty s.Summary.st_member s.Summary.st_kind with
        | None -> None
        | Some m ->
            let held =
              List.map
                (desc_of_held ~ty:s.Summary.st_ty ~var:s.Summary.st_var)
                s.Summary.st_must
            in
            if Rule.complies ~rule:m.Derivator.m_winner ~held then None
            else
              Some
                {
                  v_site = s;
                  v_rule = m.Derivator.m_winner;
                  v_held = held;
                  v_support = m.Derivator.m_support.Lockdoc_core.Hypothesis.sr;
                  v_witness = Summary.witness summary s.Summary.st_fn;
                })
      sites
  in
  let unprotected =
    List.filter_map
      (fun (s : Summary.site) ->
        if
          s.Summary.st_kind = Event.Write
          && not (List.exists protective s.Summary.st_must)
        then
          Some
            {
              u_site = s;
              u_rule =
                Option.map
                  (fun (m : Derivator.mined) -> m.Derivator.m_winner)
                  (find_mined s.Summary.st_ty s.Summary.st_member Event.Write);
              u_witness = Summary.witness summary s.Summary.st_fn;
            }
        else None)
      sites
  in
  (* Coverage gaps: static triples never observed in the trace. *)
  let observed = Hashtbl.create 256 in
  List.iter
    (fun key ->
      List.iter
        (fun (member, kind) ->
          Hashtbl.replace observed (base_type key, member, access_of_rule kind) ())
        (Dataset.members_observed dataset key))
    (Dataset.type_keys dataset);
  let gap_tbl : (string * string * Event.access_kind, string list * string list)
      Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (s : Summary.site) ->
      let k = (s.Summary.st_ty, s.Summary.st_member, s.Summary.st_kind) in
      if not (Hashtbl.mem observed k) then begin
        let fns, subs =
          Option.value ~default:([], []) (Hashtbl.find_opt gap_tbl k)
        in
        Hashtbl.replace gap_tbl k
          (s.Summary.st_fn :: fns, s.Summary.st_subsystem :: subs)
      end)
    sites;
  let gaps =
    Hashtbl.fold
      (fun (ty, member, kind) (fns, subs) acc ->
        {
          g_ty = ty;
          g_member = member;
          g_kind = kind;
          g_subsystem = String.concat "," (List.sort_uniq compare subs);
          g_fns = List.sort_uniq compare fns;
        }
        :: acc)
      gap_tbl []
    |> List.sort (fun a b ->
           compare (a.g_ty, a.g_member, kind_str a.g_kind)
             (b.g_ty, b.g_member, kind_str b.g_kind))
  in
  (* Acquisition-order diff, restricted to classes the IR models. *)
  let cs = Lockdep.class_to_string in
  let universe = Hashtbl.create 64 in
  List.iter
    (fun (a : Summary.acq) -> Hashtbl.replace universe (cs a.Summary.aq_class) ())
    summary.Summary.acquires;
  let static_edges = Hashtbl.create 128 in
  List.iter
    (fun (e : Summary.sedge) ->
      Hashtbl.replace static_edges (cs e.Summary.sd_from, cs e.Summary.sd_to) ())
    (summary.Summary.edges @ summary.Summary.self_edges);
  let dyn_edges =
    List.map
      (fun (e : Lockdep.edge) -> (cs e.Lockdep.e_from, cs e.Lockdep.e_to))
      (dyn_order.Lockdep.edges @ dyn_order.Lockdep.self_nesting)
    |> List.sort_uniq compare
  in
  let in_universe c = Hashtbl.mem universe c in
  let dyn_in_scope =
    List.filter (fun (f, t) -> in_universe f && in_universe t) dyn_edges
  in
  let dynamic_only =
    List.filter (fun e -> not (Hashtbl.mem static_edges e)) dyn_in_scope
  in
  let confirmed = List.length dyn_in_scope - List.length dynamic_only in
  let dyn_edge_set = Hashtbl.create 128 in
  List.iter (fun e -> Hashtbl.replace dyn_edge_set e ()) dyn_edges;
  let static_only =
    Hashtbl.fold
      (fun e () acc -> if Hashtbl.mem dyn_edge_set e then acc else acc + 1)
      static_edges 0
  in
  let cycle_pairs classes =
    match classes with
    | [] -> []
    | first :: _ ->
        let rec pairs = function
          | [] -> []
          | [ last ] -> [ (cs last, cs first) ]
          | a :: (b :: _ as rest) -> (cs a, cs b) :: pairs rest
        in
        pairs classes
  in
  let covered, uncovered =
    List.fold_left
      (fun (cov, unc) cycle ->
        if List.for_all (fun c -> in_universe (cs c)) cycle then
          if
            List.for_all
              (fun p -> Hashtbl.mem static_edges p)
              (cycle_pairs cycle)
          then (cov + 1, unc)
          else (cov, List.map cs cycle :: unc)
        else (cov, unc))
      (0, []) dyn_order.Lockdep.cycles
  in
  {
    workload;
    jobs;
    summary;
    import_stats = stats;
    mined_rules = List.length mined;
    violations;
    unprotected;
    gaps;
    order =
      {
        oc_confirmed = confirmed;
        oc_dynamic_only = dynamic_only;
        oc_static_only = static_only;
        oc_cycles_covered = covered;
        oc_cycles_uncovered = List.rev uncovered;
      };
  }

(* ---- rendering ----------------------------------------------------- *)

let site_str (s : Summary.site) =
  Printf.sprintf "%s.%s:%s in %s" s.Summary.st_ty s.Summary.st_member
    (kind_str s.Summary.st_kind)
    s.Summary.st_fn

let held_str = function
  | [] -> "(no locks)"
  | held -> String.concat ", " (List.map Summary.held_to_string held)

let buf_add = Buffer.add_string

let render t =
  let b = Buffer.create 4096 in
  let s = t.summary in
  buf_add b
    (Printf.sprintf
       "lockdoc lint: %s — %d functions (%d wild), %d IR nodes, %d roots\n"
       t.workload s.Summary.functions s.Summary.wild_functions
       s.Summary.ir_nodes
       (List.length s.Summary.roots));
  buf_add b
    (Printf.sprintf
       "fixpoints: %d effect rounds, %d entry rounds; %d access sites, %d \
        acquisition sites\n"
       s.Summary.effect_rounds s.Summary.entry_rounds
       (List.length s.Summary.sites)
       (List.length s.Summary.acquires));
  buf_add b
    (Printf.sprintf "mined %d rules from %d trace events\n\n" t.mined_rules
       t.import_stats.Import.total_events);
  let tbl = Tablefmt.create ~header:[ "check"; "count"; "status" ] in
  Tablefmt.set_align tbl [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Left ];
  let row name n bad =
    Tablefmt.add_row tbl
      [ name; string_of_int n; (if n = 0 then "ok" else bad) ]
  in
  row "rule violations (must-held)" (List.length t.violations) "FINDINGS";
  row "unprotected writes" (List.length t.unprotected) "FINDINGS";
  row "static ABBA cycles" (List.length s.Summary.cycles) "FINDINGS";
  row "sleep-in-atomic" (List.length s.Summary.sleeps) "FINDINGS";
  row "irq-unsafe acquisitions" (List.length s.Summary.irq_unsafe) "FINDINGS";
  row "coverage gaps" (List.length t.gaps) "untested";
  row "order edges: dynamic-only"
    (List.length t.order.oc_dynamic_only)
    "MODEL DRIFT";
  buf_add b (Tablefmt.render tbl);
  buf_add b "\n";
  buf_add b
    (Printf.sprintf
       "lock order: %d dynamic edges confirmed statically, %d static-only; \
        %d/%d dynamic cycles covered\n"
       t.order.oc_confirmed t.order.oc_static_only t.order.oc_cycles_covered
       (t.order.oc_cycles_covered + List.length t.order.oc_cycles_uncovered));
  if t.violations <> [] then begin
    buf_add b "\nrule violations:\n";
    List.iter
      (fun v ->
        buf_add b
          (Printf.sprintf "  %s\n    rule %s (sr %.2f) vs held %s\n    via %s\n"
             (site_str v.v_site) (Rule.to_string v.v_rule) v.v_support
             (match v.v_held with
             | [] -> "(no locks)"
             | h -> String.concat ", " (List.map Lockdesc.to_string h))
             (String.concat " -> " v.v_witness)))
      t.violations
  end;
  if t.unprotected <> [] then begin
    buf_add b "\nunprotected writes:\n";
    List.iter
      (fun u ->
        buf_add b
          (Printf.sprintf "  %s%s\n    via %s\n" (site_str u.u_site)
             (match u.u_rule with
             | Some r when r <> Rule.no_lock ->
                 Printf.sprintf " (mined rule: %s)" (Rule.to_string r)
             | _ -> "")
             (String.concat " -> " u.u_witness)))
      t.unprotected
  end;
  if s.Summary.cycles <> [] then begin
    buf_add b "\nstatic lock-order cycles:\n";
    List.iter
      (fun c ->
        buf_add b
          (Printf.sprintf "  %s\n"
             (String.concat " -> "
                (List.map Lockdep.class_to_string (c @ [ List.hd c ])))))
      s.Summary.cycles
  end;
  if s.Summary.sleeps <> [] then begin
    buf_add b "\nsleep-in-atomic:\n";
    List.iter
      (fun (f : Summary.sleep_finding) ->
        buf_add b
          (Printf.sprintf "  %s: %s with %s held%s\n" f.Summary.sl_fn
             f.Summary.sl_what
             (held_str f.Summary.sl_held)
             (if f.Summary.sl_must then "" else " (some path)")))
      s.Summary.sleeps
  end;
  if s.Summary.irq_unsafe <> [] then begin
    buf_add b "\nirq-unsafe acquisitions:\n";
    List.iter
      (fun (f : Summary.irq_finding) ->
        buf_add b
          (Printf.sprintf "  %s taken unmasked in %s, also in irq by %s\n    via %s\n"
             (Lockdep.class_to_string f.Summary.iq_class)
             f.Summary.iq_fn f.Summary.iq_irq_fn
             (String.concat " -> " f.Summary.iq_witness)))
      s.Summary.irq_unsafe
  end;
  if t.order.oc_dynamic_only <> [] then begin
    buf_add b "\ndynamic-only order edges (model drift):\n";
    List.iter
      (fun (f, to_) -> buf_add b (Printf.sprintf "  %s -> %s\n" f to_))
      t.order.oc_dynamic_only
  end;
  if t.gaps <> [] then begin
    buf_add b "\ncoverage gaps (statically reachable, never observed):\n";
    List.iter
      (fun g ->
        buf_add b
          (Printf.sprintf "  %s.%s:%s [%s] in %s\n" g.g_ty g.g_member
             (kind_str g.g_kind) g.g_subsystem
             (String.concat ", " g.g_fns)))
      t.gaps
  end;
  Buffer.contents b

let to_json t =
  let s = t.summary in
  let open Report in
  let held_j h = L (List.map (fun x -> S (Summary.held_to_string x)) h) in
  let site_j (st : Summary.site) =
    O
      [
        ("fn", S st.Summary.st_fn);
        ("subsystem", S st.Summary.st_subsystem);
        ("type", S st.Summary.st_ty);
        ("member", S st.Summary.st_member);
        ("kind", S (kind_str st.Summary.st_kind));
        ("must_held", held_j st.Summary.st_must);
        ("may_held", held_j st.Summary.st_may);
      ]
  in
  let witness_j w = L (List.map (fun f -> S f) w) in
  O
    [
      ("workload", S t.workload);
      ( "summary",
        O
          [
            ("functions", I s.Summary.functions);
            ("wild_functions", I s.Summary.wild_functions);
            ("ir_nodes", I s.Summary.ir_nodes);
            ("roots", I (List.length s.Summary.roots));
            ("effect_rounds", I s.Summary.effect_rounds);
            ("entry_rounds", I s.Summary.entry_rounds);
            ("access_sites", I (List.length s.Summary.sites));
            ("acquire_sites", I (List.length s.Summary.acquires));
            ("order_edges", I (List.length s.Summary.edges));
          ] );
      ("mined_rules", I t.mined_rules);
      ( "violations",
        L
          (List.map
             (fun v ->
               O
                 [
                   ("site", site_j v.v_site);
                   ("rule", S (Rule.to_string v.v_rule));
                   ("support", F v.v_support);
                   ( "held",
                     L (List.map (fun d -> S (Lockdesc.to_string d)) v.v_held)
                   );
                   ("witness", witness_j v.v_witness);
                 ])
             t.violations) );
      ( "unprotected_writes",
        L
          (List.map
             (fun u ->
               O
                 [
                   ("site", site_j u.u_site);
                   ( "mined_rule",
                     match u.u_rule with
                     | Some r -> S (Rule.to_string r)
                     | None -> S "" );
                   ("witness", witness_j u.u_witness);
                 ])
             t.unprotected) );
      ( "cycles",
        L
          (List.map
             (fun c ->
               L (List.map (fun x -> S (Lockdep.class_to_string x)) c))
             s.Summary.cycles) );
      ( "sleep_in_atomic",
        L
          (List.map
             (fun (f : Summary.sleep_finding) ->
               O
                 [
                   ("fn", S f.Summary.sl_fn);
                   ("what", S f.Summary.sl_what);
                   ("held", held_j f.Summary.sl_held);
                   ("must", S (if f.Summary.sl_must then "yes" else "no"));
                 ])
             s.Summary.sleeps) );
      ( "irq_unsafe",
        L
          (List.map
             (fun (f : Summary.irq_finding) ->
               O
                 [
                   ("class", S (Lockdep.class_to_string f.Summary.iq_class));
                   ("fn", S f.Summary.iq_fn);
                   ("irq_fn", S f.Summary.iq_irq_fn);
                   ("witness", witness_j f.Summary.iq_witness);
                 ])
             s.Summary.irq_unsafe) );
      ( "gaps",
        L
          (List.map
             (fun g ->
               O
                 [
                   ("type", S g.g_ty);
                   ("member", S g.g_member);
                   ("kind", S (kind_str g.g_kind));
                   ("subsystem", S g.g_subsystem);
                   ("fns", L (List.map (fun f -> S f) g.g_fns));
                 ])
             t.gaps) );
      ( "order",
        O
          [
            ("confirmed", I t.order.oc_confirmed);
            ( "dynamic_only",
              L
                (List.map
                   (fun (f, to_) -> L [ S f; S to_ ])
                   t.order.oc_dynamic_only) );
            ("static_only", I t.order.oc_static_only);
            ("cycles_covered", I t.order.oc_cycles_covered);
            ( "cycles_uncovered",
              L
                (List.map
                   (fun c -> L (List.map (fun x -> S x) c))
                   t.order.oc_cycles_uncovered) );
          ] );
    ]
