module Event = Lockdoc_trace.Event
module Skeleton = Lockdoc_ksim.Skeleton
module Lockdep = Lockdoc_core.Lockdep
module Pool = Lockdoc_util.Pool

type slock = Sg of string | Sm of { ty : string; var : string; member : string }

let slock_to_string = function
  | Sg n -> n
  | Sm { ty; var; member } -> Printf.sprintf "%s(%s).%s" ty var member

type held = { h_lock : slock; h_kind : Event.lock_kind; h_side : Event.lock_side }

let held_to_string h =
  let side = match h.h_side with Event.Shared -> ":r" | Event.Exclusive -> "" in
  slock_to_string h.h_lock ^ side

let class_of_slock = function
  | Sg n -> Lockdep.Static n
  | Sm { ty; member; _ } -> Lockdep.Member (ty, member)

type site = {
  st_fn : string;
  st_subsystem : string;
  st_ty : string;
  st_var : string;
  st_member : string;
  st_kind : Event.access_kind;
  st_must : held list;
  st_may : held list;
}

type acq = {
  aq_fn : string;
  aq_subsystem : string;
  aq_class : Lockdep.lock_class;
  aq_kind : Event.lock_kind;
  aq_side : Event.lock_side;
  aq_must : held list;
  aq_may : held list;
}

type sedge = {
  sd_from : Lockdep.lock_class;
  sd_to : Lockdep.lock_class;
  sd_count : int;
  sd_fns : string list;
}

type irq_finding = {
  iq_class : Lockdep.lock_class;
  iq_fn : string;
  iq_irq_fn : string;
  iq_witness : string list;
}

type sleep_finding = {
  sl_fn : string;
  sl_what : string;
  sl_held : held list;
  sl_must : bool;
}

type t = {
  functions : int;
  wild_functions : int;
  ir_nodes : int;
  roots : string list;
  effect_rounds : int;
  entry_rounds : int;
  sites : site list;
  acquires : acq list;
  edges : sedge list;
  self_edges : sedge list;
  cycles : Lockdep.lock_class list list;
  irq_unsafe : irq_finding list;
  sleeps : sleep_finding list;
  entries : (string * held list) list;
  witnesses : (string * string list) list;
}

(* ---- variable plumbing --------------------------------------------- *)

let slock_of_ref = function
  | Skeleton.Sglobal n -> Sg n
  | Skeleton.Smember { ty; var; member } -> Sm { ty; var; member }

let map_slock f = function
  | Sg n -> Sg n
  | Sm { ty; var; member } -> Sm { ty; var = f var; member }

let map_held f h = { h with h_lock = map_slock f h.h_lock }

(* Inverse of {!Skeleton.bind_var}: rewrite a callee variable back into
   the caller's namespace when a callee's lock effect is applied at a
   call site. Callee-local objects the caller cannot name stay distinct
   under a "^" prefix. *)
let unbind_var binds v =
  let rec go = function
    | [] -> "^" ^ v
    | (src, dst) :: rest ->
        if v = dst then src
        else
          let p = dst ^ "." in
          let lp = String.length p in
          if String.length v > lp && String.sub v 0 lp = p then
            src ^ "." ^ String.sub v lp (String.length v - lp)
          else go rest
  in
  go binds

(* ---- ordered-multiset lattice ops ---------------------------------- *)

let rec remove_first x = function
  | [] -> []
  | h :: t -> if h = x then t else h :: remove_first x t

(* Elements of [a] that also occur in [b], in [a]'s order. *)
let inter a b =
  let avail = ref b in
  List.filter
    (fun h ->
      if List.mem h !avail then begin
        avail := remove_first h !avail;
        true
      end
      else false)
    a

let union a b = a @ List.filter (fun h -> not (List.mem h a)) b

(* Drop the innermost (last-acquired) held entry for lock [x]; unchanged
   if [x] is not held — releases are resolved innermost-first, like the
   runtime's per-flow lock stack. *)
let release_held x held =
  let rec go = function
    | [] -> None
    | h :: t -> (
        match go t with
        | Some t' -> Some (h :: t')
        | None -> if h.h_lock = x then Some t else None)
  in
  match go held with Some l -> l | None -> held

(* ---- abstract state -------------------------------------------------

   The per-function walk is entry-independent: the state is a {e delta}
   against the (unknown) entry lockset — locks released out of it and
   locks acquired on top of it. A concrete lockset is materialised from
   a known entry with {!concrete}. The same state doubles as the
   function's net lock-effect summary. *)

type eff = { e_rel : slock list; e_add : held list }

let e0 = { e_rel = []; e_add = [] }

type mode = Must | May

let join_eff mode a b =
  match mode with
  | Must -> { e_rel = union a.e_rel b.e_rel; e_add = inter a.e_add b.e_add }
  | May -> { e_rel = inter a.e_rel b.e_rel; e_add = union a.e_add b.e_add }

let acquire_eff h st = { st with e_add = st.e_add @ [ h ] }

let release_eff x st =
  if List.exists (fun h -> h.h_lock = x) st.e_add then
    { st with e_add = release_held x st.e_add }
  else if List.mem x st.e_rel then st
  else { st with e_rel = st.e_rel @ [ x ] }

let apply_callee_eff binds callee st =
  let ub = unbind_var binds in
  let st =
    List.fold_left (fun st r -> release_eff (map_slock ub r) st) st callee.e_rel
  in
  List.fold_left (fun st a -> acquire_eff (map_held ub a) st) st callee.e_add

let concrete entry eff =
  List.fold_left (fun held r -> release_held r held) entry eff.e_rel
  @ eff.e_add

let irqoff = { h_lock = Sg "irqoff"; h_kind = Event.Pseudo; h_side = Event.Exclusive }
let bhoff = { h_lock = Sg "bhoff"; h_kind = Event.Pseudo; h_side = Event.Exclusive }

(* ---- the walker ------------------------------------------------------

   One pass over a skeleton body. [emit], when given, is called at every
   analysis-relevant leaf with the state {e before} the leaf's own
   effect. Loop bodies reach a fixpoint with emission disabled first,
   then are walked once more from the loop invariant so every leaf is
   reported exactly once, with its invariant state. *)

let rec walk mode effects emit st (node : Skeleton.node) =
  let emit_leaf n s = match emit with Some f -> f n s | None -> () in
  match node with
  | Skeleton.Nop -> st
  | Skeleton.Blocks ->
      emit_leaf node st;
      st
  | Skeleton.Seq ns -> List.fold_left (fun s n -> walk mode effects emit s n) st ns
  | Skeleton.Alt [] -> st
  | Skeleton.Alt (n :: rest) ->
      List.fold_left
        (fun acc n -> join_eff mode acc (walk mode effects emit st n))
        (walk mode effects emit st n)
        rest
  | Skeleton.Opt n -> join_eff mode st (walk mode effects emit st n)
  | Skeleton.Star n | Skeleton.Plus n ->
      let rec fix x =
        let x' = join_eff mode x (walk mode effects None x n) in
        if x' = x then x else fix x'
      in
      let inv = fix st in
      (match emit with
      | Some _ -> ignore (walk mode effects emit inv n)
      | None -> ());
      inv
  | Skeleton.Acquire { lock; kind; side } ->
      emit_leaf node st;
      acquire_eff { h_lock = slock_of_ref lock; h_kind = kind; h_side = side } st
  | Skeleton.Release lock -> release_eff (slock_of_ref lock) st
  | Skeleton.Access _ ->
      emit_leaf node st;
      st
  | Skeleton.Irq_off ->
      emit_leaf node st;
      acquire_eff irqoff st
  | Skeleton.Irq_on -> release_eff irqoff.h_lock st
  | Skeleton.Bh_off ->
      emit_leaf node st;
      acquire_eff bhoff st
  | Skeleton.Bh_on -> release_eff bhoff.h_lock st
  | Skeleton.Call { callees; binds } ->
      emit_leaf node st;
      let effs = List.map effects callees in
      let combined =
        match effs with
        | [] -> e0
        | e :: rest -> List.fold_left (join_eff mode) e rest
      in
      apply_callee_eff binds combined st

(* ---- fixpoint 1: net lock-effect summaries -------------------------- *)

let max_rounds = 1000

let compute_effects mode jobs bodies =
  let tbl : (string, eff) Hashtbl.t = Hashtbl.create 256 in
  let get name = Option.value ~default:e0 (Hashtbl.find_opt tbl name) in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed do
    incr rounds;
    if !rounds > max_rounds then failwith "Summary: effect fixpoint diverges";
    let results =
      Pool.map ~jobs (fun (name, b) -> (name, walk mode get None e0 b)) bodies
    in
    changed := false;
    List.iter
      (fun (name, e) ->
        if get name <> e then begin
          Hashtbl.replace tbl name e;
          changed := true
        end)
      results
  done;
  (get, !rounds)

(* ---- per-function leaf records --------------------------------------

   With both effect tables closed, each body is walked once per mode
   with emission on. The two traversals visit leaves in the same order,
   so the records zip positionally. *)

type leafrec = { lr_node : Skeleton.node; lr_must : eff; lr_may : eff }

let leaf_records jobs must_eff may_eff bodies =
  Pool.map ~jobs
    (fun (name, b) ->
      let collect mode effects =
        let acc = ref [] in
        ignore (walk mode effects (Some (fun n s -> acc := (n, s) :: !acc)) e0 b);
        List.rev !acc
      in
      let must = collect Must must_eff and may = collect May may_eff in
      ( name,
        List.map2
          (fun (n, m) (_, y) -> { lr_node = n; lr_must = m; lr_may = y })
          must may ))
    bodies

(* ---- fixpoint 2: entry locksets -------------------------------------

   entry(f) = meet over every call site of f in an analysed caller, of
   the caller's lockset at that site mapped through the call's binds.
   Roots are pinned to the empty lockset (they are invoked directly by
   workload drivers); functions never reached keep the empty lockset. *)

let compute_entries mode jobs fns records =
  let entry : (string, held list) Hashtbl.t = Hashtbl.create 256 in
  let roots = Hashtbl.create 64 in
  List.iter
    (fun (f : Skeleton.fn) ->
      if f.Skeleton.sk_root then begin
        Hashtbl.replace roots f.Skeleton.sk_name ();
        Hashtbl.replace entry f.Skeleton.sk_name []
      end)
    fns;
  let rounds = ref 0 in
  let changed = ref true in
  while !changed do
    incr rounds;
    if !rounds > max_rounds then failwith "Summary: entry fixpoint diverges";
    let contribs =
      Pool.map ~jobs
        (fun (name, leafs) ->
          match Hashtbl.find_opt entry name with
          | None -> []
          | Some e ->
              List.concat_map
                (fun lr ->
                  match lr.lr_node with
                  | Skeleton.Call { callees; binds } ->
                      let st =
                        match mode with Must -> lr.lr_must | May -> lr.lr_may
                      in
                      let mapped =
                        List.map
                          (map_held (Skeleton.bind_var binds))
                          (concrete e st)
                      in
                      List.map (fun c -> (c, mapped)) callees
                  | _ -> [])
                leafs)
        records
      |> List.concat
    in
    let by_callee : (string, held list list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (c, h) ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_callee c) in
        Hashtbl.replace by_callee c (h :: prev))
      contribs;
    changed := false;
    Hashtbl.iter
      (fun c rev_hs ->
        (* A root is also invoked directly with nothing held: that
           direct invocation is the meet identity under Must (pinning
           the entry to the empty lockset) and the join identity under
           May (the union over call sites still applies). *)
        if not (mode = Must && Hashtbl.mem roots c) then
          let contribs = List.rev rev_hs in
          let contribs =
            if Hashtbl.mem roots c then [] :: contribs else contribs
          in
          match contribs with
          | [] -> ()
          | first :: rest ->
              let v =
                List.fold_left
                  (fun acc h ->
                    match mode with
                    | Must -> inter acc h
                    | May -> union acc h)
                  first rest
              in
              if Hashtbl.find_opt entry c <> Some v then begin
                Hashtbl.replace entry c v;
                changed := true
              end)
      by_callee
  done;
  let get name = Option.value ~default:[] (Hashtbl.find_opt entry name) in
  (get, !rounds)

(* ---- call graph, witnesses, context closures ------------------------ *)

let callees_of leafs =
  List.concat_map
    (fun lr ->
      match lr.lr_node with
      | Skeleton.Call { callees; _ } -> callees
      | _ -> [])
    leafs

let bfs_closure records seeds =
  let callmap = Hashtbl.create 256 in
  List.iter (fun (name, leafs) -> Hashtbl.replace callmap name (callees_of leafs)) records;
  let seen = Hashtbl.create 256 in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen s) then begin
        Hashtbl.replace seen s ();
        Queue.add s q
      end)
    seeds;
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    List.iter
      (fun c ->
        if not (Hashtbl.mem seen c) then begin
          Hashtbl.replace seen c ();
          Queue.add c q
        end)
      (Option.value ~default:[] (Hashtbl.find_opt callmap n))
  done;
  seen

let compute_witnesses records roots =
  let callmap = Hashtbl.create 256 in
  List.iter (fun (name, leafs) -> Hashtbl.replace callmap name (callees_of leafs)) records;
  let parent : (string, string option) Hashtbl.t = Hashtbl.create 256 in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if not (Hashtbl.mem parent r) then begin
        Hashtbl.replace parent r None;
        Queue.add r q
      end)
    roots;
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    List.iter
      (fun c ->
        if not (Hashtbl.mem parent c) then begin
          Hashtbl.replace parent c (Some n);
          Queue.add c q
        end)
      (Option.value ~default:[] (Hashtbl.find_opt callmap n))
  done;
  let path fn =
    let rec up acc n =
      match Hashtbl.find_opt parent n with
      | Some (Some p) -> up (n :: acc) p
      | Some None -> n :: acc
      | None -> n :: acc
    in
    up [] fn
  in
  path

(* ---- cycles ---------------------------------------------------------- *)

let cycle_key cycle =
  let names c = List.map Lockdep.class_to_string (Lockdep.canonicalise c) in
  min (names cycle) (names (List.rev cycle))

let find_cycles classes edges =
  let adj c =
    List.filter_map
      (fun e -> if e.sd_from = c && e.sd_to <> c then Some e.sd_to else None)
      edges
  in
  let key = Lockdep.class_to_string in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec dfs anchor path node =
    List.iter
      (fun next ->
        if next = anchor then begin
          let cycle = List.rev (node :: path) in
          let k = cycle_key cycle in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.replace seen k ();
            out := cycle :: !out
          end
        end
        else if
          (not (List.mem next (node :: path))) && key next > key anchor
        then dfs anchor (node :: path) next)
      (adj node)
  in
  List.iter (fun c -> dfs c [] c) classes;
  List.map Lockdep.canonicalise !out
  |> List.sort (fun a b ->
         compare (List.map key a) (List.map key b))

(* ---- driver ---------------------------------------------------------- *)

let blocking_kind = function
  | Event.Mutex | Event.Semaphore | Event.Rwsem -> true
  | _ -> false

let atomic_held h =
  match h.h_kind with
  | Event.Spinlock | Event.Rwlock | Event.Rcu -> true
  | Event.Seqlock -> h.h_side = Event.Exclusive
  | Event.Pseudo -> ( match h.h_lock with Sg ("irqoff" | "bhoff") -> true | _ -> false)
  | Event.Mutex | Event.Semaphore | Event.Rwsem -> false

let masked held =
  List.exists
    (fun h -> h.h_lock = Sg "irqoff" || h.h_lock = Sg "bhoff")
    held

let analyse ?(jobs = 1) () =
  let fns = Skeleton.all () in
  let bodies =
    List.filter_map
      (fun (f : Skeleton.fn) ->
        match f.Skeleton.sk_body with
        | Skeleton.Wild -> None
        | Skeleton.Body b -> Some (f.Skeleton.sk_name, b))
      fns
  in
  let fn_info = Hashtbl.create 256 in
  List.iter (fun (f : Skeleton.fn) -> Hashtbl.replace fn_info f.Skeleton.sk_name f) fns;
  let must_eff, er1 = compute_effects Must jobs bodies in
  let may_eff, er2 = compute_effects May jobs bodies in
  let records = leaf_records jobs must_eff may_eff bodies in
  let must_entry, nr1 = compute_entries Must jobs fns records in
  let may_entry, nr2 = compute_entries May jobs fns records in
  let roots =
    List.filter_map
      (fun (f : Skeleton.fn) ->
        if f.Skeleton.sk_root then Some f.Skeleton.sk_name else None)
      fns
  in
  let witness_path = compute_witnesses records roots in
  (* Per-function leaf materialisation. *)
  let materialised =
    Pool.map ~jobs
      (fun (name, leafs) ->
        let f = Hashtbl.find fn_info name in
        let e_must = must_entry name and e_may = may_entry name in
        let sites = ref [] and acqs = ref [] and sleeps = ref [] in
        List.iter
          (fun lr ->
            let must = concrete e_must lr.lr_must
            and may = concrete e_may lr.lr_may in
            match lr.lr_node with
            | Skeleton.Access { ty; var; member; kind } ->
                sites :=
                  {
                    st_fn = name;
                    st_subsystem = f.Skeleton.sk_subsystem;
                    st_ty = ty;
                    st_var = var;
                    st_member = member;
                    st_kind = kind;
                    st_must = must;
                    st_may = may;
                  }
                  :: !sites
            | Skeleton.Acquire { lock; kind; side } ->
                let sl = slock_of_ref lock in
                acqs :=
                  {
                    aq_fn = name;
                    aq_subsystem = f.Skeleton.sk_subsystem;
                    aq_class = class_of_slock sl;
                    aq_kind = kind;
                    aq_side = side;
                    aq_must = must;
                    aq_may = may;
                  }
                  :: !acqs;
                if blocking_kind kind then begin
                  let what =
                    Printf.sprintf "%s %s"
                      (Event.lock_kind_to_string kind)
                      (slock_to_string sl)
                  in
                  let atom_must = List.filter atomic_held must
                  and atom_may = List.filter atomic_held may in
                  if atom_must <> [] then
                    sleeps :=
                      { sl_fn = name; sl_what = what; sl_held = atom_must; sl_must = true }
                      :: !sleeps
                  else if atom_may <> [] then
                    sleeps :=
                      { sl_fn = name; sl_what = what; sl_held = atom_may; sl_must = false }
                      :: !sleeps
                end
            | Skeleton.Irq_off ->
                acqs :=
                  {
                    aq_fn = name;
                    aq_subsystem = f.Skeleton.sk_subsystem;
                    aq_class = Lockdep.Static "irqoff";
                    aq_kind = Event.Pseudo;
                    aq_side = Event.Exclusive;
                    aq_must = must;
                    aq_may = may;
                  }
                  :: !acqs
            | Skeleton.Bh_off ->
                acqs :=
                  {
                    aq_fn = name;
                    aq_subsystem = f.Skeleton.sk_subsystem;
                    aq_class = Lockdep.Static "bhoff";
                    aq_kind = Event.Pseudo;
                    aq_side = Event.Exclusive;
                    aq_must = must;
                    aq_may = may;
                  }
                  :: !acqs
            | Skeleton.Blocks ->
                let atom_must = List.filter atomic_held must
                and atom_may = List.filter atomic_held may in
                if atom_must <> [] then
                  sleeps :=
                    { sl_fn = name; sl_what = "wait"; sl_held = atom_must; sl_must = true }
                    :: !sleeps
                else if atom_may <> [] then
                  sleeps :=
                    { sl_fn = name; sl_what = "wait"; sl_held = atom_may; sl_must = false }
                    :: !sleeps
            | _ -> ())
          leafs;
        (List.rev !sites, List.rev !acqs, List.rev !sleeps))
      records
  in
  let sites = List.concat_map (fun (s, _, _) -> s) materialised in
  let acquires = List.concat_map (fun (_, a, _) -> a) materialised in
  let sleeps = List.concat_map (fun (_, _, s) -> s) materialised in
  (* Acquisition-order graph from may-held sets. *)
  let edge_tbl : (string * string, Lockdep.lock_class * Lockdep.lock_class * int * string list)
      Hashtbl.t =
    Hashtbl.create 128
  in
  List.iter
    (fun a ->
      List.iter
        (fun h ->
          let from_c = class_of_slock h.h_lock in
          let k =
            (Lockdep.class_to_string from_c, Lockdep.class_to_string a.aq_class)
          in
          match Hashtbl.find_opt edge_tbl k with
          | Some (f, t, n, fns') ->
              Hashtbl.replace edge_tbl k (f, t, n + 1, a.aq_fn :: fns')
          | None -> Hashtbl.replace edge_tbl k (from_c, a.aq_class, 1, [ a.aq_fn ]))
        a.aq_may)
    acquires;
  let all_edges =
    Hashtbl.fold
      (fun _ (f, t, n, fns') acc ->
        { sd_from = f; sd_to = t; sd_count = n; sd_fns = List.sort_uniq compare fns' }
        :: acc)
      edge_tbl []
    |> List.sort (fun a b ->
           compare
             (Lockdep.class_to_string a.sd_from, Lockdep.class_to_string a.sd_to)
             (Lockdep.class_to_string b.sd_from, Lockdep.class_to_string b.sd_to))
  in
  let self_edges, edges = List.partition (fun e -> e.sd_from = e.sd_to) all_edges in
  let classes =
    List.concat_map (fun e -> [ e.sd_from; e.sd_to ]) edges
    |> List.sort_uniq compare
  in
  let cycles = find_cycles classes edges in
  (* irq-safety: classes also taken in irq context must be acquired with
     interrupts masked in process context. *)
  let irq_fns =
    List.filter_map
      (fun (f : Skeleton.fn) ->
        if f.Skeleton.sk_irq then Some f.Skeleton.sk_name else None)
      fns
  in
  let irq_closure = bfs_closure records irq_fns in
  let proc_roots =
    List.filter
      (fun r ->
        match Hashtbl.find_opt fn_info r with
        | Some f -> not f.Skeleton.sk_irq
        | None -> false)
      roots
  in
  let proc_closure = bfs_closure records proc_roots in
  let irq_class_takers =
    List.filter_map
      (fun a ->
        if a.aq_kind <> Event.Pseudo && Hashtbl.mem irq_closure a.aq_fn then
          Some (a.aq_class, a.aq_fn)
        else None)
      acquires
    |> List.sort_uniq compare
  in
  let irq_unsafe =
    List.filter_map
      (fun a ->
        let in_irq =
          match Hashtbl.find_opt fn_info a.aq_fn with
          | Some f -> f.Skeleton.sk_irq
          | None -> false
        in
        if
          a.aq_kind <> Event.Pseudo && (not in_irq)
          && Hashtbl.mem proc_closure a.aq_fn
          && (not (masked a.aq_must))
        then
          match List.find_opt (fun (c, _) -> c = a.aq_class) irq_class_takers with
          | Some (_, irq_fn) when irq_fn <> a.aq_fn ->
              Some
                {
                  iq_class = a.aq_class;
                  iq_fn = a.aq_fn;
                  iq_irq_fn = irq_fn;
                  iq_witness = witness_path a.aq_fn;
                }
          | _ -> None
        else None)
      acquires
    |> List.sort_uniq compare
  in
  {
    functions = List.length bodies;
    wild_functions = List.length fns - List.length bodies;
    ir_nodes = List.fold_left (fun acc f -> acc + Skeleton.node_count f) 0 fns;
    roots;
    effect_rounds = er1 + er2;
    entry_rounds = nr1 + nr2;
    sites;
    acquires;
    edges;
    self_edges;
    cycles;
    irq_unsafe;
    sleeps;
    entries = List.map (fun (name, _) -> (name, must_entry name)) records;
    witnesses = List.map (fun (name, _) -> (name, witness_path name)) records;
  }

let witness t fn =
  match List.assoc_opt fn t.witnesses with Some p -> p | None -> [ fn ]
