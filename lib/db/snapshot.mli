(** Atomic snapshots of import state, and the durable directory's
    manifest.

    A snapshot serialises a full {!Store.t} (plus, for a mid-import
    checkpoint, the {!Import.engine} that owns it) with a magic,
    length and CRC header, written to a temp file and renamed into
    place — so a snapshot file either parses completely or is
    discarded, never half-read. The manifest is a small text file,
    also written atomically, that names the current snapshot and ties
    it to a WAL LSN and a source-trace offset: its rename is the
    checkpoint's commit point. *)

type meta = {
  m_snapshot : string;  (** snapshot file name, relative to the dir *)
  m_wal_lsn : int;  (** first WAL LSN not covered by the snapshot *)
  m_trace_offset : int;  (** next trace event to import *)
  m_trace_file : string;  (** source trace path, [""] if unknown *)
  m_trace_events : int;  (** total events in the source trace *)
  m_complete : bool;  (** the import ran to completion *)
}

type payload = {
  p_meta : meta;
  p_store : Store.t;
  p_engine : Import.engine option;  (** [None] once the import completed *)
  p_stats : Import.stats option;  (** [Some] once the import completed *)
}

val snapshot_name : int -> string
(** [snapshot_name seq] is ["snap-<seq>.snap"]. *)

val snapshot_seq : string -> int option
val snapshots : dir:string -> (int * string) list
(** Snapshot files as [(seq, name)], newest first. *)

val save : dir:string -> payload -> unit
(** Serialise atomically under [p_meta.m_snapshot]. Clears the store's
    op logger during marshalling (closures don't serialise). *)

val load : string -> payload option
(** [None] on any damage: missing file, bad magic, short read,
    checksum mismatch, unmarshalable blob. Never raises. *)

val latest_loadable : dir:string -> payload option
(** Newest snapshot in [dir] that loads cleanly. *)

val write_manifest : dir:string -> meta -> unit
val read_manifest : dir:string -> meta option
(** [None] on a missing, damaged or unversioned manifest. *)
