(** The in-memory relational trace store.

    Substitutes the paper's MariaDB instance: tables are growable arrays
    with hash indexes, and the analysis-phase "queries" are the accessor
    functions below. Rows are created exclusively by {!Import}. *)

open Schema

type t

val create : unit -> t

(** {2 Row creation (used by Import)} *)

val add_data_type : t -> Lockdoc_trace.Layout.t -> data_type
val add_allocation :
  t -> ptr:int -> size:int -> ty:int -> subclass:string option -> start:int ->
  allocation
val add_lock :
  t ->
  ptr:int ->
  kind:Lockdoc_trace.Event.lock_kind ->
  name:string ->
  parent:(int * string) option ->
  lock
val add_txn : t -> locks:held list -> ctx:int -> txn
val add_access :
  t ->
  event:int ->
  alloc:int ->
  member:string ->
  kind:Lockdoc_trace.Event.access_kind ->
  txn:int option ->
  loc:Lockdoc_trace.Srcloc.t ->
  stack:int ->
  ctx:int ->
  access
val intern_stack : t -> string list -> int
(** Stacks are interned; innermost frame first. *)

(** {2 Lookup} *)

val data_type : t -> int -> data_type
val data_type_by_name : t -> string -> data_type option
val allocation : t -> int -> allocation
val lock : t -> int -> lock
val txn : t -> int -> txn
val access : t -> int -> access
val stack : t -> int -> string list

val n_accesses : t -> int
val n_txns : t -> int
val n_locks : t -> int
val n_allocations : t -> int
val n_data_types : t -> int
val n_stacks : t -> int

val iter_accesses : t -> (access -> unit) -> unit
val iter_allocations : t -> (allocation -> unit) -> unit
val iter_locks : t -> (lock -> unit) -> unit

val type_keys : t -> string list
(** All distinct derivation keys ("inode:ext4", "dentry", …), sorted. *)

val accesses_of_type : t -> string -> access list
(** Accesses whose allocation has the given type key, in trace order. *)

val layout_of_key : t -> string -> Lockdoc_trace.Layout.t option
(** Layout of the underlying data type of a type key. *)
