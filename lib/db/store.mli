(** The in-memory relational trace store.

    Substitutes the paper's MariaDB instance: tables are growable arrays
    with hash indexes, and the analysis-phase "queries" are the accessor
    functions below. Rows are created exclusively by {!Import}. *)

open Schema

type t

val create : unit -> t

(** {2 Row creation (used by Import)} *)

val add_data_type : t -> Lockdoc_trace.Layout.t -> data_type
val add_allocation :
  t -> ptr:int -> size:int -> ty:int -> subclass:string option -> start:int ->
  allocation
val add_lock :
  t ->
  ptr:int ->
  kind:Lockdoc_trace.Event.lock_kind ->
  name:string ->
  parent:(int * string) option ->
  lock
val add_txn : t -> locks:held list -> ctx:int -> txn
val add_access :
  t ->
  event:int ->
  alloc:int ->
  member:string ->
  kind:Lockdoc_trace.Event.access_kind ->
  txn:int option ->
  loc:Lockdoc_trace.Srcloc.t ->
  stack:int ->
  ctx:int ->
  access
val intern_stack : t -> string list -> int
(** Stacks are interned; innermost frame first. *)

val set_alloc_end : t -> int -> int option -> unit
(** Record the free event index of an allocation. *)

(** {2 Sealing}

    Parallel analysis ({!Lockdoc_util.Pool}) shares one store read-only
    across domains. [seal] makes that invariant checkable: every row
    mutation above raises [Invalid_argument] afterwards. Sealing is
    one-way and is asserted by the [jobs > 1] paths of the derivator,
    checker and violation scanner before fanning out. *)

val seal : t -> unit
val is_sealed : t -> bool

(** {2 Operation log}

    The durability layer observes every row-creating mutation as an
    {!Op.t}. The logger must be [None] whenever the store is
    marshalled (closures don't serialise) — see {!with_logger}. *)

val set_logger : t -> (Op.t -> unit) option -> unit
val with_logger : t -> (Op.t -> unit) option -> (unit -> 'a) -> 'a
(** [with_logger t log f] runs [f] with the logger swapped to [log],
    restoring the previous logger afterwards (even on exceptions). *)

val apply : t -> Op.t -> unit
(** Replay a logged operation. Replaying a WAL in order against the
    store it was logged from reproduces the original store (row ids
    are allocation order). *)

(** {2 Lookup}

    Accessors raise [Invalid_argument] naming the table and id when
    the id is out of bounds. *)

val data_type : t -> int -> data_type
val data_type_by_name : t -> string -> data_type option
val allocation : t -> int -> allocation
val lock : t -> int -> lock
val txn : t -> int -> txn
val access : t -> int -> access
val stack : t -> int -> string list

val n_accesses : t -> int
val n_txns : t -> int
val n_locks : t -> int
val n_allocations : t -> int
val n_data_types : t -> int
val n_stacks : t -> int

val iter_accesses : t -> (access -> unit) -> unit
val iter_allocations : t -> (allocation -> unit) -> unit
val iter_locks : t -> (lock -> unit) -> unit

val type_keys : t -> string list
(** All distinct derivation keys ("inode:ext4", "dentry", …), sorted. *)

val accesses_of_type : t -> string -> access list
(** Accesses whose allocation has the given type key, in trace order. *)

val layout_of_key : t -> string -> Lockdoc_trace.Layout.t option
(** Layout of the underlying data type of a type key. *)
