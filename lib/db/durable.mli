(** Durable, checkpointed, resumable trace import.

    The durable directory holds three kinds of file:
    - [wal-<lsn>.seg] — CRC-framed op log segments ({!Wal});
    - [snap-<seq>.snap] — atomic snapshots of import state ({!Snapshot});
    - [MANIFEST] — the commit point: names the current snapshot and
      ties it to a WAL LSN and a source-trace event offset.

    Crash-consistency contract: after a process death at ANY point,
    either {!recover} rebuilds a consistent store (manifest snapshot +
    the valid prefix of the WAL tail), or — when the crash predates the
    first manifest — the directory reads as empty and the import simply
    restarts. Resuming {!import} over the same directory and trace
    produces a store whose derived rules are byte-identical to an
    uninterrupted run: it reloads the checkpointed engine, discards the
    WAL past the checkpoint, and deterministically re-imports the
    remaining trace suffix. *)

type progress = {
  pr_resumed_from : int;  (** trace offset the run started at (0 = fresh) *)
  pr_checkpoints : int;  (** checkpoints written by this run *)
  pr_wal_records : int;  (** WAL records appended by this run *)
}

type recovery = {
  r_store : Store.t;
  r_snapshot : string option;  (** snapshot the store was rebuilt from *)
  r_wal_lsn : int;  (** LSN up to which the WAL was replayed *)
  r_replayed : int;  (** WAL records replayed on top of the snapshot *)
  r_torn : string option;  (** why WAL replay stopped early, if it did *)
  r_trace_offset : int;  (** trace events covered by the snapshot *)
  r_trace_file : string;
  r_complete : bool;  (** the recorded import had finished *)
}

val import :
  dir:string ->
  ?checkpoint_every:int ->
  ?segment_bytes:int ->
  ?wal_sync_every:int ->
  ?filter:Filter.t ->
  ?irq_mode:Import.irq_mode ->
  ?mode:Import.mode ->
  ?trace_file:string ->
  Lockdoc_trace.Trace.t ->
  Store.t * Import.stats * progress
(** Import [trace] with durability: every row-creating op goes to the
    WAL, and every [checkpoint_every] events (default 50000) a
    snapshot + manifest checkpoint is committed. If [dir] already
    holds a checkpoint for this trace, the import resumes from it; if
    it holds a {e completed} import, the stored result is returned
    without re-importing. [trace_file] (and the event count) guard
    against resuming over a different trace — mismatch raises
    [Failure].
    @raise Invalid_argument if [checkpoint_every <= 0]. *)

val recover : dir:string -> recovery
(** Rebuild the freshest consistent store from [dir] without the
    source trace: load the manifest's snapshot (falling back to the
    newest loadable one), then replay the valid prefix of the WAL
    tail, stopping — not failing — at the first torn, corrupt or
    undecodable record. Never raises on damaged state; an empty or
    missing directory yields an empty store. *)
