module Layout = Lockdoc_trace.Layout
module Srcloc = Lockdoc_trace.Srcloc
module Event = Lockdoc_trace.Event
module Fieldenc = Lockdoc_trace.Fieldenc
open Schema

let files =
  [
    "data_types.csv"; "allocations.csv"; "locks.csv"; "stacks.csv";
    "txns.csv"; "accesses.csv";
  ]

let sep = ';'

let write_lines path lines =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        lines)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (if line = "" then acc else line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Free-form fields use the trace format's [Fieldenc] escaping, so the
   CSV and trace encodings cannot drift: separators, tabs and newlines
   inside identifiers all round-trip, and layout strings (which contain
   ';' and ',' in their own serialisation) need no special casing. *)
let enc = Fieldenc.encode
let dec = Fieldenc.decode

(* "-" marks an absent optional field; a literal "-" escapes to "\-",
   which [Fieldenc.decode] maps back. *)
let opt_to_field to_string = function
  | None -> "-"
  | Some x ->
      let s = to_string x in
      if s = "-" then "\\-" else s

let field_to_opt of_string = function "-" -> None | s -> Some (of_string s)

let enc_layout l = enc (Layout.to_string l)

let dec_layout s = Layout.of_string (dec s)

let side_to_string = function Event.Exclusive -> "x" | Event.Shared -> "s"

let side_of_string = function
  | "x" -> Event.Exclusive
  | "s" -> Event.Shared
  | s -> failwith ("Csv: bad lock side " ^ s)

let export ~dir store =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path name = Filename.concat dir name in
  let rows = ref [] in
  let flush name =
    write_lines (path name) (List.rev !rows);
    rows := []
  in
  let emit fields = rows := String.concat (String.make 1 sep) fields :: !rows in

  (* data_types *)
  for i = 0 to Store.n_data_types store - 1 do
    let dt = Store.data_type store i in
    emit [ string_of_int dt.dt_id; enc dt.dt_name; enc_layout dt.dt_layout ]
  done;
  flush "data_types.csv";

  (* allocations *)
  Store.iter_allocations store (fun al ->
      emit
        [
          string_of_int al.al_id; string_of_int al.al_ptr;
          string_of_int al.al_size; string_of_int al.al_type;
          opt_to_field enc al.al_subclass; string_of_int al.al_start;
          opt_to_field string_of_int al.al_end;
        ]);
  flush "allocations.csv";

  (* locks *)
  Store.iter_locks store (fun lk ->
      let parent_alloc, parent_member =
        match lk.lk_parent with
        | None -> ("-", "-")
        | Some (al, member) -> (string_of_int al, enc member)
      in
      emit
        [
          string_of_int lk.lk_id; string_of_int lk.lk_ptr;
          Event.lock_kind_to_string lk.lk_kind; enc lk.lk_name; parent_alloc;
          parent_member;
        ]);
  flush "locks.csv";

  (* stacks: id column then frames *)
  for i = 0 to Store.n_stacks store - 1 do
    emit (string_of_int i :: List.map enc (Store.stack store i))
  done;
  flush "stacks.csv";

  (* txns: id, ctx, then (lock,side,loc) triples *)
  for i = 0 to Store.n_txns store - 1 do
    let tx = Store.txn store i in
    let held =
      List.concat_map
        (fun h ->
          [ string_of_int h.h_lock; side_to_string h.h_side;
            enc (Srcloc.to_string h.h_loc) ])
        tx.tx_locks
    in
    emit (string_of_int tx.tx_id :: string_of_int tx.tx_ctx :: held)
  done;
  flush "txns.csv";

  (* accesses *)
  Store.iter_accesses store (fun a ->
      emit
        [
          string_of_int a.ac_id; string_of_int a.ac_event;
          string_of_int a.ac_alloc; enc a.ac_member;
          Event.(match a.ac_kind with Read -> "r" | Write -> "w");
          opt_to_field string_of_int a.ac_txn; enc (Srcloc.to_string a.ac_loc);
          string_of_int a.ac_stack; string_of_int a.ac_ctx;
        ]);
  flush "accesses.csv"

let split line = Fieldenc.split_escaped sep line

let import ~dir =
  let store = Store.create () in
  let path name = Filename.concat dir name in

  List.iter
    (fun line ->
      match split line with
      | [ _id; _name; layout ] ->
          ignore (Store.add_data_type store (dec_layout layout))
      | _ -> failwith ("Csv: bad data_types row: " ^ line))
    (read_lines (path "data_types.csv"));

  List.iter
    (fun line ->
      match split line with
      | [ _id; ptr; size; ty; subclass; start; al_end ] ->
          let al =
            Store.add_allocation store ~ptr:(int_of_string ptr)
              ~size:(int_of_string size) ~ty:(int_of_string ty)
              ~subclass:(field_to_opt dec subclass)
              ~start:(int_of_string start)
          in
          Store.set_alloc_end store al.al_id
            (field_to_opt int_of_string al_end)
      | _ -> failwith ("Csv: bad allocations row: " ^ line))
    (read_lines (path "allocations.csv"));

  List.iter
    (fun line ->
      match split line with
      | [ _id; ptr; kind; name; parent_alloc; parent_member ] ->
          let parent =
            match field_to_opt int_of_string parent_alloc with
            | None -> None
            | Some al -> Some (al, dec parent_member)
          in
          ignore
            (Store.add_lock store ~ptr:(int_of_string ptr)
               ~kind:(Event.lock_kind_of_string kind) ~name:(dec name) ~parent)
      | _ -> failwith ("Csv: bad locks row: " ^ line))
    (read_lines (path "locks.csv"));

  List.iter
    (fun line ->
      match split line with
      | _id :: frames -> ignore (Store.intern_stack store (List.map dec frames))
      | [] -> ())
    (read_lines (path "stacks.csv"));

  List.iter
    (fun line ->
      match split line with
      | _id :: ctx :: held_fields ->
          let rec triples = function
            | lock :: side :: loc :: rest ->
                {
                  h_lock = int_of_string lock;
                  h_side = side_of_string side;
                  h_loc = Srcloc.of_string (dec loc);
                }
                :: triples rest
            | [] -> []
            | _ -> failwith ("Csv: ragged txn row: " ^ line)
          in
          ignore
            (Store.add_txn store ~locks:(triples held_fields)
               ~ctx:(int_of_string ctx))
      | [ _ ] | [] -> failwith ("Csv: bad txn row: " ^ line))
    (read_lines (path "txns.csv"));

  List.iter
    (fun line ->
      match split line with
      | [ _id; event; alloc; member; kind; txn; loc; stack; ctx ] ->
          ignore
            (Store.add_access store ~event:(int_of_string event)
               ~alloc:(int_of_string alloc) ~member:(dec member)
               ~kind:(match kind with "r" -> Event.Read | _ -> Event.Write)
               ~txn:(field_to_opt int_of_string txn)
               ~loc:(Srcloc.of_string (dec loc))
               ~stack:(int_of_string stack)
               ~ctx:(int_of_string ctx))
      | _ -> failwith ("Csv: bad accesses row: " ^ line))
    (read_lines (path "accesses.csv"));
  store
