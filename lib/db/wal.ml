(* Segmented, CRC-framed write-ahead log.

   A record is [len:int32 LE][crc32:int32 LE][payload]; a segment file
   "wal-%010d.seg" holds consecutive records starting at the LSN in its
   name. Readers treat any framing violation — short header, short
   payload, checksum mismatch, absurd length — as a torn tail and stop
   there rather than failing: everything before the first bad byte is
   trusted, nothing after it is. *)

module Obs = Lockdoc_obs.Obs

(* Durability metrics. [wal.flushes] counts channel flushes — the
   simulated-persistence equivalent of fsync; [wal.torn_tail] counts
   replays that stopped early at damage. *)
let c_appends = Obs.counter "wal.appends"
let c_bytes = Obs.counter "wal.bytes"
let c_flushes = Obs.counter "wal.flushes"
let c_rotations = Obs.counter "wal.rotations"
let c_torn = Obs.counter "wal.torn_tail"
let c_replayed = Obs.counter "wal.records_read"

(* ---- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) -------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ---- Segment naming ----------------------------------------------- *)

let segment_name lsn = Printf.sprintf "wal-%010d.seg" lsn

let segment_start name =
  if
    String.length name = 18
    && String.sub name 0 4 = "wal-"
    && Filename.check_suffix name ".seg"
  then int_of_string_opt (String.sub name 4 10)
  else None

let segment_files ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           Option.map (fun start -> (start, Filename.concat dir f))
             (segment_start f))
    |> List.sort compare

(* ---- Writer ------------------------------------------------------- *)

type writer = {
  w_dir : string;
  w_segment_bytes : int;
  w_sync_every : int;
  mutable w_oc : out_channel;
  mutable w_seg_start : int;
  mutable w_seg_bytes : int;
  mutable w_lsn : int;
  mutable w_pending : int;
  w_buf : Buffer.t;
      (* Frames not yet handed to the channel. Keeping our own buffer
         (and flushing the channel immediately after every write) means
         a simulated crash can't leave nondeterministic channel-buffered
         bytes behind. *)
}

let open_segment dir lsn =
  open_out_gen
    [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
    0o644
    (Filename.concat dir (segment_name lsn))

let create ~dir ?(segment_bytes = 1 lsl 20) ?(sync_every = 1) ?(start_lsn = 0)
    () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  {
    w_dir = dir;
    w_segment_bytes = segment_bytes;
    w_sync_every = max 1 sync_every;
    w_oc = open_segment dir start_lsn;
    w_seg_start = start_lsn;
    w_seg_bytes = 0;
    w_lsn = start_lsn;
    w_pending = 0;
    w_buf = Buffer.create 4096;
  }

let lsn w = w.w_lsn

let flush w =
  if Buffer.length w.w_buf > 0 then begin
    let data = Buffer.contents w.w_buf in
    Buffer.clear w.w_buf;
    Crashpoint.hit "wal.flush.pre";
    (* A torn flush writes a prefix of the pending bytes and dies. *)
    Crashpoint.hit "wal.flush.torn" ~partial:(fun () ->
        let half = String.length data / 2 in
        output_substring w.w_oc data 0 half;
        Stdlib.flush w.w_oc);
    output_string w.w_oc data;
    Stdlib.flush w.w_oc;
    Obs.incr c_flushes;
    w.w_pending <- 0
  end

let rotate w =
  flush w;
  if w.w_seg_bytes > 0 then begin
    Obs.incr c_rotations;
    close_out w.w_oc;
    w.w_oc <- open_segment w.w_dir w.w_lsn;
    w.w_seg_start <- w.w_lsn;
    w.w_seg_bytes <- 0
  end

let append w payload =
  Crashpoint.hit "wal.append";
  if w.w_seg_bytes >= w.w_segment_bytes then rotate w;
  let len = String.length payload in
  let hdr = Bytes.create 8 in
  Bytes.set_int32_le hdr 0 (Int32.of_int len);
  Bytes.set_int32_le hdr 4 (Int32.of_int (crc32 payload));
  Buffer.add_bytes w.w_buf hdr;
  Buffer.add_string w.w_buf payload;
  Obs.incr c_appends;
  Obs.add c_bytes (8 + len);
  w.w_seg_bytes <- w.w_seg_bytes + 8 + len;
  w.w_lsn <- w.w_lsn + 1;
  w.w_pending <- w.w_pending + 1;
  if w.w_pending >= w.w_sync_every then flush w

let close w =
  flush w;
  close_out w.w_oc

(* ---- Reader ------------------------------------------------------- *)

(* Longest record we will believe a header about. Anything larger is a
   corrupt length field, not a record. *)
let max_record = 1 lsl 26

type parsed = {
  ps_records : (int * string) list;  (* (lsn, payload), ascending *)
  ps_torn : string option;  (* why parsing stopped, if it did *)
}

let parse_segment ~start content =
  let n = String.length content in
  let records = ref [] in
  let lsn = ref start in
  let pos = ref 0 in
  let torn = ref None in
  (try
     while !pos < n do
       if !pos + 8 > n then begin
         torn := Some (Printf.sprintf "torn header at offset %d" !pos);
         raise Exit
       end;
       let len = Int32.to_int (String.get_int32_le content !pos) in
       let crc =
         Int32.to_int (String.get_int32_le content (!pos + 4)) land 0xFFFFFFFF
       in
       if len < 0 || len > max_record then begin
         torn :=
           Some (Printf.sprintf "corrupt length %d at offset %d" len !pos);
         raise Exit
       end;
       if !pos + 8 + len > n then begin
         torn :=
           Some
             (Printf.sprintf "torn record at offset %d (%d of %d bytes)" !pos
                (n - !pos - 8) len);
         raise Exit
       end;
       let payload = String.sub content (!pos + 8) len in
       if crc32 payload <> crc then begin
         torn :=
           Some
             (Printf.sprintf "checksum mismatch at offset %d (lsn %d)" !pos
                !lsn);
         raise Exit
       end;
       records := (!lsn, payload) :: !records;
       incr lsn;
       pos := !pos + 8 + len
     done
   with Exit -> ());
  { ps_records = List.rev !records; ps_torn = !torn }

let read_file path = In_channel.with_open_bin path In_channel.input_all

let read ~dir ~from =
  let segments = segment_files ~dir in
  let out = ref [] in
  let torn = ref None in
  let expected = ref from in
  (try
     List.iter
       (fun (start, path) ->
         if start > !expected && start > from then begin
           (* A gap in the LSN sequence that reaches into the range the
              caller cares about: records at or past the gap cannot be
              trusted. (A gap wholly below [from] is survivable — the
              snapshot already covers it.) *)
           torn :=
             Some (Printf.sprintf "missing records before lsn %d" start);
           raise Exit
         end
         else begin
           let parsed = parse_segment ~start (read_file path) in
           List.iter
             (fun (lsn, payload) ->
               if lsn >= from then out := (lsn, payload) :: !out;
               expected := lsn + 1)
             parsed.ps_records;
           (match parsed.ps_torn with
           | Some reason when !expected >= from ->
               (* Damage at or past the point the caller cares about:
                  stop here for good. *)
               torn := Some reason;
               raise Exit
           | Some _ ->
               (* Damage confined below [from]; later segments may
                  still carry the records we need, but only if they
                  start at or below our resume point. The [start >
                  expected] guard above enforces that. *)
               ()
           | None -> ())
         end)
       segments
   with Exit -> ());
  let records = List.rev !out in
  Obs.add c_replayed (List.length records);
  if !torn <> None then Obs.incr c_torn;
  (records, !torn)

(* ---- Maintenance -------------------------------------------------- *)

let truncate_after ~dir ~lsn =
  List.iter
    (fun (start, path) ->
      if start >= lsn then Sys.remove path
      else
        let parsed = parse_segment ~start (read_file path) in
        let keep =
          List.filter (fun (l, _) -> l < lsn) parsed.ps_records
        in
        if List.length keep < List.length parsed.ps_records
           || parsed.ps_torn <> None
        then
          if keep = [] then Sys.remove path
          else begin
            let tmp = path ^ ".tmp" in
            Out_channel.with_open_bin tmp (fun oc ->
                List.iter
                  (fun (_, payload) ->
                    let hdr = Bytes.create 8 in
                    Bytes.set_int32_le hdr 0
                      (Int32.of_int (String.length payload));
                    Bytes.set_int32_le hdr 4 (Int32.of_int (crc32 payload));
                    Out_channel.output_bytes oc hdr;
                    Out_channel.output_string oc payload)
                  keep);
            Sys.rename tmp path
          end)
    (segment_files ~dir)

let drop_below ~dir ~lsn =
  let segments = segment_files ~dir in
  let rec go = function
    | (_, path) :: ((next_start, _) :: _ as rest) when next_start <= lsn ->
        (* Every record in this segment precedes [next_start], hence
           precedes [lsn]: safe to delete. *)
        Sys.remove path;
        go rest
    | _ -> ()
  in
  go segments
