type data_type = {
  dt_id : int;
  dt_name : string;
  dt_layout : Lockdoc_trace.Layout.t;
}

type allocation = {
  al_id : int;
  al_ptr : int;
  al_size : int;
  al_type : int;
  al_subclass : string option;
  al_start : int;
  mutable al_end : int option;
}

type lock = {
  lk_id : int;
  lk_ptr : int;
  lk_kind : Lockdoc_trace.Event.lock_kind;
  lk_name : string;
  lk_parent : (int * string) option;
}

type held = {
  h_lock : int;
  h_side : Lockdoc_trace.Event.lock_side;
  h_loc : Lockdoc_trace.Srcloc.t;
}

type txn = { tx_id : int; tx_locks : held list; tx_ctx : int }

type access = {
  ac_id : int;
  ac_event : int;
  ac_alloc : int;
  ac_member : string;
  ac_kind : Lockdoc_trace.Event.access_kind;
  ac_txn : int option;
  ac_loc : Lockdoc_trace.Srcloc.t;
  ac_stack : int;
  ac_ctx : int;
}

let type_key dt al =
  match al.al_subclass with
  | None -> dt.dt_name
  | Some sub -> dt.dt_name ^ ":" ^ sub
