(** Deterministic crash injection for the durability layer.

    Durability code calls {!hit} at the sites where a real process
    death would be interesting (WAL append/flush, snapshot write,
    manifest rename, per-event import step). In production nothing is
    armed and a hit is a counter bump. Tests {!arm} a countdown; the
    n-th hit raises {!Crash} — optionally after running a [partial]
    callback that simulates a torn write (some bytes reached the disk,
    the rest didn't).

    The seeded corruption helpers damage the tail of the last WAL
    segment the way real crashes do: truncation, a flipped bit, or a
    torn final record. They operate on raw [wal-*.seg] files so this
    module stays below {!Wal} in the dependency order. *)

exception Crash of string
(** Raised by an armed {!hit}; the payload names the crash site. *)

val reset : unit -> unit
(** Disarm and zero the hit counter. *)

val arm : after:int -> unit
(** [arm ~after:n] makes the [n]-th subsequent {!hit} raise {!Crash}.
    Resets the hit counter. @raise Invalid_argument if [n <= 0]. *)

val armed : unit -> bool
val hits : unit -> int
(** Hits observed since the last {!reset}/{!arm}. An unarmed run over
    a workload measures how many seedable crash points it contains. *)

val hit : ?partial:(unit -> unit) -> string -> unit
(** Mark a crash site. When the armed countdown expires: run [partial]
    (the torn-write simulation) if given, then raise [Crash site]. *)

(** {2 Seeded WAL-tail corruption} *)

val corrupt_tail : dir:string -> seed:int -> string option
(** Damage the tail of the last non-empty WAL segment in [dir]:
    truncation, bit flip, or torn final record, chosen and parameterised
    by [seed]. Returns a description of the damage, or [None] when
    there is no WAL data to corrupt. *)
