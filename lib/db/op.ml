module Event = Lockdoc_trace.Event
module Layout = Lockdoc_trace.Layout
module Srcloc = Lockdoc_trace.Srcloc
module Fieldenc = Lockdoc_trace.Fieldenc

type t =
  | Add_data_type of Layout.t
  | Add_allocation of {
      ptr : int;
      size : int;
      ty : int;
      subclass : string option;
      start : int;
    }
  | Set_alloc_end of { al : int; at : int option }
  | Add_lock of {
      ptr : int;
      kind : Event.lock_kind;
      name : string;
      parent : (int * string) option;
    }
  | Add_txn of { locks : Schema.held list; ctx : int }
  | Add_access of {
      event : int;
      alloc : int;
      member : string;
      kind : Event.access_kind;
      txn : int option;
      loc : Srcloc.t;
      stack : int;
      ctx : int;
    }
  | Intern_stack of string list

let tab = String.concat "\t"
let soi = string_of_int
let enc = Fieldenc.encode
let dec = Fieldenc.decode
let enc_loc loc = Fieldenc.encode (Srcloc.to_string loc)
let dec_loc s = Srcloc.of_string (Fieldenc.decode s)

(* Same convention as the trace format: "-" marks an absent optional
   field, and a literal "-" value escapes to "\-". *)
let enc_opt = function None -> "-" | Some s -> if s = "-" then "\\-" else enc s
let dec_opt = function "-" -> None | s -> Some (dec s)
let enc_int_opt = function None -> "-" | Some i -> soi i
let dec_int_opt = function "-" -> None | s -> Some (int_of_string s)

let side_to_string = function Event.Exclusive -> "x" | Event.Shared -> "s"

let side_of_string = function
  | "x" -> Event.Exclusive
  | "s" -> Event.Shared
  | s -> failwith ("Op: bad lock side " ^ s)

let access_to_string = function Event.Read -> "r" | Event.Write -> "w"

let access_of_string = function
  | "r" -> Event.Read
  | "w" -> Event.Write
  | s -> failwith ("Op: bad access kind " ^ s)

let to_line = function
  | Add_data_type l -> tab [ "DT"; enc (Layout.to_string l) ]
  | Add_allocation { ptr; size; ty; subclass; start } ->
      tab [ "AL"; soi ptr; soi size; soi ty; enc_opt subclass; soi start ]
  | Set_alloc_end { al; at } -> tab [ "AE"; soi al; enc_int_opt at ]
  | Add_lock { ptr; kind; name; parent } ->
      let pa, pm =
        match parent with
        | None -> ("-", "-")
        | Some (al, m) -> (soi al, enc m)
      in
      tab [ "LK"; soi ptr; Event.lock_kind_to_string kind; enc name; pa; pm ]
  | Add_txn { locks; ctx } ->
      tab
        ("TX" :: soi ctx
        :: List.concat_map
             (fun h ->
               [
                 soi h.Schema.h_lock;
                 side_to_string h.Schema.h_side;
                 enc_loc h.Schema.h_loc;
               ])
             locks)
  | Add_access { event; alloc; member; kind; txn; loc; stack; ctx } ->
      tab
        [
          "AC"; soi event; soi alloc; enc member; access_to_string kind;
          enc_int_opt txn; enc_loc loc; soi stack; soi ctx;
        ]
  | Intern_stack frames -> tab ("ST" :: List.map enc frames)

let of_line line =
  match String.split_on_char '\t' line with
  | [ "DT"; l ] -> Add_data_type (Layout.of_string (dec l))
  | [ "AL"; ptr; size; ty; subclass; start ] ->
      Add_allocation
        {
          ptr = int_of_string ptr;
          size = int_of_string size;
          ty = int_of_string ty;
          subclass = dec_opt subclass;
          start = int_of_string start;
        }
  | [ "AE"; al; at ] ->
      Set_alloc_end { al = int_of_string al; at = dec_int_opt at }
  | [ "LK"; ptr; kind; name; pa; pm ] ->
      let parent =
        match pa with "-" -> None | al -> Some (int_of_string al, dec pm)
      in
      Add_lock
        {
          ptr = int_of_string ptr;
          kind = Event.lock_kind_of_string kind;
          name = dec name;
          parent;
        }
  | "TX" :: ctx :: held ->
      let rec triples = function
        | lock :: side :: loc :: rest ->
            {
              Schema.h_lock = int_of_string lock;
              h_side = side_of_string side;
              h_loc = dec_loc loc;
            }
            :: triples rest
        | [] -> []
        | _ -> failwith ("Op.of_line: ragged TX record: " ^ line)
      in
      Add_txn { locks = triples held; ctx = int_of_string ctx }
  | [ "AC"; event; alloc; member; kind; txn; loc; stack; ctx ] ->
      Add_access
        {
          event = int_of_string event;
          alloc = int_of_string alloc;
          member = dec member;
          kind = access_of_string kind;
          txn = dec_int_opt txn;
          loc = dec_loc loc;
          stack = int_of_string stack;
          ctx = int_of_string ctx;
        }
  | "ST" :: frames -> Intern_stack (List.map dec frames)
  | _ -> failwith ("Op.of_line: malformed record: " ^ line)

let pp fmt t = Format.pp_print_string fmt (to_line t)

let equal a b = to_line a = to_line b
