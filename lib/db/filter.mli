(** Post-processing filters (paper Sec. 5.3, items 2 and 3).

    Object initialisation and teardown deliberately run without locks, so
    accesses made below (de)initialisation functions are excluded, as are
    accesses to members that are locks themselves, [atomic_t]-style
    members, accesses made through atomic helpers, and members declared
    out of scope. *)

type t = {
  fn_blacklist : string list;
      (** drop an access if any stack frame matches one of these function
          names (init/teardown plus globally-ignored helpers) *)
  member_blacklist : (string * string) list;
      (** [(data type name, member)] pairs declared out of scope *)
  drop_lock_members : bool;  (** drop accesses to embedded lock variables *)
  drop_atomic_members : bool;  (** drop accesses to [atomic_t] members *)
}

val empty : t
(** No filtering at all. *)

val default : t
(** The evaluation configuration: init/teardown functions of every
    simulated subsystem, atomic helpers, and the member blacklist
    (paper Sec. 6: 99 + 58 function entries, 30 member entries). *)

val fn_blacklisted : t -> string list -> bool
(** [fn_blacklisted t stack] — does any frame hit the blacklist? *)

val member_blacklisted : t -> ty:string -> member:string -> bool
