(** Trace post-processing: turn a raw event stream into the relational
    store (paper phase ❶, Sec. 5.3/6).

    The importer replays the single-core event stream, keeping per-control-
    flow state (function stack, ordered held-lock list, current transaction)
    across {!Lockdoc_trace.Event.Ctx_switch} boundaries. A transaction
    starts at a lock acquisition and is resumed when a nested acquisition
    is released again (paper Sec. 4.2); out-of-order releases rebuild the
    affected nested transactions. *)

type irq_mode =
  | Inherit
      (** paper behaviour on a single core: an interrupt handler observes
          the interrupted flow's held locks (plus the synthetic
          softirq/hardirq pseudo-locks the kernel emits on entry) *)
  | Separate
      (** ablation: handlers start with a clean lock set *)

type stats = {
  total_events : int;
  lock_ops : int;  (** acquisitions + releases *)
  mem_accesses : int;  (** raw memory-access events *)
  accesses_kept : int;
  filtered_fn : int;  (** dropped: init/teardown or ignored helper on stack *)
  filtered_member : int;  (** dropped: black-listed member *)
  filtered_kind : int;  (** dropped: lock-typed or atomic member *)
  unresolved : int;  (** accesses outside any live monitored allocation *)
  unbalanced_releases : int;  (** releases of locks not held by the flow *)
  allocations : int;
  frees : int;
  locks_static : int;
  locks_embedded : int;
  txns : int;
}

val run : ?filter:Filter.t -> ?irq_mode:irq_mode -> Lockdoc_trace.Trace.t -> Store.t * stats
(** [run trace] imports with {!Filter.default} and [Inherit]. *)

val pp_stats : Format.formatter -> stats -> unit
