(** Trace post-processing: turn a raw event stream into the relational
    store (paper phase ❶, Sec. 5.3/6).

    The importer replays the single-core event stream, keeping per-control-
    flow state (function stack, ordered held-lock list, current transaction)
    across {!Lockdoc_trace.Event.Ctx_switch} boundaries. A transaction
    starts at a lock acquisition and is resumed when a nested acquisition
    is released again (paper Sec. 4.2); out-of-order releases rebuild the
    affected nested transactions. *)

type irq_mode =
  | Inherit
      (** paper behaviour on a single core: an interrupt handler observes
          the interrupted flow's held locks (plus the synthetic
          softirq/hardirq pseudo-locks the kernel emits on entry) *)
  | Separate
      (** ablation: handlers start with a clean lock set *)

type mode =
  | Strict
      (** raise {!Lockdoc_trace.Trace.Invalid} on the first fatal anomaly
          (the historical behaviour) *)
  | Lenient
      (** recover from every anomaly, count it in {!anomalies}, and keep
          importing *)

type anomalies = {
  an_unknown_data_type : int;  (** alloc of a type with no layout; skipped *)
  an_double_free : int;  (** free of an already-freed region *)
  an_free_without_alloc : int;  (** free of a never-allocated pointer *)
  an_access_after_free : int;  (** monitored access inside a freed region *)
  an_acquire_on_freed : int;  (** lock acquire inside a freed region *)
  an_flow_conflict : int;  (** one flow id seen with two context kinds *)
  an_unclosed_txns : int;  (** locks still held at end of trace; their
                               transactions are flushed, not dropped *)
}

val no_anomalies : anomalies

type stats = {
  total_events : int;
  lock_ops : int;  (** acquisitions + releases *)
  mem_accesses : int;  (** raw memory-access events *)
  accesses_kept : int;
  filtered_fn : int;  (** dropped: init/teardown or ignored helper on stack *)
  filtered_member : int;  (** dropped: black-listed member *)
  filtered_kind : int;  (** dropped: lock-typed or atomic member *)
  unresolved : int;  (** accesses outside any live monitored allocation *)
  unbalanced_releases : int;  (** releases of locks not held by the flow *)
  allocations : int;
  frees : int;
  locks_static : int;
  locks_embedded : int;
  txns : int;
  anomalies : anomalies;
}

val anomaly_total : stats -> int
(** Sum of all anomaly counters, including [unbalanced_releases]. Zero
    for a well-formed trace. *)

val run :
  ?filter:Filter.t ->
  ?irq_mode:irq_mode ->
  ?mode:mode ->
  Lockdoc_trace.Trace.t ->
  Store.t * stats
(** [run trace] imports with {!Filter.default}, [Inherit] and [Strict].
    On a well-formed trace the two modes produce identical results. *)

(** {2 Incremental engine}

    [run] is a thin wrapper over an incremental engine that consumes
    one event at a time. The engine is plain marshalable data (no
    closures), which is what lets the durability layer checkpoint an
    import mid-stream and resume it after a crash: a snapshot captures
    the engine, and replay continues from {!position}. *)

type engine

val engine :
  ?filter:Filter.t ->
  ?irq_mode:irq_mode ->
  ?mode:mode ->
  ?log:(Op.t -> unit) ->
  Lockdoc_trace.Layout.t list ->
  engine
(** Fresh engine over the given layouts. [log], when given, is
    installed as the store's op logger before the layout rows are
    created, so every row the engine makes is observed. *)

val feed : engine -> Lockdoc_trace.Event.t -> unit
(** Process one event. Events must be fed in trace order; the engine
    tracks the index itself. May raise {!Lockdoc_trace.Trace.Invalid}
    in [Strict] mode. *)

val position : engine -> int
(** Index of the next event to feed (= number of events consumed). *)

val engine_store : engine -> Store.t

val stats : engine -> stats
(** Stats so far, without the end-of-trace unclosed-transaction pass. *)

val finalize : engine -> stats
(** Run the end-of-trace unclosed-transaction pass and return final
    stats. Call exactly once, after the last event. *)

val pp_stats : Format.formatter -> stats -> unit
(** Prints the anomaly breakdown only when {!anomaly_total} is
    positive, so output for a clean trace is unchanged. *)
