(** CSV export/import of the relational trace store.

    The paper's post-processing emits CSV tables and bulk-loads them into
    MariaDB (Sec. 6); this module reproduces that interface so a store
    can be archived, inspected with standard tools, or reloaded without
    re-importing the raw trace. One file per relation:

    - [data_types.csv] — id, name, layout
    - [allocations.csv] — id, ptr, size, type id, subclass, start, end
    - [locks.csv] — id, ptr, kind, name, parent allocation, parent member
    - [txns.csv] — id, ctx, held list (lock id / side / location triples)
    - [accesses.csv] — id, event, allocation, member, kind, txn, location,
      stack id, ctx
    - [stacks.csv] — id, frames (innermost first)

    Fields are separated by [';']; no field produced by the simulator
    contains one. *)

val export : dir:string -> Store.t -> unit
(** Write all six relations into [dir] (created if missing). *)

val import : dir:string -> Store.t
(** Rebuild a store from {!export} output. Raises [Failure] or
    [Sys_error] on malformed input. *)

val files : string list
(** The relation file names, in load order. *)
