module Prng = Lockdoc_util.Prng

exception Crash of string

let () =
  Printexc.register_printer (function
    | Crash site -> Some (Printf.sprintf "Crashpoint.Crash(%S)" site)
    | _ -> None)

type state = { mutable countdown : int option; mutable hits : int }

let state = { countdown = None; hits = 0 }

let reset () =
  state.countdown <- None;
  state.hits <- 0

let arm ~after =
  if after <= 0 then invalid_arg "Crashpoint.arm: after must be positive";
  state.countdown <- Some after;
  state.hits <- 0

let armed () = state.countdown <> None
let hits () = state.hits

let hit ?partial site =
  state.hits <- state.hits + 1;
  match state.countdown with
  | None -> ()
  | Some n when state.hits < n -> ()
  | Some _ ->
      state.countdown <- None;
      (match partial with Some f -> f () | None -> ());
      raise (Crash site)

(* ---- Seeded post-crash corruption of the WAL tail ----------------- *)
(* Operates on raw segment files by name so this module stays below
   [Wal] in the dependency order. *)

let wal_segments dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f = 18
           && String.sub f 0 4 = "wal-"
           && Filename.check_suffix f ".seg")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)

let file_size path =
  match In_channel.with_open_bin path In_channel.length with
  | n -> Int64.to_int n
  | exception Sys_error _ -> 0

let last_nonempty_segment dir =
  List.fold_left
    (fun acc path ->
      match file_size path with 0 -> acc | n -> Some (path, n))
    None (wal_segments dir)

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let write_file path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let truncate_tail ~dir prng =
  match last_nonempty_segment dir with
  | None -> None
  | Some (path, size) ->
      let cut = 1 + Prng.int prng (min size 64) in
      let keep = size - cut in
      let content = read_file path in
      write_file path (String.sub content 0 keep);
      Some (Printf.sprintf "truncated %d bytes off %s" cut (Filename.basename path))

let flip_bit ~dir prng =
  match last_nonempty_segment dir with
  | None -> None
  | Some (path, size) ->
      (* Flip in the last half so the damage lands near the tail. *)
      let lo = size / 2 in
      let pos = lo + Prng.int prng (size - lo) in
      let bit = Prng.int prng 8 in
      let content = Bytes.of_string (read_file path) in
      Bytes.set content pos
        (Char.chr (Char.code (Bytes.get content pos) lxor (1 lsl bit)));
      write_file path (Bytes.to_string content);
      Some
        (Printf.sprintf "flipped bit %d at offset %d of %s" bit pos
           (Filename.basename path))

let torn_append ~dir prng =
  match last_nonempty_segment dir with
  | None -> None
  | Some (path, _) ->
      (* A record header promising more payload than follows: a torn
         final append. *)
      let promised = 32 + Prng.int prng 200 in
      let got = Prng.int prng 8 in
      let b = Buffer.create 16 in
      let hdr = Bytes.create 8 in
      Bytes.set_int32_le hdr 0 (Int32.of_int promised);
      Bytes.set_int32_le hdr 4 (Int32.of_int (Prng.int prng 0x3fffffff));
      Buffer.add_bytes b hdr;
      for _ = 1 to got do
        Buffer.add_char b (Char.chr (Prng.int prng 256))
      done;
      let content = read_file path in
      write_file path (content ^ Buffer.contents b);
      Some
        (Printf.sprintf "torn append (%d of %d payload bytes) to %s" got
           promised (Filename.basename path))

let corrupt_tail ~dir ~seed =
  let prng = Prng.of_int seed in
  match Prng.int prng 3 with
  | 0 -> truncate_tail ~dir prng
  | 1 -> flip_bit ~dir prng
  | _ -> torn_append ~dir prng
