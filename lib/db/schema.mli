(** Row types of the relational trace store.

    This mirrors the paper's database schema (Fig. 6): memory [access]es go
    to [allocation]s which are instances of observed [data_type]s; accesses
    under locks belong to a [txn] which references held [lock]s in locking
    order; each access carries a [stack] trace. Subclasses (paper Sec. 5.3,
    item 1) are recorded on the allocation. *)

type data_type = {
  dt_id : int;
  dt_name : string;
  dt_layout : Lockdoc_trace.Layout.t;
}

type allocation = {
  al_id : int;
  al_ptr : int;
  al_size : int;
  al_type : int;  (** [data_type] id *)
  al_subclass : string option;
  al_start : int;  (** event index of the allocation *)
  mutable al_end : int option;  (** event index of the free, if any *)
}

type lock = {
  lk_id : int;
  lk_ptr : int;
  lk_kind : Lockdoc_trace.Event.lock_kind;
  lk_name : string;
  lk_parent : (int * string) option;
      (** [(allocation id, member name)] for locks embedded in a monitored
          structure; [None] for statically allocated locks. *)
}

type held = {
  h_lock : int;  (** [lock] id *)
  h_side : Lockdoc_trace.Event.lock_side;
  h_loc : Lockdoc_trace.Srcloc.t;  (** acquisition site *)
}

type txn = {
  tx_id : int;
  tx_locks : held list;  (** in acquisition order, oldest first *)
  tx_ctx : int;  (** control-flow pid *)
}

type access = {
  ac_id : int;
  ac_event : int;  (** index into the source trace *)
  ac_alloc : int;
  ac_member : string;
  ac_kind : Lockdoc_trace.Event.access_kind;
  ac_txn : int option;  (** [None] = no locks held *)
  ac_loc : Lockdoc_trace.Srcloc.t;
  ac_stack : int;  (** interned stack-trace id *)
  ac_ctx : int;
}

val type_key : data_type -> allocation -> string
(** Derivation key: ["inode:ext4"] for subclassed types, the plain type
    name otherwise. *)
