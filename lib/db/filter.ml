type t = {
  fn_blacklist : string list;
  member_blacklist : (string * string) list;
  drop_lock_members : bool;
  drop_atomic_members : bool;
}

let empty =
  {
    fn_blacklist = [];
    member_blacklist = [];
    drop_lock_members = false;
    drop_atomic_members = false;
  }

(* Init/teardown functions of the simulated subsystems: these run before the
   object is published (or after it became unreachable), so their lock-free
   accesses must not count as observations (paper Sec. 5.3, item 2). *)
let init_teardown_functions =
  [
    "inode_init_always";
    "inode_init_once";
    "alloc_inode";
    "destroy_inode";
    "free_inode_nonrcu";
    "d_alloc_init";
    "dentry_free";
    "jbd2_journal_init_common";
    "jbd2_journal_destroy";
    "jbd2_transaction_init";
    "jbd2_transaction_free";
    "journal_head_init";
    "journal_head_free";
    "buffer_head_init";
    "free_buffer_head";
    "sb_alloc_init";
    "destroy_super";
    "bdev_alloc_init";
    "bdev_free";
    "bdi_init";
    "bdi_exit";
    "cdev_init";
    "cdev_free";
    "pipe_alloc_init";
    "free_pipe_info";
  ]

(* Globally ignored helpers: accesses made through these explicitly bypass
   the locking discipline (paper Sec. 5.3, item 3). *)
let global_ignores =
  [
    "atomic_read";
    "atomic_set";
    "atomic_inc";
    "atomic_dec";
    "atomic_dec_and_test";
    "atomic_add";
    "atomic_cmpxchg";
    "cmpxchg";
    "test_bit";
    "set_bit_atomic";
    "clear_bit_atomic";
    "read_once";
    "write_once";
  ]

let default_member_blacklist =
  [
    (* Nested structures related to unobserved parts of the system. *)
    ("inode", "i_fsnotify_marks");
    ("inode", "i_fsnotify_mask");
    ("inode", "i_security");
    ("inode", "i_devices");
    ("inode", "i_wb_frn_winner");
    ("super_block", "s_security");
    ("super_block", "s_shrink");
    ("super_block", "s_pins");
    ("dentry", "d_fsdata");
    ("journal_t", "j_chksum_driver");
    ("journal_t", "j_wait_done_commit");
    ("journal_t", "j_wait_commit");
    ("journal_t", "j_wait_updates");
    ("journal_t", "j_wait_transaction_locked");
    ("journal_t", "j_wait_reserved");
    ("backing_dev_info", "owner");
    ("backing_dev_info", "dev_name");
    ("cdev", "kobj");
    ("transaction_t", "t_chp_stats");
    ("pipe_inode_info", "wait");
    ("block_device", "bd_holder_disks");
  ]

let default =
  {
    fn_blacklist = init_teardown_functions @ global_ignores;
    member_blacklist = default_member_blacklist;
    drop_lock_members = true;
    drop_atomic_members = true;
  }

let fn_blacklisted t frames =
  List.exists (fun frame -> List.mem frame t.fn_blacklist) frames

let member_blacklisted t ~ty ~member =
  List.mem (ty, member) t.member_blacklist
