(* Atomic snapshots of import state, plus the durable directory's
   manifest. A snapshot file is [magic][payload-length][crc32][payload]
   written to a temp name and renamed into place; the manifest — also
   written atomically — is the commit point that ties a snapshot to a
   WAL position and a source-trace offset. *)

module Obs = Lockdoc_obs.Obs

let c_saves = Obs.counter "snapshot.saves"
let c_loads = Obs.counter "snapshot.loads"
let c_load_failures = Obs.counter "snapshot.load_failures"
let h_save_ms = Obs.histogram "snapshot.save_ms"
let h_load_ms = Obs.histogram "snapshot.load_ms"

type meta = {
  m_snapshot : string; (* snapshot file name, relative to the dir *)
  m_wal_lsn : int; (* first WAL lsn NOT covered by the snapshot *)
  m_trace_offset : int; (* next trace event to import *)
  m_trace_file : string; (* source trace path, "" if unknown *)
  m_trace_events : int; (* total events in the source trace *)
  m_complete : bool;
}

type payload = {
  p_meta : meta;
  p_store : Store.t;
  p_engine : Import.engine option; (* None once the import completed *)
  p_stats : Import.stats option; (* Some once the import completed *)
}

let magic = "LOCKDOCSNAP1\n"

let snapshot_name seq = Printf.sprintf "snap-%06d.snap" seq

let snapshot_seq name =
  if
    String.length name = 16
    && String.sub name 0 5 = "snap-"
    && Filename.check_suffix name ".snap"
  then int_of_string_opt (String.sub name 5 6)
  else None

let snapshots ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           Option.map (fun seq -> (seq, f)) (snapshot_seq f))
    |> List.sort (fun (a, _) (b, _) -> compare b a)

let save ~dir p =
  let t0 = if Obs.enabled () then Obs.Clock.wall () else 0. in
  (* The store's op logger is a closure; Marshal refuses those. Clear
     it for the duration of serialisation. *)
  let blob =
    Store.with_logger p.p_store None (fun () -> Marshal.to_string p [])
  in
  let path = Filename.concat dir p.p_meta.m_snapshot in
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc magic;
      let hdr = Bytes.create 8 in
      Bytes.set_int32_le hdr 0 (Int32.of_int (String.length blob));
      Bytes.set_int32_le hdr 4 (Int32.of_int (Wal.crc32 blob));
      Out_channel.output_bytes oc hdr;
      Crashpoint.hit "snapshot.write";
      Out_channel.output_string oc blob;
      Out_channel.flush oc);
  Crashpoint.hit "snapshot.rename";
  Sys.rename tmp path;
  Obs.incr c_saves;
  if Obs.enabled () then Obs.observe h_save_ms ((Obs.Clock.wall () -. t0) *. 1000.)

let load path =
  let t0 = if Obs.enabled () then Obs.Clock.wall () else 0. in
  match
    In_channel.with_open_bin path (fun ic ->
        let m = really_input_string ic (String.length magic) in
        if m <> magic then None
        else
          let hdr = really_input_string ic 8 in
          let len = Int32.to_int (String.get_int32_le hdr 0) in
          let crc =
            Int32.to_int (String.get_int32_le hdr 4) land 0xFFFFFFFF
          in
          if len < 0 then None
          else
            let blob = really_input_string ic len in
            if Wal.crc32 blob <> crc then None
            else Some (Marshal.from_string blob 0 : payload))
  with
  | Some _ as p ->
      Obs.incr c_loads;
      if Obs.enabled () then
        Obs.observe h_load_ms ((Obs.Clock.wall () -. t0) *. 1000.);
      p
  | None ->
      Obs.incr c_load_failures;
      None
  | exception _ ->
      Obs.incr c_load_failures;
      None

let latest_loadable ~dir =
  List.fold_left
    (fun acc (_, name) ->
      match acc with
      | Some _ -> acc
      | None -> load (Filename.concat dir name))
    None (snapshots ~dir)

(* ---- Manifest ----------------------------------------------------- *)

let manifest_file = "MANIFEST"

let write_manifest ~dir m =
  let path = Filename.concat dir manifest_file in
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Crashpoint.hit "manifest.write";
      Printf.fprintf oc "lockdoc-durable 1\n";
      Printf.fprintf oc "snapshot=%s\n" m.m_snapshot;
      Printf.fprintf oc "wal_lsn=%d\n" m.m_wal_lsn;
      Printf.fprintf oc "trace_offset=%d\n" m.m_trace_offset;
      Printf.fprintf oc "trace_file=%s\n"
        (Lockdoc_trace.Fieldenc.encode m.m_trace_file);
      Printf.fprintf oc "trace_events=%d\n" m.m_trace_events;
      Printf.fprintf oc "complete=%b\n" m.m_complete;
      Out_channel.flush oc);
  Crashpoint.hit "manifest.rename";
  Sys.rename tmp path

let read_manifest ~dir =
  let path = Filename.concat dir manifest_file in
  if not (Sys.file_exists path) then None
  else
    match
      In_channel.with_open_bin path (fun ic ->
          match In_channel.input_line ic with
          | Some "lockdoc-durable 1" ->
              let tbl = Hashtbl.create 8 in
              let rec loop () =
                match In_channel.input_line ic with
                | None -> ()
                | Some line ->
                    (match String.index_opt line '=' with
                    | Some i ->
                        Hashtbl.replace tbl
                          (String.sub line 0 i)
                          (String.sub line (i + 1)
                             (String.length line - i - 1))
                    | None -> ());
                    loop ()
              in
              loop ();
              let str k = Hashtbl.find_opt tbl k in
              let int k = Option.bind (str k) int_of_string_opt in
              (match (str "snapshot", int "wal_lsn", int "trace_offset") with
              | Some snapshot, Some wal_lsn, Some trace_offset ->
                  Some
                    {
                      m_snapshot = snapshot;
                      m_wal_lsn = wal_lsn;
                      m_trace_offset = trace_offset;
                      m_trace_file =
                        (match str "trace_file" with
                        | Some s -> Lockdoc_trace.Fieldenc.decode s
                        | None -> "");
                      m_trace_events =
                        Option.value ~default:0 (int "trace_events");
                      m_complete = str "complete" = Some "true";
                    }
              | _ -> None)
          | _ -> None)
    with
    | m -> m
    | exception _ -> None
