open Schema
module Vec = Lockdoc_util.Vec

type t = {
  data_types : data_type Vec.t;
  allocations : allocation Vec.t;
  locks : lock Vec.t;
  txns : txn Vec.t;
  accesses : access Vec.t;
  stacks : string list Vec.t;
  stack_index : (string, int) Hashtbl.t;
  dt_by_name : (string, int) Hashtbl.t;
  by_type_key : (string, int list ref) Hashtbl.t;
      (* type key -> access ids, reversed *)
  mutable on_op : (Op.t -> unit) option;
      (* Must stay None while the store is marshalled: closures don't
         serialise. Snapshot clears it via [with_logger]. *)
  mutable sealed : bool;
      (* Parallel analysis shares the store read-only across domains;
         once sealed, row mutations are refused. *)
}

let create () =
  {
    data_types = Vec.create ();
    allocations = Vec.create ();
    locks = Vec.create ();
    txns = Vec.create ();
    accesses = Vec.create ();
    stacks = Vec.create ();
    stack_index = Hashtbl.create 256;
    dt_by_name = Hashtbl.create 32;
    by_type_key = Hashtbl.create 64;
    on_op = None;
    sealed = false;
  }

let seal t = t.sealed <- true

let is_sealed t = t.sealed

let guard_unsealed t fn =
  if t.sealed then
    invalid_arg
      (Printf.sprintf
         "Store.%s: store is sealed (read-only for parallel analysis)" fn)

let set_logger t log = t.on_op <- log

let with_logger t log f =
  let saved = t.on_op in
  t.on_op <- log;
  Fun.protect ~finally:(fun () -> t.on_op <- saved) f

let log t op = match t.on_op with Some f -> f op | None -> ()

let add_data_type t layout =
  guard_unsealed t "add_data_type";
  let dt_id = Vec.length t.data_types in
  let row =
    { dt_id; dt_name = layout.Lockdoc_trace.Layout.ty_name; dt_layout = layout }
  in
  ignore (Vec.push t.data_types row);
  Hashtbl.replace t.dt_by_name row.dt_name dt_id;
  log t (Op.Add_data_type layout);
  row

let add_allocation t ~ptr ~size ~ty ~subclass ~start =
  guard_unsealed t "add_allocation";
  let al_id = Vec.length t.allocations in
  let row =
    {
      al_id;
      al_ptr = ptr;
      al_size = size;
      al_type = ty;
      al_subclass = subclass;
      al_start = start;
      al_end = None;
    }
  in
  ignore (Vec.push t.allocations row);
  log t (Op.Add_allocation { ptr; size; ty; subclass; start });
  row

let add_lock t ~ptr ~kind ~name ~parent =
  guard_unsealed t "add_lock";
  let lk_id = Vec.length t.locks in
  let row = { lk_id; lk_ptr = ptr; lk_kind = kind; lk_name = name; lk_parent = parent } in
  ignore (Vec.push t.locks row);
  log t (Op.Add_lock { ptr; kind; name; parent });
  row

let add_txn t ~locks ~ctx =
  guard_unsealed t "add_txn";
  let tx_id = Vec.length t.txns in
  let row = { tx_id; tx_locks = locks; tx_ctx = ctx } in
  ignore (Vec.push t.txns row);
  log t (Op.Add_txn { locks; ctx });
  row

let lookup ~fn ~table vec id =
  match Vec.get vec id with
  | row -> row
  | exception Invalid_argument _ ->
      invalid_arg
        (Printf.sprintf "Store.%s: id %d out of bounds for table %s (%d rows)"
           fn id table (Vec.length vec))

let data_type t id = lookup ~fn:"data_type" ~table:"data_types" t.data_types id

let data_type_by_name t name =
  Option.map (Vec.get t.data_types) (Hashtbl.find_opt t.dt_by_name name)

let allocation t id =
  lookup ~fn:"allocation" ~table:"allocations" t.allocations id

let lock t id = lookup ~fn:"lock" ~table:"locks" t.locks id

let txn t id = lookup ~fn:"txn" ~table:"txns" t.txns id

let access t id = lookup ~fn:"access" ~table:"accesses" t.accesses id

let stack t id = lookup ~fn:"stack" ~table:"stacks" t.stacks id

let set_alloc_end t id at =
  guard_unsealed t "set_alloc_end";
  let al = allocation t id in
  al.al_end <- at;
  log t (Op.Set_alloc_end { al = id; at })

let intern_stack t frames =
  let key = String.concat "\x00" frames in
  match Hashtbl.find_opt t.stack_index key with
  | Some id -> id
  | None ->
      guard_unsealed t "intern_stack";
      let id = Vec.push t.stacks frames in
      Hashtbl.replace t.stack_index key id;
      log t (Op.Intern_stack frames);
      id

let add_access t ~event ~alloc ~member ~kind ~txn ~loc ~stack ~ctx =
  guard_unsealed t "add_access";
  let ac_id = Vec.length t.accesses in
  let row =
    {
      ac_id;
      ac_event = event;
      ac_alloc = alloc;
      ac_member = member;
      ac_kind = kind;
      ac_txn = txn;
      ac_loc = loc;
      ac_stack = stack;
      ac_ctx = ctx;
    }
  in
  ignore (Vec.push t.accesses row);
  let al = allocation t alloc in
  let key = type_key (data_type t al.al_type) al in
  let cell =
    match Hashtbl.find_opt t.by_type_key key with
    | Some cell -> cell
    | None ->
        let cell = ref [] in
        Hashtbl.replace t.by_type_key key cell;
        cell
  in
  cell := ac_id :: !cell;
  log t (Op.Add_access { event; alloc; member; kind; txn; loc; stack; ctx });
  row

let apply t = function
  | Op.Add_data_type layout -> ignore (add_data_type t layout)
  | Op.Add_allocation { ptr; size; ty; subclass; start } ->
      ignore (add_allocation t ~ptr ~size ~ty ~subclass ~start)
  | Op.Set_alloc_end { al; at } -> set_alloc_end t al at
  | Op.Add_lock { ptr; kind; name; parent } ->
      ignore (add_lock t ~ptr ~kind ~name ~parent)
  | Op.Add_txn { locks; ctx } -> ignore (add_txn t ~locks ~ctx)
  | Op.Add_access { event; alloc; member; kind; txn; loc; stack; ctx } ->
      ignore (add_access t ~event ~alloc ~member ~kind ~txn ~loc ~stack ~ctx)
  | Op.Intern_stack frames -> ignore (intern_stack t frames)

let n_accesses t = Vec.length t.accesses
let n_txns t = Vec.length t.txns
let n_locks t = Vec.length t.locks
let n_allocations t = Vec.length t.allocations
let n_data_types t = Vec.length t.data_types
let n_stacks t = Vec.length t.stacks

let iter_accesses t f = Vec.iter f t.accesses
let iter_allocations t f = Vec.iter f t.allocations
let iter_locks t f = Vec.iter f t.locks

let type_keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.by_type_key []
  |> List.sort String.compare

let accesses_of_type t key =
  match Hashtbl.find_opt t.by_type_key key with
  | None -> []
  | Some cell -> List.rev_map (Vec.get t.accesses) !cell

let layout_of_key t key =
  let base =
    match String.index_opt key ':' with
    | None -> key
    | Some i -> String.sub key 0 i
  in
  Option.map (fun dt -> dt.dt_layout) (data_type_by_name t base)
