module Event = Lockdoc_trace.Event
module Layout = Lockdoc_trace.Layout
module Diag = Lockdoc_trace.Diag
module Trace = Lockdoc_trace.Trace
module IntMap = Map.Make (Int)

type irq_mode = Inherit | Separate

type mode = Strict | Lenient

type anomalies = {
  an_unknown_data_type : int;
  an_double_free : int;
  an_free_without_alloc : int;
  an_access_after_free : int;
  an_acquire_on_freed : int;
  an_flow_conflict : int;
  an_unclosed_txns : int;
}

let no_anomalies =
  {
    an_unknown_data_type = 0;
    an_double_free = 0;
    an_free_without_alloc = 0;
    an_access_after_free = 0;
    an_acquire_on_freed = 0;
    an_flow_conflict = 0;
    an_unclosed_txns = 0;
  }

type stats = {
  total_events : int;
  lock_ops : int;
  mem_accesses : int;
  accesses_kept : int;
  filtered_fn : int;
  filtered_member : int;
  filtered_kind : int;
  unresolved : int;
  unbalanced_releases : int;
  allocations : int;
  frees : int;
  locks_static : int;
  locks_embedded : int;
  txns : int;
  anomalies : anomalies;
}

let anomaly_total s =
  s.anomalies.an_unknown_data_type + s.anomalies.an_double_free
  + s.anomalies.an_free_without_alloc + s.anomalies.an_access_after_free
  + s.anomalies.an_acquire_on_freed + s.anomalies.an_flow_conflict
  + s.anomalies.an_unclosed_txns + s.unbalanced_releases

(* One held lock together with the transaction opened by its acquisition;
   popping back to it resumes that transaction (paper Sec. 4.2). *)
type held_entry = { entry : Schema.held; opened_txn : int }

type ctx_state = {
  pid : int;
  mutable frames : string list; (* innermost first *)
  mutable held : held_entry list; (* oldest first *)
  mutable base_txn : int option; (* txn inherited from the interrupted flow *)
}

let cur_txn ctx =
  match List.rev ctx.held with
  | last :: _ -> Some last.opened_txn
  | [] -> ctx.base_txn

let run ?(filter = Filter.default) ?(irq_mode = Inherit) ?(mode = Strict) trace =
  let store = Store.create () in
  let dt_ids = Hashtbl.create 32 in
  List.iter
    (fun layout ->
      let dt = Store.add_data_type store layout in
      Hashtbl.replace dt_ids dt.Schema.dt_name dt.Schema.dt_id)
    trace.Lockdoc_trace.Trace.layouts;

  (* Live-object state. *)
  let live_allocs = ref IntMap.empty (* base ptr -> al_id *) in
  let freed_allocs = ref IntMap.empty (* base ptr -> size, until reused *) in
  let live_locks = Hashtbl.create 256 (* lock ptr -> lk_id *) in
  let locks_of_alloc = Hashtbl.create 256 (* al_id -> lock ptr list *) in
  let flow_kinds = Hashtbl.create 32 (* pid -> ctx_kind *) in

  (* Per-control-flow state. *)
  let ctxs = Hashtbl.create 32 in
  let current = ref { pid = 0; frames = []; held = []; base_txn = None } in
  Hashtbl.replace ctxs 0 !current;

  (* Counters. *)
  let lock_ops = ref 0
  and mem_accesses = ref 0
  and kept = ref 0
  and f_fn = ref 0
  and f_member = ref 0
  and f_kind = ref 0
  and unresolved = ref 0
  and unbalanced = ref 0
  and allocs = ref 0
  and frees = ref 0
  and locks_static = ref 0
  and locks_embedded = ref 0 in

  (* Anomaly counters: detected corruption the lenient mode recovers
     from. Strict mode raises on the first fatal one instead. *)
  let an_unknown_ty = ref 0
  and an_double_free = ref 0
  and an_free_noalloc = ref 0
  and an_after_free = ref 0
  and an_acq_freed = ref 0
  and an_flow = ref 0
  and an_unclosed = ref 0 in

  let anomaly counter ~event kind message =
    incr counter;
    let d = Diag.make ~event kind message in
    if mode = Strict && Diag.is_fatal d then raise (Trace.Invalid d)
  in

  let in_freed ptr =
    match IntMap.find_last_opt (fun base -> base <= ptr) !freed_allocs with
    | Some (base, size) -> ptr < base + size
    | None -> false
  in

  let find_alloc ptr =
    match IntMap.find_last_opt (fun base -> base <= ptr) !live_allocs with
    | Some (base, al_id) ->
        let al = Store.allocation store al_id in
        if ptr < base + al.Schema.al_size then Some al else None
    | None -> None
  in

  let resolve_lock ~event ptr kind name =
    match Hashtbl.find_opt live_locks ptr with
    | Some lk_id -> Store.lock store lk_id
    | None ->
        let parent =
          match find_alloc ptr with
          | None -> None
          | Some al ->
              let dt = Store.data_type store al.Schema.al_type in
              let offset = ptr - al.Schema.al_ptr in
              Option.map
                (fun m -> (al.Schema.al_id, m.Layout.m_name))
                (Layout.member_at dt.Schema.dt_layout offset)
        in
        (match parent with
        | None ->
            if in_freed ptr then
              anomaly an_acq_freed ~event Diag.Acquire_on_freed_lock
                (Printf.sprintf
                   "acquire of %s at 0x%x inside a freed allocation" name ptr);
            incr locks_static
        | Some (al_id, _) ->
            incr locks_embedded;
            let existing =
              Option.value ~default:[] (Hashtbl.find_opt locks_of_alloc al_id)
            in
            Hashtbl.replace locks_of_alloc al_id (ptr :: existing));
        let lk = Store.add_lock store ~ptr ~kind ~name ~parent in
        Hashtbl.replace live_locks ptr lk.Schema.lk_id;
        lk
  in

  (* Rebuild the nested transactions above a removal point: their opened
     transactions included the removed lock, so they get fresh rows. *)
  let reopen_txns ctx kept_prefix tail =
    let rebuilt =
      List.fold_left
        (fun prefix he ->
          let held_list = List.map (fun e -> e.entry) prefix @ [ he.entry ] in
          let tx = Store.add_txn store ~locks:held_list ~ctx:ctx.pid in
          prefix @ [ { he with opened_txn = tx.Schema.tx_id } ])
        kept_prefix tail
    in
    ctx.held <- rebuilt
  in

  let handle_acquire ctx ~event ~lock_ptr ~kind ~side ~name ~loc =
    let lk = resolve_lock ~event lock_ptr kind name in
    let entry =
      { Schema.h_lock = lk.Schema.lk_id; h_side = side; h_loc = loc }
    in
    let held_list = List.map (fun e -> e.entry) ctx.held @ [ entry ] in
    let tx = Store.add_txn store ~locks:held_list ~ctx:ctx.pid in
    ctx.held <- ctx.held @ [ { entry; opened_txn = tx.Schema.tx_id } ]
  in

  let handle_release ctx ~lock_ptr =
    match Hashtbl.find_opt live_locks lock_ptr with
    | None -> incr unbalanced
    | Some lk_id ->
        (* Drop the most recent occurrence of this lock. *)
        let rec split_last_match rev_seen = function
          | [] -> None
          | he :: rest when he.entry.Schema.h_lock = lk_id
                            && not (List.exists
                                      (fun h -> h.entry.Schema.h_lock = lk_id)
                                      rest) ->
              Some (List.rev rev_seen, rest)
          | he :: rest -> split_last_match (he :: rev_seen) rest
        in
        (match split_last_match [] ctx.held with
        | None -> incr unbalanced
        | Some (prefix, []) -> ctx.held <- prefix
        | Some (prefix, tail) -> reopen_txns ctx prefix tail)
  in

  Array.iteri
    (fun idx ev ->
      match ev with
      | Event.Ctx_switch { pid; kind } ->
          (match Hashtbl.find_opt flow_kinds pid with
          | Some k when k <> kind ->
              anomaly an_flow ~event:idx Diag.Flow_kind_conflict
                (Printf.sprintf "flow %d switches kind %s -> %s" pid
                   (Event.ctx_to_string k) (Event.ctx_to_string kind))
          | Some _ -> ()
          | None -> Hashtbl.replace flow_kinds pid kind);
          (match kind with
          | Event.Task -> (
              match Hashtbl.find_opt ctxs pid with
              | Some st -> current := st
              | None ->
                  let st = { pid; frames = []; held = []; base_txn = None } in
                  Hashtbl.replace ctxs pid st;
                  current := st)
          | Event.Softirq | Event.Hardirq ->
              (* Handlers run to completion: always a fresh state. *)
              let st =
                match irq_mode with
                | Separate -> { pid; frames = []; held = []; base_txn = None }
                | Inherit ->
                    {
                      pid;
                      frames = [];
                      held = (!current).held;
                      base_txn = (!current).base_txn;
                    }
              in
              current := st)
      | Event.Alloc { ptr; size; data_type; subclass } -> (
          incr allocs;
          match Hashtbl.find_opt dt_ids data_type with
          | None ->
              (* Lenient recovery: skip the allocation; its accesses count
                 as unresolved, exactly as if the region were unmonitored. *)
              anomaly an_unknown_ty ~event:idx Diag.Unknown_data_type
                (Printf.sprintf "allocation of undeclared type %s at 0x%x"
                   data_type ptr)
          | Some ty ->
              let al =
                Store.add_allocation store ~ptr ~size ~ty ~subclass ~start:idx
              in
              freed_allocs :=
                IntMap.filter
                  (fun base fsize -> base + fsize <= ptr || ptr + size <= base)
                  !freed_allocs;
              live_allocs := IntMap.add ptr al.Schema.al_id !live_allocs)
      | Event.Free { ptr } -> (
          incr frees;
          match IntMap.find_opt ptr !live_allocs with
          | None ->
              if in_freed ptr then
                anomaly an_double_free ~event:idx Diag.Double_free
                  (Printf.sprintf "free of 0x%x which was already freed" ptr)
              else
                anomaly an_free_noalloc ~event:idx Diag.Free_without_alloc
                  (Printf.sprintf "free of 0x%x which was never allocated" ptr)
          | Some al_id ->
              let al = Store.allocation store al_id in
              al.Schema.al_end <- Some idx;
              freed_allocs := IntMap.add ptr al.Schema.al_size !freed_allocs;
              live_allocs := IntMap.remove ptr !live_allocs;
              (match Hashtbl.find_opt locks_of_alloc al_id with
              | None -> ()
              | Some ptrs ->
                  List.iter (Hashtbl.remove live_locks) ptrs;
                  Hashtbl.remove locks_of_alloc al_id))
      | Event.Lock_acquire { lock_ptr; kind; side; name; loc } ->
          incr lock_ops;
          handle_acquire !current ~event:idx ~lock_ptr ~kind ~side ~name ~loc
      | Event.Lock_release { lock_ptr; loc = _ } ->
          incr lock_ops;
          handle_release !current ~lock_ptr
      | Event.Fun_enter { fn; loc = _ } ->
          (!current).frames <- fn :: (!current).frames
      | Event.Fun_exit { fn } ->
          let rec pop = function
            | [] -> []
            | frame :: rest -> if frame = fn then rest else pop rest
          in
          (!current).frames <- pop (!current).frames
      | Event.Mem_access { ptr; size = _; kind; loc } -> (
          incr mem_accesses;
          match find_alloc ptr with
          | None ->
              incr unresolved;
              if in_freed ptr then
                anomaly an_after_free ~event:idx Diag.Access_after_free
                  (Printf.sprintf "access at 0x%x inside a freed allocation"
                     ptr)
          | Some al -> (
              let dt = Store.data_type store al.Schema.al_type in
              let offset = ptr - al.Schema.al_ptr in
              match Layout.member_at dt.Schema.dt_layout offset with
              | None -> incr unresolved
              | Some m ->
                  let ctx = !current in
                  if
                    (filter.Filter.drop_lock_members && m.Layout.m_kind = Layout.Lock)
                    || (filter.Filter.drop_atomic_members
                        && m.Layout.m_kind = Layout.Atomic)
                  then incr f_kind
                  else if
                    Filter.member_blacklisted filter ~ty:dt.Schema.dt_name
                      ~member:m.Layout.m_name
                  then incr f_member
                  else if Filter.fn_blacklisted filter ctx.frames then incr f_fn
                  else begin
                    incr kept;
                    let stack = Store.intern_stack store ctx.frames in
                    ignore
                      (Store.add_access store ~event:idx ~alloc:al.Schema.al_id
                         ~member:m.Layout.m_name ~kind ~txn:(cur_txn ctx) ~loc
                         ~stack ~ctx:ctx.pid)
                  end)))
    trace.Lockdoc_trace.Trace.events;

  (* Transactions still open at the end of the trace. Their rows are
     already in the store (flushed, not dropped); we only report them.
     IRQ flows are not in [ctxs], so inherited held lists are not double
     counted. *)
  let n_events = Array.length trace.Lockdoc_trace.Trace.events in
  Hashtbl.iter
    (fun _pid st ->
      List.iter
        (fun he ->
          let lk = Store.lock store he.entry.Schema.h_lock in
          anomaly an_unclosed ~event:n_events Diag.Unclosed_txn
            (Printf.sprintf "flow %d still holds %s at end of trace" st.pid
               lk.Schema.lk_name))
        st.held)
    ctxs;

  let stats =
    {
      total_events = Array.length trace.Lockdoc_trace.Trace.events;
      lock_ops = !lock_ops;
      mem_accesses = !mem_accesses;
      accesses_kept = !kept;
      filtered_fn = !f_fn;
      filtered_member = !f_member;
      filtered_kind = !f_kind;
      unresolved = !unresolved;
      unbalanced_releases = !unbalanced;
      allocations = !allocs;
      frees = !frees;
      locks_static = !locks_static;
      locks_embedded = !locks_embedded;
      txns = Store.n_txns store;
      anomalies =
        {
          an_unknown_data_type = !an_unknown_ty;
          an_double_free = !an_double_free;
          an_free_without_alloc = !an_free_noalloc;
          an_access_after_free = !an_after_free;
          an_acquire_on_freed = !an_acq_freed;
          an_flow_conflict = !an_flow;
          an_unclosed_txns = !an_unclosed;
        };
    }
  in
  (store, stats)

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>events: %d@ lock ops: %d@ memory accesses: %d (kept %d)@ filtered: \
     %d fn / %d member / %d kind@ unresolved: %d, unbalanced releases: %d@ \
     allocations: %d, frees: %d@ locks: %d static + %d embedded@ \
     transactions: %d"
    s.total_events s.lock_ops s.mem_accesses s.accesses_kept s.filtered_fn
    s.filtered_member s.filtered_kind s.unresolved s.unbalanced_releases
    s.allocations s.frees s.locks_static s.locks_embedded s.txns;
  if anomaly_total s > 0 then begin
    let a = s.anomalies in
    Format.fprintf fmt
      "@ anomalies: %d total@   unknown data types: %d@   double frees: %d@   \
       frees without alloc: %d@   accesses after free: %d@   acquires on \
       freed: %d@   flow kind conflicts: %d@   unclosed transactions: %d"
      (anomaly_total s) a.an_unknown_data_type a.an_double_free
      a.an_free_without_alloc a.an_access_after_free a.an_acquire_on_freed
      a.an_flow_conflict a.an_unclosed_txns
  end;
  Format.fprintf fmt "@]"
