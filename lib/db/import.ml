module Event = Lockdoc_trace.Event
module Layout = Lockdoc_trace.Layout
module Diag = Lockdoc_trace.Diag
module Trace = Lockdoc_trace.Trace
module Obs = Lockdoc_obs.Obs
module IntMap = Map.Make (Int)

(* Mirrored once per import at [finalize]; the per-event counters stay
   in the marshalable [counters] record (metrics handles hold atomics
   and would not survive a checkpoint). *)
let c_events = Obs.counter "import.events"
let c_kept = Obs.counter "import.accesses_kept"
let c_txns = Obs.counter "import.txns"
let c_anomalies = Obs.counter "import.anomalies"
let c_runs = Obs.counter "import.runs"

type irq_mode = Inherit | Separate

type mode = Strict | Lenient

type anomalies = {
  an_unknown_data_type : int;
  an_double_free : int;
  an_free_without_alloc : int;
  an_access_after_free : int;
  an_acquire_on_freed : int;
  an_flow_conflict : int;
  an_unclosed_txns : int;
}

let no_anomalies =
  {
    an_unknown_data_type = 0;
    an_double_free = 0;
    an_free_without_alloc = 0;
    an_access_after_free = 0;
    an_acquire_on_freed = 0;
    an_flow_conflict = 0;
    an_unclosed_txns = 0;
  }

type stats = {
  total_events : int;
  lock_ops : int;
  mem_accesses : int;
  accesses_kept : int;
  filtered_fn : int;
  filtered_member : int;
  filtered_kind : int;
  unresolved : int;
  unbalanced_releases : int;
  allocations : int;
  frees : int;
  locks_static : int;
  locks_embedded : int;
  txns : int;
  anomalies : anomalies;
}

let anomaly_total s =
  s.anomalies.an_unknown_data_type + s.anomalies.an_double_free
  + s.anomalies.an_free_without_alloc + s.anomalies.an_access_after_free
  + s.anomalies.an_acquire_on_freed + s.anomalies.an_flow_conflict
  + s.anomalies.an_unclosed_txns + s.unbalanced_releases

(* One held lock together with the transaction opened by its acquisition;
   popping back to it resumes that transaction (paper Sec. 4.2). *)
type held_entry = { entry : Schema.held; opened_txn : int }

type ctx_state = {
  pid : int;
  mutable frames : string list; (* innermost first *)
  mutable held : held_entry list; (* oldest first *)
  mutable base_txn : int option; (* txn inherited from the interrupted flow *)
}

let cur_txn ctx =
  match List.rev ctx.held with
  | last :: _ -> Some last.opened_txn
  | [] -> ctx.base_txn

(* All per-run counters in one mutable record so the engine marshals as
   plain data. *)
type counters = {
  mutable k_lock_ops : int;
  mutable k_mem_accesses : int;
  mutable k_kept : int;
  mutable k_f_fn : int;
  mutable k_f_member : int;
  mutable k_f_kind : int;
  mutable k_unresolved : int;
  mutable k_unbalanced : int;
  mutable k_allocs : int;
  mutable k_frees : int;
  mutable k_locks_static : int;
  mutable k_locks_embedded : int;
  mutable k_an_unknown_ty : int;
  mutable k_an_double_free : int;
  mutable k_an_free_noalloc : int;
  mutable k_an_after_free : int;
  mutable k_an_acq_freed : int;
  mutable k_an_flow : int;
  mutable k_an_unclosed : int;
}

let zero_counters () =
  {
    k_lock_ops = 0;
    k_mem_accesses = 0;
    k_kept = 0;
    k_f_fn = 0;
    k_f_member = 0;
    k_f_kind = 0;
    k_unresolved = 0;
    k_unbalanced = 0;
    k_allocs = 0;
    k_frees = 0;
    k_locks_static = 0;
    k_locks_embedded = 0;
    k_an_unknown_ty = 0;
    k_an_double_free = 0;
    k_an_free_noalloc = 0;
    k_an_after_free = 0;
    k_an_acq_freed = 0;
    k_an_flow = 0;
    k_an_unclosed = 0;
  }

(* The incremental importer. Everything in here is plain marshalable
   data — no closures — so a checkpoint can capture mid-import state
   with [Marshal]. The op logger lives on the {!Store}, not here, and
   is cleared by the snapshot layer before marshalling. *)
type engine = {
  g_filter : Filter.t;
  g_irq_mode : irq_mode;
  g_mode : mode;
  g_store : Store.t;
  g_dt_ids : (string, int) Hashtbl.t;
  mutable g_live_allocs : int IntMap.t; (* base ptr -> al_id *)
  mutable g_freed : int IntMap.t; (* base ptr -> size, until reused *)
  g_live_locks : (int, int) Hashtbl.t; (* lock ptr -> lk_id *)
  g_locks_of_alloc : (int, int list) Hashtbl.t; (* al_id -> lock ptrs *)
  g_flow_kinds : (int, Event.ctx_kind) Hashtbl.t;
  g_ctxs : (int, ctx_state) Hashtbl.t;
  mutable g_current : ctx_state;
  mutable g_pos : int; (* index of the next event to feed *)
  g_c : counters;
}

let engine ?(filter = Filter.default) ?(irq_mode = Inherit) ?(mode = Strict)
    ?log layouts =
  let store = Store.create () in
  Store.set_logger store log;
  let dt_ids = Hashtbl.create 32 in
  List.iter
    (fun layout ->
      let dt = Store.add_data_type store layout in
      Hashtbl.replace dt_ids dt.Schema.dt_name dt.Schema.dt_id)
    layouts;
  let root = { pid = 0; frames = []; held = []; base_txn = None } in
  let ctxs = Hashtbl.create 32 in
  Hashtbl.replace ctxs 0 root;
  {
    g_filter = filter;
    g_irq_mode = irq_mode;
    g_mode = mode;
    g_store = store;
    g_dt_ids = dt_ids;
    g_live_allocs = IntMap.empty;
    g_freed = IntMap.empty;
    g_live_locks = Hashtbl.create 256;
    g_locks_of_alloc = Hashtbl.create 256;
    g_flow_kinds = Hashtbl.create 32;
    g_ctxs = ctxs;
    g_current = root;
    g_pos = 0;
    g_c = zero_counters ();
  }

let position g = g.g_pos
let engine_store g = g.g_store

let anomaly g ~event kind message =
  let d = Diag.make ~event kind message in
  if g.g_mode = Strict && Diag.is_fatal d then raise (Trace.Invalid d)

let in_freed g ptr =
  match IntMap.find_last_opt (fun base -> base <= ptr) g.g_freed with
  | Some (base, size) -> ptr < base + size
  | None -> false

let find_alloc g ptr =
  match IntMap.find_last_opt (fun base -> base <= ptr) g.g_live_allocs with
  | Some (base, al_id) ->
      let al = Store.allocation g.g_store al_id in
      if ptr < base + al.Schema.al_size then Some al else None
  | None -> None

let resolve_lock g ~event ptr kind name =
  let c = g.g_c in
  match Hashtbl.find_opt g.g_live_locks ptr with
  | Some lk_id -> Store.lock g.g_store lk_id
  | None ->
      let parent =
        match find_alloc g ptr with
        | None -> None
        | Some al ->
            let dt = Store.data_type g.g_store al.Schema.al_type in
            let offset = ptr - al.Schema.al_ptr in
            Option.map
              (fun m -> (al.Schema.al_id, m.Layout.m_name))
              (Layout.member_at dt.Schema.dt_layout offset)
      in
      (match parent with
      | None ->
          if in_freed g ptr then begin
            c.k_an_acq_freed <- c.k_an_acq_freed + 1;
            anomaly g ~event Diag.Acquire_on_freed_lock
              (Printf.sprintf
                 "acquire of %s at 0x%x inside a freed allocation" name ptr)
          end;
          c.k_locks_static <- c.k_locks_static + 1
      | Some (al_id, _) ->
          c.k_locks_embedded <- c.k_locks_embedded + 1;
          let existing =
            Option.value ~default:[] (Hashtbl.find_opt g.g_locks_of_alloc al_id)
          in
          Hashtbl.replace g.g_locks_of_alloc al_id (ptr :: existing));
      let lk = Store.add_lock g.g_store ~ptr ~kind ~name ~parent in
      Hashtbl.replace g.g_live_locks ptr lk.Schema.lk_id;
      lk

(* Rebuild the nested transactions above a removal point: their opened
   transactions included the removed lock, so they get fresh rows. *)
let reopen_txns g ctx kept_prefix tail =
  let rebuilt =
    List.fold_left
      (fun prefix he ->
        let held_list = List.map (fun e -> e.entry) prefix @ [ he.entry ] in
        let tx = Store.add_txn g.g_store ~locks:held_list ~ctx:ctx.pid in
        prefix @ [ { he with opened_txn = tx.Schema.tx_id } ])
      kept_prefix tail
  in
  ctx.held <- rebuilt

let handle_acquire g ctx ~event ~lock_ptr ~kind ~side ~name ~loc =
  let lk = resolve_lock g ~event lock_ptr kind name in
  let entry = { Schema.h_lock = lk.Schema.lk_id; h_side = side; h_loc = loc } in
  let held_list = List.map (fun e -> e.entry) ctx.held @ [ entry ] in
  let tx = Store.add_txn g.g_store ~locks:held_list ~ctx:ctx.pid in
  ctx.held <- ctx.held @ [ { entry; opened_txn = tx.Schema.tx_id } ]

let handle_release g ctx ~lock_ptr =
  let c = g.g_c in
  match Hashtbl.find_opt g.g_live_locks lock_ptr with
  | None -> c.k_unbalanced <- c.k_unbalanced + 1
  | Some lk_id ->
      (* Drop the most recent occurrence of this lock. *)
      let rec split_last_match rev_seen = function
        | [] -> None
        | he :: rest when he.entry.Schema.h_lock = lk_id
                          && not (List.exists
                                    (fun h -> h.entry.Schema.h_lock = lk_id)
                                    rest) ->
            Some (List.rev rev_seen, rest)
        | he :: rest -> split_last_match (he :: rev_seen) rest
      in
      (match split_last_match [] ctx.held with
      | None -> c.k_unbalanced <- c.k_unbalanced + 1
      | Some (prefix, []) -> ctx.held <- prefix
      | Some (prefix, tail) -> reopen_txns g ctx prefix tail)

let feed g ev =
  let idx = g.g_pos in
  let c = g.g_c in
  (match ev with
  | Event.Ctx_switch { pid; kind } ->
      (match Hashtbl.find_opt g.g_flow_kinds pid with
      | Some k when k <> kind ->
          c.k_an_flow <- c.k_an_flow + 1;
          anomaly g ~event:idx Diag.Flow_kind_conflict
            (Printf.sprintf "flow %d switches kind %s -> %s" pid
               (Event.ctx_to_string k) (Event.ctx_to_string kind))
      | Some _ -> ()
      | None -> Hashtbl.replace g.g_flow_kinds pid kind);
      (match kind with
      | Event.Task -> (
          match Hashtbl.find_opt g.g_ctxs pid with
          | Some st -> g.g_current <- st
          | None ->
              let st = { pid; frames = []; held = []; base_txn = None } in
              Hashtbl.replace g.g_ctxs pid st;
              g.g_current <- st)
      | Event.Softirq | Event.Hardirq ->
          (* Handlers run to completion: always a fresh state. *)
          let st =
            match g.g_irq_mode with
            | Separate -> { pid; frames = []; held = []; base_txn = None }
            | Inherit ->
                {
                  pid;
                  frames = [];
                  held = g.g_current.held;
                  base_txn = g.g_current.base_txn;
                }
          in
          g.g_current <- st)
  | Event.Alloc { ptr; size; data_type; subclass } -> (
      c.k_allocs <- c.k_allocs + 1;
      match Hashtbl.find_opt g.g_dt_ids data_type with
      | None ->
          (* Lenient recovery: skip the allocation; its accesses count
             as unresolved, exactly as if the region were unmonitored. *)
          c.k_an_unknown_ty <- c.k_an_unknown_ty + 1;
          anomaly g ~event:idx Diag.Unknown_data_type
            (Printf.sprintf "allocation of undeclared type %s at 0x%x"
               data_type ptr)
      | Some ty ->
          let al =
            Store.add_allocation g.g_store ~ptr ~size ~ty ~subclass ~start:idx
          in
          g.g_freed <-
            IntMap.filter
              (fun base fsize -> base + fsize <= ptr || ptr + size <= base)
              g.g_freed;
          g.g_live_allocs <- IntMap.add ptr al.Schema.al_id g.g_live_allocs)
  | Event.Free { ptr } -> (
      c.k_frees <- c.k_frees + 1;
      match IntMap.find_opt ptr g.g_live_allocs with
      | None ->
          if in_freed g ptr then begin
            c.k_an_double_free <- c.k_an_double_free + 1;
            anomaly g ~event:idx Diag.Double_free
              (Printf.sprintf "free of 0x%x which was already freed" ptr)
          end
          else begin
            c.k_an_free_noalloc <- c.k_an_free_noalloc + 1;
            anomaly g ~event:idx Diag.Free_without_alloc
              (Printf.sprintf "free of 0x%x which was never allocated" ptr)
          end
      | Some al_id ->
          let al = Store.allocation g.g_store al_id in
          Store.set_alloc_end g.g_store al_id (Some idx);
          g.g_freed <- IntMap.add ptr al.Schema.al_size g.g_freed;
          g.g_live_allocs <- IntMap.remove ptr g.g_live_allocs;
          (match Hashtbl.find_opt g.g_locks_of_alloc al_id with
          | None -> ()
          | Some ptrs ->
              List.iter (Hashtbl.remove g.g_live_locks) ptrs;
              Hashtbl.remove g.g_locks_of_alloc al_id))
  | Event.Lock_acquire { lock_ptr; kind; side; name; loc } ->
      c.k_lock_ops <- c.k_lock_ops + 1;
      handle_acquire g g.g_current ~event:idx ~lock_ptr ~kind ~side ~name ~loc
  | Event.Lock_release { lock_ptr; loc = _ } ->
      c.k_lock_ops <- c.k_lock_ops + 1;
      handle_release g g.g_current ~lock_ptr
  | Event.Fun_enter { fn; loc = _ } ->
      g.g_current.frames <- fn :: g.g_current.frames
  | Event.Fun_exit { fn } ->
      let rec pop = function
        | [] -> []
        | frame :: rest -> if frame = fn then rest else pop rest
      in
      g.g_current.frames <- pop g.g_current.frames
  | Event.Mem_access { ptr; size = _; kind; loc } -> (
      c.k_mem_accesses <- c.k_mem_accesses + 1;
      match find_alloc g ptr with
      | None ->
          c.k_unresolved <- c.k_unresolved + 1;
          if in_freed g ptr then begin
            c.k_an_after_free <- c.k_an_after_free + 1;
            anomaly g ~event:idx Diag.Access_after_free
              (Printf.sprintf "access at 0x%x inside a freed allocation" ptr)
          end
      | Some al -> (
          let dt = Store.data_type g.g_store al.Schema.al_type in
          let offset = ptr - al.Schema.al_ptr in
          match Layout.member_at dt.Schema.dt_layout offset with
          | None -> c.k_unresolved <- c.k_unresolved + 1
          | Some m ->
              let ctx = g.g_current in
              let filter = g.g_filter in
              if
                (filter.Filter.drop_lock_members && m.Layout.m_kind = Layout.Lock)
                || (filter.Filter.drop_atomic_members
                    && m.Layout.m_kind = Layout.Atomic)
              then c.k_f_kind <- c.k_f_kind + 1
              else if
                Filter.member_blacklisted filter ~ty:dt.Schema.dt_name
                  ~member:m.Layout.m_name
              then c.k_f_member <- c.k_f_member + 1
              else if Filter.fn_blacklisted filter ctx.frames then
                c.k_f_fn <- c.k_f_fn + 1
              else begin
                c.k_kept <- c.k_kept + 1;
                let stack = Store.intern_stack g.g_store ctx.frames in
                ignore
                  (Store.add_access g.g_store ~event:idx ~alloc:al.Schema.al_id
                     ~member:m.Layout.m_name ~kind ~txn:(cur_txn ctx) ~loc
                     ~stack ~ctx:ctx.pid)
              end)));
  g.g_pos <- idx + 1

let stats g =
  let c = g.g_c in
  {
    total_events = g.g_pos;
    lock_ops = c.k_lock_ops;
    mem_accesses = c.k_mem_accesses;
    accesses_kept = c.k_kept;
    filtered_fn = c.k_f_fn;
    filtered_member = c.k_f_member;
    filtered_kind = c.k_f_kind;
    unresolved = c.k_unresolved;
    unbalanced_releases = c.k_unbalanced;
    allocations = c.k_allocs;
    frees = c.k_frees;
    locks_static = c.k_locks_static;
    locks_embedded = c.k_locks_embedded;
    txns = Store.n_txns g.g_store;
    anomalies =
      {
        an_unknown_data_type = c.k_an_unknown_ty;
        an_double_free = c.k_an_double_free;
        an_free_without_alloc = c.k_an_free_noalloc;
        an_access_after_free = c.k_an_after_free;
        an_acquire_on_freed = c.k_an_acq_freed;
        an_flow_conflict = c.k_an_flow;
        an_unclosed_txns = c.k_an_unclosed;
      };
  }

let finalize g =
  (* Transactions still open at the end of the trace. Their rows are
     already in the store (flushed, not dropped); we only report them.
     IRQ flows are not in [ctxs], so inherited held lists are not double
     counted. *)
  let c = g.g_c in
  Hashtbl.iter
    (fun _pid st ->
      List.iter
        (fun he ->
          let lk = Store.lock g.g_store he.entry.Schema.h_lock in
          c.k_an_unclosed <- c.k_an_unclosed + 1;
          anomaly g ~event:g.g_pos Diag.Unclosed_txn
            (Printf.sprintf "flow %d still holds %s at end of trace" st.pid
               lk.Schema.lk_name))
        st.held)
    g.g_ctxs;
  let s = stats g in
  Obs.incr c_runs;
  Obs.add c_events s.total_events;
  Obs.add c_kept s.accesses_kept;
  Obs.add c_txns s.txns;
  Obs.add c_anomalies (anomaly_total s);
  s

let run ?filter ?irq_mode ?mode trace =
  let g = engine ?filter ?irq_mode ?mode trace.Lockdoc_trace.Trace.layouts in
  Array.iter (feed g) trace.Lockdoc_trace.Trace.events;
  let stats = finalize g in
  (g.g_store, stats)

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>events: %d@ lock ops: %d@ memory accesses: %d (kept %d)@ filtered: \
     %d fn / %d member / %d kind@ unresolved: %d, unbalanced releases: %d@ \
     allocations: %d, frees: %d@ locks: %d static + %d embedded@ \
     transactions: %d"
    s.total_events s.lock_ops s.mem_accesses s.accesses_kept s.filtered_fn
    s.filtered_member s.filtered_kind s.unresolved s.unbalanced_releases
    s.allocations s.frees s.locks_static s.locks_embedded s.txns;
  if anomaly_total s > 0 then begin
    let a = s.anomalies in
    Format.fprintf fmt
      "@ anomalies: %d total@   unknown data types: %d@   double frees: %d@   \
       frees without alloc: %d@   accesses after free: %d@   acquires on \
       freed: %d@   flow kind conflicts: %d@   unclosed transactions: %d"
      (anomaly_total s) a.an_unknown_data_type a.an_double_free
      a.an_free_without_alloc a.an_access_after_free a.an_acquire_on_freed
      a.an_flow_conflict a.an_unclosed_txns
  end;
  Format.fprintf fmt "@]"
