module Event = Lockdoc_trace.Event
module Layout = Lockdoc_trace.Layout
module IntMap = Map.Make (Int)

type irq_mode = Inherit | Separate

type stats = {
  total_events : int;
  lock_ops : int;
  mem_accesses : int;
  accesses_kept : int;
  filtered_fn : int;
  filtered_member : int;
  filtered_kind : int;
  unresolved : int;
  unbalanced_releases : int;
  allocations : int;
  frees : int;
  locks_static : int;
  locks_embedded : int;
  txns : int;
}

(* One held lock together with the transaction opened by its acquisition;
   popping back to it resumes that transaction (paper Sec. 4.2). *)
type held_entry = { entry : Schema.held; opened_txn : int }

type ctx_state = {
  pid : int;
  mutable frames : string list; (* innermost first *)
  mutable held : held_entry list; (* oldest first *)
  mutable base_txn : int option; (* txn inherited from the interrupted flow *)
}

let cur_txn ctx =
  match List.rev ctx.held with
  | last :: _ -> Some last.opened_txn
  | [] -> ctx.base_txn

let run ?(filter = Filter.default) ?(irq_mode = Inherit) trace =
  let store = Store.create () in
  let dt_ids = Hashtbl.create 32 in
  List.iter
    (fun layout ->
      let dt = Store.add_data_type store layout in
      Hashtbl.replace dt_ids dt.Schema.dt_name dt.Schema.dt_id)
    trace.Lockdoc_trace.Trace.layouts;

  (* Live-object state. *)
  let live_allocs = ref IntMap.empty (* base ptr -> al_id *) in
  let live_locks = Hashtbl.create 256 (* lock ptr -> lk_id *) in
  let locks_of_alloc = Hashtbl.create 256 (* al_id -> lock ptr list *) in

  (* Per-control-flow state. *)
  let ctxs = Hashtbl.create 32 in
  let current = ref { pid = 0; frames = []; held = []; base_txn = None } in
  Hashtbl.replace ctxs 0 !current;

  (* Counters. *)
  let lock_ops = ref 0
  and mem_accesses = ref 0
  and kept = ref 0
  and f_fn = ref 0
  and f_member = ref 0
  and f_kind = ref 0
  and unresolved = ref 0
  and unbalanced = ref 0
  and allocs = ref 0
  and frees = ref 0
  and locks_static = ref 0
  and locks_embedded = ref 0 in

  let find_alloc ptr =
    match IntMap.find_last_opt (fun base -> base <= ptr) !live_allocs with
    | Some (base, al_id) ->
        let al = Store.allocation store al_id in
        if ptr < base + al.Schema.al_size then Some al else None
    | None -> None
  in

  let resolve_lock ptr kind name =
    match Hashtbl.find_opt live_locks ptr with
    | Some lk_id -> Store.lock store lk_id
    | None ->
        let parent =
          match find_alloc ptr with
          | None -> None
          | Some al ->
              let dt = Store.data_type store al.Schema.al_type in
              let offset = ptr - al.Schema.al_ptr in
              Option.map
                (fun m -> (al.Schema.al_id, m.Layout.m_name))
                (Layout.member_at dt.Schema.dt_layout offset)
        in
        (match parent with
        | None -> incr locks_static
        | Some (al_id, _) ->
            incr locks_embedded;
            let existing =
              Option.value ~default:[] (Hashtbl.find_opt locks_of_alloc al_id)
            in
            Hashtbl.replace locks_of_alloc al_id (ptr :: existing));
        let lk = Store.add_lock store ~ptr ~kind ~name ~parent in
        Hashtbl.replace live_locks ptr lk.Schema.lk_id;
        lk
  in

  (* Rebuild the nested transactions above a removal point: their opened
     transactions included the removed lock, so they get fresh rows. *)
  let reopen_txns ctx kept_prefix tail =
    let rebuilt =
      List.fold_left
        (fun prefix he ->
          let held_list = List.map (fun e -> e.entry) prefix @ [ he.entry ] in
          let tx = Store.add_txn store ~locks:held_list ~ctx:ctx.pid in
          prefix @ [ { he with opened_txn = tx.Schema.tx_id } ])
        kept_prefix tail
    in
    ctx.held <- rebuilt
  in

  let handle_acquire ctx ~lock_ptr ~kind ~side ~name ~loc =
    let lk = resolve_lock lock_ptr kind name in
    let entry =
      { Schema.h_lock = lk.Schema.lk_id; h_side = side; h_loc = loc }
    in
    let held_list = List.map (fun e -> e.entry) ctx.held @ [ entry ] in
    let tx = Store.add_txn store ~locks:held_list ~ctx:ctx.pid in
    ctx.held <- ctx.held @ [ { entry; opened_txn = tx.Schema.tx_id } ]
  in

  let handle_release ctx ~lock_ptr =
    match Hashtbl.find_opt live_locks lock_ptr with
    | None -> incr unbalanced
    | Some lk_id ->
        (* Drop the most recent occurrence of this lock. *)
        let rec split_last_match rev_seen = function
          | [] -> None
          | he :: rest when he.entry.Schema.h_lock = lk_id
                            && not (List.exists
                                      (fun h -> h.entry.Schema.h_lock = lk_id)
                                      rest) ->
              Some (List.rev rev_seen, rest)
          | he :: rest -> split_last_match (he :: rev_seen) rest
        in
        (match split_last_match [] ctx.held with
        | None -> incr unbalanced
        | Some (prefix, []) -> ctx.held <- prefix
        | Some (prefix, tail) -> reopen_txns ctx prefix tail)
  in

  Array.iteri
    (fun idx ev ->
      match ev with
      | Event.Ctx_switch { pid; kind } -> (
          match kind with
          | Event.Task -> (
              match Hashtbl.find_opt ctxs pid with
              | Some st -> current := st
              | None ->
                  let st = { pid; frames = []; held = []; base_txn = None } in
                  Hashtbl.replace ctxs pid st;
                  current := st)
          | Event.Softirq | Event.Hardirq ->
              (* Handlers run to completion: always a fresh state. *)
              let st =
                match irq_mode with
                | Separate -> { pid; frames = []; held = []; base_txn = None }
                | Inherit ->
                    {
                      pid;
                      frames = [];
                      held = (!current).held;
                      base_txn = (!current).base_txn;
                    }
              in
              current := st)
      | Event.Alloc { ptr; size; data_type; subclass } ->
          incr allocs;
          let ty =
            match Hashtbl.find_opt dt_ids data_type with
            | Some id -> id
            | None -> failwith ("Import: unknown data type " ^ data_type)
          in
          let al =
            Store.add_allocation store ~ptr ~size ~ty ~subclass ~start:idx
          in
          live_allocs := IntMap.add ptr al.Schema.al_id !live_allocs
      | Event.Free { ptr } -> (
          incr frees;
          match IntMap.find_opt ptr !live_allocs with
          | None -> ()
          | Some al_id ->
              (Store.allocation store al_id).Schema.al_end <- Some idx;
              live_allocs := IntMap.remove ptr !live_allocs;
              (match Hashtbl.find_opt locks_of_alloc al_id with
              | None -> ()
              | Some ptrs ->
                  List.iter (Hashtbl.remove live_locks) ptrs;
                  Hashtbl.remove locks_of_alloc al_id))
      | Event.Lock_acquire { lock_ptr; kind; side; name; loc } ->
          incr lock_ops;
          handle_acquire !current ~lock_ptr ~kind ~side ~name ~loc
      | Event.Lock_release { lock_ptr; loc = _ } ->
          incr lock_ops;
          handle_release !current ~lock_ptr
      | Event.Fun_enter { fn; loc = _ } ->
          (!current).frames <- fn :: (!current).frames
      | Event.Fun_exit { fn } ->
          let rec pop = function
            | [] -> []
            | frame :: rest -> if frame = fn then rest else pop rest
          in
          (!current).frames <- pop (!current).frames
      | Event.Mem_access { ptr; size = _; kind; loc } -> (
          incr mem_accesses;
          match find_alloc ptr with
          | None -> incr unresolved
          | Some al -> (
              let dt = Store.data_type store al.Schema.al_type in
              let offset = ptr - al.Schema.al_ptr in
              match Layout.member_at dt.Schema.dt_layout offset with
              | None -> incr unresolved
              | Some m ->
                  let ctx = !current in
                  if
                    (filter.Filter.drop_lock_members && m.Layout.m_kind = Layout.Lock)
                    || (filter.Filter.drop_atomic_members
                        && m.Layout.m_kind = Layout.Atomic)
                  then incr f_kind
                  else if
                    Filter.member_blacklisted filter ~ty:dt.Schema.dt_name
                      ~member:m.Layout.m_name
                  then incr f_member
                  else if Filter.fn_blacklisted filter ctx.frames then incr f_fn
                  else begin
                    incr kept;
                    let stack = Store.intern_stack store ctx.frames in
                    ignore
                      (Store.add_access store ~event:idx ~alloc:al.Schema.al_id
                         ~member:m.Layout.m_name ~kind ~txn:(cur_txn ctx) ~loc
                         ~stack ~ctx:ctx.pid)
                  end)))
    trace.Lockdoc_trace.Trace.events;

  let stats =
    {
      total_events = Array.length trace.Lockdoc_trace.Trace.events;
      lock_ops = !lock_ops;
      mem_accesses = !mem_accesses;
      accesses_kept = !kept;
      filtered_fn = !f_fn;
      filtered_member = !f_member;
      filtered_kind = !f_kind;
      unresolved = !unresolved;
      unbalanced_releases = !unbalanced;
      allocations = !allocs;
      frees = !frees;
      locks_static = !locks_static;
      locks_embedded = !locks_embedded;
      txns = Store.n_txns store;
    }
  in
  (store, stats)

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>events: %d@ lock ops: %d@ memory accesses: %d (kept %d)@ filtered: \
     %d fn / %d member / %d kind@ unresolved: %d, unbalanced releases: %d@ \
     allocations: %d, frees: %d@ locks: %d static + %d embedded@ \
     transactions: %d@]"
    s.total_events s.lock_ops s.mem_accesses s.accesses_kept s.filtered_fn
    s.filtered_member s.filtered_kind s.unresolved s.unbalanced_releases
    s.allocations s.frees s.locks_static s.locks_embedded s.txns
