(** Segmented, CRC-framed write-ahead log.

    Records are opaque byte strings framed as
    [len:int32 LE][crc32:int32 LE][payload] and appended to segment
    files named [wal-<start-lsn>.seg]. LSNs are dense: record [n] of
    the log has LSN [n], and a segment's name carries the LSN of its
    first record.

    The reader never raises on damaged logs. Torn headers, short
    payloads, checksum mismatches and absurd length fields all mean the
    same thing — the process died mid-write — and everything before the
    first bad byte is trusted while nothing after it is. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3). [crc32 "123456789" = 0xCBF43926]. *)

(** {2 Writing} *)

type writer

val create :
  dir:string ->
  ?segment_bytes:int ->
  ?sync_every:int ->
  ?start_lsn:int ->
  unit ->
  writer
(** Open a fresh segment at [start_lsn] (default 0), truncating any
    existing segment of that name. [segment_bytes] (default 1 MiB)
    bounds segment size; [sync_every] (default 1) batches that many
    appends per flush. Creates [dir] if missing. *)

val append : writer -> string -> unit
(** Frame and buffer one record; flushes per [sync_every]. *)

val flush : writer -> unit
(** Push all buffered frames to the file. After [flush] returns, every
    appended record survives a crash. *)

val rotate : writer -> unit
(** Flush, then start a new segment (no-op on an empty segment). *)

val close : writer -> unit
val lsn : writer -> int
(** LSN the next appended record will get. *)

(** {2 Reading} *)

val read : dir:string -> from:int -> (int * string) list * string option
(** [read ~dir ~from] returns the records with LSN >= [from], in order,
    and the reason reading stopped early (torn tail, checksum mismatch,
    missing segment) if it did. Damage strictly below [from] is
    ignored as long as the records at and past [from] are reachable. *)

(** {2 Maintenance} *)

val truncate_after : dir:string -> lsn:int -> unit
(** Physically discard every record with LSN >= [lsn], rewriting the
    containing segment atomically. Used when resuming an import from a
    checkpoint: the suffix will be regenerated deterministically. *)

val drop_below : dir:string -> lsn:int -> unit
(** Delete segments wholly below [lsn] (log compaction after a
    checkpoint). Only removes a segment when its successor's start
    proves every contained record precedes [lsn]. *)

(**/**)

val segment_files : dir:string -> (int * string) list
(** Segments as [(start_lsn, path)], ascending. Exposed for tests. *)

val segment_start : string -> int option
(** Start LSN encoded in a segment file name, [None] for other names. *)

type parsed = { ps_records : (int * string) list; ps_torn : string option }

val parse_segment : start:int -> string -> parsed
(** Parse raw segment bytes. Exposed for tests. *)
