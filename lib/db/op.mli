(** Logical operation log for the relational store.

    Every row-creating [Store] mutation has a corresponding [Op.t]
    constructor; replaying a sequence of ops against an empty store (in
    order) reproduces the store exactly, because row ids are allocation
    order.  Ops serialise to single tab-separated lines (same
    [Fieldenc] escaping discipline as the trace format) so they can be
    framed into WAL records. *)

type t =
  | Add_data_type of Lockdoc_trace.Layout.t
  | Add_allocation of {
      ptr : int;
      size : int;
      ty : int;  (** data_type row id *)
      subclass : string option;
      start : int;  (** event index of the allocation *)
    }
  | Set_alloc_end of { al : int; at : int option }
  | Add_lock of {
      ptr : int;
      kind : Lockdoc_trace.Event.lock_kind;
      name : string;
      parent : (int * string) option;  (** embedding allocation, member *)
    }
  | Add_txn of { locks : Schema.held list; ctx : int }
  | Add_access of {
      event : int;
      alloc : int;
      member : string;
      kind : Lockdoc_trace.Event.access_kind;
      txn : int option;
      loc : Lockdoc_trace.Srcloc.t;
      stack : int;
      ctx : int;
    }
  | Intern_stack of string list
      (** Only logged when the stack was not already interned. *)

val to_line : t -> string
(** Single-line encoding; contains no ['\n']. *)

val of_line : string -> t
(** Inverse of [to_line]. @raise Failure on malformed input. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
