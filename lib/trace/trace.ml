type t = { layouts : Layout.t list; events : Event.t array }

type sink = { mutable rev_events : Event.t list; mutable n : int }

let sink () = { rev_events = []; n = 0 }

let emit s e =
  s.rev_events <- e :: s.rev_events;
  s.n <- s.n + 1

let emitted s = s.n

let finish ~layouts s =
  let events = Array.make s.n (Event.Free { ptr = 0 }) in
  (* rev_events holds the newest event first; fill from the back. *)
  let rec fill i = function
    | [] -> ()
    | e :: rest ->
        events.(i) <- e;
        fill (i - 1) rest
  in
  fill (s.n - 1) s.rev_events;
  { layouts; events }

let to_lines t =
  let layout_lines = List.map (fun l -> "T\t" ^ Layout.to_string l) t.layouts in
  layout_lines @ List.map Event.to_line (Array.to_list t.events)

(* {2 Validating reader}

   The reader never throws away a whole file because of one bad line: each
   line either parses, or produces a {!Diag.t} classifying what went wrong.
   [Strict] mode raises on the first anomaly (with file/line context);
   [Lenient] mode skips the offending line and keeps reading. *)

type mode = Strict | Lenient

exception Invalid of Diag.t

module Obs = Lockdoc_obs.Obs

(* Ingestion metrics (no-ops unless metrics are enabled). Anomalies
   additionally count under a per-Diag-class name, created on first
   occurrence — anomalies are rare, so the registry lookup is off the
   hot path. *)
let c_rows = Obs.counter "trace.rows"
let c_events = Obs.counter "trace.events"
let c_layouts = Obs.counter "trace.layouts"
let c_recovered = Obs.counter "trace.recovered"

let count_anomaly d =
  if Obs.enabled () then
    Obs.incr (Obs.counter ("trace.anomaly." ^ Diag.kind_to_string d.Diag.d_kind))

let () =
  Printexc.register_printer (function
    | Invalid d -> Some (Diag.to_string d)
    | _ -> None)

let read_lines ?(mode = Strict) ?file lines =
  let diags = ref [] in
  let report d =
    count_anomaly d;
    match mode with
    | Strict -> raise (Invalid d)
    | Lenient ->
        Obs.incr c_recovered;
        diags := d :: !diags
  in
  let seen_types = Hashtbl.create 16 in
  let layouts, rev_events, _ =
    List.fold_left
      (fun (layouts, events, lineno) line ->
        let diag kind message =
          report (Diag.make ?file ~line:lineno kind message)
        in
        Obs.incr c_rows;
        if String.length line = 0 then (layouts, events, lineno + 1)
        else if String.length line >= 2 && String.sub line 0 2 = "T\t" then begin
          let spec = String.sub line 2 (String.length line - 2) in
          match Layout.of_string spec with
          | l ->
              if Hashtbl.mem seen_types l.Layout.ty_name then begin
                diag Diag.Duplicate_layout
                  ("layout for " ^ l.Layout.ty_name
                 ^ " already declared; keeping the first");
                (layouts, events, lineno + 1)
              end
              else begin
                Hashtbl.replace seen_types l.Layout.ty_name ();
                (l :: layouts, events, lineno + 1)
              end
          | exception Failure msg ->
              diag Diag.Malformed_field msg;
              (layouts, events, lineno + 1)
        end
        else begin
          let fields = String.split_on_char '\t' line in
          let tag = match fields with t :: _ -> t | [] -> "" in
          (match Event.arity_of_tag tag with
          | None ->
              diag Diag.Unknown_tag
                (Printf.sprintf "unknown record tag %S in line %S" tag line);
              (layouts, events, lineno + 1)
          | Some arity when List.length fields <> arity ->
              diag Diag.Truncated_record
                (Printf.sprintf "%s record has %d fields, expected %d: %S" tag
                   (List.length fields) arity line);
              (layouts, events, lineno + 1)
          | Some _ -> (
              match Event.of_line line with
              | ev -> (layouts, ev :: events, lineno + 1)
              | exception Failure msg ->
                  diag Diag.Malformed_field msg;
                  (layouts, events, lineno + 1)))
        end)
      ([], [], 1) lines
  in
  let t =
    { layouts = List.rev layouts; events = Array.of_list (List.rev rev_events) }
  in
  Obs.add c_events (Array.length t.events);
  Obs.add c_layouts (List.length t.layouts);
  (t, List.rev !diags)

(* Strict reading used to raise a bare [Failure] from deep inside the
   parser; callers now always get the file (when known) and line number. *)
let of_lines lines =
  match read_lines ~mode:Strict lines with
  | t, _ -> t
  | exception Invalid d -> failwith (Diag.to_string d)

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (to_lines t))

let read_file_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      read [])

let read ?(mode = Strict) path = read_lines ~mode ~file:path (read_file_lines path)

let load path =
  match read ~mode:Strict path with
  | t, _ -> t
  | exception Invalid d -> failwith (Diag.to_string d)

let count t pred = Array.fold_left (fun acc e -> if pred e then acc + 1 else acc) 0 t.events
