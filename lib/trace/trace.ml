type t = { layouts : Layout.t list; events : Event.t array }

type sink = { mutable rev_events : Event.t list; mutable n : int }

let sink () = { rev_events = []; n = 0 }

let emit s e =
  s.rev_events <- e :: s.rev_events;
  s.n <- s.n + 1

let emitted s = s.n

let finish ~layouts s =
  let events = Array.make s.n (Event.Free { ptr = 0 }) in
  (* rev_events holds the newest event first; fill from the back. *)
  let rec fill i = function
    | [] -> ()
    | e :: rest ->
        events.(i) <- e;
        fill (i - 1) rest
  in
  fill (s.n - 1) s.rev_events;
  { layouts; events }

let to_lines t =
  let layout_lines = List.map (fun l -> "T\t" ^ Layout.to_string l) t.layouts in
  layout_lines @ List.map Event.to_line (Array.to_list t.events)

let of_lines lines =
  let layouts, rev_events =
    List.fold_left
      (fun (layouts, events) line ->
        if String.length line = 0 then (layouts, events)
        else if String.length line >= 2 && String.sub line 0 2 = "T\t" then
          let spec = String.sub line 2 (String.length line - 2) in
          (Layout.of_string spec :: layouts, events)
        else (layouts, Event.of_line line :: events))
      ([], []) lines
  in
  { layouts = List.rev layouts; events = Array.of_list (List.rev rev_events) }

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (to_lines t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      of_lines (read []))

let count t pred = Array.fold_left (fun acc e -> if pred e then acc + 1 else acc) 0 t.events
