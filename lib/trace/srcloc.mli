(** Source locations in the (synthetic) kernel source tree.

    The simulator assigns every kernel function a file and line range;
    lock operations and memory accesses carry the location they were
    emitted from, which the rule-violation finder reports back to the
    user (paper Sec. 5.5, Tab. 8). *)

type t = { file : string; line : int }

val make : string -> int -> t

val none : t
(** Placeholder for events without a meaningful location. *)

val to_string : t -> string
(** ["fs/inode.c:507"]. *)

val of_string : string -> t
(** Inverse of {!to_string}. Raises [Failure] on malformed input. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
