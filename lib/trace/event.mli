(** Trace events emitted by the instrumented (simulated) kernel.

    An execution trace is a totally ordered stream of these events, as
    produced by a single-core emulated machine (paper Sec. 5.2/6). The
    stream interleaves the activity of all tasks and interrupt handlers;
    {!Ctx_switch} events delimit which control flow the following events
    belong to, so the post-processing step can keep per-control-flow lock
    state. *)

type access_kind = Read | Write

type lock_side =
  | Exclusive  (** writer side, or the only side of a plain lock *)
  | Shared  (** reader side of rwlock / rwsem / RCU *)

type lock_kind =
  | Spinlock
  | Rwlock
  | Mutex
  | Semaphore
  | Rwsem
  | Rcu
  | Seqlock
  | Pseudo  (** synthetic softirq/hardirq/preempt "locks" (paper Sec. 7.1) *)

type ctx_kind = Task | Softirq | Hardirq

type t =
  | Alloc of { ptr : int; size : int; data_type : string; subclass : string option }
      (** A monitored data structure instance was allocated. *)
  | Free of { ptr : int }
  | Lock_acquire of {
      lock_ptr : int;
      kind : lock_kind;
      side : lock_side;
      name : string;  (** variable name for static locks, member name otherwise *)
      loc : Srcloc.t;
    }
  | Lock_release of { lock_ptr : int; loc : Srcloc.t }
  | Mem_access of { ptr : int; size : int; kind : access_kind; loc : Srcloc.t }
      (** Read/write of [size] bytes at [ptr], which falls inside a live
          monitored allocation. *)
  | Fun_enter of { fn : string; loc : Srcloc.t }
  | Fun_exit of { fn : string }
  | Ctx_switch of { pid : int; kind : ctx_kind }
      (** The following events belong to control flow [pid]. Interrupt
          handlers get their own pseudo-pids. *)

val lock_kind_to_string : lock_kind -> string
val lock_kind_of_string : string -> lock_kind
val ctx_to_string : ctx_kind -> string
val ctx_of_string : string -> ctx_kind

val to_line : t -> string
(** One-line, tab-separated serialisation. Free-form name fields are
    {!Fieldenc}-escaped, so identifiers may contain tabs, newlines or
    separator characters without breaking framing. *)

val of_line : string -> t
(** Inverse of {!to_line}. Raises [Failure] on malformed input. *)

val arity_of_tag : string -> int option
(** Expected field count (including the tag itself) for a record tag, or
    [None] for an unknown tag. Used by the validating reader to classify
    truncated records separately from unparseable fields. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
