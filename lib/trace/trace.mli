(** A complete execution trace: type layouts plus the ordered event stream.

    The simulator produces a [t] through a {!sink}; the post-processing
    pipeline ({!Lockdoc_db.Import}) consumes it. Traces can be saved to and
    loaded from a plain-text file so runs can be archived and re-analysed
    (the paper stresses this advantage of ex-post analysis, Sec. 3.3). *)

type t = { layouts : Layout.t list; events : Event.t array }

type sink
(** An append-only event collector. *)

val sink : unit -> sink
val emit : sink -> Event.t -> unit
val emitted : sink -> int
(** Number of events collected so far. *)

val finish : layouts:Layout.t list -> sink -> t

val save : string -> t -> unit
(** Write to a file; one line per layout/event. *)

type mode =
  | Strict  (** raise {!Invalid} on the first anomalous line *)
  | Lenient  (** skip anomalous lines, collecting a {!Diag.t} for each *)

exception Invalid of Diag.t
(** Raised by strict-mode reads; carries file, line number and anomaly
    classification. *)

val read_lines : ?mode:mode -> ?file:string -> string list -> t * Diag.t list
(** Validating reader (default [Strict]). Per-line anomalies — unknown
    tags, truncated records, malformed fields, duplicate layouts — are
    classified recoverable vs fatal; in [Lenient] mode the offending line
    is skipped and reading continues. [?file] is only used to locate
    diagnostics. *)

val read : ?mode:mode -> string -> t * Diag.t list
(** [read path] is {!read_lines} over the lines of [path]. Raises
    [Sys_error] if the file cannot be opened. *)

val load : string -> t
(** Inverse of {!save}. Strict: raises [Failure] carrying the file name
    and line number of the first bad line, or [Sys_error]. *)

val of_lines : string list -> t
(** Strict parse; raises [Failure] with the offending line number. *)

val to_lines : t -> string list

val count : t -> (Event.t -> bool) -> int
(** Number of events satisfying a predicate. *)
