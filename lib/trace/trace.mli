(** A complete execution trace: type layouts plus the ordered event stream.

    The simulator produces a [t] through a {!sink}; the post-processing
    pipeline ({!Lockdoc_db.Import}) consumes it. Traces can be saved to and
    loaded from a plain-text file so runs can be archived and re-analysed
    (the paper stresses this advantage of ex-post analysis, Sec. 3.3). *)

type t = { layouts : Layout.t list; events : Event.t array }

type sink
(** An append-only event collector. *)

val sink : unit -> sink
val emit : sink -> Event.t -> unit
val emitted : sink -> int
(** Number of events collected so far. *)

val finish : layouts:Layout.t list -> sink -> t

val save : string -> t -> unit
(** Write to a file; one line per layout/event. *)

val load : string -> t
(** Inverse of {!save}. Raises [Failure] or [Sys_error]. *)

val of_lines : string list -> t
val to_lines : t -> string list

val count : t -> (Event.t -> bool) -> int
(** Number of events satisfying a predicate. *)
