(** Deterministic trace corruption for robustness testing.

    Applies composable mutations to the textual (line-level) form of a
    trace: drop/duplicate/swap line windows, truncate the tail, flip bits
    inside a line, and inject semantically impossible records (dangling
    frees, orphan releases, double frees, duplicate layouts). This is the
    FAIL*-heritage fault-injection idea applied to our own substrate: the
    ingestion pipeline must degrade gracefully on every output of this
    module.

    All randomness comes from {!Lockdoc_util.Prng}, so a (trace, seed)
    pair always yields the same corruption. Every run ends with one
    guaranteed-detectable injection applied {e after} the structural
    mutations, so a corrupted stream always differs from the original and
    always carries at least one anomaly the lenient importer reports. *)

type op =
  | Drop_window of { at : int; len : int }
  | Duplicate_window of { at : int; len : int }
  | Reorder_windows of { a : int; b : int; len : int }  (** swap two windows *)
  | Truncate_tail of { keep : int }
  | Bit_flip of { at : int; pos : int; bit : int }
  | Inject_line of { at : int; line : string; why : string }

val describe : op -> string

val apply : op -> string list -> string list
(** Apply one mutation; positions are clamped to the current line count. *)

val corrupt : ?ops:int -> seed:int -> string list -> string list * op list
(** [corrupt ~seed lines] picks 1–3 mutations (or exactly [ops] when
    given, minimum 1) and applies them. Returns the corrupted lines and
    the mutations in application order. *)
