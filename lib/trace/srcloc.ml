type t = { file : string; line : int }

let make file line = { file; line }

let none = { file = "?"; line = 0 }

let to_string t = Printf.sprintf "%s:%d" t.file t.line

let of_string s =
  match String.rindex_opt s ':' with
  | None -> failwith ("Srcloc.of_string: missing ':' in " ^ s)
  | Some i ->
      let file = String.sub s 0 i in
      let line = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      { file; line }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> Int.compare a.line b.line
  | c -> c

let equal a b = compare a b = 0

let pp fmt t = Format.pp_print_string fmt (to_string t)
