(** Type layouts: the shape of an observed kernel data structure.

    A layout lists every member with its byte offset and size, mirroring
    the paper's [type_layout] relation (Fig. 6). The trace post-processing
    step uses layouts to resolve raw memory addresses to (data type,
    member) pairs. Union compounds are "unrolled" by the producer
    (paper Sec. 7.1): members of an embedded union appear as ordinary
    members with distinct offsets. *)

type member_kind =
  | Data  (** ordinary member; accesses are analysed *)
  | Lock  (** a lock variable embedded in the structure *)
  | Atomic  (** [atomic_t]-style member; filtered out (paper Sec. 5.3) *)

type member = {
  m_name : string;
  m_offset : int;
  m_size : int;
  m_kind : member_kind;
}

type t = { ty_name : string; ty_size : int; members : member list }

val make : name:string -> (string * int * member_kind) list -> t
(** [make ~name specs] builds a layout from [(member, size, kind)] triples,
    assigning consecutive offsets. *)

val find_member : t -> string -> member
(** Raises [Not_found]. *)

val member_at : t -> int -> member option
(** [member_at t offset] resolves a byte offset within an instance to the
    member occupying it. *)

val data_members : t -> member list
(** Members with [m_kind = Data]. *)

val to_string : t -> string
val of_string : string -> t
(** One-line serialisation used in trace files. *)
