(** Stream-invariant validation over a parsed trace.

    The reader ({!Trace.read_lines}) guarantees each line is well-formed;
    this pass checks that the {e sequence} of events is internally
    consistent: every free follows a matching allocation, every monitored
    access falls inside a live allocation, lock acquire/release traffic is
    balanced (modulo legitimately nesting shared and pseudo locks), each
    control-flow id keeps one context kind, and the trace does not end in
    the middle of an interrupt handler. A trace produced by the simulator
    passes with zero diagnostics; corruption shows up as located
    anomalies. *)

val run : Trace.t -> Diag.t list
(** All invariant violations, sorted by event index. Empty for a
    well-formed trace. *)

val is_clean : Trace.t -> bool
(** [run t = []]. *)
