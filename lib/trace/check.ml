module IntMap = Map.Make (Int)

type lock_state = {
  mutable shared : int;  (* outstanding shared-side acquisitions *)
  mutable excl : int;  (* outstanding exclusive-side acquisitions *)
  mutable pseudo : bool;
}

let in_region map ptr =
  match IntMap.find_last_opt (fun base -> base <= ptr) map with
  | Some (base, size) -> ptr < base + size
  | None -> false

let run (t : Trace.t) =
  let diags = ref [] in
  let report ~event kind message =
    diags := Diag.make ~event kind message :: !diags
  in
  let declared = Hashtbl.create 16 in
  List.iter
    (fun l -> Hashtbl.replace declared l.Layout.ty_name ())
    t.Trace.layouts;
  (* base ptr -> size, for live and for freed-but-not-reused regions. *)
  let live = ref IntMap.empty and freed = ref IntMap.empty in
  let flow_kinds : (int, Event.ctx_kind) Hashtbl.t = Hashtbl.create 32 in
  let locks : (int, lock_state) Hashtbl.t = Hashtbl.create 256 in
  let current_kind = ref Event.Task in
  Array.iteri
    (fun idx ev ->
      let report k m = report ~event:idx k m in
      match ev with
      | Event.Alloc { ptr; size; data_type; _ } ->
          if not (Hashtbl.mem declared data_type) then
            report Diag.Unknown_data_type
              (Printf.sprintf "allocation of undeclared type %s at 0x%x"
                 data_type ptr);
          if IntMap.mem ptr !live then
            report Diag.Double_alloc
              (Printf.sprintf "allocation at 0x%x which is already live" ptr);
          (* The address range is live again: drop stale freed records it
             covers so later accesses resolve to the new generation. *)
          freed :=
            IntMap.filter
              (fun base fsize -> base + fsize <= ptr || ptr + size <= base)
              !freed;
          live := IntMap.add ptr size !live
      | Event.Free { ptr } -> (
          match IntMap.find_opt ptr !live with
          | Some size ->
              live := IntMap.remove ptr !live;
              freed := IntMap.add ptr size !freed
          | None ->
              if IntMap.mem ptr !freed then
                report Diag.Double_free
                  (Printf.sprintf "free of 0x%x which was already freed" ptr)
              else
                report Diag.Free_without_alloc
                  (Printf.sprintf "free of 0x%x which was never allocated" ptr))
      | Event.Mem_access { ptr; _ } ->
          if not (in_region !live ptr) then
            if in_region !freed ptr then
              report Diag.Access_after_free
                (Printf.sprintf "access at 0x%x inside a freed allocation" ptr)
            else
              report Diag.Access_outside_alloc
                (Printf.sprintf "access at 0x%x outside any monitored allocation"
                   ptr)
      | Event.Lock_acquire { lock_ptr; kind; side; name; _ } ->
          if (not (in_region !live lock_ptr)) && in_region !freed lock_ptr then
            report Diag.Acquire_on_freed_lock
              (Printf.sprintf "acquire of %s at 0x%x inside a freed allocation"
                 name lock_ptr);
          let st =
            match Hashtbl.find_opt locks lock_ptr with
            | Some st -> st
            | None ->
                let st = { shared = 0; excl = 0; pseudo = false } in
                Hashtbl.replace locks lock_ptr st;
                st
          in
          st.pseudo <- kind = Event.Pseudo;
          (* Shared sides (reader locks, RCU, seqlock read sections) and
             the synthetic IRQ/preempt pseudo-locks nest legitimately, and
             a seqlock writer may overlap an optimistic reader; but two
             outstanding exclusive holds cannot happen on a single core. *)
          if side = Event.Exclusive && (not st.pseudo) && st.excl > 0 then
            report Diag.Double_acquire
              (Printf.sprintf
                 "exclusive %s at 0x%x acquired while already held exclusively"
                 name lock_ptr);
          if side = Event.Exclusive then st.excl <- st.excl + 1
          else st.shared <- st.shared + 1
      | Event.Lock_release { lock_ptr; _ } -> (
          (* Releases carry no side; drain exclusive holds first so a
             seqlock writer overlapping a reader never looks doubly
             exclusive. *)
          match Hashtbl.find_opt locks lock_ptr with
          | Some st when st.excl > 0 -> st.excl <- st.excl - 1
          | Some st when st.shared > 0 -> st.shared <- st.shared - 1
          | Some _ | None ->
              report Diag.Unbalanced_release
                (Printf.sprintf "release of 0x%x which is not held" lock_ptr))
      | Event.Ctx_switch { pid; kind } -> (
          current_kind := kind;
          match Hashtbl.find_opt flow_kinds pid with
          | Some k when k <> kind ->
              report Diag.Flow_kind_conflict
                (Printf.sprintf "flow %d switches kind %s -> %s" pid
                   (Event.ctx_to_string k) (Event.ctx_to_string kind))
          | Some _ -> ()
          | None -> Hashtbl.replace flow_kinds pid kind)
      | Event.Fun_enter _ | Event.Fun_exit _ -> ())
    t.Trace.events;
  let eof = Array.length t.Trace.events in
  if !current_kind <> Event.Task && eof > 0 then
    report ~event:(eof - 1) Diag.Irq_imbalance
      "trace ends inside an interrupt handler";
  Hashtbl.iter
    (fun ptr st ->
      let held = st.shared + st.excl in
      if held > 0 then
        report ~event:(eof - 1) Diag.Unclosed_txn
          (Printf.sprintf "lock at 0x%x still held %d time(s) at end of trace"
             ptr held))
    locks;
  (* Hashtbl iteration order is unspecified; sort for determinism. *)
  List.sort
    (fun a b ->
      compare
        (a.Diag.d_event, Diag.kind_to_string a.Diag.d_kind, a.Diag.d_message)
        (b.Diag.d_event, Diag.kind_to_string b.Diag.d_kind, b.Diag.d_message))
    !diags

let is_clean t = run t = []
