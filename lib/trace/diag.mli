(** Trace-ingestion diagnostics: the anomaly taxonomy shared by the
    validating reader ({!Trace.read_lines}), the stream-invariant
    validator ({!Check}) and the recovering importer
    ({!Lockdoc_db.Import}).

    An anomaly is {e recoverable} when ingestion can skip or repair the
    offending record without corrupting downstream analysis state, and
    {e fatal} when data was lost or an impossible state transition was
    observed. Strict-mode readers raise on the first anomaly; lenient
    readers collect them all and keep going. *)

type severity = Recoverable | Fatal

type kind =
  | Unknown_tag  (** line whose tag is not one of the known records *)
  | Truncated_record  (** known tag with the wrong number of fields *)
  | Malformed_field  (** field failed to parse (int, enum, escape, loc) *)
  | Duplicate_layout  (** second layout declaration for the same type *)
  | Unknown_data_type  (** allocation names an undeclared layout *)
  | Double_alloc  (** allocation at an address that is already live *)
  | Double_free  (** free of an address that was already freed *)
  | Free_without_alloc  (** free of an address never allocated *)
  | Access_after_free  (** access inside a freed (not reused) allocation *)
  | Access_outside_alloc  (** access outside any live or freed allocation *)
  | Unbalanced_release  (** release without a matching acquisition *)
  | Double_acquire  (** exclusive lock acquired while already held *)
  | Acquire_on_freed_lock  (** lock embedded in a freed allocation *)
  | Flow_kind_conflict  (** one pid used with two different context kinds *)
  | Irq_imbalance  (** trace ends inside an interrupt handler *)
  | Unclosed_txn  (** lock still held at end of trace *)

type t = {
  d_kind : kind;
  d_severity : severity;
  d_file : string option;
  d_line : int option;  (** 1-based line number in the trace file *)
  d_event : int option;  (** index into the parsed event stream *)
  d_message : string;
}

val make :
  ?severity:severity ->
  ?file:string ->
  ?line:int ->
  ?event:int ->
  kind ->
  string ->
  t
(** [make kind msg] builds a diagnostic with the kind's default severity
    (override with [?severity]). *)

val default_severity : kind -> severity
val is_fatal : t -> bool
val kind_to_string : kind -> string
val severity_to_string : severity -> string

val to_string : t -> string
(** ["file:line: kind (severity): message"]. *)

val pp : Format.formatter -> t -> unit

val summarize : t list -> (string * int) list
(** Count per kind name, sorted by name. *)
