type access_kind = Read | Write

type lock_side = Exclusive | Shared

type lock_kind =
  | Spinlock
  | Rwlock
  | Mutex
  | Semaphore
  | Rwsem
  | Rcu
  | Seqlock
  | Pseudo

type ctx_kind = Task | Softirq | Hardirq

type t =
  | Alloc of { ptr : int; size : int; data_type : string; subclass : string option }
  | Free of { ptr : int }
  | Lock_acquire of {
      lock_ptr : int;
      kind : lock_kind;
      side : lock_side;
      name : string;
      loc : Srcloc.t;
    }
  | Lock_release of { lock_ptr : int; loc : Srcloc.t }
  | Mem_access of { ptr : int; size : int; kind : access_kind; loc : Srcloc.t }
  | Fun_enter of { fn : string; loc : Srcloc.t }
  | Fun_exit of { fn : string }
  | Ctx_switch of { pid : int; kind : ctx_kind }

let lock_kind_to_string = function
  | Spinlock -> "spinlock"
  | Rwlock -> "rwlock"
  | Mutex -> "mutex"
  | Semaphore -> "semaphore"
  | Rwsem -> "rwsem"
  | Rcu -> "rcu"
  | Seqlock -> "seqlock"
  | Pseudo -> "pseudo"

let lock_kind_of_string = function
  | "spinlock" -> Spinlock
  | "rwlock" -> Rwlock
  | "mutex" -> Mutex
  | "semaphore" -> Semaphore
  | "rwsem" -> Rwsem
  | "rcu" -> Rcu
  | "seqlock" -> Seqlock
  | "pseudo" -> Pseudo
  | s -> failwith ("Event.lock_kind_of_string: " ^ s)

let side_to_string = function Exclusive -> "x" | Shared -> "s"

let side_of_string = function
  | "x" -> Exclusive
  | "s" -> Shared
  | s -> failwith ("Event.side_of_string: " ^ s)

let access_to_string = function Read -> "r" | Write -> "w"

let access_of_string = function
  | "r" -> Read
  | "w" -> Write
  | s -> failwith ("Event.access_of_string: " ^ s)

let ctx_to_string = function
  | Task -> "task"
  | Softirq -> "softirq"
  | Hardirq -> "hardirq"

let ctx_of_string = function
  | "task" -> Task
  | "softirq" -> Softirq
  | "hardirq" -> Hardirq
  | s -> failwith ("Event.ctx_of_string: " ^ s)

let tab = String.concat "\t"

(* Free-form name fields are escaped so that tabs/newlines in identifiers
   cannot break line framing; source locations are serialised first and
   then escaped as a whole (the file part may contain anything). *)
let enc = Fieldenc.encode

let enc_loc loc = Fieldenc.encode (Srcloc.to_string loc)

let dec_loc s = Srcloc.of_string (Fieldenc.decode s)

let enc_subclass = function
  | None -> "-"
  | Some s ->
      (* A literal "-" subclass must not collide with the None marker. *)
      if s = "-" then "\\-" else enc s

let dec_subclass = function
  | "-" -> None
  | s -> Some (Fieldenc.decode s)

let to_line = function
  | Alloc { ptr; size; data_type; subclass } ->
      tab
        [
          "A";
          string_of_int ptr;
          string_of_int size;
          enc data_type;
          enc_subclass subclass;
        ]
  | Free { ptr } -> tab [ "F"; string_of_int ptr ]
  | Lock_acquire { lock_ptr; kind; side; name; loc } ->
      tab
        [
          "L+";
          string_of_int lock_ptr;
          lock_kind_to_string kind;
          side_to_string side;
          enc name;
          enc_loc loc;
        ]
  | Lock_release { lock_ptr; loc } ->
      tab [ "L-"; string_of_int lock_ptr; enc_loc loc ]
  | Mem_access { ptr; size; kind; loc } ->
      tab
        [
          "M";
          string_of_int ptr;
          string_of_int size;
          access_to_string kind;
          enc_loc loc;
        ]
  | Fun_enter { fn; loc } -> tab [ "E"; enc fn; enc_loc loc ]
  | Fun_exit { fn } -> tab [ "X"; enc fn ]
  | Ctx_switch { pid; kind } ->
      tab [ "C"; string_of_int pid; ctx_to_string kind ]

let arity_of_tag = function
  | "A" -> Some 5
  | "F" -> Some 2
  | "L+" -> Some 6
  | "L-" -> Some 3
  | "M" -> Some 5
  | "E" -> Some 3
  | "X" -> Some 2
  | "C" -> Some 3
  | _ -> None

let of_fields fields line =
  match fields with
  | [ "A"; ptr; size; data_type; subclass ] ->
      Alloc
        {
          ptr = int_of_string ptr;
          size = int_of_string size;
          data_type = Fieldenc.decode data_type;
          subclass = dec_subclass subclass;
        }
  | [ "F"; ptr ] -> Free { ptr = int_of_string ptr }
  | [ "L+"; lock_ptr; kind; side; name; loc ] ->
      Lock_acquire
        {
          lock_ptr = int_of_string lock_ptr;
          kind = lock_kind_of_string kind;
          side = side_of_string side;
          name = Fieldenc.decode name;
          loc = dec_loc loc;
        }
  | [ "L-"; lock_ptr; loc ] ->
      Lock_release { lock_ptr = int_of_string lock_ptr; loc = dec_loc loc }
  | [ "M"; ptr; size; kind; loc ] ->
      Mem_access
        {
          ptr = int_of_string ptr;
          size = int_of_string size;
          kind = access_of_string kind;
          loc = dec_loc loc;
        }
  | [ "E"; fn; loc ] -> Fun_enter { fn = Fieldenc.decode fn; loc = dec_loc loc }
  | [ "X"; fn ] -> Fun_exit { fn = Fieldenc.decode fn }
  | [ "C"; pid; kind ] ->
      Ctx_switch { pid = int_of_string pid; kind = ctx_of_string kind }
  | _ -> failwith ("Event.of_line: malformed line: " ^ line)

let of_line line = of_fields (String.split_on_char '\t' line) line

let pp fmt t = Format.pp_print_string fmt (to_line t)

let equal a b = to_line a = to_line b
