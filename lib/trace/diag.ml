type severity = Recoverable | Fatal

type kind =
  (* Reader (per-line) anomalies. *)
  | Unknown_tag
  | Truncated_record
  | Malformed_field
  | Duplicate_layout
  (* Stream / replay anomalies. *)
  | Unknown_data_type
  | Double_alloc
  | Double_free
  | Free_without_alloc
  | Access_after_free
  | Access_outside_alloc
  | Unbalanced_release
  | Double_acquire
  | Acquire_on_freed_lock
  | Flow_kind_conflict
  | Irq_imbalance
  | Unclosed_txn

type t = {
  d_kind : kind;
  d_severity : severity;
  d_file : string option;  (** trace file, when read from disk *)
  d_line : int option;  (** 1-based line number in the trace file *)
  d_event : int option;  (** index into the parsed event stream *)
  d_message : string;
}

let default_severity = function
  | Unknown_tag | Truncated_record | Malformed_field -> Fatal
  | Unknown_data_type | Double_alloc | Double_free | Free_without_alloc
  | Access_after_free | Access_outside_alloc | Acquire_on_freed_lock
  | Flow_kind_conflict ->
      Fatal
  | Duplicate_layout | Unbalanced_release | Double_acquire | Irq_imbalance
  | Unclosed_txn ->
      Recoverable

let make ?severity ?file ?line ?event kind message =
  {
    d_kind = kind;
    d_severity =
      (match severity with Some s -> s | None -> default_severity kind);
    d_file = file;
    d_line = line;
    d_event = event;
    d_message = message;
  }

let is_fatal d = d.d_severity = Fatal

let kind_to_string = function
  | Unknown_tag -> "unknown-tag"
  | Truncated_record -> "truncated-record"
  | Malformed_field -> "malformed-field"
  | Duplicate_layout -> "duplicate-layout"
  | Unknown_data_type -> "unknown-data-type"
  | Double_alloc -> "double-alloc"
  | Double_free -> "double-free"
  | Free_without_alloc -> "free-without-alloc"
  | Access_after_free -> "access-after-free"
  | Access_outside_alloc -> "access-outside-alloc"
  | Unbalanced_release -> "unbalanced-release"
  | Double_acquire -> "double-acquire"
  | Acquire_on_freed_lock -> "acquire-on-freed-lock"
  | Flow_kind_conflict -> "flow-kind-conflict"
  | Irq_imbalance -> "irq-imbalance"
  | Unclosed_txn -> "unclosed-txn"

let severity_to_string = function
  | Recoverable -> "recoverable"
  | Fatal -> "fatal"

let location d =
  match (d.d_file, d.d_line, d.d_event) with
  | Some f, Some l, _ -> Printf.sprintf "%s:%d" f l
  | Some f, None, Some e -> Printf.sprintf "%s[event %d]" f e
  | Some f, None, None -> f
  | None, Some l, _ -> Printf.sprintf "line %d" l
  | None, None, Some e -> Printf.sprintf "event %d" e
  | None, None, None -> "?"

let to_string d =
  Printf.sprintf "%s: %s (%s): %s" (location d) (kind_to_string d.d_kind)
    (severity_to_string d.d_severity)
    d.d_message

let pp fmt d = Format.pp_print_string fmt (to_string d)

let summarize diags =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let k = kind_to_string d.d_kind in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    diags;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
