type member_kind = Data | Lock | Atomic

type member = {
  m_name : string;
  m_offset : int;
  m_size : int;
  m_kind : member_kind;
}

type t = { ty_name : string; ty_size : int; members : member list }

let make ~name specs =
  let offset = ref 0 in
  let members =
    List.map
      (fun (m_name, m_size, m_kind) ->
        let m_offset = !offset in
        offset := !offset + m_size;
        { m_name; m_offset; m_size; m_kind })
      specs
  in
  { ty_name = name; ty_size = !offset; members }

let find_member t name = List.find (fun m -> m.m_name = name) t.members

let member_at t offset =
  List.find_opt
    (fun m -> offset >= m.m_offset && offset < m.m_offset + m.m_size)
    t.members

let data_members t = List.filter (fun m -> m.m_kind = Data) t.members

let kind_to_char = function Data -> 'd' | Lock -> 'l' | Atomic -> 'a'

let kind_of_char = function
  | 'd' -> Data
  | 'l' -> Lock
  | 'a' -> Atomic
  | c -> failwith (Printf.sprintf "Layout: unknown member kind %c" c)

let to_string t =
  let member m =
    Printf.sprintf "%s,%d,%d,%c" (Fieldenc.encode m.m_name) m.m_offset m.m_size
      (kind_to_char m.m_kind)
  in
  Printf.sprintf "%s;%d;%s" (Fieldenc.encode t.ty_name) t.ty_size
    (String.concat ";" (List.map member t.members))

let of_string s =
  match Fieldenc.split_escaped ';' s with
  | ty_name :: size :: rest ->
      let member spec =
        match Fieldenc.split_escaped ',' spec with
        | [ m_name; off; sz; kind ] when String.length kind = 1 ->
            {
              m_name = Fieldenc.decode m_name;
              m_offset = int_of_string off;
              m_size = int_of_string sz;
              m_kind = kind_of_char kind.[0];
            }
        | _ -> failwith ("Layout.of_string: bad member spec " ^ spec)
      in
      {
        ty_name = Fieldenc.decode ty_name;
        ty_size = int_of_string size;
        members = List.map member rest;
      }
  | _ -> failwith ("Layout.of_string: bad layout " ^ s)
