(** Escaping for free-form identifier fields in the trace text format.

    Struct, member, lock and function names may contain any character —
    including the tab that frames event fields and the [;]/[,] that frame
    layout specs. {!encode} makes a name safe to embed in either context;
    {!decode} is its inverse. Names without special characters encode to
    themselves, so the on-disk format is unchanged for ordinary traces. *)

val encode : string -> string
(** Backslash-escape [\\], tab, newline, CR, [;] and [,]. *)

val decode : string -> string
(** Inverse of {!encode}. Also accepts [\-] for a literal [-] (used to
    disambiguate the "no subclass" marker). Raises [Failure] on a bad or
    trailing escape. *)

val split_escaped : char -> string -> string list
(** Split on every unescaped occurrence of the separator. The returned
    pieces still carry their escapes (pass them through {!decode}). *)
