module Prng = Lockdoc_util.Prng

type op =
  | Drop_window of { at : int; len : int }
  | Duplicate_window of { at : int; len : int }
  | Reorder_windows of { a : int; b : int; len : int }
  | Truncate_tail of { keep : int }
  | Bit_flip of { at : int; pos : int; bit : int }
  | Inject_line of { at : int; line : string; why : string }

let describe = function
  | Drop_window { at; len } -> Printf.sprintf "drop %d line(s) at %d" len at
  | Duplicate_window { at; len } ->
      Printf.sprintf "duplicate %d line(s) at %d" len at
  | Reorder_windows { a; b; len } ->
      Printf.sprintf "swap %d-line windows at %d and %d" len a b
  | Truncate_tail { keep } -> Printf.sprintf "truncate to first %d line(s)" keep
  | Bit_flip { at; pos; bit } ->
      Printf.sprintf "flip bit %d of char %d in line %d" bit pos at
  | Inject_line { at; why; _ } -> Printf.sprintf "inject %s at %d" why at

(* Flip a bit of one character, avoiding control characters that would
   change line framing when the trace is written back to a file. *)
let flip_char c bit =
  let rec try_bit k tries =
    if tries >= 7 then '?'
    else
      let c' = Char.chr (Char.code c lxor (1 lsl k)) in
      if c' >= ' ' && c' < '\x7f' then c' else try_bit ((k + 1) mod 7) (tries + 1)
  in
  try_bit bit 0

let apply op lines =
  let arr = Array.of_list lines in
  let n = Array.length arr in
  let clamp i = max 0 (min i (max 0 (n - 1))) in
  match op with
  | Drop_window { at; len } ->
      List.filteri (fun i _ -> i < at || i >= at + len) lines
  | Duplicate_window { at; len } ->
      let at = clamp at in
      let len = min len (n - at) in
      let window = Array.to_list (Array.sub arr at len) in
      List.concat
        [
          Array.to_list (Array.sub arr 0 (at + len));
          window;
          Array.to_list (Array.sub arr (at + len) (n - at - len));
        ]
  | Reorder_windows { a; b; len } ->
      if n = 0 then lines
      else begin
        let a = clamp a and b = clamp b in
        let len = min len (min (n - a) (n - b)) in
        let lo = min a b and hi = max a b in
        if len <= 0 || lo + len > hi then lines
        else begin
          let out = Array.copy arr in
          Array.blit arr hi out lo len;
          Array.blit arr lo out hi len;
          Array.to_list out
        end
      end
  | Truncate_tail { keep } -> List.filteri (fun i _ -> i < keep) lines
  | Bit_flip { at; pos; bit } ->
      List.mapi
        (fun i line ->
          if i <> at || String.length line = 0 then line
          else begin
            let pos = pos mod String.length line in
            String.mapi (fun j c -> if j = pos then flip_char c bit else c) line
          end)
        lines
  | Inject_line { at; line; _ } ->
      if n = 0 then [ line ]
      else
        List.concat_map
          (fun (i, l) -> if i = clamp at then [ line; l ] else [ l ])
          (List.mapi (fun i l -> (i, l)) lines)

(* Addresses far above the simulated heap: never allocated, never a lock. *)
let dangling_ptr rng = 0x7000_0000 + Prng.int rng 0x1000
let orphan_lock_ptr rng = 0x7100_0000 + Prng.int rng 0x1000

let find_indices pred lines =
  List.mapi (fun i l -> (i, l)) lines
  |> List.filter_map (fun (i, l) -> if pred l then Some i else None)

let has_prefix p l =
  String.length l >= String.length p && String.sub l 0 (String.length p) = p

(* One mutation that is guaranteed both to alter the stream and to be
   detectable by the lenient importer, so that "corrupted => >= 1 anomaly"
   holds for every seed (the FAIL*-style fault-injection contract). *)
let plan_detectable rng lines =
  let n = List.length lines in
  let at = if n = 0 then 0 else Prng.int rng n in
  match Prng.int rng 3 with
  | 0 ->
      Inject_line
        {
          at;
          line = Printf.sprintf "F\t%d" (dangling_ptr rng);
          why = "dangling free";
        }
  | 1 ->
      Inject_line
        {
          at;
          line = Printf.sprintf "L-\t%d\tinjected.c:1" (orphan_lock_ptr rng);
          why = "orphan release";
        }
  | _ -> (
      (* Duplicate an existing free right after itself: a certain
         double-free. Fall back to a dangling free when the trace has
         none. *)
      match find_indices (has_prefix "F\t") lines with
      | [] ->
          Inject_line
            {
              at;
              line = Printf.sprintf "F\t%d" (dangling_ptr rng);
              why = "dangling free";
            }
      | frees ->
          let i = List.nth frees (Prng.int rng (List.length frees)) in
          Inject_line { at = i; line = List.nth lines i; why = "double free" })

let plan_structural rng lines =
  let n = List.length lines in
  if n = 0 then Truncate_tail { keep = 0 }
  else
    let window () = 1 + Prng.int rng (min 16 n) in
    match Prng.int rng 7 with
    | 0 -> Drop_window { at = Prng.int rng n; len = window () }
    | 1 -> Duplicate_window { at = Prng.int rng n; len = window () }
    | 2 ->
        Reorder_windows
          { a = Prng.int rng n; b = Prng.int rng n; len = window () }
    | 3 -> Truncate_tail { keep = n - min n (1 + Prng.int rng (n / 2 + 1)) }
    | 4 ->
        Bit_flip
          { at = Prng.int rng n; pos = Prng.int rng 200; bit = Prng.int rng 7 }
    | 5 -> (
        (* Duplicate an acquisition right after itself: a double acquire
           (not guaranteed import-visible — e.g. inside a dropped IRQ
           segment — hence structural, not the final injection). *)
        match find_indices (has_prefix "L+\t") lines with
        | [] -> Drop_window { at = Prng.int rng n; len = window () }
        | ls ->
            let i = List.nth ls (Prng.int rng (List.length ls)) in
            Inject_line
              { at = i; line = List.nth lines i; why = "double acquire" })
    | _ -> (
        (* Duplicate a layout declaration. *)
        match find_indices (has_prefix "T\t") lines with
        | [] -> Duplicate_window { at = Prng.int rng n; len = window () }
        | ts ->
            let i = List.nth ts (Prng.int rng (List.length ts)) in
            Inject_line
              { at = i; line = List.nth lines i; why = "duplicate layout" })

let corrupt ?ops ~seed lines =
  let rng = Prng.of_int seed in
  let n_structural =
    match ops with Some n -> max 0 (n - 1) | None -> Prng.int rng 3
  in
  (* Structural mutations first, the guaranteed-detectable injection last,
     so truncation or window drops can never erase the evidence. *)
  let lines', applied =
    List.fold_left
      (fun (ls, acc) () ->
        let op = plan_structural rng ls in
        (apply op ls, op :: acc))
      (lines, [])
      (List.init n_structural (fun _ -> ()))
  in
  let final = plan_detectable rng lines' in
  (apply final lines', List.rev (final :: applied))
