let must_escape c =
  c = '\\' || c = '\t' || c = '\n' || c = '\r' || c = ';' || c = ','

let encode s =
  if not (String.exists must_escape s) then s
  else begin
    let b = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '\t' -> Buffer.add_string b "\\t"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | ';' -> Buffer.add_string b "\\;"
        | ',' -> Buffer.add_string b "\\,"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let decode s =
  if not (String.contains s '\\') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i < n then
        if s.[i] = '\\' then begin
          if i + 1 >= n then
            failwith ("Fieldenc.decode: trailing backslash in " ^ s);
          (match s.[i + 1] with
          | '\\' -> Buffer.add_char b '\\'
          | 't' -> Buffer.add_char b '\t'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | ';' -> Buffer.add_char b ';'
          | ',' -> Buffer.add_char b ','
          | '-' -> Buffer.add_char b '-'
          | c ->
              failwith
                (Printf.sprintf "Fieldenc.decode: bad escape \\%c in %s" c s));
          go (i + 2)
        end
        else begin
          Buffer.add_char b s.[i];
          go (i + 1)
        end
    in
    go 0;
    Buffer.contents b
  end

let split_escaped sep s =
  let parts = ref [] and b = Buffer.create 16 in
  let n = String.length s in
  let rec go i =
    if i >= n then parts := Buffer.contents b :: !parts
    else if s.[i] = '\\' && i + 1 < n then begin
      Buffer.add_char b '\\';
      Buffer.add_char b s.[i + 1];
      go (i + 2)
    end
    else if s.[i] = sep then begin
      parts := Buffer.contents b :: !parts;
      Buffer.clear b;
      go (i + 1)
    end
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0;
  List.rev !parts
