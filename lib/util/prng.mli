(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator draws from an explicit [t]
    so that runs are reproducible from a single seed and independent
    components can be given independent streams via {!split}. *)

type t

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val of_int : int -> t
(** [of_int seed] is [create ~seed:(Int64.of_int seed)]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t choices] picks an ['a] with probability proportional to its
    integer weight. The total weight must be positive. *)
