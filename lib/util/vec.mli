(** Growable arrays (OCaml 5.1 has no [Dynarray]); used as table storage by
    the relational trace store. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val exists : ('a -> bool) -> 'a t -> bool
val find_opt : ('a -> bool) -> 'a t -> 'a option
