type align = Left | Right

type row = Cells of string list | Rule

type t = {
  header : string list;
  columns : int;
  mutable aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~header =
  {
    header;
    columns = List.length header;
    aligns = List.map (fun _ -> Left) header;
    rows = [];
  }

let set_align t aligns =
  if List.length aligns <> t.columns then
    invalid_arg "Tablefmt.set_align: width mismatch";
  t.aligns <- aligns

let add_row t cells =
  if List.length cells <> t.columns then
    invalid_arg "Tablefmt.add_row: width mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.header) in
  let note_widths = function
    | Rule -> ()
    | Cells cells ->
        List.iteri
          (fun i c -> widths.(i) <- max widths.(i) (String.length c))
          cells
  in
  List.iter note_widths rows;
  let sep =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let line cells =
    let padded =
      List.mapi
        (fun i c -> " " ^ pad (List.nth t.aligns i) widths.(i) c ^ " ")
        cells
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  let body =
    List.map (function Rule -> sep | Cells cells -> line cells) rows
  in
  String.concat "\n" ((sep :: line t.header :: sep :: body) @ [ sep ])

let print t = print_endline (render t)
