(** Checked numeric parsers for CLI flags.

    Each returns [Error] with a one-line human-readable diagnostic
    instead of raising, so front ends can print a usage error and exit
    non-zero. Input is [String.trim]med first. *)

val int_arg : string -> (int, string) result
val positive : string -> (int, string) result
(** Rejects 0 and negatives (e.g. [-j], [--checkpoint-every]). *)

val non_negative : string -> (int, string) result
val fraction : string -> (float, string) result
(** A float in [0, 1] (e.g. [--tac]). *)

val positive_float : string -> (float, string) result
(** A finite float strictly above 0 (e.g. [--session-timeout]). *)
