let default_jobs () = min 64 (max 1 (Domain.recommended_domain_count ()))

(* One failure slot shared by all domains; the lowest failing index wins
   so the surfaced exception is the one the sequential map would have
   raised first. *)
type failure = { f_index : int; f_exn : exn; f_bt : Printexc.raw_backtrace }

let rec record failures idx exn bt =
  let cur = Atomic.get failures in
  let better = match cur with None -> true | Some f -> idx < f.f_index in
  if better then
    let next = Some { f_index = idx; f_exn = exn; f_bt = bt } in
    if not (Atomic.compare_and_set failures cur next) then
      record failures idx exn bt

let init ?jobs n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if jobs <= 1 || n <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failures = Atomic.make None in
    (* Small chunks keep the domains balanced when item costs are
       skewed (a handful of hot type keys dominate derivation). *)
    let chunk = max 1 (n / (jobs * 8)) in
    let worker () =
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n then continue := false
        else
          for i = start to min (start + chunk) n - 1 do
            match f i with
            | v -> results.(i) <- Some v
            | exception exn ->
                record failures i exn (Printexc.get_raw_backtrace ())
          done
      done
    in
    let domains =
      Array.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains;
    match Atomic.get failures with
    | Some f -> Printexc.raise_with_backtrace f.f_exn f.f_bt
    | None ->
        Array.map
          (function Some v -> v | None -> assert false (* all chunks ran *))
          results
  end

let map_array ?jobs f items = init ?jobs (Array.length items) (fun i -> f items.(i))

let map ?jobs f items =
  Array.to_list (map_array ?jobs f (Array.of_list items))

let mapi ?jobs f items =
  let arr = Array.of_list items in
  Array.to_list (init ?jobs (Array.length arr) (fun i -> f i arr.(i)))

let concat_map ?jobs f items = List.concat (map ?jobs f items)
