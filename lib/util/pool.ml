module Obs = Lockdoc_obs.Obs

let default_jobs () = min 64 (max 1 (Domain.recommended_domain_count ()))

(* Observability: all recording is no-op unless metrics are enabled,
   and none of it influences scheduling or results — the differential
   harness (test_parallel) runs with metrics on to prove it. *)
let c_runs = Obs.counter "pool.runs"
let c_tasks = Obs.counter "pool.tasks"
let c_chunks = Obs.counter "pool.chunks"

let h_worker_tasks =
  Obs.histogram
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.;
                4096.; 16384. |]
    "pool.worker_tasks"

let h_worker_ms = Obs.histogram "pool.worker_ms"
let g_imbalance = Obs.gauge "pool.imbalance"

(* One failure slot shared by all domains; the lowest failing index wins
   so the surfaced exception is the one the sequential map would have
   raised first. *)
type failure = { f_index : int; f_exn : exn; f_bt : Printexc.raw_backtrace }

let rec record failures idx exn bt =
  let cur = Atomic.get failures in
  let better = match cur with None -> true | Some f -> idx < f.f_index in
  if better then
    let next = Some { f_index = idx; f_exn = exn; f_bt = bt } in
    if not (Atomic.compare_and_set failures cur next) then
      record failures idx exn bt

let init ?jobs n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if jobs <= 1 || n <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failures = Atomic.make None in
    (* Small chunks keep the domains balanced when item costs are
       skewed (a handful of hot type keys dominate derivation). *)
    let chunk = max 1 (n / (jobs * 8)) in
    let workers = min jobs n in
    (* Per-worker task tallies, each slot private to one worker until
       the joins below publish them. *)
    let done_by = Array.make workers 0 in
    let worker w =
      let t0 = if Obs.enabled () then Obs.Clock.wall () else 0. in
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n then continue := false
        else begin
          Obs.incr c_chunks;
          for i = start to min (start + chunk) n - 1 do
            (match f i with
            | v -> results.(i) <- Some v
            | exception exn ->
                record failures i exn (Printexc.get_raw_backtrace ()));
            done_by.(w) <- done_by.(w) + 1
          done
        end
      done;
      if Obs.enabled () then begin
        Obs.observe h_worker_tasks (float_of_int done_by.(w));
        Obs.observe h_worker_ms ((Obs.Clock.wall () -. t0) *. 1000.)
      end
    in
    Obs.incr c_runs;
    Obs.add c_tasks n;
    let domains =
      Array.init (workers - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    Array.iter Domain.join domains;
    if Obs.enabled () then begin
      (* Spread between the busiest and laziest worker, as a fraction
         of a perfectly even share: 0 = balanced, 1 = one worker did a
         full share more than another. *)
      let mx = Array.fold_left max 0 done_by
      and mn = Array.fold_left min max_int done_by in
      let share = float_of_int n /. float_of_int workers in
      if share > 0. then
        Obs.set_gauge g_imbalance (float_of_int (mx - mn) /. share)
    end;
    match Atomic.get failures with
    | Some f -> Printexc.raise_with_backtrace f.f_exn f.f_bt
    | None ->
        Array.map
          (function Some v -> v | None -> assert false (* all chunks ran *))
          results
  end

let map_array ?jobs f items = init ?jobs (Array.length items) (fun i -> f items.(i))

let map ?jobs f items =
  Array.to_list (map_array ?jobs f (Array.of_list items))

let mapi ?jobs f items =
  let arr = Array.of_list items in
  Array.to_list (init ?jobs (Array.length arr) (fun i -> f i arr.(i)))

let concat_map ?jobs f items = List.concat (map ?jobs f items)

(* ---- Detached jobs ------------------------------------------------- *)

let c_jobs = Obs.counter "pool.jobs"

(* The result crosses domains through the atomic cell (set before the
   domain terminates), so [poll] never touches the domain handle; the
   handle is only consumed by the one permitted [await]. *)
type 'a job = {
  j_cell : ('a, exn) result option Atomic.t;
  j_domain : unit Domain.t;
  j_reaped : bool Atomic.t;
}

let spawn f =
  Obs.incr c_jobs;
  let cell = Atomic.make None in
  let domain =
    Domain.spawn (fun () ->
        let r = match f () with v -> Ok v | exception exn -> Error exn in
        Atomic.set cell (Some r))
  in
  { j_cell = cell; j_domain = domain; j_reaped = Atomic.make false }

let poll j = Atomic.get j.j_cell

let await j =
  if not (Atomic.compare_and_set j.j_reaped false true) then
    invalid_arg "Pool.await: job already awaited";
  Domain.join j.j_domain;
  match Atomic.get j.j_cell with
  | Some r -> r
  | None -> assert false (* the domain sets the cell before exiting *)
