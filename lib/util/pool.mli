(** A fixed-size domain work-pool for embarrassingly parallel analysis
    phases.

    Work items are distributed over a fixed number of OCaml 5 domains
    through a chunked atomic work queue; results are collected into the
    input order, so for a pure worker function the output is identical
    to the sequential map regardless of the domain count or scheduling.

    Exception semantics match the sequential path: every item is
    attempted, failures are recorded per item, and after all domains
    join the exception of the {e lowest} failing index is re-raised with
    its original backtrace — exactly the exception a plain [List.map]
    would have raised first.

    Workers run concurrently in shared memory: they must not mutate
    shared state. The analysis pipeline guarantees this by sealing the
    trace store ({!Lockdoc_db.Store.seal} — but see that module) before
    fanning out. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to [[1, 64]]. *)

val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [Array.init n f] evaluated on [jobs] domains
    (the calling domain included). [jobs] defaults to {!default_jobs};
    [jobs <= 1] or [n <= 1] runs sequentially on the calling domain
    without spawning. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map], order preserved. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Parallel [List.mapi], order preserved. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], order preserved. *)

val concat_map : ?jobs:int -> ('a -> 'b list) -> 'a list -> 'b list
(** Parallel [List.concat_map]: the per-item lists are concatenated in
    input order. *)

(** {2 Detached jobs}

    One-shot background work on its own domain, for callers that need
    to keep serving while an analysis runs — the serve daemon seals
    sessions this way. Unlike the map family above there is no queue:
    one [spawn] is one domain, and the caller owns its lifecycle. *)

type 'a job
(** A computation running (or finished) on a dedicated domain. *)

val spawn : (unit -> 'a) -> 'a job
(** Start [f] on a fresh domain immediately. The job captures a normal
    return as [Ok] and any exception as [Error] — nothing escapes onto
    the spawning domain until {!await}. *)

val poll : 'a job -> ('a, exn) result option
(** Non-blocking completion check: [None] while the job still runs.
    A [Some] result does not reap the domain — call {!await} (which is
    then immediate) exactly once per job to release it. *)

val await : 'a job -> ('a, exn) result
(** Join the job's domain and return its outcome. Must be called
    exactly once per job; a second call raises [Invalid_argument]. *)
