(** A fixed-size domain work-pool for embarrassingly parallel analysis
    phases.

    Work items are distributed over a fixed number of OCaml 5 domains
    through a chunked atomic work queue; results are collected into the
    input order, so for a pure worker function the output is identical
    to the sequential map regardless of the domain count or scheduling.

    Exception semantics match the sequential path: every item is
    attempted, failures are recorded per item, and after all domains
    join the exception of the {e lowest} failing index is re-raised with
    its original backtrace — exactly the exception a plain [List.map]
    would have raised first.

    Workers run concurrently in shared memory: they must not mutate
    shared state. The analysis pipeline guarantees this by sealing the
    trace store ({!Lockdoc_db.Store.seal} — but see that module) before
    fanning out. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to [[1, 64]]. *)

val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [Array.init n f] evaluated on [jobs] domains
    (the calling domain included). [jobs] defaults to {!default_jobs};
    [jobs <= 1] or [n <= 1] runs sequentially on the calling domain
    without spawning. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map], order preserved. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Parallel [List.mapi], order preserved. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], order preserved. *)

val concat_map : ?jobs:int -> ('a -> 'b list) -> 'a list -> 'b list
(** Parallel [List.concat_map]: the per-item lists are concatenated in
    input order. *)
