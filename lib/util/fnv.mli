(** Toolchain-stable 32-bit FNV-1a string hash.

    Used wherever a "deterministic" value is derived from a name and
    must not depend on the OCaml version (unlike [Hashtbl.hash]).
    Reference vectors: [fnv1a32 "" = 0x811c9dc5],
    [fnv1a32 "a" = 0xe40c292c], [fnv1a32 "foobar" = 0xbf9cf968]. *)

val fnv1a32 : string -> int
(** Always in [0, 0xFFFFFFFF]. *)
