(* Checked numeric parsing for command-line flags.

   [int_of_string] raises a bare [Failure "int_of_string"], which the
   CLI used to surface as an uncaught exception with a backtrace. These
   parsers return a one-line diagnostic instead, and encode the
   positivity requirements (-j 0 domains is meaningless, a checkpoint
   period of 0 would checkpoint forever) at the parsing boundary. *)

let int_arg s =
  match int_of_string_opt (String.trim s) with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "expected an integer, got %S" s)

let positive s =
  match int_arg s with
  | Error _ as e -> e
  | Ok n when n <= 0 ->
      Error (Printf.sprintf "expected a positive integer, got %d" n)
  | Ok n -> Ok n

let non_negative s =
  match int_arg s with
  | Error _ as e -> e
  | Ok n when n < 0 ->
      Error (Printf.sprintf "expected a non-negative integer, got %d" n)
  | Ok n -> Ok n

let fraction s =
  match float_of_string_opt (String.trim s) with
  | None -> Error (Printf.sprintf "expected a number, got %S" s)
  | Some f when not (Float.is_finite f) || f < 0. || f > 1. ->
      Error (Printf.sprintf "expected a fraction in [0, 1], got %s" s)
  | Some f -> Ok f

let positive_float s =
  match float_of_string_opt (String.trim s) with
  | None -> Error (Printf.sprintf "expected a number, got %S" s)
  | Some f when (not (Float.is_finite f)) || f <= 0. ->
      Error (Printf.sprintf "expected a positive number, got %s" s)
  | Some f -> Ok f
