let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let percentage part whole =
  if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

let percentile p xs =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (ceil (p *. float_of_int n)) in
      let rank = max 1 (min n rank) in
      List.nth sorted (rank - 1)

let ratio a b = if b = 0 then 0. else float_of_int a /. float_of_int b

type counter = (string, int) Hashtbl.t

let counter () = Hashtbl.create 16

let add c key n =
  let cur = Option.value ~default:0 (Hashtbl.find_opt c key) in
  Hashtbl.replace c key (cur + n)

let incr c key = add c key 1

let count c key = Option.value ~default:0 (Hashtbl.find_opt c key)

let total c = Hashtbl.fold (fun _ n acc -> acc + n) c 0

let to_alist c =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) c []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
