(** Plain-text table rendering for the experiment reports.

    All experiment tables (the paper's Tab. 1–8 and figure series) are
    printed through this module so reports share one layout. *)

type align = Left | Right

type t

val create : header:string list -> t
(** New table with the given column headers. Column count is fixed by the
    header. *)

val set_align : t -> align list -> unit
(** Per-column alignment; default is [Left] everywhere. The list length must
    equal the column count. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] if the width differs from the
    header. *)

val add_rule : t -> unit
(** Append a horizontal separator line. *)

val render : t -> string
(** Render with column padding, a header rule, and a surrounding border. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
