type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let of_int seed = create ~seed:(Int64.of_int seed)

let copy t = { state = t.state }

(* splitmix64 finaliser: Stafford's mix13 constants. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  create ~seed:(mix seed)

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  assert (total > 0);
  let roll = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.weighted: empty choice list"
    | (w, x) :: rest -> if roll < acc + w then x else go (acc + w) rest
  in
  go 0 choices
