(* 32-bit FNV-1a, pinned by golden tests.

   [Hashtbl.hash] is explicitly unspecified across OCaml versions and
   flambda configurations, so anything derived from it (the simulated
   kernel's [s_magic] values used to be) silently varies between
   toolchains and breaks "same seed, same trace" reproducibility. This
   implementation is the reference FNV-1a: offset basis 0x811c9dc5,
   prime 0x01000193, masked to 32 bits after every multiply. *)

let offset_basis = 0x811c9dc5
let prime = 0x01000193

let fnv1a32 s =
  let h = ref offset_basis in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * prime land 0xFFFFFFFF)
    s;
  !h
