(** Small summary-statistics helpers used by experiments and benches. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val percentage : int -> int -> float
(** [percentage part whole] is [100 * part / whole] as a float; 0. when
    [whole = 0]. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [\[0,1\]], nearest-rank on the sorted list.
    Raises [Invalid_argument] on the empty list. *)

val ratio : int -> int -> float
(** [ratio a b] is [a / b] as float; 0. when [b = 0]. *)

type counter
(** A string-keyed tally. *)

val counter : unit -> counter
val incr : counter -> string -> unit
val add : counter -> string -> int -> unit
val count : counter -> string -> int
val total : counter -> int
val to_alist : counter -> (string * int) list
(** Sorted by key. *)
