(* OCaml ints are 63-bit; [lsr] gives the logical shift of that bit
   pattern, so the encoding below is a bijection on all of [int],
   including min_int/max_int. 63 bits / 7 bits-per-byte = exactly 9
   bytes worst case; a 10th continuation byte is an overlong encoding
   and rejected (canonicity matters: the codec round-trip tests compare
   re-encoded bytes for identity). *)

let zigzag n = (n lsl 1) lxor (n asr 62)

let unzigzag u = (u lsr 1) lxor (- (u land 1))

let write_uint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let write_int buf n = write_uint buf (zigzag n)

let read_uint s pos =
  let len = String.length s in
  let rec go acc shift pos =
    if pos >= len then failwith "varint: truncated"
    else if shift > 56 then failwith "varint: overlong encoding"
    else
      let b = Char.code s.[pos] in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then (acc, pos + 1) else go acc (shift + 7) (pos + 1)
  in
  go 0 0 pos

let read_int s pos =
  let u, next = read_uint s pos in
  (unzigzag u, next)
