module Import = Lockdoc_db.Import
module Store = Lockdoc_db.Store
module Schema = Lockdoc_db.Schema
module Event = Lockdoc_trace.Event
module Dataset = Lockdoc_core.Dataset
module Rule = Lockdoc_core.Rule
module Lockdesc = Lockdoc_core.Lockdesc
module Hypothesis = Lockdoc_core.Hypothesis
module Selection = Lockdoc_core.Selection
module Derivator = Lockdoc_core.Derivator
module Pool = Lockdoc_util.Pool
module Obs = Lockdoc_obs.Obs

let c_absorbed = Obs.counter "stream.online.accesses"
let c_flips = Obs.counter "stream.online.flips"
let c_freezes = Obs.counter "stream.online.freezes"

(* One observation cell: the unit the batch dataset folds accesses
   into, keyed (allocation, member, transaction) — or the access's own
   id for lock-free accesses, which are singletons. The lock list is
   fixed at creation: every access folded into the cell shares the
   transaction, and {!Dataset.locks_of_txn} reads only immutable store
   rows, so computing it at first-access time equals computing it at
   batch dataset-build time. Only the write-over-read kind can change
   (R -> W, never back). *)
type cell = {
  c_member : string;
  c_locks : Lockdesc.t list;
  mutable c_kind : Rule.access;
  mutable c_rev_accesses : int list;
}

type counter = { mutable sa : int; mutable contrib : int }
(* [sa]: cells in the group complying with the rule — maintained for
   every entry, including those with [contrib = 0], so a rule that
   loses its last generating cell (an R-group cell flipping to W) and
   later regains one still carries the correct support.
   [contrib]: cells currently in the group whose lock list generates
   the rule as one of its ordered subsequences. [contrib > 0] is
   exactly "the rule is in the batch candidate set of this group". *)

type group = {
  mutable g_cells : cell list;  (* unordered; order comes from [order] *)
  g_rules : (Rule.t, counter) Hashtbl.t;
}

type t = {
  eng : Import.engine;
  st : Store.t;
  cells : (int * string * int, cell) Hashtbl.t;
  order : (string, cell list ref) Hashtbl.t;
      (* type key -> cells, newest first (reversed first-access order) *)
  groups : (string * string * Rule.access, group) Hashtbl.t;
  mutable seen : int;  (* access rows absorbed so far *)
}

let create ?filter ?irq_mode ?mode layouts =
  let eng = Import.engine ?filter ?irq_mode ?mode layouts in
  {
    eng;
    st = Import.engine_store eng;
    cells = Hashtbl.create 1024;
    order = Hashtbl.create 32;
    groups = Hashtbl.create 64;
    seen = Store.n_accesses (Import.engine_store eng);
  }

let engine t = t.eng
let store t = t.st
let position t = Import.position t.eng
let stats t = Import.stats t.eng

let group_of t key member kind =
  let gkey = (key, member, kind) in
  match Hashtbl.find_opt t.groups gkey with
  | Some g -> g
  | None ->
      let g = { g_cells = []; g_rules = Hashtbl.create 16 } in
      Hashtbl.replace t.groups gkey g;
      g

let group_add g cell =
  let held = cell.c_locks in
  (* Existing rules first: one more cell may comply with them. Then put
     the cell in so that brand-new rules compute their support over the
     full group, the new cell included (it complies with every
     subsequence of its own locks by construction). *)
  Hashtbl.iter
    (fun rule c -> if Rule.complies ~rule ~held then c.sa <- c.sa + 1)
    g.g_rules;
  g.g_cells <- cell :: g.g_cells;
  List.iter
    (fun rule ->
      match Hashtbl.find_opt g.g_rules rule with
      | Some c -> c.contrib <- c.contrib + 1
      | None ->
          let sa =
            List.fold_left
              (fun acc other ->
                if Rule.complies ~rule ~held:other.c_locks then acc + 1
                else acc)
              0 g.g_cells
          in
          Hashtbl.replace g.g_rules rule { sa; contrib = 1 })
    (Rule.subsequences held)

let group_remove g cell =
  let held = cell.c_locks in
  g.g_cells <- List.filter (fun c -> c != cell) g.g_cells;
  Hashtbl.iter
    (fun rule c -> if Rule.complies ~rule ~held then c.sa <- c.sa - 1)
    g.g_rules;
  List.iter
    (fun rule ->
      match Hashtbl.find_opt g.g_rules rule with
      | Some c -> c.contrib <- c.contrib - 1
      | None -> assert false (* inserted when the cell joined *))
    (Rule.subsequences held)

let absorb t (a : Schema.access) =
  Obs.incr c_absorbed;
  let alloc = a.Schema.ac_alloc in
  let al = Store.allocation t.st alloc in
  let key = Schema.type_key (Store.data_type t.st al.Schema.al_type) al in
  let member = a.Schema.ac_member in
  let kind =
    match a.Schema.ac_kind with Event.Read -> Rule.R | Event.Write -> Rule.W
  in
  let ckey =
    match a.Schema.ac_txn with
    | Some txn -> (alloc, member, txn)
    | None -> (alloc, member, -1 - a.Schema.ac_id)
  in
  match Hashtbl.find_opt t.cells ckey with
  | None ->
      let locks =
        match a.Schema.ac_txn with
        | Some txn -> Dataset.locks_of_txn t.st ~accessed_alloc:alloc txn
        | None -> []
      in
      let cell =
        {
          c_member = member;
          c_locks = locks;
          c_kind = kind;
          c_rev_accesses = [ a.Schema.ac_id ];
        }
      in
      Hashtbl.replace t.cells ckey cell;
      (match Hashtbl.find_opt t.order key with
      | Some l -> l := cell :: !l
      | None -> Hashtbl.replace t.order key (ref [ cell ]));
      group_add (group_of t key member kind) cell
  | Some cell ->
      cell.c_rev_accesses <- a.Schema.ac_id :: cell.c_rev_accesses;
      (* Write-over-read: a single write makes the observation a write.
         The cell moves between groups; its position in the type key's
         first-access order is unchanged, matching the batch fold. *)
      if cell.c_kind = Rule.R && kind = Rule.W then begin
        Obs.incr c_flips;
        group_remove (group_of t key member Rule.R) cell;
        cell.c_kind <- Rule.W;
        group_add (group_of t key member Rule.W) cell
      end

let drain t =
  let n = Store.n_accesses t.st in
  while t.seen < n do
    absorb t (Store.access t.st t.seen);
    t.seen <- t.seen + 1
  done

let feed t ev =
  Import.feed t.eng ev;
  drain t

let finalize t =
  let stats = Import.finalize t.eng in
  drain t;
  stats

let dataset t =
  let obs_of cell =
    {
      Dataset.o_member = cell.c_member;
      o_kind = cell.c_kind;
      o_locks = cell.c_locks;
      o_accesses = List.rev cell.c_rev_accesses;
    }
  in
  let assoc =
    Hashtbl.fold
      (fun key cells acc -> (key, List.rev_map obs_of !cells) :: acc)
      t.order []
  in
  Dataset.of_groups t.st assoc

let freeze ?strategy ?(tac = Derivator.default_tac) ?(jobs = 1) t =
  Obs.incr c_freezes;
  let dataset = dataset t in
  let mined =
    Pool.map ~jobs
      (fun (key, member, kind) ->
        let observations = Dataset.by_member dataset key ~member ~kind in
        let total = List.length observations in
        let scored =
          match Hashtbl.find_opt t.groups (key, member, kind) with
          | None -> []
          | Some g ->
              Hashtbl.fold
                (fun rule c acc ->
                  if c.contrib > 0 then
                    {
                      Hypothesis.rule;
                      support =
                        {
                          Hypothesis.sa = c.sa;
                          sr =
                            (if total = 0 then 0.
                             else float_of_int c.sa /. float_of_int total);
                        };
                    }
                    :: acc
                  else acc)
                g.g_rules []
        in
        (* [sort_scored] is a total order over distinct rules, so the
           arbitrary Hashtbl fold order above sorts to exactly the list
           [Hypothesis.enumerate] would have produced. *)
        let hypotheses = Hypothesis.sort_scored scored in
        let winner = Selection.select ?strategy ~tac hypotheses in
        {
          Derivator.m_type = key;
          m_member = member;
          m_kind = kind;
          m_total = total;
          m_winner = winner.Hypothesis.rule;
          m_support = winner.Hypothesis.support;
          m_hypotheses = hypotheses;
        })
      (Derivator.groups dataset)
  in
  (dataset, mined)
