module Event = Lockdoc_trace.Event
module Layout = Lockdoc_trace.Layout
module Srcloc = Lockdoc_trace.Srcloc
module Diag = Lockdoc_trace.Diag
module Trace = Lockdoc_trace.Trace
module Wal = Lockdoc_db.Wal
module Obs = Lockdoc_obs.Obs

let magic = "LDOCBIN1"

(* Same sanity bound as the WAL reader: a length field beyond this is
   framing damage, not a real segment. *)
let max_segment = 1 lsl 26

let default_segment_bytes = 64 * 1024

let c_segments = Obs.counter "stream.segments"
let c_events = Obs.counter "stream.events"
let c_recovered = Obs.counter "stream.recovered"

let is_binary s =
  let n = min (String.length s) (String.length magic) in
  n >= 4 && String.sub s 0 n = String.sub magic 0 n

let file_is_binary path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = min 8 (in_channel_length ic) in
          is_binary (really_input_string ic n))

(* Record opcodes. Interned strings carry explicit ids so that a
   skipped (corrupt) segment cannot shift the meaning of ids interned
   later — decoding degrades per-record instead of garbling the rest of
   the stream. *)
let op_intern = 0
let op_layout = 1
let op_alloc = 2
let op_free = 3
let op_acquire = 4
let op_release = 5
let op_mem = 6
let op_enter = 7
let op_exit = 8
let op_ctx = 9

let lock_kind_code = function
  | Event.Spinlock -> 0
  | Event.Rwlock -> 1
  | Event.Mutex -> 2
  | Event.Semaphore -> 3
  | Event.Rwsem -> 4
  | Event.Rcu -> 5
  | Event.Seqlock -> 6
  | Event.Pseudo -> 7

let lock_kind_of_code = function
  | 0 -> Event.Spinlock
  | 1 -> Event.Rwlock
  | 2 -> Event.Mutex
  | 3 -> Event.Semaphore
  | 4 -> Event.Rwsem
  | 5 -> Event.Rcu
  | 6 -> Event.Seqlock
  | 7 -> Event.Pseudo
  | c -> failwith (Printf.sprintf "bad lock kind code %d" c)

let ctx_code = function Event.Task -> 0 | Event.Softirq -> 1 | Event.Hardirq -> 2

let ctx_of_code = function
  | 0 -> Event.Task
  | 1 -> Event.Softirq
  | 2 -> Event.Hardirq
  | c -> failwith (Printf.sprintf "bad context code %d" c)

let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_int32_le b (Int32.of_int (Wal.crc32 payload));
  Buffer.add_string b payload;
  Buffer.contents b

(* ---- Encoder ------------------------------------------------------ *)

type encoder = {
  emit : string -> unit;
  segment_bytes : int;
  buf : Buffer.t;  (* payload of the segment being built *)
  strings : (string, int) Hashtbl.t;
  mutable next_string : int;
  (* Delta registers; reset at each segment boundary so segments are
     self-contained modulo the string table. *)
  mutable e_ptr : int;
  mutable e_lock : int;
  mutable e_line : int;
  mutable e_pid : int;
  mutable closed : bool;
}

let encoder ?(segment_bytes = default_segment_bytes) emit =
  emit magic;
  {
    emit;
    segment_bytes;
    buf = Buffer.create (segment_bytes + 1024);
    strings = Hashtbl.create 256;
    next_string = 0;
    e_ptr = 0;
    e_lock = 0;
    e_line = 0;
    e_pid = 0;
    closed = false;
  }

let reset_registers e =
  e.e_ptr <- 0;
  e.e_lock <- 0;
  e.e_line <- 0;
  e.e_pid <- 0

let rotate e =
  if Buffer.length e.buf > 0 then begin
    e.emit (frame (Buffer.contents e.buf));
    Buffer.clear e.buf;
    reset_registers e
  end

let guard_open e = if e.closed then invalid_arg "Codec: encoder is closed"

let intern e s =
  match Hashtbl.find_opt e.strings s with
  | Some id -> id
  | None ->
      let id = e.next_string in
      e.next_string <- id + 1;
      Hashtbl.replace e.strings s id;
      Varint.write_uint e.buf op_intern;
      Varint.write_uint e.buf id;
      Varint.write_uint e.buf (String.length s);
      Buffer.add_string e.buf s;
      id

let add_layout e layout =
  guard_open e;
  if Buffer.length e.buf >= e.segment_bytes then rotate e;
  let id = intern e (Layout.to_string layout) in
  Varint.write_uint e.buf op_layout;
  Varint.write_uint e.buf id

let add_event e ev =
  guard_open e;
  if Buffer.length e.buf >= e.segment_bytes then rotate e;
  let b = e.buf in
  (match ev with
  | Event.Alloc { ptr; size; data_type; subclass } ->
      (* Interning may append records; resolve ids before the opcode so
         the event record stays contiguous. *)
      let dt = intern e data_type in
      let sub = match subclass with None -> 0 | Some s -> intern e s + 1 in
      Varint.write_uint b op_alloc;
      Varint.write_int b (ptr - e.e_ptr);
      e.e_ptr <- ptr;
      Varint.write_uint b size;
      Varint.write_uint b dt;
      Varint.write_uint b sub
  | Event.Free { ptr } ->
      Varint.write_uint b op_free;
      Varint.write_int b (ptr - e.e_ptr);
      e.e_ptr <- ptr
  | Event.Lock_acquire { lock_ptr; kind; side; name; loc } ->
      let name_id = intern e name in
      let file_id = intern e loc.Srcloc.file in
      Varint.write_uint b op_acquire;
      Varint.write_int b (lock_ptr - e.e_lock);
      e.e_lock <- lock_ptr;
      Varint.write_uint b (lock_kind_code kind);
      Varint.write_uint b (match side with Event.Exclusive -> 0 | Event.Shared -> 1);
      Varint.write_uint b name_id;
      Varint.write_uint b file_id;
      Varint.write_int b (loc.Srcloc.line - e.e_line);
      e.e_line <- loc.Srcloc.line
  | Event.Lock_release { lock_ptr; loc } ->
      let file_id = intern e loc.Srcloc.file in
      Varint.write_uint b op_release;
      Varint.write_int b (lock_ptr - e.e_lock);
      e.e_lock <- lock_ptr;
      Varint.write_uint b file_id;
      Varint.write_int b (loc.Srcloc.line - e.e_line);
      e.e_line <- loc.Srcloc.line
  | Event.Mem_access { ptr; size; kind; loc } ->
      let file_id = intern e loc.Srcloc.file in
      Varint.write_uint b op_mem;
      Varint.write_int b (ptr - e.e_ptr);
      e.e_ptr <- ptr;
      Varint.write_uint b size;
      Varint.write_uint b (match kind with Event.Read -> 0 | Event.Write -> 1);
      Varint.write_uint b file_id;
      Varint.write_int b (loc.Srcloc.line - e.e_line);
      e.e_line <- loc.Srcloc.line
  | Event.Fun_enter { fn; loc } ->
      let fn_id = intern e fn in
      let file_id = intern e loc.Srcloc.file in
      Varint.write_uint b op_enter;
      Varint.write_uint b fn_id;
      Varint.write_uint b file_id;
      Varint.write_int b (loc.Srcloc.line - e.e_line);
      e.e_line <- loc.Srcloc.line
  | Event.Fun_exit { fn } ->
      let fn_id = intern e fn in
      Varint.write_uint b op_exit;
      Varint.write_uint b fn_id
  | Event.Ctx_switch { pid; kind } ->
      Varint.write_uint b op_ctx;
      Varint.write_int b (pid - e.e_pid);
      e.e_pid <- pid;
      Varint.write_uint b (ctx_code kind));
  Obs.incr c_events

let close_encoder e =
  guard_open e;
  rotate e;
  e.closed <- true

let encode_trace ?segment_bytes trace =
  let out = Buffer.create 4096 in
  let e = encoder ?segment_bytes (Buffer.add_string out) in
  List.iter (add_layout e) trace.Trace.layouts;
  Array.iter (add_event e) trace.Trace.events;
  close_encoder e;
  Buffer.contents out

(* ---- Decoder ------------------------------------------------------ *)

type decoder = {
  mode : Trace.mode;
  file : string option;
  mutable pending : string;  (* unconsumed input; valid from [off] *)
  mutable off : int;
  mutable seen_magic : bool;
  mutable dead : bool;  (* framing lost for good (bad magic / absurd length) *)
  table : (int, string) Hashtbl.t;
  mutable rev_events : Event.t list;  (* drained by [events] *)
  mutable rev_layouts : Layout.t list;
  mutable rev_diags : Diag.t list;
  mutable n_events : int;  (* total decoded, labels diagnostics *)
  mutable finished : bool;
}

let decoder ?(mode = Trace.Strict) ?file () =
  {
    mode;
    file;
    pending = "";
    off = 0;
    seen_magic = false;
    dead = false;
    table = Hashtbl.create 256;
    rev_events = [];
    rev_layouts = [];
    rev_diags = [];
    n_events = 0;
    finished = false;
  }

let report d kind msg =
  let diag = Diag.make ?file:d.file ~event:d.n_events kind msg in
  match d.mode with
  | Trace.Strict -> raise (Trace.Invalid diag)
  | Trace.Lenient ->
      Obs.incr c_recovered;
      d.rev_diags <- diag :: d.rev_diags

let resolve d id =
  match Hashtbl.find_opt d.table id with
  | Some s -> s
  | None -> failwith (Printf.sprintf "unknown string id %d" id)

(* Decode one segment payload. Returns normally even on damage: every
   anomaly is reported through [report] (which raises in Strict mode).
   Operand parse errors abandon the rest of the payload — without a
   valid varint there is no way to find the next record boundary —
   while string-resolution errors skip just the offending record. *)
let decode_payload d payload =
  let len = String.length payload in
  let pos = ref 0 in
  (* Per-segment delta registers, mirroring the encoder's reset. *)
  let r_ptr = ref 0 and r_lock = ref 0 and r_line = ref 0 and r_pid = ref 0 in
  let uint () =
    let v, next = Varint.read_uint payload !pos in
    pos := next;
    v
  in
  let int () =
    let v, next = Varint.read_int payload !pos in
    pos := next;
    v
  in
  let delta reg =
    let v = !reg + int () in
    reg := v;
    v
  in
  let loc_of (file_id, line) = Srcloc.make (resolve d file_id) line in
  let emit ev =
    d.rev_events <- ev :: d.rev_events;
    d.n_events <- d.n_events + 1;
    Obs.incr c_events
  in
  let stop = ref false in
  while (not !stop) && !pos < len do
    match uint () with
    | exception Failure msg ->
        report d Diag.Truncated_record ("segment record: " ^ msg);
        stop := true
    | op -> (
        (* Phase 1: parse operands and update registers (keeps later
           deltas meaningful even when this record is dropped). *)
        match
          match op with
          | op when op = op_intern ->
              let id = uint () in
              let n = uint () in
              if n < 0 || n > len - !pos then failwith "string length overruns segment";
              let s = String.sub payload !pos n in
              pos := !pos + n;
              `Intern (id, s)
          | op when op = op_layout -> `Layout (uint ())
          | op when op = op_alloc ->
              let ptr = delta r_ptr in
              let size = uint () in
              let dt = uint () in
              let sub = uint () in
              `Alloc (ptr, size, dt, sub)
          | op when op = op_free -> `Free (delta r_ptr)
          | op when op = op_acquire ->
              let ptr = delta r_lock in
              let kind = uint () in
              let side = uint () in
              let name = uint () in
              let file = uint () in
              let line = delta r_line in
              `Acquire (ptr, kind, side, name, (file, line))
          | op when op = op_release ->
              let ptr = delta r_lock in
              let file = uint () in
              let line = delta r_line in
              `Release (ptr, (file, line))
          | op when op = op_mem ->
              let ptr = delta r_ptr in
              let size = uint () in
              let kind = uint () in
              let file = uint () in
              let line = delta r_line in
              `Mem (ptr, size, kind, (file, line))
          | op when op = op_enter ->
              let fn = uint () in
              let file = uint () in
              let line = delta r_line in
              `Enter (fn, (file, line))
          | op when op = op_exit -> `Exit (uint ())
          | op when op = op_ctx ->
              let pid = delta r_pid in
              let kind = uint () in
              `Ctx (pid, kind)
          | op -> `Unknown op
        with
        | exception Failure msg ->
            report d Diag.Truncated_record ("segment record: " ^ msg);
            stop := true
        | `Unknown op ->
            (* Operand widths are unknowable: resynchronise at the next
               segment, not mid-payload. *)
            report d Diag.Unknown_tag
              (Printf.sprintf "unknown binary record opcode %d" op);
            stop := true
        | parsed -> (
            (* Phase 2: resolve interned strings and emit. A bad id (its
               intern record lived in a corrupt, skipped segment) loses
               only this record. *)
            match
              match parsed with
              | `Intern (id, s) -> Hashtbl.replace d.table id s
              | `Layout id ->
                  let l = Layout.of_string (resolve d id) in
                  d.rev_layouts <- l :: d.rev_layouts
              | `Alloc (ptr, size, dt, sub) ->
                  let subclass =
                    if sub = 0 then None else Some (resolve d (sub - 1))
                  in
                  emit
                    (Event.Alloc
                       { ptr; size; data_type = resolve d dt; subclass })
              | `Free ptr -> emit (Event.Free { ptr })
              | `Acquire (lock_ptr, kind, side, name, loc) ->
                  let side =
                    match side with
                    | 0 -> Event.Exclusive
                    | 1 -> Event.Shared
                    | c -> failwith (Printf.sprintf "bad side code %d" c)
                  in
                  emit
                    (Event.Lock_acquire
                       {
                         lock_ptr;
                         kind = lock_kind_of_code kind;
                         side;
                         name = resolve d name;
                         loc = loc_of loc;
                       })
              | `Release (lock_ptr, loc) ->
                  emit (Event.Lock_release { lock_ptr; loc = loc_of loc })
              | `Mem (ptr, size, kind, loc) ->
                  let kind =
                    match kind with
                    | 0 -> Event.Read
                    | 1 -> Event.Write
                    | c -> failwith (Printf.sprintf "bad access code %d" c)
                  in
                  emit (Event.Mem_access { ptr; size; kind; loc = loc_of loc })
              | `Enter (fn, loc) ->
                  emit
                    (Event.Fun_enter { fn = resolve d fn; loc = loc_of loc })
              | `Exit fn -> emit (Event.Fun_exit { fn = resolve d fn })
              | `Ctx (pid, kind) ->
                  emit (Event.Ctx_switch { pid; kind = ctx_of_code kind })
              | `Unknown _ -> assert false (* handled above *)
            with
            | () -> ()
            | exception Failure msg ->
                report d Diag.Malformed_field ("binary record: " ^ msg)))
  done

let get_u32 s pos =
  Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF

let feed d chunk =
  if d.finished then invalid_arg "Codec: decoder is finished";
  if d.dead then ()  (* framing is lost; drop everything after the diag *)
  else begin
    d.pending <-
      (if d.off = 0 then d.pending ^ chunk
       else String.sub d.pending d.off (String.length d.pending - d.off) ^ chunk);
    d.off <- 0;
    let total = String.length d.pending in
    let continue = ref true in
    if not d.seen_magic then begin
      if total - d.off >= String.length magic then
        if String.sub d.pending d.off (String.length magic) = magic then begin
          d.seen_magic <- true;
          d.off <- d.off + String.length magic
        end
        else begin
          d.dead <- true;
          continue := false;
          report d Diag.Malformed_field
            "not a LDOCBIN1 binary trace (bad magic)"
        end
      else continue := false
    end;
    while !continue && (not d.dead) && total - d.off >= 8 do
      let seg_len = Int32.to_int (String.get_int32_le d.pending d.off) in
      let crc = get_u32 d.pending (d.off + 4) in
      if seg_len < 0 || seg_len > max_segment then begin
        d.dead <- true;
        report d Diag.Truncated_record
          (Printf.sprintf "absurd segment length %d: torn or garbled frame"
             seg_len)
      end
      else if total - d.off - 8 < seg_len then continue := false
      else begin
        let payload = String.sub d.pending (d.off + 8) seg_len in
        d.off <- d.off + 8 + seg_len;
        if Wal.crc32 payload <> crc then
          report d Diag.Malformed_field
            (Printf.sprintf "segment CRC mismatch (%d bytes skipped)" seg_len)
        else begin
          Obs.incr c_segments;
          decode_payload d payload
        end
      end
    done
  end

let events d =
  let evs = List.rev d.rev_events in
  d.rev_events <- [];
  evs

let layouts d = List.rev d.rev_layouts

let finish d =
  if not d.finished then begin
    d.finished <- true;
    let remaining = String.length d.pending - d.off in
    if (not d.dead) && not d.seen_magic then
      report d Diag.Truncated_record
        (Printf.sprintf "binary trace ends before the magic (%d bytes)"
           remaining)
    else if (not d.dead) && remaining > 0 then
      report d Diag.Truncated_record
        (Printf.sprintf "torn tail: %d trailing bytes are not a whole segment"
           remaining)
  end;
  List.rev d.rev_diags

let decode_string ?mode ?file s =
  let d = decoder ?mode ?file () in
  feed d s;
  let diags = finish d in
  let events = events d in
  ( { Trace.layouts = layouts d; Trace.events = Array.of_list events }, diags )
