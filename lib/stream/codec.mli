(** The compact binary trace format ("LDOCBIN1").

    A packed trace is the 8-byte magic followed by CRC-protected
    segments in the WAL record framing
    ([len:int32 LE][crc32:int32 LE][payload], {!Lockdoc_db.Wal.crc32}).
    A segment payload is a run of varint records: string-table entries
    (explicit ids, so a lost segment cannot shift later ids), layout
    rows, and events with delta-compressed pointers/lines and interned
    names. Delta registers reset at each segment boundary, so every
    segment decodes independently given the string table.

    The decoder is incremental (feed arbitrary chunks) and never trusts
    bytes past the first sign of damage inside a segment; in [Lenient]
    mode a corrupt segment is reported as a {!Lockdoc_trace.Diag.t} and
    skipped, and a torn tail is reported at {!finish} — the same
    contract as the text reader {!Lockdoc_trace.Trace.read_lines}. *)

val magic : string
(** 8 bytes, ["LDOCBIN1"]. *)

val is_binary : string -> bool
(** Does this byte string start with (a prefix of at least 4 bytes of)
    the magic? Used by the CLI to auto-detect packed traces. *)

val file_is_binary : string -> bool
(** {!is_binary} on the first bytes of a file; false on read errors. *)

(** {2 Encoding} *)

type encoder

val encoder : ?segment_bytes:int -> (string -> unit) -> encoder
(** [encoder emit] starts a stream: [emit] receives the magic
    immediately and one framed segment at each rotation.
    [segment_bytes] (default 64 KiB) bounds payload size; rotation
    happens at event boundaries only. *)

val add_layout : encoder -> Lockdoc_trace.Layout.t -> unit

val add_event : encoder -> Lockdoc_trace.Event.t -> unit

val close_encoder : encoder -> unit
(** Flush the final partial segment. The encoder must not be used
    afterwards. *)

val encode_trace : ?segment_bytes:int -> Lockdoc_trace.Trace.t -> string
(** Whole-trace convenience: layouts first, then every event. *)

(** {2 Decoding} *)

type decoder

val decoder :
  ?mode:Lockdoc_trace.Trace.mode -> ?file:string -> unit -> decoder
(** Fresh decoder. [Strict] (default) raises
    {!Lockdoc_trace.Trace.Invalid} at the first anomaly; [Lenient]
    collects diagnostics and keeps going. [file] labels diagnostics. *)

val feed : decoder -> string -> unit
(** Consume one chunk (any framing). Decoded events accumulate until
    drained with {!events}. *)

val events : decoder -> Lockdoc_trace.Event.t list
(** Drain the events decoded since the last call, in stream order. *)

val layouts : decoder -> Lockdoc_trace.Layout.t list
(** All layout rows seen so far, in stream order. *)

val finish : decoder -> Lockdoc_trace.Diag.t list
(** Declare end of input: reports a torn tail if bytes remain
    unconsumed, and returns every diagnostic in stream order. *)

val decode_string :
  ?mode:Lockdoc_trace.Trace.mode ->
  ?file:string ->
  string ->
  Lockdoc_trace.Trace.t * Lockdoc_trace.Diag.t list
(** Whole-buffer convenience mirroring
    {!Lockdoc_trace.Trace.read_lines}. *)
