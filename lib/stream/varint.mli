(** LEB128 variable-length integers over OCaml's native [int].

    The unsigned form serialises the 63-bit two's-complement bit
    pattern, 7 bits per byte, least significant group first; the high
    bit of each byte marks continuation. Every [int] fits in at most 9
    bytes. The signed form zigzag-maps the value first so that small
    magnitudes of either sign stay short — which is what makes the
    delta fields of the binary trace format compact. *)

val zigzag : int -> int
(** [zigzag n] interleaves negative and positive values:
    0, -1, 1, -2, … become 0, 1, 2, 3, …. Total bijection on [int]. *)

val unzigzag : int -> int
(** Inverse of {!zigzag}. *)

val write_uint : Buffer.t -> int -> unit
(** Append the unsigned encoding of [n]'s bit pattern. Negative
    arguments round-trip (they are the top of the unsigned range). *)

val write_int : Buffer.t -> int -> unit
(** [write_uint buf (zigzag n)]. *)

val read_uint : string -> int -> int * int
(** [read_uint s pos] decodes one unsigned varint at [pos]; returns
    [(value, next_pos)]. Raises [Failure] on truncation (the string
    ends mid-varint) or an overlong encoding (more than 9 bytes). *)

val read_int : string -> int -> int * int
(** Signed counterpart of {!read_uint} (zigzag-decoded). *)
