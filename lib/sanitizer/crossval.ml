(* Cross-validation of the sanitizer against the seeded ground truth
   and against LockDoc's own mined-rule violation scanner.

   The seeded bugs (Seeded in the simulator) are the known-answer set:
   precision and recall are exact, not estimated. Separately, each
   lockset race is checked for corroboration by the mined-rule
   violations — the paper's phase-❸ detector working from derived
   rules rather than from lockset intersection. Agreement between two
   detectors with different theories of "protected" is the actual
   cross-validation signal. *)

module Violation = Lockdoc_core.Violation

type score = {
  cv_tp : int;
  cv_fp : int;
  cv_fn : int;
  cv_precision : float;
  cv_recall : float;
  cv_spurious : string list;  (** found but not seeded (fp) *)
  cv_missed : string list;  (** seeded but not found (fn) *)
}

type t = {
  races : score;
  irq : score;
  corroborated : (string * bool) list;
      (** per lockset race "type.member": also flagged by the
          mined-rule violation scanner? *)
}

let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den

let score ~found ~truth =
  let found = List.sort_uniq compare found in
  let truth = List.sort_uniq compare truth in
  let tp = List.filter (fun f -> List.mem f truth) found in
  let cv_spurious = List.filter (fun f -> not (List.mem f truth)) found in
  let cv_missed = List.filter (fun t -> not (List.mem t found)) truth in
  let cv_tp = List.length tp in
  let cv_fp = List.length cv_spurious in
  let cv_fn = List.length cv_missed in
  {
    cv_tp;
    cv_fp;
    cv_fn;
    cv_precision = ratio cv_tp (cv_tp + cv_fp);
    cv_recall = ratio cv_tp (cv_tp + cv_fn);
    cv_spurious;
    cv_missed;
  }

let race_id (ty, member) = ty ^ "." ^ member

let evaluate ~(races : Lockset.race list) ~(irq : Irq.report)
    ~(truth : Lockdoc_ksim.Seeded.truth) ~(violations : Violation.violation list)
    =
  let found_races =
    List.map (fun (r : Lockset.race) -> race_id (r.Lockset.r_type, r.Lockset.r_member)) races
  in
  let found_irq =
    List.map (fun (iu : Irq.unsafe) -> iu.Irq.iu_class) irq.Irq.i_unsafe
  in
  let corroborated =
    List.map
      (fun (r : Lockset.race) ->
        let hit =
          List.exists
            (fun (v : Violation.violation) ->
              v.Violation.v_type = r.Lockset.r_type
              && v.Violation.v_member = r.Lockset.r_member)
            violations
        in
        (race_id (r.Lockset.r_type, r.Lockset.r_member), hit))
      races
  in
  {
    races =
      score ~found:found_races
        ~truth:(List.map race_id truth.Lockdoc_ksim.Seeded.t_races);
    irq = score ~found:found_irq ~truth:truth.Lockdoc_ksim.Seeded.t_irq_unsafe;
    corroborated;
  }

let render_score name s =
  Printf.sprintf
    "  %-6s tp %d  fp %d  fn %d  precision %.2f  recall %.2f%s%s\n" name
    s.cv_tp s.cv_fp s.cv_fn s.cv_precision s.cv_recall
    (if s.cv_spurious = [] then ""
     else "  spurious: " ^ String.concat ", " s.cv_spurious)
    (if s.cv_missed = [] then ""
     else "  missed: " ^ String.concat ", " s.cv_missed)

let render t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "cross-validation vs seeded ground truth:\n";
  Buffer.add_string buf (render_score "races" t.races);
  Buffer.add_string buf (render_score "irq" t.irq);
  List.iter
    (fun (id, hit) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s %s by the mined-rule violation scanner\n" id
           (if hit then "corroborated" else "not corroborated")))
    t.corroborated;
  Buffer.contents buf
