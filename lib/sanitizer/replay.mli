(** Counterexample replay: directed-schedule confirmation of sanitizer
    and violation findings (the precision half of the pipeline).

    A lockset race or rule violation is a claim; this engine re-executes
    the originating workload under a programmable schedule controller
    ({!Lockdoc_ksim.Kernel.control}) and either exhibits a concrete bad
    interleaving — a two-flow witness with task ids, source locations
    and the locks held at every step — or refutes the finding with a
    machine-checked reason. The schedule search arms a breakpoint at
    successive occurrences of the suspicious access, forces a
    preemption there, and runs the other flows in a bounded window
    looking for a conflicting access with no common protection; rounds
    retry missed windows with doubled windows and shifted arming
    strides (seeded, deterministic). Irq-unsafety findings are replayed
    by raising the timer interrupt at the moment the flagged lock class
    is held with interrupts enabled and catching the handler's
    in-atomic deadlock.

    Directed execution is sequential (the simulator has per-run global
    state; see DESIGN 5d) — the [jobs] fan-out parallelises verdict
    synthesis over findings, and the report is bit-identical for every
    job count. *)

type reason =
  | Caller_holds_lock of string
      (** every conflicting access observed was ordered by this lock
          class (or the access itself sat under it, preemption off) *)
  | Rcu_read_section
      (** the flagged reads sit inside RCU/seqlock read sections:
          publish/retry protocols, not lock protection *)
  | Quiescent_init_teardown
      (** every occurrence ran single-threaded (no other live flow, or
          under a shutdown entry point) *)
  | Budget_exhausted
      (** the bounded schedule search found neither a conflicting
          interleaving nor a structural excuse *)

type step = {
  st_pid : int;  (** -1 for interrupt context *)
  st_flow : string;  (** task (or handler) name *)
  st_action : string;
  st_loc : Lockdoc_trace.Srcloc.t;
  st_held : string list;  (** lock classes held by that flow *)
}
(** One step of a witnessed interleaving. *)

type verdict =
  | Confirmed of step list  (** the serialized interleaving witness *)
  | Refuted of reason

type target =
  | Race_target of { rt_type : string; rt_member : string }
      (** [rt_type] is a store type key, e.g. "super_block" or
          "inode:ext4" *)
  | Irq_target of { it_class : string }

val target_id : target -> string
(** "type.member" for races, the class name for irq targets. *)

type outcome = {
  o_target : target;
  o_sources : string list;
      (** which detectors flagged it: "lockset", "violation", "irq" *)
  o_verdict : verdict;
  o_schedules : int;  (** directed schedules explored for this target *)
}

type report = {
  r_workload : string;
  r_seed : int;
  r_scale : int;
  r_bugs : bool;
  r_budget : int;
  r_events : int;  (** events in the analysed sanitizer trace *)
  r_outcomes : outcome list;
  r_schedules : int;  (** directed schedules explored in total *)
  r_races_pre : Crossval.score;  (** all race findings vs seeded truth *)
  r_races_post : Crossval.score;  (** confirmed-only vs seeded truth *)
  r_irq_pre : Crossval.score;
  r_irq_post : Crossval.score;
}

val search :
  ?seed:int ->
  ?scale:int ->
  ?budget:int ->
  bugs:bool ->
  workload:string ->
  target list ->
  (target * verdict * int) list * int
(** The directed-execution phase alone: replay the given targets
    against the workload and return, in input order, each target's
    verdict and schedules explored, plus the total. Sequential and
    deterministic for a fixed (workload, seed, scale, budget, bugs).
    A target whose access never executes terminates cleanly as
    [Refuted Budget_exhausted] with zero schedules. *)

val run :
  ?jobs:int ->
  ?seed:int ->
  ?scale:int ->
  ?budget:int ->
  bugs:bool ->
  string ->
  report
(** Full pipeline: generate the sanitizer trace, collect findings
    (lockset races, mined-rule violations, irq-unsafe classes), replay
    every finding, and score precision/recall before and after triage.
    [budget] (default 8) bounds directed schedules per finding per
    round. Raises [Invalid_arg] for workloads outside
    {!Lockdoc_ksim.Run.workload_names}. Bit-identical for every
    [jobs]. *)

val render : report -> string
(** Human-readable report: per-finding verdicts with witnesses or
    refutation reasons, then the pre/post-triage scores. *)

val to_json : report -> string
(** Machine-readable report ({!Lockdoc_obs.Json} encoding). *)

val verdict_to_json : verdict -> Lockdoc_obs.Json.t

val verdict_of_json : Lockdoc_obs.Json.t -> (verdict, string) result
(** Inverse of {!verdict_to_json}: [verdict_of_json (verdict_to_json v)]
    recovers [v] exactly (witness round-trip). *)
