(* Lockdep-style irq-safety analysis.

   The kernel emits synthetic pseudo-locks on hardirq/softirq entry and
   around local_irq/bh masking sections, and transactions record held
   locks in acquisition order, so each transaction's lock list is a
   little context diary: everything after the "hardirq" pseudo was
   acquired in hardirq context, everything before any
   hardirq/softirq/irqoff marker was acquired with interrupts enabled.
   (Under the importer's Inherit mode an interrupt transaction starts
   with the interrupted flow's locks — those precede the pseudo and are
   correctly attributed to process context.)

   A lock class is irq-unsafe when both signals are present somewhere
   in the trace: it is acquired in hardirq context, and it is also
   acquired (anywhere) with interrupts enabled — the interrupted-holder
   deadlock lockdep's in-irq checks exist for. On top of that, the
   acquisition-order graph yields in-irq ordering inversions: an edge
   L → M where L is hardirq-acquired and M is irq-unsafe means the
   handler path can wait on M while a preempted flow holds it. *)

module Store = Lockdoc_db.Store
module Schema = Lockdoc_db.Schema
module Event = Lockdoc_trace.Event
module Srcloc = Lockdoc_trace.Srcloc
module Lockdep = Lockdoc_core.Lockdep
module Obs = Lockdoc_obs.Obs

let c_sightings = Obs.counter "sanitize.irq.sightings"
let c_unsafe = Obs.counter "sanitize.irq.unsafe"

type usage = {
  u_class : string;
  u_process : int;
  u_softirq : int;
  u_hardirq : int;
  u_irqs_on : int;
}

type unsafe = {
  iu_class : string;
  iu_irq_loc : Srcloc.t;  (** a hardirq-context acquisition *)
  iu_on_loc : Srcloc.t;  (** an irqs-enabled acquisition *)
}

type inversion = {
  inv_irq : string;  (** hardirq-acquired class *)
  inv_unsafe : string;  (** irq-unsafe class acquired after it *)
  inv_loc : Srcloc.t;
}

type report = {
  i_usage : usage list;  (** per non-pseudo class, sorted by name *)
  i_unsafe : unsafe list;
  i_inversions : inversion list;
}

type acc = {
  mutable a_process : int;
  mutable a_softirq : int;
  mutable a_hardirq : int;
  mutable a_irqs_on : int;
  mutable a_irq_loc : Srcloc.t option;
  mutable a_on_loc : Srcloc.t option;
}

let marker_of (lock : Schema.lock) =
  if lock.Schema.lk_kind = Event.Pseudo then Some lock.Schema.lk_name else None

let analyse store =
  let table : (string, acc) Hashtbl.t = Hashtbl.create 64 in
  let names = ref [] in
  let get cls =
    match Hashtbl.find_opt table cls with
    | Some a -> a
    | None ->
        let a =
          {
            a_process = 0; a_softirq = 0; a_hardirq = 0; a_irqs_on = 0;
            a_irq_loc = None; a_on_loc = None;
          }
        in
        Hashtbl.add table cls a;
        names := cls :: !names;
        a
  in
  let n = Store.n_txns store in
  for i = 0 to n - 1 do
    let txn = Store.txn store i in
    let in_hard = ref false and in_soft = ref false and irq_off = ref false in
    List.iter
      (fun (h : Schema.held) ->
        let lock = Store.lock store h.Schema.h_lock in
        match marker_of lock with
        | Some "hardirq" -> in_hard := true
        | Some "softirq" -> in_soft := true
        | Some "irqoff" -> irq_off := true
        | Some _ -> ()  (* bhoff masks softirqs only; irrelevant here *)
        | None ->
            Obs.incr c_sightings;
            let a = get (Lockdep.class_to_string (Lockdep.class_of store lock)) in
            if !in_hard then begin
              a.a_hardirq <- a.a_hardirq + 1;
              if a.a_irq_loc = None then a.a_irq_loc <- Some h.Schema.h_loc
            end
            else if !in_soft then a.a_softirq <- a.a_softirq + 1
            else a.a_process <- a.a_process + 1;
            if not (!in_hard || !in_soft || !irq_off) then begin
              a.a_irqs_on <- a.a_irqs_on + 1;
              if a.a_on_loc = None then a.a_on_loc <- Some h.Schema.h_loc
            end)
      txn.Schema.tx_locks
  done;
  let sorted = List.sort compare !names in
  let i_usage =
    List.map
      (fun cls ->
        let a = Hashtbl.find table cls in
        {
          u_class = cls;
          u_process = a.a_process;
          u_softirq = a.a_softirq;
          u_hardirq = a.a_hardirq;
          u_irqs_on = a.a_irqs_on;
        })
      sorted
  in
  let i_unsafe =
    List.filter_map
      (fun cls ->
        let a = Hashtbl.find table cls in
        match (a.a_irq_loc, a.a_on_loc) with
        | Some iu_irq_loc, Some iu_on_loc ->
            Some { iu_class = cls; iu_irq_loc; iu_on_loc }
        | _ -> None)
      sorted
  in
  Obs.add c_unsafe (List.length i_unsafe);
  let irq_acquired =
    List.filter_map
      (fun u -> if u.u_hardirq > 0 then Some u.u_class else None)
      i_usage
  in
  let unsafe_classes = List.map (fun u -> u.iu_class) i_unsafe in
  let i_inversions =
    let dep = Lockdep.analyse store in
    List.filter_map
      (fun (e : Lockdep.edge) ->
        let f = Lockdep.class_to_string e.Lockdep.e_from in
        let t = Lockdep.class_to_string e.Lockdep.e_to in
        if f <> t && List.mem f irq_acquired && List.mem t unsafe_classes then
          Some { inv_irq = f; inv_unsafe = t; inv_loc = e.Lockdep.e_example }
        else None)
      dep.Lockdep.edges
    |> List.sort_uniq compare
  in
  { i_usage; i_unsafe; i_inversions }

let render r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "irq: %d lock class(es), %d irq-unsafe, %d inversion(s)\n"
       (List.length r.i_usage) (List.length r.i_unsafe)
       (List.length r.i_inversions));
  List.iter
    (fun u ->
      if u.u_hardirq > 0 || u.u_softirq > 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "  %-36s process %d  softirq %d  hardirq %d  irqs-on %d\n"
             u.u_class u.u_process u.u_softirq u.u_hardirq u.u_irqs_on))
    r.i_usage;
  List.iter
    (fun iu ->
      Buffer.add_string buf
        (Printf.sprintf
           "  UNSAFE %s: acquired in hardirq at %s, with irqs on at %s\n"
           iu.iu_class
           (Srcloc.to_string iu.iu_irq_loc)
           (Srcloc.to_string iu.iu_on_loc)))
    r.i_unsafe;
  List.iter
    (fun inv ->
      Buffer.add_string buf
        (Printf.sprintf "  INVERSION %s -> %s at %s\n" inv.inv_irq
           inv.inv_unsafe
           (Srcloc.to_string inv.inv_loc)))
    r.i_inversions;
  Buffer.contents buf
