(** Sanitizer pipeline: trace → import → lockset + irq analysis →
    cross-validation, surfaced as [lockdoc sanitize].

    The trace comes from {!Lockdoc_ksim.Run.sanitize_trace}: one
    benchmark family plus a work-queueing thread and a deterministic
    timer interrupt, with fault sites forced to exactly the seeded
    ground-truth bugs or silenced entirely. The report is deterministic
    for a fixed (workload, seed, scale, bugs) and bit-identical for
    every [jobs] count. *)

type report = {
  s_workload : string;
  s_seed : int;
  s_scale : int;
  s_bugs : bool;  (** seeded ground-truth bugs active? *)
  s_events : int;
  s_accesses : int;  (** accesses kept by the importer *)
  s_races : Lockset.race list;
  s_irq : Irq.report;
  s_truth : Lockdoc_ksim.Seeded.truth;
  s_crossval : Crossval.t;
}

val analyse :
  ?jobs:int ->
  workload:string ->
  seed:int ->
  scale:int ->
  bugs:bool ->
  truth:Lockdoc_ksim.Seeded.truth ->
  Lockdoc_trace.Trace.t ->
  report
(** Import and analyse an existing sanitizer trace. *)

val run : ?jobs:int -> ?seed:int -> ?scale:int -> bugs:bool -> string -> report
(** Generate the trace and analyse it. Raises [Invalid_arg] for
    workloads outside {!Lockdoc_ksim.Run.workload_names}. *)

val render : report -> string
(** Human-readable report. *)

val to_json : report -> string
(** Machine-readable report (races with witnesses, irq usage/unsafety,
    ground truth, precision/recall). *)
