(** Eraser-style lockset race detection (the sanitizer's first half).

    Replays the store's accesses through one
    Virgin → Exclusive → Shared → Shared-Modified state machine per
    (allocation, member), intersecting a candidate lockset on every
    post-exclusive access: reads refine with all held locks, writes
    with the exclusively-held ones only. Accesses inside RCU/seqlock
    read sections are exempt (they must not empty the writer's
    candidates), as are accesses under the single-threaded shutdown
    entry points. A race is reported only when the candidate set is
    empty {e and} the triggering access is bare (write without an
    exclusive lock, read without any lock) — the policy that keeps the
    simulator's clean traces at zero false positives. *)

type witness = {
  w_event : int;  (** trace index of the first bare racy access *)
  w_kind : Lockdoc_trace.Event.access_kind;
  w_ctx : int;  (** control-flow pid of that access *)
  w_loc : Lockdoc_trace.Srcloc.t;
  w_stack : string list;  (** innermost frame first *)
}

type race = {
  r_type : string;  (** type key, e.g. "super_block" *)
  r_member : string;
  r_instances : int;  (** racy object instances *)
  r_bare : int;  (** bare accesses on emptied candidate sets, folded *)
  r_witness : witness;  (** earliest bare access over all instances *)
}

val quiescent_frames : string list
(** Shutdown entry points whose callees run single threaded; accesses
    under them are exempt. Shared with the replay engine's quiescence
    triage. *)

val analyse : ?jobs:int -> Lockdoc_db.Store.t -> race list
(** Run the detector over every (instance, member) stream. [jobs]
    (default 1) shards by instance over that many domains; the report
    is bit-identical for every job count ([jobs > 1] seals the
    store). Sorted by (type key, member). *)

val render : race list -> string
(** Human-readable summary, one line per racy (type, member). *)
