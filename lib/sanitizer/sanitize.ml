(* Sanitizer orchestration: trace one workload family (with or without
   the seeded bugs), import it, run both detectors, and cross-validate
   against the ground truth and the mined-rule violation scanner. *)

module Run = Lockdoc_ksim.Run
module Seeded = Lockdoc_ksim.Seeded
module Trace = Lockdoc_trace.Trace
module Event = Lockdoc_trace.Event
module Srcloc = Lockdoc_trace.Srcloc
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Violation = Lockdoc_core.Violation
module Report = Lockdoc_core.Report
module Obs = Lockdoc_obs.Obs

type report = {
  s_workload : string;
  s_seed : int;
  s_scale : int;
  s_bugs : bool;
  s_events : int;
  s_accesses : int;
  s_races : Lockset.race list;
  s_irq : Irq.report;
  s_truth : Seeded.truth;
  s_crossval : Crossval.t;
}

let analyse ?(jobs = 1) ~workload ~seed ~scale ~bugs ~truth trace =
  let (store, stats), _ =
    Obs.Span.timed "sanitize/import" (fun () -> Import.run trace)
  in
  let s_races, _ =
    Obs.Span.timed "sanitize/lockset" (fun () -> Lockset.analyse ~jobs store)
  in
  let s_irq, _ = Obs.Span.timed "sanitize/irq" (fun () -> Irq.analyse store) in
  let s_crossval, _ =
    Obs.Span.timed "sanitize/crossval" (fun () ->
        let dataset = Dataset.of_store store in
        let mined = Derivator.derive_all ~jobs dataset in
        let violations = Violation.find ~jobs dataset mined in
        Crossval.evaluate ~races:s_races ~irq:s_irq ~truth ~violations)
  in
  {
    s_workload = workload;
    s_seed = seed;
    s_scale = scale;
    s_bugs = bugs;
    s_events = Array.length trace.Trace.events;
    s_accesses = stats.Import.accesses_kept;
    s_races;
    s_irq;
    s_truth = truth;
    s_crossval;
  }

let run ?(jobs = 1) ?(seed = 7) ?(scale = 1) ~bugs workload =
  let (trace, truth), _ =
    Obs.Span.timed "sanitize/trace" (fun () ->
        Run.sanitize_trace ~seed ~scale ~bugs workload)
  in
  analyse ~jobs ~workload ~seed ~scale ~bugs ~truth trace

let render r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "sanitize: %s (seed %d, scale %d, seeded bugs %s) — %d event(s), %d \
        access(es)\n"
       r.s_workload r.s_seed r.s_scale
       (if r.s_bugs then "on" else "off")
       r.s_events r.s_accesses);
  Buffer.add_string buf (Lockset.render r.s_races);
  Buffer.add_string buf (Irq.render r.s_irq);
  Buffer.add_string buf
    (Printf.sprintf "ground truth: %d seeded race(s), %d seeded irq bug(s)\n"
       (List.length r.s_truth.Seeded.t_races)
       (List.length r.s_truth.Seeded.t_irq_unsafe));
  Buffer.add_string buf (Crossval.render r.s_crossval);
  Buffer.contents buf

(* {2 JSON} *)

let json_of_score (s : Crossval.score) =
  Report.O
    [
      ("tp", Report.I s.Crossval.cv_tp);
      ("fp", Report.I s.Crossval.cv_fp);
      ("fn", Report.I s.Crossval.cv_fn);
      ("precision", Report.F s.Crossval.cv_precision);
      ("recall", Report.F s.Crossval.cv_recall);
      ("spurious", Report.L (List.map (fun x -> Report.S x) s.Crossval.cv_spurious));
      ("missed", Report.L (List.map (fun x -> Report.S x) s.Crossval.cv_missed));
    ]

let json_of_race (r : Lockset.race) =
  let w = r.Lockset.r_witness in
  Report.O
    [
      ("type", Report.S r.Lockset.r_type);
      ("member", Report.S r.Lockset.r_member);
      ("instances", Report.I r.Lockset.r_instances);
      ("bare_accesses", Report.I r.Lockset.r_bare);
      ( "witness",
        Report.O
          [
            ("event", Report.I w.Lockset.w_event);
            ( "kind",
              Report.S
                (match w.Lockset.w_kind with
                | Event.Read -> "r"
                | Event.Write -> "w") );
            ("flow", Report.I w.Lockset.w_ctx);
            ("loc", Report.S (Srcloc.to_string w.Lockset.w_loc));
            ( "stack",
              Report.L (List.map (fun f -> Report.S f) w.Lockset.w_stack) );
          ] );
    ]

let to_json r =
  Report.to_string
    (Report.O
       [
         ("workload", Report.S r.s_workload);
         ("seed", Report.I r.s_seed);
         ("scale", Report.I r.s_scale);
         ("seeded_bugs", Report.S (if r.s_bugs then "on" else "off"));
         ("events", Report.I r.s_events);
         ("accesses", Report.I r.s_accesses);
         ("races", Report.L (List.map json_of_race r.s_races));
         ( "irq_usage",
           Report.L
             (List.map
                (fun (u : Irq.usage) ->
                  Report.O
                    [
                      ("class", Report.S u.Irq.u_class);
                      ("process", Report.I u.Irq.u_process);
                      ("softirq", Report.I u.Irq.u_softirq);
                      ("hardirq", Report.I u.Irq.u_hardirq);
                      ("irqs_on", Report.I u.Irq.u_irqs_on);
                    ])
                r.s_irq.Irq.i_usage) );
         ( "irq_unsafe",
           Report.L
             (List.map
                (fun (iu : Irq.unsafe) ->
                  Report.O
                    [
                      ("class", Report.S iu.Irq.iu_class);
                      ("irq_acquisition", Report.S (Srcloc.to_string iu.Irq.iu_irq_loc));
                      ("irqs_on_acquisition", Report.S (Srcloc.to_string iu.Irq.iu_on_loc));
                    ])
                r.s_irq.Irq.i_unsafe) );
         ( "inversions",
           Report.L
             (List.map
                (fun (inv : Irq.inversion) ->
                  Report.O
                    [
                      ("irq_acquired", Report.S inv.Irq.inv_irq);
                      ("irq_unsafe", Report.S inv.Irq.inv_unsafe);
                      ("loc", Report.S (Srcloc.to_string inv.Irq.inv_loc));
                    ])
                r.s_irq.Irq.i_inversions) );
         ( "ground_truth",
           Report.O
             [
               ( "races",
                 Report.L
                   (List.map
                      (fun (ty, m) -> Report.S (ty ^ "." ^ m))
                      r.s_truth.Seeded.t_races) );
               ( "irq_unsafe",
                 Report.L
                   (List.map
                      (fun c -> Report.S c)
                      r.s_truth.Seeded.t_irq_unsafe) );
             ] );
         ( "crossval",
           Report.O
             [
               ("races", json_of_score r.s_crossval.Crossval.races);
               ("irq", json_of_score r.s_crossval.Crossval.irq);
               ( "corroborated",
                 Report.L
                   (List.map
                      (fun (id, hit) ->
                        Report.O
                          [
                            ("finding", Report.S id);
                            ("by_violation_scanner", Report.S (if hit then "yes" else "no"));
                          ])
                      r.s_crossval.Crossval.corroborated) );
             ] );
       ])
