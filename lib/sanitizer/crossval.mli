(** Cross-validation of sanitizer findings.

    Scores the lockset races and irq-unsafe classes against the seeded
    ground truth (exact precision/recall — the bugs were planted), and
    marks which lockset races the mined-rule violation scanner (the
    paper's phase-❸ detector) independently corroborates. *)

type score = {
  cv_tp : int;
  cv_fp : int;
  cv_fn : int;
  cv_precision : float;  (** tp/(tp+fp); 1.0 when nothing was found *)
  cv_recall : float;  (** tp/(tp+fn); 1.0 when nothing was seeded *)
  cv_spurious : string list;  (** found but not seeded *)
  cv_missed : string list;  (** seeded but not found *)
}

type t = {
  races : score;  (** lockset findings vs seeded races ("type.member") *)
  irq : score;  (** irq-unsafe classes vs seeded irq bugs *)
  corroborated : (string * bool) list;
      (** per lockset race: also flagged by {!Lockdoc_core.Violation}? *)
}

val score : found:string list -> truth:string list -> score
(** Set comparison after sort+dedup of both sides. *)

val evaluate :
  races:Lockset.race list ->
  irq:Irq.report ->
  truth:Lockdoc_ksim.Seeded.truth ->
  violations:Lockdoc_core.Violation.violation list ->
  t

val render : t -> string
