(* Eraser-style lockset race detection over the relational store.

   One state machine per (allocation, member) — the paper's analysis
   granularity — with the classic Virgin / Exclusive / Shared /
   Shared-Modified lattice and a candidate lockset that starts as the
   full universe and is intersected on every post-exclusive access:
   reads refine with every held lock (reader-side protection counts),
   writes refine with the exclusively-held locks only.

   Two deliberate deviations from plain Eraser keep the false-positive
   rate at zero on the simulator's clean traces:

   - an access is {e skipped} when it sits inside an RCU or seqlock
     read section (shared-side Rcu/Seqlock held): such readers are
     protected by the publish/retry protocol, not by the writer's
     locks, and must neither transition the state machine nor empty the
     writer's candidate set;

   - an empty candidate set alone is not reported. The report fires
     only when the {e triggering} access is bare — a write with no
     exclusively-held lock, or a read with no lock at all. Benign
     mixed-discipline members (an unlocked init-phase store followed by
     consistently locked use, or opportunistic lock-free peeks that are
     re-checked under the lock) empty the candidate set without ever
     racing on a bare access; the kernel's idiomatic patterns survive,
     the seeded lock-free accesses do not.

   Teardown quiescence (umount, eviction, cache shrinking) is single
   threaded by construction, so accesses whose call stack contains one
   of the shutdown entry points are exempt, mirroring the importer's
   init/teardown filter. *)

module Pool = Lockdoc_util.Pool
module Store = Lockdoc_db.Store
module Schema = Lockdoc_db.Schema
module Event = Lockdoc_trace.Event
module Srcloc = Lockdoc_trace.Srcloc
module Obs = Lockdoc_obs.Obs

let c_accesses = Obs.counter "sanitize.lockset.accesses"
let c_skipped_rcu = Obs.counter "sanitize.lockset.skipped_rcu"
let c_skipped_quiescent = Obs.counter "sanitize.lockset.skipped_quiescent"
let c_races = Obs.counter "sanitize.lockset.races"

module Iset = Set.Make (Int)

type witness = {
  w_event : int;  (** trace index of the first bare racy access *)
  w_kind : Event.access_kind;
  w_ctx : int;
  w_loc : Srcloc.t;
  w_stack : string list;  (** innermost frame first *)
}

type race = {
  r_type : string;
  r_member : string;
  r_instances : int;  (** racy object instances *)
  r_bare : int;  (** bare accesses on emptied candidate sets, folded *)
  r_witness : witness;
}

(* Shutdown entry points whose callees run single threaded. *)
let quiescent_frames =
  [
    "evict"; "evict_inodes"; "generic_shutdown_super"; "sync_filesystem";
    "prune_icache"; "shrink_dcache_sb";
  ]

let is_quiescent stack =
  List.exists (fun frame -> List.mem frame quiescent_frames) stack

type lstate = Virgin | Excl of int | Shared | SharedMod

type mstate = {
  mutable st : lstate;
  mutable cand : Iset.t option;  (** [None] = full universe *)
  mutable bare : int;
  mutable witness : witness option;
}

let held_of store (a : Schema.access) =
  match a.Schema.ac_txn with
  | None -> []
  | Some t -> (Store.txn store t).Schema.tx_locks

let in_rcu_read_section store held =
  List.exists
    (fun (h : Schema.held) ->
      h.Schema.h_side = Event.Shared
      &&
      match (Store.lock store h.Schema.h_lock).Schema.lk_kind with
      | Event.Rcu | Event.Seqlock -> true
      | _ -> false)
    held

(* Process the accesses of one (instance, member) stream in trace
   order; returns the race evidence, if any. *)
let step store ms (a : Schema.access) =
  let held = held_of store a in
  let lockset =
    List.fold_left
      (fun acc (h : Schema.held) ->
        match a.Schema.ac_kind with
        | Event.Read -> Iset.add h.Schema.h_lock acc
        | Event.Write ->
            if h.Schema.h_side = Event.Exclusive then
              Iset.add h.Schema.h_lock acc
            else acc)
      Iset.empty held
  in
  let refine () =
    ms.cand <-
      Some
        (match ms.cand with
        | None -> lockset
        | Some c -> Iset.inter c lockset)
  in
  (match ms.st with
  | Virgin -> ms.st <- Excl a.Schema.ac_ctx
  | Excl ctx when ctx = a.Schema.ac_ctx -> ()
  | Excl _ ->
      ms.st <-
        (match a.Schema.ac_kind with
        | Event.Read -> Shared
        | Event.Write -> SharedMod);
      refine ()
  | Shared ->
      if a.Schema.ac_kind = Event.Write then ms.st <- SharedMod;
      refine ()
  | SharedMod -> refine ());
  let racy =
    ms.st = SharedMod && ms.cand = Some Iset.empty && Iset.is_empty lockset
  in
  if racy then begin
    ms.bare <- ms.bare + 1;
    if ms.witness = None then
      ms.witness <-
        Some
          {
            w_event = a.Schema.ac_event;
            w_kind = a.Schema.ac_kind;
            w_ctx = a.Schema.ac_ctx;
            w_loc = a.Schema.ac_loc;
            w_stack = Store.stack store a.Schema.ac_stack;
          }
  end

let analyse_instance store accesses =
  let members : (string, mstate) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (a : Schema.access) ->
      Obs.incr c_accesses;
      let held = held_of store a in
      if a.Schema.ac_kind = Event.Read && in_rcu_read_section store held then
        Obs.incr c_skipped_rcu
      else if is_quiescent (Store.stack store a.Schema.ac_stack) then
        Obs.incr c_skipped_quiescent
      else begin
        let ms =
          match Hashtbl.find_opt members a.Schema.ac_member with
          | Some ms -> ms
          | None ->
              let ms =
                { st = Virgin; cand = None; bare = 0; witness = None }
              in
              Hashtbl.add members a.Schema.ac_member ms;
              order := a.Schema.ac_member :: !order;
              ms
        in
        step store ms a
      end)
    accesses;
  List.filter_map
    (fun member ->
      let ms = Hashtbl.find members member in
      match ms.witness with
      | Some w -> Some (member, ms.bare, w)
      | None -> None)
    (List.rev !order)

(* Work items: one per (type key, instance), in (key, allocation id)
   order. Pool.map keeps the input order, so the merged report is
   byte-identical for every job count. *)
let analyse ?(jobs = 1) store =
  if jobs > 1 then Store.seal store;
  let items =
    List.concat_map
      (fun key ->
        let by_alloc : (int, Schema.access list) Hashtbl.t =
          Hashtbl.create 64
        in
        let allocs = ref [] in
        List.iter
          (fun (a : Schema.access) ->
            (match Hashtbl.find_opt by_alloc a.Schema.ac_alloc with
            | None ->
                allocs := a.Schema.ac_alloc :: !allocs;
                Hashtbl.add by_alloc a.Schema.ac_alloc [ a ]
            | Some l -> Hashtbl.replace by_alloc a.Schema.ac_alloc (a :: l)))
          (Store.accesses_of_type store key);
        List.map
          (fun al -> (key, List.rev (Hashtbl.find by_alloc al)))
          (List.sort compare !allocs))
      (Store.type_keys store)
  in
  let per_instance =
    Pool.map ~jobs (fun (key, accesses) -> (key, analyse_instance store accesses)) items
  in
  (* Merge instance evidence into per (type, member) races: instance
     count, folded bare accesses, earliest witness. *)
  let merged : (string * string, int * int * witness) Hashtbl.t =
    Hashtbl.create 16
  in
  let keys = ref [] in
  List.iter
    (fun (key, findings) ->
      List.iter
        (fun (member, bare, w) ->
          let k = (key, member) in
          match Hashtbl.find_opt merged k with
          | None ->
              keys := k :: !keys;
              Hashtbl.add merged k (1, bare, w)
          | Some (n, b, w0) ->
              let w = if w.w_event < w0.w_event then w else w0 in
              Hashtbl.replace merged k (n + 1, b + bare, w))
        findings)
    per_instance;
  let races =
    List.map
      (fun (r_type, r_member) ->
        let r_instances, r_bare, r_witness =
          Hashtbl.find merged (r_type, r_member)
        in
        { r_type; r_member; r_instances; r_bare; r_witness })
      (List.sort compare !keys)
  in
  Obs.add c_races (List.length races);
  races

let render races =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "lockset: %d racy (type, member) pair(s)\n"
       (List.length races));
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %s.%s: %d instance(s), %d bare access(es); first bare %s by \
            flow %d at %s (in %s)\n"
           r.r_type r.r_member r.r_instances r.r_bare
           (match r.r_witness.w_kind with
           | Event.Read -> "read"
           | Event.Write -> "write")
           r.r_witness.w_ctx
           (Srcloc.to_string r.r_witness.w_loc)
           (match r.r_witness.w_stack with f :: _ -> f | [] -> "?")))
    races;
  Buffer.contents buf
