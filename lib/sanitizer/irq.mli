(** Lockdep-style irq-safety analysis (the sanitizer's second half).

    Classifies every real (non-pseudo) lock class by the contexts it is
    acquired in — process, softirq, hardirq — and by whether it is ever
    acquired with interrupts enabled, read off the synthetic
    hardirq/softirq/irqoff pseudo-locks in each transaction's ordered
    held-lock list. A class acquired in hardirq context {e and} with
    interrupts enabled elsewhere is irq-unsafe; acquisition-order edges
    from a hardirq-acquired class into an irq-unsafe one are in-irq
    ordering inversions. *)

type usage = {
  u_class : string;
  u_process : int;  (** held-lock sightings in process context *)
  u_softirq : int;
  u_hardirq : int;
  u_irqs_on : int;  (** sightings with interrupts enabled *)
}

type unsafe = {
  iu_class : string;
  iu_irq_loc : Lockdoc_trace.Srcloc.t;  (** a hardirq-context acquisition *)
  iu_on_loc : Lockdoc_trace.Srcloc.t;  (** an irqs-enabled acquisition *)
}

type inversion = {
  inv_irq : string;  (** hardirq-acquired class *)
  inv_unsafe : string;  (** irq-unsafe class acquired after it *)
  inv_loc : Lockdoc_trace.Srcloc.t;
}

type report = {
  i_usage : usage list;  (** per non-pseudo class, sorted by name *)
  i_unsafe : unsafe list;
  i_inversions : inversion list;
}

val analyse : Lockdoc_db.Store.t -> report
(** One walk over every transaction; deterministic, read-only. *)

val render : report -> string
(** Human-readable summary: context mix of the irq-used classes, then
    the unsafe classes and inversions. *)
