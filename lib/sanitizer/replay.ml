(* Counterexample replay: re-execute the sanitizer workload under a
   programmable schedule controller and turn every finding into either a
   serialized interleaving witness or a machine-checked refutation.

   Races: arm a breakpoint at an occurrence of the suspicious access,
   force a preemption there, and run the other flows in a bounded window
   hunting for a same-address access from another flow with no common
   protection where at least one side is a bare write. Rounds retry
   missed windows with a doubled window, a shifted arming stride and a
   perturbed scheduler seed. Irq findings: raise the timer interrupt at
   the moment the flagged class is acquired with interrupts enabled and
   catch the handler's in-atomic deadlock as the witness.

   The directed phase is sequential — the simulator is a pile of per-run
   global state (DESIGN 5d) — so [jobs] only fans out the pure verdict
   synthesis, and the report is bit-identical for every job count. *)

module Pool = Lockdoc_util.Pool
module Trace = Lockdoc_trace.Trace
module Event = Lockdoc_trace.Event
module Srcloc = Lockdoc_trace.Srcloc
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Violation = Lockdoc_core.Violation
module Kernel = Lockdoc_ksim.Kernel
module Run = Lockdoc_ksim.Run
module Seeded = Lockdoc_ksim.Seeded
module Json = Lockdoc_obs.Json
module Obs = Lockdoc_obs.Obs

let c_windows = Obs.counter "replay.windows"
let c_shots = Obs.counter "replay.irq_shots"
let c_confirmed = Obs.counter "replay.confirmed"
let c_refuted = Obs.counter "replay.refuted"

type reason =
  | Caller_holds_lock of string
  | Rcu_read_section
  | Quiescent_init_teardown
  | Budget_exhausted

type step = {
  st_pid : int;
  st_flow : string;
  st_action : string;
  st_loc : Srcloc.t;
  st_held : string list;
}

type verdict = Confirmed of step list | Refuted of reason

type target =
  | Race_target of { rt_type : string; rt_member : string }
  | Irq_target of { it_class : string }

let target_id = function
  | Race_target { rt_type; rt_member } -> rt_type ^ "." ^ rt_member
  | Irq_target { it_class } -> it_class

type outcome = {
  o_target : target;
  o_sources : string list;
  o_verdict : verdict;
  o_schedules : int;
}

type report = {
  r_workload : string;
  r_seed : int;
  r_scale : int;
  r_bugs : bool;
  r_budget : int;
  r_events : int;
  r_outcomes : outcome list;
  r_schedules : int;
  r_races_pre : Crossval.score;
  r_races_post : Crossval.score;
  r_irq_pre : Crossval.score;
  r_irq_post : Crossval.score;
}

(* {2 Evidence accumulated by the controller} *)

type race_ev = {
  re_type : string;  (* base type name, subclass split off the key *)
  re_subclass : string option;
  re_member : string;
  mutable re_occ : int;  (* armable-context occurrences seen *)
  mutable re_armed : int;  (* occurrences that reached classification *)
  mutable re_rcu : int;  (* armed reads inside an RCU/seqlock section *)
  mutable re_quiescent : int;  (* armed while single-threaded *)
  mutable re_windows : int;  (* directed windows opened *)
  mutable re_missed : int;  (* windows with no conflicting access *)
  mutable re_seen : int;  (* per-round arming-stride counter *)
  mutable re_left : int;  (* per-round window budget *)
  mutable re_active : bool;  (* still searched this round *)
  re_guards : (string, int) Hashtbl.t;  (* guard class -> sightings *)
  mutable re_witness : step list option;
}

type irq_ev = {
  ie_class : string;
  mutable ie_acq : int;  (* process-context acquisitions seen *)
  mutable ie_masked : int;  (* ... of which had interrupts masked *)
  mutable ie_shots : int;  (* directed interrupts raised *)
  mutable ie_missed : int;  (* shots whose handler did not contend *)
  mutable ie_left : int;
  mutable ie_active : bool;
  mutable ie_witness : step list option;
}

type evidence = Race_ev of race_ev | Irq_ev of irq_ev

let split_key key =
  match String.index_opt key ':' with
  | None -> (key, None)
  | Some i ->
      ( String.sub key 0 i,
        Some (String.sub key (i + 1) (String.length key - i - 1)) )

let make_ev = function
  | Race_target { rt_type; rt_member } ->
      let base, sub = split_key rt_type in
      Race_ev
        {
          re_type = base;
          re_subclass = sub;
          re_member = rt_member;
          re_occ = 0;
          re_armed = 0;
          re_rcu = 0;
          re_quiescent = 0;
          re_windows = 0;
          re_missed = 0;
          re_seen = 0;
          re_left = 0;
          re_active = false;
          re_guards = Hashtbl.create 4;
          re_witness = None;
        }
  | Irq_target { it_class } ->
      Irq_ev
        {
          ie_class = it_class;
          ie_acq = 0;
          ie_masked = 0;
          ie_shots = 0;
          ie_missed = 0;
          ie_left = 0;
          ie_active = false;
          ie_witness = None;
        }

(* {2 The schedule controller} *)

type lockinfo = {
  li_ptr : int;
  li_class : string;
  li_side : Event.lock_side;
  li_kind : Event.lock_kind;
}

type window = {
  w_ev : race_ev;
  w_pid : int;
  w_view : Kernel.access_view;
  w_rel : string list;  (* armed side's protecting lock classes *)
  mutable w_left : int;
  mutable w_guarded : bool;
}

type ctl = {
  evs : evidence list;
  stride : int;  (* arm every stride-th armable occurrence *)
  window_len : int;
  mutable mode : window option;
  mutable in_tap : bool;  (* re-entrancy guard around directed irqs *)
  held : (int, lockinfo list ref) Hashtbl.t;  (* pid -> held, innermost first *)
  mutable allocs : (int * int * string) list;  (* base, size, data_type *)
}

let held st pid =
  match Hashtbl.find_opt st.held pid with Some r -> !r | None -> []

let push_lock st pid li =
  match Hashtbl.find_opt st.held pid with
  | Some r -> r := li :: !r
  | None -> Hashtbl.add st.held pid (ref [ li ])

let pop_lock st pid ptr =
  match Hashtbl.find_opt st.held pid with
  | Some r ->
      let rec rm = function
        | [] -> []
        | li :: tl -> if li.li_ptr = ptr then tl else li :: rm tl
      in
      r := rm !r
  | None -> ()

(* Lock class at acquisition time, matching {!Lockdoc_core.Lockdep}:
   embedded locks resolve through the live allocation covering their
   address ("type.member_path"), statics and pseudos keep their name. *)
let resolve_class st ~ptr ~kind ~name =
  if kind = Event.Pseudo then name
  else
    match
      List.find_opt (fun (b, s, _) -> ptr >= b && ptr < b + s) st.allocs
    with
    | Some (_, _, dt) -> dt ^ "." ^ name
    | None -> name

let classes held = List.map (fun li -> li.li_class) held

(* The lock classes that actually protect an access: writes need an
   exclusively-held lock, reads any (the lockset detector's rule). *)
let relevant held kind =
  held
  |> List.filter (fun li ->
         match kind with
         | Event.Write -> li.li_side = Event.Exclusive
         | Event.Read -> true)
  |> classes

let in_read_section held =
  List.exists
    (fun li ->
      li.li_side = Event.Shared
      && (li.li_kind = Event.Rcu || li.li_kind = Event.Seqlock))
    held

let irqs_masked held =
  List.exists
    (fun li ->
      li.li_kind = Event.Pseudo
      && (li.li_class = "irqoff" || li.li_class = "hardirq"))
    held

let is_atomic = function
  | frame :: _ -> String.starts_with ~prefix:"atomic_" frame
  | [] -> false

let under_quiescent_frame stack =
  List.exists (fun f -> List.mem f Lockset.quiescent_frames) stack

let flow_name pid =
  if pid < 0 then "hardirq"
  else
    match
      List.find_opt (fun f -> f.Kernel.fl_pid = pid) (Kernel.flows ())
    with
    | Some f -> f.Kernel.fl_name
    | None -> "pid" ^ string_of_int pid

let kind_str = function Event.Read -> "read" | Event.Write -> "write"

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let race_id re =
  (match re.re_subclass with
  | None -> re.re_type
  | Some sc -> re.re_type ^ ":" ^ sc)
  ^ "." ^ re.re_member

let matches re (view : Kernel.access_view) =
  view.Kernel.av_type = re.re_type
  && view.Kernel.av_member = re.re_member
  && (match re.re_subclass with
     | None -> true
     | Some _ -> view.Kernel.av_subclass = re.re_subclass)

(* An access from another flow landed on the armed address during a
   directed window: either the witnessed conflict (no common protection,
   at least one side a bare write, conflicting side not an RCU/seqlock
   read) or evidence of what guards the pair. *)
let window_access st w (view : Kernel.access_view) =
  if
    (not view.Kernel.av_in_irq)
    && view.Kernel.av_pid <> w.w_pid
    && view.Kernel.av_ptr = w.w_view.Kernel.av_ptr
    && (not (is_atomic view.Kernel.av_stack))
    && (view.Kernel.av_kind = Event.Write
       || w.w_view.Kernel.av_kind = Event.Write)
  then begin
    let b_held = held st view.Kernel.av_pid in
    let b_rel = relevant b_held view.Kernel.av_kind in
    let b_rcu = view.Kernel.av_kind = Event.Read && in_read_section b_held in
    let common = List.filter (fun c -> List.mem c b_rel) w.w_rel in
    let a_bare = w.w_view.Kernel.av_kind = Event.Write && w.w_rel = [] in
    let b_bare = view.Kernel.av_kind = Event.Write && b_rel = [] in
    if (not b_rcu) && common = [] && (a_bare || b_bare) then begin
      let re = w.w_ev in
      let id = race_id re in
      let s1 =
        {
          st_pid = w.w_pid;
          st_flow = flow_name w.w_pid;
          st_action =
            Printf.sprintf "about to %s %s; directed schedule preempts here"
              (kind_str w.w_view.Kernel.av_kind) id;
          st_loc = w.w_view.Kernel.av_loc;
          st_held = classes (held st w.w_pid);
        }
      in
      let s2 =
        {
          st_pid = view.Kernel.av_pid;
          st_flow = flow_name view.Kernel.av_pid;
          st_action =
            Printf.sprintf "%ss %s with no common lock held"
              (kind_str view.Kernel.av_kind) id;
          st_loc = view.Kernel.av_loc;
          st_held = classes b_held;
        }
      in
      re.re_witness <- Some [ s1; s2 ];
      st.mode <- None
    end
    else begin
      w.w_guarded <- true;
      let guard =
        match common with
        | c :: _ -> c
        | [] ->
            if b_rcu then "rcu"
            else if (not b_bare) && b_rel <> [] then List.hd b_rel
            else (
              match w.w_rel with c :: _ -> c | [] -> "preempt_disabled")
      in
      bump w.w_ev.re_guards guard
    end
  end

(* An occurrence of a target's access in passive mode: classify it, and
   if nothing excuses it structurally, open a directed window. *)
let try_arm st re (view : Kernel.access_view) =
  re.re_occ <- re.re_occ + 1;
  if re.re_active && re.re_witness = None && re.re_left > 0 then begin
    let position = re.re_seen in
    re.re_seen <- re.re_seen + 1;
    if position mod st.stride = 0 then begin
      re.re_armed <- re.re_armed + 1;
      let pid_held = held st view.Kernel.av_pid in
      let rel = relevant pid_held view.Kernel.av_kind in
      (* Only flows that can actually run during a window count: a
         window suspends the armed flow, so permanently blocked flows
         (init waiting on workload completion, a twin spinning on a
         lock the armed flow holds) can never produce the conflicting
         access, and opening a window against them just burns budget. *)
      let others_live =
        List.exists
          (fun f ->
            f.Kernel.fl_pid <> view.Kernel.av_pid
            && f.Kernel.fl_state = Kernel.Fl_runnable)
          (Kernel.flows ())
      in
      if view.Kernel.av_kind = Event.Read && in_read_section pid_held then
        re.re_rcu <- re.re_rcu + 1
      else if (not others_live) || under_quiescent_frame view.Kernel.av_stack
      then re.re_quiescent <- re.re_quiescent + 1
      else if view.Kernel.av_preempt_off then
        (* not preemptible here: whatever holds preemption off (the
           innermost exclusive lock, or a bare preempt_disable) is the
           de-facto guard *)
        bump re.re_guards
          (match rel with g :: _ -> g | [] -> "preempt_disabled")
      else begin
        re.re_left <- re.re_left - 1;
        re.re_windows <- re.re_windows + 1;
        Obs.incr c_windows;
        let w =
          {
            w_ev = re;
            w_pid = view.Kernel.av_pid;
            w_view = view;
            w_rel = rel;
            w_left = st.window_len;
            w_guarded = false;
          }
        in
        st.mode <- Some w;
        ignore (Kernel.preempt_now ());
        (* back in the armed flow: the window either confirmed (mode
           already reset by {!window_access}) or expires now *)
        (match st.mode with
        | Some w' when w' == w ->
            st.mode <- None;
            if not w.w_guarded then re.re_missed <- re.re_missed + 1
        | _ -> ());
        match re.re_witness with
        | Some steps ->
            (* confirmed during this window — close the witness with the
               armed flow's resumption *)
            let s3 =
              {
                st_pid = view.Kernel.av_pid;
                st_flow = flow_name view.Kernel.av_pid;
                st_action =
                  Printf.sprintf
                    "resumes and performs the armed %s of %s (lost update)"
                    (kind_str view.Kernel.av_kind) (race_id re);
                st_loc = view.Kernel.av_loc;
                st_held = classes (held st view.Kernel.av_pid);
              }
            in
            re.re_witness <- Some (steps @ [ s3 ])
        | None -> ()
      end
    end
  end

let on_access st (view : Kernel.access_view) =
  if not st.in_tap then
    match st.mode with
    | Some w -> window_access st w view
    | None ->
        if (not view.Kernel.av_in_irq) && not (is_atomic view.Kernel.av_stack)
        then
          List.iter
            (fun ev ->
              match ev with
              | Race_ev re when matches re view -> try_arm st re view
              | _ -> ())
            st.evs

(* A process-context acquisition of an irq-flagged class with interrupts
   enabled: fire the timer interrupt right here, while the lock is held.
   If the handler contends on it, the kernel's in-atomic discipline
   turns the self-deadlock into our witness. *)
let irq_shot st ~pid ~cls ~loc =
  List.iter
    (fun ev ->
      match ev with
      | Irq_ev ie when ie.ie_class = cls ->
          ie.ie_acq <- ie.ie_acq + 1;
          if irqs_masked (held st pid) then ie.ie_masked <- ie.ie_masked + 1
          else if ie.ie_active && ie.ie_witness = None && ie.ie_left > 0
          then begin
            ie.ie_left <- ie.ie_left - 1;
            ie.ie_shots <- ie.ie_shots + 1;
            Obs.incr c_shots;
            st.in_tap <- true;
            match Kernel.raise_hardirq () with
            | () ->
                st.in_tap <- false;
                ie.ie_missed <- ie.ie_missed + 1
            | exception Kernel.Sleep_in_atomic msg ->
                st.in_tap <- false;
                ie.ie_witness <-
                  Some
                    [
                      {
                        st_pid = pid;
                        st_flow = flow_name pid;
                        st_action =
                          "acquires " ^ cls ^ " with interrupts enabled";
                        st_loc = loc;
                        st_held = classes (held st pid);
                      };
                      {
                        st_pid = -1;
                        st_flow = "hardirq";
                        st_action =
                          "directed interrupt fires while " ^ cls
                          ^ " is held";
                        st_loc = Srcloc.none;
                        st_held = [];
                      };
                      {
                        st_pid = -1;
                        st_flow = "hardirq";
                        st_action = "handler self-deadlocks: " ^ msg;
                        st_loc = Srcloc.none;
                        st_held = [ "hardirq" ];
                      };
                    ]
          end
      | _ -> ())
    st.evs

let on_event st ev =
  if not st.in_tap then
    match ev with
    | Event.Alloc { ptr; size; data_type; _ } ->
        st.allocs <- (ptr, size, data_type) :: st.allocs
    | Event.Free { ptr } ->
        st.allocs <- List.filter (fun (b, _, _) -> b <> ptr) st.allocs
    | Event.Lock_acquire { lock_ptr; kind; side; name; loc } ->
        let pid = Kernel.current_pid () in
        let cls = resolve_class st ~ptr:lock_ptr ~kind ~name in
        push_lock st pid { li_ptr = lock_ptr; li_class = cls; li_side = side; li_kind = kind };
        if pid >= 0 && st.mode = None then irq_shot st ~pid ~cls ~loc
    | Event.Lock_release { lock_ptr; _ } ->
        pop_lock st (Kernel.current_pid ()) lock_ptr
    | _ -> ()

let pick st flows =
  match st.mode with
  | None -> None
  | Some w ->
      if w.w_left <= 0 then Some w.w_pid
      else begin
        w.w_left <- w.w_left - 1;
        let others =
          List.filter
            (fun f ->
              f.Kernel.fl_state = Kernel.Fl_runnable
              && f.Kernel.fl_pid <> w.w_pid)
            flows
        in
        match others with
        | [] -> Some w.w_pid
        | _ ->
            Some
              (List.nth others (w.w_left mod List.length others)).Kernel.fl_pid
      end

(* {2 The bounded search: rounds of directed runs} *)

let base_window = 2_000
let max_rounds = 3

let race_retry re =
  re.re_witness = None && (re.re_occ = 0 || re.re_missed > 0)

let irq_retry ie = ie.ie_witness = None && (ie.ie_acq = 0 || ie.ie_missed > 0)

let collect ~seed ~scale ~budget ~bugs ~workload targets =
  let evs = List.map make_ev targets in
  for round = 0 to max_rounds - 1 do
    let any_active = ref false in
    List.iter
      (fun ev ->
        match ev with
        | Race_ev re ->
            re.re_left <- budget;
            re.re_seen <- 0;
            re.re_active <- round = 0 || race_retry re;
            if re.re_active && re.re_witness = None then any_active := true
        | Irq_ev ie ->
            ie.ie_left <- budget;
            ie.ie_active <- round = 0 || irq_retry ie;
            if ie.ie_active && ie.ie_witness = None then any_active := true)
      evs;
    if !any_active then begin
      let st =
        {
          evs;
          stride = round + 1;
          window_len = base_window lsl round;
          mode = None;
          in_tap = false;
          held = Hashtbl.create 64;
          allocs = [];
        }
      in
      let control =
        {
          Kernel.ctl_on_access = (fun v -> on_access st v);
          ctl_on_event = (fun e -> on_event st e);
          ctl_pick = (fun fl -> pick st fl);
        }
      in
      ignore
        (Run.replay_trace ~seed:(seed + (101 * round)) ~scale ~control ~bugs
           workload)
    end
  done;
  evs

(* {2 Verdict synthesis (pure — this is the [jobs] fan-out)} *)

let decide ev =
  match ev with
  | Race_ev re -> (
      match re.re_witness with
      | Some w -> (Confirmed w, re.re_windows)
      | None ->
          let guards =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) re.re_guards []
          in
          let reason =
            if re.re_occ = 0 then Budget_exhausted
            else if guards <> [] then
              let best =
                List.sort
                  (fun (k1, v1) (k2, v2) ->
                    if v1 <> v2 then compare v2 v1 else compare k1 k2)
                  guards
                |> List.hd |> fst
              in
              Caller_holds_lock best
            else if
              re.re_rcu > 0 && re.re_rcu + re.re_quiescent = re.re_armed
            then Rcu_read_section
            else if re.re_quiescent > 0 && re.re_quiescent = re.re_armed then
              Quiescent_init_teardown
            else Budget_exhausted
          in
          (Refuted reason, re.re_windows))
  | Irq_ev ie -> (
      match ie.ie_witness with
      | Some w -> (Confirmed w, ie.ie_shots)
      | None ->
          if ie.ie_acq > 0 && ie.ie_masked = ie.ie_acq then
            (Refuted (Caller_holds_lock "irqoff"), ie.ie_shots)
          else (Refuted Budget_exhausted, ie.ie_shots))

let search ?(seed = 7) ?(scale = 1) ?(budget = 8) ~bugs ~workload targets =
  let evs, _ =
    Obs.Span.timed "replay/search" (fun () ->
        collect ~seed ~scale ~budget ~bugs ~workload targets)
  in
  let out =
    List.map2 (fun t ev -> let v, n = decide ev in (t, v, n)) targets evs
  in
  (out, List.fold_left (fun acc (_, _, n) -> acc + n) 0 out)

(* {2 The full pipeline} *)

let run ?(jobs = 1) ?(seed = 7) ?(scale = 1) ?(budget = 8) ~bugs workload =
  if not (List.mem workload Run.workload_names) then
    invalid_arg ("Replay.run: unknown workload " ^ workload);
  let (trace, truth), _ =
    Obs.Span.timed "replay/trace" (fun () ->
        Run.sanitize_trace ~seed ~scale ~bugs workload)
  in
  let (races, irq_unsafe, violations), _ =
    Obs.Span.timed "replay/findings" (fun () ->
        let store, _stats = Import.run trace in
        let races = Lockset.analyse ~jobs store in
        let irq = Irq.analyse store in
        let dataset = Dataset.of_store store in
        let mined = Derivator.derive_all ~jobs dataset in
        (races, irq.Irq.i_unsafe, Violation.find ~jobs dataset mined))
  in
  (* One replay target per distinct finding, remembering every detector
     that flagged it; races sort before irq classes, each by id. *)
  let by_id : (string, target * string list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let add t source =
    let id = target_id t in
    match Hashtbl.find_opt by_id id with
    | Some (_, srcs) ->
        if not (List.mem source !srcs) then srcs := !srcs @ [ source ]
    | None -> Hashtbl.add by_id id (t, ref [ source ])
  in
  List.iter
    (fun (r : Lockset.race) ->
      add
        (Race_target { rt_type = r.Lockset.r_type; rt_member = r.Lockset.r_member })
        "lockset")
    races;
  List.iter
    (fun (v : Violation.violation) ->
      add
        (Race_target { rt_type = v.Violation.v_type; rt_member = v.Violation.v_member })
        "violation")
    violations;
  List.iter
    (fun (u : Irq.unsafe) ->
      add (Irq_target { it_class = u.Irq.iu_class }) "irq")
    irq_unsafe;
  let ids =
    Hashtbl.fold (fun id (t, _) acc -> ((t, id) :: acc)) by_id []
    |> List.sort (fun ((t1 : target), id1) (t2, id2) ->
           let rank = function Race_target _ -> 0 | Irq_target _ -> 1 in
           compare (rank t1, id1) (rank t2, id2))
    |> List.map snd
  in
  let targets = List.map (fun id -> fst (Hashtbl.find by_id id)) ids in
  let evs, _ =
    Obs.Span.timed "replay/search" (fun () ->
        collect ~seed ~scale ~budget ~bugs ~workload targets)
  in
  let decided, _ =
    Obs.Span.timed "replay/verdicts" (fun () -> Pool.map ~jobs decide evs)
  in
  List.iter
    (fun (v, _) ->
      match v with
      | Confirmed _ -> Obs.incr c_confirmed
      | Refuted _ -> Obs.incr c_refuted)
    decided;
  let outcomes =
    List.map2
      (fun id (v, n) ->
        let t, srcs = Hashtbl.find by_id id in
        { o_target = t; o_sources = !srcs; o_verdict = v; o_schedules = n })
      ids decided
  in
  let ids_of pred =
    List.filter_map
      (fun o -> if pred o then Some (target_id o.o_target) else None)
      outcomes
  in
  let is_race o = match o.o_target with Race_target _ -> true | _ -> false in
  let is_irq o = match o.o_target with Irq_target _ -> true | _ -> false in
  let confirmed o =
    match o.o_verdict with Confirmed _ -> true | Refuted _ -> false
  in
  let truth_races =
    List.map (fun (ty, m) -> ty ^ "." ^ m) truth.Seeded.t_races
  in
  {
    r_workload = workload;
    r_seed = seed;
    r_scale = scale;
    r_bugs = bugs;
    r_budget = budget;
    r_events = Array.length trace.Trace.events;
    r_outcomes = outcomes;
    r_schedules =
      List.fold_left (fun acc o -> acc + o.o_schedules) 0 outcomes;
    r_races_pre = Crossval.score ~found:(ids_of is_race) ~truth:truth_races;
    r_races_post =
      Crossval.score
        ~found:(ids_of (fun o -> is_race o && confirmed o))
        ~truth:truth_races;
    r_irq_pre =
      Crossval.score ~found:(ids_of is_irq) ~truth:truth.Seeded.t_irq_unsafe;
    r_irq_post =
      Crossval.score
        ~found:(ids_of (fun o -> is_irq o && confirmed o))
        ~truth:truth.Seeded.t_irq_unsafe;
  }

(* {2 Rendering} *)

let reason_str = function
  | Caller_holds_lock l -> "caller already holds " ^ l
  | Rcu_read_section -> "reads sit in an RCU/seqlock read section"
  | Quiescent_init_teardown -> "runs single-threaded (init/teardown)"
  | Budget_exhausted -> "no conflicting schedule within budget"

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "replay: %s (seed %d, scale %d, seeded bugs %s, budget %d) — %d \
        finding(s), %d directed schedule(s) over %d event(s)\n"
       r.r_workload r.r_seed r.r_scale
       (if r.r_bugs then "on" else "off")
       r.r_budget
       (List.length r.r_outcomes)
       r.r_schedules r.r_events);
  List.iter
    (fun o ->
      let id = target_id o.o_target in
      let srcs = String.concat "+" o.o_sources in
      match o.o_verdict with
      | Confirmed steps ->
          Buffer.add_string buf
            (Printf.sprintf "  [confirmed] %s (%s) — witness:\n" id srcs);
          List.iteri
            (fun i s ->
              Buffer.add_string buf
                (Printf.sprintf "      %d. %s (pid %d) at %s, holds [%s]: %s\n"
                   (i + 1) s.st_flow s.st_pid
                   (Srcloc.to_string s.st_loc)
                   (String.concat ", " s.st_held)
                   s.st_action))
            steps
      | Refuted reason ->
          Buffer.add_string buf
            (Printf.sprintf "  [refuted]   %s (%s) — %s\n" id srcs
               (reason_str reason)))
    r.r_outcomes;
  let scoreline tag (pre : Crossval.score) (post : Crossval.score) =
    Buffer.add_string buf
      (Printf.sprintf
         "%s triage: precision %.2f -> %.2f, recall %.2f -> %.2f (tp %d, fp \
          %d -> %d, fn %d)\n"
         tag pre.Crossval.cv_precision post.Crossval.cv_precision
         pre.Crossval.cv_recall post.Crossval.cv_recall post.Crossval.cv_tp
         pre.Crossval.cv_fp post.Crossval.cv_fp post.Crossval.cv_fn)
  in
  scoreline "races" r.r_races_pre r.r_races_post;
  scoreline "irq" r.r_irq_pre r.r_irq_post;
  Buffer.contents buf

(* {2 JSON} *)

let reason_to_json = function
  | Caller_holds_lock l ->
      Json.O [ ("kind", Json.S "caller_holds_lock"); ("lock", Json.S l) ]
  | Rcu_read_section -> Json.O [ ("kind", Json.S "rcu_read_section") ]
  | Quiescent_init_teardown ->
      Json.O [ ("kind", Json.S "quiescent_init_teardown") ]
  | Budget_exhausted -> Json.O [ ("kind", Json.S "budget_exhausted") ]

let step_to_json s =
  Json.O
    [
      ("pid", Json.I s.st_pid);
      ("flow", Json.S s.st_flow);
      ("action", Json.S s.st_action);
      ("loc", Json.S (Srcloc.to_string s.st_loc));
      ("held", Json.L (List.map (fun c -> Json.S c) s.st_held));
    ]

let verdict_to_json = function
  | Confirmed steps ->
      Json.O
        [
          ("status", Json.S "confirmed");
          ("witness", Json.L (List.map step_to_json steps));
        ]
  | Refuted reason ->
      Json.O [ ("status", Json.S "refuted"); ("why", reason_to_json reason) ]

let step_of_json j =
  let str k =
    match Json.member k j with
    | Some (Json.S s) -> Ok s
    | _ -> Error ("step: missing string field " ^ k)
  in
  let ( let* ) = Result.bind in
  let* flow = str "flow" in
  let* action = str "action" in
  let* loc_s = str "loc" in
  let* loc =
    try Ok (Srcloc.of_string loc_s)
    with Failure m -> Error ("step: bad loc: " ^ m)
  in
  let* pid =
    match Json.member "pid" j with
    | Some (Json.I i) -> Ok i
    | _ -> Error "step: missing pid"
  in
  let* h =
    match Json.member "held" j with
    | Some (Json.L l) ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            match x with
            | Json.S s -> Ok (s :: acc)
            | _ -> Error "step: held must be strings")
          (Ok []) l
        |> Result.map List.rev
    | _ -> Error "step: missing held"
  in
  Ok { st_pid = pid; st_flow = flow; st_action = action; st_loc = loc; st_held = h }

let reason_of_json j =
  match Json.member "kind" j with
  | Some (Json.S "caller_holds_lock") -> (
      match Json.member "lock" j with
      | Some (Json.S l) -> Ok (Caller_holds_lock l)
      | _ -> Error "reason: caller_holds_lock without lock")
  | Some (Json.S "rcu_read_section") -> Ok Rcu_read_section
  | Some (Json.S "quiescent_init_teardown") -> Ok Quiescent_init_teardown
  | Some (Json.S "budget_exhausted") -> Ok Budget_exhausted
  | _ -> Error "reason: unknown kind"

let verdict_of_json j =
  let ( let* ) = Result.bind in
  match Json.member "status" j with
  | Some (Json.S "confirmed") -> (
      match Json.member "witness" j with
      | Some (Json.L steps) ->
          let* steps =
            List.fold_left
              (fun acc s ->
                let* acc = acc in
                let* s = step_of_json s in
                Ok (s :: acc))
              (Ok []) steps
          in
          Ok (Confirmed (List.rev steps))
      | _ -> Error "verdict: confirmed without witness")
  | Some (Json.S "refuted") -> (
      match Json.member "why" j with
      | Some why ->
          let* r = reason_of_json why in
          Ok (Refuted r)
      | None -> Error "verdict: refuted without why")
  | _ -> Error "verdict: unknown status"

let json_of_score (s : Crossval.score) =
  Json.O
    [
      ("tp", Json.I s.Crossval.cv_tp);
      ("fp", Json.I s.Crossval.cv_fp);
      ("fn", Json.I s.Crossval.cv_fn);
      ("precision", Json.F s.Crossval.cv_precision);
      ("recall", Json.F s.Crossval.cv_recall);
      ("spurious", Json.L (List.map (fun x -> Json.S x) s.Crossval.cv_spurious));
      ("missed", Json.L (List.map (fun x -> Json.S x) s.Crossval.cv_missed));
    ]

let target_to_json = function
  | Race_target { rt_type; rt_member } ->
      Json.O
        [
          ("kind", Json.S "race");
          ("type", Json.S rt_type);
          ("member", Json.S rt_member);
        ]
  | Irq_target { it_class } ->
      Json.O [ ("kind", Json.S "irq"); ("class", Json.S it_class) ]

let to_json r =
  Json.to_string
    (Json.O
       [
         ("workload", Json.S r.r_workload);
         ("seed", Json.I r.r_seed);
         ("scale", Json.I r.r_scale);
         ("seeded_bugs", Json.B r.r_bugs);
         ("budget", Json.I r.r_budget);
         ("events", Json.I r.r_events);
         ("schedules", Json.I r.r_schedules);
         ( "findings",
           Json.L
             (List.map
                (fun o ->
                  Json.O
                    [
                      ("id", Json.S (target_id o.o_target));
                      ("target", target_to_json o.o_target);
                      ( "sources",
                        Json.L (List.map (fun s -> Json.S s) o.o_sources) );
                      ("schedules", Json.I o.o_schedules);
                      ("verdict", verdict_to_json o.o_verdict);
                    ])
                r.r_outcomes) );
         ( "triage",
           Json.O
             [
               ("races_pre", json_of_score r.r_races_pre);
               ("races_post", json_of_score r.r_races_post);
               ("irq_pre", json_of_score r.r_irq_pre);
               ("irq_post", json_of_score r.r_irq_post);
             ] );
       ])
