(** The contrived shared-clock example of paper Sec. 4 (Fig. 4).

    [seconds] is protected by [sec_lock]; carrying into [minutes]
    additionally takes [min_lock] (transaction b nested in transaction a).
    The trace contains 1000 correct executions — hence 16 carries — plus
    one execution of a faulty variant that forgot [min_lock], reproducing
    the exact support values of the paper's Tab. 1 and Tab. 2:
    sa(no lock) = sa(sec_lock) = 17, sa(sec_lock → min_lock) =
    sa(min_lock) = 16, sa(min_lock → sec_lock) = 0. *)

module Event = Lockdoc_trace.Event
module Layout = Lockdoc_trace.Layout

let layout =
  Layout.make ~name:"clock"
    [ ("seconds", 8, Layout.Data); ("minutes", 8, Layout.Data) ]

let sec_lock = Lock.static ~kind:Event.Spinlock "sec_lock"
let min_lock = Lock.static ~kind:Event.Spinlock "min_lock"

let fn name body = Kernel.fn_scope ~file:"kernel/clock.c" ~span:12 name body

let tick clock =
  fn "clock_tick" @@ fun () ->
  Lock.spin_lock sec_lock;
  (* seconds = seconds + 1 — one read, one write. *)
  Memory.modify clock "seconds" (fun s -> s + 1);
  (* if (seconds == 60) — the second read of transaction a. *)
  if Memory.read clock "seconds" = 60 then begin
    Lock.spin_lock min_lock;
    Memory.write clock "seconds" 0;
    Memory.modify clock "minutes" (fun m -> m + 1);
    Lock.spin_unlock min_lock
  end;
  Lock.spin_unlock sec_lock

(* The deviant sibling: the developer forgot min_lock (paper Sec. 4.1). *)
let tick_faulty clock =
  fn "clock_tick_buggy" @@ fun () ->
  Lock.spin_lock sec_lock;
  Memory.modify clock "seconds" (fun s -> s + 1);
  if Memory.read clock "seconds" >= 0 (* the buggy carry path *) then begin
    Memory.write clock "seconds" 0;
    Memory.modify clock "minutes" (fun m -> m + 1)
  end;
  Lock.spin_unlock sec_lock

let run ?(ticks = 1000) () =
  let trace, _cov =
    Kernel.run ~layouts:[ layout ] (fun () ->
        Kernel.spawn "clock" (fun () ->
            let clock = Memory.alloc layout in
            for _ = 1 to ticks do
              tick clock
            done;
            tick_faulty clock;
            Memory.free clock))
  in
  trace
