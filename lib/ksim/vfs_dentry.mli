(** Dentry cache of the simulated kernel (fs/dcache.c, fs/libfs.c).

    A child's linkage ([d_child], and the parent's [d_subdirs]) is
    protected by the {e parent's} [d_lock]; lookups take each candidate's
    own [d_lock] inside an RCU + rename-seqlock section, with a lock-free
    RCU-walk variant; the LRU lives under the super block's
    [s_dentry_lru_lock]; and the cursor readdir of fs/libfs.c walks
    [d_subdirs] under the directory's [i_rwsem] plus RCU only — the
    violation the paper reports in Tab. 8. *)

open Obj

val d_alloc : dentry -> int -> dentry
(** New child under [parent], linked under the parent's [d_lock]. The
    caller owns one reference. *)

val d_alloc_root : sb -> dentry

val d_instantiate : dentry -> inode -> unit
(** Bind an inode, nesting [d_lock] inside the inode's [i_lock]. *)

val d_lookup : dentry -> int -> dentry option
(** Reference-counted lookup (ref-walk); a hit takes a reference. *)

val d_lookup_rcu : dentry -> int -> dentry option
(** Lock-free RCU-walk lookup; no reference is taken. *)

val dget : dentry -> unit
val dput : dentry -> unit
(** Drop a reference; the last one parks the dentry on the sb LRU. *)

val dentry_lru_add : dentry -> unit
val dentry_lru_del : dentry -> unit
(** Kill-path removal from the LRU (the [__dentry_kill] shape). *)

val d_drop : dentry -> unit
(** Unhash under [d_lock] + the global hash lock. *)

val d_delete : dentry -> unit
(** Detach the inode binding and unhash. *)

val remove_child : dentry -> dentry -> unit
(** [remove_child parent dentry]: unlink from the parent's children under
    the parent's [d_lock]. *)

val d_move : dentry -> dentry -> unit
(** Rename across directories: [s_vfs_rename_mutex], the global rename
    seqlock, then both parents' and the victim's [d_lock]s; rehashes
    without the dcache hash lock (a deliberate sub-100 % discipline). *)

val shrink_dcache_sb : sb -> unit
(** Free unreferenced LRU dentries. Victims are made unreachable inside
    the non-preemptible LRU section so concurrent lookups cannot
    resurrect them; the actual frees are deferred through RCU. *)

val dcache_readdir : inode -> dentry -> unit
(** The fs/libfs.c cursor readdir: walks the children under the directory
    inode's [i_rwsem] + RCU — without the parent's [d_lock]. *)
