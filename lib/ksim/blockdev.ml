(** Block-device layer (fs/block_dev.c).

    [bd_mutex] protects the open/close state; the registry uses the
    global [bdev_lock]. One size read happens lock-free in the IO path —
    the single block_device violation of the paper's Tab. 7. *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

let bdev_list : bdev list ref = ref []

let () = Kernel.add_boot_hook (fun () -> bdev_list := [])

let bdget dev =
  fn "fs/block_dev.c" 22 "bdget" @@ fun () ->
  Lock.spin_lock Globals.bdev_lock;
  let found =
    List.find_opt
      (fun b ->
        ignore (Memory.read b.bd_inst "bd_list");
        Memory.read b.bd_inst "bd_dev" = dev)
      !bdev_list
  in
  Lock.spin_unlock Globals.bdev_lock;
  match found with
  | Some b -> b
  | None ->
      let b = alloc_bdev () in
      Memory.write b.bd_inst "bd_dev" dev;
      Lock.spin_lock Globals.bdev_lock;
      Memory.write b.bd_inst "bd_list" 1;
      bdev_list := b :: !bdev_list;
      Lock.spin_unlock Globals.bdev_lock;
      b

let blkdev_get bdev holder =
  fn "fs/block_dev.c" 40 "blkdev_get" @@ fun () ->
  Lock.mutex_lock bdev.bd_mutex;
  Memory.modify bdev.bd_inst "bd_openers" (fun o -> o + 1);
  Memory.write bdev.bd_inst "bd_holder" holder;
  Memory.modify bdev.bd_inst "bd_holders" (fun h -> h + 1);
  ignore (Memory.read bdev.bd_inst "bd_invalidated");
  Memory.write bdev.bd_inst "bd_invalidated" 0;
  Memory.write bdev.bd_inst "bd_block_size" 4096;
  Lock.mutex_unlock bdev.bd_mutex

let blkdev_put bdev =
  fn "fs/block_dev.c" 26 "blkdev_put" @@ fun () ->
  Lock.mutex_lock bdev.bd_mutex;
  Memory.modify bdev.bd_inst "bd_openers" (fun o -> max 0 (o - 1));
  Memory.modify bdev.bd_inst "bd_holders" (fun h -> max 0 (h - 1));
  if Memory.read bdev.bd_inst "bd_openers" = 0 then
    Memory.write bdev.bd_inst "bd_holder" 0;
  Lock.mutex_unlock bdev.bd_mutex

let bd_set_size bdev size =
  fn "fs/block_dev.c" 14 "bd_set_size" @@ fun () ->
  Lock.mutex_lock bdev.bd_mutex;
  Memory.write bdev.bd_inst "bd_block_size" size;
  Memory.write bdev.bd_inst "bd_part_count" 1;
  Lock.mutex_unlock bdev.bd_mutex

(* Lock-free size read in the IO submission path (the Tab. 7 block_device
   violation). *)
let blkdev_io_peek_fault = Fault.site ~period:37 "blkdev_direct_io_nolock"

let blkdev_direct_io bdev =
  fn "fs/block_dev.c" 24 "blkdev_direct_IO" @@ fun () ->
  if Fault.fire blkdev_io_peek_fault then
    ignore (Memory.read bdev.bd_inst "bd_block_size")
  else begin
    Lock.mutex_lock bdev.bd_mutex;
    ignore (Memory.read bdev.bd_inst "bd_block_size");
    ignore (Memory.read bdev.bd_inst "bd_openers");
    Lock.mutex_unlock bdev.bd_mutex
  end

let freeze_bdev bdev =
  fn "fs/block_dev.c" 20 "freeze_bdev" @@ fun () ->
  Lock.mutex_lock bdev.bd_fsfreeze_mutex;
  Memory.modify bdev.bd_inst "bd_fsfreeze_count" (fun c -> c + 1);
  Lock.mutex_unlock bdev.bd_fsfreeze_mutex

let thaw_bdev bdev =
  fn "fs/block_dev.c" 18 "thaw_bdev" @@ fun () ->
  Lock.mutex_lock bdev.bd_fsfreeze_mutex;
  Memory.modify bdev.bd_inst "bd_fsfreeze_count" (fun c -> max 0 (c - 1));
  Lock.mutex_unlock bdev.bd_fsfreeze_mutex

let () =
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"fs/block_dev.c" ~span name))
    [
      ("bd_acquire", 20); ("bd_forget", 14); ("bd_may_claim", 16);
      ("bd_prepare_to_claim", 22); ("bd_start_claiming", 28);
      ("bd_link_disk_holder", 26); ("bd_unlink_disk_holder", 16);
      ("blkdev_writepage", 8); ("blkdev_readpage", 8); ("blkdev_write_begin", 10);
      ("blkdev_write_end", 14); ("block_llseek", 12); ("blkdev_fsync", 14);
      ("blkdev_open", 20); ("blkdev_close", 10); ("block_ioctl", 12);
      ("blkdev_write_iter", 22); ("blkdev_read_iter", 14);
    ]

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"blockdev" in
  let gbdev = Sglobal "bdev_lock" in
  let mtx = Smember { ty = "block_device"; var = "bd"; member = "bd_mutex" } in
  let fmtx = Smember { ty = "block_device"; var = "bd"; member = "bd_fsfreeze_mutex" } in
  let r m = read_m "block_device" "bd" m in
  let w m = write_m "block_device" "bd" m in
  let rw m = modify_m "block_device" "bd" m in
  reg "bdget"
    (seq
       [
         spin_lock gbdev; star (seq [ r "bd_list"; r "bd_dev" ]); spin_unlock gbdev;
         opt
           (seq
              [
                call "bdev_alloc_init"; w "bd_dev"; spin_lock gbdev;
                w "bd_list"; spin_unlock gbdev;
              ]);
       ]);
  reg "blkdev_get"
    (with_lock ~lock:(mutex_lock mtx) ~unlock:(mutex_unlock mtx)
       (seq
          [
            rw "bd_openers"; w "bd_holder"; rw "bd_holders"; r "bd_invalidated";
            w "bd_invalidated"; w "bd_block_size";
          ]));
  reg "blkdev_put"
    (with_lock ~lock:(mutex_lock mtx) ~unlock:(mutex_unlock mtx)
       (seq [ rw "bd_openers"; rw "bd_holders"; r "bd_openers"; opt (w "bd_holder") ]));
  reg "bd_set_size"
    (with_lock ~lock:(mutex_lock mtx) ~unlock:(mutex_unlock mtx)
       (seq [ w "bd_block_size"; w "bd_part_count" ]));
  (* The lock-free flavour is the Tab. 7 block_device violation. *)
  reg "blkdev_direct_IO"
    (alt
       [
         r "bd_block_size";
         with_lock ~lock:(mutex_lock mtx) ~unlock:(mutex_unlock mtx)
           (seq [ r "bd_block_size"; r "bd_openers" ]);
       ]);
  reg "freeze_bdev"
    (with_lock ~lock:(mutex_lock fmtx) ~unlock:(mutex_unlock fmtx) (rw "bd_fsfreeze_count"));
  reg "thaw_bdev"
    (with_lock ~lock:(mutex_lock fmtx) ~unlock:(mutex_unlock fmtx) (rw "bd_fsfreeze_count"))
