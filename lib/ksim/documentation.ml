(** The officially documented locking rules of the simulated kernel —
    the corpus the locking-rule checker validates (paper Sec. 7.3,
    Tab. 4/5).

    These transcribe what the source-code comments of the simulated
    kernel "claim" (mirroring fs/inode.c, include/linux/dcache.h,
    include/linux/jbd2.h and include/linux/journal-head.h in Linux 4.10).
    Deliberately, some claims disagree with what the code does — that
    disagreement is the experiment.

    Rule notation (parsed by [Lockdoc_core.Rule.parse]):
    - ["nolock"] — no lock required;
    - ["G(name)"] — a global (statically allocated) lock;
    - ["ES(member)"] — a lock embedded in the same structure instance;
    - ["EO(member in type)"] — a lock embedded in another structure;
    - [" -> "] separates locks that must be taken in this order. *)

type access = R | W

type doc_rule = {
  d_type : string;  (** data type name (not subclass-qualified) *)
  d_member : string;
  d_access : access;
  d_rule : string;
}

let r ty member access rule =
  { d_type = ty; d_member = member; d_access = access; d_rule = rule }

(* struct inode — the 14 rules scattered over fs/inode.c and
   include/linux/fs.h (11 observable, 3 about members the benchmarks
   never touch). *)
let inode_rules =
  [
    r "inode" "i_bytes" W "ES(i_lock)";
    r "inode" "i_state" W "ES(i_lock)";
    r "inode" "i_hash" W "G(inode_hash_lock) -> ES(i_lock)";
    r "inode" "i_blocks" W "ES(i_lock)";
    r "inode" "i_lru" R "ES(i_lock)";
    r "inode" "i_lru" W "ES(i_lock)";
    r "inode" "i_state" R "ES(i_lock)";
    r "inode" "i_size" R "ES(i_lock)";
    r "inode" "i_hash" R "G(inode_hash_lock) -> ES(i_lock)";
    r "inode" "i_blocks" R "ES(i_lock)";
    r "inode" "i_size" W "ES(i_lock)";
    (* Never exercised by the benchmark mix: *)
    r "inode" "i_wb_list" W "ES(i_lock)";
    r "inode" "i_devices" W "ES(i_lock)";
    r "inode" "i_fsnotify_mask" W "ES(i_rwsem)";
  ]

(* struct dentry — include/linux/dcache.h line 83 ff. style. *)
let dentry_rules =
  [
    r "dentry" "d_flags" W "ES(d_lock)";
    r "dentry" "d_flags" R "ES(d_lock)";
    r "dentry" "d_count" W "ES(d_lock)";
    r "dentry" "d_count" R "ES(d_lock)";
    r "dentry" "d_name" W "EO(d_lock in dentry)";
    r "dentry" "d_name" R "ES(d_lock)";
    r "dentry" "d_parent" W "ES(d_lock)";
    r "dentry" "d_parent" R "ES(d_lock)";
    r "dentry" "d_subdirs" W "ES(d_lock)";
    r "dentry" "d_subdirs" R "ES(d_lock)";
    r "dentry" "d_child" W "EO(d_lock in dentry)";
    r "dentry" "d_child" R "EO(d_lock in dentry)";
    r "dentry" "d_lru" W "EO(s_dentry_lru_lock in super_block)";
    r "dentry" "d_lru" R "EO(s_dentry_lru_lock in super_block)";
    r "dentry" "d_hash" W "G(dentry_hash_lock)";
    r "dentry" "d_hash" R "G(dentry_hash_lock)";
    r "dentry" "d_inode" W "ES(d_lock)";
    r "dentry" "d_inode" R "ES(d_lock)";
    r "dentry" "d_time" W "ES(d_lock)";
    r "dentry" "d_iname" W "ES(d_lock)";
    r "dentry" "d_iname" R "nolock";
  ]

(* struct journal_head — include/linux/journal-head.h annotates each
   field with its lock ([jbd_lock_bh_state] is our b_state_lock). *)
let journal_head_rules =
  [
    r "journal_head" "b_bh" R "nolock";
    r "journal_head" "b_transaction" W "EO(b_state_lock in buffer_head)";
    r "journal_head" "b_transaction" R "EO(b_state_lock in buffer_head)";
    r "journal_head" "b_modified" W "EO(b_state_lock in buffer_head)";
    r "journal_head" "b_modified" R "EO(b_state_lock in buffer_head)";
    r "journal_head" "b_frozen_data" W "EO(b_state_lock in buffer_head)";
    r "journal_head" "b_frozen_data" R "EO(b_state_lock in buffer_head)";
    r "journal_head" "b_committed_data" W "EO(b_state_lock in buffer_head)";
    r "journal_head" "b_committed_data" R "EO(b_state_lock in buffer_head)";
    r "journal_head" "b_next_transaction" R "EO(b_state_lock in buffer_head)";
    (* The documentation claims the BH state lock for the list pointers;
       the code files them under j_list_lock. *)
    r "journal_head" "b_jlist" W "EO(b_state_lock in buffer_head)";
    r "journal_head" "b_jlist" R "EO(b_state_lock in buffer_head)";
    r "journal_head" "b_tnext" W "EO(j_list_lock in journal_t)";
    r "journal_head" "b_tnext" R "EO(j_list_lock in journal_t)";
    r "journal_head" "b_tprev" W "EO(j_list_lock in journal_t)";
    r "journal_head" "b_tprev" R "EO(j_list_lock in journal_t)";
    r "journal_head" "b_cp_transaction" W "EO(j_list_lock in journal_t)";
    r "journal_head" "b_cp_transaction" R "EO(j_list_lock in journal_t)";
    r "journal_head" "b_cpnext" W "EO(j_list_lock in journal_t)";
    r "journal_head" "b_cpnext" R "EO(j_list_lock in journal_t)";
    r "journal_head" "b_cpprev" W "EO(j_list_lock in journal_t)";
    r "journal_head" "b_frozen_triggers" R "EO(b_state_lock in buffer_head)";
    (* Never exercised: *)
    r "journal_head" "b_triggers" W "EO(b_state_lock in buffer_head)";
    r "journal_head" "b_triggers" R "EO(b_state_lock in buffer_head)";
  ]

(* transaction_t — include/linux/jbd2.h around line 543. *)
let transaction_rules =
  [
    r "transaction_t" "t_journal" R "nolock";
    r "transaction_t" "t_tid" R "nolock";
    r "transaction_t" "t_state" W "EO(j_state_lock in journal_t)";
    r "transaction_t" "t_state" R "ES(t_handle_lock)";
    r "transaction_t" "t_nr_buffers" W "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_nr_buffers" R "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_buffers" W "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_buffers" R "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_checkpoint_list" W "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_checkpoint_list" R "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_expires" W "ES(t_handle_lock)";
    r "transaction_t" "t_expires" R "ES(t_handle_lock)";
    r "transaction_t" "t_requested" W "ES(t_handle_lock)";
    r "transaction_t" "t_max_wait" W "ES(t_handle_lock)";
    r "transaction_t" "t_start" W "EO(j_state_lock in journal_t)";
    r "transaction_t" "t_start_time" W "EO(j_state_lock in journal_t)";
    r "transaction_t" "t_journal" W "nolock";
    r "transaction_t" "t_requested" R "ES(t_handle_lock)";
    r "transaction_t" "t_max_wait" R "ES(t_handle_lock)";
    r "transaction_t" "t_start" R "EO(j_state_lock in journal_t)";
    (* Never exercised by the mix: *)
    r "transaction_t" "t_reserved_list" W "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_reserved_list" R "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_forget" W "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_forget" R "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_checkpoint_io_list" W "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_checkpoint_io_list" R "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_shadow_list" W "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_shadow_list" R "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_log_list" W "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_log_list" R "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_log_start" W "EO(j_state_lock in journal_t)";
    r "transaction_t" "t_log_start" R "EO(j_state_lock in journal_t)";
    r "transaction_t" "t_inode_list" W "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_inode_list" R "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_cpnext" W "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_cpprev" W "EO(j_list_lock in journal_t)";
    r "transaction_t" "t_need_data_flush" W "EO(j_state_lock in journal_t)";
    r "transaction_t" "t_synchronous_commit" W "nolock";
  ]

(* journal_t — include/linux/jbd2.h around line 795. *)
let journal_rules =
  [
    r "journal_t" "j_flags" W "ES(j_state_lock)";
    r "journal_t" "j_flags" R "ES(j_state_lock)";
    r "journal_t" "j_running_transaction" W "ES(j_state_lock)";
    r "journal_t" "j_running_transaction" R "ES(j_state_lock)";
    r "journal_t" "j_committing_transaction" W "ES(j_state_lock)";
    r "journal_t" "j_committing_transaction" R "ES(j_state_lock)";
    r "journal_t" "j_checkpoint_transactions" W "ES(j_list_lock)";
    r "journal_t" "j_commit_sequence" W "ES(j_state_lock)";
    r "journal_t" "j_commit_sequence" R "ES(j_state_lock)";
    r "journal_t" "j_commit_request" W "ES(j_state_lock)";
    r "journal_t" "j_commit_request" R "ES(j_state_lock)";
    r "journal_t" "j_transaction_sequence" W "ES(j_state_lock)";
    r "journal_t" "j_tail_sequence" W "ES(j_state_lock)";
    r "journal_t" "j_tail" W "ES(j_state_lock)";
    r "journal_t" "j_free" W "ES(j_state_lock)";
    r "journal_t" "j_revoke" W "ES(j_revoke_lock)";
    r "journal_t" "j_revoke" R "ES(j_revoke_lock)";
    r "journal_t" "j_transaction_sequence" R "ES(j_state_lock)";
    r "journal_t" "j_free" R "ES(j_state_lock)";
    r "journal_t" "j_head" R "ES(j_state_lock)";
    r "journal_t" "j_revoke_table" W "ES(j_revoke_lock)";
    (* Documented under j_state_lock, actually kept under the dedicated
       statistics/history locks: *)
    r "journal_t" "j_average_commit_time" W "ES(j_state_lock)";
    r "journal_t" "j_overall_stats" W "ES(j_state_lock)";
    r "journal_t" "j_running_stats" W "ES(j_state_lock)";
    (* Never exercised by the mix: *)
    r "journal_t" "j_errno" W "ES(j_state_lock)";
    r "journal_t" "j_errno" R "ES(j_state_lock)";
    r "journal_t" "j_barrier_count" R "ES(j_state_lock)";
    r "journal_t" "j_head" W "ES(j_state_lock)";
    r "journal_t" "j_last" W "ES(j_state_lock)";
    r "journal_t" "j_first" W "ES(j_state_lock)";
    r "journal_t" "j_blk_offset" R "nolock";
    r "journal_t" "j_maxlen" R "nolock";
  ]

let rules =
  inode_rules @ dentry_rules @ journal_head_rules @ transaction_rules
  @ journal_rules

let rules_for ty = List.filter (fun dr -> dr.d_type = ty) rules

let checked_types =
  [ "inode"; "journal_head"; "transaction_t"; "journal_t"; "dentry" ]
