(** Simulated kernel heap for monitored data structures.

    Instances live at concrete simulated addresses; every member access
    emits a raw [Mem_access] event with the absolute address, leaving the
    (address → data type, member) resolution to the trace post-processing
    step, exactly as the paper's VM-based monitoring does. Freed addresses
    are reused so the importer's liveness tracking is actually exercised. *)

type instance = {
  base : int;
  layout : Lockdoc_trace.Layout.t;
  subclass : string option;
  values : int array;  (** one slot per member, indexed by position *)
  mutable live : bool;
}

val alloc : ?subclass:string -> Lockdoc_trace.Layout.t -> instance
(** Emits an [Alloc] event. *)

val free : instance -> unit
(** Emits a [Free] event; the address range becomes reusable. *)

val member_ptr : instance -> string -> int
(** Absolute address of a member (used to place embedded locks). *)

val read : instance -> string -> int
(** Emits a read access at the current source location and returns the
    stored value. Raises on use-after-free and on lock-typed members. *)

val write : instance -> string -> int -> unit

val modify : instance -> string -> (int -> int) -> unit
(** Read-modify-write; emits both accesses, like the compiled code would. *)

(** {2 Atomic accessors}

    These wrap the access in an [atomic_*] function scope so the default
    filter drops it (paper Sec. 5.3, item 3). *)

val atomic_read : instance -> string -> int
val atomic_set : instance -> string -> int -> unit
val atomic_inc : instance -> string -> unit
val atomic_dec_and_test : instance -> string -> bool
