(** The simulated kernel runtime.

    Substitutes the paper's Bochs/FAIL* environment: a single-core machine
    running cooperatively scheduled kernel control flows, with hard- and
    soft-interrupt injection at preemption points, and an instrumentation
    bus that appends every observable action (allocation, lock operation,
    member access, function entry/exit, context switch) to a trace sink.

    Kernel code (the subsystems under this directory) runs inside
    {!spawn}ed tasks; synchronisation primitives in {!Lock} block through
    {!wait_until} and create preemption points through {!preempt_point}.
    Classic kernel discipline is enforced: sleeping with preemption
    disabled raises, as does blocking inside an interrupt handler. *)

(** {2 Structured scheduler halts} *)

type flow_state =
  | Fl_runnable
  | Fl_blocked of string  (** the [wait_until] reason *)
  | Fl_finished

type flow = { fl_pid : int; fl_name : string; fl_state : flow_state }
(** One control flow's snapshot at a scheduling decision or halt. *)

type halt = {
  h_deadlock : bool;  (** [true]: every live flow blocked; [false]: budget *)
  h_steps : int;  (** scheduler iterations consumed *)
  h_budget : int;  (** the configured [max_steps] *)
  h_flows : flow list;  (** every spawned flow, in pid order *)
}
(** Machine-readable halt diagnostic. Budget halts list which flows
    were still runnable; deadlock halts carry each blocked flow's wait
    reason. *)

val describe_halt : halt -> string
(** One-line rendering (also installed as the [Printexc] printer for
    {!Deadlock} and {!Stuck}). *)

exception Deadlock of halt
(** All remaining control flows are blocked with no interrupt able to make
    progress. *)

exception Stuck of halt
(** The step budget was exhausted (runaway livelock guard). *)

exception Sleep_in_atomic of string
(** A control flow tried to block while preemption was disabled or from
    interrupt context. *)

type config = {
  seed : int;
  hardirq_rate : float;  (** injection probability per preemption point *)
  softirq_rate : float;
  max_steps : int;  (** scheduler-iteration budget *)
}

val default_config : config

(** {2 Run lifecycle} *)

val add_boot_hook : (unit -> unit) -> unit
(** Modules with per-run global state (heap, static locks) register a
    reset hook once at load time. *)

(** {2 Schedule control (replay)} *)

type access_view = {
  av_type : string;  (** layout type name, e.g. "super_block" *)
  av_subclass : string option;
  av_member : string;
  av_ptr : int;  (** absolute member address *)
  av_kind : Lockdoc_trace.Event.access_kind;
  av_loc : Lockdoc_trace.Srcloc.t;
      (** the source location the access is about to emit *)
  av_pid : int;  (** -1 in hardirq/softirq context *)
  av_in_irq : bool;
  av_preempt_off : bool;
  av_irq_off : bool;
  av_stack : string list;  (** function scopes, innermost first *)
}
(** A data-member access about to happen, as seen by a breakpoint: the
    event is not yet emitted and the access not yet performed. *)

type control = {
  ctl_on_access : access_view -> unit;
      (** Breakpoint hook: runs before every data-member access, inside
          the accessing flow. May call {!preempt_now} to force a
          directed switch at this exact point. *)
  ctl_on_event : Lockdoc_trace.Event.t -> unit;
      (** Tap on the instrumentation bus (every emitted event). Runs
          synchronously; {!current_pid} and friends describe the
          emitting context. *)
  ctl_pick : flow list -> int option;
      (** Scheduling override, consulted at every scheduler iteration
          with a snapshot of all flows. [None] (or a pid that is not
          currently runnable) defers to the seeded default choice —
          directed picks never consume scheduler randomness. *)
}
(** A programmable schedule controller. All hooks of {!null_control}
    are no-ops and add no per-access allocation. *)

val null_control : control

val preempt_now : unit -> bool
(** Force a preemption from inside a controller hook: yields to the
    scheduler and returns [true] if kernel discipline allows it;
    returns [false] without yielding in irq context or while
    preemption is disabled. *)

val flows : unit -> flow list
(** Snapshot of every flow of the current run. *)

val peek_loc : unit -> Lockdoc_trace.Srcloc.t
(** The location {!here} would return next, without advancing the
    cursor or marking coverage. *)

val access_point :
  ty:string ->
  subclass:string option ->
  member:string ->
  ptr:int ->
  kind:Lockdoc_trace.Event.access_kind ->
  unit
(** Breakpoint site used by {!Memory}: offers the resolved access to
    the controller, then behaves as an ordinary {!preempt_point}. *)

val run :
  ?config:config ->
  ?control:control ->
  layouts:Lockdoc_trace.Layout.t list ->
  (unit -> unit) ->
  Lockdoc_trace.Trace.t * Source.coverage
(** [run ~layouts setup] boots a fresh kernel, calls [setup] (which spawns
    tasks and registers interrupt handlers), schedules until every task
    finished, and returns the recorded trace and coverage. [control]
    (default {!null_control}) installs a schedule controller for the
    whole run. *)

val spawn : string -> (unit -> unit) -> unit
val register_hardirq : string -> (unit -> unit) -> unit
val register_softirq : string -> (unit -> unit) -> unit

(** {2 Primitives used by kernel code and the Lock/Memory layers} *)

val emit : Lockdoc_trace.Event.t -> unit
val prng : unit -> Lockdoc_util.Prng.t
val current_pid : unit -> int
val in_irq : unit -> bool

val fn_scope : file:string -> span:int -> string -> (unit -> 'a) -> 'a
(** [fn_scope ~file ~span name body] — enter the simulated kernel function
    [name] (declared on first use): emits [Fun_enter]/[Fun_exit], marks
    coverage, and maintains the per-flow line cursor used by {!here}. *)

val debug_frames : unit -> (Source.fn * int ref) list
(** Current function-scope stack (diagnostics only). *)

val here : unit -> Lockdoc_trace.Srcloc.t
(** Current synthetic source location: the next line of the innermost
    function scope; advances the cursor and marks line coverage. *)

val preempt_point : unit -> unit
(** Voluntary preemption point: may switch to another task and/or inject
    interrupts. No-op while preemption is disabled or in IRQ context. *)

val wait_until : string -> (unit -> bool) -> unit
(** Block until the predicate holds. [reason] appears in {!Deadlock}
    diagnostics. Re-checked by the scheduler; the predicate must not have
    side effects. *)

val preempt_disable : unit -> unit
val preempt_enable : unit -> unit

val local_irq_disable : unit -> unit
(** Mask interrupts. Modelled as acquiring the "irqoff" pseudo-lock
    (ptr {!irqoff_lock_ptr}) so irq-safety analyses can see, at every
    access and acquisition, whether interrupts were enabled. Only the
    off/on transitions emit events. *)

val local_irq_enable : unit -> unit
val local_bh_disable : unit -> unit
val local_bh_enable : unit -> unit
val preempt_disabled : unit -> bool

val irqoff_lock_ptr : int
(** Pseudo-lock address held while interrupts are masked. *)

val bhoff_lock_ptr : int
(** Pseudo-lock address held while bottom halves are masked. *)

val raise_hardirq : unit -> unit
(** Run every registered hardirq handler once, synchronously, as if the
    interrupt fired here. No-op when already in irq context or
    interrupts are masked. Deterministic counterpart to the
    probabilistic injector. *)

val raise_softirq : unit -> unit
(** Like {!raise_hardirq} for softirq handlers (honours bh masking). *)
