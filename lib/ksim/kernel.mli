(** The simulated kernel runtime.

    Substitutes the paper's Bochs/FAIL* environment: a single-core machine
    running cooperatively scheduled kernel control flows, with hard- and
    soft-interrupt injection at preemption points, and an instrumentation
    bus that appends every observable action (allocation, lock operation,
    member access, function entry/exit, context switch) to a trace sink.

    Kernel code (the subsystems under this directory) runs inside
    {!spawn}ed tasks; synchronisation primitives in {!Lock} block through
    {!wait_until} and create preemption points through {!preempt_point}.
    Classic kernel discipline is enforced: sleeping with preemption
    disabled raises, as does blocking inside an interrupt handler. *)

exception Deadlock of string
(** All remaining control flows are blocked with no interrupt able to make
    progress; the payload lists who waits for what. *)

exception Stuck of string
(** The step budget was exhausted (runaway livelock guard). *)

exception Sleep_in_atomic of string
(** A control flow tried to block while preemption was disabled or from
    interrupt context. *)

type config = {
  seed : int;
  hardirq_rate : float;  (** injection probability per preemption point *)
  softirq_rate : float;
  max_steps : int;  (** scheduler-iteration budget *)
}

val default_config : config

(** {2 Run lifecycle} *)

val add_boot_hook : (unit -> unit) -> unit
(** Modules with per-run global state (heap, static locks) register a
    reset hook once at load time. *)

val run :
  ?config:config ->
  layouts:Lockdoc_trace.Layout.t list ->
  (unit -> unit) ->
  Lockdoc_trace.Trace.t * Source.coverage
(** [run ~layouts setup] boots a fresh kernel, calls [setup] (which spawns
    tasks and registers interrupt handlers), schedules until every task
    finished, and returns the recorded trace and coverage. *)

val spawn : string -> (unit -> unit) -> unit
val register_hardirq : string -> (unit -> unit) -> unit
val register_softirq : string -> (unit -> unit) -> unit

(** {2 Primitives used by kernel code and the Lock/Memory layers} *)

val emit : Lockdoc_trace.Event.t -> unit
val prng : unit -> Lockdoc_util.Prng.t
val current_pid : unit -> int
val in_irq : unit -> bool

val fn_scope : file:string -> span:int -> string -> (unit -> 'a) -> 'a
(** [fn_scope ~file ~span name body] — enter the simulated kernel function
    [name] (declared on first use): emits [Fun_enter]/[Fun_exit], marks
    coverage, and maintains the per-flow line cursor used by {!here}. *)

val debug_frames : unit -> (Source.fn * int ref) list
(** Current function-scope stack (diagnostics only). *)

val here : unit -> Lockdoc_trace.Srcloc.t
(** Current synthetic source location: the next line of the innermost
    function scope; advances the cursor and marks line coverage. *)

val preempt_point : unit -> unit
(** Voluntary preemption point: may switch to another task and/or inject
    interrupts. No-op while preemption is disabled or in IRQ context. *)

val wait_until : string -> (unit -> bool) -> unit
(** Block until the predicate holds. [reason] appears in {!Deadlock}
    diagnostics. Re-checked by the scheduler; the predicate must not have
    side effects. *)

val preempt_disable : unit -> unit
val preempt_enable : unit -> unit

val local_irq_disable : unit -> unit
(** Mask interrupts. Modelled as acquiring the "irqoff" pseudo-lock
    (ptr {!irqoff_lock_ptr}) so irq-safety analyses can see, at every
    access and acquisition, whether interrupts were enabled. Only the
    off/on transitions emit events. *)

val local_irq_enable : unit -> unit
val local_bh_disable : unit -> unit
val local_bh_enable : unit -> unit
val preempt_disabled : unit -> bool

val irqoff_lock_ptr : int
(** Pseudo-lock address held while interrupts are masked. *)

val bhoff_lock_ptr : int
(** Pseudo-lock address held while bottom halves are masked. *)

val raise_hardirq : unit -> unit
(** Run every registered hardirq handler once, synchronously, as if the
    interrupt fired here. No-op when already in irq context or
    interrupts are masked. Deterministic counterpart to the
    probabilistic injector. *)

val raise_softirq : unit -> unit
(** Like {!raise_hardirq} for softirq handlers (honours bh masking). *)
