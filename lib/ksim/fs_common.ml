(** Generic file operations shared by the simulated filesystems —
    the libfs/generic_file_* layer of the kernel.

    Subclasses of [struct inode] (paper Sec. 5.3, item 1) are realised by
    giving each filesystem its own [fs_ops]; LockDoc derives rules per
    subclass, so the per-fs differences in locking discipline matter. *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

(* The common read path: everything is lock-free, as in
   generic_file_read_iter on the buffered fast path. *)
let generic_read inode =
  fn "mm/filemap.c" 30 "generic_file_read_iter" @@ fun () ->
  (* Lock-free pending-writeback peek, as the real fast path does. *)
  ignore (Memory.read inode.i_inst "i_state");
  ignore (Vfs_inode.i_size_read inode);
  ignore (Memory.read inode.i_inst "i_data.nrpages");
  ignore (Memory.read inode.i_inst "i_data.flags");
  ignore (Memory.read inode.i_inst "i_blkbits");
  Vfs_inode.touch_atime inode

(* The common write path: i_rwsem for writing, size under the seqcount,
   block accounting under i_lock, then dirty marking. *)
let generic_write inode n =
  fn "mm/filemap.c" 34 "generic_file_write_iter" @@ fun () ->
  Lock.down_write inode.i_rwsem;
  let size = Vfs_inode.i_size_read inode in
  Vfs_inode.i_size_write inode (size + n);
  Memory.modify inode.i_inst "i_data.nrpages" (fun p -> p + (n / 4096) + 1);
  Vfs_inode.file_update_time inode;
  Lock.up_write inode.i_rwsem;
  Vfs_inode.inode_add_bytes inode n;
  Vfs_inode.mark_inode_dirty inode;
  Bdi.balance_dirty_pages inode.i_sb.s_bdi

let generic_truncate inode =
  fn "mm/truncate.c" 24 "truncate_inode_pages" @@ fun () ->
  Lock.down_write inode.i_rwsem;
  Vfs_inode.i_size_write inode 0;
  Lock.spin_lock inode.i_tree_lock;
  Memory.write inode.i_inst "i_data.nrpages" 0;
  Memory.write inode.i_inst "i_data.nrexceptional" 0;
  Lock.spin_unlock inode.i_tree_lock;
  Lock.up_write inode.i_rwsem

let simple_setattr inode ~mode ~uid =
  (* notify_change already holds i_rwsem and wrote the common fields. *)
  fn "fs/libfs.c" 12 "simple_setattr_fs" @@ fun () ->
  ignore mode;
  ignore uid;
  Memory.modify inode.i_inst "i_generation" (fun g -> g + 1)

let generic_evict inode =
  fn "fs/inode.c" 16 "truncate_inode_pages_final" @@ fun () ->
  Lock.spin_lock inode.i_tree_lock;
  Memory.write inode.i_inst "i_data.nrpages" 0;
  Lock.spin_unlock inode.i_tree_lock;
  ignore (Memory.read inode.i_inst "i_data.host")

(* Assemble a simple in-memory filesystem (ramfs shape). *)
let simple_fstype ?(file = "fs/ramfs/inode.c") name =
  {
    fs_name = name;
    fs_file = file;
    fs_ops =
      {
        op_new_inode = (fun sb -> Vfs_inode.new_inode sb);
        op_read = generic_read;
        op_write = generic_write;
        op_setattr = simple_setattr;
        op_evict = generic_evict;
      };
  }

(* Seeded ground-truth race (period 0 = off by default): a superblock
   field update without s_umount, racing [alloc_sb]'s initialisation. *)
let seed_race_symlink = Fault.site ~period:0 "seed_race_symlink"

(* Symlinks: the target pointer lives in the unrolled union member
   [i_link]; reading a symlink is lock-free (RCU walk). *)
let set_link inode target =
  fn "fs/namei.c" 10 "inode_set_link" @@ fun () ->
  Lock.down_write inode.i_rwsem;
  Memory.write inode.i_inst "i_link" target;
  Memory.write inode.i_inst "i_mode" 0o120777;
  Lock.up_write inode.i_rwsem;
  if Fault.fire seed_race_symlink then
    Memory.write inode.i_sb.sb_inst "s_time_gran" 1000000

let get_link inode =
  fn "fs/namei.c" 8 "get_link" @@ fun () ->
  Lock.with_rcu (fun () -> Memory.read inode.i_inst "i_link")

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"vfs" in
  let irw = Smember { ty = "inode"; var = "i"; member = "i_rwsem" } in
  let tree = Smember { ty = "inode"; var = "i"; member = "i_data.tree_lock" } in
  let r m = read_m "inode" "i" m in
  let w m = write_m "inode" "i" m in
  let bi = [ ("i", "i") ] in
  reg ~root:true "generic_file_read_iter"
    (seq
       [
         r "i_state"; call ~binds:bi "i_size_read"; r "i_data.nrpages";
         r "i_data.flags"; r "i_blkbits"; call ~binds:bi "touch_atime";
       ]);
  reg ~root:true "generic_file_write_iter"
    (seq
       [
         down_write irw; call ~binds:bi "i_size_read"; call ~binds:bi "i_size_write";
         modify_m "inode" "i" "i_data.nrpages"; call ~binds:bi "file_update_time";
         up_write irw; call ~binds:bi "inode_add_bytes";
         call ~binds:bi "__mark_inode_dirty";
         call ~binds:[ ("bdi", "bdi") ] "balance_dirty_pages";
       ]);
  reg ~root:true "truncate_inode_pages"
    (seq
       [
         down_write irw; call ~binds:bi "i_size_write";
         spin_lock tree; w "i_data.nrpages"; w "i_data.nrexceptional";
         spin_unlock tree; up_write irw;
       ]);
  reg "simple_setattr_fs" (modify_m "inode" "i" "i_generation");
  reg "truncate_inode_pages_final"
    (seq
       [
         spin_lock tree; w "i_data.nrpages"; spin_unlock tree; r "i_data.host";
       ]);
  (* The trailing s_time_gran write is the seeded ground-truth race. *)
  reg ~root:true "inode_set_link"
    (seq
       [
         down_write irw; w "i_link"; w "i_mode"; up_write irw;
         opt (write_m "super_block" "i.sb" "s_time_gran");
       ]);
  reg ~root:true "get_link" (with_rcu (r "i_link"))
