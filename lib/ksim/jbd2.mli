(** JBD2 journaling layer (fs/jbd2) — the substrate behind the paper's
    transaction_t, journal_t and journal_head results.

    Journal state lives under the [j_state_lock] rwlock, list linkage
    under [j_list_lock], journal-head payloads under the owning
    buffer_head's state lock (an EO rule), and handle bookkeeping under
    [t_handle_lock]. Commit drains open handles before locking the
    transaction, exactly like the real [jbd2_journal_commit_transaction]. *)

open Obj

val journal_start : journal -> txn
(** Open a handle on the running transaction (creating one if needed).
    Must be paired with {!journal_stop}; commit waits for open handles. *)

val journal_stop : txn -> unit

val get_transaction : journal -> txn
(** Install a fresh running transaction (normally via {!journal_start}). *)

val journal_get_write_access : txn -> bh -> jh
(** Attach (or reuse) the buffer's journal head and file it on the
    transaction's metadata list. The journal head pins the buffer. *)

val journal_dirty_metadata : txn -> jh -> unit
val journal_forget : txn -> jh -> unit

val commit_transaction : journal -> unit
(** Close the running transaction to new handles, drain open ones, write
    the metadata buffers out and move the transaction to the checkpoint
    list. *)

val checkpoint : journal -> unit
(** Tear down committed transactions: free owned journal heads (releasing
    their buffer pins) and advance the log tail. Journal heads re-joined
    to a newer transaction survive until that one checkpoints. *)

val journal_revoke : journal -> int -> unit
(** Record a revocation under [j_revoke_lock]. *)

val wait_commit : journal -> unit
(** fsync-style wait: reads commit sequencing under the reader side of
    [j_state_lock], plus a lock-free peek at the committing
    transaction's state. *)

val commit_timer_kick : journal -> unit
(** The softirq commit kick: lock-free journal-state peeks (runs from
    interrupt context). *)

val peek_committing_nolock : journal -> unit
(** The deliberate fsync fast-path peek at [j_committing_transaction]
    without [j_state_lock] — the journal_t violation of paper Tab. 8. *)
