(** Writeback / backing_dev_info subsystem (mm/backing-dev.c,
    mm/page-writeback.c, fs/fs-writeback.c).

    The per-writeback fields ([wb.*] lists, timestamps, bandwidth) are
    protected by the embedded [wb.list_lock]; work queueing uses
    [wb.work_lock]; the global bdi list uses the static [bdi_lock].
    The dirty-throttling path reads the bandwidth estimates lock-free, as
    Linux does — those reads are part of the backing_dev_info violations
    in the paper's Tab. 7. *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

let bdi_list : bdi list ref = ref []

let () = Kernel.add_boot_hook (fun () -> bdi_list := [])

let bdi_register bdi =
  fn "mm/backing-dev.c" 18 "bdi_register" @@ fun () ->
  Lock.spin_lock Globals.bdi_lock;
  Memory.write bdi.bdi_inst "bdi_list" 1;
  bdi_list := bdi :: !bdi_list;
  Lock.spin_unlock Globals.bdi_lock;
  Memory.write bdi.bdi_inst "ra_pages" 32;
  Memory.write bdi.bdi_inst "capabilities" 1

let bdi_unregister bdi =
  fn "mm/backing-dev.c" 14 "bdi_unregister" @@ fun () ->
  Lock.spin_lock Globals.bdi_lock;
  Memory.write bdi.bdi_inst "bdi_list" 0;
  bdi_list := List.filter (fun b -> b != bdi) !bdi_list;
  Lock.spin_unlock Globals.bdi_lock

(* [wb.work_lock] is also taken from the timer interrupt
   ({!wakeup_flusher_irq}), so process-context users must mask
   interrupts around it. The seeded bug (period 0 = off by default)
   reverts to the plain, irq-unsafe acquisition — the ground-truth
   target of the sanitizer's irq-safety analysis. *)
let seed_irq_unsafe_wb = Fault.site ~period:0 "seed_irq_unsafe_wb"

let wb_queue_work bdi =
  fn "fs/fs-writeback.c" 16 "wb_queue_work" @@ fun () ->
  if Fault.fire seed_irq_unsafe_wb then begin
    Lock.spin_lock bdi.wb_work_lock;
    Memory.write bdi.bdi_inst "wb.work_list" 1;
    Memory.write bdi.bdi_inst "wb.dwork" 1;
    Lock.spin_unlock bdi.wb_work_lock
  end
  else begin
    Lock.spin_lock_irq bdi.wb_work_lock;
    Memory.write bdi.bdi_inst "wb.work_list" 1;
    Memory.write bdi.bdi_inst "wb.dwork" 1;
    Lock.spin_unlock_irq bdi.wb_work_lock
  end

let wb_update_bandwidth bdi =
  fn "mm/page-writeback.c" 34 "wb_update_bandwidth" @@ fun () ->
  Lock.spin_lock bdi.wb_list_lock;
  Memory.write bdi.bdi_inst "wb.bw_time_stamp" 1;
  Memory.modify bdi.bdi_inst "wb.written_stamp" (fun v -> v + 1);
  Memory.modify bdi.bdi_inst "wb.dirtied_stamp" (fun v -> v + 1);
  Memory.modify bdi.bdi_inst "wb.write_bandwidth" (fun v -> (v + 100) / 2);
  Memory.modify bdi.bdi_inst "wb.avg_write_bandwidth" (fun v -> (v + 100) / 2);
  Memory.modify bdi.bdi_inst "wb.dirty_ratelimit" (fun v -> (v + 10) / 2);
  Memory.modify bdi.bdi_inst "wb.balanced_dirty_ratelimit" (fun v -> (v + 10) / 2);
  Lock.spin_unlock bdi.wb_list_lock

(* Dirty throttling snapshots the rate estimates under the list lock on
   the common path, but a fast-path flavour reads them lock-free — the
   backing_dev_info violations of the paper's Tab. 7. *)
let throttle_nolock_fault = Fault.site ~period:14 "balance_dirty_pages_nolock"

let balance_dirty_pages bdi =
  fn "mm/page-writeback.c" 40 "balance_dirty_pages" @@ fun () ->
  let snapshot () =
    ignore (Memory.read bdi.bdi_inst "wb.dirty_ratelimit");
    ignore (Memory.read bdi.bdi_inst "wb.avg_write_bandwidth");
    ignore (Memory.read bdi.bdi_inst "wb.dirty_exceeded");
    ignore (Memory.read bdi.bdi_inst "wb.balanced_dirty_ratelimit")
  in
  if Fault.fire throttle_nolock_fault then snapshot ()
  else begin
    Lock.spin_lock bdi.wb_list_lock;
    snapshot ();
    Lock.spin_unlock bdi.wb_list_lock
  end;
  ignore (Memory.read bdi.bdi_inst "ra_pages")

(* The periodic flusher: walk b_dirty under wb.list_lock, then write the
   inodes back. *)
let wb_do_writeback bdi =
  fn "fs/fs-writeback.c" 36 "wb_do_writeback" @@ fun () ->
  Lock.spin_lock_irq bdi.wb_work_lock;
  ignore (Memory.read bdi.bdi_inst "wb.work_list");
  Memory.write bdi.bdi_inst "wb.work_list" 0;
  Lock.spin_unlock_irq bdi.wb_work_lock;
  Lock.spin_lock bdi.wb_list_lock;
  Memory.write bdi.bdi_inst "wb.last_old_flush" 1;
  Memory.modify bdi.bdi_inst "wb.state" (fun s -> s lor 0x1);
  (* Pin each inode under the list lock (the section is non-preemptible,
     so the I_FREEING check and the reference grab are atomic against
     iput's teardown decision), skipping inodes being torn down. *)
  let dirty =
    List.filter
      (fun (i : Obj.inode) ->
        ignore (Memory.read i.i_inst "i_io_list");
        ignore (Memory.read i.i_inst "dirtied_when");
        (* i_state peek without the inode's i_lock. *)
        let state = Memory.read i.i_inst "i_state" in
        if state land 0x20 (* I_FREEING *) = 0 then begin
          Memory.atomic_inc i.i_inst "i_count";
          Memory.write i.i_inst "i_io_list" 0;
          true
        end
        else false)
      bdi.b_dirty
  in
  bdi.b_dirty <- [];
  Memory.write bdi.bdi_inst "wb.b_io" 0;
  Lock.spin_unlock bdi.wb_list_lock;
  List.iter
    (fun i ->
      Lock.down_read i.Obj.i_sb.Obj.s_umount;
      Vfs_super.writeback_single_inode i;
      Lock.up_read i.Obj.i_sb.Obj.s_umount;
      Vfs_inode.iput i)
    dirty;
  Lock.spin_lock bdi.wb_list_lock;
  Memory.modify bdi.bdi_inst "wb.state" (fun s -> s land lnot 0x1);
  Memory.modify bdi.bdi_inst "wb.completions" (fun c -> c + 1);
  Lock.spin_unlock bdi.wb_list_lock;
  wb_update_bandwidth bdi

(* Timer-interrupt path: inspects the writeback state and kicks the
   flusher under [wb.work_lock]. Taken from hardirq context, this is
   what makes the lock class irq-used — any process-context holder
   with interrupts enabled (the seeded bug above) is then irq-unsafe. *)
let wakeup_flusher_irq bdi =
  fn "mm/backing-dev.c" 10 "laptop_mode_timer_fn" @@ fun () ->
  Lock.spin_lock bdi.wb_work_lock;
  ignore (Memory.read bdi.bdi_inst "wb.state");
  ignore (Memory.read bdi.bdi_inst "wb.last_old_flush");
  if bdi.b_dirty <> [] then Memory.write bdi.bdi_inst "wb.work_list" 1;
  Lock.spin_unlock bdi.wb_work_lock

(* Cold declarations (coverage denominators outside fs/). *)
let () =
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"mm/backing-dev.c" ~span name))
    [
      ("wb_congested_get_create", 24); ("wb_congested_put", 14);
      ("cgwb_create", 40); ("wb_memcg_offline", 16); ("wb_blkcg_offline", 14);
      ("bdi_debug_stats_show", 26); ("congestion_wait", 12);
      ("wait_iff_congested", 20);
    ];
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"mm/page-writeback.c" ~span name))
    [
      ("domain_dirty_limits", 30); ("wb_position_ratio", 44);
      ("wb_dirty_limits", 22); ("writeback_set_ratelimit", 12);
      ("laptop_io_completion", 6); ("laptop_sync_completion", 10);
      ("tag_pages_for_writeback", 18); ("write_cache_pages", 50);
    ]

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"writeback" in
  let gbdi = Sglobal "bdi_lock" in
  let work = Smember { ty = "backing_dev_info"; var = "bdi"; member = "wb.work_lock" } in
  let wlist = Smember { ty = "backing_dev_info"; var = "bdi"; member = "wb.list_lock" } in
  let r m = read_m "backing_dev_info" "bdi" m in
  let w m = write_m "backing_dev_info" "bdi" m in
  let rw m = modify_m "backing_dev_info" "bdi" m in
  let ri m = read_m "inode" "i" m in
  let wi m = write_m "inode" "i" m in
  reg ~root:true "bdi_register"
    (seq
       [
         spin_lock gbdi; w "bdi_list"; spin_unlock gbdi;
         (* ra_pages/capabilities are set after the list insertion with
            no lock held, as mm/backing-dev.c does. *)
         w "ra_pages"; w "capabilities";
       ]);
  reg ~root:true "bdi_unregister"
    (seq [ spin_lock gbdi; w "bdi_list"; spin_unlock gbdi ]);
  (* First alternative: the seeded irq-unsafe flavour (plain spin_lock of
     a class also taken from hardirq context). *)
  reg ~root:true "wb_queue_work"
    (alt
       [
         seq [ spin_lock work; w "wb.work_list"; w "wb.dwork"; spin_unlock work ];
         seq [ spin_lock_irq work; w "wb.work_list"; w "wb.dwork"; spin_unlock_irq work ];
       ]);
  reg "wb_update_bandwidth"
    (with_lock ~lock:(spin_lock wlist) ~unlock:(spin_unlock wlist)
       (seq
          [
            w "wb.bw_time_stamp"; rw "wb.written_stamp"; rw "wb.dirtied_stamp";
            rw "wb.write_bandwidth"; rw "wb.avg_write_bandwidth";
            rw "wb.dirty_ratelimit"; rw "wb.balanced_dirty_ratelimit";
          ]));
  let snapshot =
    seq
      [
        r "wb.dirty_ratelimit"; r "wb.avg_write_bandwidth";
        r "wb.dirty_exceeded"; r "wb.balanced_dirty_ratelimit";
      ]
  in
  reg "balance_dirty_pages"
    (seq
       [
         alt
           [
             snapshot;
             with_lock ~lock:(spin_lock wlist) ~unlock:(spin_unlock wlist) snapshot;
           ];
         r "ra_pages";
       ]);
  reg ~root:true "wb_do_writeback"
    (seq
       [
         spin_lock_irq work; r "wb.work_list"; w "wb.work_list"; spin_unlock_irq work;
         spin_lock wlist; w "wb.last_old_flush"; rw "wb.state";
         star
           (seq
              [
                ri "i_io_list"; ri "dirtied_when"; ri "i_state";
                opt (seq [ call "atomic_inc"; wi "i_io_list" ]);
              ]);
         w "wb.b_io"; spin_unlock wlist;
         star
           (seq
              [
                acquire ~side:Event.Shared Event.Rwsem
                  (Smember { ty = "super_block"; var = "i.sb"; member = "s_umount" });
                call ~binds:[ ("i", "i") ] "__writeback_single_inode";
                release (Smember { ty = "super_block"; var = "i.sb"; member = "s_umount" });
                call ~binds:[ ("i", "i") ] "iput";
              ]);
         spin_lock wlist; rw "wb.state"; rw "wb.completions"; spin_unlock wlist;
         call ~binds:[ ("bdi", "bdi") ] "wb_update_bandwidth";
       ]);
  reg ~root:true ~irq:true "laptop_mode_timer_fn"
    (with_lock ~lock:(spin_lock work) ~unlock:(spin_unlock work)
       (seq [ r "wb.state"; r "wb.last_old_flush"; opt (w "wb.work_list") ]))
