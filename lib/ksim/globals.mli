(** Statically allocated kernel locks (the 821-ish "static" locks of the
    paper's Sec. 7.2, scaled down).

    These protect global structures: the inode hash table, the super-block
    list, the dcache rename sequence, the global inode LRU (stand-in for
    the per-sb list_lru), the character-device registry, the block-device
    tree and the writeback/bdi list. *)

val inode_hash_lock : Lock.t  (** spinlock; protects the inode hash table *)

val inode_lru_lock : Lock.t  (** spinlock; protects the global inode LRU *)

val sb_lock : Lock.t  (** spinlock; protects the super-block list *)

val mount_lock : Lock.t  (** seqlock; mount topology *)

val rename_lock : Lock.t  (** seqlock; dcache rename sequence *)

val dentry_hash_lock : Lock.t  (** spinlock; dcache hash chains *)

val cdev_lock : Lock.t  (** spinlock; character-device registry *)

val bdev_lock : Lock.t  (** spinlock; block-device registry *)

val bdi_lock : Lock.t  (** spinlock; global bdi list *)

val wq_lock : Lock.t  (** spinlock; writeback work queue *)
