(** The simulated kernel's object graph.

    Wrapper records pair each monitored {!Memory.instance} with its
    embedded lock objects and the OCaml-side structure (lists, parents)
    that keeps the simulation consistent. Member reads/writes on the
    instance produce the trace; the OCaml fields are the "shadow"
    structure that actual behaviour relies on.

    Constructors and destructors run inside function scopes that the
    default import filter black-lists ("alloc_inode", "destroy_inode", …),
    because init/teardown legitimately runs without locks (paper Sec. 5.3,
    item 2). *)

module Event = Lockdoc_trace.Event

type fstype = {
  fs_name : string;
  fs_file : string;  (** source file of the fs-specific ops *)
  mutable fs_ops : fs_ops;
}

and fs_ops = {
  op_new_inode : sb -> inode;
  op_read : inode -> unit;
  op_write : inode -> int -> unit;
  op_setattr : inode -> mode:int -> uid:int -> unit;
  op_evict : inode -> unit;
}

and sb = {
  sb_inst : Memory.instance;
  s_umount : Lock.t;  (** rwsem *)
  s_inode_list_lock : Lock.t;
  s_inode_lru_lock : Lock.t;
  s_dentry_lru_lock : Lock.t;
  s_rename_mutex : Lock.t;
  s_mount_seq : Lock.t;
  fs : fstype;
  s_bdi : bdi;
  mutable s_inodes : inode list;
  mutable s_dentry_lru : dentry list;
  mutable s_journal : journal option;
  mutable next_ino : int;
}

and inode = {
  i_inst : Memory.instance;
  i_lock : Lock.t;  (** spinlock *)
  i_rwsem : Lock.t;  (** rwsem *)
  i_size_seq : Lock.t;  (** seqcount *)
  i_tree_lock : Lock.t;  (** address_space tree lock *)
  i_sb : sb;
  mutable i_bucket : int;  (** hash bucket index, or -1 *)
  mutable i_pipe_obj : pipe option;
  mutable i_nlink_shadow : int;
}

and dentry = {
  d_inst : Memory.instance;
  d_lock : Lock.t;  (** spinlock *)
  d_seqc : Lock.t;  (** seqcount *)
  d_sb : sb;
  mutable d_parent : dentry option;
  mutable d_children : dentry list;
  mutable d_inode_obj : inode option;
}

and journal = {
  j_inst : Memory.instance;
  j_state_lock : Lock.t;  (** rwlock *)
  j_list_lock : Lock.t;
  j_revoke_lock : Lock.t;
  j_barrier : Lock.t;  (** mutex *)
  j_checkpoint_mutex : Lock.t;
  j_stats_lock : Lock.t;
  j_history_lock : Lock.t;
  mutable j_running : txn option;
  mutable j_committing : txn option;
  mutable j_checkpoint : txn list;
  mutable j_next_tid : int;
}

and txn = {
  t_inst : Memory.instance;
  t_handle_lock : Lock.t;
  t_journal : journal;
  mutable t_jh_list : jh list;
  mutable t_updates_shadow : int;
      (** open handles; commit waits for zero (like real JBD2) *)
  mutable t_locked : bool;  (** no new handles may join *)
}

and jh = { jh_inst : Memory.instance; jh_bh : bh; mutable jh_txn : txn option }

and bh = {
  bh_inst : Memory.instance;
  b_state_lock : Lock.t;
  mutable bh_jh : jh option;
}

and bdi = {
  bdi_inst : Memory.instance;
  wb_list_lock : Lock.t;
  wb_work_lock : Lock.t;
  wb_lock : Lock.t;
  wb_switch_rwsem : Lock.t;
  mutable b_dirty : inode list;
}

and bdev = {
  bd_inst : Memory.instance;
  bd_mutex : Lock.t;
  bd_fsfreeze_mutex : Lock.t;
}

and chardev = { cd_inst : Memory.instance }

and pipe = { p_inst : Memory.instance; p_mutex : Lock.t }

(* {2 Constructors / destructors} *)

let scope file name body = Kernel.fn_scope ~file ~span:18 name body

let alloc_bdi () =
  scope "mm/backing-dev.c" "bdi_init" @@ fun () ->
  let inst = Memory.alloc Structs.backing_dev_info in
  List.iter
    (fun m -> Memory.write inst m 0)
    [ "ra_pages"; "io_pages"; "min_ratio"; "max_ratio"; "wb.state"; "wb.dirty_exceeded" ];
  {
    bdi_inst = inst;
    wb_list_lock = Lock.embedded ~kind:Event.Spinlock inst "wb.list_lock";
    wb_work_lock = Lock.embedded ~kind:Event.Spinlock inst "wb.work_lock";
    wb_lock = Lock.embedded ~kind:Event.Spinlock inst "wb_lock";
    wb_switch_rwsem = Lock.embedded ~kind:Event.Rwsem inst "wb_switch_rwsem";
    b_dirty = [];
  }

let free_bdi bdi =
  scope "mm/backing-dev.c" "bdi_exit" @@ fun () -> Memory.free bdi.bdi_inst

let alloc_sb fs =
  scope "fs/super.c" "sb_alloc_init" @@ fun () ->
  let inst = Memory.alloc Structs.super_block in
  List.iter
    (fun m -> Memory.write inst m 0)
    [
      "s_dev"; "s_blocksize"; "s_blocksize_bits"; "s_maxbytes"; "s_flags";
      "s_iflags"; "s_magic"; "s_count"; "s_time_gran"; "s_mode";
    ];
  let bdi = alloc_bdi () in
  Memory.write inst "s_bdi" bdi.bdi_inst.Memory.base;
  {
    sb_inst = inst;
    s_umount = Lock.embedded ~kind:Event.Rwsem inst "s_umount";
    s_inode_list_lock = Lock.embedded ~kind:Event.Spinlock inst "s_inode_list_lock";
    s_inode_lru_lock = Lock.embedded ~kind:Event.Spinlock inst "s_inode_lru_lock";
    s_dentry_lru_lock = Lock.embedded ~kind:Event.Spinlock inst "s_dentry_lru_lock";
    s_rename_mutex = Lock.embedded ~kind:Event.Mutex inst "s_vfs_rename_mutex";
    s_mount_seq = Lock.embedded ~kind:Event.Seqlock inst "s_mount_lock";
    fs;
    s_bdi = bdi;
    s_inodes = [];
    s_dentry_lru = [];
    s_journal = None;
    next_ino = 1;
  }

let free_sb sb =
  scope "fs/super.c" "destroy_super" @@ fun () ->
  free_bdi sb.s_bdi;
  Memory.free sb.sb_inst

let alloc_inode sb =
  scope "fs/inode.c" "alloc_inode" @@ fun () ->
  let inst = Memory.alloc ~subclass:sb.fs.fs_name Structs.inode in
  let ino = sb.next_ino in
  sb.next_ino <- ino + 1;
  Kernel.fn_scope ~file:"fs/inode.c" ~span:40 "inode_init_always" (fun () ->
      Memory.write inst "i_sb" sb.sb_inst.Memory.base;
      Memory.write inst "i_ino" ino;
      Memory.write inst "i_mode" 0o644;
      Memory.write inst "i_uid" 0;
      Memory.write inst "i_gid" 0;
      Memory.write inst "i_flags" 0;
      Memory.write inst "i_nlink" 1;
      Memory.write inst "i_size" 0;
      Memory.write inst "i_bytes" 0;
      Memory.write inst "i_blocks" 0;
      Memory.write inst "i_state" 0;
      Memory.write inst "i_version" 1;
      Memory.write inst "i_generation" 0;
      Memory.write inst "i_mapping" inst.Memory.base;
      Memory.write inst "i_data.host" inst.Memory.base;
      Memory.write inst "i_data.nrpages" 0;
      Memory.write inst "i_data.gfp_mask" 0;
      Memory.atomic_set inst "i_count" 1;
      Memory.atomic_set inst "i_writecount" 0);
  {
    i_inst = inst;
    i_lock = Lock.embedded ~kind:Event.Spinlock inst "i_lock";
    i_rwsem = Lock.embedded ~kind:Event.Rwsem inst "i_rwsem";
    i_size_seq = Lock.embedded ~kind:Event.Seqlock inst "i_size_seqcount";
    i_tree_lock = Lock.embedded ~kind:Event.Spinlock inst "i_data.tree_lock";
    i_sb = sb;
    i_bucket = -1;
    i_pipe_obj = None;
    i_nlink_shadow = 1;
  }

let destroy_inode inode =
  scope "fs/inode.c" "destroy_inode" @@ fun () ->
  Memory.write inode.i_inst "i_state" 0;
  Memory.free inode.i_inst

let alloc_dentry sb parent =
  scope "fs/dcache.c" "d_alloc_init" @@ fun () ->
  let inst = Memory.alloc Structs.dentry in
  Memory.write inst "d_flags" 0;
  Memory.write inst "d_count" 1;
  Memory.write inst "d_sb" sb.sb_inst.Memory.base;
  Memory.write inst "d_name" 0;
  Memory.write inst "d_time" 0;
  (match parent with
  | Some p -> Memory.write inst "d_parent" p.d_inst.Memory.base
  | None -> Memory.write inst "d_parent" inst.Memory.base);
  {
    d_inst = inst;
    d_lock = Lock.embedded ~kind:Event.Spinlock inst "d_lock";
    d_seqc = Lock.embedded ~kind:Event.Seqlock inst "d_seq";
    d_sb = sb;
    d_parent = parent;
    d_children = [];
    d_inode_obj = None;
  }

let free_dentry dentry =
  scope "fs/dcache.c" "dentry_free" @@ fun () -> Memory.free dentry.d_inst

let alloc_journal () =
  scope "fs/jbd2/journal.c" "jbd2_journal_init_common" @@ fun () ->
  let inst = Memory.alloc Structs.journal in
  List.iter
    (fun m -> Memory.write inst m 0)
    [
      "j_flags"; "j_errno"; "j_format_version"; "j_head"; "j_tail"; "j_free";
      "j_first"; "j_last"; "j_blocksize"; "j_maxlen"; "j_tail_sequence";
      "j_transaction_sequence"; "j_commit_sequence"; "j_commit_request";
      "j_max_transaction_buffers"; "j_commit_interval";
    ];
  {
    j_inst = inst;
    j_state_lock = Lock.embedded ~kind:Event.Rwlock inst "j_state_lock";
    j_list_lock = Lock.embedded ~kind:Event.Spinlock inst "j_list_lock";
    j_revoke_lock = Lock.embedded ~kind:Event.Spinlock inst "j_revoke_lock";
    j_barrier = Lock.embedded ~kind:Event.Mutex inst "j_barrier";
    j_checkpoint_mutex = Lock.embedded ~kind:Event.Mutex inst "j_checkpoint_mutex";
    j_stats_lock = Lock.embedded ~kind:Event.Spinlock inst "j_stats_lock";
    j_history_lock = Lock.embedded ~kind:Event.Spinlock inst "j_history_lock";
    j_running = None;
    j_committing = None;
    j_checkpoint = [];
    j_next_tid = 1;
  }

let free_journal j =
  (* span matches the teardown entry point in Workloads, which declares
     the same function. *)
  Kernel.fn_scope ~file:"fs/jbd2/journal.c" ~span:22 "jbd2_journal_destroy"
  @@ fun () -> Memory.free j.j_inst

let alloc_txn journal =
  scope "fs/jbd2/transaction.c" "jbd2_transaction_init" @@ fun () ->
  let inst = Memory.alloc Structs.transaction in
  let tid = journal.j_next_tid in
  journal.j_next_tid <- tid + 1;
  Memory.write inst "t_journal" journal.j_inst.Memory.base;
  Memory.write inst "t_tid" tid;
  Memory.write inst "t_state" 0;
  Memory.write inst "t_nr_buffers" 0;
  Memory.atomic_set inst "t_updates" 0;
  Memory.atomic_set inst "t_outstanding_credits" 0;
  Memory.atomic_set inst "t_handle_count" 0;
  {
    t_inst = inst;
    t_handle_lock = Lock.embedded ~kind:Event.Spinlock inst "t_handle_lock";
    t_journal = journal;
    t_jh_list = [];
    t_updates_shadow = 0;
    t_locked = false;
  }

let free_txn txn =
  scope "fs/jbd2/transaction.c" "jbd2_transaction_free" @@ fun () ->
  Memory.free txn.t_inst

let alloc_bh () =
  scope "fs/buffer.c" "buffer_head_init" @@ fun () ->
  let inst = Memory.alloc Structs.buffer_head in
  List.iter
    (fun m -> Memory.write inst m 0)
    [ "b_state"; "b_blocknr"; "b_size"; "b_data" ];
  Memory.atomic_set inst "b_count" 1;
  {
    bh_inst = inst;
    b_state_lock = Lock.embedded ~kind:Event.Spinlock inst "b_state_lock";
    bh_jh = None;
  }

let free_bh bh =
  scope "fs/buffer.c" "free_buffer_head" @@ fun () -> Memory.free bh.bh_inst

let alloc_jh bh txn =
  scope "fs/jbd2/journal.c" "journal_head_init" @@ fun () ->
  let inst = Memory.alloc Structs.journal_head in
  Memory.write inst "b_bh" bh.bh_inst.Memory.base;
  Memory.write inst "b_jlist" 0;
  Memory.write inst "b_modified" 0;
  Memory.atomic_set inst "b_jcount" 1;
  (* The journal head pins its buffer. *)
  Memory.atomic_inc bh.bh_inst "b_count";
  let jh = { jh_inst = inst; jh_bh = bh; jh_txn = txn } in
  bh.bh_jh <- Some jh;
  jh

let free_jh jh =
  scope "fs/jbd2/journal.c" "journal_head_free" @@ fun () ->
  jh.jh_bh.bh_jh <- None;
  Memory.free jh.jh_inst

let alloc_bdev () =
  scope "fs/block_dev.c" "bdev_alloc_init" @@ fun () ->
  let inst = Memory.alloc Structs.block_device in
  List.iter
    (fun m -> Memory.write inst m 0)
    [ "bd_dev"; "bd_openers"; "bd_holders"; "bd_block_size"; "bd_part_count"; "bd_invalidated" ];
  {
    bd_inst = inst;
    bd_mutex = Lock.embedded ~kind:Event.Mutex inst "bd_mutex";
    bd_fsfreeze_mutex = Lock.embedded ~kind:Event.Mutex inst "bd_fsfreeze_mutex";
  }

let free_bdev bdev =
  scope "fs/block_dev.c" "bdev_free" @@ fun () -> Memory.free bdev.bd_inst

let alloc_cdev () =
  scope "fs/char_dev.c" "cdev_init" @@ fun () ->
  let inst = Memory.alloc Structs.cdev in
  Memory.write inst "dev" 0;
  Memory.write inst "count" 0;
  Memory.write inst "ops" 0;
  { cd_inst = inst }

let free_cdev cd =
  scope "fs/char_dev.c" "cdev_free" @@ fun () -> Memory.free cd.cd_inst

let alloc_pipe () =
  scope "fs/pipe.c" "pipe_alloc_init" @@ fun () ->
  let inst = Memory.alloc Structs.pipe_inode_info in
  List.iter
    (fun m -> Memory.write inst m 0)
    [ "nrbufs"; "curbuf"; "readers"; "writers"; "waiting_writers"; "r_counter"; "w_counter" ];
  Memory.write inst "buffers" 16;
  { p_inst = inst; p_mutex = Lock.embedded ~kind:Event.Mutex inst "mutex" }

let free_pipe pipe =
  scope "fs/pipe.c" "free_pipe_info" @@ fun () -> Memory.free pipe.p_inst

(* Static skeletons: constructors/destructors run before the object is
   published (or after it became unreachable), exactly the functions the
   importer's default filter black-lists — their IR is the wildcard. *)
let () =
  List.iter
    (fun (subsystem, names) ->
      List.iter (fun n -> Skeleton.register_wild ~subsystem n) names)
    [
      ("writeback", [ "bdi_init"; "bdi_exit" ]);
      ( "vfs",
        [
          "sb_alloc_init"; "destroy_super"; "alloc_inode"; "inode_init_always";
          "destroy_inode"; "d_alloc_init"; "dentry_free";
        ] );
      ( "jbd2",
        [
          "jbd2_journal_init_common"; "jbd2_journal_destroy";
          "jbd2_transaction_init"; "jbd2_transaction_free";
          "journal_head_init"; "journal_head_free";
        ] );
      ("buffer", [ "buffer_head_init"; "free_buffer_head" ]);
      ("blockdev", [ "bdev_alloc_init"; "bdev_free" ]);
      ("cdev", [ "cdev_init"; "cdev_free" ]);
      ("pipe", [ "pipe_alloc_init"; "free_pipe_info" ]);
    ]
