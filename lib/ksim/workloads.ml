(** The benchmark mix (paper Sec. 7.1): synthetic re-implementations of
    the Linux Test Project workloads the paper uses — fs-bench-test2
    (create/chown/chmod/random access), fsstress (random fs ops over a
    tree), fs_inod (inode churn) — plus the custom pipe, symlink and
    permission tests, a device workload, and the writeback/journal
    flusher thread. *)

module Prng = Lockdoc_util.Prng
open Obj

type env = {
  ext4 : sb;
  tmpfs : sb;
  rootfs : sb;
  proc : sb;
  sysfs : sb;
  devtmpfs : sb;
  pipefs : sb;
  sockfs : sb;
  bdevfs : sb;
  debugfs : sb;
  anonfs : sb;
  ext4_root : dentry;
  tmpfs_root : dentry;
  rootfs_root : dentry;
  rootfs_dir_b : dentry;
  mutable shutting_down : bool;
}

let all_sbs env =
  [
    env.ext4; env.tmpfs; env.rootfs; env.proc; env.sysfs; env.devtmpfs;
    env.pipefs; env.sockfs; env.bdevfs; env.debugfs; env.anonfs;
  ]

let setup_env () =
  let ext4 = Vfs_super.mount Fs_ext4.fstype in
  ignore (Fs_ext4.journal_of ext4);
  let tmpfs = Vfs_super.mount Fs_tmpfs.fstype in
  let rootfs = Vfs_super.mount Fs_misc.rootfs in
  let env =
    {
      ext4;
      tmpfs;
      rootfs;
      proc = Vfs_super.mount Fs_proc.fstype;
      sysfs = Vfs_super.mount Fs_misc.sysfs;
      devtmpfs = Vfs_super.mount Fs_misc.devtmpfs;
      pipefs = Vfs_super.mount Fs_pipefs.fstype;
      sockfs = Vfs_super.mount Fs_misc.sockfs;
      bdevfs = Vfs_super.mount Fs_bdev.fstype;
      debugfs = Vfs_super.mount Fs_misc.debugfs;
      anonfs = Vfs_super.mount Fs_misc.anon_inodefs;
      ext4_root = Vfs_dentry.d_alloc_root ext4;
      tmpfs_root = Vfs_dentry.d_alloc_root tmpfs;
      rootfs_root = Vfs_dentry.d_alloc_root rootfs;
      rootfs_dir_b = Vfs_dentry.d_alloc_root rootfs;
      shutting_down = false;
    }
  in
  List.iter (fun sb -> Bdi.bdi_register sb.s_bdi) (all_sbs env);
  env

let teardown_env env =
  env.shutting_down <- true;
  (* The final commit+checkpoint is journal teardown proper: run it
     under its kernel entry point so the importer's init/teardown
     filter drops the (single-threaded, partly lock-free) accesses. *)
  (match env.ext4.s_journal with
  | Some j ->
      Kernel.fn_scope ~file:"fs/jbd2/journal.c" ~span:22 "jbd2_journal_destroy"
        (fun () ->
          Jbd2.commit_transaction j;
          Jbd2.checkpoint j)
  | None -> ());
  List.iter Vfs_super.sync_filesystem (all_sbs env);
  Vfs_inode.prune_icache ();
  Vfs_inode.prune_icache ();
  List.iter
    (fun sb ->
      Bdi.bdi_unregister sb.s_bdi;
      Vfs_super.umount sb)
    (all_sbs env)

(* {2 fs-bench-test2: create files, chown/chmod, random access} *)

let fs_bench env rng n =
  for i = 1 to n do
    let ino = 1000 + Prng.int rng 24 in
    (* open(O_CREAT) shape: resolve, then create through fs/namei.c. *)
    ignore (Vfs_namei.path_lookupat env.ext4_root [ ino ]);
    let dentry, inode = Vfs_namei.vfs_create env.ext4 env.ext4_root ino ino in
    env.ext4.fs.fs_ops.op_write inode (Prng.int_in rng 512 8192);
    env.ext4.fs.fs_ops.op_read inode;
    if i mod 5 = 0 then
      Vfs_inode.notify_change inode ~mode:(Prng.int rng 0o777)
        ~uid:(Prng.int rng 100);
    if i mod 7 = 0 then Fs_ext4.ext4_fsync inode;
    Vfs_inode.generic_fillattr inode;
    (* Most files survive; a minority is unlinked, keeping eviction (and
       its hash neighbour writes) rare as in the paper's workload. *)
    if i mod 3 = 0 then Vfs_namei.vfs_unlink env.ext4_root dentry inode
    else Vfs_dentry.dput dentry;
    Vfs_inode.iput inode
  done

(* {2 fsstress: random operations over a directory tree} *)

let fsstress env rng n =
  let sbs = [| (env.tmpfs, env.tmpfs_root); (env.rootfs, env.rootfs_root) |] in
  for _ = 1 to n do
    let sb, root = Prng.pick rng sbs in
    let ino = 2000 + Prng.int rng 48 in
    match Prng.int rng 12 with
    | 0 ->
        (* creat *)
        let inode = Vfs_inode.iget sb ino in
        let dentry = Vfs_dentry.d_alloc root ino in
        Vfs_dentry.d_instantiate dentry inode;
        Vfs_dentry.dput dentry
    | 1 ->
        (* stat *)
        let inode = Vfs_inode.iget sb ino in
        Vfs_inode.generic_fillattr inode;
        Vfs_inode.iput inode
    | 2 ->
        let inode = Vfs_inode.iget sb ino in
        sb.fs.fs_ops.op_write inode (Prng.int_in rng 64 4096);
        Vfs_inode.iput inode
    | 3 ->
        let inode = Vfs_inode.iget sb ino in
        sb.fs.fs_ops.op_read inode;
        Vfs_inode.iput inode
    | 4 ->
        let inode = Vfs_inode.iget sb ino in
        Vfs_inode.notify_change inode ~mode:(Prng.int rng 0o777) ~uid:0;
        Vfs_inode.iput inode
    | 5 ->
        (* symlink + follow *)
        let inode = Vfs_inode.iget sb ino in
        Fs_common.set_link inode ino;
        ignore (Fs_common.get_link inode);
        Vfs_inode.iput inode
    | 6 ->
        (* readdir through the libfs cursor path (rarer than the rest) *)
        if Prng.bool rng then begin
          let dir = Vfs_inode.iget sb 1 in
          Vfs_dentry.dcache_readdir dir root;
          Vfs_inode.iput dir
        end
    | 7 -> (
        (* lookup, locked and RCU flavours *)
        match Vfs_dentry.d_lookup root ino with
        | Some d -> ignore (Vfs_dentry.d_lookup_rcu root ino); Vfs_dentry.dput d
        | None -> ignore (Vfs_dentry.d_lookup_rcu root ino))
    | 8 ->
        (* rename between directories (rootfs only has two roots) *)
        if sb == env.rootfs then begin
          let dentry = Vfs_dentry.d_alloc env.rootfs_root ino in
          Vfs_dentry.d_move dentry env.rootfs_dir_b;
          Vfs_dentry.remove_child env.rootfs_dir_b dentry;
          Lock.call_rcu (fun () -> free_dentry dentry)
        end
    | 9 ->
        (* truncate *)
        let inode = Vfs_inode.iget sb ino in
        if sb == env.ext4 then Fs_ext4.ext4_truncate inode
        else Fs_common.generic_truncate inode;
        Vfs_inode.iput inode
    | 10 ->
        (* the inode_set_flags path with the confirmed bug *)
        let inode = Vfs_inode.iget sb ino in
        Vfs_inode.inode_set_flags inode (1 lsl Prng.int rng 8);
        Vfs_inode.iput inode
    | _ ->
        (* unlink-and-evict *)
        let inode = Vfs_inode.iget sb ino in
        Vfs_inode.drop_nlink inode;
        Vfs_inode.drop_nlink inode;
        Vfs_inode.iput inode
  done

(* {2 fs_inod: inode allocate/deallocate churn} *)

let fs_inod env rng n =
  for i = 1 to n do
    let ino = 3000 + Prng.int rng 32 in
    let inode = Vfs_inode.iget env.rootfs ino in
    if i mod 3 = 0 then Vfs_inode.drop_nlink inode;
    Vfs_inode.iput inode;
    if i mod 11 = 0 then Vfs_inode.prune_icache ()
  done

(* {2 pipe workload} *)

let pipe_writer inode rng n =
  for _ = 1 to n do
    Fs_pipefs.pipefs_write inode (Prng.int_in rng 1 4);
    (match inode.i_pipe_obj with
    | Some pipe -> if Prng.bernoulli rng 0.06 then Pipe.pipe_poll pipe
    | None -> ())
  done

let pipe_reader inode rng n =
  for _ = 1 to n do
    Fs_pipefs.pipefs_read inode;
    (match inode.i_pipe_obj with
    | Some pipe ->
        if Prng.bernoulli rng 0.1 then Pipe.pipe_fasync pipe
    | None -> ())
  done

(* {2 symlink test} *)

let symlink_bench env rng n =
  for _ = 1 to n do
    let ino = 4000 + Prng.int rng 16 in
    let inode = Vfs_inode.iget env.ext4 ino in
    Fs_common.set_link inode ino;
    ignore (Fs_common.get_link inode);
    ignore (Fs_common.get_link inode);
    Vfs_inode.drop_nlink inode;
    Vfs_inode.iput inode
  done

(* {2 permissions test over the pseudo filesystems} *)

let perms_bench env rng n =
  let sbs = [| env.proc; env.sysfs; env.ext4; env.devtmpfs |] in
  for _ = 1 to n do
    let sb = Prng.pick rng sbs in
    let ino = 5000 + Prng.int rng 24 in
    let inode = Vfs_inode.iget sb ino in
    Vfs_inode.notify_change inode ~mode:(Prng.int rng 0o777)
      ~uid:(Prng.int rng 10);
    sb.fs.fs_ops.op_read inode;
    if Prng.bernoulli rng 0.4 then sb.fs.fs_ops.op_write inode 1;
    Vfs_inode.generic_fillattr inode;
    Vfs_inode.iput inode
  done

(* {2 devices: char and block} *)

let device_bench env rng n =
  for i = 1 to n do
    let cd = alloc_cdev () in
    Chardev.cdev_add cd (Prng.int rng 256) 1;
    ignore (Chardev.cdev_lookup (Prng.int rng 256));
    Chardev.cdev_del cd;
    let inode = Vfs_inode.iget env.bdevfs (6000 + Prng.int rng 8) in
    let bdev = Fs_bdev.bdev_of inode in
    Blockdev.blkdev_get bdev i;
    env.bdevfs.fs.fs_ops.op_write inode (Prng.int_in rng 512 4096);
    env.bdevfs.fs.fs_ops.op_read inode;
    Blockdev.blkdev_direct_io bdev;
    if i mod 9 = 0 then begin
      Blockdev.freeze_bdev bdev;
      Blockdev.thaw_bdev bdev
    end;
    Blockdev.blkdev_put bdev;
    Vfs_inode.iput inode
  done

(* {2 small pseudo-fs activity: sockfs / anon / debugfs} *)

let pseudo_bench env rng n =
  let sock_inode = Vfs_inode.iget env.sockfs 7000 in
  let anon_inode = Vfs_inode.iget env.anonfs 7100 in
  let debug_inode = Vfs_inode.iget env.debugfs 7200 in
  env.debugfs.fs.fs_ops.op_write debug_inode 1;
  for _ = 1 to n do
    env.sockfs.fs.fs_ops.op_read sock_inode;
    if Prng.bernoulli rng 0.15 then env.sockfs.fs.fs_ops.op_write sock_inode 1;
    env.anonfs.fs.fs_ops.op_read anon_inode;
    if Prng.bernoulli rng 0.1 then env.anonfs.fs.fs_ops.op_write anon_inode 1
  done;
  Vfs_inode.iput sock_inode;
  Vfs_inode.iput anon_inode;
  Vfs_inode.iput debug_inode

(* {2 writeback / journal flusher thread} *)

let flusher env rng n =
  for i = 1 to n do
    List.iter
      (fun sb ->
        Bdi.wb_queue_work sb.s_bdi;
        Bdi.wb_do_writeback sb.s_bdi)
      [ env.ext4; env.tmpfs; env.rootfs ];
    (match env.ext4.s_journal with
    | Some j ->
        Jbd2.commit_transaction j;
        if i mod 4 = 0 then Jbd2.checkpoint j
    | None -> ());
    if i mod 3 = 0 then Vfs_inode.prune_icache ();
    if i mod 5 = 0 then Vfs_super.sync_filesystem (Prng.pick rng [| env.ext4; env.tmpfs |]);
    if i mod 6 = 0 then Vfs_dentry.shrink_dcache_sb env.ext4;
    ignore (Vfs_super.sget "ext4")
  done
