module Event = Lockdoc_trace.Event
module Layout = Lockdoc_trace.Layout

type instance = {
  base : int;
  layout : Layout.t;
  subclass : string option;
  values : int array;
  mutable live : bool;
}

(* Heap state: bump pointer plus a size-bucketed free list, reset per run. *)
let heap_base = 0x100000
let bump = ref heap_base
let free_lists : (int, int list ref) Hashtbl.t = Hashtbl.create 16

let () =
  Kernel.add_boot_hook (fun () ->
      bump := heap_base;
      Hashtbl.reset free_lists)

let alloc_addr size =
  match Hashtbl.find_opt free_lists size with
  | Some ({ contents = addr :: rest } as cell) ->
      cell := rest;
      addr
  | Some { contents = [] } | None ->
      let addr = !bump in
      bump := addr + size + 16 (* red zone *);
      addr

let free_addr addr size =
  let cell =
    match Hashtbl.find_opt free_lists size with
    | Some cell -> cell
    | None ->
        let cell = ref [] in
        Hashtbl.replace free_lists size cell;
        cell
  in
  cell := addr :: !cell

(* Member lookup cache, keyed by type name (layouts are static). *)
let member_tables : (string, (string, int * Layout.member) Hashtbl.t) Hashtbl.t =
  Hashtbl.create 16

let member_table layout =
  match Hashtbl.find_opt member_tables layout.Layout.ty_name with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 64 in
      List.iteri
        (fun i m -> Hashtbl.replace tbl m.Layout.m_name (i, m))
        layout.Layout.members;
      Hashtbl.replace member_tables layout.Layout.ty_name tbl;
      tbl

let lookup inst name =
  match Hashtbl.find_opt (member_table inst.layout) name with
  | Some entry -> entry
  | None ->
      invalid_arg
        (Printf.sprintf "Memory: %s has no member %s" inst.layout.Layout.ty_name
           name)

let alloc ?subclass layout =
  let base = alloc_addr layout.Layout.ty_size in
  let inst =
    {
      base;
      layout;
      subclass;
      values = Array.make (List.length layout.Layout.members) 0;
      live = true;
    }
  in
  Kernel.emit
    (Event.Alloc
       { ptr = base; size = layout.Layout.ty_size; data_type = layout.Layout.ty_name; subclass });
  inst

let free inst =
  assert inst.live;
  inst.live <- false;
  Kernel.emit (Event.Free { ptr = inst.base });
  free_addr inst.base inst.layout.Layout.ty_size

let member_ptr inst name =
  let _, m = lookup inst name in
  inst.base + m.Layout.m_offset

let check_access inst m =
  if not inst.live then begin
    let frames =
      try
        String.concat " <- "
          (List.map (fun (f, _) -> f.Source.fn_name) (Kernel.debug_frames ()))
      with _ -> "?"
    in
    failwith
      (Printf.sprintf "Memory: use-after-free of %s.%s (in %s)"
         inst.layout.Layout.ty_name m.Layout.m_name frames)
  end;
  if m.Layout.m_kind = Layout.Lock then
    invalid_arg
      (Printf.sprintf "Memory: member %s is a lock; use the Lock module"
         m.Layout.m_name)

let access inst name kind =
  let idx, m = lookup inst name in
  check_access inst m;
  let ptr = inst.base + m.Layout.m_offset in
  (* The breakpoint site: offers the resolved (type, member) access to
     an installed schedule controller, then acts as the usual
     preemption point. *)
  Kernel.access_point ~ty:inst.layout.Layout.ty_name ~subclass:inst.subclass
    ~member:name ~ptr ~kind;
  Kernel.emit
    (Event.Mem_access { ptr; size = m.Layout.m_size; kind; loc = Kernel.here () });
  idx

let read inst name =
  let idx = access inst name Event.Read in
  inst.values.(idx)

let write inst name v =
  let idx = access inst name Event.Write in
  inst.values.(idx) <- v

let modify inst name f =
  let v = read inst name in
  write inst name (f v)

(* Atomic accessors run inside an atomic_* scope, which the default filter
   black-lists, mirroring how the paper ignores atomic_t traffic. *)

let atomic_scope name body =
  Kernel.fn_scope ~file:"include/asm/atomic.h" ~span:3 name body

let atomic_read inst name = atomic_scope "atomic_read" (fun () -> read inst name)

let atomic_set inst name v =
  atomic_scope "atomic_set" (fun () -> write inst name v)

let atomic_inc inst name =
  atomic_scope "atomic_inc" (fun () -> modify inst name (fun v -> v + 1))

let atomic_dec_and_test inst name =
  atomic_scope "atomic_dec_and_test" (fun () ->
      let v = read inst name - 1 in
      write inst name v;
      v = 0)

(* Static skeletons: the atomic helpers bypass the locking discipline
   (the importer's default filter ignores them), so their IR is the
   wildcard body — excluded from every static analysis, accepted
   verbatim by the meta-check. *)
let () =
  List.iter
    (fun name -> Skeleton.register_wild ~subsystem:"atomic" name)
    [ "atomic_read"; "atomic_set"; "atomic_inc"; "atomic_dec_and_test" ]
