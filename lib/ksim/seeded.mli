(** Registry of the seeded ground-truth locking bugs used to score the
    sanitizer layer (lockset race detector + irq-safety analysis).

    Each seeded bug is a {!Fault} site declared with period 0 (off) in
    its subsystem; {!activate} turns exactly the seeded set on (period
    1) while silencing every other deliberate deviation, {!quiesce}
    silences everything for a clean baseline, and {!ground_truth} reads
    back which bugs actually manifested in the last run. *)

type truth = {
  t_races : (string * string) list;
      (** (type key, member) pairs with a seeded lock-free access,
          sorted, deduplicated *)
  t_irq_unsafe : string list;
      (** lock classes with a seeded irq-unsafe acquisition path *)
}

val race_sites : (string * (string * string)) list
(** Fault-site name -> racy (type key, member) it introduces. *)

val irq_sites : (string * string) list
(** Fault-site name -> lock class acquired without masking irqs. *)

val activate : unit -> unit
(** Period 0 for every declared site, then period 1 for the seeded
    ones: the only deviations in the resulting trace are the seeded
    bugs. Also re-enables injection globally. *)

val quiesce : unit -> unit
(** Period 0 for every declared site: a clean trace with no deliberate
    locking deviations (the zero-false-positive baseline). *)

val ground_truth : unit -> truth
(** The seeded bugs whose sites fired at least once, read from
    {!Fault.fired_counts} — call right after the run, before any
    {!Fault.reset}. *)
