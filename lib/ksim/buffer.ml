(** Buffer cache of the simulated kernel (fs/buffer.c).

    [b_state] is nominally protected by the BH state lock (modelled as the
    embedded [b_state_lock] spinlock), but — exactly as in Linux — several
    hot paths touch it lock-free "by other means" than the filtered atomic
    helpers. This is why buffer_head dominates the paper's rule-violation
    counts (Tab. 7: 45 325 events over 4 members). *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

let lock_buffer bh =
  fn "fs/buffer.c" 8 "lock_buffer" @@ fun () ->
  Lock.spin_lock bh.b_state_lock;
  Memory.modify bh.bh_inst "b_state" (fun s -> s lor 0x4 (* BH_Lock *))

let unlock_buffer bh =
  fn "fs/buffer.c" 8 "unlock_buffer" @@ fun () ->
  Memory.modify bh.bh_inst "b_state" (fun s -> s land lnot 0x4);
  Lock.spin_unlock bh.b_state_lock

let mark_buffer_dirty bh =
  fn "fs/buffer.c" 16 "mark_buffer_dirty" @@ fun () ->
  Lock.spin_lock bh.b_state_lock;
  Memory.modify bh.bh_inst "b_state" (fun s -> s lor 0x2 (* BH_Dirty *));
  Lock.spin_unlock bh.b_state_lock

let mark_buffer_clean bh =
  fn "fs/buffer.c" 10 "clear_buffer_dirty" @@ fun () ->
  Lock.spin_lock bh.b_state_lock;
  Memory.modify bh.bh_inst "b_state" (fun s -> s land lnot 0x2);
  Lock.spin_unlock bh.b_state_lock

(* The IO-completion path mostly honours the state lock, but a minority
   end_io flavour updates b_state and b_end_io lock-free — the high-volume
   traffic behind the paper's buffer_head violation counts (Tab. 7). *)

let end_io_nolock_fault = Fault.site ~period:3 "end_buffer_read_sync_nolock"

let buffer_uptodate bh =
  fn "fs/buffer.c" 4 "buffer_uptodate" @@ fun () ->
  Memory.read bh.bh_inst "b_state" land 0x1 <> 0

let set_buffer_uptodate bh =
  fn "fs/buffer.c" 8 "set_buffer_uptodate" @@ fun () ->
  Lock.spin_lock bh.b_state_lock;
  Memory.modify bh.bh_inst "b_state" (fun s -> s lor 0x1);
  Lock.spin_unlock bh.b_state_lock

let end_buffer_read_sync_nolock bh =
  fn "fs/buffer.c" 6 "end_buffer_read_sync" @@ fun () ->
  Memory.modify bh.bh_inst "b_state" (fun s -> s lor 0x1);
  Memory.write bh.bh_inst "b_end_io" 0

let submit_bh bh =
  fn "fs/buffer.c" 22 "submit_bh" @@ fun () ->
  lock_buffer bh;
  ignore (Memory.read bh.bh_inst "b_blocknr");
  ignore (Memory.read bh.bh_inst "b_size");
  Memory.write bh.bh_inst "b_end_io" 1;
  unlock_buffer bh;
  (* Simulated synchronous completion. *)
  if Fault.fire end_io_nolock_fault then end_buffer_read_sync_nolock bh
  else set_buffer_uptodate bh

let getblk blocknr =
  fn "fs/buffer.c" 24 "__getblk" @@ fun () ->
  let bh = alloc_bh () in
  lock_buffer bh;
  Memory.write bh.bh_inst "b_blocknr" blocknr;
  Memory.write bh.bh_inst "b_size" 4096;
  Memory.write bh.bh_inst "b_data" (bh.bh_inst.Memory.base + 64);
  unlock_buffer bh;
  bh

let bread blocknr =
  fn "fs/buffer.c" 14 "__bread" @@ fun () ->
  let bh = getblk blocknr in
  if not (buffer_uptodate bh) then submit_bh bh;
  bh

let brelse bh =
  fn "fs/buffer.c" 8 "__brelse" @@ fun () ->
  if Memory.atomic_dec_and_test bh.bh_inst "b_count" then begin
    ignore (Memory.read bh.bh_inst "b_state");
    free_bh bh
  end

(* Association with a mapping: protected by the address_space private
   (tree) lock of the owning inode. *)
let buffer_associate bh inode =
  fn "fs/buffer.c" 16 "mark_buffer_dirty_inode" @@ fun () ->
  Lock.spin_lock inode.i_tree_lock;
  Memory.write bh.bh_inst "b_assoc_buffers" inode.i_inst.Memory.base;
  Memory.write bh.bh_inst "b_assoc_map" inode.i_inst.Memory.base;
  Lock.spin_unlock inode.i_tree_lock;
  mark_buffer_dirty bh

(* Cold declarations (paper Tab. 3 denominators). *)
let () =
  List.iter
    (fun (name, span) -> ignore (Source.declare ~file:"fs/buffer.c" ~span name))
    [
      ("buffer_check_dirty_writeback", 12); ("sync_mapping_buffers", 10);
      ("write_boundary_block", 12); ("mark_buffer_async_write", 8);
      ("fsync_buffers_list", 40); ("invalidate_inode_buffers", 14);
      ("remove_inode_buffers", 18); ("alloc_page_buffers", 26);
      ("clean_bdev_aliases", 30); ("create_empty_buffers", 24);
      ("page_zero_new_buffers", 26); ("block_write_begin", 14);
      ("block_write_end", 18); ("generic_write_end", 16);
      ("block_truncate_page", 38); ("block_write_full_page", 14);
      ("try_to_free_buffers", 28); ("buffer_migrate_page", 24);
      ("bh_lru_install", 20); ("lookup_bh_lru", 16);
    ]

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"buffer" in
  let sl = Smember { ty = "buffer_head"; var = "bh"; member = "b_state_lock" } in
  let r m = read_m "buffer_head" "bh" m in
  let w m = write_m "buffer_head" "bh" m in
  let rw m = modify_m "buffer_head" "bh" m in
  let b = [ ("bh", "bh") ] in
  (* lock_buffer/unlock_buffer carry a net lock effect across the
     function boundary (acquire without release and vice versa). *)
  reg "lock_buffer" (seq [ spin_lock sl; rw "b_state" ]);
  reg "unlock_buffer" (seq [ rw "b_state"; spin_unlock sl ]);
  reg "mark_buffer_dirty" (with_lock ~lock:(spin_lock sl) ~unlock:(spin_unlock sl) (rw "b_state"));
  reg "clear_buffer_dirty" (with_lock ~lock:(spin_lock sl) ~unlock:(spin_unlock sl) (rw "b_state"));
  reg "buffer_uptodate" (r "b_state");
  reg "set_buffer_uptodate" (with_lock ~lock:(spin_lock sl) ~unlock:(spin_unlock sl) (rw "b_state"));
  (* Deliberately lock-free completion flavour (Tab. 7 traffic). *)
  reg "end_buffer_read_sync" (seq [ rw "b_state"; w "b_end_io" ]);
  reg "submit_bh"
    (seq
       [
         call ~binds:b "lock_buffer"; r "b_blocknr"; r "b_size"; w "b_end_io";
         call ~binds:b "unlock_buffer";
         alt [ call ~binds:b "end_buffer_read_sync"; call ~binds:b "set_buffer_uptodate" ];
       ]);
  reg "__getblk"
    (seq
       [
         call "buffer_head_init"; call ~binds:b "lock_buffer"; w "b_blocknr";
         w "b_size"; w "b_data"; call ~binds:b "unlock_buffer";
       ]);
  reg "__bread"
    (seq
       [
         call ~binds:b "__getblk"; call ~binds:b "buffer_uptodate";
         opt (call ~binds:b "submit_bh");
       ]);
  reg "__brelse"
    (seq [ call "atomic_dec_and_test"; opt (seq [ r "b_state"; call "free_buffer_head" ]) ]);
  reg "mark_buffer_dirty_inode"
    (seq
       [
         spin_lock (Smember { ty = "inode"; var = "i"; member = "i_data.tree_lock" });
         w "b_assoc_buffers"; w "b_assoc_map";
         spin_unlock (Smember { ty = "inode"; var = "i"; member = "i_data.tree_lock" });
         call ~binds:b "mark_buffer_dirty";
       ])
