(** bdev pseudo-filesystem: inodes backing block devices
    (fs/block_dev.c).

    The device inode's size is updated while holding the device's
    [bd_mutex] (as [bd_set_size] really does), so inode:bdev mines an
    embedded-other rule pointing into block_device — one of the
    cross-structure rules that make subclassing worthwhile. *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

(* Device inodes carry their block_device in the unrolled union member. *)
let bdev_table : (int * bdev) list ref = ref []

let () = Kernel.add_boot_hook (fun () -> bdev_table := [])

let bdev_new_inode sb =
  fn "fs/block_dev.c" 18 "bdget_inode" @@ fun () ->
  let inode = Vfs_inode.new_inode sb in
  let bdev = Blockdev.bdget (inode.i_inst.Memory.base land 0xff) in
  bdev_table := (inode.i_inst.Memory.base, bdev) :: !bdev_table;
  Memory.write inode.i_inst "i_bdev" bdev.bd_inst.Memory.base;
  Memory.write inode.i_inst "i_mode" 0o60600;
  Memory.write inode.i_inst "i_rdev" (Memory.read bdev.bd_inst "bd_dev");
  inode

let bdev_of inode = List.assq inode.i_inst.Memory.base !bdev_table

let bdev_read inode =
  fn "fs/block_dev.c" 14 "blkdev_read_iter_sim" @@ fun () ->
  ignore (Memory.read inode.i_inst "i_bdev");
  ignore (Vfs_inode.i_size_read inode);
  Blockdev.blkdev_direct_io (bdev_of inode)

(* Seeded ground-truth race (period 0 = off by default): a superblock
   field update without s_umount, racing mount's initialisation. *)
let seed_race_bdev = Fault.site ~period:0 "seed_race_bdev"

let bdev_write inode n =
  fn "fs/block_dev.c" 20 "blkdev_write_iter_sim" @@ fun () ->
  let bdev = bdev_of inode in
  Lock.mutex_lock bdev.bd_mutex;
  (* bd_set_size writes the backing inode's size under bd_mutex. *)
  Vfs_inode.i_size_write inode n;
  Memory.write bdev.bd_inst "bd_block_size" 4096;
  Lock.mutex_unlock bdev.bd_mutex;
  if Fault.fire seed_race_bdev then
    Memory.write inode.i_sb.sb_inst "s_blocksize_bits" 12;
  Vfs_inode.mark_inode_dirty inode

let bdev_evict inode =
  fn "fs/block_dev.c" 12 "bdev_evict_inode" @@ fun () ->
  Memory.write inode.i_inst "i_bdev" 0;
  bdev_table := List.filter (fun (k, _) -> k <> inode.i_inst.Memory.base) !bdev_table

let fstype =
  {
    fs_name = "bdev";
    fs_file = "fs/block_dev.c";
    fs_ops =
      {
        op_new_inode = bdev_new_inode;
        op_read = bdev_read;
        op_write = bdev_write;
        op_setattr = Fs_common.simple_setattr;
        op_evict = bdev_evict;
      };
  }

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"blockdev" in
  let mtx = Smember { ty = "block_device"; var = "bd"; member = "bd_mutex" } in
  let bi = [ ("i", "i") ] in
  reg "bdget_inode"
    (seq
       [
         call ~binds:[ ("sb", "sb") ] "new_inode"; call "bdget";
         write_m "inode" "i" "i_bdev"; write_m "inode" "i" "i_mode";
         read_m "block_device" "bd" "bd_dev"; write_m "inode" "i" "i_rdev";
       ]);
  reg ~root:true "blkdev_read_iter_sim"
    (seq
       [
         read_m "inode" "i" "i_bdev"; call ~binds:bi "i_size_read";
         call ~binds:[ ("bd", "bd") ] "blkdev_direct_IO";
       ]);
  (* The backing inode's size is written under bd_mutex: the EO rule into
     block_device that makes inode:bdev worth subclassing. *)
  reg ~root:true "blkdev_write_iter_sim"
    (seq
       [
         mutex_lock mtx; call ~binds:bi "i_size_write";
         write_m "block_device" "bd" "bd_block_size"; mutex_unlock mtx;
         (* Seeded ground-truth race: s_blocksize_bits without s_umount. *)
         opt (write_m "super_block" "i.sb" "s_blocksize_bits");
         call ~binds:bi "__mark_inode_dirty";
       ]);
  reg "bdev_evict_inode" (write_m "inode" "i" "i_bdev")
