(** VFS inode layer of the simulated kernel (fs/inode.c, fs/attr.c,
    fs/stat.c, fs/fs-writeback.c).

    The locking discipline deliberately mirrors Linux 4.10 including its
    inconsistencies — they are LockDoc's subject matter: [i_lock]
    protects state/accounting, [i_rwsem] + the size seqcount protect
    [i_size] and attributes, the hash chain takes the global
    [inode_hash_lock] (with the neighbour-write anomaly of paper
    Sec. 7.4), the LRU is split between locked and lock-free call sites,
    and {!inode_set_flags} carries the historically confirmed lock-free
    path (paper Fig. 3). *)

open Obj

(** {2 Allocation, hash chain, lifetime} *)

val new_inode : sb -> inode
(** Allocate and publish on the super block's inode list. *)

val insert_inode_hash : inode -> int -> unit
val remove_inode_hash : inode -> unit
val find_inode : sb -> int -> inode option
(** Hash lookup; grabs a reference ([__iget]) unless the inode is being
    torn down. *)

val iget : sb -> int -> inode
(** {!find_inode} or create-and-hash. The caller owns one reference. *)

val iput : inode -> unit
(** Drop a reference; the last reference either parks the inode on the
    LRU (nlink > 0) or evicts it. The final-reference decision runs under
    [i_lock], mirroring the kernel's [atomic_dec_and_lock]. *)

val ihold : inode -> unit
val drop_nlink : inode -> unit
val inc_nlink : inode -> unit

val set_freeing : inode -> bool
(** Claim the inode for eviction (I_FREEING) under [i_lock]; [false] if
    it is referenced or already claimed. *)

val evict : inode -> unit
(** Tear down an inode previously claimed via {!set_freeing} (or the
    equivalent inline claim in {!iput}/{!prune_icache}). *)

val prune_icache : unit -> unit
(** Walk the LRU, claim up to a handful of unreferenced inodes atomically
    under the LRU lock, and evict them. *)

val inode_lru_add_locked : inode -> unit
(** LRU insertion; the caller holds [i_lock]. *)

val inode_lru_add : inode -> unit
val inode_lru_del : inode -> unit
val inode_lru_del_walk : unit -> inode list
val inode_io_list_del : inode -> unit

(** {2 Size and block accounting} *)

val inode_add_bytes : inode -> int -> unit
(** Block/byte accounting under [i_lock]. *)

val inode_sub_bytes : inode -> int -> unit

val set_blocks_nolock : inode -> int -> unit
(** The ext4-style raw [i_blocks] store that skips [i_lock] — keeps the
    documented rule below 100 % (paper Tab. 5). *)

val i_size_write : inode -> int -> unit
(** Caller holds [i_rwsem] for writing; the store runs inside the size
    seqcount write section. *)

val i_size_read : inode -> int
(** Lock-free retrying seq section. *)

(** {2 Attributes, flags, dirty state} *)

val inode_set_flags : inode -> int -> unit
(** Mostly under [i_rwsem]; every 13th call takes the lock-free cmpxchg
    path of paper Fig. 3 (fault site ["inode_set_flags_cmpxchg"]). *)

val notify_change : inode -> mode:int -> uid:int -> unit
(** chmod/chown: common attributes under [i_rwsem], then the
    filesystem-specific setattr hook. *)

val generic_fillattr : inode -> unit
(** stat(): lock-free attribute reads. *)

val touch_atime : inode -> unit
val file_update_time : inode -> unit

val mark_inode_dirty : inode -> unit
(** Lock-free fast path; slow path takes [i_lock] then files the inode on
    the bdi's dirty list under [wb.list_lock]. *)

val inode_is_dirty : inode -> bool
val clear_inode_dirty : inode -> unit
