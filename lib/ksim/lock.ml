module Event = Lockdoc_trace.Event

exception Lock_error of string

type t = {
  l_name : string;
  l_kind : Event.lock_kind;
  l_ptr : int;
  mutable owner : int option;  (** pid of the exclusive holder *)
  mutable readers : int;
  mutable count : int;  (** semaphore counter *)
  mutable seq : int;  (** seqlock sequence *)
}

let name t = t.l_name
let ptr t = t.l_ptr

(* Static locks live in a reserved region below the heap; their state is
   reset at boot so module-level lock variables survive across runs. *)
let static_region = 0x1000
let static_cursor = ref static_region
let all_static : t list ref = ref []

let () =
  Kernel.add_boot_hook (fun () ->
      List.iter
        (fun l ->
          l.owner <- None;
          l.readers <- 0;
          l.count <- 1;
          l.seq <- 0)
        !all_static)

let make ~kind ~ptr name =
  { l_name = name; l_kind = kind; l_ptr = ptr; owner = None; readers = 0; count = 1; seq = 0 }

let static ~kind name =
  let ptr = !static_cursor in
  static_cursor := ptr + 0x10;
  let l = make ~kind ~ptr name in
  all_static := l :: !all_static;
  l

let embedded ~kind inst member =
  make ~kind ~ptr:(Memory.member_ptr inst member) member

let emit_acquire t side =
  Kernel.emit
    (Event.Lock_acquire
       { lock_ptr = t.l_ptr; kind = t.l_kind; side; name = t.l_name; loc = Kernel.here () })

let emit_release t =
  Kernel.emit (Event.Lock_release { lock_ptr = t.l_ptr; loc = Kernel.here () })

let self () = Kernel.current_pid ()

let check_not_owner t op =
  if t.owner = Some (self ()) then
    raise (Lock_error (Printf.sprintf "%s: recursive %s on %s" op op t.l_name))

let check_owner t op =
  if t.owner <> Some (self ()) then
    raise (Lock_error (Printf.sprintf "%s on %s which we do not hold" op t.l_name))

let free t = t.owner = None && t.readers = 0

(* Spin-style acquisition: on a single CPU a contended spinlock can only be
   held by a preempted-out flow, so waiting must go through the scheduler.
   Once [free] holds we take the lock without an intervening preemption
   point, which makes the test-and-set atomic under cooperative
   scheduling. *)
let spin_acquire t =
  check_not_owner t "spin_lock";
  Kernel.preempt_point ();
  if not (free t) then Kernel.wait_until ("spinlock " ^ t.l_name) (fun () -> free t);
  t.owner <- Some (self ());
  Kernel.preempt_disable ();
  emit_acquire t Event.Exclusive

let spin_release t =
  check_owner t "spin_unlock";
  t.owner <- None;
  emit_release t;
  Kernel.preempt_enable ()

let spin_lock = spin_acquire
let spin_unlock = spin_release

(* The _irq/_bh variants wait with interrupts still enabled and mask
   only once the lock is observably free; masking first would block the
   flow while holding the irqoff/bhoff pseudo-lock (and, on real
   hardware, spin with interrupts dead). The take itself has no
   preemption point, so mask+acquire is atomic under cooperative
   scheduling. *)
let spin_acquire_masked mask t =
  check_not_owner t "spin_lock";
  Kernel.preempt_point ();
  if not (free t) then Kernel.wait_until ("spinlock " ^ t.l_name) (fun () -> free t);
  mask ();
  t.owner <- Some (self ());
  Kernel.preempt_disable ();
  emit_acquire t Event.Exclusive

let spin_lock_irq t = spin_acquire_masked Kernel.local_irq_disable t

let spin_unlock_irq t =
  spin_release t;
  Kernel.local_irq_enable ()

let spin_lock_bh t = spin_acquire_masked Kernel.local_bh_disable t

let spin_unlock_bh t =
  spin_release t;
  Kernel.local_bh_enable ()

let spin_trylock t =
  if free t then begin
    t.owner <- Some (self ());
    Kernel.preempt_disable ();
    emit_acquire t Event.Exclusive;
    true
  end
  else false

let read_lock t =
  Kernel.preempt_point ();
  if t.owner <> None then
    Kernel.wait_until ("read_lock " ^ t.l_name) (fun () -> t.owner = None);
  t.readers <- t.readers + 1;
  Kernel.preempt_disable ();
  emit_acquire t Event.Shared

let read_unlock t =
  if t.readers = 0 then raise (Lock_error ("read_unlock on free " ^ t.l_name));
  t.readers <- t.readers - 1;
  emit_release t;
  Kernel.preempt_enable ()

let write_lock t =
  check_not_owner t "write_lock";
  Kernel.preempt_point ();
  if not (free t) then
    Kernel.wait_until ("write_lock " ^ t.l_name) (fun () -> free t);
  t.owner <- Some (self ());
  Kernel.preempt_disable ();
  emit_acquire t Event.Exclusive

let write_unlock t =
  check_owner t "write_unlock";
  t.owner <- None;
  emit_release t;
  Kernel.preempt_enable ()

let mutex_lock t =
  check_not_owner t "mutex_lock";
  Kernel.wait_until ("mutex " ^ t.l_name) (fun () -> t.owner = None);
  t.owner <- Some (self ());
  emit_acquire t Event.Exclusive

let mutex_unlock t =
  check_owner t "mutex_unlock";
  t.owner <- None;
  emit_release t

let down t =
  Kernel.wait_until ("semaphore " ^ t.l_name) (fun () -> t.count > 0);
  t.count <- t.count - 1;
  emit_acquire t Event.Exclusive

let up t =
  t.count <- t.count + 1;
  emit_release t

let down_read t =
  Kernel.wait_until ("down_read " ^ t.l_name) (fun () -> t.owner = None);
  t.readers <- t.readers + 1;
  emit_acquire t Event.Shared

let up_read t =
  if t.readers = 0 then raise (Lock_error ("up_read on free " ^ t.l_name));
  t.readers <- t.readers - 1;
  emit_release t

let down_write t =
  check_not_owner t "down_write";
  Kernel.wait_until ("down_write " ^ t.l_name) (fun () -> free t);
  t.owner <- Some (self ());
  emit_acquire t Event.Exclusive

let up_write t =
  check_owner t "up_write";
  t.owner <- None;
  emit_release t

let downgrade_write t =
  check_owner t "downgrade_write";
  t.owner <- None;
  t.readers <- t.readers + 1;
  emit_release t;
  emit_acquire t Event.Shared

let rcu = static ~kind:Event.Rcu "rcu"

(* call_rcu: deferred destruction until no reader section is active (a
   cooperative single-CPU grace period). *)
let rcu_callbacks : (unit -> unit) list ref = ref []

let () = Kernel.add_boot_hook (fun () -> rcu_callbacks := [])

let rcu_drain () =
  if rcu.readers = 0 && !rcu_callbacks <> [] then begin
    let pending = List.rev !rcu_callbacks in
    rcu_callbacks := [];
    List.iter (fun f -> f ()) pending
  end

let call_rcu f =
  if rcu.readers = 0 then f () else rcu_callbacks := f :: !rcu_callbacks

let rcu_read_lock () =
  rcu.readers <- rcu.readers + 1;
  emit_acquire rcu Event.Shared

let rcu_read_unlock () =
  if rcu.readers = 0 then raise (Lock_error "rcu_read_unlock outside section");
  rcu.readers <- rcu.readers - 1;
  emit_release rcu;
  rcu_drain ()

let write_seqlock t =
  spin_acquire t;
  t.seq <- t.seq + 1

let write_sequnlock t =
  t.seq <- t.seq + 1;
  spin_release t

let read_seq_section t body =
  let rec attempt tries =
    if tries > 8 then
      raise (Lock_error ("read_seq_section starved on " ^ t.l_name));
    let s0 = t.seq in
    if s0 land 1 = 1 then begin
      Kernel.preempt_point ();
      attempt (tries + 1)
    end
    else begin
      emit_acquire t Event.Shared;
      let result = body () in
      emit_release t;
      if t.seq <> s0 then attempt (tries + 1) else result
    end
  in
  attempt 0

let scoped acquire release t body =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) body

let with_spin t body = scoped spin_lock spin_unlock t body
let with_mutex t body = scoped mutex_lock mutex_unlock t body
let with_read t body = scoped down_read up_read t body
let with_write t body = scoped down_write up_write t body

let with_rcu body =
  rcu_read_lock ();
  Fun.protect ~finally:rcu_read_unlock body
