(** pipefs: inodes whose payload is a pipe_inode_info (fs/pipe.c).

    [op_new_inode] populates the unrolled union member [i_pipe]; data
    movement goes through the {!Pipe} subsystem under the pipe mutex. *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

let get_pipe_inode sb =
  fn "fs/pipe.c" 22 "get_pipe_inode" @@ fun () ->
  let inode = Vfs_inode.new_inode sb in
  let pipe = alloc_pipe () in
  inode.i_pipe_obj <- Some pipe;
  Memory.write inode.i_inst "i_pipe" pipe.p_inst.Memory.base;
  Memory.write inode.i_inst "i_mode" 0o10600;
  Pipe.pipe_open pipe ~reader:true;
  Pipe.pipe_open pipe ~reader:false;
  inode

let pipe_of inode =
  match inode.i_pipe_obj with
  | Some p -> p
  | None -> invalid_arg "pipefs: inode has no pipe"

let pipefs_read inode =
  fn "fs/pipe.c" 10 "fifo_pipe_read" @@ fun () ->
  ignore (Memory.read inode.i_inst "i_pipe");
  Pipe.pipe_read (pipe_of inode) 1

let pipefs_write inode n =
  fn "fs/pipe.c" 10 "fifo_pipe_write" @@ fun () ->
  ignore (Memory.read inode.i_inst "i_pipe");
  Pipe.pipe_write (pipe_of inode) n

let pipefs_evict inode =
  fn "fs/pipe.c" 12 "pipe_evict_inode" @@ fun () ->
  (match inode.i_pipe_obj with
  | Some pipe ->
      Pipe.pipe_release pipe ~reader:true;
      Pipe.pipe_release pipe ~reader:false;
      free_pipe pipe;
      inode.i_pipe_obj <- None
  | None -> ());
  Memory.write inode.i_inst "i_pipe" 0

let fstype =
  {
    fs_name = "pipefs";
    fs_file = "fs/pipe.c";
    fs_ops =
      {
        op_new_inode = get_pipe_inode;
        op_read = pipefs_read;
        op_write = pipefs_write;
        op_setattr = Fs_common.simple_setattr;
        op_evict = pipefs_evict;
      };
  }

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"pipe" in
  let bp = [ ("p", "p") ] in
  reg "get_pipe_inode"
    (seq
       [
         call ~binds:[ ("sb", "sb") ] "new_inode"; call "pipe_alloc_init";
         write_m "inode" "i" "i_pipe"; write_m "inode" "i" "i_mode";
         call ~binds:bp "fifo_open"; call ~binds:bp "fifo_open";
       ]);
  reg ~root:true "fifo_pipe_read"
    (seq [ read_m "inode" "i" "i_pipe"; call ~binds:bp "pipe_read" ]);
  reg ~root:true "fifo_pipe_write"
    (seq [ read_m "inode" "i" "i_pipe"; call ~binds:bp "pipe_write" ]);
  reg "pipe_evict_inode"
    (seq
       [
         opt
           (seq
              [
                call ~binds:bp "pipe_release"; call ~binds:bp "pipe_release";
                call "free_pipe_info";
              ]);
         write_m "inode" "i" "i_pipe";
       ])
