(** Top-level simulation entry points: assemble the kernel, the benchmark
    mix and the interrupt sources, run to completion, and hand back the
    trace (paper phase ❶). *)

type config = {
  kernel : Kernel.config;
  scale : int;  (** workload iteration multiplier; 1 ≈ tens of thousands
                    of trace events, 10 ≈ several hundred thousand *)
  faults : bool;  (** enable the deliberate locking-fault sites *)
}

val default_config : config

val benchmark_mix :
  ?config:config -> unit -> Lockdoc_trace.Trace.t * Source.coverage
(** The full evaluation workload: all six benchmark families plus the
    flusher thread and timer/block interrupt sources, over eleven mounted
    filesystems. Deterministic for a fixed config. *)

val quick : ?seed:int -> unit -> Lockdoc_trace.Trace.t
(** A small smoke-test run (scale 1, no IRQs) for tests. *)
