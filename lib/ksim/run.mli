(** Top-level simulation entry points: assemble the kernel, the benchmark
    mix and the interrupt sources, run to completion, and hand back the
    trace (paper phase ❶). *)

type config = {
  kernel : Kernel.config;
  scale : int;  (** workload iteration multiplier; 1 ≈ tens of thousands
                    of trace events, 10 ≈ several hundred thousand *)
  faults : bool;  (** enable the deliberate locking-fault sites *)
}

val default_config : config

val benchmark_mix :
  ?config:config -> unit -> Lockdoc_trace.Trace.t * Source.coverage
(** The full evaluation workload: all six benchmark families plus the
    flusher thread and timer/block interrupt sources, over eleven mounted
    filesystems. Deterministic for a fixed config. *)

val quick : ?seed:int -> unit -> Lockdoc_trace.Trace.t
(** A small smoke-test run (scale 1, no IRQs) for tests. *)

val workload_names : string list
(** The benchmark families runnable in isolation via
    {!workload_trace}. *)

val workload_trace :
  ?seed:int -> ?scale:int -> string -> Lockdoc_trace.Trace.t
(** [workload_trace name] runs one benchmark family (no IRQ sources,
    small iteration counts) and returns the trace; deterministic for a
    fixed (name, seed, scale). The corruption fuzzer uses these as
    ground-truth clean traces. Raises [Invalid_arg] for names outside
    {!workload_names}. *)

val sanitize_trace :
  ?seed:int ->
  ?scale:int ->
  bugs:bool ->
  string ->
  Lockdoc_trace.Trace.t * Seeded.truth
(** [sanitize_trace ~bugs name] runs one benchmark family augmented with
    a work-queueing thread and a deterministic timer interrupt on the
    family's backing device, with fault sites forced to exactly the
    seeded ground-truth bugs ([bugs = true]) or all silenced
    ([bugs = false]). Returns the trace and the ground truth that
    actually manifested; restores the declared fault periods before
    returning. Deterministic for a fixed (name, seed, scale, bugs). *)

val replay_trace :
  ?seed:int ->
  ?scale:int ->
  ?control:Kernel.control ->
  bugs:bool ->
  string ->
  Lockdoc_trace.Trace.t * Seeded.truth
(** {!sanitize_trace} augmented for directed replay: spawns two extra
    "conflict twin" flows that re-execute a small slice of the family
    workload plus an inode get/put churn on the family superblock, so
    every finding has designated conflicting flows a schedule
    controller can switch to, and installs [control] over the whole
    run. Deterministic for a fixed (name, seed, scale, bugs,
    controller behaviour). *)
