(** Path resolution (fs/namei.c): the dcache walk that drives most dentry
    traffic in a real kernel.

    The fast path walks components under RCU with per-dentry sequence
    semantics and no reference counts (rcu-walk); any miss falls back to
    the reference-counted slow path (ref-walk) that takes each dentry's
    d_lock. Lookup misses go to the filesystem, here modelled as an iget
    plus dcache insertion, as simple filesystems do. *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

(* One component of the rcu-walk fast path. *)
let lookup_fast parent name_hash =
  fn "fs/namei.c" 30 "lookup_fast" @@ fun () ->
  Vfs_dentry.d_lookup_rcu parent name_hash

(* The slow path takes d_lock per candidate and grabs a reference. *)
let lookup_slow parent name_hash =
  fn "fs/namei.c" 18 "lookup_slow" @@ fun () ->
  Vfs_dentry.d_lookup parent name_hash

let walk_component parent name_hash =
  fn "fs/namei.c" 24 "walk_component" @@ fun () ->
  match lookup_fast parent name_hash with
  | Some d -> Some (d, `Rcu)
  | None -> (
      match lookup_slow parent name_hash with
      | Some d -> Some (d, `Ref)
      | None -> None)

let link_path_walk root components =
  fn "fs/namei.c" 60 "link_path_walk" @@ fun () ->
  let rec walk parent = function
    | [] -> Some parent
    | name :: rest -> (
        match walk_component parent name with
        | Some (d, mode) ->
            let continue_walk = walk d rest in
            (* ref-walk grabbed a reference that must be dropped. *)
            if mode = `Ref then Vfs_dentry.dput d;
            continue_walk
        | None -> None)
  in
  walk root components

let path_lookupat root components =
  fn "fs/namei.c" 28 "path_lookupat" @@ fun () ->
  link_path_walk root components

(* Create: resolve the parent, then allocate inode + dentry and wire them
   up (the do_last/open(O_CREAT) shape). *)
let vfs_create sb parent name_hash ino =
  fn "fs/namei.c" 18 "vfs_create" @@ fun () ->
  match Vfs_dentry.d_lookup parent name_hash with
  | Some existing ->
      (* d_lookup took a reference; it now belongs to the caller. The
         cached alias may point at an inode that has been evicted since
         (negative-ish dentry): rebind it to the live inode. *)
      let inode = Vfs_inode.iget sb ino in
      (match existing.d_inode_obj with
      | Some i when i == inode -> ()
      | Some _ | None -> Vfs_dentry.d_instantiate existing inode);
      (existing, inode)
  | None ->
      let inode = Vfs_inode.iget sb ino in
      let dentry = Vfs_dentry.d_alloc parent name_hash in
      Vfs_dentry.d_instantiate dentry inode;
      (dentry, inode)

let vfs_unlink parent dentry inode =
  fn "fs/namei.c" 22 "vfs_unlink" @@ fun () ->
  Lock.down_write inode.i_rwsem;
  Vfs_inode.drop_nlink inode;
  Lock.up_write inode.i_rwsem;
  Vfs_dentry.d_delete dentry;
  Vfs_dentry.remove_child parent dentry;
  Vfs_dentry.dentry_lru_del dentry;
  Lock.call_rcu (fun () -> free_dentry dentry)

(* Cold declarations retained for functions we still do not model. *)
let () =
  List.iter
    (fun (name, span) -> ignore (Source.declare ~file:"fs/namei.c" ~span name))
    [
      ("may_lookup", 8); ("follow_managed", 26); ("nd_jump_root", 14);
      ("set_root", 10); ("path_init", 34); ("complete_walk", 16);
      ("unlazy_walk", 22); ("vfs_mkdir", 16); ("vfs_rmdir", 20);
      ("vfs_symlink", 16); ("vfs_rename", 48); ("do_last", 70);
      ("path_openat", 30); ("filename_create", 22);
      ("user_path_at_empty", 10); ("getname_flags", 20);
    ]

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"vfs" in
  let bp = [ ("p", "p") ] in
  reg "lookup_fast" (call ~binds:bp "__d_lookup_rcu");
  reg "lookup_slow" (call ~binds:bp "d_lookup");
  reg "walk_component"
    (seq [ call ~binds:bp "lookup_fast"; opt (call ~binds:bp "lookup_slow") ]);
  reg "link_path_walk"
    (star (seq [ call "walk_component"; opt (call ~binds:[ ("d", "d") ] "dput") ]));
  reg ~root:true "path_lookupat" (call "link_path_walk");
  reg ~root:true "vfs_create"
    (seq
       [
         call ~binds:bp "d_lookup"; call ~binds:[ ("sb", "sb") ] "iget_locked";
         alt
           [
             opt (call ~binds:[ ("d", "d"); ("i", "i") ] "d_instantiate");
             seq
               [
                 call ~binds:bp "d_alloc";
                 call ~binds:[ ("d", "d"); ("i", "i") ] "d_instantiate";
               ];
           ];
       ]);
  reg ~root:true "vfs_unlink"
    (seq
       [
         down_write (Smember { ty = "inode"; var = "i"; member = "i_rwsem" });
         call ~binds:[ ("i", "i") ] "drop_nlink";
         up_write (Smember { ty = "inode"; var = "i"; member = "i_rwsem" });
         call ~binds:[ ("d", "d") ] "d_delete";
         call ~binds:[ ("p", "p"); ("d", "d") ] "dentry_unlist";
         call ~binds:[ ("d", "d") ] "d_lru_del";
       ])
