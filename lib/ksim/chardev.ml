(** Character-device registry (fs/char_dev.c).

    Everything is protected by the global [cdev_lock]; the paper finds no
    violations for struct cdev (Tab. 7: 0 events), so this subsystem is
    deliberately disciplined. *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

let cdev_map : chardev list ref = ref []

let () = Kernel.add_boot_hook (fun () -> cdev_map := [])

let cdev_add cd dev count =
  fn "fs/char_dev.c" 18 "cdev_add" @@ fun () ->
  Lock.spin_lock Globals.cdev_lock;
  Memory.write cd.cd_inst "dev" dev;
  Memory.write cd.cd_inst "count" count;
  Memory.write cd.cd_inst "list" 1;
  Memory.write cd.cd_inst "ops" 1;
  cdev_map := cd :: !cdev_map;
  Lock.spin_unlock Globals.cdev_lock

let cdev_del cd =
  fn "fs/char_dev.c" 12 "cdev_del" @@ fun () ->
  Lock.spin_lock Globals.cdev_lock;
  Memory.write cd.cd_inst "list" 0;
  cdev_map := List.filter (fun c -> c != cd) !cdev_map;
  Lock.spin_unlock Globals.cdev_lock;
  free_cdev cd

let cdev_lookup dev =
  fn "fs/char_dev.c" 20 "kobj_lookup" @@ fun () ->
  Lock.spin_lock Globals.cdev_lock;
  let found =
    List.find_opt
      (fun c ->
        ignore (Memory.read c.cd_inst "list");
        ignore (Memory.read c.cd_inst "count");
        Memory.read c.cd_inst "dev" = dev)
      !cdev_map
  in
  (match found with
  | Some c ->
      ignore (Memory.read c.cd_inst "ops");
      ignore (Memory.read c.cd_inst "owner")
  | None -> ());
  Lock.spin_unlock Globals.cdev_lock;
  found

let () =
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"fs/char_dev.c" ~span name))
    [
      ("register_chrdev_region", 22); ("alloc_chrdev_region", 14);
      ("__register_chrdev", 26); ("unregister_chrdev_region", 12);
      ("chrdev_open", 34); ("cd_forget", 14); ("cdev_purge", 12);
      ("base_probe", 6);
    ]

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"cdev" in
  let g = Sglobal "cdev_lock" in
  let r m = read_m "cdev" "cd" m in
  let w m = write_m "cdev" "cd" m in
  reg "cdev_add"
    (with_lock ~lock:(spin_lock g) ~unlock:(spin_unlock g)
       (seq [ w "dev"; w "count"; w "list"; w "ops" ]));
  reg "cdev_del"
    (seq
       [ spin_lock g; w "list"; spin_unlock g; call "cdev_free" ]);
  reg "kobj_lookup"
    (with_lock ~lock:(spin_lock g) ~unlock:(spin_unlock g)
       (seq
          [
            star (seq [ r "list"; r "count"; r "dev" ]);
            opt (seq [ r "ops"; r "owner" ]);
          ]))
