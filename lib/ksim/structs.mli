(** Type layouts of the 11 monitored kernel data structures (paper
    Sec. 7.1, Tab. 6).

    Union compounds are unrolled ([i_pipe]/[i_bdev]/[i_cdev]/[i_link]
    appear as separate members, and the embedded [struct address_space]
    appears as [i_data.*]), mirroring what the paper does to distinguish
    union members by offset. Lock-typed members carry [Layout.Lock];
    [atomic_t]-style members carry [Layout.Atomic]. *)

val inode : Lockdoc_trace.Layout.t
val dentry : Lockdoc_trace.Layout.t
val super_block : Lockdoc_trace.Layout.t
val journal : Lockdoc_trace.Layout.t  (** [journal_t] *)

val transaction : Lockdoc_trace.Layout.t  (** [transaction_t] *)

val journal_head : Lockdoc_trace.Layout.t
val buffer_head : Lockdoc_trace.Layout.t
val block_device : Lockdoc_trace.Layout.t
val backing_dev_info : Lockdoc_trace.Layout.t
val cdev : Lockdoc_trace.Layout.t
val pipe_inode_info : Lockdoc_trace.Layout.t

val all : Lockdoc_trace.Layout.t list

val inode_subclasses : string list
(** The 11 file-system subclasses of [struct inode] exercised by the
    workloads (paper Tab. 6 lists 10 plus ext4). *)
