(** Dentry cache of the simulated kernel (fs/dcache.c, fs/libfs.c,
    fs/namei.c).

    Locking discipline mirrored from Linux 4.10:
    - a child's [d_child]/[d_subdirs] linkage is protected by the
      {e parent's} [d_lock] — an embedded-other (EO) rule on the same
      data type;
    - [d_instantiate] nests [d_lock] inside the inode's [i_lock];
    - lookups read names under the victim's own [d_lock] within an RCU +
      rename-seqlock section;
    - the cursor-based readdir in fs/libfs.c walks [d_subdirs] under the
      directory inode's [i_rwsem] plus RCU only — the violation the paper
      reports in Tab. 8 (fs/libfs.c:104). *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

(* {2 Allocation and tree linkage} *)

let d_alloc parent name_hash =
  fn "fs/dcache.c" 30 "d_alloc" @@ fun () ->
  let dentry = alloc_dentry parent.d_sb (Some parent) in
  Lock.spin_lock parent.d_lock;
  (* list_add to the parent's d_subdirs and our d_child: both ends are
     written under the parent's d_lock. *)
  Memory.write parent.d_inst "d_subdirs" dentry.d_inst.Memory.base;
  Memory.write dentry.d_inst "d_child" parent.d_inst.Memory.base;
  Memory.write dentry.d_inst "d_name" name_hash;
  Memory.write dentry.d_inst "d_iname" name_hash;
  parent.d_children <- dentry :: parent.d_children;
  Lock.spin_unlock parent.d_lock;
  dentry

let d_alloc_root sb =
  fn "fs/dcache.c" 12 "d_make_root" @@ fun () ->
  alloc_dentry sb None

let d_instantiate dentry inode =
  fn "fs/dcache.c" 20 "d_instantiate" @@ fun () ->
  Lock.spin_lock inode.i_lock;
  Lock.spin_lock dentry.d_lock;
  Memory.write dentry.d_inst "d_inode" inode.i_inst.Memory.base;
  Memory.modify dentry.d_inst "d_flags" (fun f -> f lor 0x2);
  Memory.write dentry.d_inst "d_time" 1;
  Memory.write inode.i_inst "i_dentry" dentry.d_inst.Memory.base;
  dentry.d_inode_obj <- Some inode;
  Lock.spin_unlock dentry.d_lock;
  Lock.spin_unlock inode.i_lock

(* {2 Lookup} *)

let d_lookup parent name_hash =
  fn "fs/dcache.c" 34 "d_lookup" @@ fun () ->
  Lock.with_rcu @@ fun () ->
  (* Hash-chain peek under the global hash lock before the seq walk. *)
  (match parent.d_children with
  | first :: _ ->
      Lock.spin_lock Globals.dentry_hash_lock;
      ignore (Memory.read first.d_inst "d_hash");
      Lock.spin_unlock Globals.dentry_hash_lock
  | [] -> ());
  Lock.read_seq_section Globals.rename_lock @@ fun () ->
  let found =
    List.find_opt
      (fun child ->
        Lock.spin_lock child.d_lock;
        let hit =
          ignore (Memory.read child.d_inst "d_parent");
          ignore (Memory.read child.d_inst "d_flags");
          Memory.read child.d_inst "d_name" = name_hash
        in
        if hit then begin
          ignore (Memory.read child.d_inst "d_inode");
          ignore (Memory.read child.d_inst "d_count");
          Memory.modify child.d_inst "d_count" (fun c -> c + 1)
        end
        else ignore (Memory.read child.d_inst "d_count");
        Lock.spin_unlock child.d_lock;
        hit)
      parent.d_children
  in
  found

(* Lock-free RCU walk: reads d_seq-protected fields without d_lock, as the
   real fast path does; contributes lock-free reads of d_name/d_parent. *)
let d_lookup_rcu parent name_hash =
  fn "fs/dcache.c" 28 "__d_lookup_rcu" @@ fun () ->
  Lock.with_rcu @@ fun () ->
  List.find_opt
    (fun child ->
      ignore (Memory.read child.d_inst "d_parent");
      ignore (Memory.read child.d_inst "d_hash");
      ignore (Memory.read child.d_inst "d_iname");
      Memory.read child.d_inst "d_name" = name_hash)
    parent.d_children

(* {2 Reference counting and LRU} *)

let dget dentry =
  fn "fs/dcache.c" 8 "dget" @@ fun () ->
  Lock.spin_lock dentry.d_lock;
  Memory.modify dentry.d_inst "d_count" (fun c -> c + 1);
  Lock.spin_unlock dentry.d_lock

let dentry_lru_add dentry =
  fn "fs/dcache.c" 12 "d_lru_add" @@ fun () ->
  let sb = dentry.d_sb in
  (* Lock-free fast-path membership peek before taking the LRU lock. *)
  if Memory.read dentry.d_inst "d_lru" = 0 then begin
  Lock.spin_lock sb.s_dentry_lru_lock;
  Memory.write dentry.d_inst "d_lru" 1;
  Memory.modify dentry.d_inst "d_flags" (fun f -> f lor 0x80 (* DCACHE_LRU_LIST *));
  if not (List.memq dentry sb.s_dentry_lru) then
    sb.s_dentry_lru <- dentry :: sb.s_dentry_lru;
  Lock.spin_unlock sb.s_dentry_lru_lock
  end

(* Removal from the LRU on the kill path (__dentry_kill shape). *)
let dentry_lru_del dentry =
  fn "fs/dcache.c" 10 "d_lru_del" @@ fun () ->
  let sb = dentry.d_sb in
  Lock.spin_lock sb.s_dentry_lru_lock;
  if List.memq dentry sb.s_dentry_lru then begin
    Memory.write dentry.d_inst "d_lru" 0;
    sb.s_dentry_lru <- List.filter (fun d -> d != dentry) sb.s_dentry_lru
  end;
  Lock.spin_unlock sb.s_dentry_lru_lock

let dput dentry =
  fn "fs/dcache.c" 26 "dput" @@ fun () ->
  Lock.spin_lock dentry.d_lock;
  (* simple_empty-style child check under our own d_lock. *)
  ignore (Memory.read dentry.d_inst "d_subdirs");
  let count = Memory.read dentry.d_inst "d_count" - 1 in
  Memory.write dentry.d_inst "d_count" count;
  Lock.spin_unlock dentry.d_lock;
  if count = 0 then dentry_lru_add dentry

(* {2 Unlink / delete} *)

let d_drop dentry =
  fn "fs/dcache.c" 16 "__d_drop" @@ fun () ->
  Lock.spin_lock dentry.d_lock;
  Lock.spin_lock Globals.dentry_hash_lock;
  ignore (Memory.read dentry.d_inst "d_hash");
  Memory.write dentry.d_inst "d_hash" 0;
  Memory.modify dentry.d_inst "d_flags" (fun f -> f land lnot 0x2);
  Lock.spin_unlock Globals.dentry_hash_lock;
  Lock.spin_unlock dentry.d_lock

let d_delete dentry =
  fn "fs/dcache.c" 22 "d_delete" @@ fun () ->
  (* The victim must have no children: checked under its d_lock. *)
  Lock.spin_lock dentry.d_lock;
  ignore (Memory.read dentry.d_inst "d_subdirs");
  Lock.spin_unlock dentry.d_lock;
  (match dentry.d_inode_obj with
  | Some inode ->
      Lock.spin_lock inode.i_lock;
      Lock.spin_lock dentry.d_lock;
      Memory.write dentry.d_inst "d_inode" 0;
      Memory.write inode.i_inst "i_dentry" 0;
      dentry.d_inode_obj <- None;
      Lock.spin_unlock dentry.d_lock;
      Lock.spin_unlock inode.i_lock
  | None -> ());
  d_drop dentry

let remove_child parent dentry =
  fn "fs/dcache.c" 14 "dentry_unlist" @@ fun () ->
  Lock.spin_lock parent.d_lock;
  Memory.write parent.d_inst "d_subdirs" 0;
  ignore (Memory.read dentry.d_inst "d_child");
  Memory.write dentry.d_inst "d_child" 0;
  parent.d_children <- List.filter (fun d -> d != dentry) parent.d_children;
  Lock.spin_unlock parent.d_lock

(* {2 Rename} *)

let d_move dentry new_parent =
  fn "fs/dcache.c" 40 "d_move" @@ fun () ->
  Lock.mutex_lock dentry.d_sb.s_rename_mutex;
  Lock.write_seqlock Globals.rename_lock;
  (match dentry.d_parent with
  | Some old_parent when old_parent != new_parent ->
      Lock.spin_lock old_parent.d_lock;
      Lock.spin_lock new_parent.d_lock;
      (* Linkage peek while only the parents' locks are held. *)
      ignore (Memory.read dentry.d_inst "d_child");
      Lock.spin_lock dentry.d_lock;
      Memory.write old_parent.d_inst "d_subdirs" 0;
      Memory.write new_parent.d_inst "d_subdirs" dentry.d_inst.Memory.base;
      Memory.write dentry.d_inst "d_parent" new_parent.d_inst.Memory.base;
      Memory.write dentry.d_inst "d_child" new_parent.d_inst.Memory.base;
      (* Rehash without the dcache hash lock (rename-seq section instead),
         keeping the documented hash-lock rule below 100 %. *)
      Memory.write dentry.d_inst "d_hash" 1;
      old_parent.d_children <-
        List.filter (fun d -> d != dentry) old_parent.d_children;
      new_parent.d_children <- dentry :: new_parent.d_children;
      dentry.d_parent <- Some new_parent;
      Lock.spin_unlock dentry.d_lock;
      Lock.spin_unlock new_parent.d_lock;
      Lock.spin_unlock old_parent.d_lock
  | Some _ | None -> ());
  Lock.write_sequnlock Globals.rename_lock;
  Lock.mutex_unlock dentry.d_sb.s_rename_mutex

(* {2 Shrinking} *)

let shrink_dcache_sb sb =
  fn "fs/dcache.c" 28 "shrink_dcache_sb" @@ fun () ->
  (* Pass 1: pick victims under the LRU lock; pure d_lru reads for the
     survivors, read+write for the evicted. d_count is peeked without
     the dentry's own d_lock (as the real shrinker's fast path does). *)
  Lock.spin_lock sb.s_dentry_lru_lock;
  let victims =
    List.filter
      (fun d ->
        ignore (Memory.read d.d_inst "d_lru");
        ignore (Memory.read d.d_inst "d_flags");
        Memory.read d.d_inst "d_count" = 0)
      sb.s_dentry_lru
  in
  List.iter (fun d -> Memory.write d.d_inst "d_lru" 0) victims;
  sb.s_dentry_lru <-
    List.filter (fun d -> not (List.memq d victims)) sb.s_dentry_lru;
  (* Unlink the victims from their parents while still inside the
     non-preemptible section, so no concurrent lookup can resurrect a
     dentry we are about to free. The traced d_subdirs/d_child writes
     follow in dentry_unlist below. *)
  List.iter
    (fun d ->
      match d.d_parent with
      | Some p -> p.d_children <- List.filter (fun c -> c != d) p.d_children
      | None -> ())
    victims;
  Lock.spin_unlock sb.s_dentry_lru_lock;
  List.iter
    (fun d ->
      (* Detach the inode pointer lock-free before teardown. *)
      if d.d_inode_obj <> None then begin
        Memory.write d.d_inst "d_inode" 0;
        d.d_inode_obj <- None
      end;
      (match d.d_parent with Some p -> remove_child p d | None -> ());
      (* RCU walkers may still hold the dentry. *)
      Lock.call_rcu (fun () -> free_dentry d))
    victims

(* {2 fs/libfs.c: cursor readdir}

   Walks d_subdirs/d_child of the children holding only the directory
   i_rwsem and RCU — the paper's Tab. 8 dentry violation
   (fs/libfs.c:104). *)

let dcache_readdir dir_inode parent =
  fn "fs/libfs.c" 30 "dcache_readdir" @@ fun () ->
  Lock.down_read dir_inode.i_rwsem;
  Lock.with_rcu (fun () ->
      ignore (Memory.read parent.d_inst "d_subdirs");
      List.iter
        (fun child ->
          ignore (Memory.read child.d_inst "d_child");
          ignore (Memory.read child.d_inst "d_inode");
          ignore (Memory.read child.d_inst "d_name"))
        parent.d_children);
  Lock.up_read dir_inode.i_rwsem

(* Cold declarations for coverage (paper Tab. 3 denominators). *)
let () =
  List.iter
    (fun (name, span) -> ignore (Source.declare ~file:"fs/dcache.c" ~span name))
    [
      ("d_find_alias", 18); ("d_prune_aliases", 24); ("shrink_dentry_list", 30);
      ("d_invalidate", 22); ("d_set_mounted", 16); ("d_ancestor", 10);
      ("d_splice_alias", 28); ("d_add_ci", 20); ("d_exact_alias", 18);
      ("d_rehash", 8); ("d_hash_and_lookup", 12); ("d_obtain_alias", 16);
      ("d_tmpfile", 12); ("is_subdir", 14); ("d_genocide", 16);
      ("find_submount", 12); ("path_check_mount", 10);
    ];
  List.iter
    (fun (name, span) -> ignore (Source.declare ~file:"fs/libfs.c" ~span name))
    [
      ("dcache_dir_open", 8); ("dcache_dir_close", 6); ("dcache_dir_lseek", 18);
      ("simple_statfs", 6); ("simple_lookup", 12); ("simple_open", 6);
      ("simple_link", 14); ("simple_empty", 16); ("simple_unlink", 10);
      ("simple_rmdir", 10); ("simple_rename", 22); ("simple_setattr", 12);
      ("simple_getattr", 8); ("simple_write_begin", 18); ("simple_write_end", 20);
      ("simple_fill_super", 30); ("simple_pin_fs", 14); ("simple_release_fs", 8);
    ];
  List.iter
    (fun (name, span) -> ignore (Source.declare ~file:"fs/namei.c" ~span name))
    []

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"vfs" in
  let dl = Smember { ty = "dentry"; var = "d"; member = "d_lock" } in
  let pl = Smember { ty = "dentry"; var = "p"; member = "d_lock" } in
  let cl = Smember { ty = "dentry"; var = "c"; member = "d_lock" } in
  let il = Smember { ty = "inode"; var = "i"; member = "i_lock" } in
  let ghash = Sglobal "dentry_hash_lock" in
  let grename = Sglobal "rename_lock" in
  let lru = Smember { ty = "super_block"; var = "d.sb"; member = "s_dentry_lru_lock" } in
  let rd m = read_m "dentry" "d" m in
  let wd m = write_m "dentry" "d" m in
  let rwd m = modify_m "dentry" "d" m in
  let rc m = read_m "dentry" "c" m in
  let bd = [ ("d", "d") ] in
  reg ~root:true "d_alloc"
    (seq
       [
         call "d_alloc_init"; spin_lock pl; write_m "dentry" "p" "d_subdirs";
         wd "d_child"; wd "d_name"; wd "d_iname"; spin_unlock pl;
       ]);
  reg ~root:true "d_make_root" (call "d_alloc_init");
  reg ~root:true "d_instantiate"
    (seq
       [
         spin_lock il; spin_lock dl; wd "d_inode"; rwd "d_flags"; wd "d_time";
         write_m "inode" "i" "i_dentry"; spin_unlock dl; spin_unlock il;
       ]);
  reg ~root:true "d_lookup"
    (with_rcu
       (seq
          [
            opt (seq [ spin_lock ghash; rc "d_hash"; spin_unlock ghash ]);
            read_seq grename
              (star
                 (seq
                    [
                      spin_lock cl; rc "d_parent"; rc "d_flags"; rc "d_name";
                      alt
                        [
                          seq [ rc "d_inode"; rc "d_count"; modify_m "dentry" "c" "d_count" ];
                          rc "d_count";
                        ];
                      spin_unlock cl;
                    ]));
          ]));
  reg ~root:true "__d_lookup_rcu"
    (with_rcu (star (seq [ rc "d_parent"; rc "d_hash"; rc "d_iname"; rc "d_name" ])));
  reg "dget"
    (seq [ spin_lock dl; rwd "d_count"; spin_unlock dl ]);
  reg "d_lru_add"
    (seq
       [
         rd "d_lru";
         opt
           (seq [ spin_lock lru; wd "d_lru"; rwd "d_flags"; spin_unlock lru ]);
       ]);
  reg "d_lru_del"
    (seq [ spin_lock lru; opt (wd "d_lru"); spin_unlock lru ]);
  reg ~root:true "dput"
    (seq
       [
         spin_lock dl; rd "d_subdirs"; rd "d_count"; wd "d_count"; spin_unlock dl;
         opt (call ~binds:bd "d_lru_add");
       ]);
  reg "__d_drop"
    (seq
       [
         spin_lock dl; spin_lock ghash; rd "d_hash"; wd "d_hash"; rwd "d_flags";
         spin_unlock ghash; spin_unlock dl;
       ]);
  reg "d_delete"
    (seq
       [
         spin_lock dl; rd "d_subdirs"; spin_unlock dl;
         opt
           (seq
              [
                spin_lock il; spin_lock dl; wd "d_inode";
                write_m "inode" "i" "i_dentry"; spin_unlock dl; spin_unlock il;
              ]);
         call ~binds:bd "__d_drop";
       ]);
  reg ~root:true "dentry_unlist"
    (seq
       [
         spin_lock pl; write_m "dentry" "p" "d_subdirs"; rd "d_child";
         wd "d_child"; spin_unlock pl;
       ]);
  (* Rehash happens under the rename seqlock, not the hash lock — keeps
     the documented hash-lock rule below 100 %. *)
  reg ~root:true "d_move"
    (seq
       [
         mutex_lock (Smember { ty = "super_block"; var = "d.sb"; member = "s_vfs_rename_mutex" });
         write_seqlock grename;
         opt
           (seq
              [
                spin_lock (Smember { ty = "dentry"; var = "op"; member = "d_lock" });
                spin_lock (Smember { ty = "dentry"; var = "np"; member = "d_lock" });
                rd "d_child"; spin_lock dl;
                write_m "dentry" "op" "d_subdirs"; write_m "dentry" "np" "d_subdirs";
                wd "d_parent"; wd "d_child"; wd "d_hash";
                spin_unlock dl;
                spin_unlock (Smember { ty = "dentry"; var = "np"; member = "d_lock" });
                spin_unlock (Smember { ty = "dentry"; var = "op"; member = "d_lock" });
              ]);
         write_sequnlock grename;
         mutex_unlock (Smember { ty = "super_block"; var = "d.sb"; member = "s_vfs_rename_mutex" });
       ]);
  reg ~root:true "shrink_dcache_sb"
    (seq
       [
         spin_lock (Smember { ty = "super_block"; var = "sb"; member = "s_dentry_lru_lock" });
         star (seq [ rd "d_lru"; rd "d_flags"; rd "d_count" ]);
         star (wd "d_lru");
         spin_unlock (Smember { ty = "super_block"; var = "sb"; member = "s_dentry_lru_lock" });
         star
           (seq
              [
                opt (wd "d_inode");
                opt (call ~binds:[ ("p", "p"); ("d", "d") ] "dentry_unlist");
              ]);
       ]);
  reg ~root:true "dcache_readdir"
    (seq
       [
         down_read (Smember { ty = "inode"; var = "i"; member = "i_rwsem" });
         with_rcu
           (seq
              [
                read_m "dentry" "p" "d_subdirs";
                star (seq [ rc "d_child"; rc "d_inode"; rc "d_name" ]);
              ]);
         up_read (Smember { ty = "inode"; var = "i"; member = "i_rwsem" });
       ])
