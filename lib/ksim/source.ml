type fn = { fn_name : string; fn_file : string; fn_start : int; fn_span : int }

(* Global registry: the simulated kernel's "source tree" is the same for
   every run, only coverage is per-run. *)
let registry : (string, fn) Hashtbl.t = Hashtbl.create 256

let file_cursor : (string, int) Hashtbl.t = Hashtbl.create 32

let declare ~file ~span name =
  match Hashtbl.find_opt registry name with
  | Some fn ->
      if fn.fn_file <> file || fn.fn_span <> span then
        invalid_arg
          (Printf.sprintf
             "Source.declare: %S re-declared as %s(%d), already %s(%d)" name
             file span fn.fn_file fn.fn_span);
      fn
  | None ->
      let start = Option.value ~default:1 (Hashtbl.find_opt file_cursor file) in
      Hashtbl.replace file_cursor file (start + span + 2 (* blank + brace *));
      let fn = { fn_name = name; fn_file = file; fn_start = start; fn_span = span } in
      Hashtbl.replace registry name fn;
      fn

let find name = Hashtbl.find registry name

type coverage = {
  entered : (string, unit) Hashtbl.t;
  lines : (string * int, unit) Hashtbl.t;
}

let coverage () = { entered = Hashtbl.create 256; lines = Hashtbl.create 1024 }

(* Entering a function executes its straight-line prologue; GCOV would see
   most of the body run on the common path, so mark the leading 3/4 of the
   span. Branchy tails are only marked when an instrumented operation's
   line cursor lands on them. *)
let mark_enter cov fn =
  Hashtbl.replace cov.entered fn.fn_name ();
  let prefix = max 1 (fn.fn_span * 3 / 4) in
  for line = fn.fn_start to fn.fn_start + prefix - 1 do
    Hashtbl.replace cov.lines (fn.fn_file, line) ()
  done

let mark_line cov fn line =
  let line = fn.fn_start + ((line - fn.fn_start) mod fn.fn_span) in
  Hashtbl.replace cov.lines (fn.fn_file, line) ()

type dir_report = {
  dir : string;
  lines_total : int;
  lines_covered : int;
  functions_total : int;
  functions_covered : int;
}

let dir_of_file file =
  match String.rindex_opt file '/' with
  | None -> "."
  | Some i -> String.sub file 0 i

let report cov ~dirs =
  let per_dir = Hashtbl.create 8 in
  List.iter
    (fun dir -> Hashtbl.replace per_dir dir (ref 0, ref 0, ref 0, ref 0))
    dirs;
  Hashtbl.iter
    (fun _name fn ->
      match Hashtbl.find_opt per_dir (dir_of_file fn.fn_file) with
      | None -> ()
      | Some (lt, lc, ft, fc) ->
          lt := !lt + fn.fn_span;
          incr ft;
          if Hashtbl.mem cov.entered fn.fn_name then incr fc;
          for line = fn.fn_start to fn.fn_start + fn.fn_span - 1 do
            if Hashtbl.mem cov.lines (fn.fn_file, line) then incr lc
          done)
    registry;
  List.map
    (fun dir ->
      let lt, lc, ft, fc = Hashtbl.find per_dir dir in
      {
        dir;
        lines_total = !lt;
        lines_covered = !lc;
        functions_total = !ft;
        functions_covered = !fc;
      })
    dirs
