(** Super-block management and the writeback entry points (fs/super.c,
    fs/fs-writeback.c).

    [sb_lock] (global) protects the super-block list and [s_count];
    [s_umount] is held for writing across mount/umount and for reading
    during sync — which is how [i_data.writeback_index] ends up protected
    by an embedded-other [s_umount] rule (paper Fig. 8). *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

(* The magic used to come from [Hashtbl.hash fs.fs_name], but that hash
   is not specified to be stable across OCaml releases or flambda — a
   "deterministic" trace could differ between toolchains. FNV-1a is
   pinned by golden tests in test_util.ml. *)
let s_magic_of_name name = Lockdoc_util.Fnv.fnv1a32 name land 0xffff

let super_blocks : sb list ref = ref []

let () = Kernel.add_boot_hook (fun () -> super_blocks := [])

let register_sb sb =
  fn "fs/super.c" 14 "sb_list_add" @@ fun () ->
  Lock.spin_lock Globals.sb_lock;
  Memory.write sb.sb_inst "s_list" 1;
  Memory.modify sb.sb_inst "s_count" (fun c -> c + 1);
  super_blocks := sb :: !super_blocks;
  Lock.spin_unlock Globals.sb_lock

let unregister_sb sb =
  fn "fs/super.c" 14 "sb_list_del" @@ fun () ->
  Lock.spin_lock Globals.sb_lock;
  Memory.write sb.sb_inst "s_list" 0;
  Memory.modify sb.sb_inst "s_count" (fun c -> max 0 (c - 1));
  super_blocks := List.filter (fun s -> s != sb) !super_blocks;
  Lock.spin_unlock Globals.sb_lock

let mount fs =
  fn "fs/super.c" 36 "mount_fs" @@ fun () ->
  let sb = alloc_sb fs in
  Lock.down_write sb.s_umount;
  Memory.modify sb.sb_inst "s_flags" (fun f -> f lor 0x1 (* SB_ACTIVE *));
  Memory.write sb.sb_inst "s_magic" (s_magic_of_name fs.fs_name);
  Memory.write sb.sb_inst "s_blocksize" 4096;
  Memory.write sb.sb_inst "s_blocksize_bits" 12;
  Memory.write sb.sb_inst "s_maxbytes" max_int;
  Memory.atomic_set sb.sb_inst "s_active" 1;
  register_sb sb;
  Lock.up_write sb.s_umount;
  sb

let sget fs_name =
  fn "fs/super.c" 22 "sget" @@ fun () ->
  Lock.spin_lock Globals.sb_lock;
  let found =
    List.find_opt
      (fun sb ->
        ignore (Memory.read sb.sb_inst "s_list");
        ignore (Memory.read sb.sb_inst "s_count");
        sb.fs.fs_name = fs_name)
      !super_blocks
  in
  Lock.spin_unlock Globals.sb_lock;
  found

(* Writeback of one inode: the caller holds s_umount for reading. *)
let writeback_single_inode inode =
  fn "fs/fs-writeback.c" 30 "__writeback_single_inode" @@ fun () ->
  Lock.spin_lock inode.i_lock;
  let state = Memory.read inode.i_inst "i_state" in
  Memory.write inode.i_inst "i_state" (state lor 0x8 (* I_SYNC *));
  Lock.spin_unlock inode.i_lock;
  (* Page writeback: the mapping's writeback_index is updated with
     s_umount held (read) — the EO(s_umount) rule of Fig. 8. *)
  Memory.modify inode.i_inst "i_data.writeback_index" (fun v -> v + 1);
  ignore (Memory.read inode.i_inst "i_data.nrpages");
  Vfs_inode.clear_inode_dirty inode;
  Lock.spin_lock inode.i_lock;
  Memory.modify inode.i_inst "i_state" (fun s -> s land lnot 0x8);
  Lock.spin_unlock inode.i_lock

let sync_filesystem sb =
  fn "fs/fs-writeback.c" 26 "sync_filesystem" @@ fun () ->
  Lock.down_read sb.s_umount;
  ignore (Memory.read sb.sb_inst "s_flags");
  let bdi = sb.s_bdi in
  Lock.spin_lock bdi.wb_list_lock;
  (* Pin under the list lock; skip inodes being torn down (see
     Bdi.wb_do_writeback for why this is race-free). *)
  let dirty =
    List.filter
      (fun (i : inode) ->
        ignore (Memory.read i.i_inst "i_io_list");
        ignore (Memory.read i.i_inst "dirtied_when");
        if Memory.read i.i_inst "i_state" land 0x20 = 0 then begin
          Memory.atomic_inc i.i_inst "i_count";
          true
        end
        else false)
      bdi.b_dirty
  in
  bdi.b_dirty <- [];
  Lock.spin_unlock bdi.wb_list_lock;
  List.iter writeback_single_inode dirty;
  Lock.up_read sb.s_umount;
  List.iter Vfs_inode.iput dirty

let evict_inodes sb =
  fn "fs/inode.c" 28 "evict_inodes" @@ fun () ->
  Lock.spin_lock sb.s_inode_list_lock;
  let victims =
    List.filter
      (fun i ->
        ignore (Memory.read i.i_inst "i_sb_list");
        (* Lock-free i_state peek, as in the real walk. *)
        Memory.read i.i_inst "i_state" land 0x20 = 0)
      sb.s_inodes
  in
  Lock.spin_unlock sb.s_inode_list_lock;
  List.iter
    (fun inode ->
      (* Unhashed reference drop: force the refcount to zero, as the
         umount path may legitimately do for still-cached inodes. *)
      Memory.atomic_set inode.i_inst "i_count" 0;
      if Vfs_inode.set_freeing inode then Vfs_inode.evict inode)
    victims

let umount sb =
  fn "fs/super.c" 30 "generic_shutdown_super" @@ fun () ->
  Lock.down_write sb.s_umount;
  Memory.modify sb.sb_inst "s_flags" (fun f -> f land lnot 0x1);
  Memory.write sb.sb_inst "s_readonly_remount" 0;
  evict_inodes sb;
  Vfs_dentry.shrink_dcache_sb sb;
  Lock.up_write sb.s_umount;
  unregister_sb sb;
  (match sb.s_journal with Some j -> free_journal j | None -> ());
  free_sb sb

let remount_ro sb =
  fn "fs/super.c" 20 "do_remount_sb" @@ fun () ->
  Lock.down_write sb.s_umount;
  Memory.write sb.sb_inst "s_readonly_remount" 1;
  Memory.modify sb.sb_inst "s_flags" (fun f -> f lor 0x2 (* SB_RDONLY *));
  Memory.write sb.sb_inst "s_readonly_remount" 0;
  Lock.up_write sb.s_umount

(* Cold declarations (paper Tab. 3 denominators). *)
let () =
  List.iter
    (fun (name, span) -> ignore (Source.declare ~file:"fs/super.c" ~span name))
    [
      ("alloc_super", 40); ("put_super", 10); ("deactivate_locked_super", 16);
      ("deactivate_super", 10); ("grab_super", 14); ("trylock_super", 10);
      ("iterate_supers", 18); ("iterate_supers_type", 16);
      ("get_super", 16); ("get_super_thawed", 12); ("get_active_super", 14);
      ("user_get_super", 16); ("emergency_remount", 8); ("freeze_super", 34);
      ("thaw_super", 24); ("sb_wait_write", 8); ("sb_freeze_unlock", 10);
      ("kill_anon_super", 8); ("kill_litter_super", 8); ("kill_block_super", 12);
      ("mount_bdev", 36); ("mount_nodev", 18); ("mount_single", 20);
    ];
  List.iter
    (fun (name, span) -> ignore (Source.declare ~file:"fs/read_write.c" ~span name))
    [
      ("vfs_read", 22); ("vfs_write", 24); ("rw_verify_area", 16);
      ("do_iter_read", 18); ("do_iter_write", 18); ("vfs_readv", 12);
      ("vfs_writev", 12); ("generic_file_llseek", 14); ("default_llseek", 20);
      ("fixed_size_llseek", 8); ("no_seek_end_llseek", 8);
    ]

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"vfs" in
  let gsb = Sglobal "sb_lock" in
  let umount_l = Smember { ty = "super_block"; var = "sb"; member = "s_umount" } in
  let il = Smember { ty = "inode"; var = "i"; member = "i_lock" } in
  let sbil = Smember { ty = "super_block"; var = "sb"; member = "s_inode_list_lock" } in
  let wbl = Smember { ty = "backing_dev_info"; var = "bdi"; member = "wb.list_lock" } in
  let rs m = read_m "super_block" "sb" m in
  let ws m = write_m "super_block" "sb" m in
  let rws m = modify_m "super_block" "sb" m in
  let ri m = read_m "inode" "i" m in
  let bi = [ ("i", "i") ] in
  let bsb = [ ("sb", "sb") ] in
  reg "sb_list_add"
    (seq [ spin_lock gsb; ws "s_list"; rws "s_count"; spin_unlock gsb ]);
  reg "sb_list_del"
    (seq [ spin_lock gsb; ws "s_list"; rws "s_count"; spin_unlock gsb ]);
  reg ~root:true "mount_fs"
    (seq
       [
         call "sb_alloc_init"; down_write umount_l; rws "s_flags"; ws "s_magic";
         ws "s_blocksize"; ws "s_blocksize_bits"; ws "s_maxbytes";
         call "atomic_set"; call ~binds:bsb "sb_list_add"; up_write umount_l;
       ]);
  reg ~root:true "sget"
    (seq
       [
         spin_lock gsb; star (seq [ rs "s_list"; rs "s_count" ]); spin_unlock gsb;
       ]);
  (* writeback_index is mutated with s_umount held by the caller — the
     EO(s_umount) rule of Fig. 8. *)
  reg "__writeback_single_inode"
    (seq
       [
         spin_lock il; ri "i_state"; write_m "inode" "i" "i_state"; spin_unlock il;
         modify_m "inode" "i" "i_data.writeback_index"; ri "i_data.nrpages";
         call ~binds:bi "inode_clear_dirty";
         spin_lock il; modify_m "inode" "i" "i_state"; spin_unlock il;
       ]);
  reg ~root:true "sync_filesystem"
    (seq
       [
         down_read umount_l; rs "s_flags";
         spin_lock wbl;
         star
           (seq
              [
                ri "i_io_list"; ri "dirtied_when"; ri "i_state";
                opt (call "atomic_inc");
              ]);
         spin_unlock wbl;
         star (call ~binds:bi "__writeback_single_inode");
         up_read umount_l;
         star (call ~binds:bi "iput");
       ]);
  reg "evict_inodes"
    (seq
       [
         spin_lock sbil; star (seq [ ri "i_sb_list"; ri "i_state" ]);
         spin_unlock sbil;
         star
           (seq
              [
                call "atomic_set"; call ~binds:bi "inode_set_freeing";
                opt (call ~binds:bi "evict");
              ]);
       ]);
  reg ~root:true "generic_shutdown_super"
    (seq
       [
         down_write umount_l; rws "s_flags"; ws "s_readonly_remount";
         call ~binds:bsb "evict_inodes"; call ~binds:bsb "shrink_dcache_sb";
         up_write umount_l; call ~binds:bsb "sb_list_del";
         opt (call "jbd2_journal_destroy"); call "destroy_super";
       ]);
  reg "do_remount_sb"
    (with_lock ~lock:(down_write umount_l) ~unlock:(up_write umount_l)
       (seq [ ws "s_readonly_remount"; rws "s_flags"; ws "s_readonly_remount" ]))
