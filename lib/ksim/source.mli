(** Synthetic kernel source map and execution coverage.

    Every simulated kernel function is declared with a file and a line
    span; declaration assigns it a concrete line range within that file.
    During a run the kernel marks entered functions and executed lines,
    from which per-directory line/function coverage is computed exactly
    like GCOV does for the paper's Tab. 3. Functions that are declared
    but never executed count against coverage, so subsystems declare
    their whole surface up front. *)

type fn = {
  fn_name : string;
  fn_file : string;
  fn_start : int;  (** first line of the function *)
  fn_span : int;  (** number of source lines *)
}

val declare : file:string -> span:int -> string -> fn
(** [declare ~file ~span name] registers a function and assigns it the next
    free line range in [file]. Re-declaring the same name with the same
    [file] and [span] returns the original record; a re-declaration that
    disagrees on either raises [Invalid_argument] — silently keeping the
    first record would skew every coverage denominator derived from it. *)

val find : string -> fn
(** Raises [Not_found] for undeclared functions. *)

type coverage
(** Per-run execution record. *)

val coverage : unit -> coverage
val mark_enter : coverage -> fn -> unit
val mark_line : coverage -> fn -> int -> unit
(** [mark_line cov fn line] records execution of an absolute line inside
    [fn]'s range. *)

type dir_report = {
  dir : string;
  lines_total : int;
  lines_covered : int;
  functions_total : int;
  functions_covered : int;
}

val report : coverage -> dirs:string list -> dir_report list
(** Coverage summary for all declared functions whose file lives directly
    in one of [dirs] (e.g. ["fs"] matches ["fs/inode.c"] but not
    ["fs/ext4/inode.c"], as in the paper's Tab. 3). *)
