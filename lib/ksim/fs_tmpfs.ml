(** tmpfs (mm/shmem.c): the in-memory filesystem.

    Keeps the generic write discipline but additionally manages the
    mapping's exceptional entries (swap slots) under the address-space
    tree lock, giving its inode subclass a different mined-rule profile
    than ext4 (paper Tab. 6, inode:tmpfs). *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

(* Seeded ground-truth race (period 0 = off by default): a superblock
   field update without s_umount, racing mount's initialisation. *)
let seed_race_shmem = Fault.site ~period:0 "seed_race_shmem"

let shmem_write inode n =
  fn "mm/shmem.c" 36 "shmem_file_write_iter" @@ fun () ->
  Fs_common.generic_write inode n;
  Lock.spin_lock inode.i_tree_lock;
  Memory.modify inode.i_inst "i_data.nrexceptional" (fun e -> max 0 e);
  Memory.modify inode.i_inst "i_data.flags" (fun f -> f lor 0x1);
  Lock.spin_unlock inode.i_tree_lock;
  if Fault.fire seed_race_shmem then
    Memory.write inode.i_sb.sb_inst "s_blocksize" 4096

let shmem_read inode =
  fn "mm/shmem.c" 26 "shmem_file_read_iter" @@ fun () ->
  Fs_common.generic_read inode;
  ignore (Memory.read inode.i_inst "i_data.gfp_mask")

let shmem_evict inode =
  fn "mm/shmem.c" 22 "shmem_evict_inode" @@ fun () ->
  Lock.spin_lock inode.i_tree_lock;
  Memory.write inode.i_inst "i_data.nrexceptional" 0;
  Memory.write inode.i_inst "i_data.nrpages" 0;
  Lock.spin_unlock inode.i_tree_lock

let shmem_setattr inode ~mode ~uid =
  fn "mm/shmem.c" 20 "shmem_setattr" @@ fun () ->
  ignore mode;
  ignore uid;
  (* Holding i_rwsem via notify_change. *)
  Memory.modify inode.i_inst "i_flags" (fun f -> f);
  ignore (Vfs_inode.i_size_read inode)

let fstype =
  {
    fs_name = "tmpfs";
    fs_file = "mm/shmem.c";
    fs_ops =
      {
        op_new_inode = (fun sb -> Vfs_inode.new_inode sb);
        op_read = shmem_read;
        op_write = shmem_write;
        op_setattr = shmem_setattr;
        op_evict = shmem_evict;
      };
  }

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"tmpfs" in
  let tree = Smember { ty = "inode"; var = "i"; member = "i_data.tree_lock" } in
  let bi = [ ("i", "i") ] in
  reg ~root:true "shmem_file_write_iter"
    (seq
       [
         call ~binds:bi "generic_file_write_iter";
         spin_lock tree; modify_m "inode" "i" "i_data.nrexceptional";
         modify_m "inode" "i" "i_data.flags"; spin_unlock tree;
         (* Seeded ground-truth race: s_blocksize without s_umount. *)
         opt (write_m "super_block" "i.sb" "s_blocksize");
       ]);
  reg ~root:true "shmem_file_read_iter"
    (seq
       [ call ~binds:bi "generic_file_read_iter"; read_m "inode" "i" "i_data.gfp_mask" ]);
  reg "shmem_evict_inode"
    (seq
       [
         spin_lock tree; write_m "inode" "i" "i_data.nrexceptional";
         write_m "inode" "i" "i_data.nrpages"; spin_unlock tree;
       ]);
  reg "shmem_setattr"
    (seq [ modify_m "inode" "i" "i_flags"; call ~binds:bi "i_size_read" ])
