(** The remaining inode subclasses of the evaluation (paper Tab. 6):
    rootfs (ramfs), sysfs, devtmpfs, sockfs, debugfs and anon_inodefs.

    Their profiles differ on purpose: rootfs/devtmpfs behave like a full
    in-memory filesystem, sysfs keeps attribute writes under [i_rwsem],
    sockfs and anon_inodefs are read-mostly, and debugfs is barely
    exercised at all (the paper derives a single write rule for it). *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

let rootfs = Fs_common.simple_fstype ~file:"fs/ramfs/inode.c" "rootfs"

(* {2 sysfs: attribute files} *)

let sysfs_read inode =
  fn "fs/sysfs/file.c" 16 "sysfs_kf_read" @@ fun () ->
  ignore (Memory.read inode.i_inst "i_mode");
  ignore (Memory.read inode.i_inst "i_private");
  ignore (Memory.read inode.i_inst "i_atime")

let sysfs_write inode n =
  fn "fs/sysfs/file.c" 18 "sysfs_kf_write" @@ fun () ->
  Lock.down_write inode.i_rwsem;
  Memory.write inode.i_inst "i_private" n;
  Memory.write inode.i_inst "i_mtime" 1;
  Lock.up_write inode.i_rwsem

let sysfs_setattr inode ~mode ~uid =
  fn "fs/sysfs/dir.c" 12 "sysfs_setattr" @@ fun () ->
  ignore uid;
  Memory.write inode.i_inst "i_private" mode

let sysfs =
  {
    fs_name = "sysfs";
    fs_file = "fs/sysfs/file.c";
    fs_ops =
      {
        op_new_inode = (fun sb -> Vfs_inode.new_inode sb);
        op_read = sysfs_read;
        op_write = sysfs_write;
        op_setattr = sysfs_setattr;
        op_evict = Fs_common.generic_evict;
      };
  }

(* {2 devtmpfs: device nodes} *)

let devtmpfs_new_inode sb =
  fn "drivers/base/devtmpfs.c" 20 "devtmpfs_create_node" @@ fun () ->
  let inode = Vfs_inode.new_inode sb in
  Lock.down_write inode.i_rwsem;
  Memory.write inode.i_inst "i_rdev" (inode.i_inst.Memory.base land 0xfff);
  Memory.write inode.i_inst "i_mode" 0o20600;
  Memory.write inode.i_inst "i_uid" 0;
  Memory.write inode.i_inst "i_gid" 0;
  Lock.up_write inode.i_rwsem;
  inode

let devtmpfs =
  {
    fs_name = "devtmpfs";
    fs_file = "drivers/base/devtmpfs.c";
    fs_ops =
      {
        op_new_inode = devtmpfs_new_inode;
        op_read = Fs_common.generic_read;
        op_write = Fs_common.generic_write;
        op_setattr = Fs_common.simple_setattr;
        op_evict = Fs_common.generic_evict;
      };
  }

(* {2 sockfs: read-mostly pseudo inodes} *)

let sockfs_read inode =
  fn "net/socket.c" 14 "sockfs_peek" @@ fun () ->
  ignore (Memory.read inode.i_inst "i_mode");
  ignore (Memory.read inode.i_inst "i_flags");
  ignore (Memory.read inode.i_inst "i_ino");
  ignore (Memory.read inode.i_inst "i_private")

let sockfs_write inode n =
  fn "net/socket.c" 10 "sockfs_setstate" @@ fun () ->
  Memory.write inode.i_inst "i_private" n

let sockfs =
  {
    fs_name = "sockfs";
    fs_file = "net/socket.c";
    fs_ops =
      {
        op_new_inode = (fun sb -> Vfs_inode.new_inode sb);
        op_read = sockfs_read;
        op_write = sockfs_write;
        op_setattr = Fs_common.simple_setattr;
        op_evict = Fs_common.generic_evict;
      };
  }

(* {2 debugfs: barely exercised (one write rule in the paper)} *)

let debugfs_write inode n =
  fn "fs/debugfs/inode.c" 10 "debugfs_create_mode" @@ fun () ->
  Memory.write inode.i_inst "i_private" n

let debugfs =
  {
    fs_name = "debugfs";
    fs_file = "fs/debugfs/inode.c";
    fs_ops =
      {
        op_new_inode = (fun sb -> Vfs_inode.new_inode sb);
        op_read = (fun _ -> ());
        op_write = debugfs_write;
        op_setattr = Fs_common.simple_setattr;
        op_evict = Fs_common.generic_evict;
      };
  }

(* {2 anon_inodefs: the shared anonymous inode} *)

let anon_read inode =
  fn "fs/anon_inodes.c" 12 "anon_inode_peek" @@ fun () ->
  ignore (Memory.read inode.i_inst "i_mode");
  ignore (Memory.read inode.i_inst "i_flags");
  ignore (Memory.read inode.i_inst "i_fop");
  ignore (Memory.read inode.i_inst "i_state")

let anon_write inode n =
  fn "fs/anon_inodes.c" 8 "anon_inode_mark" @@ fun () ->
  Lock.spin_lock inode.i_lock;
  Memory.write inode.i_inst "i_state" n;
  Lock.spin_unlock inode.i_lock

let anon_inodefs =
  {
    fs_name = "anon_inodefs";
    fs_file = "fs/anon_inodes.c";
    fs_ops =
      {
        op_new_inode = (fun sb -> Vfs_inode.new_inode sb);
        op_read = anon_read;
        op_write = anon_write;
        op_setattr = Fs_common.simple_setattr;
        op_evict = Fs_common.generic_evict;
      };
  }

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"vfs" in
  let irw = Smember { ty = "inode"; var = "i"; member = "i_rwsem" } in
  let il = Smember { ty = "inode"; var = "i"; member = "i_lock" } in
  let r m = read_m "inode" "i" m in
  let w m = write_m "inode" "i" m in
  reg ~root:true "sysfs_kf_read" (seq [ r "i_mode"; r "i_private"; r "i_atime" ]);
  reg ~root:true "sysfs_kf_write"
    (with_lock ~lock:(down_write irw) ~unlock:(up_write irw)
       (seq [ w "i_private"; w "i_mtime" ]));
  reg "sysfs_setattr" (w "i_private");
  reg "devtmpfs_create_node"
    (seq
       [
         call ~binds:[ ("sb", "sb") ] "new_inode";
         down_write irw; w "i_rdev"; w "i_mode"; w "i_uid"; w "i_gid";
         up_write irw;
       ]);
  reg ~root:true "sockfs_peek"
    (seq [ r "i_mode"; r "i_flags"; r "i_ino"; r "i_private" ]);
  reg ~root:true "sockfs_setstate" (w "i_private");
  reg ~root:true "debugfs_create_mode" (w "i_private");
  reg ~root:true "anon_inode_peek"
    (seq [ r "i_mode"; r "i_flags"; r "i_fop"; r "i_state" ]);
  reg ~root:true "anon_inode_mark"
    (with_lock ~lock:(spin_lock il) ~unlock:(spin_unlock il) (w "i_state"))
