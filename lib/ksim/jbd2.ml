(** JBD2 journaling layer (fs/jbd2/journal.c, transaction.c, commit.c,
    checkpoint.c) — the substrate behind the paper's transaction_t,
    journal_t and journal_head results (Tab. 4/6/7).

    Discipline mirrored from Linux 4.10:
    - journal state ([j_running_transaction], [j_committing_transaction],
      sequence numbers, [j_flags]) under the [j_state_lock] rwlock;
    - buffer/checkpoint list linkage ([t_buffers], [t_nr_buffers],
      [b_tnext]/[b_tprev], [b_cpnext]/[b_cpprev]) under [j_list_lock];
    - per-journal_head fields ([b_modified], [b_frozen_data],
      [b_transaction], [b_jlist]) under the owning buffer_head's state
      lock — an EO rule on another data type;
    - a commit-kick softirq reads journal state lock-free, and an ext4
      fsync path peeks [j_committing_transaction] without the state lock
      (the Tab. 8 journal_t violation). *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

(* {2 Handles / running transaction} *)

let get_transaction journal =
  fn "fs/jbd2/transaction.c" 20 "jbd2_get_transaction" @@ fun () ->
  let txn = alloc_txn journal in
  Lock.write_lock journal.j_state_lock;
  Memory.write journal.j_inst "j_running_transaction" txn.t_inst.Memory.base;
  Memory.modify journal.j_inst "j_transaction_sequence" (fun s -> s + 1);
  Memory.write txn.t_inst "t_state" 1 (* T_RUNNING *);
  Memory.write txn.t_inst "t_start" 1;
  journal.j_running <- Some txn;
  Lock.write_unlock journal.j_state_lock;
  txn

let journal_start journal =
  fn "fs/jbd2/transaction.c" 34 "jbd2_journal_start" @@ fun () ->
  Lock.read_lock journal.j_state_lock;
  ignore (Memory.read journal.j_inst "j_flags");
  ignore (Memory.read journal.j_inst "j_running_transaction");
  ignore (Memory.read journal.j_inst "j_free");
  Lock.read_unlock journal.j_state_lock;
  (* Reserve a handle slot. The shadow check-and-increment is pure OCaml —
     no preemption point — so commit (which waits for the shadow count to
     drain) can never free a transaction we just joined. *)
  let rec reserve () =
    match journal.j_running with
    | Some t when not t.t_locked ->
        t.t_updates_shadow <- t.t_updates_shadow + 1;
        t
    | Some _ | None ->
        let t = get_transaction journal in
        if t.t_locked then reserve ()
        else begin
          t.t_updates_shadow <- t.t_updates_shadow + 1;
          t
        end
  in
  let txn = reserve () in
  Memory.atomic_inc txn.t_inst "t_updates";
  Memory.atomic_inc txn.t_inst "t_handle_count";
  (* Handle bookkeeping under t_handle_lock. *)
  Lock.spin_lock txn.t_handle_lock;
  ignore (Memory.read txn.t_inst "t_state");
  ignore (Memory.read txn.t_inst "t_tid");
  (* Set the expiry once; later handles only read it. *)
  if Memory.read txn.t_inst "t_expires" = 0 then
    Memory.write txn.t_inst "t_expires" 100;
  (* Deviation: t_start_time is kept under the handle lock although the
     documentation prescribes the journal state lock. *)
  Memory.write txn.t_inst "t_start_time" 1;
  Lock.spin_unlock txn.t_handle_lock;
  (* Deviation: the request counter is bumped lock-free. *)
  Memory.modify txn.t_inst "t_requested" (fun r -> r + 1);
  txn

let journal_stop txn =
  fn "fs/jbd2/transaction.c" 26 "jbd2_journal_stop" @@ fun () ->
  Lock.spin_lock txn.t_handle_lock;
  Memory.modify txn.t_inst "t_max_wait" (fun w -> max w 1);
  Lock.spin_unlock txn.t_handle_lock;
  ignore (Memory.atomic_dec_and_test txn.t_inst "t_updates");
  txn.t_updates_shadow <- txn.t_updates_shadow - 1

(* {2 Buffer access within a transaction} *)

let journal_get_write_access txn bh =
  fn "fs/jbd2/transaction.c" 44 "jbd2_journal_get_write_access" @@ fun () ->
  let jh =
    match bh.bh_jh with Some jh -> jh | None -> alloc_jh bh (Some txn)
  in
  (* journal_head fields under the BH state lock. *)
  Lock.spin_lock bh.b_state_lock;
  ignore (Memory.read jh.jh_inst "b_transaction");
  ignore (Memory.read jh.jh_inst "b_modified");
  ignore (Memory.read jh.jh_inst "b_committed_data");
  Memory.write jh.jh_inst "b_transaction" txn.t_inst.Memory.base;
  Memory.write jh.jh_inst "b_frozen_data" 0;
  Memory.write bh.bh_inst "b_private" jh.jh_inst.Memory.base;
  jh.jh_txn <- Some txn;
  Lock.spin_unlock bh.b_state_lock;
  (* File the buffer on the transaction's metadata list. *)
  Lock.spin_lock txn.t_journal.j_list_lock;
  Memory.write jh.jh_inst "b_tnext" txn.t_inst.Memory.base;
  Memory.write jh.jh_inst "b_tprev" txn.t_inst.Memory.base;
  Memory.write jh.jh_inst "b_jlist" 1 (* BJ_Metadata *);
  Memory.modify txn.t_inst "t_nr_buffers" (fun n -> n + 1);
  Memory.write txn.t_inst "t_buffers" jh.jh_inst.Memory.base;
  if not (List.memq jh txn.t_jh_list) then txn.t_jh_list <- jh :: txn.t_jh_list;
  Lock.spin_unlock txn.t_journal.j_list_lock;
  jh

let journal_dirty_metadata txn jh =
  fn "fs/jbd2/transaction.c" 36 "jbd2_journal_dirty_metadata" @@ fun () ->
  (* b_bh is stable after set-up; read it lock-free (documented nolock). *)
  ignore (Memory.read jh.jh_inst "b_bh");
  Lock.spin_lock jh.jh_bh.b_state_lock;
  ignore (Memory.read jh.jh_inst "b_transaction");
  Memory.write jh.jh_inst "b_modified" 1;
  ignore (Memory.read jh.jh_inst "b_next_transaction");
  Lock.spin_unlock jh.jh_bh.b_state_lock;
  Lock.spin_lock txn.t_journal.j_list_lock;
  ignore (Memory.read jh.jh_inst "b_jlist");
  Lock.spin_unlock txn.t_journal.j_list_lock;
  Buffer.mark_buffer_dirty jh.jh_bh

let journal_forget txn jh =
  fn "fs/jbd2/transaction.c" 30 "jbd2_journal_forget" @@ fun () ->
  ignore (Memory.read jh.jh_inst "b_modified");
  Lock.spin_lock jh.jh_bh.b_state_lock;
  Memory.write jh.jh_inst "b_modified" 0;
  Memory.write jh.jh_inst "b_transaction" 0;
  jh.jh_txn <- None;
  Lock.spin_unlock jh.jh_bh.b_state_lock;
  Lock.spin_lock txn.t_journal.j_list_lock;
  Memory.write jh.jh_inst "b_jlist" 0;
  Memory.modify txn.t_inst "t_nr_buffers" (fun n -> max 0 (n - 1));
  txn.t_jh_list <- List.filter (fun j -> j != jh) txn.t_jh_list;
  Lock.spin_unlock txn.t_journal.j_list_lock;
  (* The private pointer is cleared after both locks are gone. *)
  Memory.write jh.jh_bh.bh_inst "b_private" 0

(* {2 Commit} *)

let commit_transaction journal =
  fn "fs/jbd2/commit.c" 80 "jbd2_journal_commit_transaction" @@ fun () ->
  match journal.j_running with
  | None -> ()
  | Some txn ->
      (* Close the transaction to new handles and drain the open ones,
         as jbd2_journal_commit_transaction does. *)
      txn.t_locked <- true;
      Kernel.wait_until "transaction updates drain" (fun () ->
          txn.t_updates_shadow = 0);
      (* The transaction's journal back-pointer is stable: lock-free. *)
      ignore (Memory.read txn.t_inst "t_journal");
      Lock.write_lock journal.j_state_lock;
      Memory.write txn.t_inst "t_state" 2 (* T_LOCKED *);
      Memory.write txn.t_inst "t_need_data_flush" 1;
      Memory.write journal.j_inst "j_committing_transaction"
        txn.t_inst.Memory.base;
      Memory.write journal.j_inst "j_running_transaction" 0;
      Memory.modify journal.j_inst "j_flags" (fun f -> f lor 0x2);
      Memory.modify journal.j_inst "j_commit_sequence" (fun s -> s + 1);
      Memory.write journal.j_inst "j_head" 1;
      journal.j_committing <- Some txn;
      journal.j_running <- None;
      Lock.write_unlock journal.j_state_lock;
      (* Write out the metadata buffers. *)
      Lock.spin_lock journal.j_list_lock;
      let jhs = txn.t_jh_list in
      ignore (Memory.read txn.t_inst "t_nr_buffers");
      ignore (Memory.read txn.t_inst "t_buffers");
      List.iter
        (fun jh ->
          ignore (Memory.read jh.jh_inst "b_tnext");
          ignore (Memory.read jh.jh_inst "b_tprev");
          (* frozen data is inspected under the list lock, not the BH
             state lock the documentation prescribes. *)
          ignore (Memory.read jh.jh_inst "b_frozen_data");
          ignore (Memory.read jh.jh_inst "b_frozen_triggers"))
        jhs;
      Lock.spin_unlock journal.j_list_lock;
      List.iter
        (fun jh ->
          Buffer.submit_bh jh.jh_bh;
          Buffer.mark_buffer_clean jh.jh_bh;
          (* Post-write-out tail maintenance, lock-free. *)
          Memory.write jh.jh_inst "b_frozen_data" 0;
          Memory.write jh.jh_inst "b_tprev" 0;
          ignore (Memory.read jh.jh_inst "b_cpnext"))
        jhs;
      (* Move to the checkpoint list. *)
      Lock.spin_lock journal.j_list_lock;
      List.iter
        (fun jh ->
          Memory.write jh.jh_inst "b_cp_transaction" txn.t_inst.Memory.base;
          Memory.write jh.jh_inst "b_cpnext" txn.t_inst.Memory.base;
          Memory.write jh.jh_inst "b_cpprev" txn.t_inst.Memory.base)
        jhs;
      Memory.write txn.t_inst "t_checkpoint_list"
        (match jhs with jh :: _ -> jh.jh_inst.Memory.base | [] -> 0);
      Memory.write txn.t_inst "t_cpnext" 0;
      Memory.write txn.t_inst "t_cpprev" 0;
      Lock.spin_unlock journal.j_list_lock;
      Lock.write_lock journal.j_state_lock;
      Memory.write txn.t_inst "t_state" 5 (* T_FINISHED *);
      Memory.write journal.j_inst "j_committing_transaction" 0;
      Memory.modify journal.j_inst "j_commit_request" (fun s -> s + 1);
      journal.j_committing <- None;
      journal.j_checkpoint <- txn :: journal.j_checkpoint;
      Lock.write_unlock journal.j_state_lock;
      (* Commit-time statistics, under their own locks. *)
      Lock.spin_lock journal.j_history_lock;
      Memory.modify journal.j_inst "j_average_commit_time" (fun t -> (t + 2) / 2);
      Lock.spin_unlock journal.j_history_lock;
      Lock.spin_lock journal.j_stats_lock;
      Memory.modify journal.j_inst "j_overall_stats" (fun s -> s + 1);
      Memory.write journal.j_inst "j_running_stats" 0;
      Lock.spin_unlock journal.j_stats_lock

let checkpoint journal =
  fn "fs/jbd2/checkpoint.c" 40 "jbd2_log_do_checkpoint" @@ fun () ->
  Lock.mutex_lock journal.j_checkpoint_mutex;
  Lock.read_lock journal.j_state_lock;
  ignore (Memory.read journal.j_inst "j_committing_transaction");
  Lock.read_unlock journal.j_state_lock;
  Lock.spin_lock journal.j_list_lock;
  let done_txns = journal.j_checkpoint in
  (* A journal head that was re-joined to a newer transaction stays alive;
     it will be torn down when that transaction checkpoints. *)
  let owned txn jh =
    match jh.jh_txn with Some t -> t == txn | None -> true
  in
  List.iter
    (fun txn ->
      ignore (Memory.read txn.t_inst "t_checkpoint_list");
      ignore (Memory.read txn.t_inst "t_tid");
      (* Scan pass: pure reads for journal heads that moved on to a newer
         transaction; clean-up writes only for the owned ones. *)
      List.iter
        (fun jh ->
          ignore (Memory.read jh.jh_inst "b_cpnext");
          ignore (Memory.read jh.jh_inst "b_cp_transaction");
          if owned txn jh then begin
            Memory.write jh.jh_inst "b_cpnext" 0;
            Memory.write jh.jh_inst "b_cpprev" 0;
            Memory.write jh.jh_inst "b_cp_transaction" 0
          end)
        txn.t_jh_list)
    done_txns;
  journal.j_checkpoint <- [];
  Lock.spin_unlock journal.j_list_lock;
  (* Tear down outside the list lock. *)
  List.iter
    (fun txn ->
      List.iter
        (fun jh ->
          if owned txn jh then begin
            let bh = jh.jh_bh in
            free_jh jh;
            Buffer.brelse bh
          end)
        txn.t_jh_list;
      txn.t_jh_list <- [];
      free_txn txn)
    done_txns;
  Lock.write_lock journal.j_state_lock;
  Memory.modify journal.j_inst "j_tail_sequence" (fun s -> s + 1);
  Memory.write journal.j_inst "j_tail" 0;
  Memory.write journal.j_inst "j_free" 1024;
  Lock.write_unlock journal.j_state_lock;
  Lock.mutex_unlock journal.j_checkpoint_mutex

(* The commit-kick path run from softirq context: lock-free peek at the
   journal state (contributes the lock-free j_flags/j_commit_request
   reads). *)
let commit_timer_kick journal =
  fn "fs/jbd2/journal.c" 14 "kjournald2_kick" @@ fun () ->
  ignore (Memory.read journal.j_inst "j_flags");
  ignore (Memory.read journal.j_inst "j_commit_sequence");
  ignore (Memory.read journal.j_inst "j_running_transaction");
  ignore (Memory.read journal.j_inst "j_commit_request")

(* ext4 fsync peeks at the committing transaction holding only the file's
   i_rwsem — the journal_t rule violation of paper Tab. 8. *)
let peek_committing_nolock journal =
  fn "fs/jbd2/journal.c" 10 "jbd2_peek_committing" @@ fun () ->
  ignore (Memory.read journal.j_inst "j_committing_transaction")

let wait_commit journal =
  fn "fs/jbd2/journal.c" 18 "jbd2_log_wait_commit" @@ fun () ->
  Lock.read_lock journal.j_state_lock;
  ignore (Memory.read journal.j_inst "j_commit_sequence");
  ignore (Memory.read journal.j_inst "j_commit_request");
  ignore (Memory.read journal.j_inst "j_transaction_sequence");
  ignore (Memory.read journal.j_inst "j_committing_transaction");
  ignore (Memory.read journal.j_inst "j_head");
  Lock.read_unlock journal.j_state_lock;
  ignore (Memory.read journal.j_inst "j_head");
  (* Peek at the committing transaction's state without its handle lock. *)
  match journal.j_committing with
  | Some txn ->
      ignore (Memory.read txn.t_inst "t_state");
      ignore (Memory.read txn.t_inst "t_checkpoint_list")
  | None -> ()

(* Revocation records, under j_revoke_lock. *)
let journal_revoke journal blocknr =
  fn "fs/jbd2/revoke.c" 24 "jbd2_journal_revoke" @@ fun () ->
  Lock.spin_lock journal.j_revoke_lock;
  ignore (Memory.read journal.j_inst "j_revoke");
  Memory.write journal.j_inst "j_revoke" blocknr;
  Memory.modify journal.j_inst "j_revoke_table" (fun t -> t + 1);
  Lock.spin_unlock journal.j_revoke_lock

(* Cold declarations (paper Tab. 3 denominators, fs/jbd2). *)
let () =
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"fs/jbd2/journal.c" ~span name))
    [
      ("jbd2_journal_extend", 30); ("jbd2_journal_lock_updates", 22);
      ("jbd2_journal_flush", 30); ("jbd2_journal_abort", 16);
      ("jbd2_journal_errno", 10); ("jbd2_journal_update_sb_log_tail", 18);
      ("jbd2_journal_get_descriptor_buffer", 16);
    ];
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"fs/jbd2/transaction.c" ~span name))
    [
      ("jbd2_journal_get_undo_access", 28); ("start_this_handle", 50);
      ("add_transaction_credits", 36); ("jbd2_journal_invalidatepage", 30);
      ("journal_unmap_buffer", 44); ("jbd2_journal_refile_buffer", 20);
      ("jbd2_journal_try_to_free_buffers", 24);
    ];
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"fs/jbd2/commit.c" ~span name))
    [
      ("journal_submit_data_buffers", 26);
      ("journal_submit_commit_record", 22);
    ];
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"fs/jbd2/checkpoint.c" ~span name))
    [
      ("jbd2_cleanup_journal_tail", 18);
      ("__jbd2_journal_remove_checkpoint", 24);
    ]

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"jbd2" in
  let state = Smember { ty = "journal_t"; var = "j"; member = "j_state_lock" } in
  let jlist = Smember { ty = "journal_t"; var = "j"; member = "j_list_lock" } in
  let handle = Smember { ty = "transaction_t"; var = "t"; member = "t_handle_lock" } in
  let bstate = Smember { ty = "buffer_head"; var = "bh"; member = "b_state_lock" } in
  let rj m = read_m "journal_t" "j" m in
  let wj m = write_m "journal_t" "j" m in
  let rwj m = modify_m "journal_t" "j" m in
  let rt m = read_m "transaction_t" "t" m in
  let wt m = write_m "transaction_t" "t" m in
  let rwt m = modify_m "transaction_t" "t" m in
  let rh m = read_m "journal_head" "jh" m in
  let wh m = write_m "journal_head" "jh" m in
  let bb = [ ("bh", "bh") ] in
  reg "jbd2_get_transaction"
    (seq
       [
         call "jbd2_transaction_init";
         write_lock state; wj "j_running_transaction";
         rwj "j_transaction_sequence"; wt "t_state"; wt "t_start";
         release state;
       ]);
  reg "jbd2_journal_start"
    (seq
       [
         read_lock state; rj "j_flags"; rj "j_running_transaction"; rj "j_free";
         release state;
         opt (call ~binds:[ ("j", "j") ] "jbd2_get_transaction");
         call "atomic_inc"; call "atomic_inc";
         spin_lock handle; rt "t_state"; rt "t_tid"; rt "t_expires";
         opt (wt "t_expires"); wt "t_start_time"; spin_unlock handle;
         (* Deviation: the request counter is bumped lock-free. *)
         rwt "t_requested";
       ]);
  reg "jbd2_journal_stop"
    (seq
       [
         spin_lock handle; rwt "t_max_wait"; spin_unlock handle;
         call "atomic_dec_and_test";
       ]);
  reg "jbd2_journal_get_write_access"
    (seq
       [
         opt (call "journal_head_init");
         spin_lock bstate; rh "b_transaction"; rh "b_modified";
         rh "b_committed_data"; wh "b_transaction"; wh "b_frozen_data";
         write_m "buffer_head" "bh" "b_private"; spin_unlock bstate;
         spin_lock jlist; wh "b_tnext"; wh "b_tprev"; wh "b_jlist";
         rwt "t_nr_buffers"; wt "t_buffers"; spin_unlock jlist;
       ]);
  reg "jbd2_journal_dirty_metadata"
    (seq
       [
         rh "b_bh";
         spin_lock bstate; rh "b_transaction"; wh "b_modified";
         rh "b_next_transaction"; spin_unlock bstate;
         spin_lock jlist; rh "b_jlist"; spin_unlock jlist;
         call ~binds:bb "mark_buffer_dirty";
       ]);
  reg "jbd2_journal_forget"
    (seq
       [
         rh "b_modified";
         spin_lock bstate; wh "b_modified"; wh "b_transaction"; spin_unlock bstate;
         spin_lock jlist; wh "b_jlist"; rwt "t_nr_buffers"; spin_unlock jlist;
         (* The private pointer is cleared after both locks are gone. *)
         write_m "buffer_head" "bh" "b_private";
       ]);
  reg ~root:true "jbd2_journal_commit_transaction"
    (opt
       (seq
          [
            Blocks; rt "t_journal";
            write_lock state; wt "t_state"; wt "t_need_data_flush";
            wj "j_committing_transaction"; wj "j_running_transaction";
            rwj "j_flags"; rwj "j_commit_sequence"; wj "j_head"; release state;
            spin_lock jlist; rt "t_nr_buffers"; rt "t_buffers";
            star (seq [ rh "b_tnext"; rh "b_tprev"; rh "b_frozen_data"; rh "b_frozen_triggers" ]);
            spin_unlock jlist;
            star
              (seq
                 [
                   call ~binds:bb "submit_bh"; call ~binds:bb "clear_buffer_dirty";
                   (* Post-write-out tail maintenance, lock-free. *)
                   wh "b_frozen_data"; wh "b_tprev"; rh "b_cpnext";
                 ]);
            spin_lock jlist;
            star (seq [ wh "b_cp_transaction"; wh "b_cpnext"; wh "b_cpprev" ]);
            wt "t_checkpoint_list"; wt "t_cpnext"; wt "t_cpprev"; spin_unlock jlist;
            write_lock state; wt "t_state"; wj "j_committing_transaction";
            rwj "j_commit_request"; release state;
            spin_lock (Smember { ty = "journal_t"; var = "j"; member = "j_history_lock" });
            rwj "j_average_commit_time";
            spin_unlock (Smember { ty = "journal_t"; var = "j"; member = "j_history_lock" });
            spin_lock (Smember { ty = "journal_t"; var = "j"; member = "j_stats_lock" });
            rwj "j_overall_stats"; wj "j_running_stats";
            spin_unlock (Smember { ty = "journal_t"; var = "j"; member = "j_stats_lock" });
          ]));
  reg ~root:true "jbd2_log_do_checkpoint"
    (seq
       [
         mutex_lock (Smember { ty = "journal_t"; var = "j"; member = "j_checkpoint_mutex" });
         read_lock state; rj "j_committing_transaction"; release state;
         spin_lock jlist;
         star
           (seq
              [
                rt "t_checkpoint_list"; rt "t_tid";
                star
                  (seq
                     [
                       rh "b_cpnext"; rh "b_cp_transaction";
                       opt (seq [ wh "b_cpnext"; wh "b_cpprev"; wh "b_cp_transaction" ]);
                     ]);
              ]);
         spin_unlock jlist;
         star
           (seq
              [
                star (seq [ call "journal_head_free"; call ~binds:bb "__brelse" ]);
                call "jbd2_transaction_free";
              ]);
         write_lock state; rwj "j_tail_sequence"; wj "j_tail"; wj "j_free";
         release state;
         mutex_unlock (Smember { ty = "journal_t"; var = "j"; member = "j_checkpoint_mutex" });
       ]);
  reg ~root:true ~irq:true "kjournald2_kick"
    (seq [ rj "j_flags"; rj "j_commit_sequence"; rj "j_running_transaction"; rj "j_commit_request" ]);
  (* The Tab. 8 journal_t violation: j_committing_transaction peeked
     without j_state_lock. *)
  reg "jbd2_peek_committing" (rj "j_committing_transaction");
  reg "jbd2_log_wait_commit"
    (seq
       [
         read_lock state; rj "j_commit_sequence"; rj "j_commit_request";
         rj "j_transaction_sequence"; rj "j_committing_transaction"; rj "j_head";
         release state;
         rj "j_head";
         opt (seq [ rt "t_state"; rt "t_checkpoint_list" ]);
       ]);
  reg "jbd2_journal_revoke"
    (seq
       [
         spin_lock (Smember { ty = "journal_t"; var = "j"; member = "j_revoke_lock" });
         rj "j_revoke"; wj "j_revoke"; rwj "j_revoke_table";
         spin_unlock (Smember { ty = "journal_t"; var = "j"; member = "j_revoke_lock" });
       ])
