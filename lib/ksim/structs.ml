module Layout = Lockdoc_trace.Layout

let d = Layout.Data
let l = Layout.Lock
let a = Layout.Atomic

(* Sizes loosely follow x86-64: pointers/longs 8, ints 4, shorts 2,
   timestamps 16, list heads 16, embedded locks by kind. *)

let inode =
  Layout.make ~name:"inode"
    [
      ("i_mode", 4, d);
      ("i_opflags", 2, d);
      ("i_uid", 4, d);
      ("i_gid", 4, d);
      ("i_flags", 4, d);
      ("i_acl", 8, d);
      ("i_default_acl", 8, d);
      ("i_op", 8, d);
      ("i_sb", 8, d);
      ("i_mapping", 8, d);
      ("i_security", 8, d);
      ("i_ino", 8, d);
      ("i_nlink", 4, d);
      ("i_rdev", 4, d);
      ("i_size", 8, d);
      ("i_atime", 16, d);
      ("i_mtime", 16, d);
      ("i_ctime", 16, d);
      ("i_lock", 4, l);
      ("i_bytes", 2, d);
      ("i_blkbits", 1, d);
      ("i_write_hint", 1, d);
      ("i_blocks", 8, d);
      ("i_state", 8, d);
      ("i_rwsem", 40, l);
      ("i_size_seqcount", 4, l);
      ("dirtied_when", 8, d);
      ("dirtied_time_when", 8, d);
      ("i_hash", 16, d);
      ("i_io_list", 16, d);
      ("i_wb", 8, d);
      ("i_wb_frn_winner", 2, d);
      ("i_wb_frn_avg_time", 2, d);
      ("i_wb_frn_history", 4, d);
      ("i_lru", 16, d);
      ("i_sb_list", 16, d);
      ("i_wb_list", 16, d);
      ("i_dentry", 8, d);
      ("i_version", 8, d);
      ("i_count", 4, a);
      ("i_dio_count", 4, a);
      ("i_writecount", 4, a);
      ("i_readcount", 4, a);
      ("i_fop", 8, d);
      ("i_flctx", 8, d);
      (* struct address_space i_data, unrolled *)
      ("i_data.host", 8, d);
      ("i_data.tree_lock", 4, l);
      ("i_data.a_ops", 8, d);
      ("i_data.nrpages", 8, d);
      ("i_data.nrexceptional", 8, d);
      ("i_data.writeback_index", 8, d);
      ("i_data.gfp_mask", 4, d);
      ("i_data.flags", 4, d);
      ("i_data.private_data", 8, d);
      (* union { i_pipe; i_bdev; i_cdev; i_link }, unrolled *)
      ("i_pipe", 8, d);
      ("i_bdev", 8, d);
      ("i_cdev", 8, d);
      ("i_link", 8, d);
      ("i_dir_seq", 8, d);
      ("i_generation", 4, d);
      ("i_fsnotify_mask", 4, d);
      ("i_fsnotify_marks", 8, d);
      ("i_private", 8, d);
      ("i_devices", 16, d);
    ]

let dentry =
  Layout.make ~name:"dentry"
    [
      ("d_flags", 4, d);
      ("d_seq", 4, l);
      ("d_hash", 16, d);
      ("d_parent", 8, d);
      ("d_name", 8, d);
      ("d_inode", 8, d);
      ("d_iname", 40, d);
      ("d_count", 4, d);
      ("d_lock", 4, l);
      ("d_op", 8, d);
      ("d_sb", 8, d);
      ("d_time", 8, d);
      ("d_fsdata", 8, d);
      ("d_lru", 16, d);
      ("d_child", 16, d);
      ("d_subdirs", 16, d);
      ("d_alias", 16, d);
      ("d_rcu", 16, d);
      ("d_wait", 8, d);
      ("d_flags2", 4, d);
      ("d_unused_pad", 4, d);
    ]

let super_block =
  Layout.make ~name:"super_block"
    [
      ("s_list", 16, d);
      ("s_dev", 4, d);
      ("s_blocksize_bits", 1, d);
      ("s_blocksize", 8, d);
      ("s_maxbytes", 8, d);
      ("s_type", 8, d);
      ("s_op", 8, d);
      ("dq_op", 8, d);
      ("s_qcop", 8, d);
      ("s_export_op", 8, d);
      ("s_flags", 8, d);
      ("s_iflags", 8, d);
      ("s_magic", 8, d);
      ("s_root", 8, d);
      ("s_umount", 40, l);
      ("s_count", 4, d);
      ("s_active", 4, a);
      ("s_security", 8, d);
      ("s_xattr", 8, d);
      ("s_fs_info", 8, d);
      ("s_max_links", 4, d);
      ("s_mode", 4, d);
      ("s_time_gran", 4, d);
      ("s_vfs_rename_mutex", 32, l);
      ("s_subtype", 8, d);
      ("s_id", 32, d);
      ("s_uuid", 16, d);
      ("s_mounts", 16, d);
      ("s_bdev", 8, d);
      ("s_bdi", 8, d);
      ("s_instances", 16, d);
      ("s_quota_types", 4, d);
      ("s_dquot", 8, d);
      ("s_writers", 8, d);
      ("s_d_op", 8, d);
      ("s_dio_done_wq", 8, d);
      ("s_pins", 16, d);
      ("s_shrink", 8, d);
      ("s_remove_count", 4, a);
      ("s_readonly_remount", 4, d);
      ("s_inode_list_lock", 4, l);
      ("s_inodes", 16, d);
      ("s_inode_lru_lock", 4, l);
      ("s_inode_lru", 16, d);
      ("s_dentry_lru_lock", 4, l);
      ("s_dentry_lru", 16, d);
      ("s_mount_lock", 4, l);
      ("s_stack_depth", 4, d);
      ("s_wb_err", 4, d);
      ("s_fsnotify_mask", 4, d);
      ("s_iflags2", 4, d);
      ("s_dirt", 4, d);
      ("s_need_sync", 4, d);
      ("s_frozen", 4, d);
      ("s_qf_names", 8, d);
      ("s_jquota_fmt", 4, d);
    ]

let journal =
  Layout.make ~name:"journal_t"
    [
      ("j_flags", 8, d);
      ("j_errno", 4, d);
      ("j_sb_buffer", 8, d);
      ("j_superblock", 8, d);
      ("j_format_version", 4, d);
      ("j_state_lock", 4, l);
      ("j_barrier_count", 4, a);
      ("j_barrier", 32, l);
      ("j_running_transaction", 8, d);
      ("j_committing_transaction", 8, d);
      ("j_checkpoint_transactions", 8, d);
      ("j_wait_transaction_locked", 8, d);
      ("j_wait_done_commit", 8, d);
      ("j_wait_commit", 8, d);
      ("j_wait_updates", 8, d);
      ("j_wait_reserved", 8, d);
      ("j_checkpoint_mutex", 32, l);
      ("j_head", 8, d);
      ("j_tail", 8, d);
      ("j_free", 8, d);
      ("j_first", 8, d);
      ("j_last", 8, d);
      ("j_dev", 8, d);
      ("j_blocksize", 4, d);
      ("j_blk_offset", 8, d);
      ("j_devname", 32, d);
      ("j_fs_dev", 8, d);
      ("j_maxlen", 4, d);
      ("j_reserved_credits", 4, a);
      ("j_list_lock", 4, l);
      ("j_inode", 8, d);
      ("j_tail_sequence", 4, d);
      ("j_transaction_sequence", 4, d);
      ("j_commit_sequence", 4, d);
      ("j_commit_request", 4, d);
      ("j_uuid", 16, d);
      ("j_task", 8, d);
      ("j_max_transaction_buffers", 4, d);
      ("j_commit_interval", 8, d);
      ("j_commit_timer", 8, d);
      ("j_revoke_lock", 4, l);
      ("j_revoke", 8, d);
      ("j_revoke_table", 16, d);
      ("j_wbuf", 8, d);
      ("j_wbufsize", 4, d);
      ("j_last_sync_writer", 4, d);
      ("j_history_lock", 4, l);
      ("j_average_commit_time", 8, d);
      ("j_min_batch_time", 4, d);
      ("j_max_batch_time", 4, d);
      ("j_commit_callback", 8, d);
      ("j_failed_commit", 8, d);
      ("j_chksum_driver", 8, d);
      ("j_csum_seed", 4, d);
      ("j_stats_lock", 4, l);
      ("j_overall_stats", 16, d);
      ("j_running_stats", 16, d);
      ("j_private", 8, d);
    ]

let transaction =
  Layout.make ~name:"transaction_t"
    [
      ("t_journal", 8, d);
      ("t_tid", 4, d);
      ("t_state", 4, d);
      ("t_log_start", 8, d);
      ("t_nr_buffers", 4, d);
      ("t_reserved_list", 8, d);
      ("t_buffers", 8, d);
      ("t_forget", 8, d);
      ("t_checkpoint_list", 8, d);
      ("t_checkpoint_io_list", 8, d);
      ("t_shadow_list", 8, d);
      ("t_log_list", 8, d);
      ("t_inode_list", 16, d);
      ("t_handle_lock", 4, l);
      ("t_handle_count", 4, a);
      ("t_updates", 4, a);
      ("t_outstanding_credits", 4, a);
      ("t_expires", 8, d);
      ("t_start_time", 8, d);
      ("t_start", 8, d);
      ("t_requested", 8, d);
      ("t_max_wait", 8, d);
      ("t_chp_stats", 16, d);
      ("t_cpnext", 8, d);
      ("t_cpprev", 8, d);
      ("t_need_data_flush", 4, d);
      ("t_synchronous_commit", 4, d);
    ]

let journal_head =
  Layout.make ~name:"journal_head"
    [
      ("b_bh", 8, d);
      ("b_jcount", 4, a);
      ("b_jlist", 4, d);
      ("b_modified", 4, d);
      ("b_frozen_data", 8, d);
      ("b_committed_data", 8, d);
      ("b_transaction", 8, d);
      ("b_next_transaction", 8, d);
      ("b_tnext", 8, d);
      ("b_tprev", 8, d);
      ("b_cp_transaction", 8, d);
      ("b_cpnext", 8, d);
      ("b_cpprev", 8, d);
      ("b_triggers", 8, d);
      ("b_frozen_triggers", 8, d);
    ]

let buffer_head =
  Layout.make ~name:"buffer_head"
    [
      ("b_state", 8, d);
      ("b_state_lock", 4, l);
      (* stand-in for the BH_State bit spinlock *)
      ("b_this_page", 8, d);
      ("b_page", 8, d);
      ("b_blocknr", 8, d);
      ("b_size", 8, d);
      ("b_data", 8, d);
      ("b_bdev", 8, d);
      ("b_end_io", 8, d);
      ("b_private", 8, d);
      ("b_assoc_buffers", 16, d);
      ("b_assoc_map", 8, d);
      ("b_count", 4, a);
    ]

let block_device =
  Layout.make ~name:"block_device"
    [
      ("bd_dev", 4, d);
      ("bd_openers", 4, d);
      ("bd_inode", 8, d);
      ("bd_super", 8, d);
      ("bd_mutex", 32, l);
      ("bd_claiming", 8, d);
      ("bd_holder", 8, d);
      ("bd_holders", 4, d);
      ("bd_write_holder", 4, d);
      ("bd_holder_disks", 16, d);
      ("bd_contains", 8, d);
      ("bd_block_size", 4, d);
      ("bd_part", 8, d);
      ("bd_part_count", 4, d);
      ("bd_invalidated", 4, d);
      ("bd_disk", 8, d);
      ("bd_queue", 8, d);
      ("bd_list", 16, d);
      ("bd_private", 8, d);
      ("bd_fsfreeze_count", 4, d);
      ("bd_fsfreeze_mutex", 32, l);
    ]

let backing_dev_info =
  Layout.make ~name:"backing_dev_info"
    [
      ("ra_pages", 8, d);
      ("io_pages", 8, d);
      ("capabilities", 4, d);
      ("congested", 8, d);
      ("name", 8, d);
      ("min_ratio", 4, d);
      ("max_ratio", 4, d);
      ("max_prop_frac", 4, d);
      ("bdi_list", 16, d);
      (* struct bdi_writeback wb, unrolled *)
      ("wb.state", 8, d);
      ("wb.last_old_flush", 8, d);
      ("wb.b_dirty", 16, d);
      ("wb.b_io", 16, d);
      ("wb.b_more_io", 16, d);
      ("wb.b_dirty_time", 16, d);
      ("wb.list_lock", 4, l);
      ("wb.dirty_sleep", 8, d);
      ("wb.bw_time_stamp", 8, d);
      ("wb.dirtied_stamp", 8, d);
      ("wb.written_stamp", 8, d);
      ("wb.write_bandwidth", 8, d);
      ("wb.avg_write_bandwidth", 8, d);
      ("wb.dirty_ratelimit", 8, d);
      ("wb.balanced_dirty_ratelimit", 8, d);
      ("wb.completions", 8, d);
      ("wb.dirty_exceeded", 4, d);
      ("wb.work_lock", 4, l);
      ("wb.work_list", 16, d);
      ("wb.dwork", 8, d);
      ("wb.bdi", 8, d);
      ("wb.congested", 8, d);
      ("wb.refcnt", 4, a);
      ("dev", 8, d);
      ("dev_name", 8, d);
      ("owner", 8, d);
      ("wb_lock", 4, l);
      ("wb_list", 16, d);
      ("wb_switch_rwsem", 40, l);
      ("unpinned", 4, d);
      ("laptop_mode_timer", 8, d);
      ("debug_dir", 8, d);
      ("debug_stats", 8, d);
    ]

let cdev =
  Layout.make ~name:"cdev"
    [
      ("kobj", 8, d);
      ("owner", 8, d);
      ("ops", 8, d);
      ("list", 16, d);
      ("dev", 4, d);
      ("count", 4, d);
    ]

let pipe_inode_info =
  Layout.make ~name:"pipe_inode_info"
    [
      ("mutex", 32, l);
      ("wait", 8, d);
      ("nrbufs", 4, d);
      ("curbuf", 4, d);
      ("buffers", 4, d);
      ("readers", 4, d);
      ("writers", 4, d);
      ("files", 4, a);
      ("waiting_writers", 4, d);
      ("r_counter", 4, d);
      ("w_counter", 4, d);
      ("tmp_page", 8, d);
      ("fasync_readers", 8, d);
      ("fasync_writers", 8, d);
      ("bufs", 8, d);
      ("user", 8, d);
    ]

let all =
  [
    inode;
    dentry;
    super_block;
    journal;
    transaction;
    journal_head;
    buffer_head;
    block_device;
    backing_dev_info;
    cdev;
    pipe_inode_info;
  ]

let inode_subclasses =
  [
    "ext4";
    "tmpfs";
    "proc";
    "sysfs";
    "rootfs";
    "pipefs";
    "sockfs";
    "bdev";
    "devtmpfs";
    "debugfs";
    "anon_inodefs";
  ]
