(** Synchronisation primitives of the simulated kernel.

    One module covers the lock zoo the paper instruments (Sec. 7.1):
    spinlocks, reader/writer locks, mutexes, semaphores, reader/writer
    semaphores, RCU and seqlocks. Every acquisition/release emits a trace
    event with the current synthetic source location. Classic Linux
    discipline is enforced at simulation time: recursive exclusive
    acquisition, unlocking a lock one does not hold, and sleeping in
    atomic context all raise. *)

exception Lock_error of string

type t

val name : t -> string
val ptr : t -> int

val static : kind:Lockdoc_trace.Event.lock_kind -> string -> t
(** A statically allocated (global) lock; addresses come from a reserved
    region below the heap. Safe to create at module-load time. *)

val embedded : kind:Lockdoc_trace.Event.lock_kind -> Memory.instance -> string -> t
(** A lock living inside a monitored structure: its address is the member's
    address, so post-processing resolves it to (type, member). *)

(** {2 Spinlocks} — disable preemption while held. *)

val spin_lock : t -> unit
val spin_unlock : t -> unit
val spin_lock_irq : t -> unit
val spin_unlock_irq : t -> unit
val spin_lock_bh : t -> unit
val spin_unlock_bh : t -> unit
val spin_trylock : t -> bool

(** {2 Reader/writer spinlocks} *)

val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

(** {2 Blocking primitives} *)

val mutex_lock : t -> unit
val mutex_unlock : t -> unit
val down : t -> unit
val up : t -> unit
val down_read : t -> unit
val up_read : t -> unit
val down_write : t -> unit
val up_write : t -> unit
val downgrade_write : t -> unit
(** Convert a held write lock into a read lock (as in the kernel's
    [downgrade_write]). *)

(** {2 RCU} *)

val rcu : t
(** The global RCU "lock": reader sections are reentrant and never block. *)

val rcu_read_lock : unit -> unit
val rcu_read_unlock : unit -> unit

val call_rcu : (unit -> unit) -> unit
(** Run the callback once no RCU reader section is active: immediately if
    none is, otherwise deferred until the last reader exits (the
    cooperative equivalent of the kernel's [call_rcu]). Used to free
    objects that lock-free walkers may still hold. *)

(** {2 Seqlocks} *)

val write_seqlock : t -> unit
val write_sequnlock : t -> unit
val read_seq_section : t -> (unit -> 'a) -> 'a
(** Reader section with retry: re-executes the body (re-emitting its
    accesses, like real retried code) when a writer raced it. *)

(** {2 Scoped helpers} *)

val with_spin : t -> (unit -> 'a) -> 'a
val with_mutex : t -> (unit -> 'a) -> 'a
val with_read : t -> (unit -> 'a) -> 'a
(** rwsem reader side ([down_read]/[up_read]). *)

val with_write : t -> (unit -> 'a) -> 'a
(** rwsem writer side. *)

val with_rcu : (unit -> 'a) -> 'a
