module Event = Lockdoc_trace.Event

type lockref =
  | Sglobal of string
  | Smember of { ty : string; var : string; member : string }

type node =
  | Nop
  | Seq of node list
  | Alt of node list
  | Opt of node
  | Star of node
  | Plus of node
  | Acquire of { lock : lockref; kind : Event.lock_kind; side : Event.lock_side }
  | Release of lockref
  | Access of {
      ty : string;
      var : string;
      member : string;
      kind : Event.access_kind;
    }
  | Call of { callees : string list; binds : (string * string) list }
  | Irq_off
  | Irq_on
  | Bh_off
  | Bh_on
  | Blocks

type body = Wild | Body of node

type fn = {
  sk_name : string;
  sk_subsystem : string;
  sk_root : bool;
  sk_irq : bool;
  sk_body : body;
}

let registry : (string, fn) Hashtbl.t = Hashtbl.create 256

let register ?(root = false) ?(irq = false) ~subsystem name node =
  if Hashtbl.mem registry name then
    invalid_arg (Printf.sprintf "Skeleton.register: duplicate %S" name);
  Hashtbl.replace registry name
    {
      sk_name = name;
      sk_subsystem = subsystem;
      sk_root = root;
      sk_irq = irq;
      sk_body = Body node;
    }

let register_wild ?(root = false) ?(irq = false) ~subsystem name =
  if Hashtbl.mem registry name then
    invalid_arg (Printf.sprintf "Skeleton.register_wild: duplicate %S" name);
  Hashtbl.replace registry name
    {
      sk_name = name;
      sk_subsystem = subsystem;
      sk_root = root;
      sk_irq = irq;
      sk_body = Wild;
    }

let find name = Hashtbl.find_opt registry name

let all () =
  Hashtbl.fold (fun _ fn acc -> fn :: acc) registry []
  |> List.sort (fun a b -> compare a.sk_name b.sk_name)

let subsystems () =
  all ()
  |> List.map (fun fn -> fn.sk_subsystem)
  |> List.sort_uniq compare

let rec nodes n =
  match n with
  | Seq ns | Alt ns -> List.fold_left (fun acc n -> acc + nodes n) 1 ns
  | Opt n | Star n | Plus n -> 1 + nodes n
  | Nop | Acquire _ | Release _ | Access _ | Call _ | Irq_off | Irq_on
  | Bh_off | Bh_on | Blocks ->
      1

let node_count fn = match fn.sk_body with Wild -> 1 | Body n -> nodes n

let lockref_name = function Sglobal n -> n | Smember { member; _ } -> member

let bind_var binds v =
  let rec go = function
    | [] -> "^" ^ v
    | (src, dst) :: rest ->
        if v = src then dst
        else
          let p = src ^ "." in
          let lp = String.length p in
          if String.length v > lp && String.sub v 0 lp = p then
            dst ^ "." ^ String.sub v lp (String.length v - lp)
          else go rest
  in
  go binds

(* ---- letters -------------------------------------------------------- *)

type letter =
  | L_acquire of { name : string; kind : Event.lock_kind; side : Event.lock_side }
  | L_release of { name : string; kind : Event.lock_kind }
  | L_access of { ty : string; member : string; kind : Event.access_kind }
  | L_call of string

let letter_to_string = function
  | L_acquire { name; kind; side } ->
      Printf.sprintf "acq(%s:%s%s)" name
        (Event.lock_kind_to_string kind)
        (match side with Event.Shared -> ":r" | Event.Exclusive -> "")
  | L_release { name; _ } -> Printf.sprintf "rel(%s)" name
  | L_access { ty; member; kind } ->
      Printf.sprintf "%s(%s.%s)"
        (match kind with Event.Read -> "r" | Event.Write -> "w")
        ty member
  | L_call fn -> Printf.sprintf "call(%s)" fn

(* ---- NFA ------------------------------------------------------------ *)

(* Thompson construction over the node tree. Leaves either consume one
   letter ([`Sym]) or none ([`Eps]); mask toggles are compiled as an
   optional symbol because the runtime only emits mask events on actual
   transitions of the nesting counter. *)

type nfa = {
  n_states : int;
  eps : int list array;  (* epsilon successors *)
  sym : (letter -> bool) option array;  (* consuming transition, +1 state *)
  accept : int;
}

let leaf_pred node =
  match node with
  | Acquire { lock; kind; side } ->
      let name = lockref_name lock in
      Some
        (function
          | L_acquire a -> a.name = name && a.kind = kind && a.side = side
          | _ -> false)
  | Release lock ->
      let name = lockref_name lock in
      Some (function L_release r -> r.name = name | _ -> false)
  | Access { ty; member; kind; _ } ->
      Some
        (function
          | L_access a -> a.ty = ty && a.member = member && a.kind = kind
          | _ -> false)
  | Call { callees; _ } ->
      Some (function L_call c -> List.mem c callees | _ -> false)
  | Irq_off ->
      Some
        (function
          | L_acquire { name = "irqoff"; kind = Event.Pseudo; _ } -> true
          | _ -> false)
  | Irq_on ->
      Some (function L_release { name = "irqoff"; _ } -> true | _ -> false)
  | Bh_off ->
      Some
        (function
          | L_acquire { name = "bhoff"; kind = Event.Pseudo; _ } -> true
          | _ -> false)
  | Bh_on ->
      Some (function L_release { name = "bhoff"; _ } -> true | _ -> false)
  | Nop | Blocks -> None
  | Seq _ | Alt _ | Opt _ | Star _ | Plus _ -> assert false

let mask_toggle = function
  | Irq_off | Irq_on | Bh_off | Bh_on -> true
  | _ -> false

let compile node =
  let eps = ref [] and sym = ref [] in
  let next = ref 0 in
  let fresh () =
    let s = !next in
    incr next;
    s
  in
  let add_eps a b = eps := (a, b) :: !eps in
  (* Builds the fragment for [n] between a fresh start and returns
     (start, accept). *)
  let rec build n =
    match n with
    | Nop | Blocks ->
        let s = fresh () in
        (s, s)
    | Seq ns ->
        let s = fresh () in
        let a =
          List.fold_left
            (fun prev n ->
              let s', a' = build n in
              add_eps prev s';
              a')
            s ns
        in
        (s, a)
    | Alt ns ->
        let s = fresh () and a = fresh () in
        List.iter
          (fun n ->
            let s', a' = build n in
            add_eps s s';
            add_eps a' a)
          ns;
        (s, a)
    | Opt n ->
        let s, a = build n in
        add_eps s a;
        (s, a)
    | Star n ->
        let s, a = build n in
        add_eps s a;
        add_eps a s;
        (s, a)
    | Plus n ->
        let s, a = build n in
        add_eps a s;
        (s, a)
    | _ -> (
        match leaf_pred n with
        | None ->
            let s = fresh () in
            (s, s)
        | Some p ->
            let s = fresh () in
            let a = fresh () in
            assert (a = s + 1);
            sym := (s, p) :: !sym;
            if mask_toggle n then add_eps s a;
            (s, a))
  in
  let start, accept = build node in
  let n_states = !next in
  let eps_arr = Array.make n_states [] in
  List.iter (fun (a, b) -> eps_arr.(a) <- b :: eps_arr.(a)) !eps;
  let sym_arr = Array.make n_states None in
  List.iter (fun (s, p) -> sym_arr.(s) <- Some p) !sym;
  (start, { n_states; eps = eps_arr; sym = sym_arr; accept })

let closure nfa set =
  let seen = Array.make nfa.n_states false in
  let rec go s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter go nfa.eps.(s)
    end
  in
  List.iter go set;
  seen

let nfa_cache : (string, int * nfa) Hashtbl.t = Hashtbl.create 256
let nfa_cache_mutex = Mutex.create ()

let nfa_of fn node =
  Mutex.protect nfa_cache_mutex (fun () ->
      match Hashtbl.find_opt nfa_cache fn.sk_name with
      | Some sn -> sn
      | None ->
          let sn = compile node in
          Hashtbl.replace nfa_cache fn.sk_name sn;
          sn)

let accepts fn letters =
  match fn.sk_body with
  | Wild -> true
  | Body node ->
      let start, nfa = nfa_of fn node in
      let current = ref (closure nfa [ start ]) in
      let dead = ref false in
      List.iter
        (fun letter ->
          if not !dead then begin
            let next = ref [] in
            Array.iteri
              (fun s live ->
                if live then
                  match nfa.sym.(s) with
                  | Some p when p letter -> next := (s + 1) :: !next
                  | _ -> ())
              !current;
            if !next = [] then dead := true
            else current := closure nfa !next
          end)
        letters;
      (not !dead) && !current.(nfa.accept)

(* ---- construction helpers ------------------------------------------ *)

let seq ns = Seq ns
let alt ns = Alt ns
let opt n = Opt n
let star n = Star n
let plus n = Plus n

let call ?(binds = []) name = Call { callees = [ name ]; binds }
let vcall ?(binds = []) callees = Call { callees; binds }

let acquire ?(side = Event.Exclusive) kind lock = Acquire { lock; kind; side }
let release lock = Release lock

let spin_lock l = acquire Event.Spinlock l
let spin_unlock l = release l
let spin_lock_irq l = Seq [ Irq_off; spin_lock l ]
let spin_unlock_irq l = Seq [ release l; Irq_on ]
let spin_lock_bh l = Seq [ Bh_off; spin_lock l ]
let spin_unlock_bh l = Seq [ release l; Bh_on ]
let read_lock l = acquire ~side:Event.Shared Event.Rwlock l
let write_lock l = acquire Event.Rwlock l
let mutex_lock l = acquire Event.Mutex l
let mutex_unlock l = release l
let down l = acquire Event.Semaphore l
let up l = release l
let down_read l = acquire ~side:Event.Shared Event.Rwsem l
let down_write l = acquire Event.Rwsem l
let up_read l = release l
let up_write l = release l
let downgrade_write l = Seq [ release l; acquire ~side:Event.Shared Event.Rwsem l ]

let rcu_lock = Sglobal "rcu"
let with_rcu body =
  Seq
    [ acquire ~side:Event.Shared Event.Rcu rcu_lock; body; release rcu_lock ]

let write_seqlock l = acquire Event.Seqlock l
let write_sequnlock l = release l

(* A seqlock read section retries until the sequence is stable: one or
   more (acquire; body; release) rounds. *)
let read_seq l body =
  Plus (Seq [ acquire ~side:Event.Shared Event.Seqlock l; body; release l ])

let access kind ty var member = Access { ty; var; member; kind }
let read_m ty var member = access Event.Read ty var member
let write_m ty var member = access Event.Write ty var member
let modify_m ty var member =
  Seq [ read_m ty var member; write_m ty var member ]

let with_lock ~lock ~unlock body = Seq [ lock; body; unlock ]
