(** procfs (fs/proc/inode.c, fs/proc/generic.c).

    proc only implements a subset of all filesystem operations and — as
    the paper notes when motivating subclass-aware derivation (Sec. 5.3,
    item 1) — does not lock-protect some members that disk filesystems
    do: reads go straight to the fields, and the pseudo-file "write"
    path only touches the private payload. *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

let proc_read inode =
  fn "fs/proc/inode.c" 20 "proc_reg_read" @@ fun () ->
  (* Lock-free field reads: no i_rwsem, no seq section for i_size. *)
  ignore (Memory.read inode.i_inst "i_mode");
  ignore (Memory.read inode.i_inst "i_size");
  ignore (Memory.read inode.i_inst "i_private");
  ignore (Memory.read inode.i_inst "i_fop")

let proc_write inode n =
  fn "fs/proc/generic.c" 16 "proc_simple_write" @@ fun () ->
  ignore n;
  Memory.write inode.i_inst "i_private" n;
  Memory.write inode.i_inst "i_mtime" 1

let proc_setattr inode ~mode ~uid =
  fn "fs/proc/inode.c" 14 "proc_notify_change" @@ fun () ->
  ignore uid;
  (* Mirrors the mode into the proc_dir_entry, lock-free. *)
  Memory.write inode.i_inst "i_private" mode

let proc_evict inode =
  fn "fs/proc/inode.c" 12 "proc_evict_inode" @@ fun () ->
  Memory.write inode.i_inst "i_private" 0

let fstype =
  {
    fs_name = "proc";
    fs_file = "fs/proc/inode.c";
    fs_ops =
      {
        op_new_inode = (fun sb -> Vfs_inode.new_inode sb);
        op_read = proc_read;
        op_write = proc_write;
        op_setattr = proc_setattr;
        op_evict = proc_evict;
      };
  }

let () =
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"fs/proc/inode.c" ~span name))
    [
      ("proc_alloc_inode", 16); ("proc_free_inode", 8); ("proc_entry_rundown", 18);
      ("close_pdeo", 22); ("proc_reg_llseek", 12); ("proc_reg_mmap", 12);
      ("proc_reg_open", 30); ("proc_reg_release", 14); ("proc_get_inode", 30);
      ("proc_fill_super", 22);
    ]

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"proc" in
  let r m = read_m "inode" "i" m in
  let w m = write_m "inode" "i" m in
  reg ~root:true "proc_reg_read"
    (seq [ r "i_mode"; r "i_size"; r "i_private"; r "i_fop" ]);
  reg ~root:true "proc_simple_write" (seq [ w "i_private"; w "i_mtime" ]);
  reg "proc_notify_change" (w "i_private");
  reg "proc_evict_inode" (w "i_private")
