module Event = Lockdoc_trace.Event

let inode_hash_lock = Lock.static ~kind:Event.Spinlock "inode_hash_lock"
let inode_lru_lock = Lock.static ~kind:Event.Spinlock "inode_lru_lock"
let sb_lock = Lock.static ~kind:Event.Spinlock "sb_lock"
let mount_lock = Lock.static ~kind:Event.Seqlock "mount_lock"
let rename_lock = Lock.static ~kind:Event.Seqlock "rename_lock"
let dentry_hash_lock = Lock.static ~kind:Event.Spinlock "dentry_hash_lock"
let cdev_lock = Lock.static ~kind:Event.Spinlock "cdev_lock"
let bdev_lock = Lock.static ~kind:Event.Spinlock "bdev_lock"
let bdi_lock = Lock.static ~kind:Event.Spinlock "bdi_lock"
let wq_lock = Lock.static ~kind:Event.Spinlock "wq_lock"
