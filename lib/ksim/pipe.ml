(** Pipe subsystem (fs/pipe.c).

    The per-pipe mutex protects the ring state; poll peeks [nrbufs] and
    the reader/writer counts without it (as fs/pipe.c really does), which
    produces the small pipe_inode_info violation count of the paper's
    Tab. 7 (9 events over 3 members). *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

let pipe_lock pipe =
  fn "fs/pipe.c" 6 "pipe_lock" @@ fun () -> Lock.mutex_lock pipe.p_mutex

let pipe_unlock pipe =
  fn "fs/pipe.c" 6 "pipe_unlock" @@ fun () -> Lock.mutex_unlock pipe.p_mutex

let pipe_open pipe ~reader =
  fn "fs/pipe.c" 16 "fifo_open" @@ fun () ->
  pipe_lock pipe;
  if reader then begin
    Memory.modify pipe.p_inst "readers" (fun r -> r + 1);
    Memory.modify pipe.p_inst "r_counter" (fun r -> r + 1)
  end
  else begin
    Memory.modify pipe.p_inst "writers" (fun w -> w + 1);
    Memory.modify pipe.p_inst "w_counter" (fun w -> w + 1)
  end;
  pipe_unlock pipe

let pipe_release pipe ~reader =
  fn "fs/pipe.c" 14 "pipe_release" @@ fun () ->
  pipe_lock pipe;
  if reader then Memory.modify pipe.p_inst "readers" (fun r -> max 0 (r - 1))
  else Memory.modify pipe.p_inst "writers" (fun w -> max 0 (w - 1));
  pipe_unlock pipe

(* Seeded ground-truth race (period 0 = off by default): a writer
   bumping [w_counter] after dropping the pipe mutex, racing the locked
   updates in [pipe_open]/[pipe_release]. *)
let seed_race_pipe = Fault.site ~period:0 "seed_race_pipe"

let pipe_write pipe n =
  fn "fs/pipe.c" 40 "pipe_write" @@ fun () ->
  pipe_lock pipe;
  ignore (Memory.read pipe.p_inst "readers");
  let bufs = Memory.read pipe.p_inst "nrbufs" in
  let cap = Memory.read pipe.p_inst "buffers" in
  if bufs < cap then begin
    Memory.write pipe.p_inst "nrbufs" (min cap (bufs + n));
    Memory.write pipe.p_inst "bufs" 1;
    Memory.write pipe.p_inst "tmp_page" 1
  end
  else Memory.modify pipe.p_inst "waiting_writers" (fun w -> w + 1);
  pipe_unlock pipe;
  if Fault.fire seed_race_pipe then
    Memory.modify pipe.p_inst "w_counter" (fun w -> w + 1)

let pipe_read pipe n =
  fn "fs/pipe.c" 36 "pipe_read" @@ fun () ->
  pipe_lock pipe;
  let bufs = Memory.read pipe.p_inst "nrbufs" in
  if bufs > 0 then begin
    Memory.write pipe.p_inst "nrbufs" (max 0 (bufs - n));
    Memory.modify pipe.p_inst "curbuf" (fun c -> (c + 1) mod 16);
    ignore (Memory.read pipe.p_inst "waiting_writers");
    Memory.write pipe.p_inst "waiting_writers" 0
  end
  else ignore (Memory.read pipe.p_inst "writers");
  pipe_unlock pipe

(* Poll peeks the ring state without the pipe mutex (as fs/pipe.c really
   does) — that lock-free flavour is the default (period 1 = every
   visit) so existing traces are unchanged; the sanitizer's clean runs
   quiesce the site to get a poll that honours the mutex, keeping the
   baseline free of intentional violations. *)
let pipe_poll_nolock = Fault.site ~period:1 "pipe_poll_nolock"

let pipe_poll pipe =
  fn "fs/pipe.c" 18 "pipe_poll" @@ fun () ->
  let peek () =
    ignore (Memory.read pipe.p_inst "nrbufs");
    ignore (Memory.read pipe.p_inst "readers");
    ignore (Memory.read pipe.p_inst "writers")
  in
  if Fault.fire pipe_poll_nolock then peek ()
  else begin
    pipe_lock pipe;
    peek ();
    pipe_unlock pipe
  end

let pipe_fasync pipe =
  fn "fs/pipe.c" 16 "pipe_fasync" @@ fun () ->
  pipe_lock pipe;
  Memory.write pipe.p_inst "fasync_readers" 1;
  Memory.write pipe.p_inst "fasync_writers" 1;
  pipe_unlock pipe

let () =
  List.iter
    (fun (name, span) -> ignore (Source.declare ~file:"fs/pipe.c" ~span name))
    [
      ("pipe_double_lock", 14); ("generic_pipe_buf_steal", 16);
      ("generic_pipe_buf_get", 6); ("generic_pipe_buf_confirm", 6);
      ("generic_pipe_buf_release", 8); ("round_pipe_size", 10);
      ("pipe_set_size", 28); ("pipe_ioctl", 18); ("fifo_open_wait", 20);
    ]

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let sub = "pipe" in
  let reg = register ~subsystem:sub in
  let mtx = Smember { ty = "pipe_inode_info"; var = "p"; member = "mutex" } in
  let r m = read_m "pipe_inode_info" "p" m in
  let w m = write_m "pipe_inode_info" "p" m in
  let rw m = modify_m "pipe_inode_info" "p" m in
  reg "pipe_lock" (mutex_lock mtx);
  reg "pipe_unlock" (mutex_unlock mtx);
  let locked body =
    seq
      [
        call ~binds:[ ("p", "p") ] "pipe_lock";
        body;
        call ~binds:[ ("p", "p") ] "pipe_unlock";
      ]
  in
  reg "fifo_open"
    (locked (alt [ seq [ rw "readers"; rw "r_counter" ];
                   seq [ rw "writers"; rw "w_counter" ] ]));
  reg "pipe_release" (locked (alt [ rw "readers"; rw "writers" ]));
  (* The trailing Opt is the seeded lock-free w_counter bump — part of
     the IR (the path exists in the code) and the static analyses' prime
     unprotected-write example. *)
  reg "pipe_write"
    (seq
       [
         locked
           (seq
              [
                r "readers"; r "nrbufs"; r "buffers";
                alt
                  [ seq [ w "nrbufs"; w "bufs"; w "tmp_page" ];
                    rw "waiting_writers" ];
              ]);
         opt (rw "w_counter");
       ]);
  reg "pipe_read"
    (locked
       (seq
          [
            r "nrbufs";
            alt
              [ seq [ w "nrbufs"; rw "curbuf"; r "waiting_writers";
                      w "waiting_writers" ];
                r "writers" ];
          ]));
  let peek = seq [ r "nrbufs"; r "readers"; r "writers" ] in
  reg "pipe_poll" (alt [ peek; locked peek ]);
  reg "pipe_fasync" (locked (seq [ w "fasync_readers"; w "fasync_writers" ]))
