(* The registry of seeded ground-truth bugs for the sanitizer layer.

   Subsystems declare deliberately buggy paths behind Fault sites with a
   declared period of 0 (never fire). The sanitizer's trace generator
   either activates exactly those sites (period 1: every visit takes the
   buggy path) or quiesces every site, so a "clean" trace contains no
   intentional locking deviations at all — including the paper's
   baked-in Tab. 5/7/8 violations, which would otherwise count as
   false positives against the seeded ground truth. *)

type truth = {
  t_races : (string * string) list;
  t_irq_unsafe : string list;
}

(* site name -> (type key, member) of the racy access it introduces. *)
let race_sites =
  [
    ("seed_race_iput", ("super_block", "s_dirt"));
    ("seed_race_ext4_write", ("super_block", "s_maxbytes"));
    ("seed_race_shmem", ("super_block", "s_blocksize"));
    ("seed_race_symlink", ("super_block", "s_time_gran"));
    ("seed_race_bdev", ("super_block", "s_blocksize_bits"));
    ("seed_race_pipe", ("pipe_inode_info", "w_counter"));
  ]

(* site name -> lock class acquired without masking interrupts. *)
let irq_sites = [ ("seed_irq_unsafe_wb", "backing_dev_info.wb.work_lock") ]

let seeded_names =
  List.map fst race_sites @ List.map fst irq_sites

(* The sites live in the subsystem modules; declaring them here too (no
   period: an existing declaration is left untouched) makes
   set_period total even if a subsystem never ran. *)
let () = List.iter (fun n -> ignore (Fault.site n)) seeded_names

let quiesce () =
  List.iter (fun (name, _) -> Fault.set_period name 0) (Fault.sites ());
  Fault.set_enabled true

let activate () =
  quiesce ();
  List.iter (fun n -> Fault.set_period n 1) seeded_names

let ground_truth () =
  let fired = Fault.fired_counts () in
  let fired_pos name =
    match List.assoc_opt name fired with Some n -> n > 0 | None -> false
  in
  let t_races =
    List.filter_map
      (fun (site, target) -> if fired_pos site then Some target else None)
      race_sites
    |> List.sort_uniq compare
  in
  let t_irq_unsafe =
    List.filter_map
      (fun (site, cls) -> if fired_pos site then Some cls else None)
      irq_sites
    |> List.sort_uniq compare
  in
  { t_races; t_irq_unsafe }
