(** Declarative static skeletons ("the IR") for simulated kernel
    functions.

    Every function the simulated kernel executes under a
    [Kernel.fn_scope] also registers a small regular-expression-shaped
    CFG here, next to its [Source.declare] registration: acquire and
    release nodes carrying the lock kind and reader/writer side,
    member-access nodes carrying (type, member, read/write), irq/bh
    mask toggles, call edges (including virtual-dispatch alternatives),
    and branch/loop joins. The static analyses in [lib/static] run
    entirely over this IR; the dynamic traces keep it honest through
    the differential meta-check (every trace event must be explicable
    by some IR path of the emitting function — dynamic ⊆ static).

    Instances are named by {e object variables}: plain strings scoped
    to one skeleton body ("i", "d", "i.sb", ...). Two nodes mentioning
    the same variable talk about the same instance, which is what lets
    the must-held analysis decide between embedded-same ([Es]) and
    embedded-other ([Eo]) lock descriptors without pointers. *)

module Event = Lockdoc_trace.Event

(** A lock as the IR sees it: either a static (global) lock named by
    its variable name, or a lock embedded in an object instance. The
    [member] of an embedded lock is the exact name the runtime gives
    the lock at creation (so dotted paths like ["i_data.tree_lock"]
    appear verbatim). *)
type lockref =
  | Sglobal of string
  | Smember of { ty : string; var : string; member : string }

type node =
  | Nop  (** empty path *)
  | Seq of node list  (** sequential composition *)
  | Alt of node list  (** branch: exactly one alternative executes *)
  | Opt of node  (** zero or one *)
  | Star of node  (** zero or more iterations *)
  | Plus of node  (** one or more iterations *)
  | Acquire of { lock : lockref; kind : Event.lock_kind; side : Event.lock_side }
  | Release of lockref
  | Access of {
      ty : string;
      var : string;
      member : string;
      kind : Event.access_kind;
    }
  | Call of { callees : string list; binds : (string * string) list }
      (** A call to one of [callees] (several = virtual dispatch).
          [binds] maps caller object variables to callee object
          variables, with dotted-prefix extension: binding
          [("i", "inode")] also carries ["i.sb"] to ["inode.sb"]. *)
  | Irq_off  (** local_irq_disable: masks hard irqs (maybe-transition) *)
  | Irq_on
  | Bh_off  (** local_bh_disable *)
  | Bh_on
  | Blocks  (** a direct blocking point (wait_until) with no event *)

(** A skeleton body. [Wild] accepts {e any} event sequence and is
    excluded from every analysis — it is reserved for the init/teardown
    constructors and atomic helpers that the dynamic importer's
    [Filter.default] blacklists for the same reason. *)
type body = Wild | Body of node

type fn = {
  sk_name : string;
  sk_subsystem : string;  (** report grouping: "vfs", "jbd2", ... *)
  sk_root : bool;  (** called directly by workload drivers *)
  sk_irq : bool;  (** runs in hardirq/softirq context *)
  sk_body : body;
}

val register :
  ?root:bool -> ?irq:bool -> subsystem:string -> string -> node -> unit
(** Register a skeleton. Raises [Invalid_argument] on duplicate
    registration — the IR is declared once, next to the function. *)

val register_wild : ?root:bool -> ?irq:bool -> subsystem:string -> string -> unit

val find : string -> fn option
val all : unit -> fn list  (** sorted by name; deterministic *)

val subsystems : unit -> string list  (** sorted, distinct *)

val node_count : fn -> int
(** IR size: leaves + joins, [Wild] counts 1. *)

(** {2 Letters and acceptance}

    The meta-check reduces each dynamic function invocation to a word
    of letters — its directly-emitted events plus one [L_call] per
    nested invocation — and asks the skeleton's NFA to accept it. *)

type letter =
  | L_acquire of { name : string; kind : Event.lock_kind; side : Event.lock_side }
  | L_release of { name : string; kind : Event.lock_kind }
  | L_access of { ty : string; member : string; kind : Event.access_kind }
  | L_call of string

val letter_to_string : letter -> string

val accepts : fn -> letter list -> bool
(** NFA acceptance of the letter word by the skeleton body. [Wild]
    accepts everything. Mask toggles ([Irq_off] etc.) match their
    pseudo-lock letter {e optionally}, because the runtime only emits
    mask events on actual 0↔1 transitions. *)

(** {2 Helpers for lib/static} *)

val lockref_name : lockref -> string
(** The event-level name of the lock: variable name for [Sglobal],
    member name for [Smember]. *)

val bind_var : (string * string) list -> string -> string
(** [bind_var binds v] rewrites a caller variable into the callee's
    namespace: an exact or dotted-prefix match of a bind's left side is
    rewritten to its right side; unbound variables are prefixed with
    ["^"] so they stay distinct from every callee-local variable. *)

(** {2 Construction helpers}

    Terse combinators used by the per-subsystem registrations; each
    lock helper mirrors the exact event emission of the corresponding
    [Lock] primitive (e.g. [spin_lock_irq] is a maybe-transition mask
    toggle followed by the acquire). *)

val seq : node list -> node
val alt : node list -> node
val opt : node -> node
val star : node -> node
val plus : node -> node
val call : ?binds:(string * string) list -> string -> node
val vcall : ?binds:(string * string) list -> string list -> node
val acquire : ?side:Event.lock_side -> Event.lock_kind -> lockref -> node
val release : lockref -> node
val spin_lock : lockref -> node
val spin_unlock : lockref -> node
val spin_lock_irq : lockref -> node
val spin_unlock_irq : lockref -> node
val spin_lock_bh : lockref -> node
val spin_unlock_bh : lockref -> node
val read_lock : lockref -> node
val write_lock : lockref -> node
val mutex_lock : lockref -> node
val mutex_unlock : lockref -> node
val down : lockref -> node
val up : lockref -> node
val down_read : lockref -> node
val down_write : lockref -> node
val up_read : lockref -> node
val up_write : lockref -> node
val downgrade_write : lockref -> node
val rcu_lock : lockref
val with_rcu : node -> node
val write_seqlock : lockref -> node
val write_sequnlock : lockref -> node
val read_seq : lockref -> node -> node
val access : Event.access_kind -> string -> string -> string -> node
val read_m : string -> string -> string -> node
val write_m : string -> string -> string -> node
val modify_m : string -> string -> string -> node
val with_lock : lock:node -> unlock:node -> node -> node
