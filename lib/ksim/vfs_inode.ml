(** VFS inode layer of the simulated kernel (fs/inode.c, fs/attr.c,
    fs/stat.c, fs/fs-writeback.c).

    The locking discipline deliberately mirrors Linux 4.10, including its
    inconsistencies, because those are LockDoc's subject matter:

    - [i_state]/[i_bytes]/[i_blocks] writes take [i_lock]; many [i_state]
      reads are lock-free fast paths.
    - [i_size] is written under [i_rwsem] + the size seqcount and read
      through a lock-free seq section — the documented "i_lock protects
      i_size" rule is never followed (paper Tab. 5).
    - [i_hash] writes of the unhashed neighbours take only the global
      [inode_hash_lock], not the neighbour's [i_lock] (the
      [__remove_inode_hash] mystery of paper Sec. 7.4).
    - the LRU is split between call sites that hold [i_lock] and ones that
      do not (Tab. 5's ~50 % rows).
    - [inode_set_flags] has the historically confirmed lock-free path
      (paper Fig. 3 / Sec. 7.5), modelled as a fault site. *)

module Event = Lockdoc_trace.Event
module Prng = Lockdoc_util.Prng
open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

(* Inode hash table: buckets hold the shadow chains; the traced structure
   is each inode's [i_hash] member. *)
let hash_buckets = 512
let hash_table : inode list array = Array.make hash_buckets []

let () =
  Kernel.add_boot_hook (fun () -> Array.fill hash_table 0 hash_buckets [])

let bucket_of sb ino = (sb.sb_inst.Memory.base + ino) mod hash_buckets

(* {2 Allocation & publication} *)

let new_inode sb =
  fn "fs/inode.c" 22 "new_inode" @@ fun () ->
  let inode = alloc_inode sb in
  (* Publish on the per-sb inode list. *)
  Lock.spin_lock sb.s_inode_list_lock;
  Memory.write inode.i_inst "i_sb_list" (sb.sb_inst.Memory.base);
  (match sb.s_inodes with
  | prev :: _ -> Memory.write prev.i_inst "i_sb_list" inode.i_inst.Memory.base
  | [] -> ());
  sb.s_inodes <- inode :: sb.s_inodes;
  Lock.spin_unlock sb.s_inode_list_lock;
  inode

let remove_from_sb_list inode =
  fn "fs/inode.c" 12 "inode_sb_list_del" @@ fun () ->
  let sb = inode.i_sb in
  Lock.spin_lock sb.s_inode_list_lock;
  Memory.write inode.i_inst "i_sb_list" 0;
  sb.s_inodes <- List.filter (fun i -> i != inode) sb.s_inodes;
  Lock.spin_unlock sb.s_inode_list_lock

(* {2 Hash chain} *)

let insert_inode_hash inode ino =
  fn "fs/inode.c" 20 "__insert_inode_hash" @@ fun () ->
  let b = bucket_of inode.i_sb ino in
  Lock.spin_lock Globals.inode_hash_lock;
  Lock.spin_lock inode.i_lock;
  Memory.write inode.i_inst "i_hash" b;
  Memory.modify inode.i_inst "i_state" (fun s -> s lor 0x1 (* I_HASHED *));
  hash_table.(b) <- inode :: hash_table.(b);
  inode.i_bucket <- b;
  Lock.spin_unlock inode.i_lock;
  Lock.spin_unlock Globals.inode_hash_lock

let remove_inode_hash inode =
  fn "fs/inode.c" 24 "__remove_inode_hash" @@ fun () ->
  if inode.i_bucket >= 0 then begin
    let b = inode.i_bucket in
    Lock.spin_lock Globals.inode_hash_lock;
    Lock.spin_lock inode.i_lock;
    Memory.write inode.i_inst "i_hash" 0;
    Memory.modify inode.i_inst "i_state" (fun s -> s land lnot 0x1);
    (* hlist_del also patches the neighbours' pointers — without holding
       *their* i_lock. This is the documented-rule contradiction the paper
       dissects in Sec. 7.4. *)
    let chain = hash_table.(b) in
    let rec neighbours = function
      | a :: x :: rest when x == inode ->
          Memory.write a.i_inst "i_hash" b;
          (match rest with
          | nxt :: _ -> Memory.write nxt.i_inst "i_hash" b
          | [] -> ())
      | _ :: rest -> neighbours rest
      | [] -> ()
    in
    (match chain with
    | x :: nxt :: _ when x == inode -> Memory.write nxt.i_inst "i_hash" b
    | _ -> neighbours chain);
    hash_table.(b) <- List.filter (fun i -> i != inode) chain;
    inode.i_bucket <- -1;
    Lock.spin_unlock inode.i_lock;
    Lock.spin_unlock Globals.inode_hash_lock
  end

let find_inode sb ino =
  fn "fs/inode.c" 26 "find_inode" @@ fun () ->
  let b = bucket_of sb ino in
  Lock.spin_lock Globals.inode_hash_lock;
  let found =
    List.find_opt
      (fun i ->
        (* Walking the chain reads i_hash of every visited inode with only
           the hash lock held. *)
        ignore (Memory.read i.i_inst "i_hash");
        ignore (Memory.read i.i_inst "i_ino");
        i.i_sb == sb && Memory.atomic_read i.i_inst "i_count" >= 0
        && Memory.read i.i_inst "i_ino" = ino)
      hash_table.(b)
  in
  let found =
    match found with
    | Some i ->
        (* __iget: grab a reference under i_lock, unless the inode is
           already being torn down. *)
        Lock.spin_lock i.i_lock;
        let state = Memory.read i.i_inst "i_state" in
        let usable = state land 0x20 (* I_FREEING *) = 0 in
        if usable then Memory.atomic_inc i.i_inst "i_count";
        Lock.spin_unlock i.i_lock;
        if usable then Some i else None
    | None -> None
  in
  Lock.spin_unlock Globals.inode_hash_lock;
  found

let iget sb ino =
  fn "fs/inode.c" 30 "iget_locked" @@ fun () ->
  match find_inode sb ino with
  | Some inode -> inode
  | None ->
      let inode = sb.fs.fs_ops.op_new_inode sb in
      Memory.write inode.i_inst "i_ino" ino;
      insert_inode_hash inode ino;
      inode

(* {2 Size and block accounting} *)

let inode_add_bytes inode bytes =
  fn "fs/stat.c" 14 "inode_add_bytes" @@ fun () ->
  Lock.spin_lock inode.i_lock;
  Memory.modify inode.i_inst "i_blocks" (fun b -> b + (bytes / 512));
  Memory.modify inode.i_inst "i_bytes" (fun b -> (b + bytes) land 511);
  Lock.spin_unlock inode.i_lock

let inode_sub_bytes inode bytes =
  fn "fs/stat.c" 16 "inode_sub_bytes" @@ fun () ->
  Lock.spin_lock inode.i_lock;
  Memory.modify inode.i_inst "i_blocks" (fun b -> max 0 (b - (bytes / 512)));
  Memory.modify inode.i_inst "i_bytes" (fun b -> (b - bytes) land 511);
  Lock.spin_unlock inode.i_lock

(* ext4-style direct i_blocks update that skips i_lock — one of the code
   paths that keep the documented "i_lock protects i_blocks" rule below
   100 % (paper Tab. 5: 93.56 %). *)
let set_blocks_nolock inode blocks =
  fn "fs/inode.c" 8 "inode_set_blocks_raw" @@ fun () ->
  Memory.write inode.i_inst "i_blocks" blocks

let i_size_write inode size =
  (* Caller holds i_rwsem for writing. *)
  fn "include/linux/fs.h" 8 "i_size_write" @@ fun () ->
  Lock.write_seqlock inode.i_size_seq;
  Memory.write inode.i_inst "i_size" size;
  Lock.write_sequnlock inode.i_size_seq

let i_size_read inode =
  fn "include/linux/fs.h" 8 "i_size_read" @@ fun () ->
  Lock.read_seq_section inode.i_size_seq (fun () ->
      Memory.read inode.i_inst "i_size")

(* {2 Flags (the confirmed kernel bug, paper Fig. 3 / Sec. 7.5)} *)

let flags_fault = Fault.site ~period:13 "inode_set_flags_cmpxchg"

let inode_set_flags inode flags =
  fn "fs/inode.c" 18 "inode_set_flags" @@ fun () ->
  if Fault.fire flags_fault then
    (* "there is at least one code path which doesn't [hold i_mutex]
       today, so we use cmpxchg() out of an abundance of caution" —
       modelled as a raw read-modify-write without i_rwsem. *)
    Memory.modify inode.i_inst "i_flags" (fun f -> f lor flags)
  else begin
    Lock.down_write inode.i_rwsem;
    Memory.modify inode.i_inst "i_flags" (fun f -> f lor flags);
    Lock.up_write inode.i_rwsem
  end

(* {2 Attributes} *)

let notify_change inode ~mode ~uid =
  fn "fs/attr.c" 28 "notify_change" @@ fun () ->
  Lock.down_write inode.i_rwsem;
  Memory.write inode.i_inst "i_mode" mode;
  Memory.write inode.i_inst "i_uid" uid;
  Memory.write inode.i_inst "i_gid" uid;
  Memory.write inode.i_inst "i_ctime" 1;
  Memory.modify inode.i_inst "i_version" (fun v -> v + 1);
  inode.i_sb.fs.fs_ops.op_setattr inode ~mode ~uid;
  Lock.up_write inode.i_rwsem

let generic_fillattr inode =
  fn "fs/stat.c" 22 "generic_fillattr" @@ fun () ->
  ignore (Memory.read inode.i_inst "i_mode");
  ignore (Memory.read inode.i_inst "i_uid");
  ignore (Memory.read inode.i_inst "i_gid");
  ignore (Memory.read inode.i_inst "i_nlink");
  ignore (Memory.read inode.i_inst "i_rdev");
  ignore (i_size_read inode);
  ignore (Memory.read inode.i_inst "i_atime");
  ignore (Memory.read inode.i_inst "i_mtime");
  ignore (Memory.read inode.i_inst "i_ctime");
  (* Lock-free i_blocks/i_bytes reads: the documented read rule has zero
     support (paper Tab. 5). *)
  ignore (Memory.read inode.i_inst "i_blocks");
  ignore (Memory.read inode.i_inst "i_bytes")

let touch_atime inode =
  fn "fs/inode.c" 14 "touch_atime" @@ fun () ->
  ignore (Memory.read inode.i_inst "i_flags");
  Memory.write inode.i_inst "i_atime" 1

let file_update_time inode =
  (* Called from write paths with i_rwsem held; also from lock-free
     mmap-style paths, so mtime ends up with a "no lock" rule. *)
  fn "fs/inode.c" 16 "file_update_time" @@ fun () ->
  Memory.write inode.i_inst "i_mtime" 1;
  Memory.write inode.i_inst "i_ctime" 1;
  Memory.modify inode.i_inst "i_version" (fun v -> v + 1)

(* {2 Dirty state and writeback marking} *)

let mark_inode_dirty inode =
  fn "fs/fs-writeback.c" 30 "__mark_inode_dirty" @@ fun () ->
  (* Lock-free fast path first, as in the real code. *)
  let state = Memory.read inode.i_inst "i_state" in
  if state land 0x4 (* I_DIRTY *) = 0 then begin
    Lock.spin_lock inode.i_lock;
    Memory.modify inode.i_inst "i_state" (fun s -> s lor 0x4);
    Lock.spin_unlock inode.i_lock;
    let bdi = inode.i_sb.s_bdi in
    Lock.spin_lock bdi.wb_list_lock;
    Memory.write inode.i_inst "dirtied_when" 1;
    Memory.write inode.i_inst "i_io_list" bdi.bdi_inst.Memory.base;
    if not (List.memq inode bdi.b_dirty) then bdi.b_dirty <- inode :: bdi.b_dirty;
    Lock.spin_unlock bdi.wb_list_lock
  end

let inode_is_dirty inode =
  fn "fs/fs-writeback.c" 6 "inode_is_dirty" @@ fun () ->
  Memory.read inode.i_inst "i_state" land 0x4 <> 0

let clear_inode_dirty inode =
  fn "fs/fs-writeback.c" 12 "inode_clear_dirty" @@ fun () ->
  Lock.spin_lock inode.i_lock;
  Memory.modify inode.i_inst "i_state" (fun s -> s land lnot 0x4);
  Lock.spin_unlock inode.i_lock

(* {2 LRU}

   Half of the traffic holds i_lock in addition to the LRU lock (the iput
   path), half holds only the LRU lock (the pruning walk) — yielding the
   ~50 % support for the documented ES(i_lock) rule (paper Tab. 5). *)

let lru : inode list ref = ref []

let () = Kernel.add_boot_hook (fun () -> lru := [])

(* The caller holds i_lock. *)
let inode_lru_add_locked inode =
  fn "fs/inode.c" 12 "inode_lru_list_add" @@ fun () ->
  (* Membership check under i_lock: a pure read when already listed. *)
  if Memory.read inode.i_inst "i_lru" = 0 then begin
    Lock.spin_lock Globals.inode_lru_lock;
    Memory.write inode.i_inst "i_lru" 1;
    if not (List.memq inode !lru) then lru := inode :: !lru;
    Lock.spin_unlock Globals.inode_lru_lock
  end

let inode_lru_add inode =
  (* Lock-free state peek before taking the lock, as inode_add_lru does. *)
  ignore (Memory.read inode.i_inst "i_state");
  Lock.spin_lock inode.i_lock;
  inode_lru_add_locked inode;
  Lock.spin_unlock inode.i_lock

let inode_lru_del_walk () =
  (* Pruning touches i_lru of every walked inode with only the LRU lock
     held: a pure read for the survivors, read+write for the victims.
     Victims are claimed (I_FREEING, under their i_lock) while still
     inside the non-preemptible LRU-lock section, so no concurrent
     iget/iput can tear them down first. *)
  fn "fs/inode.c" 26 "prune_icache_sb" @@ fun () ->
  Lock.spin_lock Globals.inode_lru_lock;
  let walked = List.filteri (fun idx _ -> idx < 40) !lru in
  let victims = ref [] in
  List.iter
    (fun i ->
      ignore (Memory.read i.i_inst "i_lru");
      if List.length !victims < 4 then begin
        Lock.spin_lock i.i_lock;
        let state = Memory.read i.i_inst "i_state" in
        if state land 0x20 = 0 && Memory.atomic_read i.i_inst "i_count" = 0
        then begin
          Memory.write i.i_inst "i_state" (state lor 0x20 (* I_FREEING *));
          victims := i :: !victims
        end;
        Lock.spin_unlock i.i_lock;
        if List.memq i !victims then Memory.write i.i_inst "i_lru" 0
      end)
    walked;
  lru := List.filter (fun i -> not (List.memq i !victims)) !lru;
  Lock.spin_unlock Globals.inode_lru_lock;
  !victims

(* {2 Reference counting and eviction} *)

(* Both removal paths hold only the list's own lock — more lock-free
   i_lru/i_io_list traffic relative to the documented ES(i_lock) rule. *)
let inode_lru_del inode =
  fn "fs/inode.c" 10 "inode_lru_list_del" @@ fun () ->
  Lock.spin_lock Globals.inode_lru_lock;
  if List.memq inode !lru then begin
    ignore (Memory.read inode.i_inst "i_lru");
    Memory.write inode.i_inst "i_lru" 0;
    lru := List.filter (fun i -> i != inode) !lru
  end;
  Lock.spin_unlock Globals.inode_lru_lock

let inode_io_list_del inode =
  fn "fs/fs-writeback.c" 10 "inode_io_list_del" @@ fun () ->
  let bdi = inode.i_sb.s_bdi in
  Lock.spin_lock bdi.wb_list_lock;
  if List.memq inode bdi.b_dirty then begin
    Memory.write inode.i_inst "i_io_list" 0;
    bdi.b_dirty <- List.filter (fun i -> i != inode) bdi.b_dirty
  end;
  Lock.spin_unlock bdi.wb_list_lock

(* Mark the inode dead under i_lock; returns false if someone re-grabbed
   a reference or it is already being freed. *)
let set_freeing inode =
  fn "fs/inode.c" 10 "inode_set_freeing" @@ fun () ->
  Lock.spin_lock inode.i_lock;
  let state = Memory.read inode.i_inst "i_state" in
  let ok =
    state land 0x20 = 0 && Memory.atomic_read inode.i_inst "i_count" = 0
  in
  if ok then Memory.write inode.i_inst "i_state" (state lor 0x20 (* I_FREEING *));
  Lock.spin_unlock inode.i_lock;
  ok

(* The caller must have won the I_FREEING race via {!set_freeing}. *)
let evict inode =
  fn "fs/inode.c" 34 "evict" @@ fun () ->
  inode_lru_del inode;
  inode_io_list_del inode;
  remove_inode_hash inode;
  remove_from_sb_list inode;
  inode.i_sb.fs.fs_ops.op_evict inode;
  destroy_inode inode

(* Seeded ground-truth race (period 0 = off by default): iput flagging
   the superblock dirty without s_umount, racing mount's initialisation.
   Reaches every workload family — each of them drops inode
   references. *)
let seed_race_iput = Fault.site ~period:0 "seed_race_iput"

(* The last-reference decision runs entirely under i_lock, mirroring the
   kernel's atomic_dec_and_lock in iput: without it a concurrent iget/iput
   pair can evict the inode out from under us. *)
let iput inode =
  fn "fs/inode.c" 22 "iput" @@ fun () ->
  if Fault.fire seed_race_iput then
    Memory.write inode.i_sb.sb_inst "s_dirt" 1;
  ignore (Memory.read inode.i_inst "i_state");
  Lock.spin_lock inode.i_lock;
  let last = Memory.atomic_dec_and_test inode.i_inst "i_count" in
  if last && Memory.read inode.i_inst "i_nlink" = 0 then begin
    Memory.modify inode.i_inst "i_state" (fun s -> s lor 0x20 (* I_FREEING *));
    Lock.spin_unlock inode.i_lock;
    evict inode
  end
  else begin
    if last then inode_lru_add_locked inode;
    Lock.spin_unlock inode.i_lock
  end

let ihold inode =
  fn "fs/inode.c" 6 "ihold" @@ fun () -> Memory.atomic_inc inode.i_inst "i_count"

let drop_nlink inode =
  fn "fs/inode.c" 8 "drop_nlink" @@ fun () ->
  Memory.modify inode.i_inst "i_nlink" (fun n -> max 0 (n - 1));
  inode.i_nlink_shadow <- max 0 (inode.i_nlink_shadow - 1)

let inc_nlink inode =
  fn "fs/inode.c" 8 "inc_nlink" @@ fun () ->
  Memory.modify inode.i_inst "i_nlink" (fun n -> n + 1);
  inode.i_nlink_shadow <- inode.i_nlink_shadow + 1

let prune_icache () =
  (* The walk already claimed the victims with I_FREEING. *)
  let victims = inode_lru_del_walk () in
  List.iter evict victims

(* Cold fs/ functions: declared for GCOV-style coverage denominators but
   not exercised by the benchmark mix (paper Tab. 3). *)
let () =
  List.iter
    (fun (name, span) -> ignore (Source.declare ~file:"fs/inode.c" ~span name))
    [
      ("inode_init_owner", 14); ("inode_owner_or_capable", 10);
      ("inode_dio_wait", 12); ("inode_nohighmem", 4); ("iget5_locked", 30);
      ("ilookup", 18); ("ilookup5", 22); ("insert_inode_locked", 26);
      ("generic_delete_inode", 6); ("generic_update_time", 16);
      ("inode_needs_sync", 8); ("inode_anon_no", 10); ("unlock_new_inode", 10);
      ("lock_two_nondirectories", 12); ("unlock_two_nondirectories", 8);
      ("inode_insert5", 34); ("atime_needs_update", 20); ("may_open_dev", 6);
      ("timespec_trunc", 10); ("current_time", 8);
    ];
  List.iter
    (fun (name, span) -> ignore (Source.declare ~file:"fs/attr.c" ~span name))
    [
      ("setattr_prepare", 32); ("inode_newsize_ok", 18); ("setattr_copy", 22);
      ("attr_kill_suid", 8); ("chown_ok", 10); ("chgrp_ok", 10);
    ];
  List.iter
    (fun (name, span) -> ignore (Source.declare ~file:"fs/stat.c" ~span name))
    [
      ("vfs_getattr_nosec", 14); ("vfs_getattr", 8); ("vfs_statx_fd", 10);
      ("vfs_statx", 16); ("cp_old_stat", 22); ("inode_get_bytes", 8);
      ("inode_set_bytes", 8);
    ];
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"fs/fs-writeback.c" ~span name))
    [
      ("wb_wait_for_completion", 10);
      ("redirty_tail", 12); ("requeue_io", 6); ("inode_sync_complete", 8);
      ("wait_sb_inodes", 24); ("writeback_inodes_sb_nr", 12);
      ("try_to_writeback_inodes_sb", 10); ("sync_inodes_sb", 20);
      ("block_dump___mark_inode_dirty", 10);
    ]

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"vfs" in
  let il = Smember { ty = "inode"; var = "i"; member = "i_lock" } in
  let irw = Smember { ty = "inode"; var = "i"; member = "i_rwsem" } in
  let isq = Smember { ty = "inode"; var = "i"; member = "i_size_seqcount" } in
  let ghash = Sglobal "inode_hash_lock" in
  let glru = Sglobal "inode_lru_lock" in
  let sbl = Smember { ty = "super_block"; var = "sb"; member = "s_inode_list_lock" } in
  let wbl = Smember { ty = "backing_dev_info"; var = "bdi"; member = "wb.list_lock" } in
  let r m = read_m "inode" "i" m in
  let w m = write_m "inode" "i" m in
  let rw m = modify_m "inode" "i" m in
  let bi = [ ("i", "i") ] in
  let new_inode_impls =
    [ "new_inode"; "ext4_new_inode"; "get_pipe_inode"; "bdget_inode";
      "devtmpfs_create_node" ]
  in
  reg "new_inode"
    (seq
       [
         call "alloc_inode"; spin_lock sbl; w "i_sb_list";
         opt (write_m "inode" "prev" "i_sb_list"); spin_unlock sbl;
       ]);
  reg "inode_sb_list_del"
    (seq
       [
         spin_lock
           (Smember { ty = "super_block"; var = "i.sb"; member = "s_inode_list_lock" });
         w "i_sb_list";
         spin_unlock
           (Smember { ty = "super_block"; var = "i.sb"; member = "s_inode_list_lock" });
       ]);
  reg "__insert_inode_hash"
    (seq
       [
         spin_lock ghash; spin_lock il; w "i_hash"; rw "i_state";
         spin_unlock il; spin_unlock ghash;
       ]);
  (* hlist_del patches the neighbours' i_hash without their i_lock — the
     Sec. 7.4 contradiction. *)
  reg "__remove_inode_hash"
    (opt
       (seq
          [
            spin_lock ghash; spin_lock il; w "i_hash"; rw "i_state";
            star (write_m "inode" "n" "i_hash");
            spin_unlock il; spin_unlock ghash;
          ]));
  reg "find_inode"
    (seq
       [
         spin_lock ghash;
         star
           (seq
              [
                r "i_hash"; r "i_ino";
                opt (seq [ call "atomic_read"; r "i_ino" ]);
              ]);
         opt
           (seq
              [
                spin_lock il; r "i_state"; opt (call "atomic_inc"); spin_unlock il;
              ]);
         spin_unlock ghash;
       ]);
  reg ~root:true "iget_locked"
    (seq
       [
         call ~binds:bi "find_inode";
         opt
           (seq
              [
                vcall new_inode_impls; w "i_ino";
                call ~binds:bi "__insert_inode_hash";
              ]);
       ]);
  reg "inode_add_bytes"
    (with_lock ~lock:(spin_lock il) ~unlock:(spin_unlock il)
       (seq [ rw "i_blocks"; rw "i_bytes" ]));
  reg "inode_sub_bytes"
    (with_lock ~lock:(spin_lock il) ~unlock:(spin_unlock il)
       (seq [ rw "i_blocks"; rw "i_bytes" ]));
  (* Skips i_lock: keeps the documented i_blocks rule below 100 %. *)
  reg "inode_set_blocks_raw" (w "i_blocks");
  reg "i_size_write"
    (seq [ write_seqlock isq; w "i_size"; write_sequnlock isq ]);
  reg "i_size_read" (read_seq isq (r "i_size"));
  (* First alternative: the confirmed Fig. 3 lock-free path. *)
  reg ~root:true "inode_set_flags"
    (alt
       [
         rw "i_flags";
         seq [ down_write irw; rw "i_flags"; up_write irw ];
       ]);
  reg ~root:true "notify_change"
    (seq
       [
         down_write irw; w "i_mode"; w "i_uid"; w "i_gid"; w "i_ctime";
         rw "i_version";
         vcall ~binds:bi
           [ "simple_setattr_fs"; "ext4_setattr"; "shmem_setattr";
             "proc_notify_change"; "sysfs_setattr" ];
         up_write irw;
       ]);
  reg ~root:true "generic_fillattr"
    (seq
       [
         r "i_mode"; r "i_uid"; r "i_gid"; r "i_nlink"; r "i_rdev";
         call ~binds:bi "i_size_read"; r "i_atime"; r "i_mtime"; r "i_ctime";
         r "i_blocks"; r "i_bytes";
       ]);
  reg "touch_atime" (seq [ r "i_flags"; w "i_atime" ]);
  reg "file_update_time" (seq [ w "i_mtime"; w "i_ctime"; rw "i_version" ]);
  reg "__mark_inode_dirty"
    (seq
       [
         r "i_state";
         opt
           (seq
              [
                spin_lock il; rw "i_state"; spin_unlock il;
                spin_lock wbl; w "dirtied_when"; w "i_io_list"; spin_unlock wbl;
              ]);
       ]);
  reg "inode_is_dirty" (r "i_state");
  reg "inode_clear_dirty"
    (with_lock ~lock:(spin_lock il) ~unlock:(spin_unlock il) (rw "i_state"));
  (* Callers hold i_lock; the LRU lock nests inside. *)
  reg "inode_lru_list_add"
    (seq
       [
         r "i_lru";
         opt (seq [ spin_lock glru; w "i_lru"; spin_unlock glru ]);
       ]);
  reg ~root:true "prune_icache_sb"
    (seq
       [
         spin_lock glru;
         star
           (seq
              [
                r "i_lru";
                opt
                  (seq
                     [
                       spin_lock il; r "i_state"; opt (call "atomic_read");
                       opt (w "i_state"); spin_unlock il; opt (w "i_lru");
                     ]);
              ]);
         spin_unlock glru;
       ]);
  reg "inode_lru_list_del"
    (seq
       [
         spin_lock glru; opt (seq [ r "i_lru"; w "i_lru" ]); spin_unlock glru;
       ]);
  reg "inode_io_list_del"
    (seq [ spin_lock wbl; opt (w "i_io_list"); spin_unlock wbl ]);
  reg "inode_set_freeing"
    (seq
       [
         spin_lock il; r "i_state"; opt (call "atomic_read"); opt (w "i_state");
         spin_unlock il;
       ]);
  reg ~root:true "evict"
    (seq
       [
         call ~binds:bi "inode_lru_list_del"; call ~binds:bi "inode_io_list_del";
         call ~binds:bi "__remove_inode_hash"; call ~binds:bi "inode_sb_list_del";
         vcall ~binds:bi
           [ "truncate_inode_pages_final"; "ext4_evict_inode"; "shmem_evict_inode";
             "proc_evict_inode"; "pipe_evict_inode"; "bdev_evict_inode" ];
         call "destroy_inode";
       ]);
  (* The leading s_dirt write is the seeded ground-truth race. *)
  reg ~root:true "iput"
    (seq
       [
         opt (write_m "super_block" "i.sb" "s_dirt");
         r "i_state"; spin_lock il; call "atomic_dec_and_test";
         alt
           [
             seq
               [
                 r "i_nlink"; rw "i_state"; spin_unlock il;
                 call ~binds:bi "evict";
               ];
             seq
               [
                 opt (r "i_nlink");
                 opt (call ~binds:bi "inode_lru_list_add");
                 spin_unlock il;
               ];
           ];
       ]);
  reg "ihold" (call "atomic_inc");
  reg ~root:true "drop_nlink" (rw "i_nlink");
  reg "inc_nlink" (rw "i_nlink")
