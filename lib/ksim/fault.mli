(** Deterministic locking-fault injection.

    LockDoc's core assumption is that locking bugs are {e rare}: the
    system takes the correct locks most of the time and the few deviations
    are the interesting signal (paper Sec. 4.1). Subsystem code marks
    "sloppy" paths with a fault site; a site fires on every [period]-th
    visit, which keeps runs reproducible and lets tests assert exact
    violation counts. A period of 0 disables the site. *)

type site

val site : ?period:int -> string -> site
(** Declare (or look up) a site. The default period is 0 (never fires);
    subsystems pass their intended rarity, e.g. [~period:50]. Declaring an
    existing name returns the original site; an explicit [period] updates
    it. *)

val fire : site -> bool
(** Count a visit; [true] on every [period]-th one (while injection is
    globally enabled). *)

val set_period : string -> int -> unit
(** Raises [Not_found] for unknown sites. *)

val set_enabled : bool -> unit
(** Globally enable/disable injection (default: enabled). Visit counters
    still advance while disabled. *)

val reset : unit -> unit
(** Restore every site to its declared period, zero the counters, and
    re-enable injection globally. Tests that reconfigure sites (via
    {!set_period}) call this to avoid leaking state into later tests. *)

val with_period : string -> int -> (unit -> 'a) -> 'a
(** [with_period name p body] runs [body] with site [name] set to period
    [p], restoring the previous period afterwards (also on exceptions).
    Declares the site if needed. *)

val sites : unit -> (string * int) list
(** All declared sites with their periods, sorted by name. *)

val fired_counts : unit -> (string * int) list
(** How often each site fired in the current run (reset at boot). *)
