module Prng = Lockdoc_util.Prng

type config = { kernel : Kernel.config; scale : int; faults : bool }

let default_config = { kernel = Kernel.default_config; scale = 4; faults = true }

let benchmark_mix ?(config = default_config) () =
  Fault.set_enabled config.faults;
  let n = config.scale in
  Kernel.run ~config:config.kernel ~layouts:Structs.all (fun () ->
      Kernel.spawn "init" (fun () ->
          let env = Workloads.setup_env () in
          let rng = Kernel.prng () in
          let remaining = ref 0 in
          let worker name body =
            incr remaining;
            let task_rng = Prng.split rng in
            Kernel.spawn name (fun () ->
                body task_rng;
                decr remaining)
          in
          (* Interrupt sources: lock-free peeks guarded by the shutdown
             flag so they never touch freed objects. *)
          Kernel.register_hardirq "timer" (fun () ->
              if not env.Workloads.shutting_down then
                Bdi.wakeup_flusher_irq env.Workloads.ext4.Obj.s_bdi);
          Kernel.register_softirq "block" (fun () ->
              if not env.Workloads.shutting_down then
                match env.Workloads.ext4.Obj.s_journal with
                | Some j -> Jbd2.commit_timer_kick j
                | None -> ());
          (* The pipe pair shares one pipefs inode. *)
          let pipe_inode = Vfs_inode.iget env.Workloads.pipefs 6500 in
          worker "fs-bench-test2" (fun r -> Workloads.fs_bench env r (40 * n));
          worker "fsstress-1" (fun r -> Workloads.fsstress env r (60 * n));
          worker "fsstress-2" (fun r -> Workloads.fsstress env r (60 * n));
          worker "fs_inod" (fun r -> Workloads.fs_inod env r (50 * n));
          worker "pipe-writer" (fun r -> Workloads.pipe_writer pipe_inode r (30 * n));
          worker "pipe-reader" (fun r -> Workloads.pipe_reader pipe_inode r (30 * n));
          worker "symlink" (fun r -> Workloads.symlink_bench env r (15 * n));
          worker "perms" (fun r -> Workloads.perms_bench env r (25 * n));
          worker "devices" (fun r -> Workloads.device_bench env r (12 * n));
          worker "pseudo" (fun r -> Workloads.pseudo_bench env r (20 * n));
          worker "flusher" (fun r -> Workloads.flusher env r (8 * n));
          Kernel.wait_until "benchmark completion" (fun () -> !remaining = 0);
          Vfs_inode.iput pipe_inode;
          Workloads.teardown_env env))

let workload_names =
  [ "fs_bench"; "fsstress"; "fs_inod"; "pipe"; "symlink"; "device" ]

let workload_trace ?(seed = 7) ?(scale = 1) name =
  Fault.set_enabled true;
  let config =
    { Kernel.default_config with seed; hardirq_rate = 0.; softirq_rate = 0. }
  in
  let trace, _cov =
    Kernel.run ~config ~layouts:Structs.all (fun () ->
        Kernel.spawn "init" (fun () ->
            let env = Workloads.setup_env () in
            let rng = Kernel.prng () in
            let remaining = ref 0 in
            let worker wname body =
              incr remaining;
              let task_rng = Prng.split rng in
              Kernel.spawn wname (fun () ->
                  body task_rng;
                  decr remaining)
            in
            (match name with
            | "fs_bench" ->
                worker "fs-bench" (fun r -> Workloads.fs_bench env r (20 * scale))
            | "fsstress" ->
                worker "fsstress" (fun r -> Workloads.fsstress env r (30 * scale))
            | "fs_inod" ->
                worker "fs_inod" (fun r -> Workloads.fs_inod env r (25 * scale))
            | "pipe" ->
                let pipe_inode = Vfs_inode.iget env.Workloads.pipefs 6500 in
                worker "pipe-writer" (fun r ->
                    Workloads.pipe_writer pipe_inode r (15 * scale));
                worker "pipe-reader" (fun r ->
                    Workloads.pipe_reader pipe_inode r (15 * scale));
                incr remaining;
                Kernel.spawn "pipe-put" (fun () ->
                    Kernel.wait_until "pipe drained" (fun () -> !remaining = 1);
                    Vfs_inode.iput pipe_inode;
                    decr remaining)
            | "symlink" ->
                worker "symlink" (fun r ->
                    Workloads.symlink_bench env r (10 * scale))
            | "device" ->
                worker "devices" (fun r ->
                    Workloads.device_bench env r (8 * scale))
            | other -> invalid_arg ("Run.workload_trace: unknown " ^ other));
            Kernel.wait_until "workload completion" (fun () -> !remaining = 0);
            Workloads.teardown_env env))
  in
  trace

(* The sanitizer's traces: one benchmark family plus the pieces the two
   detectors need — a process-context work-queueing thread and a
   deterministic timer interrupt, both on the family's primary backing
   device, so the irq-safety analysis always sees [wb.work_lock] from
   both contexts. Fault sites are forced to exactly the seeded
   ground-truth set ([bugs = true]) or silenced entirely
   ([bugs = false]); the clean baseline therefore contains none of the
   deliberate Tab. 5/7/8 deviations either. *)
let sanitize_run ?(seed = 7) ?(scale = 1) ?control ~bugs ~twins name =
  if bugs then Seeded.activate () else Seeded.quiesce ();
  let config =
    { Kernel.default_config with seed; hardirq_rate = 0.; softirq_rate = 0. }
  in
  let trace, _cov =
    Kernel.run ~config ?control ~layouts:Structs.all (fun () ->
        Kernel.spawn "init" (fun () ->
            let env = Workloads.setup_env () in
            (* Baseline init-context accesses to the seeded superblock
               members, mirroring mount's unlocked field set-up (which
               the importer's init filter drops from the real mount
               path): gives each lockset state machine a first writer
               in another flow to race against. *)
            List.iter
              (fun sb ->
                Memory.write sb.Obj.sb_inst "s_dirt" 0;
                Memory.write sb.Obj.sb_inst "s_maxbytes" max_int;
                Memory.write sb.Obj.sb_inst "s_blocksize" 4096;
                Memory.write sb.Obj.sb_inst "s_blocksize_bits" 12;
                Memory.write sb.Obj.sb_inst "s_time_gran" 1)
              (Workloads.all_sbs env);
            let sb =
              match name with
              | "fs_bench" | "symlink" -> env.Workloads.ext4
              | "fsstress" -> env.Workloads.tmpfs
              | "fs_inod" -> env.Workloads.rootfs
              | "pipe" -> env.Workloads.pipefs
              | "device" -> env.Workloads.bdevfs
              | other -> invalid_arg ("Run.sanitize_trace: unknown " ^ other)
            in
            let bdi = sb.Obj.s_bdi in
            let rng = Kernel.prng () in
            let remaining = ref 0 in
            let worker wname body =
              incr remaining;
              let task_rng = Prng.split rng in
              Kernel.spawn wname (fun () ->
                  body task_rng;
                  decr remaining)
            in
            Kernel.register_hardirq "timer" (fun () ->
                if not env.Workloads.shutting_down then
                  Bdi.wakeup_flusher_irq bdi);
            let family_small =
              match name with
              | "fs_bench" ->
                  worker "fs-bench" (fun r ->
                      Workloads.fs_bench env r (20 * scale));
                  fun r -> Workloads.fs_bench env r (6 * scale)
              | "fsstress" ->
                  (* fsstress reaches a tmpfs write only ~1 iteration in
                     24, so a given seed can miss mm/shmem.c's write
                     path — and its seeded site — entirely. Pinned tmpfs
                     writes interleaved through each flow's body make
                     the family's coverage and the seeded ground truth
                     seed-independent, and guarantee that whenever one
                     flow sits at the site, every other live flow still
                     has a conflicting write ahead of it for a directed
                     schedule to reach. *)
                  let stress r n =
                    let shmem_touch () =
                      let inode = Vfs_inode.iget env.Workloads.tmpfs 2001 in
                      env.Workloads.tmpfs.Obj.fs.Obj.fs_ops.Obj.op_write inode
                        1024;
                      Vfs_inode.iput inode
                    in
                    let chunk = max 1 (n / 3) in
                    let rec go left =
                      shmem_touch ();
                      if left > 0 then begin
                        Workloads.fsstress env r (min chunk left);
                        go (left - chunk)
                      end
                    in
                    go n
                  in
                  worker "fsstress" (fun r -> stress r (30 * scale));
                  fun r -> stress r (10 * scale)
              | "fs_inod" ->
                  worker "fs_inod" (fun r ->
                      Workloads.fs_inod env r (25 * scale));
                  fun r -> Workloads.fs_inod env r (8 * scale)
              | "pipe" ->
                  let pipe_inode = Vfs_inode.iget env.Workloads.pipefs 6500 in
                  worker "pipe-writer" (fun r ->
                      Workloads.pipe_writer pipe_inode r (15 * scale));
                  worker "pipe-reader" (fun r ->
                      Workloads.pipe_reader pipe_inode r (15 * scale));
                  incr remaining;
                  Kernel.spawn "pipe-put" (fun () ->
                      Kernel.wait_until "pipe drained" (fun () ->
                          !remaining = 1);
                      Vfs_inode.iput pipe_inode;
                      decr remaining);
                  fun r -> Workloads.pipe_writer pipe_inode r (5 * scale)
              | "symlink" ->
                  worker "symlink" (fun r ->
                      Workloads.symlink_bench env r (10 * scale));
                  fun r -> Workloads.symlink_bench env r (4 * scale)
              | "device" ->
                  worker "devices" (fun r ->
                      Workloads.device_bench env r (8 * scale));
                  fun r -> Workloads.device_bench env r (3 * scale)
              | _ -> assert false
            in
            (* Conflict twins for directed replay: two extra flows that
               re-execute a small slice of the family workload plus an
               inode get/put churn on the family superblock. Every
               suspicious access thus has a second (and third) flow
               performing the same accesses on the same shared
               instances — the designated conflicting flows a directed
               schedule can switch to. *)
            if twins then begin
              let twin r =
                family_small r;
                for k = 1 to 6 * scale do
                  let inode = Vfs_inode.iget sb (9300 + (k mod 4)) in
                  Kernel.preempt_point ();
                  Vfs_inode.iput inode
                done
              in
              worker (name ^ "-replay-a") twin;
              worker (name ^ "-replay-b") twin
            end;
            worker "wb-queue" (fun _ ->
                for _ = 1 to 6 * scale do
                  Bdi.wb_queue_work bdi
                done);
            worker "irq-ticker" (fun _ ->
                for _ = 1 to 12 * scale do
                  Kernel.raise_hardirq ();
                  Kernel.preempt_point ()
                done);
            Kernel.wait_until "workload completion" (fun () -> !remaining = 0);
            Workloads.teardown_env env))
  in
  let truth = Seeded.ground_truth () in
  Fault.reset ();
  (trace, truth)

let sanitize_trace ?seed ?scale ~bugs name =
  sanitize_run ?seed ?scale ~bugs ~twins:false name

let replay_trace ?seed ?scale ?control ~bugs name =
  sanitize_run ?seed ?scale ?control ~bugs ~twins:true name

let quick ?(seed = 7) () =
  let config =
    {
      kernel = { Kernel.default_config with seed; hardirq_rate = 0.; softirq_rate = 0. };
      scale = 1;
      faults = true;
    }
  in
  fst (benchmark_mix ~config ())
