module Prng = Lockdoc_util.Prng

type config = { kernel : Kernel.config; scale : int; faults : bool }

let default_config = { kernel = Kernel.default_config; scale = 4; faults = true }

let benchmark_mix ?(config = default_config) () =
  Fault.set_enabled config.faults;
  let n = config.scale in
  Kernel.run ~config:config.kernel ~layouts:Structs.all (fun () ->
      Kernel.spawn "init" (fun () ->
          let env = Workloads.setup_env () in
          let rng = Kernel.prng () in
          let remaining = ref 0 in
          let worker name body =
            incr remaining;
            let task_rng = Prng.split rng in
            Kernel.spawn name (fun () ->
                body task_rng;
                decr remaining)
          in
          (* Interrupt sources: lock-free peeks guarded by the shutdown
             flag so they never touch freed objects. *)
          Kernel.register_hardirq "timer" (fun () ->
              if not env.Workloads.shutting_down then
                Bdi.wakeup_flusher_irq env.Workloads.ext4.Obj.s_bdi);
          Kernel.register_softirq "block" (fun () ->
              if not env.Workloads.shutting_down then
                match env.Workloads.ext4.Obj.s_journal with
                | Some j -> Jbd2.commit_timer_kick j
                | None -> ());
          (* The pipe pair shares one pipefs inode. *)
          let pipe_inode = Vfs_inode.iget env.Workloads.pipefs 6500 in
          worker "fs-bench-test2" (fun r -> Workloads.fs_bench env r (40 * n));
          worker "fsstress-1" (fun r -> Workloads.fsstress env r (60 * n));
          worker "fsstress-2" (fun r -> Workloads.fsstress env r (60 * n));
          worker "fs_inod" (fun r -> Workloads.fs_inod env r (50 * n));
          worker "pipe-writer" (fun r -> Workloads.pipe_writer pipe_inode r (30 * n));
          worker "pipe-reader" (fun r -> Workloads.pipe_reader pipe_inode r (30 * n));
          worker "symlink" (fun r -> Workloads.symlink_bench env r (15 * n));
          worker "perms" (fun r -> Workloads.perms_bench env r (25 * n));
          worker "devices" (fun r -> Workloads.device_bench env r (12 * n));
          worker "pseudo" (fun r -> Workloads.pseudo_bench env r (20 * n));
          worker "flusher" (fun r -> Workloads.flusher env r (8 * n));
          Kernel.wait_until "benchmark completion" (fun () -> !remaining = 0);
          Vfs_inode.iput pipe_inode;
          Workloads.teardown_env env))

let workload_names =
  [ "fs_bench"; "fsstress"; "fs_inod"; "pipe"; "symlink"; "device" ]

let workload_trace ?(seed = 7) ?(scale = 1) name =
  Fault.set_enabled true;
  let config =
    { Kernel.default_config with seed; hardirq_rate = 0.; softirq_rate = 0. }
  in
  let trace, _cov =
    Kernel.run ~config ~layouts:Structs.all (fun () ->
        Kernel.spawn "init" (fun () ->
            let env = Workloads.setup_env () in
            let rng = Kernel.prng () in
            let remaining = ref 0 in
            let worker wname body =
              incr remaining;
              let task_rng = Prng.split rng in
              Kernel.spawn wname (fun () ->
                  body task_rng;
                  decr remaining)
            in
            (match name with
            | "fs_bench" ->
                worker "fs-bench" (fun r -> Workloads.fs_bench env r (20 * scale))
            | "fsstress" ->
                worker "fsstress" (fun r -> Workloads.fsstress env r (30 * scale))
            | "fs_inod" ->
                worker "fs_inod" (fun r -> Workloads.fs_inod env r (25 * scale))
            | "pipe" ->
                let pipe_inode = Vfs_inode.iget env.Workloads.pipefs 6500 in
                worker "pipe-writer" (fun r ->
                    Workloads.pipe_writer pipe_inode r (15 * scale));
                worker "pipe-reader" (fun r ->
                    Workloads.pipe_reader pipe_inode r (15 * scale));
                incr remaining;
                Kernel.spawn "pipe-put" (fun () ->
                    Kernel.wait_until "pipe drained" (fun () -> !remaining = 1);
                    Vfs_inode.iput pipe_inode;
                    decr remaining)
            | "symlink" ->
                worker "symlink" (fun r ->
                    Workloads.symlink_bench env r (10 * scale))
            | "device" ->
                worker "devices" (fun r ->
                    Workloads.device_bench env r (8 * scale))
            | other -> invalid_arg ("Run.workload_trace: unknown " ^ other));
            Kernel.wait_until "workload completion" (fun () -> !remaining = 0);
            Workloads.teardown_env env))
  in
  trace

let quick ?(seed = 7) () =
  let config =
    {
      kernel = { Kernel.default_config with seed; hardirq_rate = 0.; softirq_rate = 0. };
      scale = 1;
      faults = true;
    }
  in
  fst (benchmark_mix ~config ())
