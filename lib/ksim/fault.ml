type site = {
  s_name : string;
  mutable period : int;
  mutable declared : int;  (* the period passed at declaration *)
  mutable visits : int;
  mutable fired : int;
}

let registry : (string, site) Hashtbl.t = Hashtbl.create 32
let enabled = ref true

let () =
  Kernel.add_boot_hook (fun () ->
      Hashtbl.iter
        (fun _ s ->
          s.visits <- 0;
          s.fired <- 0)
        registry)

let site ?period name =
  let s =
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
        let s =
          { s_name = name; period = 0; declared = 0; visits = 0; fired = 0 }
        in
        Hashtbl.replace registry name s;
        s
  in
  (match period with
  | Some p ->
      s.period <- p;
      s.declared <- p
  | None -> ());
  s

let fire s =
  s.visits <- s.visits + 1;
  if !enabled && s.period > 0 && s.visits mod s.period = 0 then begin
    s.fired <- s.fired + 1;
    true
  end
  else false

let set_period name p = (Hashtbl.find registry name).period <- p

let set_enabled b = enabled := b

let reset () =
  Hashtbl.iter
    (fun _ s ->
      s.period <- s.declared;
      s.visits <- 0;
      s.fired <- 0)
    registry;
  enabled := true

let with_period name p body =
  let s = site name in
  let saved = s.period in
  s.period <- p;
  Fun.protect ~finally:(fun () -> s.period <- saved) body

let sorted f =
  Hashtbl.fold (fun _ s acc -> f s :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sites () = sorted (fun s -> (s.s_name, s.period))

let fired_counts () = sorted (fun s -> (s.s_name, s.fired))
