module Event = Lockdoc_trace.Event
module Srcloc = Lockdoc_trace.Srcloc
module Trace = Lockdoc_trace.Trace
module Prng = Lockdoc_util.Prng

(* {2 Structured scheduler halts}

   A run that cannot finish halts with a machine-readable snapshot of
   every control flow instead of a pre-rendered string: deadlock (no
   flow runnable, at least one blocked) and budget exhaustion (the
   livelock guard) are distinct conditions, and budget diagnostics must
   say which flows were still runnable when the axe fell. *)

type flow_state = Fl_runnable | Fl_blocked of string | Fl_finished

type flow = { fl_pid : int; fl_name : string; fl_state : flow_state }

type halt = {
  h_deadlock : bool;  (** [true]: every live flow blocked; [false]: budget *)
  h_steps : int;  (** scheduler iterations consumed *)
  h_budget : int;  (** the configured [max_steps] *)
  h_flows : flow list;  (** every spawned flow, in pid order *)
}

exception Deadlock of halt
exception Stuck of halt
exception Sleep_in_atomic of string

let describe_flow f =
  Printf.sprintf "%s(%d): %s" f.fl_name f.fl_pid
    (match f.fl_state with
    | Fl_runnable -> "runnable"
    | Fl_blocked reason -> "blocked on " ^ reason
    | Fl_finished -> "finished")

let describe_halt h =
  let live = List.filter (fun f -> f.fl_state <> Fl_finished) h.h_flows in
  Printf.sprintf "%s after %d step(s) (budget %d): %s"
    (if h.h_deadlock then "deadlock — no flow runnable"
     else "scheduler step budget exhausted")
    h.h_steps h.h_budget
    (if live = [] then "no live flows"
     else String.concat "; " (List.map describe_flow live))

let () =
  Printexc.register_printer (function
    | Deadlock h -> Some ("Kernel.Deadlock: " ^ describe_halt h)
    | Stuck h -> Some ("Kernel.Stuck: " ^ describe_halt h)
    | _ -> None)

type config = {
  seed : int;
  hardirq_rate : float;
  softirq_rate : float;
  max_steps : int;
}

let default_config =
  { seed = 42; hardirq_rate = 0.002; softirq_rate = 0.004; max_steps = 50_000_000 }

type _ Effect.t += Yield : unit Effect.t
type _ Effect.t += Wait : (string * (unit -> bool)) -> unit Effect.t

type frames = (Source.fn * int ref) list

type task_state =
  | New of (unit -> unit)
  | Ready of (unit -> unit)
  | Blocked of string * (unit -> bool) * (unit -> unit)
  | Finished

type task = {
  pid : int;
  t_name : string;
  mutable st : task_state;
  mutable frames : frames;
}

(* {2 Schedule control}

   The replay engine drives a run through three hooks: [ctl_on_access]
   fires before every data-member access (with the access resolved to
   (type, member) and the would-be source location), [ctl_on_event]
   taps the instrumentation bus, and [ctl_pick] overrides the
   scheduler's seeded choice. The hooks run synchronously inside the
   simulation, so they may call {!preempt_now} (directed switch) or
   {!raise_hardirq} (directed interrupt) at the exact point of
   interest. *)

type access_view = {
  av_type : string;
  av_subclass : string option;
  av_member : string;
  av_ptr : int;  (** absolute member address *)
  av_kind : Event.access_kind;
  av_loc : Srcloc.t;  (** the location the access is about to emit *)
  av_pid : int;
  av_in_irq : bool;
  av_preempt_off : bool;
  av_irq_off : bool;
  av_stack : string list;  (** function scopes, innermost first *)
}

type control = {
  ctl_on_access : access_view -> unit;
  ctl_on_event : Event.t -> unit;
  ctl_pick : flow list -> int option;
      (** [None] defers to the seeded scheduler; a pid that is not
          runnable also falls back to the seeded choice. *)
}

let null_control =
  {
    ctl_on_access = (fun _ -> ());
    ctl_on_event = (fun _ -> ());
    ctl_pick = (fun _ -> None);
  }

type run = {
  cfg : config;
  ctl : control;
  sink : Trace.sink;
  rng : Prng.t;
  cov : Source.coverage;
  mutable tasks : task list;
  mutable hardirqs : (string * (unit -> unit)) list;
  mutable softirqs : (string * (unit -> unit)) list;
  mutable cur : task option;
  mutable irq_frames : frames;  (** frame stack while in IRQ context *)
  mutable in_irq : bool;
  mutable preempt_count : int;
  mutable irq_off : bool;
  mutable bh_off : bool;
  mutable last_emitted_pid : int;
  mutable next_pid : int;
  mutable steps : int;
}

let boot_hooks : (unit -> unit) list ref = ref []

let add_boot_hook f = boot_hooks := f :: !boot_hooks

let the_run : run option ref = ref None

let run_exn () =
  match !the_run with
  | Some r -> r
  | None -> failwith "Kernel: no run in progress"

(* {2 Instrumentation bus} *)

let emit ev =
  let r = run_exn () in
  Trace.emit r.sink ev;
  if r.ctl != null_control then r.ctl.ctl_on_event ev

let prng () = (run_exn ()).rng

let in_irq () = (run_exn ()).in_irq

let current_pid () =
  let r = run_exn () in
  if r.in_irq then -1 else match r.cur with Some t -> t.pid | None -> 0

let cur_frames r = if r.in_irq then r.irq_frames else
  match r.cur with Some t -> t.frames | None -> []

let set_cur_frames r frames =
  if r.in_irq then r.irq_frames <- frames
  else match r.cur with Some t -> t.frames <- frames | None -> ()

let debug_frames () = cur_frames (run_exn ())

let here () =
  let r = run_exn () in
  match cur_frames r with
  | [] -> Srcloc.none
  | (fn, cursor) :: _ ->
      incr cursor;
      let line = fn.Source.fn_start + (!cursor mod fn.Source.fn_span) in
      Source.mark_line r.cov fn line;
      Srcloc.make fn.Source.fn_file line

(* The location {!here} would return next, without advancing the cursor
   or marking coverage: breakpoint views must name the access's source
   location before deciding whether to preempt there. *)
let peek_loc () =
  let r = run_exn () in
  match cur_frames r with
  | [] -> Srcloc.none
  | (fn, cursor) :: _ ->
      let line = fn.Source.fn_start + ((!cursor + 1) mod fn.Source.fn_span) in
      Srcloc.make fn.Source.fn_file line

let fn_scope ~file ~span name body =
  let r = run_exn () in
  let fn = Source.declare ~file ~span name in
  Source.mark_enter r.cov fn;
  let loc = Srcloc.make fn.Source.fn_file fn.Source.fn_start in
  emit (Event.Fun_enter { fn = name; loc });
  set_cur_frames r ((fn, ref 0) :: cur_frames r);
  let finish () =
    (match cur_frames r with
    | _ :: rest -> set_cur_frames r rest
    | [] -> ());
    emit (Event.Fun_exit { fn = name })
  in
  match body () with
  | result ->
      finish ();
      result
  | exception e ->
      finish ();
      raise e

(* {2 Preemption / masking} *)

let preempt_disable () =
  let r = run_exn () in
  r.preempt_count <- r.preempt_count + 1

let preempt_enable () =
  let r = run_exn () in
  assert (r.preempt_count > 0);
  r.preempt_count <- r.preempt_count - 1

let preempt_disabled () = (run_exn ()).preempt_count > 0

(* Masking interrupts is modelled as taking a pseudo-lock (like the
   hardirq/softirq context locks of paper Sec. 7.1): the irq-safety
   analysis needs to see, per member access and per lock acquisition,
   whether interrupts were enabled at that point. Only transitions emit
   events, so nested disable/enable pairs stay balanced. *)
let irqoff_lock_ptr = 0x30
let bhoff_lock_ptr = 0x40

let emit_mask_acquire lock_ptr lock_name =
  emit
    (Event.Lock_acquire
       {
         lock_ptr;
         kind = Event.Pseudo;
         side = Event.Exclusive;
         name = lock_name;
         loc = here ();
       })

let emit_mask_release lock_ptr =
  emit (Event.Lock_release { lock_ptr; loc = here () })

let local_irq_disable () =
  let r = run_exn () in
  if not r.irq_off then begin
    r.irq_off <- true;
    emit_mask_acquire irqoff_lock_ptr "irqoff"
  end

let local_irq_enable () =
  let r = run_exn () in
  if r.irq_off then begin
    emit_mask_release irqoff_lock_ptr;
    r.irq_off <- false
  end

let local_bh_disable () =
  let r = run_exn () in
  if not r.bh_off then begin
    r.bh_off <- true;
    emit_mask_acquire bhoff_lock_ptr "bhoff"
  end

let local_bh_enable () =
  let r = run_exn () in
  if r.bh_off then begin
    emit_mask_release bhoff_lock_ptr;
    r.bh_off <- false
  end

let preempt_point () =
  let r = run_exn () in
  if (not r.in_irq) && r.preempt_count = 0 then Effect.perform Yield

(* Forced preemption for the schedule controller: yields if kernel
   discipline allows it and reports whether a switch was possible. A
   flow in irq context or under preempt_disable cannot be switched out,
   exactly as at an ordinary preemption point. *)
let preempt_now () =
  let r = run_exn () in
  if r.in_irq || r.preempt_count > 0 then false
  else begin
    Effect.perform Yield;
    true
  end

let flow_of_task t =
  {
    fl_pid = t.pid;
    fl_name = t.t_name;
    fl_state =
      (match t.st with
      | New _ | Ready _ -> Fl_runnable
      | Blocked (reason, pred, _) ->
          if pred () then Fl_runnable else Fl_blocked reason
      | Finished -> Fl_finished);
  }

let flows () = List.map flow_of_task (run_exn ()).tasks

(* The breakpoint site: Memory routes every data-member access through
   here (it knows the resolved (type, subclass, member), which the raw
   event stream does not), then falls through to an ordinary preemption
   point. The view is only materialised under an active controller. *)
let access_point ~ty ~subclass ~member ~ptr ~kind =
  let r = run_exn () in
  if r.ctl != null_control then
    r.ctl.ctl_on_access
      {
        av_type = ty;
        av_subclass = subclass;
        av_member = member;
        av_ptr = ptr;
        av_kind = kind;
        av_loc = peek_loc ();
        av_pid = current_pid ();
        av_in_irq = r.in_irq;
        av_preempt_off = r.preempt_count > 0;
        av_irq_off = r.irq_off;
        av_stack =
          List.map (fun (f, _) -> f.Source.fn_name) (cur_frames r);
      };
  preempt_point ()

let wait_until reason pred =
  let r = run_exn () in
  if r.in_irq then raise (Sleep_in_atomic ("irq handler blocks on " ^ reason));
  if r.preempt_count > 0 then
    raise (Sleep_in_atomic ("blocking on " ^ reason ^ " with preemption off"));
  if not (pred ()) then Effect.perform (Wait (reason, pred))

(* {2 Task and IRQ registration} *)

let spawn name body =
  let r = run_exn () in
  let pid = r.next_pid in
  r.next_pid <- pid + 1;
  r.tasks <- r.tasks @ [ { pid; t_name = name; st = New body; frames = [] } ]

let register_hardirq name body =
  let r = run_exn () in
  r.hardirqs <- r.hardirqs @ [ (name, body) ]

let register_softirq name body =
  let r = run_exn () in
  r.softirqs <- r.softirqs @ [ (name, body) ]

(* {2 Scheduler} *)

(* Pseudo-lock addresses for synthetic hardirq/softirq "locks"
   (paper Sec. 7.1). They live below the static-lock region. *)
let hardirq_lock_ptr = 0x10
let softirq_lock_ptr = 0x20

let irq_pid = function Event.Hardirq -> 1001 | Event.Softirq -> 2001 | Event.Task -> 0

let switch_to r pid kind =
  if r.last_emitted_pid <> pid then begin
    emit (Event.Ctx_switch { pid; kind });
    r.last_emitted_pid <- pid
  end

let run_irq r kind (name, handler) =
  let pid = irq_pid kind in
  let interrupted = cur_frames r in
  switch_to r pid
    (match kind with Event.Hardirq -> Event.Hardirq | _ -> Event.Softirq);
  r.in_irq <- true;
  r.irq_frames <- [];
  let lock_ptr, lock_name =
    match kind with
    | Event.Hardirq -> (hardirq_lock_ptr, "hardirq")
    | _ -> (softirq_lock_ptr, "softirq")
  in
  emit
    (Event.Lock_acquire
       {
         lock_ptr;
         kind = Event.Pseudo;
         side = Event.Exclusive;
         name = lock_name;
         loc = Srcloc.make ("kernel/" ^ name ^ ".c") 1;
       });
  let finish () =
    emit (Event.Lock_release { lock_ptr; loc = Srcloc.none });
    r.in_irq <- false;
    r.irq_frames <- [];
    ignore interrupted
  in
  (match handler () with
  | () -> finish ()
  | exception e ->
      finish ();
      raise e)

let maybe_inject_irqs r =
  if (not r.irq_off) && r.hardirqs <> [] && Prng.bernoulli r.rng r.cfg.hardirq_rate
  then run_irq r Event.Hardirq (Prng.pick_list r.rng r.hardirqs);
  if (not r.irq_off) && (not r.bh_off) && r.softirqs <> []
     && Prng.bernoulli r.rng r.cfg.softirq_rate
  then run_irq r Event.Softirq (Prng.pick_list r.rng r.softirqs)

(* Synchronous interrupt raising, used by deterministic workloads (the
   sanitizer traces tick a timer at fixed points instead of relying on
   the probabilistic injector). Runs every registered handler of the
   requested kind once, honouring the masking state, then restores
   event attribution to the interrupted task. *)
let raise_irq kind =
  let r = run_exn () in
  let masked =
    match kind with
    | Event.Hardirq -> r.irq_off
    | _ -> r.irq_off || r.bh_off
  in
  if (not r.in_irq) && not masked then begin
    let handlers =
      match kind with Event.Hardirq -> r.hardirqs | _ -> r.softirqs
    in
    List.iter (fun h -> run_irq r kind h) handlers;
    (* [run_irq] leaves [last_emitted_pid] at the irq pseudo-pid; the
       probabilistic injector relies on the subsequent [resume] to
       switch back, but a mid-task raise must restore it itself. *)
    match r.cur with
    | Some t -> switch_to r t.pid Event.Task
    | None -> ()
  end

let raise_hardirq () = raise_irq Event.Hardirq
let raise_softirq () = raise_irq Event.Softirq

let resume r task =
  r.cur <- Some task;
  switch_to r task.pid Event.Task;
  match task.st with
  | New body ->
      task.st <- Finished;
      (* Deep handler: every later effect of this task lands here. *)
      Effect.Deep.match_with
        (fun () -> body ())
        ()
        {
          retc = (fun () -> task.st <- Finished);
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      task.st <- Ready (fun () -> Effect.Deep.continue k ()))
              | Wait (reason, pred) ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      task.st <-
                        Blocked (reason, pred, fun () -> Effect.Deep.continue k ()))
              | _ -> None);
        }
  | Ready k ->
      task.st <- Finished;
      (* If the resumed continuation performs an effect, the deep handler
         installed at task start updates [task.st] before returning. *)
      k ()
  | Blocked (_, _, k) ->
      task.st <- Finished;
      k ()
  | Finished -> assert false

let runnable task =
  match task.st with
  | New _ | Ready _ -> true
  | Blocked (_, pred, _) -> pred ()
  | Finished -> false

let halt r ~deadlock =
  {
    h_deadlock = deadlock;
    h_steps = r.steps;
    h_budget = r.cfg.max_steps;
    h_flows = List.map flow_of_task r.tasks;
  }

let schedule r =
  let rec loop () =
    r.steps <- r.steps + 1;
    if r.steps > r.cfg.max_steps then raise (Stuck (halt r ~deadlock:false));
    match List.filter runnable r.tasks with
    | [] ->
        let any_blocked =
          List.exists
            (fun t -> match t.st with Blocked _ -> true | _ -> false)
            r.tasks
        in
        if any_blocked then raise (Deadlock (halt r ~deadlock:true))
    | candidates ->
        let task =
          let directed =
            if r.ctl == null_control then None
            else
              match r.ctl.ctl_pick (List.map flow_of_task r.tasks) with
              | None -> None
              | Some pid -> List.find_opt (fun t -> t.pid = pid) candidates
          in
          match directed with
          | Some t -> t
          | None -> Prng.pick_list r.rng candidates
        in
        maybe_inject_irqs r;
        resume r task;
        loop ()
  in
  loop ()

let run ?(config = default_config) ?(control = null_control) ~layouts setup =
  let r =
    {
      cfg = config;
      ctl = control;
      sink = Trace.sink ();
      rng = Prng.of_int config.seed;
      cov = Source.coverage ();
      tasks = [];
      hardirqs = [];
      softirqs = [];
      cur = None;
      irq_frames = [];
      in_irq = false;
      preempt_count = 0;
      irq_off = false;
      bh_off = false;
      last_emitted_pid = min_int;
      next_pid = 1;
      steps = 0;
    }
  in
  the_run := Some r;
  let finish () = the_run := None in
  match
    List.iter (fun hook -> hook ()) !boot_hooks;
    setup ();
    schedule r
  with
  | () ->
      let trace = Trace.finish ~layouts r.sink in
      finish ();
      (trace, r.cov)
  | exception e ->
      finish ();
      raise e

