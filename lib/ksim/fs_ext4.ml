(** ext4, the journaled filesystem of the evaluation (fs/ext4/*.c).

    Its write path drives the JBD2 substrate: every data-modifying
    operation runs inside a journal handle, files buffer heads on the
    running transaction, and marks metadata dirty. Two deliberate
    deviations reproduce paper findings:

    - a direct [i_blocks] store that skips [i_lock] every 15th update
      (keeps the documented "i_lock protects i_blocks" rule at ~93 %,
      Tab. 5);
    - an fsync fast path that peeks [j_committing_transaction] holding
      only the file's [i_rwsem] (the journal_t violation of Tab. 8,
      reported at fs/ext4/inode.c). *)

open Obj

let fn file span name body = Kernel.fn_scope ~file ~span name body

let blocks_nolock_fault = Fault.site ~period:15 "ext4_update_i_blocks_nolock"
let fsync_peek_fault = Fault.site ~period:12 "ext4_fsync_peek_committing"

(* Seeded ground-truth race (period 0 = off by default): a superblock
   field update without s_umount, racing mount's initialisation. *)
let seed_race_ext4_write = Fault.site ~period:0 "seed_race_ext4_write"

let journal_of sb =
  match sb.s_journal with
  | Some j -> j
  | None ->
      fn "fs/ext4/super.c" 34 "ext4_load_journal" @@ fun () ->
      let j = alloc_journal () in
      sb.s_journal <- Some j;
      j

(* Small executed helpers, so the fs/ext4 function coverage resembles the
   paper's Tab. 3 (43 % of functions reached). *)

let ext4_map_blocks inode =
  fn "fs/ext4/inode.c" 60 "ext4_map_blocks" @@ fun () ->
  ignore (Memory.read inode.i_inst "i_blkbits");
  ignore (Memory.read inode.i_inst "i_data.flags")

let ext4_mark_inode_dirty inode =
  fn "fs/ext4/inode.c" 26 "ext4_mark_inode_dirty" @@ fun () ->
  Vfs_inode.mark_inode_dirty inode

let ext4_getattr inode =
  fn "fs/ext4/inode.c" 14 "ext4_getattr" @@ fun () ->
  ignore (Memory.read inode.i_inst "i_generation")

let ext4_new_inode sb =
  fn "fs/ext4/ialloc.c" 40 "ext4_new_inode" @@ fun () ->
  let inode = Vfs_inode.new_inode sb in
  let journal = journal_of sb in
  let txn = Jbd2.journal_start journal in
  let bh = Buffer.bread (inode.i_inst.Memory.base land 0xffff) in
  let jh = Jbd2.journal_get_write_access txn bh in
  Lock.down_write inode.i_rwsem;
  Memory.write inode.i_inst "i_generation" 1;
  Memory.write inode.i_inst "i_flags" 0;
  Memory.write inode.i_inst "i_acl" 0;
  Memory.write inode.i_inst "i_default_acl" 0;
  Lock.up_write inode.i_rwsem;
  Jbd2.journal_dirty_metadata txn jh;
  Jbd2.journal_stop txn;
  Buffer.brelse bh;
  inode

let ext4_write inode n =
  fn "fs/ext4/file.c" 30 "ext4_file_write_iter" @@ fun () ->
  Lock.down_write inode.i_rwsem;
  let journal = journal_of inode.i_sb in
  let txn = Jbd2.journal_start journal in
  let bh = Buffer.bread (Memory.read inode.i_inst "i_ino" + 100) in
  let jh = Jbd2.journal_get_write_access txn bh in
  ext4_map_blocks inode;
  let size = Vfs_inode.i_size_read inode in
  Vfs_inode.i_size_write inode (size + n);
  Memory.modify inode.i_inst "i_data.nrpages" (fun p -> p + 1);
  Vfs_inode.file_update_time inode;
  Jbd2.journal_dirty_metadata txn jh;
  Jbd2.journal_stop txn;
  Lock.up_write inode.i_rwsem;
  Buffer.buffer_associate bh inode;
  Buffer.brelse bh;
  if Fault.fire blocks_nolock_fault then
    (* ext4's raw i_blocks update path (no i_lock). *)
    Vfs_inode.set_blocks_nolock inode ((size + n) / 512)
  else Vfs_inode.inode_add_bytes inode n;
  if Fault.fire seed_race_ext4_write then
    (* Seeded race: growing the file-size limit without s_umount. *)
    Memory.write inode.i_sb.sb_inst "s_maxbytes" max_int;
  ext4_mark_inode_dirty inode;
  Bdi.balance_dirty_pages inode.i_sb.s_bdi

let ext4_read inode =
  fn "fs/ext4/file.c" 14 "ext4_file_read_iter" @@ fun () ->
  Fs_common.generic_read inode;
  ext4_getattr inode;
  ignore (Memory.read inode.i_inst "i_flags")

let ext4_fsync inode =
  fn "fs/ext4/fsync.c" 24 "ext4_sync_file" @@ fun () ->
  Lock.down_read inode.i_rwsem;
  let journal = journal_of inode.i_sb in
  (* Peek at the committing transaction without j_state_lock — the
     paper's Tab. 8 journal_t violation (fs/ext4/inode.c:4685-shaped). *)
  if Fault.fire fsync_peek_fault then Jbd2.peek_committing_nolock journal;
  (* Flag a synchronous commit on the running transaction, lock-free as
     in the real ext4_sync_file. *)
  (match journal.Obj.j_running with
  | Some txn -> Memory.write txn.Obj.t_inst "t_synchronous_commit" 1
  | None -> ());
  Jbd2.wait_commit journal;
  Lock.up_read inode.i_rwsem

let ext4_setattr inode ~mode ~uid =
  fn "fs/ext4/inode.c" 36 "ext4_setattr" @@ fun () ->
  ignore mode;
  ignore uid;
  let journal = journal_of inode.i_sb in
  let txn = Jbd2.journal_start journal in
  let bh = Buffer.bread (Memory.read inode.i_inst "i_ino" + 200) in
  let jh = Jbd2.journal_get_write_access txn bh in
  Memory.modify inode.i_inst "i_version" (fun v -> v + 1);
  Jbd2.journal_dirty_metadata txn jh;
  Jbd2.journal_stop txn;
  Buffer.brelse bh

let ext4_truncate inode =
  fn "fs/ext4/inode.c" 44 "ext4_truncate" @@ fun () ->
  let journal = journal_of inode.i_sb in
  let txn = Jbd2.journal_start journal in
  let bh = Buffer.bread (Memory.read inode.i_inst "i_ino" + 300) in
  let jh = Jbd2.journal_get_write_access txn bh in
  Vfs_inode.i_size_write inode 0;
  Jbd2.journal_revoke journal (Memory.read inode.i_inst "i_ino");
  Jbd2.journal_forget txn jh;
  Jbd2.journal_stop txn;
  Buffer.brelse bh;
  Vfs_inode.inode_sub_bytes inode 4096

let ext4_evict inode =
  fn "fs/ext4/inode.c" 40 "ext4_evict_inode" @@ fun () ->
  Fs_common.generic_evict inode;
  let journal = journal_of inode.i_sb in
  let txn = Jbd2.journal_start journal in
  Jbd2.journal_revoke journal (Memory.read inode.i_inst "i_ino");
  Jbd2.journal_stop txn

let fstype =
  {
    fs_name = "ext4";
    fs_file = "fs/ext4/inode.c";
    fs_ops =
      {
        op_new_inode = ext4_new_inode;
        op_read = ext4_read;
        op_write = ext4_write;
        op_setattr = ext4_setattr;
        op_evict = ext4_evict;
      };
  }

(* Cold declarations: fs/ext4 coverage denominators (paper Tab. 3). *)
let () =
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"fs/ext4/inode.c" ~span name))
    [
      ("ext4_get_block", 24); ("ext4_da_get_block_prep", 30);
      ("ext4_writepage", 40); ("ext4_direct_IO", 44); ("ext4_iget", 70);
      ("ext4_write_inode", 24); ("ext4_punch_hole", 52);
      ("ext4_inode_attach_jinode", 16);
    ];
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"fs/ext4/super.c" ~span name))
    [
      ("ext4_put_super", 40); ("ext4_freeze", 18); ("ext4_unfreeze", 14);
      ("ext4_statfs", 26); ("ext4_commit_super", 30);
    ];
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"fs/ext4/namei.c" ~span name))
    [
      ("ext4_mkdir", 30); ("ext4_rmdir", 28); ("ext4_link", 20);
      ("ext4_rename", 70); ("ext4_add_entry", 40); ("dx_probe", 40);
    ];
  List.iter
    (fun (name, span) ->
      ignore (Source.declare ~file:"fs/ext4/ialloc.c" ~span name))
    [
      ("ext4_orphan_get", 24); ("find_group_orlov", 40);
    ]

(* ---- static skeletons (IR) ---------------------------------------- *)

let () =
  let open Skeleton in
  let reg = register ~subsystem:"ext4" in
  let irw = Smember { ty = "inode"; var = "i"; member = "i_rwsem" } in
  let r m = read_m "inode" "i" m in
  let w m = write_m "inode" "i" m in
  let bi = [ ("i", "i") ] in
  let bj = [ ("j", "j") ] in
  let bt = [ ("j", "j"); ("t", "t") ] in
  let bh = [ ("bh", "bh") ] in
  let bjh = [ ("t", "t"); ("bh", "bh"); ("jh", "jh") ] in
  let load_journal = opt (call ~binds:bj "ext4_load_journal") in
  reg "ext4_load_journal" (call "jbd2_journal_init_common");
  reg "ext4_map_blocks" (seq [ r "i_blkbits"; r "i_data.flags" ]);
  reg "ext4_mark_inode_dirty" (call ~binds:bi "__mark_inode_dirty");
  reg "ext4_getattr" (r "i_generation");
  reg "ext4_new_inode"
    (seq
       [
         call ~binds:[ ("sb", "sb") ] "new_inode"; load_journal;
         call ~binds:bj "jbd2_journal_start"; call ~binds:bh "__bread";
         call ~binds:bjh "jbd2_journal_get_write_access";
         down_write irw; w "i_generation"; w "i_flags"; w "i_acl";
         w "i_default_acl"; up_write irw;
         call ~binds:bjh "jbd2_journal_dirty_metadata";
         call ~binds:bt "jbd2_journal_stop"; call ~binds:bh "__brelse";
       ]);
  reg ~root:true "ext4_file_write_iter"
    (seq
       [
         down_write irw; load_journal; call ~binds:bj "jbd2_journal_start";
         r "i_ino"; call ~binds:bh "__bread";
         call ~binds:bjh "jbd2_journal_get_write_access";
         call ~binds:bi "ext4_map_blocks"; call ~binds:bi "i_size_read";
         call ~binds:bi "i_size_write"; modify_m "inode" "i" "i_data.nrpages";
         call ~binds:bi "file_update_time";
         call ~binds:bjh "jbd2_journal_dirty_metadata";
         call ~binds:bt "jbd2_journal_stop"; up_write irw;
         call ~binds:[ ("bh", "bh"); ("i", "i") ] "mark_buffer_dirty_inode";
         call ~binds:bh "__brelse";
         (* The raw flavour skips i_lock: keeps Tab. 5's i_blocks rule at
            ~93 %. *)
         alt
           [
             call ~binds:bi "inode_set_blocks_raw";
             call ~binds:bi "inode_add_bytes";
           ];
         (* Seeded ground-truth race: s_maxbytes without s_umount. *)
         opt (write_m "super_block" "i.sb" "s_maxbytes");
         call ~binds:bi "ext4_mark_inode_dirty";
         call ~binds:[ ("bdi", "bdi") ] "balance_dirty_pages";
       ]);
  reg ~root:true "ext4_file_read_iter"
    (seq
       [
         call ~binds:bi "generic_file_read_iter"; call ~binds:bi "ext4_getattr";
         r "i_flags";
       ]);
  (* The lock-free committing peek is the Tab. 8 journal_t violation. *)
  reg ~root:true "ext4_sync_file"
    (seq
       [
         down_read irw; load_journal;
         opt (call ~binds:bj "jbd2_peek_committing");
         opt (write_m "transaction_t" "t" "t_synchronous_commit");
         call ~binds:bj "jbd2_log_wait_commit"; up_read irw;
       ]);
  reg "ext4_setattr"
    (seq
       [
         load_journal; call ~binds:bj "jbd2_journal_start"; r "i_ino";
         call ~binds:bh "__bread";
         call ~binds:bjh "jbd2_journal_get_write_access";
         modify_m "inode" "i" "i_version";
         call ~binds:bjh "jbd2_journal_dirty_metadata";
         call ~binds:bt "jbd2_journal_stop"; call ~binds:bh "__brelse";
       ]);
  reg ~root:true "ext4_truncate"
    (seq
       [
         load_journal; call ~binds:bj "jbd2_journal_start"; r "i_ino";
         call ~binds:bh "__bread";
         call ~binds:bjh "jbd2_journal_get_write_access";
         call ~binds:bi "i_size_write"; r "i_ino";
         call ~binds:bj "jbd2_journal_revoke";
         call ~binds:bjh "jbd2_journal_forget";
         call ~binds:bt "jbd2_journal_stop"; call ~binds:bh "__brelse";
         call ~binds:bi "inode_sub_bytes";
       ]);
  reg "ext4_evict_inode"
    (seq
       [
         call ~binds:bi "truncate_inode_pages_final"; load_journal;
         call ~binds:bj "jbd2_journal_start"; r "i_ino";
         call ~binds:bj "jbd2_journal_revoke"; call ~binds:bt "jbd2_journal_stop";
       ])
