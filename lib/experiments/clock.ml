(** Tab. 1 and Tab. 2: the shared-clock example of paper Sec. 4.

    Both tables come from one trace of the {!Lockdoc_ksim.Clock_example}
    workload: 1000 correct ticks plus one carry that forgot [min_lock]. *)

module Tablefmt = Lockdoc_util.Tablefmt
module Event = Lockdoc_trace.Event
module Schema = Lockdoc_db.Schema
module Store = Lockdoc_db.Store
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Rule = Lockdoc_core.Rule
module Hypothesis = Lockdoc_core.Hypothesis

type pipeline = { store : Store.t; dataset : Dataset.t }

let pipeline () =
  let trace = Lockdoc_ksim.Clock_example.run () in
  let store, _stats = Import.run trace in
  { store; dataset = Dataset.of_store store }

(* Classify a transaction of the clock trace: a = (sec_lock), b =
   (sec_lock -> min_lock). *)
let txn_class store txn_id =
  let txn = Store.txn store txn_id in
  let names =
    List.map
      (fun h -> (Store.lock store h.Schema.h_lock).Schema.lk_name)
      txn.Schema.tx_locks
  in
  match names with
  | [ "sec_lock" ] -> Some `A
  | [ "sec_lock"; "min_lock" ] -> Some `B
  | _ -> None

(* Raw per-transaction access counts for the last carry tick: the b
   transaction and the enclosing a transaction it nests in. *)
let representative_counts p =
  let accesses = Store.accesses_of_type p.store "clock" in
  (* Transactions of class b, in trace order, and the a transaction each
     nests in (the latest a opened before it). *)
  let b_txns =
    List.filter_map (fun a -> a.Schema.ac_txn) accesses
    |> List.sort_uniq compare
    |> List.filter (fun id -> txn_class p.store id = Some `B)
  in
  match List.rev b_txns with
  | [] -> invalid_arg "clock trace contains no carry transaction"
  | b :: _ ->
      let a_of_b =
        List.filter_map (fun acc -> acc.Schema.ac_txn) accesses
        |> List.sort_uniq compare
        |> List.filter (fun id -> id < b && txn_class p.store id = Some `A)
        |> List.fold_left max (-1)
      in
      let count txn member kind =
        List.length
          (List.filter
             (fun acc ->
               acc.Schema.ac_txn = Some txn
               && acc.Schema.ac_member = member
               && acc.Schema.ac_kind = kind)
             accesses)
      in
      (count a_of_b, count b)

let render_tab1 p =
  let count_a, count_b = representative_counts p in
  let table =
    Tablefmt.create
      ~header:
        [ "Variable"; "Access"; "Obs a"; "Obs b"; "Fold a"; "Fold b";
          "WoR a"; "WoR b" ]
  in
  Tablefmt.set_align table
    [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right;
      Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ];
  let fold n = min n 1 in
  List.iter
    (fun member ->
      let ra = count_a member Event.Read and wa = count_a member Event.Write in
      let rb = count_b member Event.Read and wb = count_b member Event.Write in
      (* Write-over-read: a folded read is suppressed when the same
         transaction also wrote the variable. *)
      let wor_r n_r n_w = if fold n_w = 1 then 0 else fold n_r in
      List.iter
        (fun (kind, oa, ob, fa, fb, worA, worB) ->
          Tablefmt.add_row table
            [
              member; kind; string_of_int oa; string_of_int ob;
              string_of_int fa; string_of_int fb; string_of_int worA;
              string_of_int worB;
            ])
        [
          ("r", ra, rb, fold ra, fold rb, wor_r ra wa, wor_r rb wb);
          ("w", wa, wb, fold wa, fold wb, fold wa, fold wb);
        ])
    [ "seconds"; "minutes" ];
  "Table 1 — clock-example accesses by transaction (Observed / Folded / WoR)\n"
  ^ Tablefmt.render table

let render_tab2 p =
  let observations =
    Dataset.by_member p.dataset "clock" ~member:"minutes" ~kind:Rule.W
  in
  let scored = Hypothesis.enumerate_exhaustive observations in
  (* Order as in the paper's Tab. 2: #0 no lock, then by notation. *)
  let ordered =
    List.sort
      (fun a b ->
        Int.compare (List.length a.Hypothesis.rule) (List.length b.Hypothesis.rule)
        |> function
        | 0 -> Rule.compare a.Hypothesis.rule b.Hypothesis.rule
        | c -> c)
      scored
  in
  let table = Tablefmt.create ~header:[ "ID"; "Locking Hypothesis"; "sa"; "sr" ] in
  Tablefmt.set_align table
    [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right ];
  List.iteri
    (fun i s ->
      let rule_str =
        if Rule.equal s.Hypothesis.rule Rule.no_lock then "no lock needed"
        else Rule.to_string s.Hypothesis.rule
      in
      Tablefmt.add_row table
        [
          Printf.sprintf "#%d" i;
          rule_str;
          string_of_int s.Hypothesis.support.Hypothesis.sa;
          Printf.sprintf "%.2f%%" (100. *. s.Hypothesis.support.Hypothesis.sr);
        ])
    ordered;
  Printf.sprintf
    "Table 2 — hypotheses for writes to `minutes' (%d observations)\n%s"
    (List.length observations) (Tablefmt.render table)

let render () =
  let p = pipeline () in
  render_tab1 p ^ "\n\n" ^ render_tab2 p

let render_tab1_only () = render_tab1 (pipeline ())
let render_tab2_only () = render_tab2 (pipeline ())
