module Run = Lockdoc_ksim.Run
module Kernel = Lockdoc_ksim.Kernel
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Violation = Lockdoc_core.Violation
module Obs = Lockdoc_obs.Obs

type t = {
  config : Run.config;
  trace : Lockdoc_trace.Trace.t;
  coverage : Lockdoc_ksim.Source.coverage;
  store : Lockdoc_db.Store.t;
  import_stats : Import.stats;
  dataset : Dataset.t;
  mined : Derivator.mined list;
  violations : Violation.violation list;
  timings : (string * Obs.Clock.t) list;
}

(* [Sys.time] is process CPU time: with [jobs > 1] it sums the work of
   every domain and overstates a phase by up to the job count. Measure
   wall and CPU separately and report both. *)
let timed name f timings =
  let result, dt =
    Obs.Span.time ("context/" ^ name) (fun () -> Obs.Clock.timed f)
  in
  (result, (name, dt) :: timings)

let create ?(scale = 8) ?(seed = 42) ?(jobs = 1) () =
  let config =
    {
      Run.kernel = { Kernel.default_config with Kernel.seed };
      Run.scale = scale;
      Run.faults = true;
    }
  in
  let (trace, coverage), timings =
    timed "tracing" (fun () -> Run.benchmark_mix ~config ()) []
  in
  let (store, import_stats), timings =
    timed "import" (fun () -> Import.run trace) timings
  in
  let dataset, timings =
    timed "observations" (fun () -> Dataset.of_store store) timings
  in
  let mined, timings =
    timed "derivation" (fun () -> Derivator.derive_all ~jobs dataset) timings
  in
  let violations, timings =
    timed "counterexamples" (fun () -> Violation.find ~jobs dataset mined) timings
  in
  { config; trace; coverage; store; import_stats; dataset; mined; violations;
    timings = List.rev timings }

let mined_for t key =
  List.filter (fun m -> m.Derivator.m_type = key) t.mined

(* {2 Per-workload-family pipelines} *)

type family = {
  w_name : string;
  w_trace : Lockdoc_trace.Trace.t;
  w_groups : int;
  w_mined : Derivator.mined list;
  w_violations : Violation.violation list;
}

let analyse_family (name, trace) =
  (* Phase spans are shared across families (bounded cardinality); the
     snapshot shows aggregate count/wall/cpu per phase. *)
  let store, _ = Obs.Span.time "families/import" (fun () -> Import.run trace) in
  let dataset =
    Obs.Span.time "families/observations" (fun () -> Dataset.of_store store)
  in
  (* Worker-local pipeline: each family owns its store, so the analysis
     inside a worker stays sequential (no nested pools). *)
  let mined =
    Obs.Span.time "families/derive" (fun () -> Derivator.derive_all dataset)
  in
  let violations =
    Obs.Span.time "families/violations" (fun () -> Violation.find dataset mined)
  in
  {
    w_name = name;
    w_trace = trace;
    w_groups = List.length mined;
    w_mined = mined;
    w_violations = violations;
  }

let families ?(seed = 11) ?scale ?(jobs = 1) () =
  (* Trace generation stays on the calling domain: the simulated kernel
     holds global state (static locks, the current run, fault sites), so
     only one simulation may run per process. Everything downstream of
     the trace is per-family-private and fans out. *)
  let traces =
    List.map
      (fun name -> (name, Run.workload_trace ~seed ?scale name))
      Run.workload_names
  in
  Lockdoc_util.Pool.map ~jobs analyse_family traces
