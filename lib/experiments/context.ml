module Run = Lockdoc_ksim.Run
module Kernel = Lockdoc_ksim.Kernel
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Violation = Lockdoc_core.Violation

type t = {
  config : Run.config;
  trace : Lockdoc_trace.Trace.t;
  coverage : Lockdoc_ksim.Source.coverage;
  store : Lockdoc_db.Store.t;
  import_stats : Import.stats;
  dataset : Dataset.t;
  mined : Derivator.mined list;
  violations : Violation.violation list;
  timings : (string * float) list;
}

let timed name f timings =
  let t0 = Sys.time () in
  let result = f () in
  let dt = Sys.time () -. t0 in
  (result, (name, dt) :: timings)

let create ?(scale = 8) ?(seed = 42) () =
  let config =
    {
      Run.kernel = { Kernel.default_config with Kernel.seed };
      Run.scale = scale;
      Run.faults = true;
    }
  in
  let (trace, coverage), timings =
    timed "tracing" (fun () -> Run.benchmark_mix ~config ()) []
  in
  let (store, import_stats), timings =
    timed "import" (fun () -> Import.run trace) timings
  in
  let dataset, timings =
    timed "observations" (fun () -> Dataset.of_store store) timings
  in
  let mined, timings =
    timed "derivation" (fun () -> Derivator.derive_all dataset) timings
  in
  let violations, timings =
    timed "counterexamples" (fun () -> Violation.find dataset mined) timings
  in
  { config; trace; coverage; store; import_stats; dataset; mined; violations;
    timings = List.rev timings }

let mined_for t key =
  List.filter (fun m -> m.Derivator.m_type = key) t.mined
