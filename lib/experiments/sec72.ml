(** Sec. 7.2: tracing and derivation statistics — event volumes, lock
    population, and per-phase runtimes. *)

module Import = Lockdoc_db.Import

let render (ctx : Context.t) =
  let s = ctx.Context.import_stats in
  let timing name =
    match List.assoc_opt name ctx.Context.timings with
    | Some c ->
        Printf.sprintf "%.2f s wall (%.2f s cpu)" c.Lockdoc_obs.Obs.Clock.wall
          c.Lockdoc_obs.Obs.Clock.cpu
    | None -> "-"
  in
  String.concat "\n"
    [
      "Sec. 7.2 — tracing and locking-rule derivation statistics";
      Printf.sprintf "recorded events:          %d" s.Import.total_events;
      Printf.sprintf "  locking operations:     %d" s.Import.lock_ops;
      Printf.sprintf "  memory accesses:        %d (%d after filtering)"
        s.Import.mem_accesses s.Import.accesses_kept;
      Printf.sprintf "  allocations:            %d" s.Import.allocations;
      Printf.sprintf "  deallocations:          %d" s.Import.frees;
      Printf.sprintf "distinct locks:           %d (%d static, %d embedded)"
        (s.Import.locks_static + s.Import.locks_embedded)
        s.Import.locks_static s.Import.locks_embedded;
      Printf.sprintf "transactions:             %d" s.Import.txns;
      Printf.sprintf "filtered accesses:        %d init/teardown+helpers, %d \
                      black-listed members, %d lock/atomic members"
        s.Import.filtered_fn s.Import.filtered_member s.Import.filtered_kind;
      Printf.sprintf "phase runtimes: tracing %s, import %s, observations %s, \
                      derivation %s, counterexample extraction %s"
        (timing "tracing") (timing "import") (timing "observations")
        (timing "derivation") (timing "counterexamples");
      Printf.sprintf "rule-violating observations: %d"
        (List.length ctx.Context.violations);
      "(paper, full-scale: 27.4M events, 41 589 locks — 821 static + 40 768 \
       embedded; tracing 34 min, derivation 3.02 s)";
    ]
