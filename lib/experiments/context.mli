(** Shared experiment context: one benchmark-mix run, imported and
    analysed, reused by every table/figure that needs trace data.

    Building a context runs the full pipeline of the paper's Fig. 5 —
    tracing (phase ❶), import/filtering, rule derivation (phase ❷) — and
    records per-phase timings (wall clock and CPU time, separately —
    CPU time alone double-counts parallel phases) for the Sec. 7.2
    statistics. *)

type t = {
  config : Lockdoc_ksim.Run.config;
  trace : Lockdoc_trace.Trace.t;
  coverage : Lockdoc_ksim.Source.coverage;
  store : Lockdoc_db.Store.t;
  import_stats : Lockdoc_db.Import.stats;
  dataset : Lockdoc_core.Dataset.t;
  mined : Lockdoc_core.Derivator.mined list;  (** tac = 0.9 winners *)
  violations : Lockdoc_core.Violation.violation list;
      (** the paper's "counterexample extraction" output *)
  timings : (string * Lockdoc_obs.Obs.Clock.t) list;
      (** phase name, elapsed wall/cpu seconds *)
}

val create : ?scale:int -> ?seed:int -> ?jobs:int -> unit -> t
(** Defaults: scale 8 (a few hundred thousand events), seed 42, jobs 1.
    [jobs > 1] runs derivation and counterexample extraction on that
    many domains; the context is bit-identical either way. *)

val mined_for : t -> string -> Lockdoc_core.Derivator.mined list
(** Mined rules of one type key. *)

(** {2 Per-workload-family pipelines} *)

type family = {
  w_name : string;
  w_trace : Lockdoc_trace.Trace.t;
  w_groups : int;  (** derivation groups, i.e. mined rules *)
  w_mined : Lockdoc_core.Derivator.mined list;
  w_violations : Lockdoc_core.Violation.violation list;
}

val analyse_family : string * Lockdoc_trace.Trace.t -> family
(** Import + derive + scan one named trace, sequentially. *)

val families : ?seed:int -> ?scale:int -> ?jobs:int -> unit -> family list
(** One isolated pipeline per benchmark family
    ({!Lockdoc_ksim.Run.workload_names}). Trace generation runs on the
    calling domain — the simulated kernel holds process-global state —
    but each family's import/derive/scan pipeline is private to its
    trace, so with [jobs > 1] the pipelines fan out across domains.
    Output order and contents do not depend on [jobs]. *)
