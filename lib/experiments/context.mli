(** Shared experiment context: one benchmark-mix run, imported and
    analysed, reused by every table/figure that needs trace data.

    Building a context runs the full pipeline of the paper's Fig. 5 —
    tracing (phase ❶), import/filtering, rule derivation (phase ❷) — and
    records per-phase wall-clock timings for the Sec. 7.2 statistics. *)

type t = {
  config : Lockdoc_ksim.Run.config;
  trace : Lockdoc_trace.Trace.t;
  coverage : Lockdoc_ksim.Source.coverage;
  store : Lockdoc_db.Store.t;
  import_stats : Lockdoc_db.Import.stats;
  dataset : Lockdoc_core.Dataset.t;
  mined : Lockdoc_core.Derivator.mined list;  (** tac = 0.9 winners *)
  violations : Lockdoc_core.Violation.violation list;
      (** the paper's "counterexample extraction" output *)
  timings : (string * float) list;  (** phase name, seconds *)
}

val create : ?scale:int -> ?seed:int -> unit -> t
(** Defaults: scale 8 (a few hundred thousand events), seed 42. *)

val mined_for : t -> string -> Lockdoc_core.Derivator.mined list
(** Mined rules of one type key. *)
