(** Tab. 7: summary of locking-rule violations per data type. *)

module Tablefmt = Lockdoc_util.Tablefmt
module Violation = Lockdoc_core.Violation

let violations (ctx : Context.t) = ctx.Context.violations

let render (ctx : Context.t) =
  let violations = violations ctx in
  let table =
    Tablefmt.create ~header:[ "Data Type"; "Events"; "Members"; "Contexts" ]
  in
  Tablefmt.set_align table
    [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ];
  let total_events = ref 0 and total_contexts = ref 0 in
  List.iter
    (fun key ->
      let s = Violation.summarise violations key in
      total_events := !total_events + s.Violation.vs_events;
      total_contexts := !total_contexts + s.Violation.vs_contexts;
      Tablefmt.add_row table
        [
          key;
          string_of_int s.Violation.vs_events;
          string_of_int s.Violation.vs_members;
          string_of_int s.Violation.vs_contexts;
        ])
    (Lockdoc_core.Dataset.type_keys ctx.Context.dataset);
  Printf.sprintf
    "Table 7 — locking-rule violations (total: %d events at %d contexts)\n%s\n\
     (paper: 52 452 events at 986 contexts; buffer_head dominates)"
    !total_events !total_contexts (Tablefmt.render table)
