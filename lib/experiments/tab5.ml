(** Tab. 5: detailed check results for the documented struct inode
    rules. *)

module Tablefmt = Lockdoc_util.Tablefmt
module Checker = Lockdoc_core.Checker
module Rule = Lockdoc_core.Rule

let verdict_symbol = function
  | Checker.Correct -> "OK"
  | Checker.Ambivalent -> "~"
  | Checker.Incorrect -> "X"
  | Checker.Unobserved -> "-"

let render (ctx : Context.t) =
  let checked =
    Tab4.check_all ctx
    |> List.filter (fun c ->
           c.Checker.c_type = "inode" && c.Checker.c_verdict <> Checker.Unobserved)
    |> List.sort (fun a b ->
           Float.compare b.Checker.c_support.Lockdoc_core.Hypothesis.sr
             a.Checker.c_support.Lockdoc_core.Hypothesis.sr)
  in
  let table =
    Tablefmt.create ~header:[ "Member"; "r/w"; "Locking Rule"; "sr"; "OK?" ]
  in
  List.iter
    (fun c ->
      Tablefmt.add_row table
        [
          c.Checker.c_member;
          Rule.access_to_string c.Checker.c_kind;
          Rule.to_string c.Checker.c_rule;
          Printf.sprintf "%.2f%%"
            (100. *. c.Checker.c_support.Lockdoc_core.Hypothesis.sr);
          verdict_symbol c.Checker.c_verdict;
        ])
    checked;
  "Table 5 — documented rules for struct inode, checked against the trace\n"
  ^ Tablefmt.render table
  ^ "\n(paper: i_bytes w 100, i_state w 100, i_hash w 98.1, i_blocks w 93.56, \
     i_lru r 50.6, i_lru w 50.39, i_state r 19.78, i_size r/w 0, i_hash r 0, \
     i_blocks r 0)"
