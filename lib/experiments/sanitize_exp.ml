(** Sanitizer experiment: seeded-bug recovery per workload family.

    For every family, two sanitizer runs — seeded ground-truth bugs on,
    then the clean baseline — scored against {!Lockdoc_ksim.Seeded}:
    races and irq-unsafe paths found/missed, false positives on both
    traces. A third, directed-replay pass triages every finding
    (lockset, violation scanner, irq analysis) into confirmed — with an
    interleaving witness — or refuted with a machine-checked reason.
    The acceptance bar is total recall at zero false positives, and
    post-triage precision 1.0. *)

module Tablefmt = Lockdoc_util.Tablefmt
module Run = Lockdoc_ksim.Run
module Sanitize = Lockdoc_sanitizer.Sanitize
module Crossval = Lockdoc_sanitizer.Crossval
module Replay = Lockdoc_sanitizer.Replay

let render () =
  let table =
    Tablefmt.create
      ~header:
        [
          "Family"; "Seeded races"; "Found"; "Missed"; "FP";
          "Seeded irq"; "Found"; "Clean FP"; "Confirmed"; "Refuted";
        ]
  in
  Tablefmt.set_align table
    [
      Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
      Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
      Tablefmt.Right; Tablefmt.Right;
    ];
  let t_races = ref 0 and t_found = ref 0 and t_missed = ref 0 in
  let t_fp = ref 0 and t_clean_fp = ref 0 in
  let t_confirmed = ref 0 and t_refuted = ref 0 in
  let post_precision_ok = ref true in
  List.iter
    (fun family ->
      let seeded = Sanitize.run ~bugs:true family in
      let clean = Sanitize.run ~bugs:false family in
      let replay = Replay.run ~bugs:true family in
      let r = seeded.Sanitize.s_crossval.Crossval.races in
      let irq = seeded.Sanitize.s_crossval.Crossval.irq in
      let clean_fp =
        List.length clean.Sanitize.s_races
        + List.length clean.Sanitize.s_irq.Lockdoc_sanitizer.Irq.i_unsafe
      in
      let confirmed, refuted =
        List.fold_left
          (fun (c, f) (o : Replay.outcome) ->
            match o.Replay.o_verdict with
            | Replay.Confirmed _ -> (c + 1, f)
            | Replay.Refuted _ -> (c, f + 1))
          (0, 0) replay.Replay.r_outcomes
      in
      if
        replay.Replay.r_races_post.Crossval.cv_precision < 1.0
        || replay.Replay.r_irq_post.Crossval.cv_precision < 1.0
      then post_precision_ok := false;
      t_races := !t_races + r.Crossval.cv_tp + r.Crossval.cv_fn;
      t_found := !t_found + r.Crossval.cv_tp;
      t_missed := !t_missed + r.Crossval.cv_fn;
      t_fp := !t_fp + r.Crossval.cv_fp + irq.Crossval.cv_fp;
      t_clean_fp := !t_clean_fp + clean_fp;
      t_confirmed := !t_confirmed + confirmed;
      t_refuted := !t_refuted + refuted;
      Tablefmt.add_row table
        [
          family;
          string_of_int (r.Crossval.cv_tp + r.Crossval.cv_fn);
          string_of_int r.Crossval.cv_tp;
          string_of_int r.Crossval.cv_fn;
          string_of_int (r.Crossval.cv_fp + irq.Crossval.cv_fp);
          string_of_int (irq.Crossval.cv_tp + irq.Crossval.cv_fn);
          string_of_int irq.Crossval.cv_tp;
          string_of_int clean_fp;
          string_of_int confirmed;
          string_of_int refuted;
        ])
    Run.workload_names;
  Printf.sprintf
    "Sanitizer — seeded-bug recovery per workload family\n%s\n\
     %d/%d seeded races found (%d missed), %d false positives seeded, \
     %d on clean traces\n\
     replay triage: %d finding(s) confirmed with witnesses, %d refuted; \
     post-triage precision %s\n\
     (acceptance: total recall, zero false positives on every family, \
     post-triage precision 1.0)"
    (Tablefmt.render table) !t_found !t_races !t_missed !t_fp !t_clean_fp
    !t_confirmed !t_refuted
    (if !post_precision_ok then "1.00 on every family" else "BELOW 1.0")
