(** Ablation studies for the design choices DESIGN.md calls out:
    IRQ handling during transaction reconstruction, write-over-read
    folding, the winner-selection strategy, and subclass-aware
    derivation. Each returns a printable report over the shared context's
    trace. *)

module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Rule = Lockdoc_core.Rule
module Selection = Lockdoc_core.Selection
module Derivator = Lockdoc_core.Derivator
module Tablefmt = Lockdoc_util.Tablefmt

let winners mined =
  List.map
    (fun (m : Derivator.mined) ->
      ( (m.Derivator.m_type, m.Derivator.m_member, m.Derivator.m_kind),
        Rule.to_string m.Derivator.m_winner ))
    mined

let diff_count a b =
  List.fold_left
    (fun acc (key, wa) ->
      match List.assoc_opt key b with
      | Some wb when wb <> wa -> acc + 1
      | Some _ | None -> acc)
    0 a

(* {2 IRQ handling: paper-style inheritance vs clean-slate handlers} *)

let render_irq (ctx : Context.t) =
  let store_sep, _ = Import.run ~irq_mode:Import.Separate ctx.Context.trace in
  let mined_sep = Derivator.derive_all (Dataset.of_store store_sep) in
  let inherit_winners = winners ctx.Context.mined in
  let separate_winners = winners mined_sep in
  let pseudo_rules ws =
    List.length
      (List.filter
         (fun (_, w) ->
           let has sub =
             let nl = String.length sub and hl = String.length w in
             let rec go i = i + nl <= hl && (String.sub w i nl = sub || go (i + 1)) in
             go 0
           in
           has "hardirq" || has "softirq")
         ws)
  in
  Printf.sprintf
    "Ablation: IRQ handling in transaction reconstruction\n\
     inherit (paper): %d mined rules, %d mentioning pseudo-IRQ locks\n\
     separate:        %d mined rules, %d mentioning pseudo-IRQ locks\n\
     winners that change between modes: %d"
    (List.length inherit_winners)
    (pseudo_rules inherit_winners)
    (List.length separate_winners)
    (pseudo_rules separate_winners)
    (diff_count inherit_winners separate_winners)

(* {2 Write-over-read folding} *)

let render_wor (ctx : Context.t) =
  let store = Dataset.store ctx.Context.dataset in
  let mined_off = Derivator.derive_all (Dataset.of_store ~wor:false store) in
  let on = winners ctx.Context.mined and off = winners mined_off in
  let rules_of kind ws =
    List.length (List.filter (fun ((_, _, k), _) -> k = kind) ws)
  in
  Printf.sprintf
    "Ablation: write-over-read folding\n\
     WoR on  (paper): %d read rules, %d write rules\n\
     WoR off:         %d read rules, %d write rules\n\
     winners that change: %d\n\
     (without WoR, mixed read/write transactions pollute the read-side\n\
     evidence with writer-only lock sets)"
    (rules_of Rule.R on) (rules_of Rule.W on)
    (rules_of Rule.R off) (rules_of Rule.W off)
    (diff_count on off)

(* {2 Selection strategy} *)

let render_selection (ctx : Context.t) =
  let relocked strategy =
    List.map
      (fun (m : Derivator.mined) ->
        let w = Selection.select ~strategy ~tac:0.9 m.Derivator.m_hypotheses in
        ( (m.Derivator.m_type, m.Derivator.m_member, m.Derivator.m_kind),
          Rule.to_string w.Lockdoc_core.Hypothesis.rule ))
      ctx.Context.mined
  in
  let lockdoc = relocked Selection.Lockdoc in
  let naive = relocked Selection.Naive in
  let nolock ws = List.length (List.filter (fun (_, w) -> w = "nolock") ws) in
  Printf.sprintf
    "Ablation: winner-selection strategy (tac = 0.9)\n\
     lockdoc (lowest support in accepted group): %d no-lock winners of %d\n\
     naive (highest support):                    %d no-lock winners of %d\n\
     winners that differ: %d\n\
     (the naive strategy picks enclosing locks over the true nested rule —\n\
     see the clock example in the paper's Sec. 4.3)"
    (nolock lockdoc) (List.length lockdoc)
    (nolock naive) (List.length naive)
    (diff_count lockdoc naive)

(* {2 Subclass-aware derivation} *)

let render_subclass (ctx : Context.t) =
  let merged = Derivator.derive_merged ctx.Context.dataset "inode" in
  let merged_winner member kind =
    List.find_opt
      (fun m -> m.Derivator.m_member = member && m.Derivator.m_kind = kind)
      merged
  in
  let divergent = ref [] in
  List.iter
    (fun (m : Derivator.mined) ->
      let base =
        match String.index_opt m.Derivator.m_type ':' with
        | Some i -> String.sub m.Derivator.m_type 0 i
        | None -> m.Derivator.m_type
      in
      if base = "inode" then
        match merged_winner m.Derivator.m_member m.Derivator.m_kind with
        | Some g when not (Rule.equal g.Derivator.m_winner m.Derivator.m_winner) ->
            divergent :=
              (m.Derivator.m_type, m.Derivator.m_member,
               Rule.access_to_string m.Derivator.m_kind,
               Rule.to_string m.Derivator.m_winner,
               Rule.to_string g.Derivator.m_winner)
              :: !divergent
        | Some _ | None -> ())
    ctx.Context.mined;
  let table =
    Tablefmt.create
      ~header:[ "Subclass"; "Member"; "r/w"; "Subclass rule"; "Merged rule" ]
  in
  List.iteri
    (fun i (ty, member, kind, sub_rule, merged_rule) ->
      if i < 12 then Tablefmt.add_row table [ ty; member; kind; sub_rule; merged_rule ])
    (List.rev !divergent);
  Printf.sprintf
    "Ablation: subclass-aware derivation for struct inode\n\
     members whose per-subclass rule differs from the merged rule: %d\n%s"
    (List.length !divergent) (Tablefmt.render table)

(* {2 Reader/writer side sensitivity (extension beyond the paper)} *)

let render_sides (ctx : Context.t) =
  let store = Dataset.store ctx.Context.dataset in
  let mined_sides =
    Derivator.derive_all (Dataset.of_store ~side_sensitive:true store)
  in
  let plain = winners ctx.Context.mined and sided = winners mined_sides in
  let reader_rules =
    List.filter
      (fun (_, w) ->
        let has sub =
          let nl = String.length sub and hl = String.length w in
          let rec go i = i + nl <= hl && (String.sub w i nl = sub || go (i + 1)) in
          go 0
        in
        has "[r]")
      sided
  in
  let sample =
    match reader_rules with
    | ((ty, member, kind), w) :: _ ->
        Printf.sprintf "e.g. %s.%s (%s) mines %s" ty member
          (Rule.access_to_string kind) w
    | [] -> "none observed"
  in
  Printf.sprintf
    "Ablation: reader/writer side sensitivity (extension)\n\
     side-blind (paper): %d rules\n\
     side-aware:         %d rules, %d explicitly reader-side\n\
     winners that change: %d\n\
     %s\n\
     (the paper's model treats down_read and down_write as the same lock;\n\
     side-aware descriptors reveal which rules only need the shared side)"
    (List.length plain) (List.length sided) (List.length reader_rules)
    (diff_count plain sided) sample

(* {2 Corruption resilience} *)

let render_corruption (ctx : Context.t) =
  let module Trace = Lockdoc_trace.Trace in
  let module Check = Lockdoc_trace.Check in
  let module Corrupt = Lockdoc_trace.Corrupt in
  let lines = Trace.to_lines ctx.Context.trace in
  (* Strict vs lenient cost on the clean trace. Wall clock, not
     [Sys.time]: CPU time double-counts whenever domains are active. *)
  let time f = Lockdoc_obs.Obs.Clock.timed f in
  let _, t_strict = time (fun () -> Import.run ~mode:Import.Strict ctx.Context.trace) in
  let _, t_lenient =
    time (fun () -> Import.run ~mode:Import.Lenient ctx.Context.trace)
  in
  let _, t_check = time (fun () -> Check.run ctx.Context.trace) in
  let table =
    Tablefmt.create
      ~header:
        [ "Seed"; "Mutations"; "Reader"; "Stream"; "Import"; "Events kept" ]
  in
  Tablefmt.set_align table
    [ Tablefmt.Right; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right;
      Tablefmt.Right; Tablefmt.Right ];
  List.iter
    (fun seed ->
      let lines', ops = Corrupt.corrupt ~seed lines in
      let t, reader_diags = Trace.read_lines ~mode:Trace.Lenient lines' in
      let stream_diags = Check.run t in
      let _, stats = Import.run ~mode:Import.Lenient t in
      Tablefmt.add_row table
        [
          string_of_int seed;
          String.concat "; " (List.map Corrupt.describe ops);
          string_of_int (List.length reader_diags);
          string_of_int (List.length stream_diags);
          string_of_int (Import.anomaly_total stats);
          Printf.sprintf "%d/%d"
            (Array.length t.Lockdoc_trace.Trace.events)
            (Array.length ctx.Context.trace.Lockdoc_trace.Trace.events);
        ])
    [ 1; 2; 3; 4; 5 ];
  Printf.sprintf
    "Ablation: ingestion resilience under trace corruption\n\
     clean trace: strict import %.2fs, lenient import %.2fs, invariant \
     check %.2fs (wall)\n\
     anomalies recovered per corruption seed (lenient mode):\n%s"
    t_strict.Lockdoc_obs.Obs.Clock.wall t_lenient.Lockdoc_obs.Obs.Clock.wall
    t_check.Lockdoc_obs.Obs.Clock.wall (Tablefmt.render table)

(* {2 lockdep baseline comparison} *)

let render_lockdep (ctx : Context.t) =
  let report = Lockdoc_core.Lockdep.analyse (Dataset.store ctx.Context.dataset) in
  "Baseline: lockdep-style lock-order analysis (paper Sec. 3.2)\n"
  ^ Lockdoc_core.Lockdep.render report
  ^ "(lockdep validates acquisition order per class; it cannot say which\n\
     members a lock protects — the complementary question LockDoc answers)"

let render_all ctx =
  String.concat "\n\n"
    [
      render_irq ctx; render_wor ctx; render_selection ctx;
      render_subclass ctx; render_sides ctx; render_corruption ctx;
      render_lockdep ctx;
    ]
