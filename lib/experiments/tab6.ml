(** Tab. 6: summary of mined locking rules for the 11 data types and the
    inode subclasses — members, filtered members, generated rules, and
    "no lock" rules, split by read/write. *)

module Tablefmt = Lockdoc_util.Tablefmt
module Layout = Lockdoc_trace.Layout
module Filter = Lockdoc_db.Filter
module Derivator = Lockdoc_core.Derivator
module Rule = Lockdoc_core.Rule

let base_of key =
  match String.index_opt key ':' with
  | None -> key
  | Some i -> String.sub key 0 i

let excluded_members layout =
  let filter = Filter.default in
  List.filter
    (fun (m : Layout.member) ->
      m.Layout.m_kind = Layout.Lock
      || m.Layout.m_kind = Layout.Atomic
      || Filter.member_blacklisted filter ~ty:layout.Layout.ty_name
           ~member:m.Layout.m_name)
    layout.Layout.members

let row (ctx : Context.t) key =
  let layout =
    match Lockdoc_db.Store.layout_of_key ctx.Context.store key with
    | Some l -> l
    | None -> invalid_arg ("tab6: unknown type key " ^ key)
  in
  let mined = Context.mined_for ctx key in
  let count kind pred =
    List.length
      (List.filter (fun m -> m.Derivator.m_kind = kind && pred m) mined)
  in
  let always _ = true in
  ( key,
    List.length layout.Layout.members,
    List.length (excluded_members layout),
    count Rule.R always,
    count Rule.W always,
    count Rule.R Derivator.needs_no_lock,
    count Rule.W Derivator.needs_no_lock )

let render (ctx : Context.t) =
  let table =
    Tablefmt.create
      ~header:[ "Data Type"; "#M"; "#Bl"; "#Rules r"; "#Rules w"; "#Nl r"; "#Nl w" ]
  in
  Tablefmt.set_align table
    [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
      Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ];
  let keys =
    Lockdoc_core.Dataset.type_keys ctx.Context.dataset
    |> List.sort (fun a b ->
           (* Plain types first, then inode subclasses, alphabetically. *)
           compare (base_of a, a) (base_of b, b))
  in
  List.iter
    (fun key ->
      let key, m, bl, rr, rw, nr, nw = row ctx key in
      Tablefmt.add_row table
        [
          key; string_of_int m; string_of_int bl; string_of_int rr;
          string_of_int rw; string_of_int nr; string_of_int nw;
        ])
    keys;
  "Table 6 — mined locking rules per data type (tac = 0.9)\n"
  ^ Tablefmt.render table
