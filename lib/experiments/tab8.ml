(** Tab. 8: example rule violations with the context information the
    rule-violation finder hands the developer. *)

module Tablefmt = Lockdoc_util.Tablefmt
module Violation = Lockdoc_core.Violation
module Rule = Lockdoc_core.Rule
module Lockdesc = Lockdoc_core.Lockdesc
module Srcloc = Lockdoc_trace.Srcloc

(* The paper's three showcase rows: the inode hash mystery, the journal
   commit peek, and the libfs d_subdirs walk. *)
let showcases = [
  [ ("inode:ext4", "i_hash"); ("inode:rootfs", "i_hash") ];
  [ ("journal_t", "j_committing_transaction") ];
  [ ("dentry", "d_subdirs") ];
]

let held_to_string held =
  match held with
  | [] -> "(none)"
  | locks -> String.concat " -> " (List.map Lockdesc.to_string locks)

let pick violations candidates =
  List.find_map
    (fun (ty, member) ->
      List.find_opt
        (fun v -> v.Violation.v_type = ty && v.Violation.v_member = member)
        violations)
    candidates

let render (ctx : Context.t) =
  let violations = Tab7.violations ctx in
  let table =
    Tablefmt.create
      ~header:[ "Data Type/Member"; "Rule"; "Locks held"; "Location"; "Top frame" ]
  in
  let add v =
    Tablefmt.add_row table
      [
        Printf.sprintf "%s.%s" v.Violation.v_type v.Violation.v_member;
        Rule.to_string v.Violation.v_rule;
        held_to_string v.Violation.v_held;
        Srcloc.to_string v.Violation.v_loc;
        (match v.Violation.v_stack with frame :: _ -> frame | [] -> "?");
      ]
  in
  let shown =
    List.filter_map (pick violations) showcases
  in
  let shown =
    if shown <> [] then shown
    else
      (* Fall back to the first violation of three distinct types. *)
      let rec take_diverse seen acc = function
        | [] -> List.rev acc
        | v :: rest ->
            if List.length acc >= 3 then List.rev acc
            else if List.mem v.Violation.v_type seen then
              take_diverse seen acc rest
            else take_diverse (v.Violation.v_type :: seen) (v :: acc) rest
      in
      take_diverse [] [] violations
  in
  List.iter add shown;
  "Table 8 — locking-rule violation examples\n" ^ Tablefmt.render table
  ^ "\n(paper: inode:ext4.i_hash at fs/inode.c:507, journal_t.\
     j_committing_transaction at fs/ext4/inode.c:4685, dentry.d_subdirs at \
     fs/libfs.c:104)"
