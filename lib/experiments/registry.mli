(** Experiment registry: every table and figure of the paper's evaluation,
    addressable by id, sharing one lazily built {!Context}. *)

type experiment = {
  id : string;  (** "fig1", "tab5", … *)
  title : string;
  needs_context : bool;  (** false for fig1/tab1/tab2 (own pipelines) *)
  render : Context.t Lazy.t -> string;
}

val all : experiment list

val find : string -> experiment option

val ids : string list
