(** Static-lint experiment: the whole-program IR analyses per subsystem,
    cross-validated against the sanitizer's seeded ground truth.

    One lint run (the static side is trace-independent; the dynamic side
    uses the fs_bench trace) is broken down per IR subsystem: rule
    violations, unprotected writes, lock-order cycles touching the
    subsystem, sleep-in-atomic findings, and coverage gaps. Below the
    table, the acceptance checks: every race site the sanitizer
    dynamically confirms on any seeded family must appear in the static
    unprotected-write report, the seeded irq-unsafe class must be
    flagged by the static irq lint, and the dynamic lock-order graph
    must be fully explicable by the IR (zero dynamic-only edges). *)

module Tablefmt = Lockdoc_util.Tablefmt
module Run = Lockdoc_ksim.Run
module Seeded = Lockdoc_ksim.Seeded
module Lockdep = Lockdoc_core.Lockdep
module Summary = Lockdoc_static.Summary
module Lint = Lockdoc_static.Lint
module Sanitize = Lockdoc_sanitizer.Sanitize
module Lockset = Lockdoc_sanitizer.Lockset
module Irq = Lockdoc_sanitizer.Irq

let render () =
  let workload = "fs_bench" in
  let trace = Run.workload_trace workload in
  let r = Lint.run ~workload trace in
  let s = r.Lint.summary in
  let subsystems = Lockdoc_ksim.Skeleton.subsystems () in
  (* A cycle touches a subsystem when one of its edges is created by an
     acquisition site in that subsystem. *)
  let cycle_subs cycle =
    let pairs =
      match cycle with
      | [] -> []
      | first :: _ ->
          let rec go = function
            | [] -> []
            | [ last ] -> [ (last, first) ]
            | a :: (b :: _ as rest) -> (a, b) :: go rest
          in
          go cycle
    in
    List.concat_map
      (fun (f, t) ->
        List.concat_map
          (fun (e : Summary.sedge) ->
            if e.Summary.sd_from = f && e.Summary.sd_to = t then
              List.filter_map
                (fun fn ->
                  List.find_map
                    (fun (a : Summary.acq) ->
                      if a.Summary.aq_fn = fn then Some a.Summary.aq_subsystem
                      else None)
                    s.Summary.acquires)
                e.Summary.sd_fns
            else [])
          s.Summary.edges)
      pairs
    |> List.sort_uniq compare
  in
  let table =
    Tablefmt.create
      ~header:
        [ "Subsystem"; "Violations"; "Unprotected"; "Cycles"; "Sleep"; "Gaps" ]
  in
  Tablefmt.set_align table
    [
      Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
      Tablefmt.Right; Tablefmt.Right;
    ];
  List.iter
    (fun sub ->
      let count f l = List.length (List.filter f l) in
      Tablefmt.add_row table
        [
          sub;
          string_of_int
            (count
               (fun (v : Lint.violation) ->
                 v.Lint.v_site.Summary.st_subsystem = sub)
               r.Lint.violations);
          string_of_int
            (count
               (fun (u : Lint.unprotected) ->
                 u.Lint.u_site.Summary.st_subsystem = sub)
               r.Lint.unprotected);
          string_of_int
            (count (fun c -> List.mem sub (cycle_subs c)) s.Summary.cycles);
          string_of_int
            (count
               (fun (f : Summary.sleep_finding) ->
                 match
                   List.find_opt
                     (fun (fn : Lockdoc_ksim.Skeleton.fn) ->
                       fn.Lockdoc_ksim.Skeleton.sk_name = f.Summary.sl_fn)
                     (Lockdoc_ksim.Skeleton.all ())
                 with
                 | Some fn -> fn.Lockdoc_ksim.Skeleton.sk_subsystem = sub
                 | None -> false)
               s.Summary.sleeps);
          string_of_int
            (count
               (fun (g : Lint.gap) ->
                 List.mem sub (String.split_on_char ',' g.Lint.g_subsystem))
               r.Lint.gaps);
        ])
    subsystems;
  Tablefmt.add_rule table;
  Tablefmt.add_row table
    [
      "total";
      string_of_int (List.length r.Lint.violations);
      string_of_int (List.length r.Lint.unprotected);
      string_of_int (List.length s.Summary.cycles);
      string_of_int (List.length s.Summary.sleeps);
      string_of_int (List.length r.Lint.gaps);
    ];
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf
       "Static lint over the kernel IR (%d functions, %d IR nodes), dynamic \
        side: %s\n\n"
       s.Summary.functions s.Summary.ir_nodes workload);
  Buffer.add_string b (Tablefmt.render table);
  Buffer.add_string b "\n";
  (* Cross-validation 1: dynamically confirmed race sites, per seeded
     family, against the static unprotected-write report. *)
  let static_has (ty, member) =
    List.exists
      (fun (u : Lint.unprotected) ->
        u.Lint.u_site.Summary.st_ty = ty
        && u.Lint.u_site.Summary.st_member = member)
      r.Lint.unprotected
  in
  let confirmed = ref 0 and missed = ref [] in
  List.iter
    (fun family ->
      let seeded = Sanitize.run ~bugs:true family in
      List.iter
        (fun (race : Lockset.race) ->
          incr confirmed;
          if not (static_has (race.Lockset.r_type, race.Lockset.r_member))
          then
            missed :=
              (family, race.Lockset.r_type, race.Lockset.r_member) :: !missed)
        seeded.Sanitize.s_races)
    Run.workload_names;
  Buffer.add_string b
    (Printf.sprintf
       "dynamically confirmed race sites in static unprotected report: %d/%d%s\n"
       (!confirmed - List.length !missed)
       !confirmed
       (if !missed = [] then ""
        else
          " MISSED "
          ^ String.concat ", "
              (List.map
                 (fun (f, ty, m) -> Printf.sprintf "%s:%s.%s" f ty m)
                 !missed)));
  (* Cross-validation 2: the seeded irq-unsafe class. *)
  List.iter
    (fun (site, cls) ->
      let hit =
        List.exists
          (fun (f : Summary.irq_finding) ->
            Lockdep.class_to_string f.Summary.iq_class = cls)
          s.Summary.irq_unsafe
      in
      Buffer.add_string b
        (Printf.sprintf "seeded irq-unsafe %s (%s): %s\n" site cls
           (if hit then "flagged statically" else "MISSED")))
    Seeded.irq_sites;
  (* Cross-validation 3: dynamic order edges must be statically
     explicable. *)
  Buffer.add_string b
    (Printf.sprintf
       "lock order: %d dynamic edges confirmed, %d dynamic-only%s; %d/%d \
        dynamic cycles covered\n"
       r.Lint.order.Lint.oc_confirmed
       (List.length r.Lint.order.Lint.oc_dynamic_only)
       (if r.Lint.order.Lint.oc_dynamic_only = [] then ""
        else " (MODEL DRIFT)")
       r.Lint.order.Lint.oc_cycles_covered
       (r.Lint.order.Lint.oc_cycles_covered
       + List.length r.Lint.order.Lint.oc_cycles_uncovered));
  Buffer.contents b
