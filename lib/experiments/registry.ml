type experiment = {
  id : string;
  title : string;
  needs_context : bool;
  render : Context.t Lazy.t -> string;
}

let without_ctx f = fun (_ : Context.t Lazy.t) -> f ()

let with_ctx f = fun ctx -> f (Lazy.force ctx)

let all =
  [
    {
      id = "fig1";
      title = "Lock usage and LoC growth, Linux 3.0-4.18";
      needs_context = false;
      render = without_ctx Fig1.render;
    };
    {
      id = "tab1";
      title = "Clock example: observed/folded/WoR access matrix";
      needs_context = false;
      render = without_ctx Clock.render_tab1_only;
    };
    {
      id = "tab2";
      title = "Clock example: hypotheses for writes to `minutes'";
      needs_context = false;
      render = without_ctx Clock.render_tab2_only;
    };
    {
      id = "tab3";
      title = "Code coverage of the benchmark mix";
      needs_context = true;
      render = with_ctx Tab3.render;
    };
    {
      id = "sec72";
      title = "Tracing and derivation statistics";
      needs_context = true;
      render = with_ctx Sec72.render;
    };
    {
      id = "tab4";
      title = "Validation of documented locking rules";
      needs_context = true;
      render = with_ctx Tab4.render;
    };
    {
      id = "tab5";
      title = "Documented struct inode rules in detail";
      needs_context = true;
      render = with_ctx Tab5.render;
    };
    {
      id = "tab6";
      title = "Mined locking rules per data type";
      needs_context = true;
      render = with_ctx Tab6.render;
    };
    {
      id = "fig7";
      title = "No-lock fraction vs acceptance threshold";
      needs_context = true;
      render = with_ctx Fig7.render;
    };
    {
      id = "fig8";
      title = "Generated locking documentation for fs/inode.c";
      needs_context = true;
      render = with_ctx Fig8.render;
    };
    {
      id = "tab7";
      title = "Locking-rule violations per data type";
      needs_context = true;
      render = with_ctx Tab7.render;
    };
    {
      id = "tab8";
      title = "Locking-rule violation examples";
      needs_context = true;
      render = with_ctx Tab8.render;
    };
    {
      id = "sanitize";
      title = "Sanitizer: seeded-bug recovery per workload family";
      needs_context = false;
      render = without_ctx Sanitize_exp.render;
    };
    {
      id = "lint";
      title = "Static lint: IR analyses vs dynamic ground truth";
      needs_context = false;
      render = without_ctx Lint_exp.render;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids = List.map (fun e -> e.id) all
