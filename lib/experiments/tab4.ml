(** Tab. 4: summary of validated documented locking rules for the five
    relatively well-documented data types. *)

module Tablefmt = Lockdoc_util.Tablefmt
module Stats = Lockdoc_util.Stats
module Checker = Lockdoc_core.Checker
module Rule = Lockdoc_core.Rule
module Doc = Lockdoc_ksim.Documentation

let check_all (ctx : Context.t) =
  List.map
    (fun (dr : Doc.doc_rule) ->
      let kind = match dr.Doc.d_access with Doc.R -> Rule.R | Doc.W -> Rule.W in
      Checker.check_rule ctx.Context.dataset ~ty:dr.Doc.d_type
        ~member:dr.Doc.d_member ~kind
        (Rule.parse dr.Doc.d_rule))
    Doc.rules

let render (ctx : Context.t) =
  let checked = check_all ctx in
  let table =
    Tablefmt.create
      ~header:[ "Data Type"; "#R"; "#No"; "#Ob"; "correct %"; "ambiv. %"; "incorr. %" ]
  in
  Tablefmt.set_align table
    [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
      Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ];
  List.iter
    (fun ty ->
      let s = Checker.summarise checked ty in
      let pct n = Printf.sprintf "%.2f" (Stats.percentage n s.Checker.s_observed) in
      Tablefmt.add_row table
        [
          ty;
          string_of_int s.Checker.s_rules;
          string_of_int s.Checker.s_unobserved;
          string_of_int s.Checker.s_observed;
          pct s.Checker.s_correct;
          pct s.Checker.s_ambivalent;
          pct s.Checker.s_incorrect;
        ])
    Doc.checked_types;
  "Table 4 — validation of documented locking rules\n" ^ Tablefmt.render table
  ^ "\n(paper: inode 18.18/45.45/36.36, journal_head 56.52/17.39/26.09, \
     transaction_t 79.31/13.79/6.90, journal_t 56.67/33.33/10.00, dentry \
     27.27/63.64/9.09)"
