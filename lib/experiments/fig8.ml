(** Fig. 8: generated locking documentation for fs/inode.c — the
    documentation-generator output over the merged inode subclasses. *)

module Derivator = Lockdoc_core.Derivator
module Docgen = Lockdoc_core.Docgen
module Rule = Lockdoc_core.Rule

let render (ctx : Context.t) =
  let mined = Derivator.derive_merged ctx.Context.dataset "inode" in
  let writes = Docgen.generate ~kind:Rule.W ~title:"inode" mined in
  "Figure 8 — generated locking documentation for fs/inode.c (write rules)\n\n"
  ^ writes
