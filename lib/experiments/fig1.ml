(** Fig. 1: increase of lock usage and lines of code, Linux 3.0 → 4.18. *)

module Tablefmt = Lockdoc_util.Tablefmt
module Figure1 = Lockdoc_kstats.Figure1

let render () =
  let rows = Figure1.rows () in
  let table =
    Tablefmt.create
      ~header:
        [ "Version"; "LoC (scanned)"; "LoC (full-scale)"; "Spinlock"; "Mutex"; "RCU" ]
  in
  Tablefmt.set_align table
    [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
      Tablefmt.Right; Tablefmt.Right ];
  List.iter
    (fun (r : Figure1.row) ->
      Tablefmt.add_row table
        [
          r.Figure1.version;
          string_of_int r.Figure1.loc;
          string_of_int r.Figure1.loc_full;
          string_of_int r.Figure1.spinlock;
          string_of_int r.Figure1.mutex;
          string_of_int r.Figure1.rcu;
        ])
    rows;
  let g = Figure1.growth rows in
  String.concat "\n"
    [
      "Figure 1 — lock usage and LoC, v3.0..v4.18 (LoC 1:100, locks 1:10)";
      Tablefmt.render table;
      Printf.sprintf
        "growth v3.0 -> v4.18: LoC %+.0f%% (paper: +73%%), spinlock %+.0f%% \
         (paper: +45%%), mutex %+.0f%% (paper: +81%%), RCU %+.0f%%"
        g.Figure1.loc_pct g.Figure1.spinlock_pct g.Figure1.mutex_pct
        g.Figure1.rcu_pct;
    ]
