(** Fig. 7: fraction of "no lock" winning hypotheses as a function of the
    acceptance threshold tac, per data type, split by read/write.

    The hypothesis scores are reused from the context's mined results —
    only the winner selection depends on tac. *)

module Tablefmt = Lockdoc_util.Tablefmt
module Derivator = Lockdoc_core.Derivator
module Selection = Lockdoc_core.Selection
module Hypothesis = Lockdoc_core.Hypothesis
module Rule = Lockdoc_core.Rule
module Stats = Lockdoc_util.Stats

(* The ten data types of the paper's Fig. 7 (inode subclasses omitted
   for clarity, as in the paper). *)
let types =
  [
    "backing_dev_info"; "block_device"; "buffer_head"; "cdev"; "dentry";
    "journal_head"; "journal_t"; "pipe_inode_info"; "super_block";
    "transaction_t";
  ]

let thresholds = [ 0.70; 0.75; 0.80; 0.85; 0.90; 0.95; 1.00 ]

let nolock_fraction (ctx : Context.t) key kind tac =
  let mined =
    Context.mined_for ctx key
    |> List.filter (fun m -> m.Derivator.m_kind = kind)
  in
  if mined = [] then None
  else
    let nolock =
      List.filter
        (fun m ->
          let winner = Selection.select ~tac m.Derivator.m_hypotheses in
          Rule.equal winner.Hypothesis.rule Rule.no_lock)
        mined
    in
    Some (Stats.percentage (List.length nolock) (List.length mined))

let render_kind ctx kind =
  let table =
    Tablefmt.create
      ~header:
        ("Data Type"
        :: List.map (fun t -> Printf.sprintf "tac=%.2f" t) thresholds)
  in
  List.iter
    (fun key ->
      let cells =
        List.map
          (fun tac ->
            match nolock_fraction ctx key kind tac with
            | Some pct -> Printf.sprintf "%.0f%%" pct
            | None -> "-")
          thresholds
      in
      Tablefmt.add_row table (key :: cells))
    types;
  Tablefmt.render table

let render (ctx : Context.t) =
  String.concat "\n"
    [
      "Figure 7 — fraction of \"no lock\" winners vs acceptance threshold";
      "reads:";
      render_kind ctx Rule.R;
      "writes:";
      render_kind ctx Rule.W;
      "(paper: fractions level off near the 90% threshold; several types \
       never reach 100%)";
    ]
