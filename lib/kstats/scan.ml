type counts = {
  code_lines : int;
  spinlock_inits : int;
  mutex_inits : int;
  rcu_usages : int;
}

let zero = { code_lines = 0; spinlock_inits = 0; mutex_inits = 0; rcu_usages = 0 }

let add a b =
  {
    code_lines = a.code_lines + b.code_lines;
    spinlock_inits = a.spinlock_inits + b.spinlock_inits;
    mutex_inits = a.mutex_inits + b.mutex_inits;
    rcu_usages = a.rcu_usages + b.rcu_usages;
  }

let contains ~pattern line =
  let pl = String.length pattern and ll = String.length line in
  let rec go i = i + pl <= ll && (String.sub line i pl = pattern || go (i + 1)) in
  pl > 0 && go 0

(* mutex_init must not match spin_lock_init etc.; patterns are distinct
   enough that plain substring search is exact on this corpus, except
   that "raw_spin_lock_init" contains "spin_lock_init" — count the raw
   variant first and subtract. *)
let spin_patterns = [ "spin_lock_init"; "DEFINE_SPINLOCK" ]
let mutex_patterns = [ "mutex_init"; "DEFINE_MUTEX" ]
let rcu_patterns = [ "rcu_read_lock"; "call_rcu"; "synchronize_rcu" ]

let is_comment line =
  let t = String.trim line in
  String.length t >= 2 && (String.sub t 0 2 = "/*" || String.sub t 0 2 = "*/")
  || (String.length t >= 1 && t.[0] = '*')
  || (String.length t >= 2 && String.sub t 0 2 = "//")

let count_patterns patterns line =
  List.fold_left
    (fun acc pattern -> if contains ~pattern line then acc + 1 else acc)
    0 patterns

let scan_line line =
  if String.trim line = "" then zero
  else if is_comment line then zero
  else
    {
      code_lines = 1;
      spinlock_inits = count_patterns spin_patterns line;
      mutex_inits = count_patterns mutex_patterns line;
      rcu_usages = count_patterns rcu_patterns line;
    }

let scan_string content =
  String.split_on_char '\n' content
  |> List.fold_left (fun acc line -> add acc (scan_line line)) zero

let scan_files files =
  List.fold_left (fun acc f -> add acc (scan_string f.Gen.content)) zero files
