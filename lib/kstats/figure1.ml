type row = {
  version : string;
  loc : int;
  loc_full : int;
  spinlock : int;
  mutex : int;
  rcu : int;
}

let rows () =
  List.map
    (fun point ->
      let counts = Scan.scan_files (Gen.generate point) in
      {
        version = Model.version_to_string point.Model.version;
        loc = counts.Scan.code_lines;
        loc_full = counts.Scan.code_lines * Model.loc_scale;
        spinlock = counts.Scan.spinlock_inits;
        mutex = counts.Scan.mutex_inits;
        rcu = counts.Scan.rcu_usages;
      })
    Model.series

type growth = { loc_pct : float; spinlock_pct : float; mutex_pct : float; rcu_pct : float }

let pct first last =
  if first = 0 then 0.
  else 100. *. (float_of_int last -. float_of_int first) /. float_of_int first

let growth rows =
  match (rows, List.rev rows) with
  | first :: _, last :: _ ->
      {
        loc_pct = pct first.loc last.loc;
        spinlock_pct = pct first.spinlock last.spinlock;
        mutex_pct = pct first.mutex last.mutex;
        rcu_pct = pct first.rcu last.rcu;
      }
  | _ -> invalid_arg "Figure1.growth: empty series"
