(** Lock-usage scanner: the measuring instrument behind Fig. 1.

    Counts, over a source corpus, the calls to lock-related
    initialisation functions (cf. the paper: spinlock and mutex
    initialisers) plus RCU usages, and the number of code lines. The
    scanner is deliberately independent of the generator's bookkeeping —
    it lexes the text. *)

type counts = {
  code_lines : int;  (** non-empty, non-comment lines *)
  spinlock_inits : int;  (** [spin_lock_init], [raw_spin_lock_init],
                             [DEFINE_SPINLOCK] *)
  mutex_inits : int;  (** [mutex_init], [DEFINE_MUTEX] *)
  rcu_usages : int;  (** [rcu_read_lock], [call_rcu], [synchronize_rcu] *)
}

val zero : counts
val add : counts -> counts -> counts

val scan_string : string -> counts
val scan_files : Gen.file list -> counts
