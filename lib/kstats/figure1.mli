(** Figure 1 regeneration: generate the synthetic source history, run the
    scanner over each release, and report the lock-usage and LoC series
    with growth percentages. *)

type row = {
  version : string;
  loc : int;  (** scanned code lines (1:100 scale) *)
  loc_full : int;  (** extrapolated full-scale LoC *)
  spinlock : int;  (** scanned (1:10 scale) *)
  mutex : int;
  rcu : int;
}

val rows : unit -> row list

type growth = { loc_pct : float; spinlock_pct : float; mutex_pct : float; rcu_pct : float }

val growth : row list -> growth
(** First-to-last release growth percentages (the paper quotes
    mutex +81 %, spinlock +45 %, LoC +73 %). *)
