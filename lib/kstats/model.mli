(** Growth model behind the synthetic kernel-source history (paper
    Fig. 1: lock usage and LoC from Linux 3.0 to 4.18).

    Calibrated to the paper's reported deltas over the 7-year window:
    mutex initialisations +81 %, spinlock initialisations +45 % (with a
    slight dip in the last releases), LoC +73 %, and strong RCU growth.
    Counts are scaled for generation: LoC by 1:100 and lock-init counts
    by 1:10 (documented in DESIGN.md); the scanner output is reported in
    generated units together with the extrapolated full-scale values. *)

type version = { major : int; minor : int }

type point = {
  version : version;
  loc : int;  (** generated source lines (1:100 of the modelled kernel) *)
  spinlock_inits : int;  (** 1:10 scale *)
  mutex_inits : int;
  rcu_usages : int;
}

val versions : version list
(** The releases plotted in Fig. 1: v3.0, v3.5, v3.10, v3.15, v4.0, v4.5,
    v4.10, v4.15 and v4.18. *)

val version_to_string : version -> string

val point : version -> point
(** Modelled (scaled) values for a release. *)

val series : point list
(** {!point} over all {!versions}. *)

val loc_scale : int
val lock_scale : int
