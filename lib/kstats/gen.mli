(** Synthetic kernel-source generator.

    Produces a deterministic C-looking source tree for one modelled
    release, containing exactly the lock-initialisation calls and RCU
    usages the growth model prescribes, padded with function bodies and
    comments up to the target line count. The corpus stays in memory;
    the {!Scan} lexer is the "real" measuring instrument. *)

type file = { path : string; content : string }

val generate : Model.point -> file list
(** Deterministic for a given point. The total {e code} line count (as
    {!Scan} counts it) equals [point.loc], and pattern occurrences equal
    the modelled init counts. *)
