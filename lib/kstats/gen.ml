module Prng = Lockdoc_util.Prng

type file = { path : string; content : string }

let dirs =
  [|
    "fs"; "mm"; "kernel"; "drivers/block"; "drivers/net"; "drivers/char";
    "net/core"; "net/ipv4"; "sound/core"; "arch/x86/kernel";
  |]

(* Filler statements: look like C, contain no counted pattern. *)
let filler =
  [|
    "\tstruct list_head *pos;";
    "\tint ret = 0;";
    "\tif (unlikely(!ptr))";
    "\t\treturn -EINVAL;";
    "\tfor (i = 0; i < nr; i++)";
    "\t\ttotal += buf[i];";
    "\twake_up(&queue->wait);";
    "\tret = do_work(dev, flags);";
    "\tBUG_ON(count < 0);";
    "\tlist_del(&entry->node);";
    "\tkfree(obj);";
    "\treturn ret;";
  |]

let spin_sites rng =
  match Prng.int rng 3 with
  | 0 -> "\tspin_lock_init(&dev->lock);"
  | 1 -> "\traw_spin_lock_init(&rq->queue_lock);"
  | _ -> "static DEFINE_SPINLOCK(table_lock);"

let mutex_sites rng =
  match Prng.int rng 3 with
  | 0 -> "\tmutex_init(&dev->mutex);"
  | 1 -> "\tmutex_init(&priv->cfg_mutex);"
  | _ -> "static DEFINE_MUTEX(registry_mutex);"

let rcu_sites rng =
  match Prng.int rng 3 with
  | 0 -> "\trcu_read_lock();"
  | 1 -> "\tcall_rcu(&obj->rcu, free_object);"
  | _ -> "\tsynchronize_rcu();"

let generate (p : Model.point) =
  let rng =
    Prng.of_int ((p.Model.version.Model.major * 100) + p.Model.version.Model.minor)
  in
  let n_files = max 1 (p.Model.loc / 2500) in
  (* Distribute code lines and pattern sites over files. *)
  let base_lines = p.Model.loc / n_files in
  let per_file counts =
    let a = Array.make n_files 0 in
    for _ = 1 to counts do
      let i = Prng.int rng n_files in
      a.(i) <- a.(i) + 1
    done;
    a
  in
  let spin = per_file p.Model.spinlock_inits in
  let mutex = per_file p.Model.mutex_inits in
  let rcu = per_file p.Model.rcu_usages in
  List.init n_files (fun i ->
      let buf = Buffer.create (base_lines * 24) in
      let code_lines = ref 0 in
      let add line =
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        if String.trim line <> "" then incr code_lines
      in
      let comment () =
        Buffer.add_string buf "/* housekeeping for the subsystem below */\n"
      in
      (* Interleave pattern sites with filler, inside function bodies. *)
      let sites =
        List.concat
          [
            List.init spin.(i) (fun _ -> spin_sites rng);
            List.init mutex.(i) (fun _ -> mutex_sites rng);
            List.init rcu.(i) (fun _ -> rcu_sites rng);
          ]
      in
      let sites = Array.of_list sites in
      Prng.shuffle rng sites;
      let target = if i = n_files - 1 then
          (* last file absorbs the rounding remainder *)
          p.Model.loc - (base_lines * (n_files - 1))
        else base_lines
      in
      let site_idx = ref 0 in
      let fn_counter = ref 0 in
      while !code_lines < target do
        incr fn_counter;
        add (Printf.sprintf "static int helper_%d_%d(struct device *dev)" i !fn_counter);
        add "{";
        let body = 4 + Prng.int rng 8 in
        for _ = 1 to body do
          if !code_lines >= target - 2 then ()
          else if !site_idx < Array.length sites && Prng.bernoulli rng 0.2 then begin
            add sites.(!site_idx);
            incr site_idx
          end
          else add (Prng.pick rng filler)
        done;
        add "}";
        if Prng.bernoulli rng 0.3 then comment ()
      done;
      (* Flush any pattern sites the loop did not place. *)
      if !site_idx < Array.length sites then begin
        add "static void __init late_init(void)";
        add "{";
        while !site_idx < Array.length sites do
          add sites.(!site_idx);
          incr site_idx
        done;
        add "}"
      end;
      {
        path =
          Printf.sprintf "%s/generated_%s_%d.c"
            dirs.(i mod Array.length dirs)
            (Model.version_to_string p.Model.version)
            i;
        content = Buffer.contents buf;
      })
