type version = { major : int; minor : int }

type point = {
  version : version;
  loc : int;
  spinlock_inits : int;
  mutex_inits : int;
  rcu_usages : int;
}

let versions =
  [
    { major = 3; minor = 0 };
    { major = 3; minor = 5 };
    { major = 3; minor = 10 };
    { major = 3; minor = 15 };
    { major = 4; minor = 0 };
    { major = 4; minor = 5 };
    { major = 4; minor = 10 };
    { major = 4; minor = 15 };
    { major = 4; minor = 18 };
  ]

let version_to_string v = Printf.sprintf "v%d.%d" v.major v.minor

let loc_scale = 100
let lock_scale = 10

(* Normalised progress of a release within the modelled window: v3.0 = 0,
   v4.18 = 1. Linux 3.x ran to 3.19 before 4.0. *)
let progress v =
  let ordinal = if v.major = 3 then v.minor else 20 + v.minor in
  float_of_int ordinal /. 38.

let interp start finish t = start +. ((finish -. start) *. t)

let point version =
  let t = progress version in
  (* Full-scale anchors: LoC 8.0M → 13.9M (+73 %); spinlocks 4600 → 6700
     (+45 %) dipping ~3 % after v4.15; mutexes 2000 → 3620 (+81 %);
     RCU usages 1500 → 5200. *)
  let loc_full = interp 8.0e6 13.9e6 t in
  let spin_full =
    let peak = interp 4600. 6900. (Float.min 1. (t /. 0.92)) in
    if t > 0.92 then peak -. (2300. *. (t -. 0.92)) else peak
  in
  let mutex_full = interp 2000. 3620. t in
  let rcu_full = 1500. *. ((1. +. t) ** 1.8) in
  {
    version;
    loc = int_of_float (loc_full /. float_of_int loc_scale);
    spinlock_inits = int_of_float (spin_full /. float_of_int lock_scale);
    mutex_inits = int_of_float (mutex_full /. float_of_int lock_scale);
    rcu_usages = int_of_float (rcu_full /. float_of_int lock_scale);
  }

let series = List.map point versions
