(* Connection-chaos harness.

   The server is the exact sans-IO engine from {!Server}; this module
   supplies the other half of the world — clients, wires and time — as
   deterministic simulation. Virtual time advances in fixed ticks; each
   wire direction is a FIFO of chunks with monotone delivery times, so
   faults can drop, delay, garble or cut traffic without ever
   reordering it (the one thing a stream transport guarantees).

   Two clients stream concurrently: client 0 takes the faults, client 1
   is clean. Both must seal with reports byte-identical to the batch
   pipeline — that is the oracle that says recovery reconstructed the
   analysis, not something close to it. *)

module Prng = Lockdoc_util.Prng
module Trace = Lockdoc_trace.Trace
module Import = Lockdoc_db.Import
module Crashpoint = Lockdoc_db.Crashpoint
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Violation = Lockdoc_core.Violation
module Report = Lockdoc_core.Report
module Run_ = Lockdoc_ksim.Run

type fault = Drop | Delay | Garble | Kill | Reconnect_storm | Slowloris

let fault_name = function
  | Drop -> "drop"
  | Delay -> "delay"
  | Garble -> "garble"
  | Kill -> "kill"
  | Reconnect_storm -> "reconnect-storm"
  | Slowloris -> "slowloris"

let all_faults = [ Drop; Delay; Garble; Kill; Reconnect_storm; Slowloris ]

type outcome = {
  o_ticks : int;
  o_frames_sent : int;
  o_faults_injected : int;
  o_reconnects : int;
  o_nacks : int;
  o_retry_afters : int;
  o_garbled : int;
  o_session_failures : int;
  o_supersedes : int;
  o_idle_closes : int;
  o_corrupted_tails : int;
  o_rows_resent : int;
  o_max_pending : int;
}

(* ---- Simulation fabric -------------------------------------------- *)

let dt = 0.01 (* seconds per tick *)
let batch_rows = 32
let watchdog_ticks = 150
let max_ticks = 120_000

type data = Bytes_ of { b : string; crash : bool } | Close_
type chunk = { at : int; data : data }

type vconn = {
  vc_id : int;
  vc_owner : int;  (* client index; -1 = the mute slowloris probe *)
  c2s : chunk Queue.t;
  s2c : chunk Queue.t;
  mutable c2s_last : int;  (* delivery times are monotone per queue *)
  mutable s2c_last : int;
  mutable srv_open : bool;
}

type phase = Offline of int | Hello_wait | Run | Finished

type client = {
  idx : int;
  session : string;
  lines : string array;
  total : int;
  mutable conn : vconn option;
  mutable dec : Frame.decoder;
  mutable cursor : int;  (* next row to send *)
  mutable sent_seal : bool;
  mutable phase : phase;
  mutable pause_until : int;  (* honoured retry-after *)
  mutable last_reply : int;
  mutable connected_once : bool;
  mutable corrupt_next : bool;  (* damage the journal tail at reconnect *)
  mutable rows_frames : int;  (* fault cadence counter *)
  mutable kills : int;
  mutable storms : int;
  mutable slow_left : int;  (* slowloris: frames left to dribble *)
  mutable result : (int * string * string) option;
}

type counters = {
  mutable frames_sent : int;
  mutable faults : int;
  mutable reconnects : int;
  mutable nacks : int;
  mutable retry_afters : int;
  mutable garbled : int;
  mutable session_failures : int;
  mutable supersedes : int;
  mutable idle_closes : int;
  mutable corrupted : int;
  mutable resent : int;
  mutable max_pending : int;
}

type st = {
  fault : fault;
  transport : [ `Unix_sock | `Tcp ];
  rng : Prng.t;
  srv : Server.t;
  vconns : (int, vconn) Hashtbl.t;
  clients : client array;
  mutable probe : vconn option;
  mutable tick : int;
  k : counters;
  durable_root : string option;
}

let now st = float_of_int st.tick *. dt

(* The transport's segmentation model. A Unix-domain socket delivers a
   frame written in one [write] as one chunk; TCP promises only a byte
   stream, so under [`Tcp] every frame is re-cut at seeded offsets into
   up to four runs landing on consecutive ticks — the decoder must
   reassemble across arbitrary boundaries, which is exactly what the
   kernel gives a real TCP client under small MSS or coalescing. *)
let segments st b =
  match st.transport with
  | `Unix_sock -> [ b ]
  | `Tcp ->
      let n = String.length b in
      if n <= 2 then [ b ]
      else
        let k = 1 + Prng.int st.rng 3 in
        let cuts =
          List.sort_uniq compare
            (List.init k (fun _ -> 1 + Prng.int st.rng (n - 1)))
        in
        let rec build prev = function
          | [] -> [ String.sub b prev (n - prev) ]
          | c :: rest -> String.sub b prev (c - prev) :: build c rest
        in
        build 0 cuts

let push_c2s vc ~at data =
  let at = max at vc.c2s_last in
  vc.c2s_last <- at;
  Queue.push { at; data } vc.c2s

let push_s2c vc ~at data =
  let at = max at vc.s2c_last in
  vc.s2c_last <- at;
  Queue.push { at; data } vc.s2c

(* ---- Server-output routing ---------------------------------------- *)

(* Evidence is counted here, at the wire, so a reply that a fault later
   eats still proves the server reacted. *)
let note_evidence st (msg : Proto.server_msg) =
  match msg with
  | Proto.Nack _ -> st.k.nacks <- st.k.nacks + 1
  | Proto.Retry_after _ -> st.k.retry_afters <- st.k.retry_afters + 1
  | Proto.Err { code = "garbled"; _ } -> st.k.garbled <- st.k.garbled + 1
  | Proto.Err { code = "session-failed"; _ } ->
      st.k.session_failures <- st.k.session_failures + 1
  | Proto.Closing { reason = "superseded" } ->
      st.k.supersedes <- st.k.supersedes + 1
  | Proto.Closing { reason = "idle-timeout" } ->
      st.k.idle_closes <- st.k.idle_closes + 1
  | _ -> ()

let route st (outs : Server.output list) =
  List.iter
    (fun out ->
      match out with
      | Server.Send (cid, msg) -> (
          note_evidence st msg;
          match Hashtbl.find_opt st.vconns cid with
          | None -> ()
          | Some vc ->
              let faulted = vc.vc_owner = 0 in
              let drop =
                faulted && st.fault = Drop && Prng.bernoulli st.rng 0.2
              in
              if drop then st.k.faults <- st.k.faults + 1
              else
                let delay =
                  if faulted && st.fault = Delay then (
                    st.k.faults <- st.k.faults + 1;
                    Prng.int st.rng 31)
                  else 0
                in
                let b = Frame.encode (Proto.server_to_payload msg) in
                List.iteri
                  (fun i sgb ->
                    push_s2c vc ~at:(st.tick + 1 + delay + i)
                      (Bytes_ { b = sgb; crash = false }))
                  (segments st b))
      | Server.Close (cid, _reason) -> (
          match Hashtbl.find_opt st.vconns cid with
          | None -> ()
          | Some vc ->
              vc.srv_open <- false;
              push_s2c vc ~at:(st.tick + 1) Close_))
    outs

(* ---- Client sends ------------------------------------------------- *)

let offline cl ~at =
  cl.conn <- None;
  if cl.phase <> Finished then cl.phase <- Offline at

(* Hand one frame to the wire, applying client 0's fault family. *)
let send st cl (msg : Proto.client_msg) =
  match cl.conn with
  | None -> ()
  | Some vc -> (
      st.k.frames_sent <- st.k.frames_sent + 1;
      let b = Frame.encode (Proto.client_to_payload msg) in
      let is_rows = match msg with Proto.Rows _ -> true | _ -> false in
      if is_rows then cl.rows_frames <- cl.rows_frames + 1;
      let plain ?(delay = 0) ?(crash = false) bytes =
        (* Under TCP segmentation the frame only completes with its
           last run, so an armed crash must ride that one. *)
        let segs = segments st bytes in
        let last = List.length segs - 1 in
        List.iteri
          (fun i sgb ->
            push_c2s vc ~at:(st.tick + 1 + delay + i)
              (Bytes_ { b = sgb; crash = crash && i = last }))
          segs
      in
      if cl.idx <> 0 then plain b
      else
        match st.fault with
        | Drop ->
            if Prng.bernoulli st.rng 0.2 then st.k.faults <- st.k.faults + 1
            else plain b
        | Delay ->
            st.k.faults <- st.k.faults + 1;
            plain ~delay:(Prng.int st.rng 31) b
        | Garble ->
            if Prng.bernoulli st.rng 0.15 then begin
              st.k.faults <- st.k.faults + 1;
              let g = Bytes.of_string b in
              let i = Prng.int st.rng (Bytes.length g) in
              Bytes.set g i
                (Char.chr
                   (Char.code (Bytes.get g i) lxor (1 lsl Prng.int st.rng 8)));
              plain (Bytes.to_string g)
            end
            else plain b
        | Kill when is_rows && cl.rows_frames mod 7 = 0 ->
            st.k.faults <- st.k.faults + 1;
            cl.kills <- cl.kills + 1;
            if cl.kills mod 2 = 1 then begin
              (* Torn mid-frame: half the bytes arrive, then the wire
                 dies under the server's feet. *)
              plain (String.sub b 0 (String.length b / 2));
              push_c2s vc ~at:(st.tick + 2) Close_;
              offline cl
                ~at:(st.tick + if cl.kills mod 4 = 1 then 4 else 35)
            end
            else begin
              (* Worker crash: the frame arrives intact and an armed
                 crash point kills the session while it is handled. *)
              plain ~crash:true b;
              if st.durable_root <> None && cl.kills mod 4 = 0 then
                cl.corrupt_next <- true
            end
        | Reconnect_storm when is_rows && cl.rows_frames mod 5 = 0 ->
            st.k.faults <- st.k.faults + 1;
            cl.storms <- cl.storms + 1;
            plain b;
            (* Abandon the connection right after the frame — half the
               time silently (no close ever reaches the server), which
               is what forces the supersede path on reconnect. *)
            if cl.storms mod 2 = 0 then push_c2s vc ~at:(st.tick + 2) Close_;
            offline cl ~at:(st.tick + 2)
        | Slowloris when cl.slow_left > 0 ->
            st.k.faults <- st.k.faults + 1;
            cl.slow_left <- cl.slow_left - 1;
            String.iter
              (fun ch ->
                push_c2s vc
                  ~at:(max (st.tick + 1) (vc.c2s_last + 1))
                  (Bytes_ { b = String.make 1 ch; crash = false }))
              b
        | Kill | Reconnect_storm | Slowloris -> plain b)

let mk_vconn st ~owner cid =
  let vc =
    {
      vc_id = cid;
      vc_owner = owner;
      c2s = Queue.create ();
      s2c = Queue.create ();
      c2s_last = st.tick;
      s2c_last = st.tick;
      srv_open = true;
    }
  in
  Hashtbl.replace st.vconns cid vc;
  vc

let connect st cl =
  (match (cl.corrupt_next, st.durable_root) with
  | true, Some root ->
      cl.corrupt_next <- false;
      let dir = Filename.concat root ("session-" ^ cl.session) in
      if Sys.file_exists dir then (
        match Crashpoint.corrupt_tail ~dir ~seed:(Prng.int st.rng 1000000) with
        | Some _ -> st.k.corrupted <- st.k.corrupted + 1
        | None -> ())
  | _ -> ());
  if cl.connected_once then st.k.reconnects <- st.k.reconnects + 1;
  cl.connected_once <- true;
  let cid, outs = Server.accept st.srv ~now:(now st) in
  let vc = mk_vconn st ~owner:cl.idx cid in
  cl.conn <- Some vc;
  cl.dec <- Frame.decoder ();
  route st outs;
  cl.phase <- Hello_wait;
  cl.last_reply <- st.tick;
  send st cl (Proto.Hello { version = Proto.version; session = cl.session })

let force_reconnect st cl ~after =
  (match cl.conn with
  | Some vc -> push_c2s vc ~at:(st.tick + 1) Close_
  | None -> ());
  cl.sent_seal <- false;
  offline cl ~at:(st.tick + after)

(* One client decision per tick. *)
let act st cl =
  match cl.phase with
  | Finished -> ()
  | Offline at ->
      if st.tick >= at && st.tick >= cl.pause_until then connect st cl
  | Hello_wait ->
      if st.tick - cl.last_reply > watchdog_ticks then
        force_reconnect st cl ~after:3
  | Run ->
      if cl.conn = None then offline cl ~at:(st.tick + 3)
      else if st.tick < cl.pause_until then ()
      else if cl.cursor < cl.total then begin
        let n = min batch_rows (cl.total - cl.cursor) in
        let lines =
          Array.to_list (Array.sub cl.lines cl.cursor n)
        in
        let start = cl.cursor in
        cl.cursor <- cl.cursor + n;
        send st cl (Proto.Rows { start; lines })
      end
      else if not cl.sent_seal then begin
        cl.sent_seal <- true;
        send st cl (Proto.Seal { rows = cl.total })
      end
      else if st.tick - cl.last_reply > watchdog_ticks then
        force_reconnect st cl ~after:3

(* ---- Client receives ---------------------------------------------- *)

let rewind st cl target =
  if target < cl.cursor then st.k.resent <- st.k.resent + (cl.cursor - target);
  cl.cursor <- target;
  cl.sent_seal <- false

let on_server_msg st cl (msg : Proto.server_msg) =
  cl.last_reply <- st.tick;
  match msg with
  | Proto.Welcome { resume } ->
      rewind st cl resume;
      cl.phase <- Run
  | Proto.Nack { expected } -> rewind st cl expected
  | Proto.Retry_after { ms; expected; _ } ->
      cl.pause_until <- st.tick + 1 + ((ms + 9) / 10);
      Option.iter (rewind st cl) expected
  | Proto.Sealed { events; rules; violations } ->
      cl.result <- Some (events, rules, violations);
      send st cl Proto.Bye;
      cl.phase <- Finished
  | Proto.Err { code = "permanent-failure"; reason } ->
      failwith
        (Printf.sprintf "chaos(%s): session %s gave up: %s"
           (fault_name st.fault) cl.session reason)
  | Proto.Err _ | Proto.Closing _ ->
      (* A [Close] marker follows on the same queue; reconnect then. *)
      ()
  | Proto.Pong | Proto.Info _ -> ()

let deliver_s2c st vc =
  let continue = ref true in
  while
    !continue
    && (not (Queue.is_empty vc.s2c))
    && (Queue.peek vc.s2c).at <= st.tick
  do
    let { data; _ } = Queue.pop vc.s2c in
    let cl = if vc.vc_owner >= 0 then Some st.clients.(vc.vc_owner) else None in
    let live =
      match cl with
      | Some cl -> ( match cl.conn with Some c -> c == vc | None -> false)
      | None -> false
    in
    match data with
    | Close_ ->
        if live then (
          let cl = Option.get cl in
          offline cl ~at:(st.tick + 3);
          continue := false)
    | Bytes_ { b; _ } ->
        if live then begin
          let cl = Option.get cl in
          Frame.feed cl.dec b;
          let drain = ref true in
          while !drain do
            match Frame.next cl.dec with
            | Frame.Awaiting -> drain := false
            | Frame.Corrupt reason ->
                failwith
                  (Printf.sprintf "chaos(%s): client %d decoder corrupt: %s"
                     (fault_name st.fault) cl.idx reason)
            | Frame.Frame payload -> (
                match Proto.server_of_payload payload with
                | Ok msg ->
                    on_server_msg st cl msg;
                    if cl.conn = None || cl.phase = Finished then
                      drain := false
                | Error e ->
                    failwith
                      (Printf.sprintf "chaos(%s): bad server frame: %s"
                         (fault_name st.fault) e))
          done
        end
  done

let deliver_c2s st vc =
  while
    (not (Queue.is_empty vc.c2s)) && (Queue.peek vc.c2s).at <= st.tick
  do
    let { data; _ } = Queue.pop vc.c2s in
    match data with
    | Close_ ->
        if vc.srv_open then begin
          vc.srv_open <- false;
          Server.on_close st.srv ~now:(now st) vc.vc_id
        end
    | Bytes_ { b; crash } ->
        if vc.srv_open then begin
          if crash then Crashpoint.arm ~after:1;
          let outs =
            Fun.protect
              ~finally:(fun () -> Crashpoint.reset ())
              (fun () -> Server.on_bytes st.srv ~now:(now st) vc.vc_id b)
          in
          route st outs
        end
  done

(* ---- The batch oracle --------------------------------------------- *)

(* Must mirror the engine's seal job exactly: same engine path, same
   thresholds, same report serialisation. *)
let batch_reference ~tac ~jobs (trace : Trace.t) =
  let g = Import.engine trace.layouts in
  Array.iter (Import.feed g) trace.events;
  ignore (Import.finalize g);
  let dataset = Dataset.of_store (Import.engine_store g) in
  let mined = Derivator.derive_all ~tac ~jobs dataset in
  let rules = Report.mined_to_json mined in
  let violations =
    Report.violations_to_json (Violation.find ~jobs dataset mined)
  in
  (Array.length trace.events, rules, violations)

(* ---- The run ------------------------------------------------------ *)

let chaos_config ~durable_root =
  {
    Server.default_config with
    max_clients = 8;
    session_timeout = 2.0;
    events_per_step = 256;
    retry_after_ms = 30;
    restart_backoff = 0.1;
    max_backoff = 1.0;
    max_restarts = 1000;
    durable_root;
    jobs = 1;
  }

let sorted_vconns st =
  List.map (Hashtbl.find st.vconns)
    (List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) st.vconns []))

let run ?(seed = 1) ?(scale = 1) ?durable_root ?(transport = `Unix_sock)
    ?(workloads = ("pipe", "device")) fault =
  if fault = Kill && durable_root = None then
    invalid_arg
      "Chaos.run: the kill family needs a durable_root (a crash without a \
       journal restarts the session from row zero and never converges)";
  Crashpoint.reset ();
  let cfg = chaos_config ~durable_root in
  let rng = Prng.of_int seed in
  (* Seal jobs run deferred on the virtual clock: the engine parks the
     session in [Sealing] when the Seal frame lands, the job executes
     a seeded number of ticks later, and the next [step] delivers
     [Sealed] — the same asynchrony the Unix loop gets from analysis
     domains, but deterministic. A retransmitted Seal or stream query
     inside the window earns [retry-after], which the clients above
     already honour. *)
  let seal_jobs = ref [] in
  let now_tick = ref 0 in
  let runner f =
    seal_jobs := (!now_tick + 10 + Prng.int rng 21, f) :: !seal_jobs
  in
  let mk_client idx name =
    let trace = Run_.workload_trace ~seed:(seed + idx) ~scale name in
    let lines = Array.of_list (Trace.to_lines trace) in
    ( trace,
      {
        idx;
        session = name;
        lines;
        total = Array.length lines;
        conn = None;
        dec = Frame.decoder ();
        cursor = 0;
        sent_seal = false;
        phase = Offline 0;
        pause_until = 0;
        last_reply = 0;
        connected_once = false;
        corrupt_next = false;
        rows_frames = 0;
        kills = 0;
        storms = 0;
        slow_left = (if fault = Slowloris then 3 else 0);
        result = None;
      } )
  in
  let faulted_name, clean_name = workloads in
  let t0, c0 = mk_client 0 faulted_name in
  let t1, c1 = mk_client 1 clean_name in
  let st =
    {
      fault;
      transport;
      rng;
      srv = Server.create ~config:cfg ~runner ();
      vconns = Hashtbl.create 16;
      clients = [| c0; c1 |];
      probe = None;
      tick = 0;
      k =
        {
          frames_sent = 0;
          faults = 0;
          reconnects = 0;
          nacks = 0;
          retry_afters = 0;
          garbled = 0;
          session_failures = 0;
          supersedes = 0;
          idle_closes = 0;
          corrupted = 0;
          resent = 0;
          max_pending = 0;
        };
      durable_root;
    }
  in
  let finished () =
    Array.for_all (fun c -> c.phase = Finished) st.clients
    && (match st.probe with Some vc -> not vc.srv_open | None -> true)
  in
  while not (finished ()) do
    st.tick <- st.tick + 1;
    if st.tick > max_ticks then
      failwith
        (Printf.sprintf
           "chaos(%s): livelock — not converged after %d ticks \
            (cursors %d/%d and %d/%d)"
           (fault_name fault) max_ticks c0.cursor c0.total c1.cursor c1.total);
    (* The slowloris probe: a connection that never says anything. The
       daemon owes us an idle close. *)
    if fault = Slowloris && st.tick = 5 && st.probe = None then begin
      let cid, outs = Server.accept st.srv ~now:(now st) in
      st.probe <- Some (mk_vconn st ~owner:(-1) cid);
      route st outs
    end;
    Array.iter (act st) st.clients;
    now_tick := st.tick;
    List.iter (deliver_c2s st) (sorted_vconns st);
    (* Seal jobs whose deferral elapsed run now, on the loop, before
       the step that will drain their completions. *)
    let due, rest =
      List.partition (fun (at, _) -> at <= st.tick) !seal_jobs
    in
    seal_jobs := rest;
    List.iter (fun (_, f) -> f ()) (List.rev due);
    route st (Server.step st.srv ~now:(now st));
    List.iter (deliver_s2c st) (sorted_vconns st);
    let pending = Server.pending_total st.srv in
    if pending > st.k.max_pending then st.k.max_pending <- pending;
    if pending > cfg.Server.total_queue_bytes then
      failwith
        (Printf.sprintf "chaos(%s): queued ingest %d exceeds budget %d"
           (fault_name fault) pending cfg.Server.total_queue_bytes)
  done;
  (* The oracle: both sessions — faulted and clean — must have produced
     exactly the batch pipeline's reports. *)
  List.iter
    (fun (cl, trace) ->
      let events, rules, violations =
        match cl.result with Some r -> r | None -> assert false
      in
      let e_events, e_rules, e_violations =
        batch_reference ~tac:cfg.Server.tac ~jobs:cfg.Server.jobs trace
      in
      if events <> e_events then
        failwith
          (Printf.sprintf "chaos(%s): session %s sealed %d events, batch %d"
             (fault_name fault) cl.session events e_events);
      if not (String.equal rules e_rules) then
        failwith
          (Printf.sprintf
             "chaos(%s): session %s mined rules differ from batch"
             (fault_name fault) cl.session);
      if not (String.equal violations e_violations) then
        failwith
          (Printf.sprintf
             "chaos(%s): session %s violations differ from batch"
             (fault_name fault) cl.session))
    [ (c0, t0); (c1, t1) ];
  {
    o_ticks = st.tick;
    o_frames_sent = st.k.frames_sent;
    o_faults_injected = st.k.faults;
    o_reconnects = st.k.reconnects;
    o_nacks = st.k.nacks;
    o_retry_afters = st.k.retry_afters;
    o_garbled = st.k.garbled;
    o_session_failures = st.k.session_failures;
    o_supersedes = st.k.supersedes;
    o_idle_closes = st.k.idle_closes;
    o_corrupted_tails = st.k.corrupted;
    o_rows_resent = st.k.resent;
    o_max_pending = st.k.max_pending;
  }
