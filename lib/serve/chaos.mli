(** Connection-chaos harness for the serve daemon.

    Drives the exact {!Server} state machine through an in-process
    virtual-time transport and injects one seeded fault family per run:

    - [Drop] — whole frames vanish in either direction;
    - [Delay] — frames arrive late (FIFO order preserved);
    - [Garble] — a bit flips in a client frame in flight;
    - [Kill] — the connection dies mid-stream (half the time inside a
      frame), alternating with a {!Lockdoc_db.Crashpoint}-injected
      worker crash; with a durable root every other crash also corrupts
      the journal tail before the client returns, forcing a rebuild
      with truncation;
    - [Reconnect_storm] — the client abandons its connection every few
      frames and reconnects at once, often without the server ever
      seeing a close (exercising supersede);
    - [Slowloris] — early frames dribble in one byte per tick, and a
      mute extra connection must be idle-closed by the daemon.

    Every run streams two sessions concurrently — one faulted, one
    clean — to completion, then checks the accepted invariants:

    - the daemon survives (no exception escapes the engine);
    - queued ingest never exceeds the configured global budget;
    - both sessions seal with mined-rule and violation reports
      byte-identical to the batch pipeline over the same trace.

    [run] raises [Failure] when an invariant breaks; the returned
    {!outcome} carries fault-evidence counters so tests can assert the
    fault actually bit (frames really dropped, sessions really failed,
    the supersede path really ran). *)

type fault = Drop | Delay | Garble | Kill | Reconnect_storm | Slowloris

val fault_name : fault -> string
val all_faults : fault list

type outcome = {
  o_ticks : int;  (** virtual ticks until both sessions sealed *)
  o_frames_sent : int;  (** client frames handed to the transport *)
  o_faults_injected : int;  (** family-specific fault count *)
  o_reconnects : int;
  o_nacks : int;  (** sequence-gap rewinds the server issued *)
  o_retry_afters : int;  (** load-shed / backoff rejections *)
  o_garbled : int;  (** [err garbled] connection closes *)
  o_session_failures : int;  (** [err session-failed] supervisor kills *)
  o_supersedes : int;  (** old connections superseded by reconnects *)
  o_idle_closes : int;  (** connections the daemon idle-closed *)
  o_corrupted_tails : int;  (** journal tails damaged between crashes *)
  o_rows_resent : int;  (** duplicate rows absorbed idempotently *)
  o_max_pending : int;  (** high-water mark of queued ingest bytes *)
}

val run :
  ?seed:int ->
  ?scale:int ->
  ?durable_root:string ->
  ?transport:[ `Unix_sock | `Tcp ] ->
  ?workloads:string * string ->
  fault ->
  outcome
(** One chaos run: [workloads] names the (faulted, clean) benchmark
    traces (default [("pipe", "device")]), [durable_root] enables
    per-session journals (required for the rebuild legs of [Kill]).
    [transport] picks the segmentation model: [`Unix_sock] (default)
    delivers each frame as one chunk, [`Tcp] re-cuts every frame at
    seeded offsets into multiple runs, as a real TCP byte stream may —
    the fault family then plays out over reassembled fragments.
    Sealing is asynchronous on the virtual clock (a seeded deferral
    between the accepted [Seal] and the [Sealed] reply), mirroring the
    Unix front end's analysis domains deterministically.
    Deterministic for fixed arguments. *)
