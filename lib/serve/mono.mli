(** Monotonic clock for serve deadlines.

    Every timeout the daemon enforces — idle closes, detached-session
    GC, crash-supervision backoff, [retry-after] watermarks — is a
    {e duration}, and durations measured with [Unix.gettimeofday] break
    under NTP steps: a backward step stalls idle detection, a forward
    step idle-closes every healthy client at once. {!now} reads
    [CLOCK_MONOTONIC] instead (via the bechamel stub already shipped in
    the toolchain), so only real elapsed time moves the deadlines.

    The epoch is unspecified (seconds since boot on Linux); only
    differences are meaningful, which is all the sans-IO {!Server}
    engine ever computes — the chaos harness drives the same engine
    with virtual time and is unaffected. *)

val now : unit -> float
(** Monotonic seconds. Never decreases, unaffected by wall-clock
    steps. *)
