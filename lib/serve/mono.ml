(* CLOCK_MONOTONIC in seconds. Monotonic_clock is bechamel's one-stub
   library (clock_gettime(CLOCK_MONOTONIC) in nanoseconds); the float
   conversion keeps ~microsecond precision over centuries of uptime,
   far below the timeouts measured with it. *)

let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9
