(* Incremental CRC-framed stream codec.

   The wire format is the WAL record format ({!Lockdoc_db.Wal}):
   [len:int32 LE][crc32:int32 LE][payload]. A WAL segment and a serve
   byte stream are therefore interchangeable: the byte-dribbling
   differential test feeds WAL segment bytes through this decoder one
   byte at a time and compares against [Wal.parse_segment].

   Unlike the WAL reader — which treats damage as a torn tail and
   trusts the prefix — a live connection cannot seek past damage: a
   checksum mismatch or absurd length means the rest of the stream
   cannot be re-synchronised, so the decoder latches into [Corrupt] and
   stays there. The session layer turns that into a structured error
   and a connection close; the client reconnects and resumes from its
   durable checkpoint. *)

module Wal = Lockdoc_db.Wal

let header_bytes = 8

(* Same ceiling as [Wal.max_record]: anything larger is a corrupt
   length field, not a frame. Server configs use a lower per-frame cap
   on top of this (an oversized frame is a protocol error even when its
   length field is plausible). *)
let max_frame = 1 lsl 26

let encode payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_bytes + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Int32.of_int (Wal.crc32 payload));
  Bytes.blit_string payload 0 b header_bytes len;
  Bytes.unsafe_to_string b

type decoder = {
  mutable buf : Bytes.t;
  mutable off : int;  (* consumed prefix of [buf] *)
  mutable len : int;  (* valid bytes in [buf] (including consumed) *)
  mutable consumed : int;  (* stream offset of [buf.(off)], for messages *)
  mutable corrupt : string option;
  d_max_frame : int;
}

let decoder ?(max_frame = max_frame) () =
  {
    buf = Bytes.create 4096;
    off = 0;
    len = 0;
    consumed = 0;
    corrupt = None;
    d_max_frame = max_frame;
  }

let buffered d = d.len - d.off

let compact d =
  (* Slide the unconsumed suffix to the front; grow only when the
     pending frame genuinely needs more room. *)
  if d.off > 0 then begin
    let live = d.len - d.off in
    Bytes.blit d.buf d.off d.buf 0 live;
    d.off <- 0;
    d.len <- live
  end

let feed d ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if len < 0 || off < 0 || off + len > String.length s then
    invalid_arg "Frame.feed";
  if d.corrupt = None && len > 0 then begin
    if d.len + len > Bytes.length d.buf then begin
      compact d;
      if d.len + len > Bytes.length d.buf then begin
        let cap = ref (Bytes.length d.buf) in
        while d.len + len > !cap do
          cap := !cap * 2
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit d.buf 0 bigger 0 d.len;
        d.buf <- bigger
      end
    end;
    Bytes.blit_string s off d.buf d.len len;
    d.len <- d.len + len
  end

type next = Frame of string | Awaiting | Corrupt of string

let fail d reason =
  d.corrupt <- Some reason;
  (* Drop the buffer: nothing past the damage can be trusted, and a
     latched decoder must not hold client bytes alive. *)
  d.off <- 0;
  d.len <- 0;
  Corrupt reason

let next d =
  match d.corrupt with
  | Some reason -> Corrupt reason
  | None ->
      let avail = d.len - d.off in
      if avail < header_bytes then Awaiting
      else begin
        let len = Int32.to_int (Bytes.get_int32_le d.buf d.off) in
        let crc =
          Int32.to_int (Bytes.get_int32_le d.buf (d.off + 4)) land 0xFFFFFFFF
        in
        if len < 0 || len > d.d_max_frame then
          fail d
            (Printf.sprintf "corrupt length %d at offset %d" len d.consumed)
        else if avail < header_bytes + len then Awaiting
        else begin
          let payload = Bytes.sub_string d.buf (d.off + header_bytes) len in
          if Wal.crc32 payload <> crc then
            fail d
              (Printf.sprintf "checksum mismatch at offset %d" d.consumed)
          else begin
            d.off <- d.off + header_bytes + len;
            d.consumed <- d.consumed + header_bytes + len;
            if d.off = d.len then begin
              d.off <- 0;
              d.len <- 0
            end;
            Frame payload
          end
        end
      end

let is_corrupt d = d.corrupt <> None
