(** Incremental codec for the serve wire protocol.

    Frames reuse the WAL record discipline ({!Lockdoc_db.Wal}):
    [len:int32 LE][crc32:int32 LE][payload]. The decoder accepts bytes
    in arbitrary chunks — including one byte at a time across the
    length/CRC boundary — and yields complete verified payloads.

    Framing violations (absurd length, checksum mismatch) latch the
    decoder into a permanent [Corrupt] state: a live byte stream,
    unlike a WAL file, cannot be re-synchronised past damage. The
    session layer closes the connection with a structured reason and
    lets the client resume from its durable checkpoint. *)

val header_bytes : int
(** 8: the [len]+[crc] prefix. *)

val max_frame : int
(** Hard length-field ceiling, equal to the WAL reader's
    [max_record] (64 MiB). *)

val encode : string -> string
(** Frame one payload. Raises [Invalid_argument] above {!max_frame}. *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder
(** Fresh decoder; [max_frame] lowers the length ceiling (a server
    rejects frames its config does not allow before buffering them). *)

val feed : decoder -> ?off:int -> ?len:int -> string -> unit
(** Append received bytes. No-op once corrupt. *)

type next = Frame of string | Awaiting | Corrupt of string

val next : decoder -> next
(** Pop the next complete frame. [Awaiting] means feed more bytes;
    [Corrupt] is permanent and repeats on every call. *)

val buffered : decoder -> int
(** Unconsumed bytes held by the decoder (bounded by one frame plus one
    read chunk; the session layer counts it against the queue cap). *)

val is_corrupt : decoder -> bool
