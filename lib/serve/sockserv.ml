(* Socket front end: the dumb half of the daemon.

   Everything interesting happens in {!Server}; this loop only moves
   bytes. One select loop over two listeners (Unix-domain socket
   always, TCP optionally), per-connection outboxes; a connection is
   closed when the engine says so and its outbox has drained. Seal
   jobs run off-loop on dedicated analysis domains ({!Pool.spawn}) —
   the loop enqueues, keeps serving, and the engine's [step] delivers
   [Sealed] when the domain reports back. The loop ends when the
   engine enters shutdown and the goodbyes have been flushed.

   Every deadline here is measured on {!Mono.now}: a wall-clock step
   (NTP, manual date set) must never idle-close a healthy client or
   stall timeout detection. Syscalls tolerate [EINTR] — a signal
   landing mid-[write]/[read]/[accept]/[select] restarts the call
   instead of tearing down a connection. *)

module Pool = Lockdoc_util.Pool

type sealed = { events : int; rules : string; violations : string }

exception Error of string

let ignore_sigpipe () =
  if Sys.unix then ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    match Unix.write_substring fd s !off (n - !off) with
    | w -> off := !off + w
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let rec read_retry fd buf off len =
  match Unix.read fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf off len

(* Resolve a TCP endpoint. Numeric addresses avoid the resolver; names
   go through [gethostbyname] (first address wins). *)
let inet_addr host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          raise (Error ("cannot resolve host " ^ host))
      | { Unix.h_addr_list; _ } -> h_addr_list.(0))

(* ---- The daemon --------------------------------------------------- *)

type sconn = {
  fd : Unix.file_descr;
  cid : int;
  out : Buffer.t;
  mutable out_off : int;
  mutable close_after : bool;  (* close once the outbox drains *)
}

let serve ?config ?tcp ?on_tcp_port ~socket () =
  ignore_sigpipe ();
  (* One seal = one analysis domain. The loop reaps finished domains as
     it goes (poll, then the immediate await) and joins stragglers on
     the way out so no domain outlives the daemon. *)
  let jobs = ref [] in
  let reap_finished () =
    jobs :=
      List.filter
        (fun j ->
          match Pool.poll j with
          | Some _ ->
              ignore (Pool.await j);
              false
          | None -> true)
        !jobs
  in
  let runner f = jobs := Pool.spawn f :: !jobs in
  let srv = Server.create ?config ~runner () in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  if Sys.file_exists socket then Sys.remove socket;
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let tcp_fd =
    match tcp with
    | None -> None
    | Some (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (inet_addr host, port));
        Unix.listen fd 64;
        Unix.set_nonblock fd;
        (* Report the bound port — with [port = 0] the kernel picked an
           ephemeral one, which tests need to discover. *)
        (match (Unix.getsockname fd, on_tcp_port) with
        | Unix.ADDR_INET (_, p), Some f -> f p
        | _ -> ());
        Some fd
  in
  let listeners = listen_fd :: Option.to_list tcp_fd in
  let conns : (Unix.file_descr, sconn) Hashtbl.t = Hashtbl.create 16 in
  let by_cid : (int, sconn) Hashtbl.t = Hashtbl.create 16 in
  let buf = Bytes.create 65536 in
  let drop sc =
    Hashtbl.remove conns sc.fd;
    Hashtbl.remove by_cid sc.cid;
    try Unix.close sc.fd with Unix.Unix_error _ -> ()
  in
  let route outs =
    List.iter
      (fun out ->
        let cid, act = Server.encode_output out in
        match Hashtbl.find_opt by_cid cid with
        | None -> ()
        | Some sc -> (
            match act with
            | `Send bytes -> Buffer.add_string sc.out bytes
            | `Close _reason -> sc.close_after <- true))
      outs
  in
  let flush sc =
    let s = Buffer.contents sc.out in
    let n = String.length s in
    (try
       while sc.out_off < n do
         match Unix.write_substring sc.fd s sc.out_off (n - sc.out_off) with
         | w -> sc.out_off <- sc.out_off + w
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       done;
       Buffer.clear sc.out;
       sc.out_off <- 0
     with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | Unix.Unix_error _ ->
        Server.on_close srv ~now:(Mono.now ()) sc.cid;
        drop sc);
    if
      sc.close_after && Buffer.length sc.out = 0
      && Hashtbl.mem conns sc.fd
    then drop sc
  in
  let running = ref true in
  while !running do
    let now = Mono.now () in
    let readable = listeners @ Hashtbl.fold (fun fd _ a -> fd :: a) conns [] in
    let writable =
      Hashtbl.fold
        (fun fd sc a -> if Buffer.length sc.out > 0 then fd :: a else a)
        conns []
    in
    let rs, ws, _ =
      try Unix.select readable writable [] 0.05
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if List.mem fd listeners then begin
          match Unix.accept fd with
          | exception
              Unix.Unix_error
                ( ( Unix.EAGAIN | Unix.EWOULDBLOCK
                  (* a signal interrupted the accept, or the peer gave
                     up between select and accept: both mean "nothing
                     to accept right now", not an error *)
                  | Unix.EINTR | Unix.ECONNABORTED ),
                  _,
                  _ ) ->
              ()
          | cfd, _ ->
              Unix.set_nonblock cfd;
              (* Frames are small; Nagle would batch Pong/Nack replies
                 behind a 40ms delayed-ack window on TCP. *)
              if tcp_fd = Some fd then
                (try Unix.setsockopt cfd Unix.TCP_NODELAY true
                 with Unix.Unix_error _ -> ());
              let cid, outs = Server.accept srv ~now in
              let sc =
                {
                  fd = cfd;
                  cid;
                  out = Buffer.create 256;
                  out_off = 0;
                  close_after = false;
                }
              in
              Hashtbl.replace conns cfd sc;
              Hashtbl.replace by_cid cid sc;
              route outs
        end
        else
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some sc -> (
              match Unix.read fd buf 0 (Bytes.length buf) with
              | exception
                  Unix.Unix_error
                    ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                  ()
              | exception Unix.Unix_error _ ->
                  Server.on_close srv ~now sc.cid;
                  drop sc
              | 0 ->
                  Server.on_close srv ~now sc.cid;
                  drop sc
              | n ->
                  route
                    (Server.on_bytes srv ~now sc.cid
                       (Bytes.sub_string buf 0 n))))
      rs;
    reap_finished ();
    route (Server.step srv ~now);
    List.iter
      (fun fd ->
        match Hashtbl.find_opt conns fd with
        | Some sc -> flush sc
        | None -> ())
      ws;
    (* Also try to flush connections that gained output this round. *)
    Hashtbl.iter
      (fun _ sc ->
        if Buffer.length sc.out > 0 || sc.close_after then flush sc)
      (Hashtbl.copy conns);
    if Server.shutting_down srv && Hashtbl.length conns = 0 then
      running := false
  done;
  (* Join any seal domain still running (a shutdown can race an
     in-flight seal; its completion is simply never delivered). *)
  List.iter (fun j -> ignore (Pool.await j)) !jobs;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    listeners;
  if Sys.file_exists socket then Sys.remove socket

(* ---- The client --------------------------------------------------- *)

(* Connect to the daemon: over TCP when [tcp] is given, else over the
   Unix-domain [socket]. *)
let connect ?tcp socket =
  match tcp with
  | None ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_UNIX socket);
         fd
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e)
  | Some (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_INET (inet_addr host, port));
         (try Unix.setsockopt fd Unix.TCP_NODELAY true
          with Unix.Unix_error _ -> ());
         fd
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e)

let send_msg fd msg =
  write_all fd (Frame.encode (Proto.client_to_payload msg))

(* Blocking receive of the next server message. *)
let recv_msg fd dec =
  let buf = Bytes.create 8192 in
  let rec go () =
    match Frame.next dec with
    | Frame.Frame p -> (
        match Proto.server_of_payload p with
        | Ok m -> m
        | Error e -> raise (Error ("bad server frame: " ^ e)))
    | Frame.Corrupt e -> raise (Error ("corrupt server stream: " ^ e))
    | Frame.Awaiting ->
        let n = read_retry fd buf 0 (Bytes.length buf) in
        if n = 0 then raise End_of_file;
        Frame.feed dec ~len:n (Bytes.to_string buf);
        go ()
  in
  go ()

(* Drain any replies that are already here, without blocking. *)
let poll_msgs fd dec =
  let buf = Bytes.create 8192 in
  let msgs = ref [] in
  let continue = ref true in
  while !continue do
    match Frame.next dec with
    | Frame.Frame p -> (
        match Proto.server_of_payload p with
        | Ok m -> msgs := m :: !msgs
        | Error e -> raise (Error ("bad server frame: " ^ e)))
    | Frame.Corrupt e -> raise (Error ("corrupt server stream: " ^ e))
    | Frame.Awaiting -> (
        match Unix.select [ fd ] [] [] 0. with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ -> continue := false
        | _ -> (
            match read_retry fd buf 0 (Bytes.length buf) with
            | 0 -> raise End_of_file
            | n -> Frame.feed dec ~len:n (Bytes.to_string buf)))
  done;
  List.rev !msgs

exception Reconnect of float  (* sleep this long, then try again *)

let feed ?(rows_per_frame = 256) ?(max_attempts = 200) ?tcp ?follow ~socket
    ~session lines =
  ignore_sigpipe ();
  let lines = Array.of_list lines in
  let total = Array.length lines in
  let cursor = ref 0 in
  let handle_err code reason =
    match code with
    | "session-failed" | "garbled" | "shutting-down" ->
        raise (Reconnect 0.05)
    | _ ->
        raise
          (Error (Printf.sprintf "server rejected feed: %s (%s)" code reason))
  in
  (* One connection's worth of work; returns the sealed result or
     raises [Reconnect]. *)
  let attempt () =
    let fd = connect ?tcp socket in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let dec = Frame.decoder () in
        send_msg fd (Proto.Hello { version = Proto.version; session });
        let apply_flow = function
          | Proto.Nack { expected } -> cursor := expected
          | Proto.Retry_after { ms; expected; _ } ->
              Option.iter (fun e -> cursor := e) expected;
              Unix.sleepf (float_of_int ms /. 1000.)
          | Proto.Err { code; reason } -> handle_err code reason
          | Proto.Closing _ -> raise (Reconnect 0.02)
          | Proto.Info { json } ->
              (* Pushed rule updates (we subscribed below); anything
                 else [Info]-framed is equally the follower's to see. *)
              (match follow with Some f -> f json | None -> ())
          | Proto.Welcome _ | Proto.Pong | Proto.Sealed _ -> ()
        in
        (match recv_msg fd dec with
        | Proto.Welcome { resume } -> cursor := resume
        | Proto.Retry_after { ms; _ } ->
            raise (Reconnect (float_of_int ms /. 1000.))
        | Proto.Err { code; reason } -> handle_err code reason
        | Proto.Closing _ -> raise (Reconnect 0.02)
        | m ->
            raise
              (Error
                 ("unexpected reply to hello: " ^ Proto.server_to_payload m)));
        (* Following: register for pushed rule updates. The snapshot
           and every later delta arrive as [Info] frames, which
           [apply_flow] hands to the callback between row batches. *)
        if follow <> None then send_msg fd Proto.Subscribe;
        let result = ref None in
        while !result = None do
          if !cursor < total then begin
            let n = min rows_per_frame (total - !cursor) in
            let batch = Array.to_list (Array.sub lines !cursor n) in
            let start = !cursor in
            cursor := !cursor + n;
            send_msg fd (Proto.Rows { start; lines = batch });
            List.iter apply_flow (poll_msgs fd dec)
          end
          else begin
            send_msg fd (Proto.Seal { rows = total });
            match recv_msg fd dec with
            | Proto.Sealed { events; rules; violations } ->
                result := Some { events; rules; violations }
            | m -> apply_flow m
          end
        done;
        (try send_msg fd Proto.Bye with
        | Unix.Unix_error _ | End_of_file -> ());
        Option.get !result)
  in
  let rec go attempts =
    if attempts > max_attempts then
      raise (Error "feed: too many reconnect attempts")
    else
      match attempt () with
      | sealed -> sealed
      | exception Reconnect pause ->
          if pause > 0. then Unix.sleepf pause;
          go (attempts + 1)
      | exception
          ( End_of_file
          | Unix.Unix_error
              ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNREFUSED
                | Unix.ENOENT ),
                _,
                _ ) ) ->
          Unix.sleepf 0.05;
          go (attempts + 1)
  in
  go 1

let request ?tcp ~socket msg =
  ignore_sigpipe ();
  let fd = connect ?tcp socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let dec = Frame.decoder () in
      send_msg fd msg;
      recv_msg fd dec)

(* Session-scoped one-shot: the [stream] query needs an attached
   session, so unlike {!request} this handshakes with [Hello] first.
   The session stays resumable (and unsealed) afterwards. *)
let stream_query ?tcp ~socket ~session () =
  ignore_sigpipe ();
  let fd = connect ?tcp socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let dec = Frame.decoder () in
      send_msg fd (Proto.Hello { version = Proto.version; session });
      (match recv_msg fd dec with
      | Proto.Welcome _ -> ()
      | Proto.Err { code; reason } ->
          raise (Error (Printf.sprintf "server error [%s]: %s" code reason))
      | Proto.Retry_after { reason; _ } ->
          raise (Error ("server busy: " ^ reason))
      | _ -> raise (Error "unexpected reply to hello"));
      send_msg fd (Proto.Query Proto.Stream_rules);
      match recv_msg fd dec with
      | Proto.Info { json } ->
          (* Detach politely so the session is not held attached. *)
          (try send_msg fd Proto.Bye with _ -> ());
          json
      | Proto.Err { code; reason } ->
          raise (Error (Printf.sprintf "server error [%s]: %s" code reason))
      | Proto.Retry_after { reason; _ } ->
          (* e.g. the session is mid-seal on an analysis domain *)
          raise (Error ("server busy: " ^ reason))
      | _ -> raise (Error "unexpected reply to stream query"))
