(* The supervised multi-client analysis daemon, as a sans-IO engine.

   All protocol, session, supervision and backpressure logic lives here
   behind four entry points — [accept], [on_bytes], [on_close], [step]
   — that take the current time as an argument and return a list of
   transport actions. No sockets, no clocks, no threads: the Unix
   front end ({!Sockserv}) and the connection-chaos harness ({!Chaos})
   drive the very same state machine, one with real file descriptors
   and the monotonic clock ({!Mono}), the other with scripted faults
   and virtual time. That is what makes every failure mode injectable
   and every outcome assertable. The one concession to concurrency is
   the seal: derivation runs wherever the injected [runner] puts it
   (an analysis domain, a deferred virtual tick, or inline), and its
   completion re-enters the engine through a queue drained by [step].

   Isolation invariants:
   - a connection owns its frame decoder; a framing violation kills
     the connection (structured [err garbled]), never the session;
   - a session owns its import engine, pending queue and WAL journal;
     a worker exception (protocol abuse, importer anomaly, injected
     crash) kills the session state, never the daemon — the supervisor
     tombstones it with capped exponential backoff and lets the client
     rebuild from the durable journal;
   - ingest is bounded: a rows frame that would overflow the
     per-session or global queue budget is rejected whole with a
     structured [retry-after] — never buffered, never silently
     dropped. *)

module Trace = Lockdoc_trace.Trace
module Event = Lockdoc_trace.Event
module Layout = Lockdoc_trace.Layout
module Import = Lockdoc_db.Import
module Wal = Lockdoc_db.Wal
module Crashpoint = Lockdoc_db.Crashpoint
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Rule = Lockdoc_core.Rule
module Violation = Lockdoc_core.Violation
module Report = Lockdoc_core.Report
module Online = Lockdoc_stream.Online
module Obs = Lockdoc_obs.Obs

let c_accepts = Obs.counter "serve.accepts"
let c_conn_rejects = Obs.counter "serve.conn_rejects"
let c_hellos = Obs.counter "serve.hellos"
let c_frames = Obs.counter "serve.frames"
let c_rows = Obs.counter "serve.rows"
let c_events = Obs.counter "serve.events"
let c_nacks = Obs.counter "serve.nacks"
let c_retry_after = Obs.counter "serve.retry_after"
let c_garbled = Obs.counter "serve.garbled"
let c_proto_errors = Obs.counter "serve.proto_errors"
let c_session_failures = Obs.counter "serve.session_failures"
let c_restarts = Obs.counter "serve.restarts"
let c_idle_closes = Obs.counter "serve.idle_closes"
let c_seals = Obs.counter "serve.seals"
let c_rebuilds = Obs.counter "serve.rebuilds"
let c_supersedes = Obs.counter "serve.supersedes"
let c_queries = Obs.counter "serve.queries"
let c_stream_queries = Obs.counter "serve.stream_queries"
let c_subscribes = Obs.counter "serve.subscribes"
let c_pushes = Obs.counter "serve.pushes"
let g_sessions = Obs.gauge "serve.sessions"
let g_conns = Obs.gauge "serve.conns"
let g_queue_bytes = Obs.gauge "serve.queue_bytes"
let h_frame_latency = Obs.histogram "serve.frame_latency_ms"
let h_seal = Obs.histogram "serve.seal_ms"
let h_rebuild = Obs.histogram "serve.rebuild_ms"

(* ---- Configuration ------------------------------------------------ *)

type config = {
  max_clients : int;
  queue_bytes : int;
  total_queue_bytes : int;
  max_frame : int;
  session_timeout : float;
  events_per_step : int;
  durable_root : string option;
  wal_sync_every : int;
  retry_after_ms : int;
  restart_backoff : float;
  max_backoff : float;
  max_restarts : int;
  tac : float;
  jobs : int;
  sub_debounce_events : int;
  sub_min_interval : float;
}

let default_config =
  {
    max_clients = 64;
    queue_bytes = 1 lsl 20;
    total_queue_bytes = 8 lsl 20;
    max_frame = 1 lsl 20;
    session_timeout = 30.;
    events_per_step = 4096;
    durable_root = None;
    wal_sync_every = 1;
    retry_after_ms = 50;
    restart_backoff = 0.1;
    max_backoff = 5.;
    max_restarts = 5;
    tac = 0.9;
    jobs = 1;
    sub_debounce_events = 512;
    sub_min_interval = 0.1;
  }

(* ---- State -------------------------------------------------------- *)

type sealed = {
  sd_events : int;
  sd_rules : string;
  sd_violations : string;
  sd_rule_objs : (string * string) list;
      (* (rule key, single-object JSON) per mined rule, in rule order;
         concatenating the objects reproduces [sd_rules] byte for byte.
         Kept so a late subscriber still gets a keyed snapshot push. *)
}

(* What a seal job hands back across the domain boundary. Plain
   immutable data: the strings are fully materialised on the analysis
   domain, the loop only wraps them in protocol messages. *)
type seal_result = {
  r_events : int;
  r_rules : string;
  r_violations : string;
  r_rule_objs : (string * string) list;
}

type session_state =
  | Stream
  | Sealing
      (* Seal accepted; derivation is running on an analysis domain (or
         inline under the synchronous runner). Late rows are protocol
         errors, premature seal/stream answer [retry-after], and the
         session is exempt from idle GC until the job reports back. *)
  | Sealed_s of sealed
  | Failed of string

type session = {
  s_id : string;
  mutable s_conn : int option;
  mutable s_state : session_state;
  mutable s_layouts_rev : Layout.t list;
  mutable s_online : Online.t option;
  mutable s_seen_event : bool;  (* an event row was accepted *)
  mutable s_accepted : int;  (* rows journaled + enqueued (layouts incl.) *)
  mutable s_applied : int;  (* rows applied to the engine (layouts incl.) *)
  s_pending : (Event.t * int) Queue.t;  (* event, queue bytes *)
  mutable s_pending_bytes : int;
  s_markers : (int * float) Queue.t;  (* frame-end row index, t-enqueue *)
  mutable s_wal : Wal.writer option;
  mutable s_restarts : int;
  mutable s_not_before : float;
  mutable s_last_activity : float;
  (* Push subscription: the attached connection may subscribe to rule
     updates; the publication ledger remembers what it last saw so
     pushes carry deltas and silence means "nothing changed". *)
  mutable s_sub : bool;  (* the attached connection subscribed *)
  mutable s_pub : (string * string) list;  (* (key, obj) at last push *)
  mutable s_pub_pos : int;  (* engine position at last push *)
  mutable s_pub_t : float;  (* time of last push *)
}

type conn = {
  c_id : int;
  c_decoder : Frame.decoder;
  mutable c_session : string option;
  mutable c_last_activity : float;
}

type t = {
  cfg : config;
  runner : (unit -> unit) -> unit;
      (* How seal jobs execute. The default runs the job inline (the
         engine stays single-threaded and [Sealed] is produced in the
         same [on_bytes] call, exactly the pre-async behaviour); the
         Unix front end substitutes a {!Lockdoc_util.Pool.spawn}-based
         runner so the select loop keeps serving, and the chaos harness
         a tick-deferred one so virtual time exercises [Sealing]. *)
  seal_mu : Mutex.t;
  seal_done : (string * (seal_result, exn) result) Queue.t;
      (* Completions crossing back from analysis domains, drained on
         the loop by [drain_seals]. Guarded by [seal_mu]; jobs only
         push, the loop only pops. *)
  conns : (int, conn) Hashtbl.t;
  sessions : (string, session) Hashtbl.t;
  mutable next_conn : int;
  mutable pending_total : int;
  mutable shutdown : bool;
}

type output = Send of int * Proto.server_msg | Close of int * string

let create ?(config = default_config) ?(runner = fun f -> f ()) () =
  (match config.durable_root with
  | Some root -> if not (Sys.file_exists root) then Sys.mkdir root 0o755
  | None -> ());
  {
    cfg = config;
    runner;
    seal_mu = Mutex.create ();
    seal_done = Queue.create ();
    conns = Hashtbl.create 16;
    sessions = Hashtbl.create 16;
    next_conn = 0;
    pending_total = 0;
    shutdown = false;
  }

let config t = t.cfg
let shutting_down t = t.shutdown
let n_conns t = Hashtbl.length t.conns
let n_sessions t = Hashtbl.length t.sessions
let pending_total t = t.pending_total

let sorted_keys tbl compare =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

(* ---- Introspection ------------------------------------------------ *)

type session_view = {
  v_id : string;
  v_state : string;
  v_accepted : int;
  v_applied : int;
  v_pending_bytes : int;
  v_restarts : int;
  v_attached : bool;
}

let state_string = function
  | Stream -> "streaming"
  | Sealing -> "sealing"
  | Sealed_s _ -> "sealed"
  | Failed reason -> "failed: " ^ reason

let sessions t =
  List.map
    (fun id ->
      let s = Hashtbl.find t.sessions id in
      {
        v_id = s.s_id;
        v_state = state_string s.s_state;
        v_accepted = s.s_accepted;
        v_applied = s.s_applied;
        v_pending_bytes = s.s_pending_bytes;
        v_restarts = s.s_restarts;
        v_attached = s.s_conn <> None;
      })
    (sorted_keys t.sessions String.compare)

let status_json t =
  let open Report in
  to_string
    (O
       [
         ("clients", I (Hashtbl.length t.conns));
         ("sessions", I (Hashtbl.length t.sessions));
         ("queue_bytes", I t.pending_total);
         ("queue_bytes_limit", I t.cfg.total_queue_bytes);
         ("shutting_down", S (string_of_bool t.shutdown));
         ( "session",
           L
             (List.map
                (fun v ->
                  O
                    [
                      ("id", S v.v_id);
                      ("state", S v.v_state);
                      ("accepted_rows", I v.v_accepted);
                      ("applied_rows", I v.v_applied);
                      ("pending_bytes", I v.v_pending_bytes);
                      ("restarts", I v.v_restarts);
                      ("attached", S (string_of_bool v.v_attached));
                    ])
                (sessions t)) );
       ])

(* ---- Session helpers ---------------------------------------------- *)

let valid_session_id id =
  id <> ""
  && String.length id <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       id

let session_dir t id =
  Option.map (fun root -> Filename.concat root ("session-" ^ id))
    t.cfg.durable_root

let fresh_session _t id ~now =
  {
    s_id = id;
    s_conn = None;
    s_state = Stream;
    s_layouts_rev = [];
    s_online = None;
    s_seen_event = false;
    s_accepted = 0;
    s_applied = 0;
    s_pending = Queue.create ();
    s_pending_bytes = 0;
    s_markers = Queue.create ();
    s_wal = None;
    s_restarts = 0;
    s_not_before = now;
    s_last_activity = now;
    s_sub = false;
    s_pub = [];
    s_pub_pos = 0;
    s_pub_t = now;
  }

let open_wal t s ~start_lsn =
  match session_dir t s.s_id with
  | None -> ()
  | Some dir ->
      s.s_wal <-
        Some
          (Wal.create ~dir ~sync_every:t.cfg.wal_sync_every ~start_lsn ())

(* Sessions run the online derivator: the wrapped import engine is fed
   exactly as before, and the per-group rule counters it maintains let
   the [stream] query answer current rules without sealing. *)
let online_of s =
  match s.s_online with
  | Some o -> o
  | None ->
      let o = Online.create (List.rev s.s_layouts_rev) in
      s.s_online <- Some o;
      o

let drop_pending t s =
  t.pending_total <- t.pending_total - s.s_pending_bytes;
  s.s_pending_bytes <- 0;
  Queue.clear s.s_pending;
  Queue.clear s.s_markers

(* Feed one queued event to the engine. The crash point makes the
   worker hot path seedable: an armed [Crashpoint] kills exactly this
   session, and the chaos/supervision tests assert the daemon and the
   other sessions never notice. *)
let feed_one t s ~now =
  let ev, bytes = Queue.pop s.s_pending in
  Crashpoint.hit "serve.feed";
  Online.feed (online_of s) ev;
  s.s_applied <- s.s_applied + 1;
  s.s_pending_bytes <- s.s_pending_bytes - bytes;
  t.pending_total <- t.pending_total - bytes;
  while
    (not (Queue.is_empty s.s_markers))
    && fst (Queue.peek s.s_markers) <= s.s_applied
  do
    let _, t0 = Queue.pop s.s_markers in
    if Obs.enabled () then
      Obs.observe h_frame_latency (1000. *. (now -. t0))
  done

(* Rebuild a session's import state by replaying its durable journal
   (the valid WAL prefix). Rows were validated before they were
   journaled, so replay re-feeds them directly; a record that no longer
   parses (bit rot that survived framing) truncates the journal there —
   same discipline as {!Lockdoc_db.Durable.recover} — and the client
   re-sends the tail. *)
let rebuild_session t id ~now =
  let s = fresh_session t id ~now in
  (match session_dir t id with
  | None -> open_wal t s ~start_lsn:0
  | Some dir ->
      let t0 = if Obs.enabled () then Obs.Clock.wall () else 0. in
      let records, _torn = Wal.read ~dir ~from:0 in
      let stop = ref false in
      List.iter
        (fun (_lsn, line) ->
          if not !stop then
            match
              if String.length line >= 2 && String.sub line 0 2 = "T\t" then (
                let l =
                  Layout.of_string (String.sub line 2 (String.length line - 2))
                in
                if s.s_seen_event then failwith "layout after events";
                s.s_layouts_rev <- l :: s.s_layouts_rev)
              else begin
                s.s_seen_event <- true;
                Online.feed (online_of s) (Event.of_line line)
              end
            with
            | () ->
                s.s_accepted <- s.s_accepted + 1;
                s.s_applied <- s.s_applied + 1
            | exception _ -> stop := true)
        records;
      Wal.truncate_after ~dir ~lsn:s.s_accepted;
      open_wal t s ~start_lsn:s.s_accepted;
      if s.s_accepted > 0 then begin
        Obs.incr c_rebuilds;
        if Obs.enabled () then
          Obs.observe h_rebuild (1000. *. (Obs.Clock.wall () -. t0))
      end);
  Hashtbl.replace t.sessions id s;
  s

let close_wal s =
  (match s.s_wal with
  | Some w -> ( try Wal.close w with _ -> ())
  | None -> ());
  s.s_wal <- None

(* Supervisor: a worker exception tears down the session's in-memory
   state and tombstones it behind a capped exponential backoff. The
   durable journal survives, so a reconnecting client resumes from its
   checkpoint; without durability it simply restarts from row zero. *)
let session_fail t s ~now exn =
  let reason = Printexc.to_string exn in
  Obs.incr c_session_failures;
  close_wal s;
  drop_pending t s;
  s.s_online <- None;
  s.s_layouts_rev <- [];
  s.s_accepted <- 0;
  s.s_applied <- 0;
  s.s_restarts <- s.s_restarts + 1;
  let backoff =
    min t.cfg.max_backoff
      (t.cfg.restart_backoff *. (2. ** float_of_int (s.s_restarts - 1)))
  in
  s.s_not_before <- now +. backoff;
  s.s_state <- Failed reason;
  s.s_sub <- false;
  s.s_pub <- [];
  let outs =
    match s.s_conn with
    | Some cid ->
        [
          Send (cid, Proto.Err { code = "session-failed"; reason });
          Close (cid, "session-failed");
        ]
    | None -> []
  in
  s.s_conn <- None;
  outs

let detach t cid =
  match Hashtbl.find_opt t.conns cid with
  | None -> ()
  | Some c ->
      (match c.c_session with
      | Some sid -> (
          match Hashtbl.find_opt t.sessions sid with
          | Some s when s.s_conn = Some cid ->
              s.s_conn <- None;
              (* Subscriptions are per attached connection. *)
              s.s_sub <- false
          | _ -> ())
      | None -> ());
      Hashtbl.remove t.conns cid

(* ---- Connection lifecycle ----------------------------------------- *)

let accept t ~now =
  let id = t.next_conn in
  t.next_conn <- id + 1;
  if t.shutdown then begin
    Obs.incr c_conn_rejects;
    (id, [ Send (id, Proto.Err { code = "shutting-down"; reason = "daemon \
                                                                   is shutting down" });
           Close (id, "shutting-down") ])
  end
  else if Hashtbl.length t.conns >= t.cfg.max_clients then begin
    Obs.incr c_conn_rejects;
    ( id,
      [
        Send
          ( id,
            Proto.Retry_after
              {
                ms = t.cfg.retry_after_ms;
                expected = None;
                reason =
                  Printf.sprintf "at max-clients (%d)" t.cfg.max_clients;
              } );
        Close (id, "too-many-clients");
      ] )
  end
  else begin
    Obs.incr c_accepts;
    Hashtbl.replace t.conns id
      {
        c_id = id;
        c_decoder = Frame.decoder ~max_frame:t.cfg.max_frame ();
        c_session = None;
        c_last_activity = now;
      };
    (id, [])
  end

let on_close t ~now:_ cid = detach t cid

(* ---- Message handling --------------------------------------------- *)

let proto_error t c reason =
  Obs.incr c_proto_errors;
  detach t c.c_id;
  [
    Send (c.c_id, Proto.Err { code = "proto"; reason });
    Close (c.c_id, "protocol-error");
  ]

let handle_hello t c ~now version session_id =
  Obs.incr c_hellos;
  if version <> Proto.version then begin
    Obs.incr c_proto_errors;
    detach t c.c_id;
    [
      Send
        ( c.c_id,
          Proto.Err
            {
              code = "version";
              reason =
                Printf.sprintf "protocol version %d, server speaks %d" version
                  Proto.version;
            } );
      Close (c.c_id, "version-mismatch");
    ]
  end
  else if not (valid_session_id session_id) then
    proto_error t c (Printf.sprintf "invalid session id %S" session_id)
  else if c.c_session <> None then
    proto_error t c "second hello on one connection"
  else begin
    let session =
      match Hashtbl.find_opt t.sessions session_id with
      | Some s -> `Existing s
      | None -> `Absent
    in
    match session with
    | `Existing s when s.s_restarts > t.cfg.max_restarts ->
        detach t c.c_id;
        [
          Send
            ( c.c_id,
              Proto.Err
                {
                  code = "permanent-failure";
                  reason =
                    Printf.sprintf "session failed %d times; giving up"
                      s.s_restarts;
                } );
          Close (c.c_id, "permanent-failure");
        ]
    | `Existing s when now < s.s_not_before ->
        Obs.incr c_retry_after;
        detach t c.c_id;
        [
          Send
            ( c.c_id,
              Proto.Retry_after
                {
                  ms =
                    int_of_float (ceil ((s.s_not_before -. now) *. 1000.));
                  expected = None;
                  reason = "session restarting (backoff)";
                } );
          Close (c.c_id, "backoff");
        ]
    | (`Existing _ | `Absent) as found -> (
        try
          let s =
            match found with
            | `Existing ({ s_state = Failed _; _ } as old) ->
                (* Restart: rebuild from the journal (durable) or from
                   scratch, keeping the supervisor's restart ledger. *)
                Obs.incr c_restarts;
                let s = rebuild_session t session_id ~now in
                s.s_restarts <- old.s_restarts;
                s.s_not_before <- old.s_not_before;
                s
            | `Existing s -> s
            | `Absent -> rebuild_session t session_id ~now
          in
          (* One live connection per session: a reconnect (the client
             died and came back before we noticed) supersedes the old
             connection rather than fighting it. *)
          let superseded =
            match s.s_conn with
            | Some old when old <> c.c_id && Hashtbl.mem t.conns old ->
                Obs.incr c_supersedes;
                (match Hashtbl.find_opt t.conns old with
                | Some oc -> oc.c_session <- None
                | None -> ());
                Hashtbl.remove t.conns old;
                [
                  Send (old, Proto.Closing { reason = "superseded" });
                  Close (old, "superseded");
                ]
            | _ -> []
          in
          s.s_conn <- Some c.c_id;
          (* A fresh attachment never inherits the old connection's
             subscription; the new client asks for its own. *)
          s.s_sub <- false;
          s.s_last_activity <- now;
          c.c_session <- Some session_id;
          superseded @ [ Send (c.c_id, Proto.Welcome { resume = s.s_accepted }) ]
        with exn -> (
          (* A rebuild that dies (e.g. crash-injected WAL append during
             journal truncation) is a session failure like any other. *)
          match Hashtbl.find_opt t.sessions session_id with
          | Some s ->
              let outs = session_fail t s ~now exn in
              detach t c.c_id;
              outs
              @ [
                  Send
                    ( c.c_id,
                      Proto.Err
                        {
                          code = "session-failed";
                          reason = Printexc.to_string exn;
                        } );
                  Close (c.c_id, "session-failed");
                ]
          | None -> proto_error t c (Printexc.to_string exn)))
  end

type parsed_row = P_layout of Layout.t | P_event of Event.t

let handle_rows t c s ~now start lines =
  match s.s_state with
  | Failed reason ->
      (* Unreachable through the normal flow (a failed session has no
         attached connection), kept for defence in depth. *)
      proto_error t c ("session failed: " ^ reason)
  | Sealed_s _ -> proto_error t c "rows after seal"
  | Sealing -> proto_error t c "rows while sealing"
  | Stream -> (
      Obs.incr c_rows;
      if start > s.s_accepted then begin
        (* Sequence gap: a frame was lost in transit. *)
        Obs.incr c_nacks;
        [ Send (c.c_id, Proto.Nack { expected = s.s_accepted }) ]
      end
      else
        let skip = s.s_accepted - start in
        let fresh =
          if skip = 0 then lines
          else List.filteri (fun i _ -> i >= skip) lines
        in
        if fresh = [] then []  (* pure retransmission; nothing new *)
        else
          let bytes =
            List.fold_left (fun a l -> a + String.length l + 1) 0 fresh
          in
          if
            s.s_pending_bytes + bytes > t.cfg.queue_bytes
            || t.pending_total + bytes > t.cfg.total_queue_bytes
          then begin
            Obs.incr c_retry_after;
            [
              Send
                ( c.c_id,
                  Proto.Retry_after
                    {
                      ms = t.cfg.retry_after_ms;
                      expected = Some s.s_accepted;
                      reason =
                        (if s.s_pending_bytes + bytes > t.cfg.queue_bytes
                         then "session ingest queue full"
                         else "server ingest queues full");
                    } );
            ]
          end
          else (
            (* Validate the whole frame before accepting any of it: a
               row that does not parse rejects the frame atomically, so
               the journal only ever holds well-formed rows. *)
            match
              List.map
                (fun line ->
                  if String.length line >= 2 && String.sub line 0 2 = "T\t"
                  then
                    P_layout
                      (Layout.of_string
                         (String.sub line 2 (String.length line - 2)))
                  else P_event (Event.of_line line))
                lines
            with
            | exception Failure reason ->
                proto_error t c ("unparseable row: " ^ reason)
            | parsed -> (
                let parsed_fresh =
                  if skip = 0 then parsed
                  else List.filteri (fun i _ -> i >= skip) parsed
                in
                let layout_after_event = ref s.s_seen_event in
                let misordered =
                  List.exists
                    (function
                      | P_layout _ -> !layout_after_event
                      | P_event _ ->
                          layout_after_event := true;
                          false)
                    parsed_fresh
                in
                if misordered then
                  proto_error t c "layout row after event rows"
                else
                  try
                    Crashpoint.hit "serve.rows";
                    let had_events = ref false in
                    List.iter2
                      (fun line p ->
                        (match s.s_wal with
                        | Some w -> Wal.append w line
                        | None -> ());
                        match p with
                        | P_layout l ->
                            s.s_layouts_rev <- l :: s.s_layouts_rev;
                            s.s_accepted <- s.s_accepted + 1;
                            s.s_applied <- s.s_applied + 1
                        | P_event ev ->
                            had_events := true;
                            s.s_seen_event <- true;
                            let b = String.length line + 1 in
                            Queue.push (ev, b) s.s_pending;
                            s.s_pending_bytes <- s.s_pending_bytes + b;
                            t.pending_total <- t.pending_total + b;
                            s.s_accepted <- s.s_accepted + 1;
                            Obs.incr c_events)
                      fresh parsed_fresh;
                    (match s.s_wal with Some w -> Wal.flush w | None -> ());
                    if !had_events then
                      Queue.push (s.s_accepted, now) s.s_markers;
                    s.s_last_activity <- now;
                    []
                  with exn ->
                    let outs = session_fail t s ~now exn in
                    detach t c.c_id;
                    outs)))

(* ---- Sealing (off-loop) and rule pushes --------------------------- *)

let mined_key (m : Derivator.mined) =
  m.Derivator.m_type ^ "/" ^ m.Derivator.m_member ^ "/"
  ^ Rule.access_to_string m.Derivator.m_kind

let mined_objs mined =
  List.map (fun m -> (mined_key m, Report.mined_rule_to_json m)) mined

(* The encoder joins array elements with bare commas, so this is
   [Report.mined_to_json] of the same list, byte for byte — checked by
   the byte-identity oracle on both the push and the sealed paths. *)
let objs_array objs = "[" ^ String.concat "," (List.map snd objs) ^ "]"

(* Which rules changed since the subscriber's last push: [added] is
   every (key, obj) that is new or whose object differs, [removed] the
   keys that vanished. Comparison is on the JSON bytes, so a support
   shift alone republished the rule — that is the point of pushing. *)
let rules_delta ~prev ~next =
  let old = Hashtbl.create 16 in
  List.iter (fun (k, o) -> Hashtbl.replace old k o) prev;
  let added =
    List.filter
      (fun (k, o) ->
        match Hashtbl.find_opt old k with
        | Some o' -> not (String.equal o o')
        | None -> true)
      next
  in
  let kept = Hashtbl.create 16 in
  List.iter (fun (k, _) -> Hashtbl.replace kept k ()) next;
  let removed = List.filter_map
      (fun (k, _) -> if Hashtbl.mem kept k then None else Some k) prev
  in
  (added, removed)

let push_msg s ~state ~events ~objs ~violations ~added ~removed =
  Obs.incr c_pushes;
  let json =
    Printf.sprintf
      {|{"session":%s,"push":"rules","state":"%s","events":%d,"accepted_rows":%d,"added":%s,"removed":%s,"rules":%s,"violations":%s}|}
      (Report.to_string (Report.S s.s_id))
      state events s.s_accepted (objs_array added)
      (Report.to_string (Report.L (List.map (fun k -> Report.S k) removed)))
      (objs_array objs) violations
  in
  Proto.Info { json }

(* Move the seal off the loop: capture everything the derivation needs,
   flip the session to [Sealing], and hand the work to the runner. The
   loop keeps serving other connections; [drain_seals] picks up the
   completion. Under the synchronous default runner the job runs inline
   here and [drain_seals] (called right after by [handle_seal]) replies
   [Sealed] in the same [on_bytes] call — the pre-async contract. *)
let begin_seal t s =
  Crashpoint.hit "serve.seal";
  let events =
    List.rev (Queue.fold (fun acc (ev, _) -> ev :: acc) [] s.s_pending)
  in
  drop_pending t s;
  close_wal s;
  let onl = online_of s in
  let tac = t.cfg.tac and jobs = t.cfg.jobs and sid = s.s_id in
  s.s_state <- Sealing;
  t.runner (fun () ->
      (* Analysis-domain side. [onl] is owned by this job until the
         completion is drained: every on-loop path checks [Sealing]
         before touching the session's engine. *)
      let result =
        match
          let t0 = if Obs.enabled () then Obs.Clock.wall () else 0. in
          List.iter
            (fun ev ->
              Crashpoint.hit "serve.feed";
              Online.feed onl ev)
            events;
          let _stats = Online.finalize onl in
          let dataset = Dataset.of_store (Online.store onl) in
          let mined = Derivator.derive_all ~tac ~jobs dataset in
          let rules = Report.mined_to_json mined in
          let violations =
            Report.violations_to_json (Violation.find ~jobs dataset mined)
          in
          if Obs.enabled () then
            Obs.observe h_seal (1000. *. (Obs.Clock.wall () -. t0));
          {
            r_events = Online.position onl;
            r_rules = rules;
            r_violations = violations;
            r_rule_objs = mined_objs mined;
          }
        with
        | r -> Ok r
        | exception exn -> Error exn
      in
      Mutex.lock t.seal_mu;
      Queue.push (sid, result) t.seal_done;
      Mutex.unlock t.seal_mu)

(* Collect finished seal jobs and resolve their sessions. A completion
   whose session is no longer [Sealing] (failed and rebuilt in the
   meantime) is stale and dropped — the job only ever touched its own
   captured engine. *)
let drain_seals t ~now =
  let completed = ref [] in
  Mutex.lock t.seal_mu;
  while not (Queue.is_empty t.seal_done) do
    completed := Queue.pop t.seal_done :: !completed
  done;
  Mutex.unlock t.seal_mu;
  List.concat_map
    (fun (sid, result) ->
      match Hashtbl.find_opt t.sessions sid with
      | Some ({ s_state = Sealing; _ } as s) -> (
          match result with
          | Ok r ->
              s.s_state <-
                Sealed_s
                  {
                    sd_events = r.r_events;
                    sd_rules = r.r_rules;
                    sd_violations = r.r_violations;
                    sd_rule_objs = r.r_rule_objs;
                  };
              s.s_applied <- s.s_accepted;
              s.s_last_activity <- now;
              Obs.incr c_seals;
              (match s.s_conn with
              | Some cid ->
                  (* Final push first (the subscriber's last delta),
                     then the [Sealed] reply the sealing client awaits. *)
                  let push =
                    if s.s_sub then begin
                      let added, removed =
                        rules_delta ~prev:s.s_pub ~next:r.r_rule_objs
                      in
                      s.s_pub <- r.r_rule_objs;
                      s.s_pub_pos <- r.r_events;
                      s.s_pub_t <- now;
                      [
                        Send
                          ( cid,
                            push_msg s ~state:"sealed" ~events:r.r_events
                              ~objs:r.r_rule_objs ~violations:r.r_violations
                              ~added ~removed );
                      ]
                    end
                    else []
                  in
                  push
                  @ [
                      Send
                        ( cid,
                          Proto.Sealed
                            {
                              events = r.r_events;
                              rules = r.r_rules;
                              violations = r.r_violations;
                            } );
                    ]
              | None -> [])
          | Error exn -> session_fail t s ~now exn)
      | _ -> [])
    (List.rev !completed)

let handle_seal t c s ~now rows =
  match s.s_state with
  | Sealed_s sd ->
      (* Idempotent re-seal: answer the cached result. *)
      s.s_last_activity <- now;
      [
        Send
          ( c.c_id,
            Proto.Sealed
              {
                events = sd.sd_events;
                rules = sd.sd_rules;
                violations = sd.sd_violations;
              } );
      ]
  | Sealing ->
      (* A retransmitted seal raced the running job: hold the client
         off, the [Sealed] reply arrives when the job completes. *)
      Obs.incr c_retry_after;
      s.s_last_activity <- now;
      [
        Send
          ( c.c_id,
            Proto.Retry_after
              {
                ms = t.cfg.retry_after_ms;
                expected = Some s.s_accepted;
                reason = "seal in progress";
              } );
      ]
  | Stream when rows <> s.s_accepted ->
      (* The client streamed [rows] rows but some never arrived (or it
         rewound short): answer the watermark instead of sealing a
         truncated stream. *)
      Obs.incr c_nacks;
      [ Send (c.c_id, Proto.Nack { expected = s.s_accepted }) ]
  | Stream | Failed _ -> (
      try
        begin_seal t s;
        s.s_last_activity <- now;
        drain_seals t ~now
      with exn ->
        let outs = session_fail t s ~now exn in
        detach t c.c_id;
        outs)

let handle_query t c q =
  Obs.incr c_queries;
  let json =
    match q with
    | Proto.Status -> status_json t
    | Proto.Metrics -> Obs.to_json_string ()
    | Proto.Stream_rules -> assert false (* routed through handle_stream *)
  in
  [ Send (c.c_id, Proto.Info { json }) ]

(* The [stream] query: answer the session's current rules from the
   online derivator. Drains the pending queue first so the answer
   reflects every accepted row, then freezes the counters — the store
   is never sealed, so the client keeps feeding afterwards. *)
let handle_stream t c s ~now =
  Obs.incr c_queries;
  Obs.incr c_stream_queries;
  let reply ~state ~events ~rules ~violations =
    let json =
      Printf.sprintf
        {|{"session":%s,"state":"%s","events":%d,"accepted_rows":%d,"rules":%s,"violations":%s}|}
        (Report.to_string (Report.S s.s_id))
        state events s.s_accepted rules violations
    in
    [ Send (c.c_id, Proto.Info { json }) ]
  in
  match s.s_state with
  | Failed reason -> proto_error t c ("session failed: " ^ reason)
  | Sealing ->
      (* The engine is busy on the analysis domain; the final answer is
         moments away anyway. *)
      Obs.incr c_retry_after;
      [
        Send
          ( c.c_id,
            Proto.Retry_after
              {
                ms = t.cfg.retry_after_ms;
                expected = Some s.s_accepted;
                reason = "seal in progress";
              } );
      ]
  | Sealed_s sd ->
      (* Sealed sessions answer their cached (final) result. *)
      reply ~state:"sealed" ~events:sd.sd_events ~rules:sd.sd_rules
        ~violations:sd.sd_violations
  | Stream -> (
      try
        Crashpoint.hit "serve.stream";
        while not (Queue.is_empty s.s_pending) do
          feed_one t s ~now
        done;
        s.s_last_activity <- now;
        match s.s_online with
        | None ->
            (* No event fed yet. Do NOT force the engine into existence
               here: it must only be built once every layout row is in,
               which [feed_one] guarantees (layouts precede events). *)
            reply ~state:"streaming" ~events:0 ~rules:"[]" ~violations:"[]"
        | Some onl ->
            let dataset, mined = Online.freeze ~tac:t.cfg.tac ~jobs:1 onl in
            let rules = Report.mined_to_json mined in
            let violations =
              Report.violations_to_json (Violation.find ~jobs:1 dataset mined)
            in
            reply ~state:"streaming" ~events:(Online.position onl) ~rules
              ~violations
      with exn ->
        let outs = session_fail t s ~now exn in
        detach t c.c_id;
        outs)

(* Register the attached connection for push rule updates. The reply is
   an immediate snapshot push (added = every current rule) so the
   subscriber starts from a known state; subsequent pushes are deltas
   computed against the publication ledger in [step]. *)
let handle_subscribe t c s ~now =
  Obs.incr c_subscribes;
  match s.s_state with
  | Failed reason -> proto_error t c ("session failed: " ^ reason)
  | Sealing ->
      (* The engine is on the analysis domain, so no snapshot yet: the
         completion push in [drain_seals] doubles as one. *)
      s.s_sub <- true;
      s.s_pub <- [];
      s.s_last_activity <- now;
      []
  | Sealed_s sd ->
      s.s_sub <- true;
      s.s_pub <- sd.sd_rule_objs;
      s.s_pub_pos <- sd.sd_events;
      s.s_pub_t <- now;
      s.s_last_activity <- now;
      [
        Send
          ( c.c_id,
            push_msg s ~state:"sealed" ~events:sd.sd_events
              ~objs:sd.sd_rule_objs ~violations:sd.sd_violations
              ~added:sd.sd_rule_objs ~removed:[] );
      ]
  | Stream -> (
      try
        Crashpoint.hit "serve.stream";
        while not (Queue.is_empty s.s_pending) do
          feed_one t s ~now
        done;
        s.s_sub <- true;
        s.s_last_activity <- now;
        match s.s_online with
        | None ->
            (* Nothing fed yet (see [handle_stream] on why the engine
               must not be forced into existence here). *)
            s.s_pub <- [];
            s.s_pub_pos <- 0;
            s.s_pub_t <- now;
            [
              Send
                ( c.c_id,
                  push_msg s ~state:"streaming" ~events:0 ~objs:[]
                    ~violations:"[]" ~added:[] ~removed:[] );
            ]
        | Some onl ->
            let dataset, mined = Online.freeze ~tac:t.cfg.tac ~jobs:1 onl in
            let objs = mined_objs mined in
            let violations =
              Report.violations_to_json (Violation.find ~jobs:1 dataset mined)
            in
            s.s_pub <- objs;
            s.s_pub_pos <- Online.position onl;
            s.s_pub_t <- now;
            [
              Send
                ( c.c_id,
                  push_msg s ~state:"streaming" ~events:(Online.position onl)
                    ~objs ~violations ~added:objs ~removed:[] );
            ]
      with exn ->
        let outs = session_fail t s ~now exn in
        detach t c.c_id;
        outs)

(* The step-time half of subscriptions: once the session has applied
   every accepted row (the pending queue is empty, so a [stream] query
   at this instant would answer the same bytes) and the derivation has
   drifted past the debounce — enough new events AND enough elapsed
   time — freeze and push the delta. An unchanged freeze advances the
   ledger silently: subscribers only hear about change. *)
let session_push t s ~now =
  match (s.s_conn, s.s_state, s.s_online) with
  | Some cid, Stream, Some onl
    when s.s_sub
         && Queue.is_empty s.s_pending
         && Online.position onl - s.s_pub_pos >= t.cfg.sub_debounce_events
         && now -. s.s_pub_t >= t.cfg.sub_min_interval -> (
      try
        let dataset, mined = Online.freeze ~tac:t.cfg.tac ~jobs:1 onl in
        let objs = mined_objs mined in
        let added, removed = rules_delta ~prev:s.s_pub ~next:objs in
        s.s_pub_pos <- Online.position onl;
        s.s_pub_t <- now;
        if added = [] && removed = [] then []
        else begin
          s.s_pub <- objs;
          let violations =
            Report.violations_to_json (Violation.find ~jobs:1 dataset mined)
          in
          [
            Send
              ( cid,
                push_msg s ~state:"streaming" ~events:(Online.position onl)
                  ~objs ~violations ~added ~removed );
          ]
        end
      with exn -> session_fail t s ~now exn)
  | _ -> []

let handle_shutdown t c =
  t.shutdown <- true;
  let others =
    List.filter_map
      (fun cid ->
        if cid = c.c_id then None
        else Some [ Send (cid, Proto.Closing { reason = "shutdown" });
                    Close (cid, "shutdown") ])
      (sorted_keys t.conns compare)
  in
  let outs =
    [ Send (c.c_id, Proto.Closing { reason = "shutdown" });
      Close (c.c_id, "shutdown") ]
    :: others
  in
  Hashtbl.reset t.conns;
  Hashtbl.iter (fun _ s -> s.s_conn <- None) t.sessions;
  List.concat outs

let with_session t c ~f =
  match c.c_session with
  | None -> proto_error t c "message before hello"
  | Some sid -> (
      match Hashtbl.find_opt t.sessions sid with
      | None -> proto_error t c "session vanished"
      | Some s -> f s)

let handle_msg t c ~now msg =
  match msg with
  | Proto.Hello { version; session } -> handle_hello t c ~now version session
  | Proto.Rows { start; lines } ->
      with_session t c ~f:(fun s -> handle_rows t c s ~now start lines)
  | Proto.Seal { rows } ->
      with_session t c ~f:(fun s -> handle_seal t c s ~now rows)
  | Proto.Query Proto.Stream_rules ->
      with_session t c ~f:(fun s -> handle_stream t c s ~now)
  | Proto.Query q -> handle_query t c q
  | Proto.Subscribe ->
      with_session t c ~f:(fun s -> handle_subscribe t c s ~now)
  | Proto.Ping -> [ Send (c.c_id, Proto.Pong) ]
  | Proto.Bye ->
      (match c.c_session with
      | Some sid -> (
          match Hashtbl.find_opt t.sessions sid with
          | Some s -> s.s_last_activity <- now
          | None -> ())
      | None -> ());
      detach t c.c_id;
      [ Send (c.c_id, Proto.Closing { reason = "bye" }); Close (c.c_id, "bye") ]
  | Proto.Shutdown -> handle_shutdown t c

let on_bytes t ~now cid bytes =
  match Hashtbl.find_opt t.conns cid with
  | None -> []  (* late bytes for a connection we already closed *)
  | Some c ->
      c.c_last_activity <- now;
      Frame.feed c.c_decoder bytes;
      let outs = ref [] in
      let stop = ref false in
      while not !stop do
        (* The connection may have been closed by its own message
           (protocol error, bye, shutdown): stop draining then. *)
        if not (Hashtbl.mem t.conns cid) then stop := true
        else
          match Frame.next c.c_decoder with
          | Frame.Awaiting -> stop := true
          | Frame.Frame payload -> (
              Obs.incr c_frames;
              match Proto.client_of_payload payload with
              | Ok msg -> outs := !outs @ handle_msg t c ~now msg
              | Error reason -> outs := !outs @ proto_error t c reason)
          | Frame.Corrupt reason ->
              Obs.incr c_garbled;
              detach t cid;
              outs :=
                !outs
                @ [
                    Send (cid, Proto.Err { code = "garbled"; reason });
                    Close (cid, "garbled");
                  ];
              stop := true
      done;
      !outs

(* ---- The periodic step -------------------------------------------- *)

let step t ~now =
  let outs = ref [] in
  (* Seal jobs that completed since the last tick resolve first, so a
     [Sealed] reply is never delayed behind this tick's ingest work. *)
  outs := drain_seals t ~now;
  (* Idle connections: a peer that has gone silent past the timeout is
     closed; its session stays resumable. *)
  List.iter
    (fun cid ->
      match Hashtbl.find_opt t.conns cid with
      | Some c when now -. c.c_last_activity > t.cfg.session_timeout ->
          Obs.incr c_idle_closes;
          detach t cid;
          outs :=
            !outs
            @ [
                Send (cid, Proto.Closing { reason = "idle-timeout" });
                Close (cid, "idle-timeout");
              ]
      | _ -> ())
    (sorted_keys t.conns compare);
  (* Bounded ingest processing, round-robin over sessions in id order
     so progress is deterministic and no session can starve others. *)
  List.iter
    (fun sid ->
      match Hashtbl.find_opt t.sessions sid with
      | None -> ()
      | Some s -> (
          try
            let budget = ref t.cfg.events_per_step in
            while !budget > 0 && not (Queue.is_empty s.s_pending) do
              feed_one t s ~now;
              decr budget
            done
          with exn -> outs := !outs @ session_fail t s ~now exn))
    (sorted_keys t.sessions String.compare);
  (* Debounced rule pushes to subscribed connections. *)
  List.iter
    (fun sid ->
      match Hashtbl.find_opt t.sessions sid with
      | None -> ()
      | Some s -> outs := !outs @ session_push t s ~now)
    (sorted_keys t.sessions String.compare);
  (* Detached healthy sessions idle past the timeout are garbage
     collected; durable ones remain resumable from their on-disk
     journal. Failed sessions keep their tombstone (and with it the
     supervisor's restart ledger and backoff clock). *)
  List.iter
    (fun sid ->
      match Hashtbl.find_opt t.sessions sid with
      | Some ({ s_state = Stream | Sealed_s _; s_conn = None; _ } as s)
        when now -. s.s_last_activity > t.cfg.session_timeout ->
          close_wal s;
          drop_pending t s;
          Hashtbl.remove t.sessions sid
      | _ -> ())
    (sorted_keys t.sessions String.compare);
  if Obs.enabled () then begin
    Obs.set_gauge g_sessions (float_of_int (Hashtbl.length t.sessions));
    Obs.set_gauge g_conns (float_of_int (Hashtbl.length t.conns));
    Obs.set_gauge g_queue_bytes (float_of_int t.pending_total)
  end;
  !outs

(* ---- Helpers for front ends --------------------------------------- *)

let encode_output = function
  | Send (cid, msg) ->
      (cid, `Send (Frame.encode (Proto.server_to_payload msg)))
  | Close (cid, reason) -> (cid, `Close reason)
