(* Wire messages. One frame = one message; the payload is a
   tab-separated head line, optionally followed by newline-separated
   data rows (trace lines never contain raw newlines: identifier fields
   are Fieldenc-escaped, which is what makes this framing sound).

   Row frames carry the absolute index of their first row so the
   stream survives lossy transports: a gap nacks with the expected
   index, an overlap (a retransmission after a retry-after) is
   deduplicated idempotently. *)

module Fieldenc = Lockdoc_trace.Fieldenc

let version = 1

type query = Status | Metrics | Stream_rules

type client_msg =
  | Hello of { version : int; session : string }
  | Rows of { start : int; lines : string list }
  | Seal of { rows : int }
  | Query of query
  | Subscribe
  | Ping
  | Bye
  | Shutdown

type server_msg =
  | Welcome of { resume : int }
  | Nack of { expected : int }
  | Retry_after of { ms : int; expected : int option; reason : string }
  | Err of { code : string; reason : string }
  | Pong
  | Sealed of { events : int; rules : string; violations : string }
  | Info of { json : string }
  | Closing of { reason : string }

let query_to_string = function
  | Status -> "status"
  | Metrics -> "metrics"
  | Stream_rules -> "stream"

let query_of_string = function
  | "status" -> Some Status
  | "metrics" -> Some Metrics
  | "stream" -> Some Stream_rules
  | _ -> None

(* ---- Encoding ----------------------------------------------------- *)

let tab = String.concat "\t"

let client_to_payload = function
  | Hello { version; session } ->
      tab [ "hello"; string_of_int version; Fieldenc.encode session ]
  | Rows { start; lines } ->
      String.concat "\n"
        (tab [ "rows"; string_of_int start; string_of_int (List.length lines) ]
        :: lines)
  | Seal { rows } -> tab [ "seal"; string_of_int rows ]
  | Query q -> tab [ "query"; query_to_string q ]
  | Subscribe -> "subscribe"
  | Ping -> "ping"
  | Bye -> "bye"
  | Shutdown -> "shutdown"

let server_to_payload = function
  | Welcome { resume } -> tab [ "welcome"; string_of_int resume ]
  | Nack { expected } -> tab [ "nack"; string_of_int expected ]
  | Retry_after { ms; expected; reason } ->
      tab
        [
          "retry-after"; string_of_int ms;
          (match expected with Some e -> string_of_int e | None -> "-");
          Fieldenc.encode reason;
        ]
  | Err { code; reason } -> tab [ "err"; code; Fieldenc.encode reason ]
  | Pong -> "pong"
  | Sealed { events; rules; violations } ->
      tab
        [
          "sealed"; string_of_int events; Fieldenc.encode rules;
          Fieldenc.encode violations;
        ]
  | Info { json } -> tab [ "info"; Fieldenc.encode json ]
  | Closing { reason } -> tab [ "closing"; Fieldenc.encode reason ]

(* ---- Decoding ----------------------------------------------------- *)

let head_and_rows payload =
  match String.index_opt payload '\n' with
  | None -> (payload, [])
  | Some i ->
      let head = String.sub payload 0 i in
      let rest = String.sub payload (i + 1) (String.length payload - i - 1) in
      (head, String.split_on_char '\n' rest)

let int_field name s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad %s field %S" name s)

let ( let* ) = Result.bind

let decode_field name s =
  match Fieldenc.decode s with
  | v -> Ok v
  | exception Failure _ -> Error (Printf.sprintf "bad %s escape" name)

let client_of_payload payload =
  let head, rows = head_and_rows payload in
  match (String.split_on_char '\t' head, rows) with
  | [ "hello"; v; session ], [] ->
      let* version = int_field "version" v in
      let* session = decode_field "session" session in
      Ok (Hello { version; session })
  | [ "rows"; start; n ], lines ->
      let* start = int_field "start" start in
      let* n = int_field "count" n in
      if n <> List.length lines then
        Error
          (Printf.sprintf "rows frame announces %d rows, carries %d" n
             (List.length lines))
      else if start < 0 then Error "negative rows start"
      else Ok (Rows { start; lines })
  | [ "seal"; rows ], [] ->
      let* rows = int_field "rows" rows in
      if rows < 0 then Error "negative seal row count" else Ok (Seal { rows })
  | [ "query"; q ], [] -> (
      match query_of_string q with
      | Some q -> Ok (Query q)
      | None -> Error (Printf.sprintf "unknown query %S" q))
  | [ "subscribe" ], [] -> Ok Subscribe
  | [ "ping" ], [] -> Ok Ping
  | [ "bye" ], [] -> Ok Bye
  | [ "shutdown" ], [] -> Ok Shutdown
  | tag :: _, _ -> Error (Printf.sprintf "unknown or malformed message %S" tag)
  | [], _ -> Error "empty message"

let server_of_payload payload =
  let head, rows = head_and_rows payload in
  match (String.split_on_char '\t' head, rows) with
  | [ "welcome"; n ], [] ->
      let* resume = int_field "resume" n in
      Ok (Welcome { resume })
  | [ "nack"; n ], [] ->
      let* expected = int_field "expected" n in
      Ok (Nack { expected })
  | [ "retry-after"; ms; expected; reason ], [] ->
      let* ms = int_field "ms" ms in
      let* expected =
        if expected = "-" then Ok None
        else Result.map Option.some (int_field "expected" expected)
      in
      let* reason = decode_field "reason" reason in
      Ok (Retry_after { ms; expected; reason })
  | [ "err"; code; reason ], [] ->
      let* reason = decode_field "reason" reason in
      Ok (Err { code; reason })
  | [ "pong" ], [] -> Ok Pong
  | [ "sealed"; events; rules; violations ], [] ->
      let* events = int_field "events" events in
      let* rules = decode_field "rules" rules in
      let* violations = decode_field "violations" violations in
      Ok (Sealed { events; rules; violations })
  | [ "info"; json ], [] ->
      let* json = decode_field "info" json in
      Ok (Info { json })
  | [ "closing"; reason ], [] ->
      let* reason = decode_field "reason" reason in
      Ok (Closing { reason })
  | tag :: _, _ -> Error (Printf.sprintf "unknown or malformed reply %S" tag)
  | [], _ -> Error "empty reply"
