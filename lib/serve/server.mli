(** The `lockdoc serve` daemon core, as a sans-IO state machine.

    The engine owns every protocol, session, supervision and
    backpressure decision; transports stay dumb. Four entry points take
    the current time and return transport actions:

    - {!accept} — a transport accepted a connection;
    - {!on_bytes} — bytes arrived on a connection;
    - {!on_close} — a connection vanished;
    - {!step} — periodic tick: bounded ingest processing, idle
      timeouts, session GC.

    The Unix socket front end ({!Sockserv}) drives it with real file
    descriptors and the monotonic clock ({!Mono}); the chaos harness
    ({!Chaos}) drives the identical machine with scripted faults and
    virtual time.

    {2 Fault isolation}

    A framing violation closes the {e connection} ([err garbled]); the
    session survives and a reconnecting client resumes from
    [Welcome.resume]. A worker exception — protocol abuse, importer
    anomaly, injected {!Lockdoc_db.Crashpoint} crash — kills the
    {e session}: the supervisor tombstones it behind capped exponential
    backoff ([retry-after] on early reconnect, [err permanent-failure]
    after [max_restarts]), and a later reconnect rebuilds it from the
    durable journal. The daemon itself never dies.

    {2 Backpressure}

    Every session journals and queues accepted rows; {!step} drains at
    most [events_per_step] per session per tick. A rows frame that
    would push the session past [queue_bytes] — or the daemon past
    [total_queue_bytes] — is rejected whole with [retry-after]:
    graceful degradation, never OOM, never a silent drop. *)

type config = {
  max_clients : int;  (** concurrent connections *)
  queue_bytes : int;  (** per-session pending-ingest cap *)
  total_queue_bytes : int;  (** daemon-wide pending-ingest cap *)
  max_frame : int;  (** largest client frame accepted *)
  session_timeout : float;  (** idle seconds before close / GC *)
  events_per_step : int;  (** per-session feed budget per {!step} *)
  durable_root : string option;
      (** when set, each session journals accepted rows to
          [root/session-<id>/] in WAL framing and is rebuilt from the
          valid journal prefix on reconnect *)
  wal_sync_every : int;
  retry_after_ms : int;  (** suggested delay in load-shed replies *)
  restart_backoff : float;  (** base of the exponential backoff, seconds *)
  max_backoff : float;
  max_restarts : int;  (** failures before [permanent-failure] *)
  tac : float;  (** acceptance threshold used at seal time *)
  jobs : int;  (** analysis domains used at seal time *)
  sub_debounce_events : int;
      (** a subscribed session is re-frozen for a possible push only
          after this many new events since the last push *)
  sub_min_interval : float;
      (** … and at most this often (seconds, on the driver's clock) *)
}

val default_config : config

type t

val create : ?config:config -> ?runner:((unit -> unit) -> unit) -> unit -> t
(** Creates [durable_root] if configured and missing.

    [runner] is how seal jobs execute. The default runs the job inline:
    the engine stays single-threaded and a [Seal] frame is answered
    [Sealed] within the same {!on_bytes} call. A front end that must
    not block hands the job to another domain (the Unix loop uses
    {!Lockdoc_util.Pool.spawn}; the chaos harness defers it to a later
    virtual tick): the session then sits in a [sealing] state — late
    rows are protocol errors, [seal]/[stream] answer [retry-after] —
    until a subsequent {!step} collects the completion and emits
    [Sealed]. The job is self-contained (it owns the session's engine
    while sealing) and reports back through an internal queue; the
    runner must execute it exactly once. *)

val config : t -> config

(** {2 Transport interface} *)

type output =
  | Send of int * Proto.server_msg
  | Close of int * string  (** close the connection; the reason is local *)

val accept : t -> now:float -> int * output list
(** Register a new connection and return its id. Over [max_clients]
    (or during shutdown) the returned outputs reject it — send them,
    then close. *)

val on_bytes : t -> now:float -> int -> string -> output list
(** Feed received bytes; decodes and handles every complete frame. *)

val on_close : t -> now:float -> int -> unit
(** The peer closed (or the transport failed). Detaches the session,
    which stays resumable. *)

val step : t -> now:float -> output list
(** One supervision tick: seal completions, idle timeouts, bounded
    ingest processing, debounced subscription pushes, session GC. Call
    regularly (the cadence bounds ingest latency, seal-reply latency
    under an asynchronous runner, and timeout precision — not
    correctness). *)

val encode_output : output -> int * [ `Send of string | `Close of string ]
(** Wire-encode an output for a byte transport. *)

(** {2 Introspection (tests, status queries)} *)

type session_view = {
  v_id : string;
  v_state : string;
  v_accepted : int;
  v_applied : int;
  v_pending_bytes : int;
  v_restarts : int;
  v_attached : bool;
}

val sessions : t -> session_view list
val n_conns : t -> int
val n_sessions : t -> int
val pending_total : t -> int
(** Queued ingest bytes across all sessions — bounded by
    [total_queue_bytes] at all times. *)

val shutting_down : t -> bool
val status_json : t -> string
