(** Serve protocol messages.

    One {!Frame} = one message. Payloads are a tab-separated head line;
    a [Rows] frame additionally carries newline-separated trace rows
    (the exact lines of the trace text format — layout rows ["T\t…"]
    first, then event rows — so a trace file and a feed stream are the
    same bytes in the same order).

    [Rows.start] is the absolute index of the frame's first row within
    the session's stream. The server accepts rows exactly in sequence:
    a gap (lost frame) answers [Nack] with the expected index, an
    overlap (retransmission) is skipped idempotently. That makes the
    stream safe over lossy or retrying transports. *)

val version : int

type query =
  | Status
  | Metrics
  | Stream_rules
      (** Current rules from the session's online derivator — requires
          an attached session (send [Hello] first), drains the
          session's pending queue and answers [Info] with the live
          rules/violations JSON {e without} sealing: feeding can
          continue afterwards. *)

type client_msg =
  | Hello of { version : int; session : string }
      (** Open or resume the named session. *)
  | Rows of { start : int; lines : string list }
  | Seal of { rows : int }
      (** End of stream: finalize the import, mine rules, reply
          [Sealed]. [rows] is the total row count the client streamed;
          a mismatch with the server's accepted count means frames were
          lost in transit and answers [Nack] instead of sealing — the
          stream stays convergent even when the loss hits its tail.
          Idempotent — re-sealing a sealed session returns the cached
          result. *)
  | Query of query
  | Subscribe
      (** Register this connection for push rule updates — requires an
          attached session. The server immediately answers an [Info]
          snapshot push and thereafter pushes an [Info] rules delta
          whenever the session's online derivation drifts past the
          configured debounce, without the client polling. One
          subscriber per session (the attached connection); detaching
          drops it. *)
  | Ping
  | Bye  (** Detach politely; the session stays resumable. *)
  | Shutdown  (** Stop the daemon. *)

type server_msg =
  | Welcome of { resume : int }
      (** [resume] rows are already accepted; send row [resume] next. *)
  | Nack of { expected : int }  (** Sequence gap: rewind to [expected]. *)
  | Retry_after of { ms : int; expected : int option; reason : string }
      (** Load-shed: the frame was NOT accepted; retry after [ms].
          [expected] carries the session's accepted-row watermark (the
          row to resend from) when there is session context. *)
  | Err of { code : string; reason : string }
      (** Structured rejection. Codes: [proto], [version], [garbled],
          [oversize], [too-many-clients], [session-failed], [sealed],
          [permanent-failure], [shutting-down]. *)
  | Pong
  | Sealed of { events : int; rules : string; violations : string }
      (** Final mined rules / violations as the exact
          {!Lockdoc_core.Report} JSON strings — the byte-identity
          oracle against the batch pipeline. *)
  | Info of { json : string }
  | Closing of { reason : string }

val client_to_payload : client_msg -> string
val client_of_payload : string -> (client_msg, string) result
val server_to_payload : server_msg -> string
val server_of_payload : string -> (server_msg, string) result
