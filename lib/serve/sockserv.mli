(** Socket front end for the serve engine.

    {!serve} drives the sans-IO {!Server} with real file descriptors in
    a single-threaded select loop: per-connection outboxes, bounded
    reads, {!Mono.now} (CLOCK_MONOTONIC) as the clock, [EINTR]-safe
    syscalls. It always listens on a Unix-domain socket and optionally
    on TCP too — both transports feed the identical engine and frame
    codec. Seal-time derivation runs off-loop, one analysis domain per
    sealing session, so a large seal never stalls the other clients'
    round-trips. It returns once a client sends [Shutdown] and every
    reply has been flushed.

    {!feed} is the matching robust client: it streams rows, honours
    [Nack] rewinds and [retry-after] pauses (including the [sealing]
    interim state), and transparently reconnects (resuming from the
    server's watermark) when the connection drops or the session is
    restarted by the supervisor. With [~follow] it also subscribes to
    pushed rule updates and hands every [Info] frame to the callback.

    Clients take the daemon's address as the Unix [socket] path, or as
    [?tcp:(host, port)] which takes precedence when present. *)

type sealed = { events : int; rules : string; violations : string }

exception Error of string
(** A fatal protocol or transport failure (clients, plus {!serve} for
    an unresolvable TCP host — never for a connected client's sins). *)

val serve :
  ?config:Server.config ->
  ?tcp:string * int ->
  ?on_tcp_port:(int -> unit) ->
  socket:string ->
  unit ->
  unit
(** Listen on [socket] (an existing file there is replaced) — and, when
    [tcp] is given, on that [(host, port)] as well ([SO_REUSEADDR];
    port [0] binds an ephemeral port) — and run until shutdown.
    [on_tcp_port] is called once with the actually-bound TCP port
    before the loop starts serving, which is how tests discover an
    ephemeral port. Removes the socket file on the way out. *)

val feed :
  ?rows_per_frame:int ->
  ?max_attempts:int ->
  ?tcp:string * int ->
  ?follow:(string -> unit) ->
  socket:string ->
  session:string ->
  string list ->
  sealed
(** Stream the given trace rows as [session] and seal. [max_attempts]
    bounds reconnections (default 200). [follow] subscribes to pushed
    rule updates: the callback receives the JSON of every [Info] frame
    — the subscription snapshot, each debounced delta, and the final
    sealed push. On reconnect the subscription is re-established
    automatically. Raises {!Error} on permanent failure. *)

val request :
  ?tcp:string * int -> socket:string -> Proto.client_msg -> Proto.server_msg
(** One-shot exchange: connect, send, return the first reply. Used for
    [Query] and [Shutdown]. *)

val stream_query :
  ?tcp:string * int -> socket:string -> session:string -> unit -> string
(** Attach to [session] and ask the online derivator for its current
    rules ([Query Stream_rules]): returns the server's [Info] JSON.
    The session is left unsealed and resumable. Raises {!Error} on a
    structured rejection (including [retry-after] while the session is
    mid-seal). *)
