(** Unix-domain-socket front end for the serve engine.

    {!serve} drives the sans-IO {!Server} with real file descriptors in
    a single-threaded select loop: per-connection outboxes, bounded
    reads, [gettimeofday] as the clock. It returns once a client sends
    [Shutdown] and every reply has been flushed.

    {!feed} is the matching robust client: it streams rows, honours
    [Nack] rewinds and [retry-after] pauses, and transparently
    reconnects (resuming from the server's watermark) when the
    connection drops or the session is restarted by the supervisor. *)

type sealed = { events : int; rules : string; violations : string }

exception Error of string
(** A fatal protocol or transport failure ([feed]/[request] only —
    {!serve} never raises for a client's sins). *)

val serve : ?config:Server.config -> socket:string -> unit -> unit
(** Listen on [socket] (an existing file there is replaced) and run
    until shutdown. Removes the socket file on the way out. *)

val feed :
  ?rows_per_frame:int ->
  ?max_attempts:int ->
  socket:string ->
  session:string ->
  string list ->
  sealed
(** Stream the given trace rows as [session] and seal. [max_attempts]
    bounds reconnections (default 200). Raises {!Error} on permanent
    failure. *)

val request : socket:string -> Proto.client_msg -> Proto.server_msg
(** One-shot exchange: connect, send, return the first reply. Used for
    [Query] and [Shutdown]. *)

val stream_query : socket:string -> session:string -> string
(** Attach to [session] and ask the online derivator for its current
    rules ([Query Stream_rules]): returns the server's [Info] JSON.
    The session is left unsealed and resumable. Raises {!Error} on a
    structured rejection. *)
