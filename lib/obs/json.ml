type t =
  | Null
  | B of bool
  | I of int
  | F of float
  | S of string
  | L of t list
  | O of (string * t) list

(* ---- Encoding ----------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g is the shortest format guaranteed to round-trip every finite
   double; NaN/inf are not valid JSON, so clamp them to null. *)
let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string buf s;
    (* Keep the float/int distinction visible in the output. *)
    if String.for_all (fun c -> c = '-' || (c >= '0' && c <= '9')) s then
      Buffer.add_string buf ".0"
  end

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | B b -> Buffer.add_string buf (if b then "true" else "false")
  | I i -> Buffer.add_string buf (string_of_int i)
  | F f -> add_float buf f
  | S s -> add_escaped buf s
  | L items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          encode buf item)
        items;
      Buffer.add_char buf ']'
  | O fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf key;
          Buffer.add_char buf ':';
          encode buf value)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  encode buf j;
  Buffer.contents buf

(* ---- Parsing ------------------------------------------------------ *)

exception Bad of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "short \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with Failure _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* The snapshot encoder only emits \u for control
                      characters; decode the Latin-1 subset and map the
                      rest to '?' rather than carrying a UTF-8 encoder. *)
                   Buffer.add_char buf
                     (if code < 0x100 then Char.chr code else '?')
               | c -> fail (Printf.sprintf "bad escape \\%C" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> F f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> I i
      | None -> (
          (* Integer too wide for an int: fall back to float. *)
          match float_of_string_opt tok with
          | Some f -> F f
          | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> S (parse_string ())
    | Some 't' -> literal "true" (B true)
    | Some 'f' -> literal "false" (B false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          L []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          L (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          O []
        end
        else begin
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            (key, value)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          O (List.rev !fields)
        end
    | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after value";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "json parse error at byte %d: %s" at msg)

let member key = function
  | O fields -> List.assoc_opt key fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | B a, B b -> a = b
  | I a, I b -> a = b
  | F a, F b -> Float.equal a b
  | S a, S b -> String.equal a b
  | L a, L b -> List.equal equal a b
  | O a, O b ->
      List.equal
        (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
        a b
  | _ -> false
