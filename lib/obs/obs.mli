(** Domain-safe observability: metrics registry, timing spans and a
    JSON snapshot API.

    Everything here may be called concurrently from OCaml 5 domains:
    counters and histogram buckets are atomics, span aggregation and
    handle registration take a single global mutex (both are cold
    paths). Recording never mutates anything outside this module — in
    particular it never touches a {!Lockdoc_db.Store}, which is why
    instrumented analysis code may run on sealed stores — and never
    writes to stdout/stderr, so enabling metrics cannot change analysis
    output bytes.

    Recording is off by default. {!set_enabled}[ true] (done by the CLI
    when [--metrics] or [lockdoc profile] is used, and by the
    differential test harnesses) turns every [incr]/[observe]/span
    recording into a live update; when disabled they cost one atomic
    load. Handles may be created at module-initialisation time either
    way. *)

(** {1 Clocks}

    The pre-existing pipeline timed phases with [Sys.time ()], which is
    {e process CPU time}: on [n] busy domains it advances up to [n]
    seconds per wall second, so parallel phases looked slower than
    sequential ones. [Clock] keeps the two notions separate. *)

module Clock : sig
  type t = {
    wall : float;  (** elapsed real time, seconds ([Unix.gettimeofday]) *)
    cpu : float;  (** process CPU time, seconds ([Sys.time]) *)
  }

  val wall : unit -> float
  val cpu : unit -> float

  val now : unit -> t
  (** Current wall/cpu reading (absolute, only meaningful as a pair of
      endpoints). *)

  val elapsed : t -> t
  (** [elapsed t0] is the duration since [now ()] returned [t0]. *)

  val timed : (unit -> 'a) -> 'a * t
  (** Run a thunk and measure its wall and cpu duration. Always
      measures, independent of {!enabled} — callers that only want a
      number (e.g. the experiment context) rely on that. *)
end

(** {1 Enabling} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered metric and drop every span aggregate.
    Handles stay valid. Test-harness use only. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Find-or-create the counter with this name. Total order of
    registration does not matter; snapshots sort by name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val default_buckets : float array
(** Upper bounds (exclusive final overflow bucket) for latency-style
    observations in milliseconds: 0.05 … 10000. *)

val histogram : ?buckets:float array -> string -> histogram
(** Find-or-create. [buckets] must be strictly increasing; it is fixed
    at first creation and ignored on subsequent lookups. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Spans}

    A span is a named wall+cpu duration aggregated per name. Nested
    spans (per domain, tracked with domain-local state) record under a
    slash-joined path: [Span.time "derive" (fun () -> Span.time "enumerate" …)]
    records ["derive"] and ["derive/enumerate"]. *)

module Span : sig
  val time : string -> (unit -> 'a) -> 'a
  (** Run the thunk inside a span. When disabled, runs the thunk with
      no clock reads at all. *)

  val timed : string -> (unit -> 'a) -> 'a * Clock.t
  (** Like {!time} but also returns the measured duration to the
      caller. Always measures (the duration is part of the caller's
      result); records into the registry only when enabled. *)

  val record : string -> Clock.t -> unit
  (** Fold an externally measured duration into the aggregate for
      [name] (benchmarks reuse this so BENCH JSON and [--metrics]
      output come from the same accumulators). *)

  val current_path : unit -> string list
  (** Enclosing span names of the calling domain, innermost first.
      Exposed for tests. *)
end

(** {1 Snapshots} *)

type hist_snapshot = {
  hs_buckets : float array;
  hs_counts : int array;  (** one longer than [hs_buckets]: overflow last *)
  hs_count : int;
  hs_sum : float;
}

type span_stat = { sp_count : int; sp_wall : float; sp_cpu : float }

type snapshot = {
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_gauges : (string * float) list;
  sn_histograms : (string * hist_snapshot) list;
  sn_spans : (string * span_stat) list;
}

val snapshot : unit -> snapshot
(** A consistent-enough copy of every registered metric, sorted by
    name. Counters race benignly with concurrent increments (each value
    is individually atomic). *)

val snapshot_to_json : snapshot -> Json.t
val to_json_string : unit -> string

val write : string -> unit
(** Write [to_json_string () ^ "\n"] to a file (atomically: temp file +
    rename). *)

val write_on_exit : string -> unit
(** Arrange for {!write}[ path] to run when the process terminates —
    including through [Stdlib.exit], which skips [Fun.protect]
    finalisers but runs [at_exit] handlers. Writes at most once per
    registration; write errors at exit time are swallowed (the metrics
    snapshot must never change the command's exit code). *)

val find_counter : snapshot -> string -> int option
val find_span : snapshot -> string -> span_stat option
