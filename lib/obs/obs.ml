module Clock = struct
  type t = { wall : float; cpu : float }

  let wall () = Unix.gettimeofday ()
  let cpu () = Sys.time ()

  let now () = { wall = wall (); cpu = cpu () }

  let elapsed t0 =
    let t1 = now () in
    { wall = t1.wall -. t0.wall; cpu = t1.cpu -. t0.cpu }

  let timed f =
    let t0 = now () in
    let result = f () in
    (result, elapsed t0)
end

(* ---- Enabling ----------------------------------------------------- *)

let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* ---- Registry ----------------------------------------------------- *)

(* One mutex guards handle creation, span aggregation and snapshots —
   all cold paths. The hot paths (incr/add/observe) touch only atomics
   owned by the handle. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

type counter = { c_v : int Atomic.t }
type gauge = { g_v : float Atomic.t }

type histogram = {
  h_buckets : float array;  (* upper bounds, strictly increasing *)
  h_counts : int Atomic.t array;  (* length = buckets + 1 (overflow) *)
  h_sum : float Atomic.t;
}

type span_cell = {
  mutable sc_count : int;
  mutable sc_wall : float;
  mutable sc_cpu : float;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let spans : (string, span_cell) Hashtbl.t = Hashtbl.create 32

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_v = Atomic.make 0 } in
          Hashtbl.replace counters name c;
          c)

let incr c = if Atomic.get enabled_flag then Atomic.incr c.c_v

let add c n = if Atomic.get enabled_flag && n <> 0 then ignore (Atomic.fetch_and_add c.c_v n)

let counter_value c = Atomic.get c.c_v

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          let g = { g_v = Atomic.make 0. } in
          Hashtbl.replace gauges name g;
          g)

let set_gauge g v = if Atomic.get enabled_flag then Atomic.set g.g_v v

let gauge_value g = Atomic.get g.g_v

let default_buckets =
  [| 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.;
     1000.; 2500.; 5000.; 10000. |]

let histogram ?(buckets = default_buckets) name =
  locked (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          Array.iteri
            (fun i b ->
              if i > 0 && buckets.(i - 1) >= b then
                invalid_arg
                  (Printf.sprintf
                     "Obs.histogram %s: buckets must be strictly increasing"
                     name))
            buckets;
          let h =
            {
              h_buckets = Array.copy buckets;
              h_counts =
                Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
              h_sum = Atomic.make 0.;
            }
          in
          Hashtbl.replace histograms name h;
          h)

(* Lock-free float accumulation: CAS on the boxed value. *)
let rec atomic_fadd a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_fadd a x

let bucket_index buckets v =
  let n = Array.length buckets in
  let rec go lo hi =
    (* First bucket whose bound is >= v, else the overflow slot. *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if buckets.(mid) >= v then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h v =
  if Atomic.get enabled_flag then begin
    Atomic.incr h.h_counts.(bucket_index h.h_buckets v);
    atomic_fadd h.h_sum v
  end

let histogram_count h =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.h_counts

let histogram_sum h = Atomic.get h.h_sum

(* ---- Spans -------------------------------------------------------- *)

let span_stack : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

module Span = struct
  let current_path () = !(Domain.DLS.get span_stack)

  let record name (d : Clock.t) =
    if Atomic.get enabled_flag then
      locked (fun () ->
          let cell =
            match Hashtbl.find_opt spans name with
            | Some c -> c
            | None ->
                let c = { sc_count = 0; sc_wall = 0.; sc_cpu = 0. } in
                Hashtbl.replace spans name c;
                c
          in
          cell.sc_count <- cell.sc_count + 1;
          cell.sc_wall <- cell.sc_wall +. d.Clock.wall;
          cell.sc_cpu <- cell.sc_cpu +. d.Clock.cpu)

  let push name =
    let stack = Domain.DLS.get span_stack in
    let path =
      match !stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
    in
    stack := path :: !stack;
    path

  let pop () =
    let stack = Domain.DLS.get span_stack in
    match !stack with [] -> () | _ :: rest -> stack := rest

  let timed name f =
    let path = push name in
    let finally () = pop () in
    let result, d =
      Fun.protect ~finally (fun () -> Clock.timed f)
    in
    record path d;
    (result, d)

  let time name f =
    if not (Atomic.get enabled_flag) then f ()
    else fst (timed name f)
end

(* ---- Reset -------------------------------------------------------- *)

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_v 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_v 0.) gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun c -> Atomic.set c 0) h.h_counts;
          Atomic.set h.h_sum 0.)
        histograms;
      Hashtbl.reset spans)

(* ---- Snapshots ---------------------------------------------------- *)

type hist_snapshot = {
  hs_buckets : float array;
  hs_counts : int array;
  hs_count : int;
  hs_sum : float;
}

type span_stat = { sp_count : int; sp_wall : float; sp_cpu : float }

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : (string * float) list;
  sn_histograms : (string * hist_snapshot) list;
  sn_spans : (string * span_stat) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  locked (fun () ->
      {
        sn_counters = sorted_bindings counters (fun c -> Atomic.get c.c_v);
        sn_gauges = sorted_bindings gauges (fun g -> Atomic.get g.g_v);
        sn_histograms =
          sorted_bindings histograms (fun h ->
              let counts = Array.map Atomic.get h.h_counts in
              {
                hs_buckets = Array.copy h.h_buckets;
                hs_counts = counts;
                hs_count = Array.fold_left ( + ) 0 counts;
                hs_sum = Atomic.get h.h_sum;
              });
        sn_spans =
          sorted_bindings spans (fun c ->
              { sp_count = c.sc_count; sp_wall = c.sc_wall; sp_cpu = c.sc_cpu });
      })

let snapshot_to_json s =
  Json.O
    [
      ("counters", Json.O (List.map (fun (k, v) -> (k, Json.I v)) s.sn_counters));
      ("gauges", Json.O (List.map (fun (k, v) -> (k, Json.F v)) s.sn_gauges));
      ( "histograms",
        Json.O
          (List.map
             (fun (k, h) ->
               ( k,
                 Json.O
                   [
                     ( "buckets",
                       Json.L
                         (Array.to_list (Array.map (fun b -> Json.F b) h.hs_buckets))
                     );
                     ( "counts",
                       Json.L
                         (Array.to_list (Array.map (fun c -> Json.I c) h.hs_counts))
                     );
                     ("count", Json.I h.hs_count);
                     ("sum", Json.F h.hs_sum);
                   ] ))
             s.sn_histograms) );
      ( "spans",
        Json.O
          (List.map
             (fun (k, sp) ->
               ( k,
                 Json.O
                   [
                     ("count", Json.I sp.sp_count);
                     ("wall_s", Json.F sp.sp_wall);
                     ("cpu_s", Json.F sp.sp_cpu);
                   ] ))
             s.sn_spans) );
    ]

let to_json_string () = Json.to_string (snapshot_to_json (snapshot ()))

let write path =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (to_json_string ());
      Out_channel.output_char oc '\n');
  Sys.rename tmp path

let write_on_exit path =
  let written = ref false in
  at_exit (fun () ->
      if not !written then begin
        written := true;
        try write path with Sys_error _ -> ()
      end)

let find_counter s name = List.assoc_opt name s.sn_counters
let find_span s name = List.assoc_opt name s.sn_spans
