(** Minimal JSON values, encoder and parser.

    The observability layer is zero-dependency by design (it is linked
    into every library of the pipeline), so it carries its own tiny JSON
    codec instead of reusing {!Lockdoc_core.Report}. Integers and floats
    are kept distinct so a metrics snapshot round-trips exactly:
    [of_string (to_string j)] re-reads counters as [I] and timings as
    [F]. *)

type t =
  | Null
  | B of bool
  | I of int
  | F of float
  | S of string
  | L of t list
  | O of (string * t) list

val to_string : t -> string
(** Compact (no whitespace) encoding. Object field order is preserved;
    floats print with enough digits to round-trip bit-exactly. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; [Error msg] carries a byte offset. Numbers
    without [.], [e] or [E] parse as [I], all others as [F]. *)

val member : string -> t -> t option
(** [member key (O fields)] finds a field; [None] otherwise. *)

val equal : t -> t -> bool
(** Structural equality; [F] compares with [Float.equal] (bit-for-bit
    after a round-trip). *)
