(* Static-analysis suite (lib/static).

   Three tiers:
   - the differential meta-check: every event in every workload trace
     (clean and sanitizer-seeded, two seeds) must be explicable by some
     IR path of the emitting function — dynamic ⊆ static;
   - determinism: Summary.analyse and the full lint pipeline must be
     bit-identical across -j 1 / -j 4;
   - cross-validation against the seeded ground truth: every seeded
     race site must land in the static unprotected-write report, the
     seeded irq-unsafe class must be flagged by the static irq lint,
     and the clean IR must produce zero sleep-in-atomic findings and
     zero dynamic-only order edges. *)

module Run = Lockdoc_ksim.Run
module Seeded = Lockdoc_ksim.Seeded
module Lockdep = Lockdoc_core.Lockdep
module Report = Lockdoc_core.Report
module Summary = Lockdoc_static.Summary
module Explain = Lockdoc_static.Explain
module Lint = Lockdoc_static.Lint

let check = Alcotest.check

let explain_failure_msg name (r : Explain.result) =
  Printf.sprintf "%s: %d/%d frames explained; missing [%s]; rejected [%s]" name
    r.Explain.ex_ok r.Explain.ex_frames
    (String.concat "; " r.Explain.ex_missing)
    (String.concat "; "
       (List.map
          (fun (f : Explain.failure) ->
            Printf.sprintf "%s: %s" f.Explain.fl_fn f.Explain.fl_word)
          r.Explain.ex_failures))

let test_explain_clean name () =
  List.iter
    (fun seed ->
      let trace = Run.workload_trace ~seed name in
      let r = Explain.check trace in
      check Alcotest.bool (explain_failure_msg name r) true (Explain.is_clean r);
      check Alcotest.bool (name ^ ": frames checked") true (r.Explain.ex_frames > 0))
    [ 7; 11 ]

let test_explain_seeded name () =
  List.iter
    (fun bugs ->
      let trace, _ = Run.sanitize_trace ~bugs name in
      let r = Explain.check trace in
      check Alcotest.bool (explain_failure_msg name r) true (Explain.is_clean r))
    [ true; false ]

let test_summary_deterministic () =
  let s1 = Summary.analyse ~jobs:1 () in
  let s4 = Summary.analyse ~jobs:4 () in
  check Alcotest.bool "summary -j1 = -j4" true (s1 = s4)

let test_lint_bit_identical name () =
  let trace = Run.workload_trace name in
  let r1 = Lint.run ~jobs:1 ~workload:name trace in
  let r4 = Lint.run ~jobs:4 ~workload:name trace in
  check Alcotest.string "text -j1 = -j4" (Lint.render r1) (Lint.render r4);
  check Alcotest.string "json -j1 = -j4"
    (Report.to_string (Lint.to_json r1))
    (Report.to_string (Lint.to_json r4))

(* Every seeded data race writes a member the static analysis must see
   as a write site with an empty protective must-held set. *)
let test_seeded_races_reported () =
  let s = Summary.analyse () in
  ignore s;
  let trace = Run.workload_trace "fs_bench" in
  let r = Lint.run ~workload:"fs_bench" trace in
  List.iter
    (fun (site, (ty, member)) ->
      let found =
        List.exists
          (fun (u : Lint.unprotected) ->
            u.Lint.u_site.Summary.st_ty = ty
            && u.Lint.u_site.Summary.st_member = member)
          r.Lint.unprotected
      in
      check Alcotest.bool
        (Printf.sprintf "%s (%s.%s) in unprotected-write report" site ty member)
        true found)
    Seeded.race_sites

let test_seeded_irq_site_reported () =
  let s = Summary.analyse () in
  List.iter
    (fun (site, cls) ->
      let found =
        List.exists
          (fun (f : Summary.irq_finding) ->
            Lockdep.class_to_string f.Summary.iq_class = cls)
          s.Summary.irq_unsafe
      in
      check Alcotest.bool
        (Printf.sprintf "%s (%s) in static irq report" site cls)
        true found)
    Seeded.irq_sites

let test_clean_ir_lints () =
  let s = Summary.analyse () in
  check Alcotest.int "sleep-in-atomic findings"
    0
    (List.length s.Summary.sleeps);
  check Alcotest.bool "some access sites" true (List.length s.Summary.sites > 100);
  check Alcotest.bool "some order edges" true (List.length s.Summary.edges > 10)

let test_no_dynamic_only_edges name () =
  let trace = Run.workload_trace name in
  let r = Lint.run ~workload:name trace in
  check
    Alcotest.(list (pair string string))
    (name ^ ": dynamic order edges all statically explicable")
    []
    r.Lint.order.Lint.oc_dynamic_only;
  check Alcotest.int (name ^ ": dynamic cycles uncovered") 0
    (List.length r.Lint.order.Lint.oc_cycles_uncovered)

let () =
  let fam f = List.map (fun n -> Alcotest.test_case n `Quick (f n)) in
  Alcotest.run "static"
    [
      ("explain clean", fam test_explain_clean Run.workload_names);
      ("explain seeded", fam test_explain_seeded Run.workload_names);
      ( "determinism",
        Alcotest.test_case "summary -j" `Quick test_summary_deterministic
        :: fam test_lint_bit_identical [ "fs_bench"; "pipe" ] );
      ( "cross-validation",
        [
          Alcotest.test_case "seeded races unprotected" `Quick
            test_seeded_races_reported;
          Alcotest.test_case "seeded irq site flagged" `Quick
            test_seeded_irq_site_reported;
          Alcotest.test_case "clean IR context lints" `Quick test_clean_ir_lints;
        ] );
      ("order diff", fam test_no_dynamic_only_edges Run.workload_names);
    ]
