(* Differential verification of the parallel analysis pipeline.

   The contract of Derivator/Checker/Violation's [jobs] parameter is
   that the output is *byte-identical* to the sequential path for every
   domain count. This harness enforces it the hard way: for every
   isolated workload family and a bank of pinned seeds, render the
   mined rules (winners plus full hypothesis rankings), the violation
   report, the documentation-check verdicts and the generated docgen
   comments at -j 1, and require the -j 2/4/8 renderings to be equal
   strings.

   LOCKDOC_PAR_SEEDS overrides the seed-bank size (default 20). *)

module Trace = Lockdoc_trace.Trace
module Import = Lockdoc_db.Import
module Store = Lockdoc_db.Store
module Run = Lockdoc_ksim.Run
module Doc = Lockdoc_ksim.Documentation
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Checker = Lockdoc_core.Checker
module Violation = Lockdoc_core.Violation
module Docgen = Lockdoc_core.Docgen
module Report = Lockdoc_core.Report
module Rule = Lockdoc_core.Rule
module Pool = Lockdoc_util.Pool

let check = Alcotest.check

(* Metrics on for the whole differential suite: the -j N vs -j 1
   byte-identity checks double as evidence that concurrent metric
   recording never perturbs analysis output. *)
let () = Lockdoc_obs.Obs.set_enabled true

let n_seeds =
  match Sys.getenv_opt "LOCKDOC_PAR_SEEDS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 20)
  | None -> 20

let job_counts = [ 2; 4; 8 ]

let doc_specs =
  List.map
    (fun (dr : Doc.doc_rule) ->
      let kind = match dr.Doc.d_access with Doc.R -> Rule.R | Doc.W -> Rule.W in
      {
        Checker.sp_type = dr.Doc.d_type;
        Checker.sp_member = dr.Doc.d_member;
        Checker.sp_kind = kind;
        Checker.sp_rule = Rule.parse dr.Doc.d_rule;
      })
    Doc.rules

(* Every analysis artefact the CLI can emit, rendered to one string. *)
let render ~jobs dataset =
  let mined = Derivator.derive_all ~jobs dataset in
  let violations = Violation.find ~jobs dataset mined in
  let checked = Checker.check_many ~jobs dataset doc_specs in
  let doc base =
    let merged = Derivator.derive_merged ~jobs dataset base in
    Docgen.generate ~kind:Rule.W ~title:base merged
    ^ "\n"
    ^ Docgen.generate ~kind:Rule.R ~title:(base ^ " (reads)") merged
  in
  String.concat "\n--\n"
    [
      Report.mined_to_json mined;
      Report.violations_to_json violations;
      Report.checked_to_json checked;
      doc "inode";
      doc "dentry";
    ]

let test_differential () =
  List.iter
    (fun name ->
      for seed = 0 to n_seeds - 1 do
        let trace = Run.workload_trace ~seed name in
        let store, _ = Import.run trace in
        let dataset = Dataset.of_store store in
        let sequential = render ~jobs:1 dataset in
        List.iter
          (fun jobs ->
            let parallel = render ~jobs dataset in
            check Alcotest.string
              (Printf.sprintf "%s/seed %d: -j %d == -j 1" name seed jobs)
              sequential parallel)
          job_counts
      done)
    Run.workload_names

(* The read-only invariant is enforced, not just documented: a parallel
   run seals the store, after which any row mutation must raise. *)
let test_seal_enforced () =
  let trace = Run.workload_trace ~seed:0 "pipe" in
  let store, _ = Import.run trace in
  let dataset = Dataset.of_store store in
  check Alcotest.bool "fresh store unsealed" false (Store.is_sealed store);
  ignore (Derivator.derive_all ~jobs:2 dataset);
  check Alcotest.bool "parallel run seals" true (Store.is_sealed store);
  Alcotest.check_raises "mutation refused"
    (Invalid_argument
       "Store.add_txn: store is sealed (read-only for parallel analysis)")
    (fun () -> ignore (Store.add_txn store ~locks:[] ~ctx:0))

(* Sequential analysis must never seal: the durable-import resume path
   keeps appending rows to a recovered store after deriving from it. *)
let test_sequential_does_not_seal () =
  let trace = Run.workload_trace ~seed:1 "device" in
  let store, _ = Import.run trace in
  let dataset = Dataset.of_store store in
  ignore (Derivator.derive_all ~jobs:1 dataset);
  ignore (Violation.find dataset (Derivator.derive_all dataset));
  ignore (Checker.check_many dataset doc_specs);
  check Alcotest.bool "still unsealed" false (Store.is_sealed store)

let () =
  Alcotest.run "parallel"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "-j {2,4,8} == -j 1 (%d families x %d seeds)"
               (List.length Run.workload_names)
               n_seeds)
            `Slow test_differential;
        ] );
      ( "store sealing",
        [
          Alcotest.test_case "parallel seals, mutation raises" `Quick
            test_seal_enforced;
          Alcotest.test_case "sequential leaves store unsealed" `Quick
            test_sequential_does_not_seal;
        ] );
    ]
