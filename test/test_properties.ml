(* Property-based tests over randomly generated (well-formed) traces:
   import invariants, observation folding, hypothesis enumeration, and
   the JSON report encoder. The generator builds properly nested lock
   scopes across several interleaved tasks, so every property failure
   points at real pipeline logic, not at malformed input. *)

module Srcloc = Lockdoc_trace.Srcloc
module Layout = Lockdoc_trace.Layout
module Event = Lockdoc_trace.Event
module Trace = Lockdoc_trace.Trace
module Schema = Lockdoc_db.Schema
module Store = Lockdoc_db.Store
module Filter = Lockdoc_db.Filter
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Rule = Lockdoc_core.Rule
module Hypothesis = Lockdoc_core.Hypothesis
module Prng = Lockdoc_util.Prng

let qtest = QCheck_alcotest.to_alcotest

let widget =
  Layout.make ~name:"widget"
    [ ("w_a", 8, Layout.Data); ("w_b", 8, Layout.Data); ("w_c", 8, Layout.Data) ]

let base = 0x100000
let loc = Srcloc.make "gen.c" 1

(* A random structured program per task: nested lock scopes with accesses
   sprinkled in, flattened to events. Scopes close in LIFO order, so lock
   traffic is balanced and properly nested. *)
let gen_program seed =
  let rng = Prng.of_int seed in
  let n_tasks = 1 + Prng.int rng 3 in
  let n_allocs = 1 + Prng.int rng 3 in
  let lock_ptrs = [| 0x10; 0x20; 0x30; 0x40 |] in
  let alloc_events =
    List.init n_allocs (fun i ->
        Event.Alloc
          {
            ptr = base + (i * 0x100);
            size = widget.Layout.ty_size;
            data_type = "widget";
            subclass = None;
          })
  in
  (* Each task produces a list of event blocks; blocks from different
     tasks are interleaved with Ctx_switch separators. *)
  let task_blocks pid =
    (* [depth] bounds nesting of any kind, so the recursion is a strictly
       subcritical branching process (no runaway programs). *)
    let rec scope depth =
      if depth > 4 then []
      else
        let stmts = 1 + Prng.int rng 3 in
        List.concat
          (List.init stmts (fun _ ->
               match Prng.int rng 4 with
               | 0 | 1 ->
                   (* access a random member of a random allocation *)
                   let a = Prng.int rng n_allocs and m = Prng.int rng 3 in
                   [
                     Event.Mem_access
                       {
                         ptr = base + (a * 0x100) + (m * 8);
                         size = 8;
                         kind = (if Prng.bool rng then Event.Read else Event.Write);
                         loc;
                       };
                   ]
               | 2 ->
                   (* function frame *)
                   let fn = Printf.sprintf "fn_%d" (Prng.int rng 5) in
                   (Event.Fun_enter { fn; loc } :: scope (depth + 1))
                   @ [ Event.Fun_exit { fn } ]
               | _ ->
                   (* nested lock scope *)
                   let lp = Prng.pick rng lock_ptrs in
                   (Event.Lock_acquire
                      {
                        lock_ptr = lp;
                        kind = Event.Spinlock;
                        side = Event.Exclusive;
                        name = Printf.sprintf "L%x" lp;
                        loc;
                      }
                   :: scope (depth + 1))
                   @ [ Event.Lock_release { lock_ptr = lp; loc } ]))
    in
    let n_blocks = 1 + Prng.int rng 4 in
    List.init n_blocks (fun _ ->
        Event.Ctx_switch { pid; kind = Event.Task } :: scope 0)
  in
  let all_blocks = List.concat_map (fun pid -> task_blocks (pid + 1)) (List.init n_tasks Fun.id) in
  let arr = Array.of_list all_blocks in
  Prng.shuffle rng arr;
  alloc_events @ List.concat (Array.to_list arr)

(* Interleaving blocks of different tasks can release a lock in a block
   that runs after another task's block — but each task's own event order
   is preserved, and lock state is per task, so balance still holds. *)

let mk_trace events =
  let sink = Trace.sink () in
  List.iter (Trace.emit sink) events;
  Trace.finish ~layouts:[ widget ] sink

let import_of seed =
  let events = gen_program seed in
  let trace = mk_trace events in
  let store, stats = Import.run ~filter:Filter.empty trace in
  (events, store, stats)

let seed_arb = QCheck.int_range 0 100_000

let prop_no_unbalanced =
  QCheck.Test.make ~name:"nested scopes never unbalance" ~count:150 seed_arb
    (fun seed ->
      let _, _, stats = import_of seed in
      stats.Import.unbalanced_releases = 0)

let prop_txn_per_acquire =
  QCheck.Test.make ~name:"one transaction per acquisition" ~count:150 seed_arb
    (fun seed ->
      let events, store, _ = import_of seed in
      let acquires =
        List.length
          (List.filter (function Event.Lock_acquire _ -> true | _ -> false) events)
      in
      Store.n_txns store = acquires)

let prop_access_accounting =
  QCheck.Test.make ~name:"kept + filtered + unresolved = total" ~count:150
    seed_arb (fun seed ->
      let _, _, s = import_of seed in
      s.Import.accesses_kept + s.Import.filtered_fn + s.Import.filtered_member
      + s.Import.filtered_kind + s.Import.unresolved
      = s.Import.mem_accesses)

let prop_txn_locks_nonempty =
  QCheck.Test.make ~name:"every access txn holds >= 1 lock" ~count:150 seed_arb
    (fun seed ->
      let _, store, _ = import_of seed in
      let ok = ref true in
      Store.iter_accesses store (fun a ->
          match a.Schema.ac_txn with
          | None -> ()
          | Some t ->
              if (Store.txn store t).Schema.tx_locks = [] then ok := false);
      !ok)

let prop_fold_bound =
  QCheck.Test.make ~name:"observations never exceed accesses" ~count:150
    seed_arb (fun seed ->
      let _, store, stats = import_of seed in
      let dataset = Dataset.of_store store in
      let obs = Dataset.observations dataset "widget" in
      List.length obs <= stats.Import.accesses_kept)

let prop_wor_exclusive =
  QCheck.Test.make ~name:"WoR: no duplicate (member, txn) observation pairs"
    ~count:150 seed_arb (fun seed ->
      let _, store, _ = import_of seed in
      let dataset = Dataset.of_store store in
      let obs = Dataset.observations dataset "widget" in
      (* After folding, the underlying access sets of distinct
         observations are disjoint. *)
      let seen = Hashtbl.create 64 in
      List.for_all
        (fun (o : Dataset.obs) ->
          List.for_all
            (fun id ->
              if Hashtbl.mem seen id then false
              else begin
                Hashtbl.replace seen id ();
                true
              end)
            o.Dataset.o_accesses)
        obs)

let prop_enumerate_supported =
  QCheck.Test.make ~name:"enumerated hypotheses have sa >= 1" ~count:100
    seed_arb (fun seed ->
      let _, store, _ = import_of seed in
      let dataset = Dataset.of_store store in
      List.for_all
        (fun member ->
          let obs = Dataset.by_member dataset "widget" ~member ~kind:Rule.W in
          obs = []
          || List.for_all
               (fun (s : Hypothesis.scored) -> s.Hypothesis.support.Hypothesis.sa >= 1)
               (Hypothesis.enumerate obs))
        [ "w_a"; "w_b"; "w_c" ])

let prop_winner_complies_with_majority =
  QCheck.Test.make ~name:"winner satisfies >= tac of observations" ~count:100
    seed_arb (fun seed ->
      let _, store, _ = import_of seed in
      let dataset = Dataset.of_store store in
      List.for_all
        (fun member ->
          List.for_all
            (fun kind ->
              let obs = Dataset.by_member dataset "widget" ~member ~kind in
              obs = []
              ||
              let mined =
                Lockdoc_core.Derivator.derive_observations ~ty:"widget" ~member
                  ~kind obs
              in
              mined.Lockdoc_core.Derivator.m_support.Hypothesis.sr >= 0.9)
            [ Rule.R; Rule.W ])
        [ "w_a"; "w_b"; "w_c" ])

(* {2 JSON encoder} *)

let balanced s =
  let depth = ref 0 and ok = ref true and in_string = ref false in
  let escaped = ref false in
  String.iter
    (fun c ->
      if !in_string then begin
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_string := false
      end
      else
        match c with
        | '"' -> in_string := true
        | '[' | '{' -> incr depth
        | ']' | '}' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_string

let prop_json_balanced =
  QCheck.Test.make ~name:"mined JSON is structurally balanced" ~count:50
    seed_arb (fun seed ->
      let _, store, _ = import_of seed in
      let dataset = Dataset.of_store store in
      let mined = Lockdoc_core.Derivator.derive_all dataset in
      balanced (Lockdoc_core.Report.mined_to_json mined))

let test_json_escaping () =
  let mined =
    [
      Lockdoc_core.Derivator.
        {
          m_type = "weird\"type\\with\nescapes";
          m_member = "m\t1";
          m_kind = Rule.W;
          m_total = 1;
          m_winner = [];
          m_support = { Hypothesis.sa = 1; sr = 1. };
          m_hypotheses = [];
        };
    ]
  in
  let json = Lockdoc_core.Report.mined_to_json mined in
  Alcotest.(check bool) "balanced with escapes" true (balanced json);
  Alcotest.(check bool) "no raw newline" true
    (not (String.contains json '\n'))

let () =
  Alcotest.run "properties"
    [
      ( "import",
        [
          qtest prop_no_unbalanced;
          qtest prop_txn_per_acquire;
          qtest prop_access_accounting;
          qtest prop_txn_locks_nonempty;
        ] );
      ( "observations",
        [ qtest prop_fold_bound; qtest prop_wor_exclusive ] );
      ( "hypotheses",
        [ qtest prop_enumerate_supported; qtest prop_winner_complies_with_majority ] );
      ( "report",
        [
          qtest prop_json_balanced;
          Alcotest.test_case "string escaping" `Quick test_json_escaping;
        ] );
    ]
