(* Corruption fuzzing of the ingestion pipeline.

   For every isolated workload family and a bank of pinned corruption
   seeds: corrupting the textual trace must (a) actually alter it, (b)
   never make the lenient reader or importer raise, and (c) always
   surface at least one anomaly. The uncorrupted traces must be
   spotless, and mining rules from them must not depend on the mode.

   The default run keeps the seed bank small so `dune runtest` stays
   fast; `dune build @fuzz` (or LOCKDOC_FUZZ_SEEDS=n) widens it to the
   full pinned range. *)

module Trace = Lockdoc_trace.Trace
module Check = Lockdoc_trace.Check
module Diag = Lockdoc_trace.Diag
module Corrupt = Lockdoc_trace.Corrupt
module Import = Lockdoc_db.Import
module Wal = Lockdoc_db.Wal
module Codec = Lockdoc_stream.Codec
module Run = Lockdoc_ksim.Run
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Report = Lockdoc_core.Report

let check = Alcotest.check

(* Metrics on for the whole suite: the golden-output comparisons below
   double as evidence that recording never leaks into analysis bytes. *)
let () = Lockdoc_obs.Obs.set_enabled true

let n_seeds =
  match Sys.getenv_opt "LOCKDOC_FUZZ_SEEDS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 10)
  | None -> 10

(* One simulator run per family, shared across all seeds. *)
let traces =
  lazy
    (List.map
       (fun name -> (name, Run.workload_trace ~seed:11 name))
       Run.workload_names)

let test_clean_baseline () =
  List.iter
    (fun (name, trace) ->
      let lines = Trace.to_lines trace in
      let reparsed, reader_diags = Trace.read_lines ~mode:Trace.Lenient lines in
      check Alcotest.int (name ^ ": reader diags") 0 (List.length reader_diags);
      check Alcotest.int (name ^ ": check diags") 0
        (List.length (Check.run reparsed));
      let store_s, strict = Import.run ~mode:Import.Strict reparsed in
      let store_l, len = Import.run ~mode:Import.Lenient reparsed in
      check Alcotest.int (name ^ ": anomalies") 0 (Import.anomaly_total strict);
      check Alcotest.bool (name ^ ": stats agree") true (strict = len);
      (* Mined rules must not depend on the mode either. *)
      let mine store =
        Report.mined_to_json (Derivator.derive_all (Dataset.of_store store))
      in
      check Alcotest.string (name ^ ": mined rules agree") (mine store_s)
        (mine store_l))
    (Lazy.force traces)

let test_corruption_recovery () =
  List.iter
    (fun (name, trace) ->
      let lines = Trace.to_lines trace in
      for seed = 0 to n_seeds - 1 do
        let id = Printf.sprintf "%s/seed %d" name seed in
        let lines', ops = Corrupt.corrupt ~seed lines in
        check Alcotest.bool (id ^ ": altered") true (lines' <> lines);
        match
          let t, reader_diags = Trace.read_lines ~mode:Trace.Lenient lines' in
          let store, stats = Import.run ~mode:Import.Lenient t in
          (* Whatever survived recovery must also analyse identically on
             a domain pool: parallel derivation is exercised on degraded
             inputs, not only on clean traces. *)
          let dataset = Dataset.of_store store in
          let seq = Report.mined_to_json (Derivator.derive_all ~jobs:1 dataset) in
          let par = Report.mined_to_json (Derivator.derive_all ~jobs:4 dataset) in
          (List.length reader_diags + Import.anomaly_total stats, seq = par)
        with
        | anomalies, par_identical ->
            if anomalies = 0 then
              Alcotest.failf "%s: no anomaly reported for [%s]" id
                (String.concat "; " (List.map Corrupt.describe ops));
            if not par_identical then
              Alcotest.failf "%s: -j 4 diverges from -j 1 on recovered store"
                id
        | exception e ->
            Alcotest.failf "%s: lenient pipeline raised %s for [%s]" id
              (Printexc.to_string e)
              (String.concat "; " (List.map Corrupt.describe ops))
      done)
    (Lazy.force traces)

(* ---- Binary-format corruption family ------------------------------

   The packed (LDOCBIN1) form gets its own matrix: segment truncation,
   a flipped bit in a frame's length prefix, and a payload garble with
   the CRC recomputed to match (defeating the framing layer so
   detection falls to record-level validation). The lenient decoder
   must never raise, damage the framing can see must surface a [Diag],
   CRC-fixed damage must at least visibly alter the decode, and
   whatever is recovered must still run the lenient importer. *)

(* [(start, total_bytes)] of each [len][crc][payload] frame after the
   8-byte magic. *)
let frame_bounds packed =
  let rec go off acc =
    if off + 8 > String.length packed then List.rev acc
    else
      let len = Int32.to_int (String.get_int32_le packed off) in
      if len <= 0 || off + 8 + len > String.length packed then List.rev acc
      else go (off + 8 + len) ((off, 8 + len) :: acc)
  in
  go 8 []

let set_le32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

(* Cut strictly inside a frame: a torn tail, never a clean EOF. *)
let op_truncate packed ~seed =
  let frames = frame_bounds packed in
  let start, total = List.nth frames (seed mod List.length frames) in
  let cut = start + 1 + ((seed * 7) mod (total - 1)) in
  (String.sub packed 0 cut, "truncated segment")

(* Flip one bit of a frame's 4-byte length prefix. *)
let op_flip_length packed ~seed =
  let frames = frame_bounds packed in
  let start, _ = List.nth frames (seed mod List.length frames) in
  let b = Bytes.of_string packed in
  let pos = start + (seed mod 4) in
  Bytes.set b pos (Char.chr (Char.code packed.[pos] lxor (1 lsl (seed mod 7))));
  (Bytes.to_string b, "flipped length prefix")

(* Garble one payload byte and recompute the CRC so framing accepts
   it. The first frame carries the string table (layout specs and
   early interns), so low seeds hit exactly the "garbled string table"
   case; later ones land in event payloads. *)
let op_garble_crc_fixed packed ~seed =
  let frames = frame_bounds packed in
  let start, total = List.nth frames (seed mod List.length frames) in
  let len = total - 8 in
  let b = Bytes.of_string packed in
  let pos = start + 8 + ((seed * 13) mod len) in
  Bytes.set b pos (Char.chr (Char.code packed.[pos] lxor (1 lsl (seed mod 8))));
  let payload = Bytes.sub_string b (start + 8) len in
  set_le32 b (start + 4) (Wal.crc32 payload);
  (Bytes.to_string b, "garbled payload, CRC fixed up")

let test_binary_corruption () =
  List.iter
    (fun (name, trace) ->
      (* Small segments so every family packs to several frames and the
         seeded offsets spread across them. *)
      let packed = Codec.encode_trace ~segment_bytes:2048 trace in
      let clean_lines =
        let t, diags = Codec.decode_string ~mode:Trace.Lenient packed in
        check Alcotest.int (name ^ ": clean decode diags") 0
          (List.length diags);
        Trace.to_lines t
      in
      check Alcotest.string (name ^ ": clean decode") ""
        (if clean_lines = Trace.to_lines trace then "" else "diverges");
      for seed = 0 to n_seeds - 1 do
        let op =
          match seed mod 3 with
          | 0 -> op_truncate
          | 1 -> op_flip_length
          | _ -> op_garble_crc_fixed
        in
        let packed', what = op packed ~seed in
        let crc_fixed = seed mod 3 = 2 in
        let id = Printf.sprintf "%s/seed %d [%s]" name seed what in
        check Alcotest.bool (id ^ ": altered") true (packed' <> packed);
        match Codec.decode_string ~mode:Trace.Lenient packed' with
        | recovered, diags ->
            (* Framing-visible damage must surface a Diag; CRC-fixed
               damage may instead surface as a visible content change
               (record-level validation catches the rest). *)
            let detected =
              diags <> []
              || (crc_fixed && Trace.to_lines recovered <> clean_lines)
            in
            if not detected then
              Alcotest.failf "%s: damage neither diagnosed nor visible" id;
            (* Whatever survived must still import leniently. *)
            (match Import.run ~mode:Import.Lenient recovered with
            | _ -> ()
            | exception e ->
                Alcotest.failf "%s: lenient import raised %s on recovery" id
                  (Printexc.to_string e))
        | exception e ->
            Alcotest.failf "%s: lenient decoder raised %s" id
              (Printexc.to_string e)
      done)
    (Lazy.force traces)

let () =
  Alcotest.run "fuzz"
    [
      ( "ingestion",
        [
          Alcotest.test_case "clean baselines" `Quick test_clean_baseline;
          Alcotest.test_case
            (Printf.sprintf "corruption recovery (%d seeds)" n_seeds)
            `Slow test_corruption_recovery;
          Alcotest.test_case
            (Printf.sprintf "binary corruption recovery (%d seeds)" n_seeds)
            `Slow test_binary_corruption;
        ] );
    ]
