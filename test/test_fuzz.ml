(* Corruption fuzzing of the ingestion pipeline.

   For every isolated workload family and a bank of pinned corruption
   seeds: corrupting the textual trace must (a) actually alter it, (b)
   never make the lenient reader or importer raise, and (c) always
   surface at least one anomaly. The uncorrupted traces must be
   spotless, and mining rules from them must not depend on the mode.

   The default run keeps the seed bank small so `dune runtest` stays
   fast; `dune build @fuzz` (or LOCKDOC_FUZZ_SEEDS=n) widens it to the
   full pinned range. *)

module Trace = Lockdoc_trace.Trace
module Check = Lockdoc_trace.Check
module Diag = Lockdoc_trace.Diag
module Corrupt = Lockdoc_trace.Corrupt
module Import = Lockdoc_db.Import
module Run = Lockdoc_ksim.Run
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Report = Lockdoc_core.Report

let check = Alcotest.check

(* Metrics on for the whole suite: the golden-output comparisons below
   double as evidence that recording never leaks into analysis bytes. *)
let () = Lockdoc_obs.Obs.set_enabled true

let n_seeds =
  match Sys.getenv_opt "LOCKDOC_FUZZ_SEEDS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 10)
  | None -> 10

(* One simulator run per family, shared across all seeds. *)
let traces =
  lazy
    (List.map
       (fun name -> (name, Run.workload_trace ~seed:11 name))
       Run.workload_names)

let test_clean_baseline () =
  List.iter
    (fun (name, trace) ->
      let lines = Trace.to_lines trace in
      let reparsed, reader_diags = Trace.read_lines ~mode:Trace.Lenient lines in
      check Alcotest.int (name ^ ": reader diags") 0 (List.length reader_diags);
      check Alcotest.int (name ^ ": check diags") 0
        (List.length (Check.run reparsed));
      let store_s, strict = Import.run ~mode:Import.Strict reparsed in
      let store_l, len = Import.run ~mode:Import.Lenient reparsed in
      check Alcotest.int (name ^ ": anomalies") 0 (Import.anomaly_total strict);
      check Alcotest.bool (name ^ ": stats agree") true (strict = len);
      (* Mined rules must not depend on the mode either. *)
      let mine store =
        Report.mined_to_json (Derivator.derive_all (Dataset.of_store store))
      in
      check Alcotest.string (name ^ ": mined rules agree") (mine store_s)
        (mine store_l))
    (Lazy.force traces)

let test_corruption_recovery () =
  List.iter
    (fun (name, trace) ->
      let lines = Trace.to_lines trace in
      for seed = 0 to n_seeds - 1 do
        let id = Printf.sprintf "%s/seed %d" name seed in
        let lines', ops = Corrupt.corrupt ~seed lines in
        check Alcotest.bool (id ^ ": altered") true (lines' <> lines);
        match
          let t, reader_diags = Trace.read_lines ~mode:Trace.Lenient lines' in
          let store, stats = Import.run ~mode:Import.Lenient t in
          (* Whatever survived recovery must also analyse identically on
             a domain pool: parallel derivation is exercised on degraded
             inputs, not only on clean traces. *)
          let dataset = Dataset.of_store store in
          let seq = Report.mined_to_json (Derivator.derive_all ~jobs:1 dataset) in
          let par = Report.mined_to_json (Derivator.derive_all ~jobs:4 dataset) in
          (List.length reader_diags + Import.anomaly_total stats, seq = par)
        with
        | anomalies, par_identical ->
            if anomalies = 0 then
              Alcotest.failf "%s: no anomaly reported for [%s]" id
                (String.concat "; " (List.map Corrupt.describe ops));
            if not par_identical then
              Alcotest.failf "%s: -j 4 diverges from -j 1 on recovered store"
                id
        | exception e ->
            Alcotest.failf "%s: lenient pipeline raised %s for [%s]" id
              (Printexc.to_string e)
              (String.concat "; " (List.map Corrupt.describe ops))
      done)
    (Lazy.force traces)

let () =
  Alcotest.run "fuzz"
    [
      ( "ingestion",
        [
          Alcotest.test_case "clean baselines" `Quick test_clean_baseline;
          Alcotest.test_case
            (Printf.sprintf "corruption recovery (%d seeds)" n_seeds)
            `Slow test_corruption_recovery;
        ] );
    ]
