(* Sanitizer-layer tests.

   Three tiers:
   - state-machine units on hand-built stores: the Eraser lattice, the
     bare-trigger report policy, RCU/seqlock read-section exemption
     (reader sections must not empty writer candidate sets), teardown
     quiescence, and the irq context classifier;
   - lockdep cycle canonicalisation pins (seeded ABBA and 3-class
     cycles are reported exactly once, smallest class first);
   - end-to-end runs over every workload family: seeded traces must
     yield 100% recall at 100% precision against the ground truth,
     clean traces must yield zero findings, and the rendered reports
     must be byte-identical for every job count. *)

module Event = Lockdoc_trace.Event
module Srcloc = Lockdoc_trace.Srcloc
module Layout = Lockdoc_trace.Layout
module Store = Lockdoc_db.Store
module Schema = Lockdoc_db.Schema
module Import = Lockdoc_db.Import
module Run = Lockdoc_ksim.Run
module Seeded = Lockdoc_ksim.Seeded
module Lockdep = Lockdoc_core.Lockdep
module Lockset = Lockdoc_sanitizer.Lockset
module Irq = Lockdoc_sanitizer.Irq
module Crossval = Lockdoc_sanitizer.Crossval
module Sanitize = Lockdoc_sanitizer.Sanitize

let check = Alcotest.check

(* {2 Synthetic store builders} *)

let widget_layout =
  Layout.make ~name:"widget" [ ("a", 8, Layout.Data); ("b", 8, Layout.Data) ]

type builder = {
  store : Store.t;
  alloc : Schema.allocation;
  mutable next_event : int;
  mutable next_lock : int;
}

let builder () =
  let store = Store.create () in
  let dt = Store.add_data_type store widget_layout in
  let alloc =
    Store.add_allocation store ~ptr:0x1000 ~size:16 ~ty:dt.Schema.dt_id
      ~subclass:None ~start:0
  in
  { store; alloc; next_event = 1; next_lock = 0x2000 }

let add_lock b ?(kind = Event.Spinlock) name =
  let ptr = b.next_lock in
  b.next_lock <- ptr + 8;
  Store.add_lock b.store ~ptr ~kind ~name ~parent:None

let held ?(side = Event.Exclusive) (lock : Schema.lock) =
  { Schema.h_lock = lock.Schema.lk_id; h_side = side; h_loc = Srcloc.none }

let access b ?(stack = [ "worker_fn" ]) ?txn ~ctx kind member =
  let txn =
    Option.map
      (fun locks -> (Store.add_txn b.store ~locks ~ctx).Schema.tx_id)
      txn
  in
  let ev = b.next_event in
  b.next_event <- ev + 1;
  ignore
    (Store.add_access b.store ~event:ev ~alloc:b.alloc.Schema.al_id ~member
       ~kind ~txn ~loc:(Srcloc.make "test.c" ev)
       ~stack:(Store.intern_stack b.store stack)
       ~ctx)

let races b = Lockset.analyse b.store

let race_ids rs =
  List.map (fun (r : Lockset.race) -> r.Lockset.r_type ^ "." ^ r.Lockset.r_member) rs

(* {2 Lockset state-machine units} *)

let test_bare_cross_flow_write () =
  let b = builder () in
  access b ~ctx:1 Event.Write "a";
  access b ~ctx:2 Event.Write "a";
  check (Alcotest.list Alcotest.string) "bare cross-flow write races"
    [ "widget.a" ] (race_ids (races b))

let test_single_flow_clean () =
  let b = builder () in
  for _ = 1 to 5 do
    access b ~ctx:1 Event.Write "a";
    access b ~ctx:1 Event.Read "a"
  done;
  check Alcotest.int "one flow never races" 0 (List.length (races b))

let test_locked_discipline_clean () =
  let b = builder () in
  let l = add_lock b "w_lock" in
  access b ~ctx:1 ~txn:[ held l ] Event.Write "a";
  access b ~ctx:2 ~txn:[ held l ] Event.Write "a";
  access b ~ctx:3 ~txn:[ held l ] Event.Read "a";
  check Alcotest.int "consistent lock is clean" 0 (List.length (races b))

let test_empty_candidates_without_bare_trigger () =
  let b = builder () in
  let l = add_lock b "w_lock" in
  (* Unlocked init-phase store, then consistently locked use: no
     locked access ever empties the candidates, and nothing after the
     init write is bare — must not be reported. *)
  access b ~ctx:1 Event.Write "a";
  access b ~ctx:2 ~txn:[ held l ] Event.Write "a";
  access b ~ctx:1 ~txn:[ held l ] Event.Write "a";
  access b ~ctx:2 ~txn:[ held l ] Event.Read "a";
  check Alcotest.int "no bare trigger, no report" 0 (List.length (races b));
  (* A later bare write on the emptied set does trigger. *)
  access b ~ctx:1 Event.Write "a";
  check (Alcotest.list Alcotest.string) "bare trigger reports" [ "widget.a" ]
    (race_ids (races b))

let test_reader_side_protects_reads () =
  let b = builder () in
  let l = add_lock b ~kind:Event.Rwlock "rw_lock" in
  access b ~ctx:1 ~txn:[ held l ] Event.Write "a";
  access b ~ctx:2 ~txn:[ held ~side:Event.Shared l ] Event.Read "a";
  access b ~ctx:1 ~txn:[ held l ] Event.Write "a";
  check Alcotest.int "reader-side acquisition protects reads" 0
    (List.length (races b))

let test_shared_write_is_not_protection () =
  let b = builder () in
  let l = add_lock b ~kind:Event.Rwsem "rwsem" in
  access b ~ctx:1 ~txn:[ held l ] Event.Write "a";
  (* A write under only the reader side refines with the exclusive
     subset (empty) — and is itself bare. *)
  access b ~ctx:2 ~txn:[ held ~side:Event.Shared l ] Event.Write "a";
  check (Alcotest.list Alcotest.string) "reader-side write is bare"
    [ "widget.a" ] (race_ids (races b))

let rcu_like kind name =
  let b = builder () in
  let l = add_lock b "w_lock" in
  let rcu = add_lock b ~kind name in
  access b ~ctx:1 ~txn:[ held l ] Event.Write "a";
  (* Read-section reads (no writer lock held!) must be skipped: no
     state transition, no candidate refinement. *)
  access b ~ctx:2 ~txn:[ held ~side:Event.Shared rcu ] Event.Read "a";
  access b ~ctx:2 ~txn:[ held ~side:Event.Shared rcu ] Event.Read "a";
  (* The writer's candidate set must still contain w_lock: a third
     flow's locked write stays clean... *)
  access b ~ctx:3 ~txn:[ held l ] Event.Write "a";
  check Alcotest.int (name ^ " readers keep writer candidates") 0
    (List.length (races b));
  (* ...while a genuinely bare read still races. *)
  access b ~ctx:2 Event.Read "a";
  check
    (Alcotest.list Alcotest.string)
    (name ^ " bare read still races") [ "widget.a" ] (race_ids (races b))

let test_rcu_read_section () = rcu_like Event.Rcu "rcu"
let test_seqlock_read_section () = rcu_like Event.Seqlock "seq"

let test_quiescent_stack_exempt () =
  let b = builder () in
  access b ~ctx:1 Event.Write "a";
  access b ~ctx:2 ~stack:[ "clear_inode"; "evict" ] Event.Write "a";
  access b ~ctx:3 ~stack:[ "sync_filesystem"; "umount" ] Event.Write "a";
  check Alcotest.int "teardown accesses are exempt" 0 (List.length (races b))

let test_jobs_sharding_identical () =
  let b = builder () in
  let l = add_lock b "w_lock" in
  access b ~ctx:1 Event.Write "a";
  access b ~ctx:2 Event.Write "a";
  access b ~ctx:1 ~txn:[ held l ] Event.Write "b";
  access b ~ctx:2 Event.Write "b";
  let seq = races b in
  let par = Lockset.analyse ~jobs:4 b.store in
  check Alcotest.bool "sealed" true (Store.is_sealed b.store);
  check Alcotest.string "render equal" (Lockset.render seq)
    (Lockset.render par)

(* {2 Irq classifier units} *)

let test_irq_classifier () =
  let b = builder () in
  let l = add_lock b "dev_lock" in
  let hard = add_lock b ~kind:Event.Pseudo "hardirq" in
  let irqoff = add_lock b ~kind:Event.Pseudo "irqoff" in
  (* Task-context acquisition with interrupts enabled... *)
  ignore (Store.add_txn b.store ~locks:[ held l ] ~ctx:1);
  (* ...and a hardirq-context acquisition: the lockdep splat. *)
  ignore (Store.add_txn b.store ~locks:[ held hard; held l ] ~ctx:1001);
  let r = Irq.analyse b.store in
  check
    (Alcotest.list Alcotest.string)
    "dev_lock is irq-unsafe" [ "dev_lock" ]
    (List.map (fun (u : Irq.unsafe) -> u.Irq.iu_class) r.Irq.i_unsafe);
  (* Masking interrupts around the task-context acquisition fixes it. *)
  let b2 = builder () in
  let l2 = add_lock b2 "dev_lock" in
  let hard2 = add_lock b2 ~kind:Event.Pseudo "hardirq" in
  let irqoff2 = add_lock b2 ~kind:Event.Pseudo "irqoff" in
  ignore (Store.add_txn b2.store ~locks:[ held irqoff2; held l2 ] ~ctx:1);
  ignore (Store.add_txn b2.store ~locks:[ held hard2; held l2 ] ~ctx:1001);
  let r2 = Irq.analyse b2.store in
  check Alcotest.int "masked acquisition is safe" 0
    (List.length r2.Irq.i_unsafe);
  ignore irqoff;
  (* Inherited task locks before the hardirq pseudo stay attributed to
     process context. *)
  let b3 = builder () in
  let task_l = add_lock b3 "task_lock" in
  let hard3 = add_lock b3 ~kind:Event.Pseudo "hardirq" in
  ignore (Store.add_txn b3.store ~locks:[ held task_l; held hard3 ] ~ctx:1001);
  let r3 = Irq.analyse b3.store in
  let u = List.hd r3.Irq.i_usage in
  check Alcotest.int "inherited lock: no hardirq sighting" 0 u.Irq.u_hardirq;
  check Alcotest.int "inherited lock: process sighting" 1 u.Irq.u_process

(* {2 Lockdep cycle canonicalisation pins} *)

let static_cycle_store specs =
  let store = Store.create () in
  let locks = Hashtbl.create 8 in
  let get name =
    match Hashtbl.find_opt locks name with
    | Some l -> l
    | None ->
        let l =
          Store.add_lock store
            ~ptr:(0x3000 + Hashtbl.length locks)
            ~kind:Event.Spinlock ~name ~parent:None
        in
        Hashtbl.add locks name l;
        l
  in
  List.iter
    (fun names ->
      ignore
        (Store.add_txn store ~locks:(List.map (fun n -> held (get n)) names)
           ~ctx:1))
    specs;
  store

let cycle_names r =
  List.map (List.map Lockdep.class_to_string) r.Lockdep.cycles

let test_abba_cycle_once () =
  (* b→a and a→b acquisition orders: one ABBA cycle, anchored at a. *)
  let store = static_cycle_store [ [ "b"; "a" ]; [ "a"; "b" ] ] in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "ABBA reported once, smallest first"
    [ [ "a"; "b" ] ]
    (cycle_names (Lockdep.analyse store))

let test_abc_cycle_once () =
  (* a→b→c→a, with every rotation reachable as a DFS anchor. *)
  let store =
    static_cycle_store [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "a" ] ]
  in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "3-class cycle reported once, canonical rotation"
    [ [ "a"; "b"; "c" ] ]
    (cycle_names (Lockdep.analyse store))

let test_reversed_cycle_deduplicated () =
  (* Both traversal directions of the same class set are one scenario. *)
  let store =
    static_cycle_store
      [
        [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "a" ];
        [ "b"; "a" ]; [ "c"; "b" ]; [ "a"; "c" ];
      ]
  in
  let cycles = cycle_names (Lockdep.analyse store) in
  check Alcotest.int "ABBA pairs + one 3-cycle" 4 (List.length cycles);
  check Alcotest.bool "3-cycle canonical and unique" true
    (List.length (List.filter (fun c -> List.length c = 3) cycles) = 1
    && List.mem [ "a"; "b"; "c" ] cycles)

(* {2 End-to-end: every family, seeded and clean} *)

let perfect name (s : Crossval.score) =
  check Alcotest.int (name ^ " no false positives") 0 s.Crossval.cv_fp;
  check Alcotest.int (name ^ " no misses") 0 s.Crossval.cv_fn

let test_family_seeded name () =
  let r = Sanitize.run ~bugs:true name in
  check Alcotest.bool
    (name ^ " seeded races manifested")
    true
    (List.length r.Sanitize.s_truth.Seeded.t_races > 0);
  check
    (Alcotest.list Alcotest.string)
    (name ^ " seeded irq bug manifested")
    [ "backing_dev_info.wb.work_lock" ]
    r.Sanitize.s_truth.Seeded.t_irq_unsafe;
  perfect (name ^ " races") r.Sanitize.s_crossval.Crossval.races;
  perfect (name ^ " irq") r.Sanitize.s_crossval.Crossval.irq

let test_family_clean name () =
  let r = Sanitize.run ~bugs:false name in
  check Alcotest.int (name ^ " clean trace: no races") 0
    (List.length r.Sanitize.s_races);
  check Alcotest.int (name ^ " clean trace: no irq findings") 0
    (List.length r.Sanitize.s_irq.Irq.i_unsafe
    + List.length r.Sanitize.s_irq.Irq.i_inversions);
  check Alcotest.int (name ^ " clean trace: nothing seeded") 0
    (List.length r.Sanitize.s_truth.Seeded.t_races
    + List.length r.Sanitize.s_truth.Seeded.t_irq_unsafe)

(* {2 Differential: -j 1 vs -j 4 byte-identity on the full report} *)

let test_differential name () =
  let trace, truth = Run.sanitize_trace ~bugs:true name in
  let report jobs =
    let r =
      Sanitize.analyse ~jobs ~workload:name ~seed:7 ~scale:1 ~bugs:true
        ~truth trace
    in
    Sanitize.render r ^ "\n" ^ Sanitize.to_json r
  in
  check Alcotest.string
    (name ^ " report identical -j {1,4}")
    (report 1) (report 4)

let () =
  let fam f = List.map (fun n -> Alcotest.test_case n `Quick (f n)) in
  Alcotest.run "sanitizer"
    [
      ( "lockset",
        [
          Alcotest.test_case "bare cross-flow write" `Quick
            test_bare_cross_flow_write;
          Alcotest.test_case "single flow clean" `Quick test_single_flow_clean;
          Alcotest.test_case "locked discipline clean" `Quick
            test_locked_discipline_clean;
          Alcotest.test_case "bare-trigger policy" `Quick
            test_empty_candidates_without_bare_trigger;
          Alcotest.test_case "reader side protects reads" `Quick
            test_reader_side_protects_reads;
          Alcotest.test_case "shared-side write is bare" `Quick
            test_shared_write_is_not_protection;
          Alcotest.test_case "rcu read section" `Quick test_rcu_read_section;
          Alcotest.test_case "seqlock read section" `Quick
            test_seqlock_read_section;
          Alcotest.test_case "quiescent stacks exempt" `Quick
            test_quiescent_stack_exempt;
          Alcotest.test_case "instance sharding identical" `Quick
            test_jobs_sharding_identical;
        ] );
      ("irq", [ Alcotest.test_case "context classifier" `Quick test_irq_classifier ]);
      ( "lockdep cycles",
        [
          Alcotest.test_case "ABBA once" `Quick test_abba_cycle_once;
          Alcotest.test_case "ABC once" `Quick test_abc_cycle_once;
          Alcotest.test_case "reversed dedup" `Quick
            test_reversed_cycle_deduplicated;
        ] );
      ("seeded", fam test_family_seeded Run.workload_names);
      ("clean", fam test_family_clean Run.workload_names);
      ("differential", fam test_differential Run.workload_names);
    ]
