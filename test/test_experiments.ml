(* Tests of the experiments harness: per-experiment invariants, the
   lockdep baseline, the side-sensitivity extension, and the ablation
   renderers. *)

module Import = Lockdoc_db.Import
module Kernel = Lockdoc_ksim.Kernel
module Run = Lockdoc_ksim.Run
module Dataset = Lockdoc_core.Dataset
module Rule = Lockdoc_core.Rule
module Derivator = Lockdoc_core.Derivator
module Lockdep = Lockdoc_core.Lockdep
module Context = Lockdoc_experiments.Context
module Registry = Lockdoc_experiments.Registry
module Ablation = Lockdoc_experiments.Ablation
module Tab4 = Lockdoc_experiments.Tab4
module Tab6 = Lockdoc_experiments.Tab6
module Fig7 = Lockdoc_experiments.Fig7
module Checker = Lockdoc_core.Checker
module Figure1 = Lockdoc_kstats.Figure1

let check = Alcotest.check

let ctx = lazy (Context.create ~scale:3 ~seed:5 ())

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* {2 Per-experiment invariants} *)

let test_tab4_percentages_sum () =
  let checked = Tab4.check_all (Lazy.force ctx) in
  List.iter
    (fun ty ->
      let s = Checker.summarise checked ty in
      check Alcotest.int (ty ^ ": observed = verdict sum") s.Checker.s_observed
        (s.Checker.s_correct + s.Checker.s_ambivalent + s.Checker.s_incorrect);
      check Alcotest.int (ty ^ ": rules = observed + unobserved")
        s.Checker.s_rules
        (s.Checker.s_observed + s.Checker.s_unobserved))
    Lockdoc_ksim.Documentation.checked_types

let test_tab6_bounds () =
  let c = Lazy.force ctx in
  List.iter
    (fun key ->
      let _, m, bl, rr, rw, nr, nw = Tab6.row c key in
      check Alcotest.bool (key ^ ": rules bounded by members") true
        (rr <= m - bl && rw <= m - bl);
      check Alcotest.bool (key ^ ": no-lock subset of rules") true
        (nr <= rr && nw <= rw))
    (Dataset.type_keys c.Context.dataset)

let test_fig7_monotone_all_types () =
  let c = Lazy.force ctx in
  List.iter
    (fun key ->
      List.iter
        (fun kind ->
          let series =
            List.filter_map
              (fun tac -> Fig7.nolock_fraction c key kind tac)
              Fig7.thresholds
          in
          let rec monotone = function
            | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
            | _ -> true
          in
          check Alcotest.bool (key ^ " monotone") true (monotone series))
        [ Rule.R; Rule.W ])
    Fig7.types

let test_fig1_rows_match_versions () =
  let rows = Figure1.rows () in
  check Alcotest.int "one row per release" 9 (List.length rows);
  check Alcotest.string "first release" "v3.0" (List.hd rows).Figure1.version;
  check Alcotest.string "last release" "v4.18"
    (List.nth rows 8).Figure1.version

let test_registry_lazy () =
  (* Context-free experiments must not force the expensive context. *)
  let forced = ref false in
  let fake =
    lazy
      (forced := true;
       Lazy.force ctx)
  in
  List.iter
    (fun id ->
      match Registry.find id with
      | Some e when not e.Registry.needs_context ->
          ignore (e.Registry.render fake)
      | Some _ | None -> ())
    [ "fig1"; "tab1"; "tab2" ];
  check Alcotest.bool "context untouched" false !forced

(* {2 lockdep baseline} *)

let test_lockdep_finds_inversion () =
  let c = Lazy.force ctx in
  let report = Lockdep.analyse (Dataset.store c.Context.dataset) in
  check Alcotest.bool "classes found" true (List.length report.Lockdep.classes > 10);
  (* The simulator contains a genuine i_lock <-> inode_lru_lock inversion
     (iput takes i_lock then the LRU lock; the pruner claims victims the
     other way round). *)
  let is_inversion cycle =
    List.exists
      (fun cls -> Lockdep.class_to_string cls = "inode.i_lock")
      cycle
    && List.exists
         (fun cls -> Lockdep.class_to_string cls = "inode_lru_lock")
         cycle
  in
  check Alcotest.bool "i_lock/lru inversion detected" true
    (List.exists is_inversion report.Lockdep.cycles);
  (* d_instantiate and d_move nest d_lock within d_lock. *)
  check Alcotest.bool "d_lock self nesting" true
    (List.exists
       (fun e -> Lockdep.class_to_string e.Lockdep.e_from = "dentry.d_lock")
       report.Lockdep.self_nesting);
  let rendered = Lockdep.render report in
  check Alcotest.bool "render mentions the cycle" true
    (contains rendered "inode_lru_lock")

let test_lockdep_clean_trace () =
  (* The clock example acquires in one consistent order: no cycles. *)
  let trace = Lockdoc_ksim.Clock_example.run () in
  let store, _ = Import.run trace in
  let report = Lockdep.analyse store in
  check Alcotest.int "no cycles" 0 (List.length report.Lockdep.cycles);
  check Alcotest.bool "sec->min edge exists" true
    (List.exists
       (fun e ->
         Lockdep.class_to_string e.Lockdep.e_from = "sec_lock"
         && Lockdep.class_to_string e.Lockdep.e_to = "min_lock")
       report.Lockdep.edges);
  check Alcotest.bool "min->sec edge absent" true
    (not
       (List.exists
          (fun e ->
            Lockdep.class_to_string e.Lockdep.e_from = "min_lock"
            && Lockdep.class_to_string e.Lockdep.e_to = "sec_lock")
          report.Lockdep.edges))

(* {2 Side sensitivity} *)

let test_side_sensitive_descriptors () =
  let c = Lazy.force ctx in
  let store = Dataset.store c.Context.dataset in
  let sided = Dataset.of_store ~side_sensitive:true store in
  (* wait_commit reads journal state under the reader side of
     j_state_lock: the side-aware winner must carry the [r] marker. *)
  let mined =
    Derivator.derive_member sided "journal_t" ~member:"j_transaction_sequence"
      ~kind:Rule.R
  in
  check Alcotest.bool "reader-side rule mined" true
    (contains (Rule.to_string mined.Derivator.m_winner) "[r]")

let test_side_blind_default () =
  let c = Lazy.force ctx in
  List.iter
    (fun (m : Derivator.mined) ->
      check Alcotest.bool "no side markers by default" false
        (contains (Rule.to_string m.Derivator.m_winner) "[r]"))
    c.Context.mined

(* {2 Lockmeter baseline} *)

let test_lockmeter_stats () =
  let c = Lazy.force ctx in
  let stats = Lockdoc_core.Lockmeter.analyse c.Context.trace c.Context.store in
  check Alcotest.bool "classes profiled" true (List.length stats > 10);
  let find name =
    List.find_opt
      (fun s ->
        Lockdoc_core.Lockdep.class_to_string s.Lockdoc_core.Lockmeter.s_class
        = name)
      stats
  in
  (match find "inode.i_lock" with
  | Some s ->
      check Alcotest.bool "many i_lock instances" true
        (s.Lockdoc_core.Lockmeter.s_instances > 10);
      check Alcotest.bool "exclusive only" true
        (s.Lockdoc_core.Lockmeter.s_reader_acquisitions = 0);
      check Alcotest.bool "positive hold time" true
        (Lockdoc_core.Lockmeter.mean_hold s > 0.)
  | None -> Alcotest.fail "i_lock class missing");
  (match find "inode_hash_lock" with
  | Some s ->
      check Alcotest.int "a global lock has one instance" 1
        s.Lockdoc_core.Lockmeter.s_instances
  | None -> Alcotest.fail "inode_hash_lock class missing");
  (match find "rcu" with
  | Some s ->
      check Alcotest.bool "rcu acquisitions are reader-side" true
        (s.Lockdoc_core.Lockmeter.s_reader_acquisitions
        = s.Lockdoc_core.Lockmeter.s_acquisitions)
  | None -> Alcotest.fail "rcu class missing");
  (* Sorted by acquisitions. *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Lockdoc_core.Lockmeter.s_acquisitions
        >= b.Lockdoc_core.Lockmeter.s_acquisitions
        && sorted rest
    | _ -> true
  in
  check Alcotest.bool "descending order" true (sorted stats);
  check Alcotest.bool "render works" true
    (String.length (Lockdoc_core.Lockmeter.render stats) > 100)

(* {2 Object interrelations (future-work extension)} *)

let test_relations_graph () =
  let c = Lazy.force ctx in
  let relations = Lockdoc_core.Relations.analyse c.Context.mined in
  let find protected owner lock =
    List.find_opt
      (fun r ->
        r.Lockdoc_core.Relations.r_protected_type = protected
        && r.Lockdoc_core.Relations.r_lock_owner = owner
        && r.Lockdoc_core.Relations.r_lock_member = lock)
      relations
  in
  (* journal_head fields are protected by the owning buffer_head's state
     lock — the "lock in the container" pattern of the paper's Sec. 8. *)
  (match find "journal_head" "buffer_head" "b_state_lock" with
  | Some r ->
      check Alcotest.bool "b_transaction among protected members" true
        (List.mem_assoc "b_transaction" r.Lockdoc_core.Relations.r_members)
  | None -> Alcotest.fail "journal_head<-buffer_head relation missing");
  check Alcotest.bool "inode<-bdi writeback relation" true
    (find "inode" "backing_dev_info" "wb.list_lock" <> None);
  check Alcotest.bool "dentry child linkage via parent d_lock" true
    (find "dentry" "dentry" "d_lock" <> None);
  let rendered = Lockdoc_core.Relations.render relations in
  check Alcotest.bool "render mentions wb.list_lock" true
    (contains rendered "wb.list_lock")

(* {2 Ablation renderers} *)

let test_ablations_render () =
  let c = Lazy.force ctx in
  List.iter
    (fun (name, render) ->
      let out = render c in
      check Alcotest.bool (name ^ " non-empty") true (String.length out > 40))
    [
      ("irq", Ablation.render_irq);
      ("wor", Ablation.render_wor);
      ("selection", Ablation.render_selection);
      ("subclass", Ablation.render_subclass);
      ("sides", Ablation.render_sides);
      ("lockdep", Ablation.render_lockdep);
    ]

(* {2 Context determinism} *)

let test_context_deterministic () =
  let a = Context.create ~scale:1 ~seed:9 () in
  let b = Context.create ~scale:1 ~seed:9 () in
  check Alcotest.int "same trace size"
    (Array.length a.Context.trace.Lockdoc_trace.Trace.events)
    (Array.length b.Context.trace.Lockdoc_trace.Trace.events);
  check Alcotest.int "same mined rule count"
    (List.length a.Context.mined)
    (List.length b.Context.mined)

let () =
  Alcotest.run "experiments"
    [
      ( "invariants",
        [
          Alcotest.test_case "tab4 sums" `Quick test_tab4_percentages_sum;
          Alcotest.test_case "tab6 bounds" `Quick test_tab6_bounds;
          Alcotest.test_case "fig7 monotone" `Quick test_fig7_monotone_all_types;
          Alcotest.test_case "fig1 rows" `Quick test_fig1_rows_match_versions;
          Alcotest.test_case "registry laziness" `Quick test_registry_lazy;
        ] );
      ( "lockdep baseline",
        [
          Alcotest.test_case "finds the LRU inversion" `Quick
            test_lockdep_finds_inversion;
          Alcotest.test_case "clean ordering stays clean" `Quick
            test_lockdep_clean_trace;
        ] );
      ( "side sensitivity",
        [
          Alcotest.test_case "reader-side rules" `Quick
            test_side_sensitive_descriptors;
          Alcotest.test_case "blind by default" `Quick test_side_blind_default;
        ] );
      ( "lockmeter",
        [ Alcotest.test_case "usage statistics" `Quick test_lockmeter_stats ] );
      ( "relations",
        [ Alcotest.test_case "protection graph" `Quick test_relations_graph ] );
      ( "ablations", [ Alcotest.test_case "render" `Quick test_ablations_render ] );
      ( "context",
        [ Alcotest.test_case "deterministic" `Quick test_context_deterministic ] );
    ]
