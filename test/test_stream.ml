(* The streaming layer, locked down differentially.

   Two oracles anchor everything here:

   - the text format: packing a trace and unpacking it again must
     reproduce the exact event/layout sequence (byte-identical lines);
   - the batch pipeline: the online derivator's [freeze] must emit
     rules and violations byte-identical to import+derive_all on the
     same event prefix, at several prefixes, for -j 1 and -j 4.

   Plus unit/property coverage of the codec primitives (varint/zigzag
   boundaries, interning determinism, CRC rejection of bit flips,
   torn tails, chunked feeding).

   The default run keeps the seed bank small so `dune runtest` stays
   fast; `dune build @stream` (or LOCKDOC_STREAM_SEEDS=n) widens it to
   the full pinned range. *)

module Trace = Lockdoc_trace.Trace
module Event = Lockdoc_trace.Event
module Layout = Lockdoc_trace.Layout
module Diag = Lockdoc_trace.Diag
module Import = Lockdoc_db.Import
module Run = Lockdoc_ksim.Run
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Violation = Lockdoc_core.Violation
module Report = Lockdoc_core.Report
module Varint = Lockdoc_stream.Varint
module Codec = Lockdoc_stream.Codec
module Online = Lockdoc_stream.Online

let check = Alcotest.check

let n_seeds =
  match Sys.getenv_opt "LOCKDOC_STREAM_SEEDS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 3)
  | None -> 3

(* ---- Codec primitives --------------------------------------------- *)

let boundary_ints =
  [
    0; 1; -1; 2; -2; 63; 64; 127; 128; 129; 255; 256; 16383; 16384;
    -16384; 1 lsl 30; -(1 lsl 30); (1 lsl 62) - 1; max_int; min_int;
    max_int - 1; min_int + 1;
  ]

let test_varint_boundaries () =
  List.iter
    (fun n ->
      let b = Buffer.create 16 in
      Varint.write_uint b n;
      let v, next = Varint.read_uint (Buffer.contents b) 0 in
      check Alcotest.int (Printf.sprintf "uint %d" n) n v;
      check Alcotest.int "uint consumed all" (Buffer.length b) next;
      let b = Buffer.create 16 in
      Varint.write_int b n;
      let v, next = Varint.read_int (Buffer.contents b) 0 in
      check Alcotest.int (Printf.sprintf "int %d" n) n v;
      check Alcotest.int "int consumed all" (Buffer.length b) next)
    boundary_ints

let test_zigzag () =
  List.iter
    (fun n ->
      check Alcotest.int
        (Printf.sprintf "zigzag bijective at %d" n)
        n
        (Varint.unzigzag (Varint.zigzag n)))
    boundary_ints;
  (* Sign transitions map to adjacent small naturals. *)
  check Alcotest.int "zz 0" 0 (Varint.zigzag 0);
  check Alcotest.int "zz -1" 1 (Varint.zigzag (-1));
  check Alcotest.int "zz 1" 2 (Varint.zigzag 1);
  check Alcotest.int "zz -2" 3 (Varint.zigzag (-2))

let test_varint_qcheck () =
  let round n =
    let b = Buffer.create 16 in
    Varint.write_int b n;
    fst (Varint.read_int (Buffer.contents b) 0) = n
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"varint int round-trip"
       QCheck.int round)

let test_varint_truncation_rejected () =
  let b = Buffer.create 16 in
  Varint.write_uint b max_int;
  let s = Buffer.contents b in
  for cut = 0 to String.length s - 1 do
    match Varint.read_uint (String.sub s 0 cut) 0 with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "truncated varint (%d bytes) accepted" cut
  done

(* ---- Round-trips over every workload family ----------------------- *)

let families = Run.workload_names

let trace_lines t = Trace.to_lines t

let test_roundtrip_families () =
  List.iter
    (fun name ->
      for seed = 0 to n_seeds - 1 do
        let id = Printf.sprintf "%s/seed %d" name seed in
        let trace = Run.workload_trace ~seed:(100 + seed) name in
        let packed = Codec.encode_trace trace in
        let reparsed, diags = Codec.decode_string ~mode:Trace.Strict packed in
        check Alcotest.int (id ^ ": no diags") 0 (List.length diags);
        check
          (Alcotest.list Alcotest.string)
          (id ^ ": lines byte-identical")
          (trace_lines trace) (trace_lines reparsed);
        (* Interning and registers are deterministic: re-encoding the
           decoded trace reproduces the packed bytes exactly. *)
        check Alcotest.string (id ^ ": re-encode deterministic") packed
          (Codec.encode_trace reparsed);
        (* Compactness is the point: stay well under the text format. *)
        let text_bytes =
          List.fold_left (fun a l -> a + String.length l + 1) 0
            (trace_lines trace)
        in
        if String.length packed * 2 > text_bytes then
          Alcotest.failf "%s: packed %d bytes vs text %d — not compact" id
            (String.length packed) text_bytes
      done)
    families

let test_chunked_feed () =
  let trace = Run.workload_trace ~seed:11 "pipe" in
  let packed = Codec.encode_trace trace in
  let whole, _ = Codec.decode_string packed in
  List.iter
    (fun chunk ->
      let d = Codec.decoder ~mode:Trace.Lenient () in
      let n = String.length packed in
      let pos = ref 0 in
      while !pos < n do
        let len = min chunk (n - !pos) in
        Codec.feed d (String.sub packed !pos len);
        pos := !pos + len
      done;
      let diags = Codec.finish d in
      check Alcotest.int
        (Printf.sprintf "chunk %d: no diags" chunk)
        0 (List.length diags);
      let evs = Codec.events d in
      check Alcotest.int
        (Printf.sprintf "chunk %d: event count" chunk)
        (Array.length whole.Trace.events)
        (List.length evs);
      List.iteri
        (fun i ev ->
          check Alcotest.string
            (Printf.sprintf "chunk %d: event %d" chunk i)
            (Event.to_line whole.Trace.events.(i))
            (Event.to_line ev))
        evs)
    [ 1; 7; 64; 4096 ]

let test_empty_trace () =
  let trace = { Trace.layouts = []; events = [||] } in
  let packed = Codec.encode_trace trace in
  check Alcotest.string "empty trace is just the magic" Codec.magic packed;
  let reparsed, diags = Codec.decode_string packed in
  check Alcotest.int "no diags" 0 (List.length diags);
  check Alcotest.int "no events" 0 (Array.length reparsed.Trace.events)

(* ---- Damage ------------------------------------------------------- *)

let flip_bit s ~byte ~bit =
  let b = Bytes.of_string s in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
  Bytes.to_string b

let test_crc_rejects_bit_flips () =
  let trace = Run.workload_trace ~seed:11 "device" in
  let packed = Codec.encode_trace trace in
  let n = String.length packed in
  (* A deterministic sample of positions: the magic, both header
     fields, and payload bytes spread across the file. *)
  let positions =
    [ 2; 8; 9; 12; 13; 20; n / 3; n / 2; (2 * n) / 3; n - 1 ]
    |> List.filter (fun p -> p >= 0 && p < n)
    |> List.sort_uniq compare
  in
  List.iter
    (fun byte ->
      List.iter
        (fun bit ->
          let damaged = flip_bit packed ~byte ~bit in
          (* Lenient: never raises, always reports. *)
          (match Codec.decode_string ~mode:Trace.Lenient damaged with
          | _, [] ->
              Alcotest.failf "bit flip at %d.%d went unreported" byte bit
          | _, _ -> ()
          | exception e ->
              Alcotest.failf "lenient decode raised %s on flip at %d.%d"
                (Printexc.to_string e) byte bit);
          (* Strict: refuses. *)
          match Codec.decode_string ~mode:Trace.Strict damaged with
          | exception Trace.Invalid _ -> ()
          | _ -> Alcotest.failf "strict accepted flip at %d.%d" byte bit)
        [ 0; 5 ])
    positions

let test_torn_tail () =
  let trace = Run.workload_trace ~seed:11 "symlink" in
  let packed = Codec.encode_trace trace in
  let n = String.length packed in
  List.iter
    (fun cut ->
      let torn = String.sub packed 0 cut in
      match Codec.decode_string ~mode:Trace.Lenient torn with
      | _, [] -> Alcotest.failf "cut at %d bytes went unreported" cut
      | _, diags ->
          check Alcotest.bool
            (Printf.sprintf "cut %d: truncation diagnosed" cut)
            true
            (List.exists
               (fun d -> d.Diag.d_kind = Diag.Truncated_record)
               diags)
      | exception e ->
          Alcotest.failf "lenient decode raised %s on cut at %d"
            (Printexc.to_string e) cut)
    [ 4; 11; n / 2; n - 3 ]

(* ---- Online vs batch: the differential anchor --------------------- *)

let batch_outputs trace prefix ~jobs =
  let sub = { trace with Trace.events = Array.sub trace.Trace.events 0 prefix } in
  let store, _ = Import.run sub in
  let dataset = Dataset.of_store store in
  let mined = Derivator.derive_all ~jobs dataset in
  ( Report.mined_to_json mined,
    Report.violations_to_json (Violation.find ~jobs dataset mined) )

let test_online_matches_batch () =
  List.iter
    (fun name ->
      for seed = 0 to n_seeds - 1 do
        let id = Printf.sprintf "%s/seed %d" name seed in
        let trace = Run.workload_trace ~seed:(200 + seed) name in
        let n = Array.length trace.Trace.events in
        let prefixes =
          List.sort_uniq compare [ 0; n / 4; n / 2; (3 * n) / 4; n ]
        in
        (* One live online instance fed straight through; frozen at
           each prefix without stopping the stream. *)
        let online = Online.create trace.Trace.layouts in
        let fed = ref 0 in
        List.iter
          (fun prefix ->
            for i = !fed to prefix - 1 do
              Online.feed online trace.Trace.events.(i)
            done;
            fed := prefix;
            let ds, mined = Online.freeze online in
            let online_rules = Report.mined_to_json mined in
            let online_viol =
              Report.violations_to_json (Violation.find ds mined)
            in
            let batch_rules, batch_viol = batch_outputs trace prefix ~jobs:1 in
            check Alcotest.string
              (Printf.sprintf "%s@%d: rules" id prefix)
              batch_rules online_rules;
            check Alcotest.string
              (Printf.sprintf "%s@%d: violations" id prefix)
              batch_viol online_viol)
          prefixes;
        (* Parallel reconstruction at the full prefix: freeze on 4
           domains (store stays unsealed), then the batch -j 4 oracle. *)
        let _, mined4 = Online.freeze ~jobs:4 online in
        let batch_rules4, _ = batch_outputs trace n ~jobs:4 in
        check Alcotest.string (id ^ ": -j 4 rules") batch_rules4
          (Report.mined_to_json mined4);
        check Alcotest.bool (id ^ ": freeze left store unsealed") false
          (Lockdoc_db.Store.is_sealed (Online.store online))
      done)
    families

(* Feeding from the packed binary through the incremental decoder into
   the online derivator — the whole streaming path end to end. *)
let test_streamed_binary_pipeline () =
  let trace = Run.workload_trace ~seed:11 "fs_inod" in
  let packed = Codec.encode_trace trace in
  let dec = Codec.decoder () in
  let online = ref None in
  let n = String.length packed in
  let pos = ref 0 in
  while !pos < n do
    let len = min 4096 (n - !pos) in
    Codec.feed dec (String.sub packed !pos len);
    pos := !pos + len;
    List.iter
      (fun ev ->
        let o =
          match !online with
          | Some o -> o
          | None ->
              (* Layout records all precede the first event in a packed
                 trace, so the engine can start at the first event. *)
              let o = Online.create (Codec.layouts dec) in
              online := Some o;
              o
        in
        Online.feed o ev)
      (Codec.events dec)
  done;
  check Alcotest.int "no decode diags" 0 (List.length (Codec.finish dec));
  let o = Option.get !online in
  let _, mined = Online.freeze o in
  let batch_rules, _ =
    batch_outputs trace (Array.length trace.Trace.events) ~jobs:1
  in
  check Alcotest.string "binary-streamed rules match batch" batch_rules
    (Report.mined_to_json mined)

let () =
  Alcotest.run "stream"
    [
      ( "codec-primitives",
        [
          Alcotest.test_case "varint boundaries" `Quick test_varint_boundaries;
          Alcotest.test_case "zigzag" `Quick test_zigzag;
          Alcotest.test_case "varint qcheck" `Quick test_varint_qcheck;
          Alcotest.test_case "truncated varint rejected" `Quick
            test_varint_truncation_rejected;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case
            (Printf.sprintf "families (%d seeds)" n_seeds)
            `Slow test_roundtrip_families;
          Alcotest.test_case "chunked feeding" `Quick test_chunked_feed;
          Alcotest.test_case "empty trace" `Quick test_empty_trace;
        ] );
      ( "damage",
        [
          Alcotest.test_case "CRC rejects bit flips" `Quick
            test_crc_rejects_bit_flips;
          Alcotest.test_case "torn tails diagnosed" `Quick test_torn_tail;
        ] );
      ( "online-vs-batch",
        [
          Alcotest.test_case
            (Printf.sprintf "differential (%d seeds)" n_seeds)
            `Slow test_online_matches_batch;
          Alcotest.test_case "binary streamed pipeline" `Quick
            test_streamed_binary_pipeline;
        ] );
    ]
